(* Deadlock audit (App. B): build the backpressure graph of a topology,
   check it for cyclic buffer dependencies, and show the match-action
   elision table that makes backpressure provably deadlock-free — then
   cross-check the static verdict at runtime by driving the crafted ring
   to saturation with the stress detectors attached.

   Run with: dune exec examples/deadlock_audit.exe *)

module Time = Bfc_engine.Time
module Sim = Bfc_engine.Sim
module Topology = Bfc_net.Topology
module Deadlock = Bfc_core.Deadlock

let audit name topo switches =
  let g = Deadlock.build topo in
  Printf.printf "%-24s %4d backpressure edges, cyclic: %b\n" name (Deadlock.n_edges g)
    (Deadlock.has_cycle g);
  (match Deadlock.find_cycle g with
  | Some cycle ->
    Printf.printf "  witness cycle through egress ports: %s\n"
      (String.concat " -> " (List.map string_of_int cycle));
    let dangerous = Deadlock.dangerous_edges g in
    Printf.printf "  eliding %d edges restores acyclicity;\n" (List.length dangerous);
    (* show the per-switch filter decisions *)
    List.iter
      (fun sw ->
        let f = Deadlock.make_filter topo g ~sw in
        let blocked = ref 0 in
        let n = Array.length (Topology.ports topo sw) in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            if i <> j && not (f ~in_port:i ~egress:j) then incr blocked
          done
        done;
        if !blocked > 0 then
          Printf.printf "  switch %d: backpressure skipped for %d (ingress,egress) pairs\n" sw
            !blocked)
      switches
  | None -> Printf.printf "  deadlock-free by Theorem 1 (App. B)\n")

let () =
  (* the paper's Clos: up-down routing cannot form cyclic dependencies *)
  let sim = Sim.create () in
  let cl = Topology.clos sim ~spines:4 ~tors:4 ~hosts_per_tor:4 ~gbps:100.0 ~prop:(Time.us 1.0) in
  audit "clos 4x4" cl.Topology.t [];
  (* a ring of switches: shortest-path routing creates a cycle *)
  let sim2 = Sim.create () in
  let b = Topology.Builder.create sim2 in
  let n = 6 in
  let sws = Array.init n (fun i -> Topology.Builder.add_switch b ~name:(Printf.sprintf "s%d" i)) in
  Array.iter
    (fun sw ->
      let h = Topology.Builder.add_host b ~name:(Printf.sprintf "h%d" sw) in
      Topology.Builder.link b h sw ~gbps:100.0 ~prop:(Time.us 1.0))
    sws;
  for i = 0 to n - 1 do
    Topology.Builder.link b sws.(i) sws.((i + 1) mod n) ~gbps:100.0 ~prop:(Time.us 1.0)
  done;
  let ring = Topology.Builder.finish b in
  audit "6-switch ring" ring (Array.to_list sws);
  (* runtime cross-check: sustained cyclic flows on the 5-switch ring.
     PFC wedges and the runtime detector recovers the statically-predicted
     cycle; unprotected BFC wedges too; the elision filter dissolves it. *)
  let module Stress_exp = Bfc_stress.Stress_exp in
  let module Detect = Bfc_stress.Detect in
  Printf.printf "\nruntime cross-check (5-switch ring, sustained cyclic flows):\n";
  List.iter
    (fun (label, variant) ->
      let c = Stress_exp.ring_cell Bfc_sim.Exp_common.Smoke variant in
      Printf.printf "  %-14s completed %2d/%2d   %s\n" label c.Stress_exp.c_completed
        c.Stress_exp.c_injected
        (Detect.summary c.Stress_exp.c_report);
      List.iter
        (fun d ->
          Printf.printf "    wedged at t=%dns; witness cycle %s; statically dangerous: %b\n"
            d.Detect.dl_at
            (String.concat " -> " (List.map string_of_int d.Detect.dl_cycle))
            d.Detect.dl_static_dangerous)
        c.Stress_exp.c_report.Detect.r_deadlocks)
    [
      ("pfc", Stress_exp.Ring_pfc);
      ("bfc", Stress_exp.Ring_bfc_unprotected);
      ("bfc + filter", Stress_exp.Ring_bfc_filtered);
    ]
