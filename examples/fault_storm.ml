(* Fault storm: control-frame loss, link flaps and a switch crash against
   the BFC dataplane, with the runtime auditor watching the invariants.

   Scenarios:
   1. Clean 32:1 incast with the full auditor (pairing checks on,
      fail-fast) -- establishes the baseline: every invariant holds.
   2. The same incast with 1% Resume-frame loss. With the pause watchdog
      armed every flow completes and the auditor stays clean; with the
      watchdog disabled the first lost Resume wedges its sender queue
      forever and the run stalls (drain budget exhausted).
   3. The bottleneck link flaps three times mid-incast: BFC absorbs the
      outage losslessly at the switch (retransmissions recover the
      in-flight window), PFC shows the same recovery but with drops.
   4. A ToR switch crashes and reboots mid-incast on a small Clos: its
      buffer is flushed, flow table and pause counters reset; upstream
      queues paused on its behalf are recovered by the watchdog and the
      conservation invariants hold across the wipe.
   5. A seeded random storm from the stress scenario DSL (flaps +
      Resume-loss burst + maybe a reboot + a surprise incast) against the
      Clos workload, with the pause-storm / deadlock / victim detectors
      attached — replayed twice to show the same seed gives a
      byte-identical detector report.

   Run with: dune exec examples/fault_storm.exe *)

module Time = Bfc_engine.Time
module Sim = Bfc_engine.Sim
module Topology = Bfc_net.Topology
module Flow = Bfc_net.Flow
module Scheme = Bfc_sim.Scheme
module Runner = Bfc_sim.Runner
module Metrics = Bfc_sim.Metrics
module Loss = Bfc_fault.Loss
module Injector = Bfc_fault.Injector
module Auditor = Bfc_fault.Auditor

let incast_flows st ~count ~size =
  List.init count (fun i ->
      Flow.make ~id:i
        ~src:st.Topology.st_senders.(i mod Array.length st.Topology.st_senders)
        ~dst:st.Topology.st_receiver ~size
        ~arrival:(Time.us (0.1 *. float_of_int i))
        ~is_incast:true ())

let report label env aud ~wd ~faults =
  Printf.printf "  %-24s completed %2d/%2d   drops %3d   faults %3d   wdog %2d   violations %d\n"
    label (Runner.completed env) (Runner.injected env) (Runner.total_drops env) faults wd
    (Auditor.violation_count aud);
  List.iter (fun v -> Printf.printf "    ! %s\n" (Auditor.to_string v)) (Auditor.violations aud)

(* 1: clean run, strictest auditor: any violation raises *)
let clean_run () =
  let sim = Sim.create () in
  let st = Topology.star sim ~senders:32 ~gbps:100.0 ~prop:(Time.us 1.0) in
  let env = Runner.setup ~topo:st.Topology.s ~scheme:Scheme.bfc ~params:Runner.default_params in
  let aud = Auditor.attach env in
  Runner.inject env (incast_flows st ~count:32 ~size:64_000);
  Runner.run env ~until:(Time.ms 1.0);
  Runner.drain env ~budget:(Time.ms 10.0);
  Auditor.check aud;
  report "clean incast" env aud ~wd:0 ~faults:0

(* 2: 1% Resume loss (plus one deterministic early loss so the stall is
   not at the mercy of the seed), watchdog on vs off *)
let resume_loss_run ~watchdog =
  let sim = Sim.create () in
  let st = Topology.star sim ~senders:32 ~gbps:100.0 ~prop:(Time.us 1.0) in
  let params =
    {
      Runner.default_params with
      Runner.pause_watchdog = (if watchdog then Some (Time.us 50.0) else None);
    }
  in
  let env = Runner.setup ~topo:st.Topology.s ~scheme:Scheme.bfc ~params in
  let inj = Injector.attach env in
  let loss = Loss.create ~seed:11 in
  Loss.add_nth loss ~n:3 Loss.resumes;
  Loss.add_prob loss ~p:0.01 Loss.resumes;
  Injector.set_loss_everywhere inj loss;
  (* lost Resumes legitimately break strict Pause/Resume pairing *)
  let aud =
    Auditor.attach
      ~config:{ Auditor.default_config with Auditor.check_pairing = false; fail_fast = false }
      env
  in
  Runner.inject env (incast_flows st ~count:32 ~size:64_000);
  Runner.run env ~until:(Time.ms 1.0);
  Runner.drain env ~budget:(Time.ms 10.0);
  Auditor.check aud;
  report
    (if watchdog then "1% Resume loss, watchdog" else "1% Resume loss, no wdog")
    env aud ~wd:(Metrics.watchdog_fires env) ~faults:(Loss.total loss)

(* 3: flap the bottleneck link under BFC and PFC *)
let flap_run scheme =
  let sim = Sim.create () in
  let st = Topology.star sim ~senders:16 ~gbps:100.0 ~prop:(Time.us 1.0) in
  let params = { Runner.default_params with Runner.pause_watchdog = Some (Time.us 50.0) } in
  let env = Runner.setup ~topo:st.Topology.s ~scheme ~params in
  let inj = Injector.attach env in
  let aud =
    Auditor.attach
      ~config:{ Auditor.default_config with Auditor.check_pairing = false; fail_fast = false }
      env
  in
  Injector.flap inj ~gid:st.Topology.st_bottleneck_gid ~start:(Time.us 30.0)
    ~down_for:(Time.us 10.0) ~period:(Time.us 100.0) ~count:3;
  Runner.inject env (incast_flows st ~count:16 ~size:32_000);
  Runner.run env ~until:(Time.ms 1.0);
  Runner.drain env ~budget:(Time.ms 30.0);
  Auditor.check aud;
  report
    (Printf.sprintf "link flap x3, %s" (Scheme.name scheme))
    env aud
    ~wd:(Metrics.watchdog_fires env)
    ~faults:(Injector.faults_injected inj)

(* 4: crash-reboot a ToR mid-incast on a small Clos *)
let reboot_run () =
  let sim = Sim.create () in
  let cl = Topology.clos sim ~spines:2 ~tors:2 ~hosts_per_tor:8 ~gbps:100.0 ~prop:(Time.us 1.0) in
  let params = { Runner.default_params with Runner.pause_watchdog = Some (Time.us 50.0) } in
  let env = Runner.setup ~topo:cl.Topology.t ~scheme:Scheme.bfc ~params in
  let inj = Injector.attach env in
  let aud =
    Auditor.attach
      ~config:{ Auditor.default_config with Auditor.check_pairing = false; fail_fast = false }
      env
  in
  let hosts = cl.Topology.cl_hosts in
  let flows =
    List.init 12 (fun i ->
        Flow.make ~id:i ~src:hosts.(4 + i) ~dst:hosts.(0) ~size:64_000
          ~arrival:(Time.us (0.1 *. float_of_int i))
          ~is_incast:true ())
  in
  let victim_tor = cl.Topology.tors.(0) in
  let flushed = ref 0 in
  ignore
    (Sim.at sim (Time.us 40.0) (fun () ->
         flushed := Injector.reboot_switch inj ~node:victim_tor ~down_for:(Time.us 20.0) ()));
  Runner.inject env flows;
  Runner.run env ~until:(Time.ms 1.0);
  Runner.drain env ~budget:(Time.ms 30.0);
  Auditor.check aud;
  Printf.printf "  %-24s flushed %d packets at reboot, %d reboot(s)\n" "ToR crash+reboot" !flushed
    (Metrics.reboots env);
  report "" env aud ~wd:(Metrics.watchdog_fires env) ~faults:(Injector.faults_injected inj)

(* 5: seeded random storm via the scenario DSL + stress detectors *)
module Scenario = Bfc_stress.Scenario
module Detect = Bfc_stress.Detect
module Stress_exp = Bfc_stress.Stress_exp

let storm_run ~seed scheme =
  let sc = Scenario.random_storm ~seed ~horizon:(Time.ms 1.0) in
  let c =
    Stress_exp.clos_cell Bfc_sim.Exp_common.Smoke ~scheme ~scenario:sc
      ~watchdog:(Time.us 50.0) ~seed:1
  in
  ( sc,
    Printf.sprintf "completed %d/%d   wdog %2d   %s" c.Stress_exp.c_completed
      c.Stress_exp.c_injected c.Stress_exp.c_watchdog
      (Detect.summary c.Stress_exp.c_report) )

let storm_section () =
  let sc, first = storm_run ~seed:42 Scheme.bfc in
  let _, replay = storm_run ~seed:42 Scheme.bfc in
  let _, pfc = storm_run ~seed:42 Scheme.pfc_only in
  Printf.printf "\n%s\n" (Scenario.to_string sc);
  Printf.printf "  %-24s %s\n" "random storm, BFC" first;
  Printf.printf "  %-24s %s\n" "random storm, PFC" pfc;
  Printf.printf "  replay (same seed) byte-identical: %b\n" (String.equal first replay)

let () =
  Printf.printf "Fault storm: injected faults vs the BFC dataplane + invariant auditor\n\n";
  clean_run ();
  resume_loss_run ~watchdog:true;
  resume_loss_run ~watchdog:false;
  flap_run Scheme.bfc;
  flap_run Scheme.pfc_only;
  reboot_run ();
  storm_section ()
