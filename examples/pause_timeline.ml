(* Pause timeline: watch BFC's backpressure control plane in action.

   Two flows collide at a dumbbell bottleneck; the tracer records every
   Pause/Resume control packet network-wide and prints the timeline —
   exactly the signal exchange of §3.3.2.

   Run with: dune exec examples/pause_timeline.exe *)

module Time = Bfc_engine.Time
module Sim = Bfc_engine.Sim
module Topology = Bfc_net.Topology
module Flow = Bfc_net.Flow
module Traffic = Bfc_workload.Traffic
module Runner = Bfc_sim.Runner
module Tracer = Bfc_sim.Tracer

let () =
  let sim = Sim.create () in
  let db = Topology.dumbbell sim ~senders:3 ~gbps:100.0 ~prop:(Time.us 1.0) in
  let env = Runner.setup ~topo:db.Topology.d ~scheme:Bfc_sim.Scheme.bfc ~params:Runner.default_params in
  let tracer = Tracer.attach env ~capacity:4096 in
  let ids = ref 0 in
  let flows =
    Traffic.long_lived
      ~pairs:
        [|
          (db.Topology.senders.(0), db.Topology.receiver);
          (db.Topology.senders.(1), db.Topology.receiver);
        |]
      ~size:300_000 ~ids ()
  in
  Runner.inject env flows;
  Runner.run env ~until:(Time.us 120.0);
  Printf.printf "Backpressure control-plane timeline (first 120 us, 2 x 300KB flows):\n\n%s"
    (Tracer.render ~limit:40 tracer);
  Printf.printf "\npause/resume balance per node (node, pauses, resumes):\n";
  List.iter
    (fun (node, p, r) -> Printf.printf "  node %-3d  %3d pauses  %3d resumes\n" node p r)
    (Tracer.pause_balance tracer);
  Runner.drain env ~budget:(Time.ms 5.0);
  List.iter
    (fun f ->
      Printf.printf "\nflow %d: fct %.1fus (slowdown %.2fx)" f.Flow.id
        (Time.to_us (Flow.fct f)) (Runner.slowdown env f))
    flows;
  print_newline ();
  (* The same control-plane events as a Perfetto trace: one track per node,
     open the file in ui.perfetto.dev. *)
  let out = "pause_timeline_trace.json" in
  let oc = open_out out in
  Bfc_obs.Trace.to_chrome
    ~process_name:(fun ~pid -> Some (Printf.sprintf "node %d" pid))
    (Tracer.trace tracer) oc;
  close_out oc;
  Printf.printf "wrote %s (%d control-plane events; open in ui.perfetto.dev)\n"
    out
    (Bfc_obs.Trace.length (Tracer.trace tracer))
