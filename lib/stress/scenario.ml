module Sim = Bfc_engine.Sim
module Time = Bfc_engine.Time
module Topology = Bfc_net.Topology
module Node = Bfc_net.Node
module Port = Bfc_net.Port
module Flow = Bfc_net.Flow
module Switch = Bfc_switch.Switch
module Rng = Bfc_util.Rng
module Runner = Bfc_sim.Runner
module Injector = Bfc_fault.Injector
module Loss = Bfc_fault.Loss

type link_sel = Core of int | Uplink of int | Gid of int

type pkt_sel = All | Data | Ctrl | Resumes

type action =
  | Link_down of { at : Time.t; sel : link_sel }
  | Link_up of { at : Time.t; sel : link_sel }
  | Flap of { at : Time.t; sel : link_sel; down_for : Time.t; period : Time.t; count : int }
  | Reboot of { at : Time.t; switch : int; down_for : Time.t option }
  | Loss_burst of { at : Time.t; dur : Time.t; p : float; pkts : pkt_sel; lseed : int }
  | Incast of { at : Time.t; degree : int; agg : int; iseed : int }

type t = { sc_name : string; sc_actions : action list }

(* ------------------------------------------------------------------ *)
(* Canned scenarios *)

let clean = { sc_name = "clean"; sc_actions = [] }

let resume_loss ?(at = Time.us 40.0) ?(dur = Time.us 120.0) ?(p = 0.5) () =
  {
    sc_name = "resume-loss";
    sc_actions = [ Loss_burst { at; dur; p; pkts = Resumes; lseed = 9001 } ];
  }

let flap_storm ?(at = Time.us 30.0) ?(count = 3) () =
  let down_for = Time.us 10.0 in
  let period = Time.us 35.0 in
  {
    sc_name = "flap-storm";
    sc_actions =
      [
        Flap { at; sel = Core 0; down_for; period; count };
        Flap { at = at + Time.us 15.0; sel = Core 3; down_for; period; count };
      ];
  }

let reboot ?(at = Time.us 60.0) ?(down_for = Time.us 25.0) ?(switch = 0) () =
  {
    sc_name = "reboot";
    sc_actions = [ Reboot { at; switch; down_for = Some down_for } ];
  }

let random_storm ~seed ~horizon =
  let rng = Rng.create seed in
  let t_in lo hi = lo + Rng.int rng (max 1 (hi - lo)) in
  let actions = ref [] in
  let n_flaps = 1 + Rng.int rng 3 in
  for _ = 1 to n_flaps do
    let down_for = Time.us (float_of_int (5 + Rng.int rng 15)) in
    let period = down_for + Time.us (float_of_int (10 + Rng.int rng 25)) in
    actions :=
      Flap
        {
          at = t_in (horizon / 10) (horizon / 2);
          sel = Core (Rng.int rng 8);
          down_for;
          period;
          count = 2 + Rng.int rng 3;
        }
      :: !actions
  done;
  actions :=
    Loss_burst
      {
        at = t_in (horizon / 8) (horizon / 2);
        dur = horizon / 8;
        p = 0.2 +. (0.1 *. float_of_int (Rng.int rng 5));
        pkts = Resumes;
        lseed = Rng.int rng 1_000_000;
      }
    :: !actions;
  if Rng.bool rng then
    actions :=
      Reboot
        {
          at = t_in (horizon / 4) (horizon / 2);
          switch = Rng.int rng 4;
          down_for = Some (Time.us (float_of_int (10 + Rng.int rng 20)));
        }
      :: !actions;
  actions :=
    Incast
      {
        at = t_in (horizon / 6) (horizon / 3);
        degree = 8;
        agg = 400_000;
        iseed = Rng.int rng 1_000_000;
      }
    :: !actions;
  { sc_name = Printf.sprintf "storm-%d" seed; sc_actions = List.rev !actions }

(* ------------------------------------------------------------------ *)
(* Resolution & execution *)

(* Directed ports owned by a node of [kind] whose peer matches [peer_ok],
   sorted by gid, for the topology-relative selectors. *)
let directed_links topo ~src_switch ~dst_switch =
  let nodes = Topology.nodes topo in
  let out = ref [] in
  Array.iter
    (fun nd ->
      if (nd.Node.kind = Node.Switch) = src_switch then
        Array.iter
          (fun p ->
            let peer = (Port.peer p).Node.id in
            if (nodes.(peer).Node.kind = Node.Switch) = dst_switch then
              out := Port.gid p :: !out)
          (Topology.ports topo nd.Node.id))
    nodes;
  List.sort compare !out

let resolve topo sel =
  let pick links i what =
    match links with
    | [] -> invalid_arg (Printf.sprintf "Scenario: topology has no %s links" what)
    | l -> List.nth l (i mod List.length l)
  in
  match sel with
  | Gid g -> g
  | Core i -> pick (directed_links topo ~src_switch:true ~dst_switch:true) i "core"
  | Uplink i -> pick (directed_links topo ~src_switch:false ~dst_switch:true) i "uplink"

let matcher = function
  | All -> Loss.any
  | Data -> Loss.data
  | Ctrl -> Loss.ctrl
  | Resumes -> Loss.resumes

let incast_flows topo ~at ~degree ~agg ~iseed ~id_base =
  let rng = Rng.create iseed in
  let hosts = Array.copy (Topology.hosts topo) in
  let n = Array.length hosts in
  if n < 2 then []
  else begin
    Rng.shuffle rng hosts;
    let dst = hosts.(0) in
    let degree = min degree (n - 1) in
    let size = max 1 (agg / degree) in
    List.init degree (fun i ->
        Flow.make ~id:(id_base + i) ~src:hosts.(1 + i) ~dst ~size ~arrival:at ~is_incast:true ())
  end

let apply t ~env ~inj ?(id_base = 1_000_000) () =
  let sim = Runner.sim env in
  let topo = Runner.topo env in
  let extra = ref [] in
  let next_base = ref id_base in
  List.iter
    (fun action ->
      match action with
      | Link_down { at; sel } ->
        let gid = resolve topo sel in
        ignore (Sim.at sim at (fun () -> Injector.link_down inj ~gid))
      | Link_up { at; sel } ->
        let gid = resolve topo sel in
        ignore (Sim.at sim at (fun () -> Injector.link_up inj ~gid))
      | Flap { at; sel; down_for; period; count } ->
        Injector.flap inj ~gid:(resolve topo sel) ~start:at ~down_for ~period ~count
      | Reboot { at; switch; down_for } ->
        let switches = Runner.switches env in
        let node = Switch.node_id switches.(switch mod Array.length switches) in
        ignore
          (Sim.at sim at (fun () -> ignore (Injector.reboot_switch inj ~node ?down_for ())))
      | Loss_burst { at; dur; p; pkts; lseed } ->
        ignore
          (Sim.at sim at (fun () ->
               let l = Loss.create ~seed:lseed in
               Loss.add_prob l ~p (matcher pkts);
               Injector.set_loss_everywhere inj l));
        (* the burst owns every port's loss slot for its duration *)
        ignore (Sim.at sim (at + dur) (fun () -> Injector.clear_loss_everywhere inj))
      | Incast { at; degree; agg; iseed } ->
        let flows = incast_flows topo ~at ~degree ~agg ~iseed ~id_base:!next_base in
        next_base := !next_base + List.length flows;
        Runner.inject env flows;
        extra := !extra @ flows)
    t.sc_actions;
  !extra

(* ------------------------------------------------------------------ *)
(* Canonical rendering *)

let sel_to_string = function
  | Core i -> Printf.sprintf "core:%d" i
  | Uplink i -> Printf.sprintf "uplink:%d" i
  | Gid g -> Printf.sprintf "gid:%d" g

let pkts_to_string = function
  | All -> "all"
  | Data -> "data"
  | Ctrl -> "ctrl"
  | Resumes -> "resume"

let action_to_string = function
  | Link_down { at; sel } -> Printf.sprintf "link_down at=%d sel=%s" at (sel_to_string sel)
  | Link_up { at; sel } -> Printf.sprintf "link_up at=%d sel=%s" at (sel_to_string sel)
  | Flap { at; sel; down_for; period; count } ->
    Printf.sprintf "flap at=%d sel=%s down_for=%d period=%d count=%d" at (sel_to_string sel)
      down_for period count
  | Reboot { at; switch; down_for } ->
    Printf.sprintf "reboot at=%d switch=%d down_for=%s" at switch
      (match down_for with None -> "-" | Some d -> string_of_int d)
  | Loss_burst { at; dur; p; pkts; lseed } ->
    Printf.sprintf "loss_burst at=%d dur=%d p=%.4f pkts=%s seed=%d" at dur p
      (pkts_to_string pkts) lseed
  | Incast { at; degree; agg; iseed } ->
    Printf.sprintf "incast at=%d degree=%d agg=%d seed=%d" at degree agg iseed

let to_string t =
  String.concat "\n"
    (Printf.sprintf "scenario %s" t.sc_name
    :: List.map (fun a -> "  " ^ action_to_string a) t.sc_actions)
