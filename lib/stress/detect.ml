module Sim = Bfc_engine.Sim
module Time = Bfc_engine.Time
module Topology = Bfc_net.Topology
module Port = Bfc_net.Port
module Packet = Bfc_net.Packet
module Flow = Bfc_net.Flow
module Switch = Bfc_switch.Switch
module Deadlock = Bfc_core.Deadlock
module Runner = Bfc_sim.Runner
module Nic = Bfc_transport.Nic
module Host = Bfc_transport.Host

type config = {
  d_period : Time.t;
  d_window : int;
  d_storm_frac : float;
  d_deadlock_hold : int;
  d_victim_slowdown : float;
  d_victim_own_bytes : int;
  d_victim_min_pause : Time.t;
  d_victim_frac : float;
}

let default_config =
  {
    d_period = Time.us 5.0;
    d_window = 10;
    d_storm_frac = 0.5;
    d_deadlock_hold = 3;
    d_victim_slowdown = 4.0;
    d_victim_own_bytes = 32 * 1024;
    d_victim_min_pause = Time.us 5.0;
    d_victim_frac = 0.3;
  }

type storm = {
  st_gid : int;
  st_onset : Time.t;
  st_duration : Time.t;
  st_peak_frac : float;
}

type deadlock_incident = {
  dl_at : Time.t;
  dl_cycle : int list;
  dl_static_dangerous : bool;
}

type victim = {
  v_flow : int;
  v_slowdown : float;
  v_gid : int;
  v_queue : int;
  v_pause_ns : int;
}

type report = {
  r_storms : storm list;
  r_storm_ports : int;
  r_max_blast : int;
  r_deadlocks : deadlock_incident list;
  r_victims : victim list;
  r_ticks : int;
}

(* A flow's footprint at one (egress port, queue): pause exposure at first
   touch / last dequeue, and the flow's own resident bytes there. *)
type fq = {
  fq_gid : int;
  fq_queue : int;
  fq_p0 : int;
  mutable fq_last : int;
  mutable fq_out : int;
  mutable fq_peak : int;
}

type t = {
  env : Runner.env;
  cfg : config;
  n : int;
  (* port-level pause spans (PFC egress pause / NIC uplink pause) *)
  pl_cum : int array;
  pl_open : int array; (* open-span start, -1 if not paused *)
  (* per-queue pause spans, switch egresses only *)
  q_cum : int array array;
  q_open : int array array;
  (* sliding window of per-tick port-level pause ns *)
  win : int array array;
  win_sum : int array;
  mutable win_pos : int;
  prev_cum : int array;
  in_storm : bool array;
  storm_onset : int array;
  storm_peak : float array;
  mutable storms : storm list; (* closed, reverse order *)
  mutable max_blast : int;
  (* runtime deadlock state *)
  succ : int list array; (* static backpressure adjacency *)
  dangerous : (int * int, unit) Hashtbl.t;
  dl_mem : bool array; (* scratch: paused-set membership *)
  mutable dl_fp : string;
  mutable dl_tx : int;
  mutable dl_streak : int;
  dl_reported : (string, unit) Hashtbl.t;
  mutable deadlocks : deadlock_incident list; (* reverse order *)
  (* victim tracking *)
  frecs : (int, fq list ref) Hashtbl.t; (* flow id -> footprints *)
  mutable ticks : int;
}

let port_pause_eff t gid ~now =
  t.pl_cum.(gid) + (if t.pl_open.(gid) >= 0 then now - t.pl_open.(gid) else 0)

let queue_pause_eff t gid queue ~now =
  let qc = t.q_cum.(gid) in
  if queue >= 0 && queue < Array.length qc then
    qc.(queue) + (if t.q_open.(gid).(queue) >= 0 then now - t.q_open.(gid).(queue) else 0)
  else 0

(* Total pause exposure of a (port, queue): a PFC port pause blocks every
   queue of the port, so the two span kinds add. *)
let exposure t gid queue ~now = port_pause_eff t gid ~now + queue_pause_eff t gid queue ~now

let span_transition cum opn i ~now ~paused =
  if paused then begin
    if opn.(i) < 0 then opn.(i) <- now
  end
  else if opn.(i) >= 0 then begin
    cum.(i) <- cum.(i) + (now - opn.(i));
    opn.(i) <- -1
  end

let port_transition t gid ~now ~paused = span_transition t.pl_cum t.pl_open gid ~now ~paused

let queue_transition t gid queue ~now ~paused =
  if queue >= 0 && queue < Array.length t.q_cum.(gid) then
    span_transition t.q_cum.(gid) t.q_open.(gid) queue ~now ~paused

(* ------------------------------------------------------------------ *)
(* Victim footprints *)

let footprint t fid gid queue ~now =
  let r =
    match Hashtbl.find_opt t.frecs fid with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add t.frecs fid r;
      r
  in
  (* a flow touches at most hop-count (port, queue) cells; bfc-lint: allow df-list *)
  match List.find_opt (fun f -> f.fq_gid = gid && f.fq_queue = queue) !r with
  | Some f -> f
  | None ->
    let p0 = exposure t gid queue ~now in
    let f = { fq_gid = gid; fq_queue = queue; fq_p0 = p0; fq_last = p0; fq_out = 0; fq_peak = 0 } in
    r := f :: !r;
    f

let on_enq t gid ~queue pkt =
  let fid = Packet.flow_id pkt in
  if fid >= 0 then begin
    let now = Sim.now (Runner.sim t.env) in
    let f = footprint t fid gid queue ~now in
    f.fq_out <- f.fq_out + pkt.Packet.size;
    if f.fq_out > f.fq_peak then f.fq_peak <- f.fq_out
  end

let on_deq t gid ~queue pkt =
  let fid = Packet.flow_id pkt in
  if fid >= 0 then
    match Hashtbl.find_opt t.frecs fid with
    | None -> ()
    | Some r -> (
      (* bounded by hop count, as in [footprint]; bfc-lint: allow df-list *)
      match List.find_opt (fun f -> f.fq_gid = gid && f.fq_queue = queue) !r with
      | None -> ()
      | Some f ->
        let now = Sim.now (Runner.sim t.env) in
        f.fq_out <- max 0 (f.fq_out - pkt.Packet.size);
        f.fq_last <- exposure t gid queue ~now)

(* ------------------------------------------------------------------ *)
(* Periodic tick: storm window + runtime deadlock scan *)

(* runs per detector period, not per packet; bfc-lint: control-plane *)
let storm_tick t ~now =
  let w = t.cfg.d_window in
  let horizon = w * t.cfg.d_period in
  let blast = ref 0 in
  for gid = 0 to t.n - 1 do
    let cur = port_pause_eff t gid ~now in
    let delta = cur - t.prev_cum.(gid) in
    t.prev_cum.(gid) <- cur;
    t.win_sum.(gid) <- t.win_sum.(gid) + delta - t.win.(gid).(t.win_pos);
    t.win.(gid).(t.win_pos) <- delta;
    let frac = float_of_int t.win_sum.(gid) /. float_of_int horizon in
    if t.in_storm.(gid) then begin
      if frac > t.storm_peak.(gid) then t.storm_peak.(gid) <- frac;
      if frac < t.cfg.d_storm_frac then begin
        t.storms <-
          {
            st_gid = gid;
            st_onset = t.storm_onset.(gid);
            st_duration = now - t.storm_onset.(gid);
            st_peak_frac = t.storm_peak.(gid);
          }
          :: t.storms;
        t.in_storm.(gid) <- false
      end
    end
    else if t.ticks >= w && frac >= t.cfg.d_storm_frac then begin
      t.in_storm.(gid) <- true;
      t.storm_onset.(gid) <- now;
      t.storm_peak.(gid) <- frac
    end;
    if t.in_storm.(gid) then incr blast
  done;
  if !blast > t.max_blast then t.max_blast <- !blast;
  t.win_pos <- (t.win_pos + 1) mod w

(* deadlock-scan helper, per tick; bfc-lint: control-plane *)
let cycle_edges cyc =
  match cyc with
  | [] -> []
  | first :: _ ->
    let rec pairs = function
      | a :: (b :: _ as rest) -> (a, b) :: pairs rest
      | [ last ] -> [ (last, first) ]
      | [] -> []
    in
    pairs cyc

(* runs per detector period, not per packet; bfc-lint: control-plane *)
let deadlock_tick t ~now =
  let topo = Runner.topo t.env in
  let paused = ref [] in
  Array.iter
    (fun sw ->
      let qpp = (Switch.config sw).Switch.queues_per_port in
      for e = 0 to Switch.n_ports sw - 1 do
        let is_paused =
          if Switch.pfc_paused sw ~egress:e then true
          else begin
            let any = ref false in
            for q = 0 to qpp - 1 do
              if (not !any) && Switch.queue_paused sw ~egress:e ~queue:q then any := true
            done;
            !any
          end
        in
        if is_paused then begin
          let gid = Port.gid (Switch.port sw e) in
          t.dl_mem.(gid) <- true;
          paused := gid :: !paused
        end
      done)
    (Runner.switches t.env);
  let cyc =
    if List.length !paused < 2 then None
    else begin
      let g = Deadlock.create ~n:t.n in
      List.iter
        (fun u -> List.iter (fun v -> if t.dl_mem.(v) then Deadlock.add_edge g ~src:u ~dst:v) t.succ.(u))
        !paused;
      Deadlock.find_cycle g
    end
  in
  (match cyc with
  | None ->
    t.dl_streak <- 0;
    t.dl_fp <- ""
  | Some cyc ->
    let fp = String.concat "," (List.map string_of_int (List.sort compare cyc)) in
    let tx =
      List.fold_left (fun acc gid -> acc + Port.tx_packets (Topology.port_by_gid topo gid)) 0 cyc
    in
    if fp = t.dl_fp && tx = t.dl_tx then t.dl_streak <- t.dl_streak + 1
    else begin
      t.dl_fp <- fp;
      t.dl_tx <- tx;
      t.dl_streak <- 1
    end;
    if t.dl_streak >= t.cfg.d_deadlock_hold && not (Hashtbl.mem t.dl_reported fp) then begin
      Hashtbl.add t.dl_reported fp ();
      let dangerous =
        List.for_all (fun e -> Hashtbl.mem t.dangerous e) (cycle_edges cyc)
      in
      t.deadlocks <-
        { dl_at = now; dl_cycle = cyc; dl_static_dangerous = dangerous } :: t.deadlocks
    end);
  List.iter (fun gid -> t.dl_mem.(gid) <- false) !paused

(* bfc-lint: control-plane *)
let tick t () =
  let now = Sim.now (Runner.sim t.env) in
  storm_tick t ~now;
  deadlock_tick t ~now;
  t.ticks <- t.ticks + 1

(* ------------------------------------------------------------------ *)

(* one-time hook installation; bfc-lint: control-plane *)
let attach ?(config = default_config) env =
  let topo = Runner.topo env in
  let n = Topology.total_ports topo in
  let static = Deadlock.build topo in
  let succ = Array.make n [] in
  List.iter (fun (u, v) -> succ.(u) <- v :: succ.(u)) (Deadlock.edges static);
  let dangerous = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace dangerous e ()) (Deadlock.dangerous_edges static);
  let t =
    {
      env;
      cfg = config;
      n;
      pl_cum = Array.make n 0;
      pl_open = Array.make n (-1);
      q_cum = Array.make n [||];
      q_open = Array.make n [||];
      win = Array.init n (fun _ -> Array.make config.d_window 0);
      win_sum = Array.make n 0;
      win_pos = 0;
      prev_cum = Array.make n 0;
      in_storm = Array.make n false;
      storm_onset = Array.make n 0;
      storm_peak = Array.make n 0.0;
      storms = [];
      max_blast = 0;
      succ;
      dangerous;
      dl_mem = Array.make n false;
      dl_fp = "";
      dl_tx = 0;
      dl_streak = 0;
      dl_reported = Hashtbl.create 8;
      deadlocks = [];
      frecs = Hashtbl.create 4096;
      ticks = 0;
    }
  in
  let sim = Runner.sim env in
  (* Switch egresses: chain onto the hooks record. *)
  Array.iter
    (fun sw ->
      let gids = Array.init (Switch.n_ports sw) (fun e -> Port.gid (Switch.port sw e)) in
      let qpp = (Switch.config sw).Switch.queues_per_port in
      Array.iter
        (fun gid ->
          t.q_cum.(gid) <- Array.make qpp 0;
          t.q_open.(gid) <- Array.make qpp (-1))
        gids;
      let hk = Switch.hooks sw in
      let prev_pause = hk.Switch.on_queue_pause in
      hk.Switch.on_queue_pause <-
        (fun sw ~egress ~queue ~paused ->
          prev_pause sw ~egress ~queue ~paused;
          let now = Sim.now sim in
          if queue < 0 then port_transition t gids.(egress) ~now ~paused
          else queue_transition t gids.(egress) queue ~now ~paused);
      let prev_enq = hk.Switch.on_enqueue in
      hk.Switch.on_enqueue <-
        (fun sw ~in_port ~egress ~queue pkt ->
          prev_enq sw ~in_port ~egress ~queue pkt;
          on_enq t gids.(egress) ~queue pkt);
      let prev_deq = hk.Switch.on_dequeue in
      hk.Switch.on_dequeue <-
        (fun sw ~egress ~queue pkt ->
          prev_deq sw ~egress ~queue pkt;
          on_deq t gids.(egress) ~queue pkt);
      let prev_reboot = hk.Switch.on_reboot in
      hk.Switch.on_reboot <-
        (fun sw ~flushed ->
          prev_reboot sw ~flushed;
          (* A reboot clears pause state without resume transitions: close
             every open span on this switch as if resumed now, and forget
             the flushed queue contents in the flow footprints. *)
          let now = Sim.now sim in
          Array.iter
            (fun gid ->
              port_transition t gid ~now ~paused:false;
              Array.iteri (fun q _ -> queue_transition t gid q ~now ~paused:false) t.q_cum.(gid);
              t.dl_mem.(gid) <- true)
            gids;
          (* commutative per-record reset; bfc-lint: allow det-hashtbl-order *)
          Hashtbl.iter
            (fun _ r -> List.iter (fun f -> if t.dl_mem.(f.fq_gid) then f.fq_out <- 0) !r)
            t.frecs;
          Array.iter (fun gid -> t.dl_mem.(gid) <- false) gids))
    (Runner.switches env);
  (* NIC uplinks: PFC pause of the whole uplink is a port-level span. *)
  Array.iter
    (fun hid ->
      let nic = Host.nic (Runner.host env hid) in
      let gid = Port.gid (Topology.port topo hid 0) in
      let prev = Nic.on_pause nic in
      Nic.set_on_pause nic (fun ~queue ~paused ->
          prev ~queue ~paused;
          if queue < 0 then port_transition t gid ~now:(Sim.now sim) ~paused))
    (Topology.hosts topo);
  ignore (Sim.every sim ~period:config.d_period (tick t));
  t

(* ------------------------------------------------------------------ *)

(* end-of-run aggregation; bfc-lint: control-plane *)
let report t ~flows =
  let now = Sim.now (Runner.sim t.env) in
  let closed = List.rev t.storms in
  let opened =
    let out = ref [] in
    for gid = t.n - 1 downto 0 do
      if t.in_storm.(gid) then
        out :=
          {
            st_gid = gid;
            st_onset = t.storm_onset.(gid);
            st_duration = now - t.storm_onset.(gid);
            st_peak_frac = t.storm_peak.(gid);
          }
          :: !out
    done;
    !out
  in
  let storms = closed @ opened in
  let storm_ports =
    let seen = Hashtbl.create 16 in
    List.iter (fun s -> Hashtbl.replace seen s.st_gid ()) storms;
    Hashtbl.length seen
  in
  let victims =
    List.filter_map
      (fun (f : Flow.t) ->
        if f.Flow.is_incast || not (Flow.complete f) then None
        else begin
          let slow = Runner.slowdown t.env f in
          if slow < t.cfg.d_victim_slowdown then None
          else
            match Hashtbl.find_opt t.frecs f.Flow.id with
            | None -> None
            | Some r ->
              (* the pause must explain the slowdown: overlap at least a
                 fraction of the FCT, not just incidental (a flow slowed by
                 retransmission timeouts is not a pause victim) *)
              let floor_ns =
                max t.cfg.d_victim_min_pause
                  (int_of_float (t.cfg.d_victim_frac *. float_of_int (Flow.fct f)))
              in
              let best = ref None in
              List.iter
                (fun fq ->
                  let overlap = fq.fq_last - fq.fq_p0 in
                  if
                    fq.fq_peak <= t.cfg.d_victim_own_bytes
                    && overlap >= floor_ns
                    && (match !best with None -> true | Some (_, o) -> overlap > o)
                  then best := Some (fq, overlap))
                (List.rev !r);
              Option.map
                (fun (fq, overlap) ->
                  {
                    v_flow = f.Flow.id;
                    v_slowdown = slow;
                    v_gid = fq.fq_gid;
                    v_queue = fq.fq_queue;
                    v_pause_ns = overlap;
                  })
                !best
        end)
      flows
  in
  {
    r_storms = storms;
    r_storm_ports = storm_ports;
    r_max_blast = t.max_blast;
    r_deadlocks = List.rev t.deadlocks;
    r_victims = victims;
    r_ticks = t.ticks;
  }

(* bfc-lint: control-plane *)
let summary r =
  Printf.sprintf "storms=%d storm_ports=%d max_blast=%d deadlocks=%d dangerous=%d victims=%d"
    (List.length r.r_storms) r.r_storm_ports r.r_max_blast
    (List.length r.r_deadlocks)
    (List.length (List.filter (fun d -> d.dl_static_dangerous) r.r_deadlocks))
    (List.length r.r_victims)

(* bfc-lint: control-plane *)
let victim_p99 r =
  match r.r_victims with
  | [] -> 0.0
  | vs ->
    let s = Bfc_util.Stats.Sample.create () in
    List.iter (fun v -> Bfc_util.Stats.Sample.add s v.v_slowdown) vs;
    Bfc_util.Stats.Sample.percentile s 99.0
