(** Mechanical detectors for lossless-fabric pathologies (§2 of the paper).

    Attach to a {!Bfc_sim.Runner.env} after setup and before flows are
    injected (the [sp_obs] slot of {!Bfc_sim.Exp_common.std_setup}). The
    monitor chains onto the switch hook record and the NIC pause taps —
    existing telemetry keeps firing — and samples pause state on a periodic
    tick. Three detectors run:

    - {b Pause storms}: the fraction of time each port spent {e port-level}
      paused (PFC pause of a switch egress or of a host NIC uplink) over a
      sliding window of ticks. A port whose pause fraction sustains above
      the threshold is "in storm"; we record onset, duration and peak
      fraction per storm, plus the blast radius (max ports simultaneously
      in storm). BFC pauses individual queues, never whole ports, so a BFC
      fabric is storm-silent by construction — exactly the paper's claim.

    - {b Runtime deadlock}: each tick, the currently-paused egress ports
      (any queue paused, or PFC-paused) induce a subgraph of the static
      backpressure graph ({!Bfc_core.Deadlock.build}); a cycle that holds
      for [d_deadlock_hold] consecutive ticks with no packet transmitted by
      any port on it is a deadlock incident. Each incident is cross-checked
      against the static analysis: [dl_static_dangerous] says whether every
      edge of the witness cycle was statically classified dangerous.

    - {b Victim flows}: a completed flow whose slowdown exceeds the
      threshold, and which traversed a (port, queue) that was paused for a
      long stretch of the flow's lifetime while the flow's own footprint in
      that queue stayed small — slowdown caused by pauses on queues the
      flow never congested (head-of-line victims). Incast congestor flows
      are excluded. *)

type config = {
  d_period : Bfc_engine.Time.t;  (** sample tick *)
  d_window : int;  (** sliding window, in ticks *)
  d_storm_frac : float;  (** pause fraction that qualifies as a storm *)
  d_deadlock_hold : int;  (** ticks a frozen cycle must persist *)
  d_victim_slowdown : float;  (** min FCT slowdown to consider *)
  d_victim_own_bytes : int;  (** max own queue footprint to stay innocent *)
  d_victim_min_pause : Bfc_engine.Time.t;  (** min pause overlap *)
  d_victim_frac : float;
      (** pause overlap must also cover this fraction of the flow's FCT —
          the pause has to {e explain} the slowdown, so flows slowed by
          retransmission timeouts alone are not misattributed *)
}

val default_config : config

type storm = {
  st_gid : int;  (** global port id *)
  st_onset : Bfc_engine.Time.t;
  st_duration : Bfc_engine.Time.t;
  st_peak_frac : float;
}

type deadlock_incident = {
  dl_at : Bfc_engine.Time.t;
  dl_cycle : int list;  (** witness cycle of egress-port gids *)
  dl_static_dangerous : bool;
      (** every cycle edge was in the static dangerous set *)
}

type victim = {
  v_flow : int;
  v_slowdown : float;
  v_gid : int;  (** the paused port the flow was innocently stuck behind *)
  v_queue : int;
  v_pause_ns : int;  (** pause overlap with the flow's transit *)
}

type report = {
  r_storms : storm list;
  r_storm_ports : int;  (** distinct ports that stormed *)
  r_max_blast : int;  (** max ports simultaneously in storm *)
  r_deadlocks : deadlock_incident list;
  r_victims : victim list;
  r_ticks : int;
}

type t

(** Install the monitor: chains switch hooks / NIC pause taps and starts
    the sample ticker. Call once per environment, before injecting. *)
val attach : ?config:config -> Bfc_sim.Runner.env -> t

(** Finalize and collect. Open pause spans and storms are closed at the
    current sim time; victims are classified over the given flows (in list
    order, so output is deterministic). *)
val report : t -> flows:Bfc_net.Flow.t list -> report

(** Canonical one-line digest, integer fields only — byte-stable across
    replays of the same seed, used by the regression fixtures. *)
val summary : report -> string

(** p99 of victim slowdowns (0 when no victims). *)
val victim_p99 : report -> float
