(** The adversity matrix: scheme × fault scenario × workload.

    Each cell is one fully independent run (its own [Sim.t]/[Runner.env],
    per {!Bfc_sim.Exp_common.sweep_point}), with a fault {!Scenario}
    applied through {!Bfc_fault.Injector} and the {!Detect} monitors
    attached. Two legs:

    - {b Clos leg}: the standard Clos incast+background workload under
      clean / resume-loss / flap-storm / reboot / random-storm scenarios,
      for BFC and the PFC strawman. Clos shortest-path routing is
      statically deadlock-free, so any deadlock (or, for BFC, any storm)
      flagged here is a detector regression — CI enforces that.

    - {b Ring leg}: the crafted cyclic-buffer-dependency scenario of
      App. B — sustained cyclic flows on a 5-switch ring. PFC wedges (the
      runtime detector must fire, cross-checked against the static
      analysis); BFC without the elision filter wedges too; BFC with the
      filter completes silently.

    The resulting table is the EXPERIMENTS.md "BFC vs PFC under adversity"
    section; {!target} packages it for {!Bfc_sim.Experiments.run_parallel}
    (the stress library sits above [bfc_fault], so the target is driven
    from the CLI rather than registered in [Experiments.all]). *)

type cell = {
  c_scheme : string;
  c_scenario : string;
  c_injected : int;
  c_completed : int;
  c_drops : int;
  c_watchdog : int;  (** watchdog force-resumes, switches + NICs *)
  c_report : Detect.report;
  c_t_done : Bfc_engine.Time.t;  (** latest completion time, 0 if none *)
}

(** One Clos cell. [watchdog] arms the pause watchdog on every device
    (lost-Resume / dead-switch recovery); nonpositive disables it.
    [seed] drives the workload. *)
val clos_cell :
  Bfc_sim.Exp_common.profile ->
  scheme:Bfc_sim.Scheme.t ->
  scenario:Scenario.t ->
  watchdog:Bfc_engine.Time.t ->
  seed:int ->
  cell

type ring_variant = Ring_pfc | Ring_bfc_unprotected | Ring_bfc_filtered

(** [ring_topology sim n]: [n] switches in a unidirectional ring, one host
    per switch — the crafted CBD topology. Returns the topology and the
    host node ids in ring order. *)
val ring_topology : Bfc_engine.Sim.t -> int -> Bfc_net.Topology.t * int array

(** One crafted-CBD ring cell. No watchdog — the pure deadlock regime. *)
val ring_cell : Bfc_sim.Exp_common.profile -> ring_variant -> cell

(** Render finished cells as the adversity table. Recovery time per cell
    is its latest completion minus the same scheme's clean-run latest
    completion (only shown when every flow completed). *)
val matrix_table : cell list -> Bfc_sim.Exp_common.table

(** The full matrix as an {!Bfc_sim.Experiments.target} named "stress",
    runnable via [Experiments.run_parallel]. *)
val target : ?seed:int -> ?watchdog:Bfc_engine.Time.t -> unit -> Bfc_sim.Experiments.target
