(** Seeded, replayable fault schedules.

    A scenario is a named list of timed actions composed on top of
    {!Bfc_fault.Injector}: link down/up, flaps, switch reboots, loss
    bursts, and incast bursts. Scenarios carry no hidden state — any
    randomness (the random-storm generator, per-burst loss coins) is
    derived from seeds stored {e inside} the actions, so replaying the
    same scenario on the same environment is byte-identical. {!to_string}
    renders the full schedule canonically; two scenarios with equal
    strings behave identically.

    Links are named by topology-relative selectors, resolved against the
    environment at {!apply} time: [Core i] is the i-th switch-to-switch
    directed port (sorted by gid, modulo the count), [Uplink i] the i-th
    host NIC uplink, [Gid g] an explicit directed port. *)

type link_sel = Core of int | Uplink of int | Gid of int

type pkt_sel = All | Data | Ctrl | Resumes

type action =
  | Link_down of { at : Bfc_engine.Time.t; sel : link_sel }
  | Link_up of { at : Bfc_engine.Time.t; sel : link_sel }
  | Flap of {
      at : Bfc_engine.Time.t;
      sel : link_sel;
      down_for : Bfc_engine.Time.t;
      period : Bfc_engine.Time.t;
      count : int;
    }
  | Reboot of {
      at : Bfc_engine.Time.t;
      switch : int;  (** index into [Runner.switches] (node-id order) *)
      down_for : Bfc_engine.Time.t option;
    }
  | Loss_burst of {
      at : Bfc_engine.Time.t;
      dur : Bfc_engine.Time.t;
      p : float;
      pkts : pkt_sel;
      lseed : int;  (** seeds the loss model's coins *)
    }
  | Incast of {
      at : Bfc_engine.Time.t;
      degree : int;
      agg : int;  (** aggregate bytes, split evenly over senders *)
      iseed : int;  (** seeds sender/receiver choice *)
    }

type t = { sc_name : string; sc_actions : action list }

(** {2 Canned scenarios} — the matrix columns. *)

val clean : t

(** One loss burst that eats Resume/PFC-resume frames: pauses get stuck
    and only the pause watchdog can recover them. *)
val resume_loss : ?at:Bfc_engine.Time.t -> ?dur:Bfc_engine.Time.t -> ?p:float -> unit -> t

(** Repeated down/up cycles on two core links. *)
val flap_storm : ?at:Bfc_engine.Time.t -> ?count:int -> unit -> t

(** Crash-restart of one switch mid-trace, links down for the restart
    window. *)
val reboot : ?at:Bfc_engine.Time.t -> ?down_for:Bfc_engine.Time.t -> ?switch:int -> unit -> t

(** A deterministic random storm: flaps, loss bursts and an extra incast
    drawn from [seed] within [horizon]. Equal seeds give equal storms. *)
val random_storm : seed:int -> horizon:Bfc_engine.Time.t -> t

(** {2 Execution} *)

(** Schedule every action against the environment. Incast actions build
    their flows now (deterministically) and inject them; the flows are
    returned so callers can fold them into completion accounting.
    [id_base] keeps their flow ids clear of the workload's (default
    1_000_000). *)
val apply :
  t -> env:Bfc_sim.Runner.env -> inj:Bfc_fault.Injector.t -> ?id_base:int -> unit ->
  Bfc_net.Flow.t list

(** Canonical rendering of the schedule — the replay fixture format. *)
val to_string : t -> string
