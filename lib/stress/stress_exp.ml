module Sim = Bfc_engine.Sim
module Time = Bfc_engine.Time
module Topology = Bfc_net.Topology
module Flow = Bfc_net.Flow
module Runner = Bfc_sim.Runner
module Scheme = Bfc_sim.Scheme
module Exp_common = Bfc_sim.Exp_common
module Experiments = Bfc_sim.Experiments
module Metrics = Bfc_sim.Metrics
module Injector = Bfc_fault.Injector

type cell = {
  c_scheme : string;
  c_scenario : string;
  c_injected : int;
  c_completed : int;
  c_drops : int;
  c_watchdog : int;
  c_report : Detect.report;
  c_t_done : Time.t;
}

let latest_completion flows =
  List.fold_left
    (fun acc (f : Flow.t) ->
      if Flow.complete f && f.Flow.finish > acc then f.Flow.finish else acc)
    0 flows

(* ------------------------------------------------------------------ *)
(* Clos leg *)

(* A tighter shared buffer than the paper's 12 MB: at Smoke/Quick scale the
   default never fills, and a fabric that can't hit its PFC thresholds
   can't exhibit the pathologies this suite exists to measure. *)
let stress_buffer_bytes = 600_000

let clos_cell profile ~scheme ~scenario ~watchdog ~seed =
  let det = ref None in
  let extra = ref [] in
  let incast_degree = match profile with Exp_common.Smoke -> 8 | _ -> 16 in
  let s =
    {
      (Exp_common.std profile scheme) with
      Exp_common.sp_load = 0.5;
      sp_incast = Some { Exp_common.degree = incast_degree; agg_frac_of_paper = 0.5 };
      sp_seed = seed;
      sp_params =
        (fun p ->
          {
            p with
            Runner.pause_watchdog = (if watchdog > 0 then Some watchdog else None);
            buffer_bytes = stress_buffer_bytes;
          });
      sp_obs =
        (fun env ->
          let inj = Injector.attach env in
          det := Some (Detect.attach env);
          extra := Scenario.apply scenario ~env ~inj ());
    }
  in
  let r = Exp_common.run_std s in
  let env = r.Exp_common.env in
  let flows = r.Exp_common.flows @ !extra in
  let rep =
    match !det with
    | Some d -> Detect.report d ~flows
    | None -> invalid_arg "Stress_exp.clos_cell: monitor never attached"
  in
  {
    c_scheme = Scheme.name scheme;
    c_scenario = scenario.Scenario.sc_name;
    c_injected = Runner.injected env;
    c_completed = Runner.completed env;
    c_drops = Runner.total_drops env;
    c_watchdog = Metrics.watchdog_fires env;
    c_report = rep;
    c_t_done = latest_completion flows;
  }

(* ------------------------------------------------------------------ *)
(* Ring leg: the crafted cyclic-buffer-dependency scenario (App. B) *)

type ring_variant = Ring_pfc | Ring_bfc_unprotected | Ring_bfc_filtered

let ring_topology sim n =
  let b = Topology.Builder.create sim in
  let sws =
    Array.init n (fun i -> Topology.Builder.add_switch b ~name:(Printf.sprintf "r%d" i))
  in
  let hosts =
    Array.map
      (fun sw ->
        let h = Topology.Builder.add_host b ~name:(Printf.sprintf "rh%d" sw) in
        Topology.Builder.link b h sw ~gbps:100.0 ~prop:(Time.us 1.0);
        h)
      sws
  in
  for i = 0 to n - 1 do
    Topology.Builder.link b sws.(i) sws.((i + 1) mod n) ~gbps:100.0 ~prop:(Time.us 1.0)
  done;
  (Topology.Builder.finish b, hosts)

let ring_cell profile variant =
  let sim = Sim.create () in
  let n = 5 in
  let topo, hosts = ring_topology sim n in
  let scheme, filter, label =
    match variant with
    | Ring_pfc -> (Scheme.pfc_only, false, "cbd-ring")
    | Ring_bfc_unprotected ->
      (Scheme.Bfc { Scheme.bfc_default with Scheme.queues = 2 }, false, "cbd-ring")
    | Ring_bfc_filtered ->
      (Scheme.Bfc { Scheme.bfc_default with Scheme.queues = 2 }, true, "cbd-ring+filter")
  in
  (* Small shared buffer so the cyclic overload reaches the pause
     thresholds quickly; no watchdog — the pure deadlock regime. *)
  let params =
    { Runner.default_params with Runner.deadlock_filter = filter; buffer_bytes = 50_000 }
  in
  let env = Runner.setup ~topo ~scheme ~params in
  let det = Detect.attach env in
  let size, until, budget =
    match profile with
    | Exp_common.Smoke -> (300_000, Time.ms 1.0, Time.ms 2.0)
    | Exp_common.Quick -> (1_000_000, Time.ms 2.0, Time.ms 8.0)
    | Exp_common.Paper -> (5_000_000, Time.ms 4.0, Time.ms 40.0)
  in
  (* sustained one- and two-hop flows around the ring: overload on every
     ring link, in a cyclic pattern *)
  let ids = ref 0 in
  let flows =
    List.concat_map
      (fun i ->
        List.map
          (fun hop ->
            let id = !ids in
            incr ids;
            Flow.make ~id ~src:hosts.(i) ~dst:hosts.((i + hop) mod n) ~size ~arrival:0 ())
          [ 1; 2 ])
      (List.init n (fun i -> i))
  in
  Runner.inject env flows;
  Runner.run env ~until;
  Runner.drain env ~budget;
  {
    c_scheme = Scheme.name scheme;
    c_scenario = label;
    c_injected = Runner.injected env;
    c_completed = Runner.completed env;
    c_drops = Runner.total_drops env;
    c_watchdog = Metrics.watchdog_fires env;
    c_report = Detect.report det ~flows;
    c_t_done = latest_completion flows;
  }

(* ------------------------------------------------------------------ *)
(* Table assembly *)

let matrix_table cells =
  let clean_base scheme =
    List.find_opt
      (fun c ->
        c.c_scheme = scheme && c.c_scenario = "clean" && c.c_completed = c.c_injected)
      cells
  in
  let rows =
    List.map
      (fun c ->
        let rep = c.c_report in
        let recovery =
          match clean_base c.c_scheme with
          | Some base when c.c_scenario <> "clean" && c.c_completed = c.c_injected ->
            Exp_common.cell (float_of_int (c.c_t_done - base.c_t_done) /. 1000.0)
          | Some _ when c.c_scenario = "clean" -> "0"
          | _ -> "-"
        in
        [
          c.c_scheme;
          c.c_scenario;
          Printf.sprintf "%d/%d" c.c_completed c.c_injected;
          string_of_int c.c_drops;
          string_of_int c.c_watchdog;
          string_of_int (List.length rep.Detect.r_storms);
          string_of_int rep.Detect.r_max_blast;
          string_of_int (List.length rep.Detect.r_deadlocks);
          string_of_int (List.length rep.Detect.r_victims);
          Exp_common.cell (Detect.victim_p99 rep);
          recovery;
        ])
      cells
  in
  {
    Exp_common.title =
      "BFC vs PFC under adversity: pause storms, runtime deadlock, victim flows, recovery";
    header =
      [
        "scheme";
        "scenario";
        "completed";
        "drops";
        "wdog";
        "storms";
        "blast";
        "deadlock";
        "victims";
        "victim p99";
        "recovery us";
      ];
    rows;
  }

let target ?(seed = 1) ?(watchdog = Time.us 50.0) () =
  {
    Experiments.t_name = "stress";
    t_what = "scheme x fault-scenario adversity matrix (storms, deadlock, victims)";
    t_run =
      (fun profile ->
        let dur = Exp_common.duration profile ~dist:Bfc_workload.Dist.fb_hadoop in
        let scenarios =
          [
            Scenario.clean;
            Scenario.resume_loss ();
            Scenario.flap_storm ();
            Scenario.reboot ();
            Scenario.random_storm ~seed:(seed + 77) ~horizon:dur;
          ]
        in
        let schemes = [ Scheme.bfc; Scheme.pfc_only ] in
        let points =
          List.concat_map
            (fun scheme ->
              List.map
                (fun sc ->
                  Exp_common.pt
                    (Printf.sprintf "stress:%s:%s" (Scheme.name scheme) sc.Scenario.sc_name)
                    (fun () -> clos_cell profile ~scheme ~scenario:sc ~watchdog ~seed))
                scenarios)
            schemes
          @ [
              Exp_common.pt "stress:ring:pfc" (fun () -> ring_cell profile Ring_pfc);
              Exp_common.pt "stress:ring:bfc" (fun () ->
                  ring_cell profile Ring_bfc_unprotected);
              Exp_common.pt "stress:ring:bfc+filter" (fun () ->
                  ring_cell profile Ring_bfc_filtered);
            ]
        in
        [ matrix_table (Exp_common.sweep points) ]);
  }
