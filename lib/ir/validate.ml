(* The static validator: bfc-lint's DF/DT rules recast as structural
   checks on the IR. Where the lint pass pattern-matches OCaml syntax
   post-hoc, these checks hold by construction for anything expressed in
   the IR — a pipeline that passes cannot contain unbounded state (DF001),
   non-constant work (DF002), cross-stage recursion (DF003), per-packet
   float math (DF004), packet-path I/O (DF005), ambient randomness (DT001)
   or wall-clock reads (DT002).

   Diagnostics render in bfc-lint's exact `file:line:col: severity
   [ID name] message` shape, with the stage position as the line and the
   action position as the column, so editor tooling and the CI grep
   patterns treat both checkers uniformly. *)

type severity = Error | Warning

let severity_name = function Error -> "error" | Warning -> "warning"

type diag = {
  code : string; (* "DF001" .. "DT002", matching Bfclint.Rule ids *)
  rule : string; (* kebab name, matching Bfclint.Rule names *)
  severity : severity;
  where : string; (* "<pipeline>.ir/<stage>" provenance *)
  stage : int; (* 1-based stage position; 0 = pipeline level *)
  action : int; (* 1-based action position; 0 = stage level *)
  message : string;
}

let to_human d =
  Printf.sprintf "%s:%d:%d: %s [%s %s] %s" d.where d.stage d.action (severity_name d.severity)
    d.code d.rule d.message

let compare_diag a b =
  Stdlib.compare (a.stage, a.action, a.code, a.message) (b.stage, b.action, b.code, b.message)

let errors ds = List.filter (fun d -> d.severity = Error) ds

let has_errors ds = List.exists (fun d -> d.severity = Error) ds

(* ------------------------------------------------------------------ *)

let provenance (p : Ir.pipeline) stage =
  match stage with
  | None -> p.Ir.p_meta.Ir.m_name ^ ".ir"
  | Some (s : Ir.stage) -> p.Ir.p_meta.Ir.m_name ^ ".ir/" ^ s.Ir.s_name

let check (p : Ir.pipeline) =
  let ds = ref [] in
  let add ?stage ?(si = 0) ?(ai = 0) code rule severity message =
    ds := { code; rule; severity; where = provenance p stage; stage = si; action = ai; message } :: !ds
  in
  let b = p.Ir.p_budget in
  let stages = Array.of_list p.Ir.p_stages in
  let n = Array.length stages in
  (* --- stage roster: duplicates and the stage-count budget (DF002: more
     stages than the hardware has means per-packet recirculation loops) --- *)
  if n > b.Ir.b_max_stages then
    add "DF002" "df-while" Error
      (Printf.sprintf
         "%d stages exceed the %d-stage budget: the program cannot finish in one pipeline pass \
          (unbounded recirculation per packet)"
         n b.Ir.b_max_stages);
  let index = Hashtbl.create 16 in
  Array.iteri
    (fun i s ->
      (match Hashtbl.find_opt index s.Ir.s_name with
      | Some j ->
        add ~stage:s ~si:(i + 1) "DF003" "df-rec" Error
          (Printf.sprintf "stage name %s already used by stage %d: dependency edges are ambiguous"
             s.Ir.s_name (j + 1))
      | None -> ());
      Hashtbl.replace index s.Ir.s_name i)
    stages;
  (* --- per-stage resource budgets --- *)
  Array.iteri
    (fun i s ->
      let si = i + 1 in
      let n_actions = List.length s.Ir.s_actions in
      if n_actions > b.Ir.b_max_actions_per_stage then
        add ~stage:s ~si "DF002" "df-while" Error
          (Printf.sprintf "%d actions exceed the %d-actions-per-stage budget" n_actions
             b.Ir.b_max_actions_per_stage);
      List.iter
        (fun (t : Ir.table) ->
          if t.Ir.t_entries <= 0 then
            add ~stage:s ~si "DF001" "df-list" Error
              (Printf.sprintf
                 "table %s declares no bound on its entries: dataplane state must be fixed-size"
                 t.Ir.t_name)
          else if t.Ir.t_entries > b.Ir.b_max_table_entries then
            add ~stage:s ~si "DF001" "df-list" Error
              (Printf.sprintf "table %s has %d entries, over the %d-entry budget" t.Ir.t_name
                 t.Ir.t_entries b.Ir.b_max_table_entries);
          if t.Ir.t_keys = [] then
            add ~stage:s ~si "DF001" "df-list" Error
              (Printf.sprintf "table %s has no match key: lookups would need a scan" t.Ir.t_name))
        s.Ir.s_tables;
      List.iter
        (fun (r : Ir.register) ->
          if r.Ir.r_entries <= 0 || r.Ir.r_bits <= 0 then
            add ~stage:s ~si "DF001" "df-list" Error
              (Printf.sprintf "register %s is unbounded (%d entries x %d bits)" r.Ir.r_name
                 r.Ir.r_entries r.Ir.r_bits))
        s.Ir.s_registers;
      let bits = Ir.stage_bits s in
      if bits > b.Ir.b_sram_bits_per_stage then
        add ~stage:s ~si "DF001" "df-list" Error
          (Printf.sprintf "stage SRAM %.2f Mb exceeds the %.1f Mb per-stage budget"
             (float_of_int bits /. 1.0e6)
             (float_of_int b.Ir.b_sram_bits_per_stage /. 1.0e6)))
    stages;
  (* --- per-action feasibility / determinism --- *)
  Array.iteri
    (fun i s ->
      let si = i + 1 in
      List.iteri
        (fun j a ->
          let ai = j + 1 in
          let rand r =
            if r = Ir.Ambient then
              add ~stage:s ~si ~ai "DT001" "det-random" Error
                (Printf.sprintf "%s draws from ambient global randomness; use the seeded stream"
                   (Ir.action_name a))
          in
          let clk c =
            if c = Ir.Wall_clock then
              add ~stage:s ~si ~ai "DT002" "det-wallclock" Error
                (Printf.sprintf "%s reads the wall clock; timestamps must come from the sim clock"
                   (Ir.action_name a))
          in
          match a with
          | Ir.Sample { rand = r; _ } -> rand r
          | Ir.Assign_queue { rand = r; clock = c; _ } ->
            rand r;
            clk c
          | Ir.Bump_flow_size { clock = c }
          | Ir.Dec_flow_size { clock = c }
          | Ir.Credit_dec_size { clock = c }
          | Ir.Credit_assign { clock = c; _ } ->
            clk c
          | Ir.Float_compute what ->
            add ~stage:s ~si ~ai "DF004" "df-float" Error
              (Printf.sprintf
                 "per-packet float computation (%s): switch ALUs are integer-only; precompute a \
                  lookup table at control-plane time"
                 what)
          | Ir.Unbounded_loop what ->
            add ~stage:s ~si ~ai "DF002" "df-while" Error
              (Printf.sprintf "unbounded per-packet loop (%s): every action must be constant-time"
                 what)
          | Ir.Linked_scan what ->
            add ~stage:s ~si ~ai "DF001" "df-list" Error
              (Printf.sprintf
                 "per-packet linked scan (%s): pointer chasing has no match-action equivalent" what)
          | Ir.Debug_log what ->
            add ~stage:s ~si ~ai "DF005" "df-io" Warning
              (Printf.sprintf "per-packet I/O (%s): use counters or the tracer instead" what)
          | _ -> ())
        s.Ir.s_actions)
    stages;
  (* --- cross-stage dependencies (DF003): unknown edges, pass-order
     violations without recirculation, and cycles.

     classify + enqueue share the ingress pipeline pass; dequeue + drop are
     the egress side, which can only reach ingress-owned state through the
     recirculated header (paper 3.3); ctrl is the reacting switch, a pass
     of its own. Within a pass a stage may read state owned by a stage
     physically before it, never after. --- *)
  let pass_of = function
    | Ir.H_classify | Ir.H_enqueue -> 0
    | Ir.H_dequeue | Ir.H_drop -> 1
    | Ir.H_ctrl -> 2
  in
  Array.iteri
    (fun i s ->
      let si = i + 1 in
      List.iter
        (fun dep ->
          match Hashtbl.find_opt index dep with
          | None ->
            add ~stage:s ~si "DF003" "df-rec" Error
              (Printf.sprintf "dependency on unknown stage %s" dep)
          | Some j ->
            let d = stages.(j) in
            let p_s = pass_of s.Ir.s_hook and p_d = pass_of d.Ir.s_hook in
            let r_s = Ir.hook_rank s.Ir.s_hook and r_d = Ir.hook_rank d.Ir.s_hook in
            if p_s < p_d then
              add ~stage:s ~si "DF003" "df-rec" Error
                (Printf.sprintf
                   "%s (%s hook) reads state of %s (%s hook), a later pipeline pass: impossible \
                    without looping the packet"
                   s.Ir.s_name (Ir.hook_name s.Ir.s_hook) d.Ir.s_name (Ir.hook_name d.Ir.s_hook))
            else if p_s > p_d && not s.Ir.s_recirc then
              add ~stage:s ~si "DF003" "df-rec" Error
                (Printf.sprintf
                   "%s (%s hook) touches %s-owned state of %s without declaring recirculation \
                    (paper 3.3: egress updates ingress state via the recirculated header)"
                   s.Ir.s_name (Ir.hook_name s.Ir.s_hook) (Ir.hook_name d.Ir.s_hook) d.Ir.s_name)
            else if p_s = p_d && (r_s < r_d || (r_s = r_d && j >= i)) then
              add ~stage:s ~si "DF003" "df-rec" Error
                (Printf.sprintf
                   "%s depends on %s which runs at or after it in the same pass: stages cannot \
                    read forward"
                   s.Ir.s_name d.Ir.s_name))
        s.Ir.s_deps)
    stages;
  (* cycle detection over the dependency graph *)
  let color = Array.make n 0 in
  (* 0 unvisited, 1 on stack, 2 done *)
  let cycle = ref None in
  let rec visit path i =
    if !cycle = None then
      if color.(i) = 1 then
        cycle :=
          Some (List.rev (stages.(i).Ir.s_name :: path))
      else if color.(i) = 0 then begin
        color.(i) <- 1;
        List.iter
          (fun dep ->
            match Hashtbl.find_opt index dep with
            | Some j -> visit (stages.(i).Ir.s_name :: path) j
            | None -> ())
          stages.(i).Ir.s_deps;
        color.(i) <- 2
      end
  in
  for i = 0 to n - 1 do
    visit [] i
  done;
  (match !cycle with
  | Some names ->
    add "DF003" "df-rec" Error
      (Printf.sprintf "dependency cycle through %s: stage recursion has no hardware equivalent"
         (String.concat " -> " names))
  | None -> ());
  List.sort compare_diag !ds

(* ------------------------------------------------------------------ *)
(* Budget report (bfc_sim ir --validate): stage count, per-stage SRAM and
   register load, dependency edges. *)

let report (p : Ir.pipeline) =
  let buf = Buffer.create 1024 in
  let b = p.Ir.p_budget in
  let stages = p.Ir.p_stages in
  Buffer.add_string buf
    (Printf.sprintf "%-24s %d/%d stages\n" p.Ir.p_meta.Ir.m_name (List.length stages)
       b.Ir.b_max_stages);
  Buffer.add_string buf
    (Printf.sprintf "  %-18s %-8s %7s %10s %10s  %s\n" "stage" "hook" "actions" "table_Kb"
       "reg_Kb" "deps");
  let worst = ref 0 in
  List.iter
    (fun s ->
      let tb = Ir.stage_table_bits s and rb = Ir.stage_register_bits s in
      if tb + rb > !worst then worst := tb + rb;
      Buffer.add_string buf
        (Printf.sprintf "  %-18s %-8s %7d %10d %10d  %s%s\n" s.Ir.s_name
           (Ir.hook_name s.Ir.s_hook)
           (List.length s.Ir.s_actions)
           (tb / 1024) (rb / 1024)
           (String.concat "," s.Ir.s_deps)
           (if s.Ir.s_recirc then " [recirc]" else "")))
    stages;
  Buffer.add_string buf
    (Printf.sprintf "  peak stage SRAM %.2f Mb of %.1f Mb budget\n"
       (float_of_int !worst /. 1.0e6)
       (float_of_int b.Ir.b_sram_bits_per_stage /. 1.0e6));
  Buffer.contents buf
