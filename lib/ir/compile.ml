(* Lowering: a validated pipeline becomes five flat op arrays, one per
   switch hook, interpreted by integer-only executors over the same flat
   state the hand-written dataplanes use (Flow_table / Pause_counter /
   Dqa / int arrays). No per-packet closures, no lists, no float math on
   the hot path: attach resolves every action to a variant constructor and
   the executors dispatch over them in a [for] loop.

   Each op's body is the corresponding fragment of Dataplane /
   Credit_dataplane, in the same order the hand-written hooks run them and
   drawing from the same seeded RNG stream — the differential test holds
   the two implementations to byte-identical output. *)

module Packet = Bfc_net.Packet
module Flow = Bfc_net.Flow
module Port = Bfc_net.Port
module Node = Bfc_net.Node
module Switch = Bfc_switch.Switch
module Fifo = Bfc_switch.Fifo
module Sim = Bfc_engine.Sim
module Rng = Bfc_util.Rng
module Dqa = Bfc_core.Dqa
module Flow_table = Bfc_core.Flow_table
module Pause_counter = Bfc_core.Pause_counter
module Threshold = Bfc_core.Threshold
module Dataplane = Bfc_core.Dataplane

exception Infeasible of Validate.diag list

(* Resolved constant-time ops. One constructor per compilable Ir.action;
   the parameters an action carries (sampling rate, threshold source,
   sticky window) live in [t], resolved once at attach time. *)
type op =
  | O_incast_relabel
  | O_sample
  | O_flow_lookup
  | O_assign_queue
  | O_bump_size
  | O_collision_probe
  | O_mark_occupied
  | O_threshold_mark
  | O_unmark_resume
  | O_dec_size
  | O_mark_empty
  | O_stamp_upstream
  | O_drop_undo
  | O_apply_pause
  | O_credit_assign
  | O_note_upstream
  | O_credit_mark_occupied
  | O_credit_regate
  | O_grant_back
  | O_credit_consume
  | O_credit_dec_size
  | O_credit_mark_empty
  | O_credit_replenish

type t = {
  sw : Switch.t;
  pipeline : Ir.pipeline;
  (* parameters resolved from the pipeline's actions *)
  sampling : float; (* compared with >=, fed to Rng.bernoulli: no float ops here *)
  incast_label : bool;
  classes : int;
  qpc : int;
  sticky : Bfc_engine.Time.t;
  th : Threshold.source;
  (* flat dataplane state, identical to the hand-written programs *)
  ft : Flow_table.t;
  pc : Pause_counter.t;
  dqa : Dqa.t;
  rng : Rng.t;
  st : Dataplane.stats;
  occupancy : int array array;
  allow_bp : (in_port:int -> egress:int -> bool) ref;
  balances : int array array; (* credit: per (egress, queue) byte balance *)
  uncredited : bool array;
  mutable credits_sent : int;
  (* the compiled programs *)
  ops_classify : op array;
  ops_enqueue : op array;
  ops_dequeue : op array;
  ops_drop : op array;
  ops_ctrl : op array;
  (* per-packet metadata carried between ops of one hook invocation (the
     PHV scratch registers); mutable scalars, never allocated per packet *)
  mutable pmd_entry : Flow_table.entry;
  mutable pmd_q : int;
  mutable pmd_cls : int;
  mutable pmd_done : bool;
  mutable pmd_handled : bool;
}

let switch t = t.sw

let pipeline t = t.pipeline

let stats t = t.st

let credits_sent t = t.credits_sent

let balance t ~egress ~queue = t.balances.(egress).(queue)

let allow_backpressure t f = t.allow_bp := f

let now t = Sim.now (Switch.sim t.sw)

let cls_of_flow t flow = min (t.classes - 1) (max 0 flow.Flow.prio_class)

let cls_of_pkt t pkt = min (t.classes - 1) (max 0 pkt.Packet.prio)

let ctrl_queue t ~cls = (cls * t.qpc) + t.qpc - 1

let domain t ~egress ~cls = (egress * t.classes) + cls

let is_data_queue t ~queue = queue mod t.qpc < t.qpc - 1

let local_of_queue t ~queue = queue mod t.qpc

let cls_of_queue t ~queue = queue / t.qpc

let threshold t ~egress =
  Threshold.get t.th ~egress ~n_active:(Switch.n_active t.sw ~egress)

let make_ctrl t kind =
  match Switch.pool t.sw with
  | Some p ->
    Packet.Pool.acquire p kind ~src:(Switch.node_id t.sw) ~dst:(-1) ~size:Packet.ctrl_bytes ()
  | None ->
    Packet.make ~sim:(Switch.sim t.sw) kind ~src:(Switch.node_id t.sw) ~dst:(-1)
      ~size:Packet.ctrl_bytes ()

let send_pause t ~egress ~upstream_q kind =
  let pkt = make_ctrl t kind in
  pkt.Packet.ctrl_a <- upstream_q;
  Switch.send_ctrl t.sw ~egress pkt;
  match kind with
  | Packet.Pause -> t.st.Dataplane.pauses_sent <- t.st.Dataplane.pauses_sent + 1
  | Packet.Resume -> t.st.Dataplane.resumes_sent <- t.st.Dataplane.resumes_sent + 1
  | _ -> ()

let grant_back t ~in_port ~upstream_q ~bytes =
  if in_port >= 0 && upstream_q >= 0 then begin
    let pkt = make_ctrl t Packet.Hop_credit in
    pkt.Packet.ctrl_a <- upstream_q;
    pkt.Packet.ctrl_b <- bytes;
    t.credits_sent <- t.credits_sent + 1;
    Switch.send_ctrl t.sw ~egress:in_port pkt
  end

(* --------------------------------------------------------------- *)
(* Hook executors. Each runs its op array in pipeline order inside a
   kind-dispatching preamble shared by the BFC and credit programs (with
   classes = 1 the BFC class helpers collapse to the credit layout, so
   the control-queue arithmetic is common). *)

let run_classify t _sw ~in_port:_ ~egress pkt =
  match pkt.Packet.kind with
  | Packet.Data ->
    let flow = Packet.flow_exn pkt ~at:(now t) in
    let cls = cls_of_flow t flow in
    t.pmd_cls <- cls;
    t.pmd_done <- false;
    let ops = t.ops_classify in
    for i = 0 to Array.length ops - 1 do
      if not t.pmd_done then
        match ops.(i) with
        | O_incast_relabel ->
          if flow.Flow.is_incast then begin
            pkt.Packet.bp_sampled <- true;
            t.pmd_q <- cls * t.qpc;
            t.pmd_done <- true
          end
        | O_sample ->
          let sampled = t.sampling >= 1.0 || Rng.bernoulli t.rng t.sampling in
          pkt.Packet.bp_sampled <- sampled
        | O_flow_lookup ->
          t.pmd_entry <- Flow_table.entry t.ft ~egress ~fid_hash:(Flow.hash flow)
        | O_assign_queue ->
          let e = t.pmd_entry in
          let stale = now t - e.Flow_table.last > t.sticky in
          if e.Flow_table.size = 0 && (e.Flow_table.q < 0 || stale) then begin
            let local =
              Dqa.assign t.dqa ~egress:(domain t ~egress ~cls) ~fid_hash:(Flow.hash flow)
            in
            t.st.Dataplane.assignments <- t.st.Dataplane.assignments + 1;
            if
              Dqa.policy t.dqa = Dqa.Dynamic
              && not (Dqa.is_empty_queue t.dqa ~egress:(domain t ~egress ~cls) ~queue:local)
            then t.st.Dataplane.random_assignments <- t.st.Dataplane.random_assignments + 1;
            e.Flow_table.q <- (cls * t.qpc) + local
          end;
          t.pmd_q <- e.Flow_table.q
        | O_bump_size ->
          if pkt.Packet.bp_sampled then begin
            let e = t.pmd_entry in
            e.Flow_table.size <- e.Flow_table.size + 1;
            e.Flow_table.last <- now t
          end
        | O_collision_probe ->
          let e = t.pmd_entry in
          if t.occupancy.(egress).(e.Flow_table.q) > 0 && e.Flow_table.size <= 1 then
            t.st.Dataplane.queue_collisions <- t.st.Dataplane.queue_collisions + 1
        | O_credit_assign ->
          let e = Flow_table.entry t.ft ~egress ~fid_hash:(Flow.hash flow) in
          let stale = now t - e.Flow_table.last > t.sticky in
          if e.Flow_table.size = 0 && (e.Flow_table.q < 0 || stale) then
            e.Flow_table.q <-
              Dqa.assign t.dqa ~egress:(domain t ~egress ~cls) ~fid_hash:(Flow.hash flow);
          e.Flow_table.size <- e.Flow_table.size + 1;
          e.Flow_table.last <- now t;
          t.pmd_entry <- e;
          t.pmd_q <- e.Flow_table.q
        | _ -> ()
    done;
    t.pmd_q
  | Packet.Ack | Packet.Nack | Packet.Grant | Packet.Cnp | Packet.Credit | Packet.Credit_req ->
    ctrl_queue t ~cls:(cls_of_pkt t pkt)
  | Packet.Pause | Packet.Resume | Packet.Pause_bitmap | Packet.Hop_credit | Packet.Pfc ->
    ctrl_queue t ~cls:0

let run_enqueue t _sw ~in_port ~egress ~queue pkt =
  if pkt.Packet.kind = Packet.Data then begin
    let ops = t.ops_enqueue in
    for i = 0 to Array.length ops - 1 do
      match ops.(i) with
      | O_mark_occupied ->
        if is_data_queue t ~queue then begin
          Dqa.mark_occupied t.dqa
            ~egress:(domain t ~egress ~cls:(cls_of_queue t ~queue))
            ~queue:(local_of_queue t ~queue);
          t.occupancy.(egress).(queue) <- t.occupancy.(egress).(queue) + 1
        end
      | O_threshold_mark ->
        if
          pkt.Packet.bp_sampled
          && in_port >= 0
          && pkt.Packet.upstream_q >= 0
          && !(t.allow_bp) ~in_port ~egress
        then begin
          let q = Switch.queue t.sw ~egress ~queue in
          if q.Fifo.bytes > threshold t ~egress then begin
            pkt.Packet.bp_counted <- true;
            pkt.Packet.bp_upq <- pkt.Packet.upstream_q;
            t.st.Dataplane.packets_counted <- t.st.Dataplane.packets_counted + 1;
            match Pause_counter.incr t.pc ~ingress:in_port ~upstream_q:pkt.Packet.upstream_q with
            | Pause_counter.Went_up ->
              send_pause t ~egress:in_port ~upstream_q:pkt.Packet.upstream_q Packet.Pause
            | Pause_counter.Went_down | Pause_counter.No_change -> ()
          end
        end
      | O_note_upstream -> pkt.Packet.bp_upq <- pkt.Packet.upstream_q
      | O_credit_mark_occupied ->
        if is_data_queue t ~queue then
          Dqa.mark_occupied t.dqa
            ~egress:(domain t ~egress ~cls:(cls_of_queue t ~queue))
            ~queue:(local_of_queue t ~queue)
      | O_credit_regate ->
        if not t.uncredited.(egress) then begin
          let q = Switch.queue t.sw ~egress ~queue in
          let next = Fifo.head_size q in
          let blocked = next > 0 && t.balances.(egress).(queue) < next in
          Switch.set_queue_paused t.sw ~egress ~queue blocked
        end
      | _ -> ()
    done
  end

let run_dequeue t _sw ~egress ~queue pkt =
  if pkt.Packet.kind = Packet.Data then begin
    let flow = Packet.flow_exn pkt ~at:(now t) in
    let ops = t.ops_dequeue in
    for i = 0 to Array.length ops - 1 do
      match ops.(i) with
      | O_unmark_resume ->
        if pkt.Packet.bp_counted then begin
          (match
             Pause_counter.decr t.pc ~ingress:pkt.Packet.bp_in_port ~upstream_q:pkt.Packet.bp_upq
           with
          | Pause_counter.Went_down ->
            send_pause t ~egress:pkt.Packet.bp_in_port ~upstream_q:pkt.Packet.bp_upq Packet.Resume
          | Pause_counter.Went_up | Pause_counter.No_change -> ());
          pkt.Packet.bp_counted <- false
        end
      | O_dec_size ->
        let incast_bypass = t.incast_label && flow.Flow.is_incast in
        if pkt.Packet.bp_sampled && not incast_bypass then begin
          let e = Flow_table.entry t.ft ~egress ~fid_hash:(Flow.hash flow) in
          e.Flow_table.size <- max 0 (e.Flow_table.size - 1);
          e.Flow_table.last <- now t
        end
      | O_mark_empty ->
        if is_data_queue t ~queue then begin
          t.occupancy.(egress).(queue) <- max 0 (t.occupancy.(egress).(queue) - 1);
          let q = Switch.queue t.sw ~egress ~queue in
          let incast_queue = t.incast_label && local_of_queue t ~queue = 0 in
          if Fifo.is_empty q && not incast_queue then
            Dqa.mark_empty t.dqa
              ~egress:(domain t ~egress ~cls:(cls_of_queue t ~queue))
              ~queue:(local_of_queue t ~queue)
        end
      | O_stamp_upstream -> pkt.Packet.upstream_q <- queue
      | O_grant_back ->
        grant_back t ~in_port:pkt.Packet.bp_in_port ~upstream_q:pkt.Packet.bp_upq
          ~bytes:pkt.Packet.size
      | O_credit_consume ->
        if not t.uncredited.(egress) then begin
          let q = Switch.queue t.sw ~egress ~queue in
          let next = Fifo.head_size q in
          t.balances.(egress).(queue) <- t.balances.(egress).(queue) - pkt.Packet.size;
          if next > 0 && t.balances.(egress).(queue) < next then
            Switch.set_queue_paused t.sw ~egress ~queue true
        end
      | O_credit_dec_size ->
        let e = Flow_table.entry t.ft ~egress ~fid_hash:(Flow.hash flow) in
        e.Flow_table.size <- max 0 (e.Flow_table.size - 1);
        e.Flow_table.last <- now t
      | O_credit_mark_empty ->
        if is_data_queue t ~queue then begin
          let q = Switch.queue t.sw ~egress ~queue in
          if Fifo.is_empty q then
            Dqa.mark_empty t.dqa
              ~egress:(domain t ~egress ~cls:(cls_of_queue t ~queue))
              ~queue:(local_of_queue t ~queue)
        end
      | _ -> ()
    done
  end

let run_drop t _sw ~in_port:_ ~egress ~queue:_ pkt =
  if pkt.Packet.kind = Packet.Data then begin
    let flow = Packet.flow_exn pkt ~at:(now t) in
    let ops = t.ops_drop in
    for i = 0 to Array.length ops - 1 do
      match ops.(i) with
      | O_drop_undo ->
        let incast_bypass = t.incast_label && flow.Flow.is_incast in
        if pkt.Packet.bp_sampled && not incast_bypass then begin
          let e = Flow_table.entry t.ft ~egress ~fid_hash:(Flow.hash flow) in
          e.Flow_table.size <- max 0 (e.Flow_table.size - 1)
        end
      | _ -> ()
    done
  end

let run_ctrl t _sw ~in_port pkt =
  t.pmd_handled <- false;
  let ops = t.ops_ctrl in
  for i = 0 to Array.length ops - 1 do
    match ops.(i) with
    | O_apply_pause -> (
      match pkt.Packet.kind with
      | Packet.Pause | Packet.Resume | Packet.Pause_bitmap ->
        let n_queues = Switch.(config t.sw).Switch.queues_per_port in
        Dataplane.apply_ctrl
          ~set_paused:(fun ~queue paused ->
            Switch.set_queue_paused t.sw ~egress:in_port ~queue paused)
          ~n_queues pkt;
        t.pmd_handled <- true
      | _ -> ())
    | O_credit_replenish -> (
      match pkt.Packet.kind with
      | Packet.Hop_credit ->
        let queue = pkt.Packet.ctrl_a in
        if queue >= 0 && queue < Switch.(config t.sw).Switch.queues_per_port then begin
          let q = Switch.queue t.sw ~egress:in_port ~queue in
          let next = Fifo.head_size q in
          t.balances.(in_port).(queue) <- t.balances.(in_port).(queue) + pkt.Packet.ctrl_b;
          if next > 0 && t.balances.(in_port).(queue) >= next then
            Switch.set_queue_paused t.sw ~egress:in_port ~queue false
        end;
        t.pmd_handled <- true
      | _ -> ())
    | _ -> ()
  done;
  t.pmd_handled

(* --------------------------------------------------------------- *)
(* Control-plane side: validation, parameter extraction, lowering.    *)

(* bfc-lint: control-plane *)
let start_bitmap_refresh t period =
  let sim = Switch.sim t.sw in
  ignore
    (Sim.every sim ~period (fun () ->
         for ingress = 0 to Switch.n_ports t.sw - 1 do
           let paused = Pause_counter.paused_queues t.pc ~ingress in
           let pkt = make_ctrl t Packet.Pause_bitmap in
           pkt.Packet.ints <- Array.of_list paused;
           Switch.send_ctrl t.sw ~egress:ingress pkt
         done))

(* bfc-lint: control-plane *)
let actions p =
  List.concat_map (fun (s : Ir.stage) -> s.Ir.s_actions) p.Ir.p_stages

(* bfc-lint: control-plane *)
let lower_action (a : Ir.action) : op =
  match a with
  | Ir.Incast_relabel -> O_incast_relabel
  | Ir.Sample _ -> O_sample
  | Ir.Flow_lookup -> O_flow_lookup
  | Ir.Assign_queue _ -> O_assign_queue
  | Ir.Bump_flow_size _ -> O_bump_size
  | Ir.Collision_probe -> O_collision_probe
  | Ir.Mark_occupied -> O_mark_occupied
  | Ir.Threshold_mark _ -> O_threshold_mark
  | Ir.Unmark_resume -> O_unmark_resume
  | Ir.Dec_flow_size _ -> O_dec_size
  | Ir.Mark_empty -> O_mark_empty
  | Ir.Stamp_upstream_q -> O_stamp_upstream
  | Ir.Drop_undo_size -> O_drop_undo
  | Ir.Apply_pause -> O_apply_pause
  | Ir.Credit_assign _ -> O_credit_assign
  | Ir.Note_upstream -> O_note_upstream
  | Ir.Credit_mark_occupied -> O_credit_mark_occupied
  | Ir.Credit_regate -> O_credit_regate
  | Ir.Grant_back -> O_grant_back
  | Ir.Credit_consume -> O_credit_consume
  | Ir.Credit_dec_size _ -> O_credit_dec_size
  | Ir.Credit_mark_empty -> O_credit_mark_empty
  | Ir.Credit_replenish -> O_credit_replenish
  | Ir.Float_compute _ | Ir.Unbounded_loop _ | Ir.Linked_scan _ | Ir.Debug_log _ ->
    invalid_arg "Compile.lower_action: infeasible action survived validation"

(* bfc-lint: control-plane *)
let ops_for p hook =
  Array.of_list
    (List.concat_map
       (fun (s : Ir.stage) ->
         if s.Ir.s_hook = hook then List.map lower_action s.Ir.s_actions else [])
       p.Ir.p_stages)

(* bfc-lint: control-plane *)
let attach (p : Ir.pipeline) sw =
  let diags = Validate.check p in
  if Validate.has_errors diags then raise (Infeasible (Validate.errors diags));
  let m = p.Ir.p_meta in
  let scfg = Switch.config sw in
  let nq = scfg.Switch.queues_per_port in
  let n_ports = Switch.n_ports sw in
  if m.Ir.m_ports <> n_ports then
    invalid_arg "Compile.attach: pipeline compiled for a different port count";
  if m.Ir.m_queues_per_port <> nq then
    invalid_arg "Compile.attach: pipeline compiled for a different queue count";
  let acts = actions p in
  (* stub actions (Float_compute &c.) have no lowering: even when their
     diagnostic is only a warning (DF005), the pipeline cannot compile *)
  let has_stub =
    List.exists
      (function
        | Ir.Float_compute _ | Ir.Unbounded_loop _ | Ir.Linked_scan _ | Ir.Debug_log _ -> true
        | _ -> false)
      acts
  in
  if has_stub then raise (Infeasible diags);
  let is_credit =
    List.exists (function Ir.Credit_assign _ -> true | _ -> false) acts
  in
  let has_assign =
    is_credit || List.exists (function Ir.Assign_queue _ -> true | _ -> false) acts
  in
  if not has_assign then
    invalid_arg "Compile.attach: pipeline has no queue-assignment action";
  let classes = if is_credit then 1 else m.Ir.m_classes in
  if (not is_credit) && max 1 scfg.Switch.classes <> classes then
    invalid_arg "Compile.attach: pipeline compiled for a different class count";
  if nq mod classes <> 0 then invalid_arg "Compile.attach: queues not divisible by classes";
  let qpc = nq / classes in
  if qpc < 2 then invalid_arg "Compile.attach: need at least 2 queues per class";
  let sampling =
    List.fold_left
      (fun acc a -> match a with Ir.Sample { rate; _ } -> rate | _ -> acc)
      1.0 acts
  in
  let incast_label = List.exists (function Ir.Incast_relabel -> true | _ -> false) acts in
  let policy =
    List.fold_left
      (fun acc a -> match a with Ir.Assign_queue { policy; _ } -> policy | _ -> acc)
      Dqa.Dynamic acts
  in
  let sticky_mult =
    List.fold_left
      (fun acc a ->
        match a with
        | Ir.Assign_queue { sticky_hrtt_mult; _ } | Ir.Credit_assign { sticky_hrtt_mult; _ } ->
          sticky_hrtt_mult
        | _ -> acc)
      2.0 acts
  in
  let fixed_th, th_factor =
    List.fold_left
      (fun acc a ->
        match a with
        | Ir.Threshold_mark { th = Ir.Th_fixed b } -> (Some b, snd acc)
        | Ir.Threshold_mark { th = Ir.Th_table { factor } } -> (None, factor)
        | _ -> acc)
      (Some max_int, 1.0) acts
  in
  let balance_init =
    List.fold_left
      (fun acc (s : Ir.stage) ->
        List.fold_left
          (fun acc (r : Ir.register) -> if r.Ir.r_name = "balances" then r.Ir.r_init else acc)
          acc s.Ir.s_registers)
      0 p.Ir.p_stages
  in
  let seed_stride = if is_credit then 104_729 else 7919 in
  let rng = Rng.create (m.Ir.m_seed + (Switch.node_id sw * seed_stride)) in
  let t =
    {
      sw;
      pipeline = p;
      sampling;
      incast_label;
      classes;
      qpc;
      sticky = Threshold.sticky_window sw ~mult:sticky_mult;
      th = Threshold.source_for_switch sw ~fixed_th ~factor:th_factor;
      ft =
        Flow_table.create ~egresses:n_ports ~queues_per_port:nq ~mult:m.Ir.m_table_mult;
      pc = Pause_counter.create ~ingresses:n_ports ~max_upstream_q:m.Ir.m_max_upstream_q;
      dqa = Dqa.create ~egresses:(n_ports * classes) ~queues:(qpc - 1) ~policy ~rng;
      rng;
      st =
        {
          Dataplane.pauses_sent = 0;
          resumes_sent = 0;
          packets_counted = 0;
          queue_collisions = 0;
          assignments = 0;
          random_assignments = 0;
        };
      occupancy = Array.init n_ports (fun _ -> Array.make nq 0);
      allow_bp = ref (fun ~in_port:_ ~egress:_ -> true);
      balances = Array.init n_ports (fun _ -> Array.make nq balance_init);
      uncredited =
        Array.init n_ports (fun e -> (Port.peer (Switch.port sw e)).Node.kind = Node.Host);
      credits_sent = 0;
      ops_classify = ops_for p Ir.H_classify;
      ops_enqueue = ops_for p Ir.H_enqueue;
      ops_dequeue = ops_for p Ir.H_dequeue;
      ops_drop = ops_for p Ir.H_drop;
      ops_ctrl = ops_for p Ir.H_ctrl;
      pmd_entry = { Flow_table.q = -1; size = 0; last = 0 };
      pmd_q = 0;
      pmd_cls = 0;
      pmd_done = false;
      pmd_handled = false;
    }
  in
  if incast_label then
    for d = 0 to (n_ports * classes) - 1 do
      Dqa.mark_occupied t.dqa ~egress:d ~queue:0
    done;
  let hk = Switch.hooks sw in
  if Array.length t.ops_classify > 0 then hk.Switch.classify <- run_classify t;
  if Array.length t.ops_enqueue > 0 then hk.Switch.on_enqueue <- run_enqueue t;
  if Array.length t.ops_dequeue > 0 then hk.Switch.on_dequeue <- run_dequeue t;
  if Array.length t.ops_drop > 0 then hk.Switch.on_drop <- run_drop t;
  if Array.length t.ops_ctrl > 0 then hk.Switch.on_ctrl <- run_ctrl t;
  (match m.Ir.m_bitmap_period with None -> () | Some period -> start_bitmap_refresh t period);
  t

(* bfc-lint: control-plane *)
let attach_bfc sw (cfg : Dataplane.config) =
  let scfg = Switch.config sw in
  attach
    (Bfc_pipeline.bfc ~ports:(Switch.n_ports sw) ~queues_per_port:scfg.Switch.queues_per_port
       ~classes:(max 1 scfg.Switch.classes) cfg)
    sw

(* bfc-lint: control-plane *)
let attach_credit sw (cfg : Bfc_core.Credit_dataplane.config) =
  let scfg = Switch.config sw in
  attach
    (Bfc_pipeline.credit ~ports:(Switch.n_ports sw)
       ~queues_per_port:scfg.Switch.queues_per_port cfg)
    sw

(* Wipe compiled-program state on switch reboot, mirroring
   Dataplane.reset (the reloaded program has no memory of the old run). *)
(* bfc-lint: control-plane *)
let reset t =
  Flow_table.reset t.ft;
  Pause_counter.reset t.pc;
  Dqa.reset t.dqa;
  Array.iter (fun row -> Array.fill row 0 (Array.length row) 0) t.occupancy;
  if t.incast_label then
    for d = 0 to (Switch.n_ports t.sw * t.classes) - 1 do
      Dqa.mark_occupied t.dqa ~egress:d ~queue:0
    done
