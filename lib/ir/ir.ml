(* The typed match-action pipeline IR ("dataplane as data").

   A pipeline is a list of stages, each bound to one switch hook (the
   parser/deparser analogy: classify = ingress parser + match, enqueue =
   ingress pipeline tail, dequeue = egress pipeline / recirculated header,
   ctrl = the reacting side). Stages declare the bounded match tables and
   register files they own and the constant-time actions they run; the
   explicit dependency edges between stages make cross-stage state sharing
   visible to the validator instead of implicit in OCaml closures.

   Everything here is plain data: no closures, no behavior. Validate checks
   a pipeline against a hardware budget; Compile lowers a valid pipeline
   onto the zero-alloc hot path. *)

type match_kind = Exact | Ternary

let match_kind_name = function Exact -> "exact" | Ternary -> "ternary"

(* Header + metadata fields a match key can inspect. Bit widths drive the
   SRAM accounting (key bits are stored alongside each entry). *)
type field =
  | F_kind
  | F_prio
  | F_fid_hash
  | F_is_incast
  | F_in_port
  | F_egress
  | F_queue
  | F_upstream_q
  | F_bp_sampled
  | F_bp_counted
  | F_pkt_bytes
  | F_n_active
  | F_queue_bytes
  | F_ctrl_a
  | F_ctrl_b

let field_name = function
  | F_kind -> "kind"
  | F_prio -> "prio"
  | F_fid_hash -> "fid_hash"
  | F_is_incast -> "is_incast"
  | F_in_port -> "in_port"
  | F_egress -> "egress"
  | F_queue -> "queue"
  | F_upstream_q -> "upstream_q"
  | F_bp_sampled -> "bp_sampled"
  | F_bp_counted -> "bp_counted"
  | F_pkt_bytes -> "pkt_bytes"
  | F_n_active -> "n_active"
  | F_queue_bytes -> "queue_bytes"
  | F_ctrl_a -> "ctrl_a"
  | F_ctrl_b -> "ctrl_b"

let field_bits = function
  | F_kind -> 4
  | F_prio -> 3
  | F_fid_hash -> 32
  | F_is_incast -> 1
  | F_in_port -> 8
  | F_egress -> 8
  | F_queue -> 8
  | F_upstream_q -> 9
  | F_bp_sampled -> 1
  | F_bp_counted -> 1
  | F_pkt_bytes -> 16
  | F_n_active -> 8
  | F_queue_bytes -> 24
  | F_ctrl_a -> 16
  | F_ctrl_b -> 24

(* Where an action's randomness / time comes from. Only [Seeded] and
   [Sim_clock] are compilable; the ambient variants exist so infeasible
   fixtures can state the violation the DT rules catch in hand-written
   code. *)
type rand_source = Seeded | Ambient

type clock = Sim_clock | Wall_clock

(* Threshold source for Threshold_mark: the per-egress precomputed table
   (populated at control-plane time from HRTT x gbps / N_active) or a
   fixed byte override (Fig. 7 sweeps, Ideal-* schemes). *)
type th_spec = Th_table of { factor : float } | Th_fixed of int

type table = {
  t_name : string;
  t_keys : (field * match_kind) list;
  t_entries : int; (* <= 0 models an unbounded structure: always rejected *)
  t_entry_bits : int;
}

type register = {
  r_name : string;
  r_entries : int;
  r_bits : int;
  r_init : int; (* initial value of every cell (credit balances) *)
}

(* Constant-time action primitives. Float-valued parameters (sampling
   rate, sticky multiplier, threshold factor) are control-plane constants
   used to populate tables at load time, exactly like the paper's Th
   table; per-packet execution is integer-only. The last four
   constructors are deliberately infeasible and exist only so validator
   fixtures can be expressed in the IR itself. *)
type action =
  (* BFC ingress *)
  | Incast_relabel
  | Sample of { rate : float; rand : rand_source }
  | Flow_lookup
  | Assign_queue of {
      policy : Bfc_core.Dqa.policy;
      sticky_hrtt_mult : float;
      clock : clock;
      rand : rand_source;
    }
  | Bump_flow_size of { clock : clock }
  | Collision_probe
  | Mark_occupied
  | Threshold_mark of { th : th_spec }
  (* BFC egress (recirculated-header work) *)
  | Unmark_resume
  | Dec_flow_size of { clock : clock }
  | Mark_empty
  | Stamp_upstream_q
  | Drop_undo_size
  (* BFC reacting side *)
  | Apply_pause
  (* credit dataplane *)
  | Credit_assign of { sticky_hrtt_mult : float; clock : clock }
  | Note_upstream
  | Credit_mark_occupied
  | Credit_regate
  | Grant_back
  | Credit_consume
  | Credit_dec_size of { clock : clock }
  | Credit_mark_empty
  | Credit_replenish
  (* infeasible-by-construction (validator fixtures only) *)
  | Float_compute of string
  | Unbounded_loop of string
  | Linked_scan of string
  | Debug_log of string

let action_name = function
  | Incast_relabel -> "incast_relabel"
  | Sample _ -> "sample"
  | Flow_lookup -> "flow_lookup"
  | Assign_queue _ -> "assign_queue"
  | Bump_flow_size _ -> "bump_flow_size"
  | Collision_probe -> "collision_probe"
  | Mark_occupied -> "mark_occupied"
  | Threshold_mark _ -> "threshold_mark"
  | Unmark_resume -> "unmark_resume"
  | Dec_flow_size _ -> "dec_flow_size"
  | Mark_empty -> "mark_empty"
  | Stamp_upstream_q -> "stamp_upstream_q"
  | Drop_undo_size -> "drop_undo_size"
  | Apply_pause -> "apply_pause"
  | Credit_assign _ -> "credit_assign"
  | Note_upstream -> "note_upstream"
  | Credit_mark_occupied -> "credit_mark_occupied"
  | Credit_regate -> "credit_regate"
  | Grant_back -> "grant_back"
  | Credit_consume -> "credit_consume"
  | Credit_dec_size _ -> "credit_dec_size"
  | Credit_mark_empty -> "credit_mark_empty"
  | Credit_replenish -> "credit_replenish"
  | Float_compute _ -> "float_compute"
  | Unbounded_loop _ -> "unbounded_loop"
  | Linked_scan _ -> "linked_scan"
  | Debug_log _ -> "debug_log"

(* Switch hooks a stage can bind to, in packet-lifecycle order. A stage
   whose dependencies point at an earlier hook's state runs after that
   state was written in a previous pipeline pass; touching it from the
   egress side requires the recirculated-header mechanism (paper §3.3),
   which the stage declares with [s_recirc]. *)
type hook = H_classify | H_enqueue | H_dequeue | H_drop | H_ctrl

let hook_name = function
  | H_classify -> "classify"
  | H_enqueue -> "enqueue"
  | H_dequeue -> "dequeue"
  | H_drop -> "drop"
  | H_ctrl -> "ctrl"

let hook_rank = function
  | H_classify -> 0
  | H_enqueue -> 1
  | H_dequeue -> 2
  | H_drop -> 3
  | H_ctrl -> 4

type stage = {
  s_name : string;
  s_hook : hook;
  s_tables : table list;
  s_registers : register list;
  s_actions : action list;
  s_deps : string list; (* names of stages whose tables/registers this stage reads or writes *)
  s_recirc : bool; (* egress-side update applied via the recirculated header *)
}

(* Logical switch dimensions the pipeline is sized for. Compile checks
   them against the live switch; Validate uses them to size tables. *)
type meta = {
  m_name : string;
  m_ports : int;
  m_queues_per_port : int;
  m_classes : int;
  m_max_upstream_q : int;
  m_table_mult : int;
  m_seed : int;
  m_bitmap_period : Bfc_engine.Time.t option;
}

(* Hardware budget the validator checks against (Tofino2-class). The
   per-stage SRAM pool is generous because a logical table may span the
   paired physical stages of one MAU grid row. *)
type budget = {
  b_max_stages : int;
  b_max_actions_per_stage : int;
  b_sram_bits_per_stage : int;
  b_max_table_entries : int;
}

let tofino2_budget =
  {
    b_max_stages = 20;
    b_max_actions_per_stage = 4;
    b_sram_bits_per_stage = 20_000_000;
    b_max_table_entries = 1 lsl 20;
  }

type pipeline = { p_meta : meta; p_budget : budget; p_stages : stage list }

(* ------------------------------------------------------------------ *)
(* SRAM accounting *)

let key_bits keys = List.fold_left (fun acc (f, _) -> acc + field_bits f) 0 keys

let table_bits t = t.t_entries * (t.t_entry_bits + key_bits t.t_keys)

let register_bits r = r.r_entries * r.r_bits

let stage_table_bits s = List.fold_left (fun acc t -> acc + table_bits t) 0 s.s_tables

let stage_register_bits s = List.fold_left (fun acc r -> acc + register_bits r) 0 s.s_registers

let stage_bits s = stage_table_bits s + stage_register_bits s

(* ------------------------------------------------------------------ *)
(* Textual dump (bfc_sim ir --dump) *)

let action_to_string = function
  | Sample { rate; rand } ->
    Printf.sprintf "sample(rate=%g%s)" rate (match rand with Seeded -> "" | Ambient -> ", ambient-rng")
  | Assign_queue { policy; sticky_hrtt_mult; clock; rand } ->
    Printf.sprintf "assign_queue(%s, sticky=%gxHRTT%s%s)"
      (match policy with
      | Bfc_core.Dqa.Dynamic -> "dynamic"
      | Bfc_core.Dqa.Stochastic -> "stochastic"
      | Bfc_core.Dqa.Single -> "single")
      sticky_hrtt_mult
      (match clock with Sim_clock -> "" | Wall_clock -> ", wall-clock")
      (match rand with Seeded -> "" | Ambient -> ", ambient-rng")
  | Threshold_mark { th } -> (
    match th with
    | Th_table { factor } -> Printf.sprintf "threshold_mark(table, factor=%g)" factor
    | Th_fixed b ->
      if b = max_int then "threshold_mark(fixed=inf)" else Printf.sprintf "threshold_mark(fixed=%dB)" b)
  | Credit_assign { sticky_hrtt_mult; clock } ->
    Printf.sprintf "credit_assign(sticky=%gxHRTT%s)" sticky_hrtt_mult
      (match clock with Sim_clock -> "" | Wall_clock -> ", wall-clock")
  | Float_compute what -> Printf.sprintf "float_compute(%s)" what
  | Unbounded_loop what -> Printf.sprintf "unbounded_loop(%s)" what
  | Linked_scan what -> Printf.sprintf "linked_scan(%s)" what
  | Debug_log what -> Printf.sprintf "debug_log(%s)" what
  | a -> action_name a

let table_to_string t =
  Printf.sprintf "table %s [%s] entries=%d entry_bits=%d (%d Kb)" t.t_name
    (String.concat ", "
       (List.map (fun (f, k) -> Printf.sprintf "%s:%s" (field_name f) (match_kind_name k)) t.t_keys))
    t.t_entries t.t_entry_bits
    (table_bits t / 1024)

let register_to_string r =
  Printf.sprintf "register %s entries=%d bits=%d init=%d (%d Kb)" r.r_name r.r_entries r.r_bits
    r.r_init (register_bits r / 1024)

let dump p =
  let buf = Buffer.create 2048 in
  let m = p.p_meta in
  Buffer.add_string buf
    (Printf.sprintf "pipeline %s (ports=%d queues/port=%d classes=%d max_upstream_q=%d seed=%d)\n"
       m.m_name m.m_ports m.m_queues_per_port m.m_classes m.m_max_upstream_q m.m_seed);
  Buffer.add_string buf
    (Printf.sprintf "budget: stages<=%d actions/stage<=%d sram/stage<=%.1f Mb table_entries<=%d\n"
       p.p_budget.b_max_stages p.p_budget.b_max_actions_per_stage
       (float_of_int p.p_budget.b_sram_bits_per_stage /. 1.0e6)
       p.p_budget.b_max_table_entries);
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf "stage %2d %-16s hook=%-8s%s%s\n" (i + 1) s.s_name (hook_name s.s_hook)
           (if s.s_recirc then " recirc" else "")
           (match s.s_deps with [] -> "" | ds -> " deps=" ^ String.concat "," ds));
      List.iter (fun t -> Buffer.add_string buf ("       " ^ table_to_string t ^ "\n")) s.s_tables;
      List.iter
        (fun r -> Buffer.add_string buf ("       " ^ register_to_string r ^ "\n"))
        s.s_registers;
      List.iter
        (fun a -> Buffer.add_string buf ("       action " ^ action_to_string a ^ "\n"))
        s.s_actions)
    p.p_stages;
  Buffer.contents buf
