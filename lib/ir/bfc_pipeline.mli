(** The shipped dataplanes as IR programs.

    IR counterparts of [Dataplane.attach] / [Credit_dataplane.attach]:
    given the same config and switch dimensions, these emit the pipeline
    whose compiled form behaves byte-identically to the hand-written
    hooks (held to that by the differential test). *)

(** BFC (§3.3): sample + flow table + dynamic queue assignment +
    threshold pause on ingress; recirculated-header resume / size
    decrement / bitmap maintenance on egress; pause application on the
    reacting side. *)
val bfc :
  ?name:string ->
  ?budget:Ir.budget ->
  ports:int ->
  queues_per_port:int ->
  classes:int ->
  Bfc_core.Dataplane.config ->
  Ir.pipeline

(** Credit dataplane: per-(egress, queue) byte balances with hop-by-hop
    grant-back; balance gating replaces pause counters. *)
val credit :
  ?name:string ->
  ?budget:Ir.budget ->
  ports:int ->
  queues_per_port:int ->
  Bfc_core.Credit_dataplane.config ->
  Ir.pipeline

(** Every committed feasible pipeline, at representative fabric
    dimensions (32-port switch, 32 queues/port). *)
val builtins : unit -> (string * Ir.pipeline) list

(** Deliberately-infeasible pipelines, each tripping a specific DF/DT
    rule; committed as golden fixtures pinning the validator's output. *)
val infeasible : unit -> (string * Ir.pipeline) list
