(** Compiler from validated IR pipelines to the zero-alloc hot path.

    [attach] validates, resolves every action to a flat op array per
    switch hook, and installs integer-only executors over the same flat
    state the hand-written dataplanes use. Raises {!Infeasible} when the
    validator reports errors — an invalid pipeline can never reach the
    hot path. *)

(** The validator errors that rejected the pipeline. *)
exception Infeasible of Validate.diag list

type t

(** [attach p sw] — validate [p], lower it, and install its hooks on
    [sw]. The pipeline's [meta] dimensions must match the switch.
    @raise Infeasible if validation reports errors.
    @raise Invalid_argument on a switch/pipeline dimension mismatch. *)
val attach : Ir.pipeline -> Bfc_switch.Switch.t -> t

(** Build the BFC pipeline for this switch's dimensions and attach it. *)
val attach_bfc : Bfc_switch.Switch.t -> Bfc_core.Dataplane.config -> t

(** Build the credit pipeline for this switch's dimensions and attach it. *)
val attach_credit : Bfc_switch.Switch.t -> Bfc_core.Credit_dataplane.config -> t

val switch : t -> Bfc_switch.Switch.t

val pipeline : t -> Ir.pipeline

(** Same counters as the hand-written BFC dataplane. *)
val stats : t -> Bfc_core.Dataplane.stats

(** Hop_credit packets sent (credit pipelines). *)
val credits_sent : t -> int

(** Per-(egress, queue) byte balance (credit pipelines). *)
val balance : t -> egress:int -> queue:int -> int

(** Restrict which (in_port, egress) pairs may generate backpressure
    (deadlock experiments), as [Dataplane.allow_backpressure]. *)
val allow_backpressure : t -> (in_port:int -> egress:int -> bool) -> unit

(** Wipe compiled-program state on switch reboot. *)
val reset : t -> unit
