(** Static feasibility + determinism validation of IR pipelines.

    Re-implements bfc-lint's DF001-DF005 feasibility rules and the
    applicable DT determinism rules as structural checks: bounded state
    (DF001), constant per-packet work (DF002), acyclic pass-ordered stage
    dependencies (DF003), integer-only packet math (DF004), no packet-path
    I/O (DF005), seeded randomness (DT001), sim-clock time (DT002).
    Diagnostics render in bfc-lint's [file:line:col: severity [ID name]
    message] shape with stage/action positions as line/col. *)

type severity = Error | Warning

val severity_name : severity -> string

type diag = {
  code : string;  (** "DF001" .. "DT002", matching bfc-lint rule ids *)
  rule : string;  (** kebab name, matching bfc-lint rule names *)
  severity : severity;
  where : string;  (** ["<pipeline>.ir/<stage>"] provenance *)
  stage : int;  (** 1-based stage position; 0 = pipeline level *)
  action : int;  (** 1-based action position; 0 = stage level *)
  message : string;
}

val to_human : diag -> string

(** All diagnostics for a pipeline, sorted by (stage, action, code). *)
val check : Ir.pipeline -> diag list

val errors : diag list -> diag list

val has_errors : diag list -> bool

(** Per-stage budget table: actions, table/register SRAM, deps, peak. *)
val report : Ir.pipeline -> string
