(** Typed match-action pipeline IR ("dataplane as data", §3.3).

    A {!pipeline} is pure data: stages bound to switch hooks, each owning
    bounded match {!table}s and {!register} files and running
    constant-time {!action}s, with explicit cross-stage dependency edges.
    {!Validate} checks a pipeline against a hardware {!budget};
    {!Compile} lowers a valid pipeline onto the zero-alloc hot path. *)

type match_kind = Exact | Ternary

val match_kind_name : match_kind -> string

(** Header + metadata fields a match key can inspect. *)
type field =
  | F_kind
  | F_prio
  | F_fid_hash
  | F_is_incast
  | F_in_port
  | F_egress
  | F_queue
  | F_upstream_q
  | F_bp_sampled
  | F_bp_counted
  | F_pkt_bytes
  | F_n_active
  | F_queue_bytes
  | F_ctrl_a
  | F_ctrl_b

val field_name : field -> string

(** Key width, which the SRAM accounting stores alongside each entry. *)
val field_bits : field -> int

(** Randomness provenance: only [Seeded] is compilable; [Ambient] exists
    so infeasible fixtures can state the DT001 violation in the IR. *)
type rand_source = Seeded | Ambient

(** Clock provenance: only [Sim_clock] is compilable (DT002). *)
type clock = Sim_clock | Wall_clock

(** Threshold source for [Threshold_mark]: the control-plane-precomputed
    per-egress table (Th = HRTT x mu / N_active) or a fixed override. *)
type th_spec = Th_table of { factor : float } | Th_fixed of int

type table = {
  t_name : string;
  t_keys : (field * match_kind) list;
  t_entries : int;  (** <= 0 models an unbounded structure: always rejected *)
  t_entry_bits : int;
}

type register = {
  r_name : string;
  r_entries : int;
  r_bits : int;
  r_init : int;  (** initial value of every cell (credit balances) *)
}

(** Constant-time action primitives. Float parameters are control-plane
    constants consumed at load time; per-packet execution is
    integer-only. The last four constructors are deliberately infeasible
    and exist only for validator fixtures. *)
type action =
  | Incast_relabel
  | Sample of { rate : float; rand : rand_source }
  | Flow_lookup
  | Assign_queue of {
      policy : Bfc_core.Dqa.policy;
      sticky_hrtt_mult : float;
      clock : clock;
      rand : rand_source;
    }
  | Bump_flow_size of { clock : clock }
  | Collision_probe
  | Mark_occupied
  | Threshold_mark of { th : th_spec }
  | Unmark_resume
  | Dec_flow_size of { clock : clock }
  | Mark_empty
  | Stamp_upstream_q
  | Drop_undo_size
  | Apply_pause
  | Credit_assign of { sticky_hrtt_mult : float; clock : clock }
  | Note_upstream
  | Credit_mark_occupied
  | Credit_regate
  | Grant_back
  | Credit_consume
  | Credit_dec_size of { clock : clock }
  | Credit_mark_empty
  | Credit_replenish
  | Float_compute of string
  | Unbounded_loop of string
  | Linked_scan of string
  | Debug_log of string

val action_name : action -> string

(** Switch hooks, in packet-lifecycle order. *)
type hook = H_classify | H_enqueue | H_dequeue | H_drop | H_ctrl

val hook_name : hook -> string

val hook_rank : hook -> int

type stage = {
  s_name : string;
  s_hook : hook;
  s_tables : table list;
  s_registers : register list;
  s_actions : action list;
  s_deps : string list;
      (** names of stages whose tables/registers this stage reads or writes *)
  s_recirc : bool;  (** egress-side update applied via the recirculated header *)
}

(** Logical switch dimensions the pipeline is sized for. *)
type meta = {
  m_name : string;
  m_ports : int;
  m_queues_per_port : int;
  m_classes : int;
  m_max_upstream_q : int;
  m_table_mult : int;
  m_seed : int;
  m_bitmap_period : Bfc_engine.Time.t option;
}

(** Hardware budget the validator checks against. *)
type budget = {
  b_max_stages : int;
  b_max_actions_per_stage : int;
  b_sram_bits_per_stage : int;
  b_max_table_entries : int;
}

val tofino2_budget : budget

type pipeline = { p_meta : meta; p_budget : budget; p_stages : stage list }

(** {2 SRAM accounting} *)

val key_bits : (field * match_kind) list -> int

val table_bits : table -> int

val register_bits : register -> int

val stage_table_bits : stage -> int

val stage_register_bits : stage -> int

val stage_bits : stage -> int

(** {2 Rendering (bfc_sim ir --dump)} *)

val action_to_string : action -> string

val table_to_string : table -> string

val register_to_string : register -> string

val dump : pipeline -> string
