(* The two shipped dataplanes expressed as IR programs.

   These builders are the IR counterpart of Dataplane.attach /
   Credit_dataplane.attach: given the same config record and the switch
   dimensions, they emit the pipeline whose compiled form (Compile.attach)
   behaves byte-identically to the hand-written hooks. Everything runs at
   load time — this whole file is control-plane code. *)

module Dataplane = Bfc_core.Dataplane
module Credit_dataplane = Bfc_core.Credit_dataplane

let pow2_ceil n =
  let r = ref 1 in
  while !r < n do
    r := !r * 2
  done;
  !r

(* Flow-table entry: queue assignment (8) + size counter (24) + last-touch
   timestamp (32), matching Flow_table.entry. *)
let flow_entry_bits = 64

let flow_table ~ports ~queues_per_port ~mult =
  {
    Ir.t_name = "flow_table";
    t_keys = [ (Ir.F_egress, Ir.Exact); (Ir.F_fid_hash, Ir.Exact) ];
    t_entries = ports * pow2_ceil (mult * queues_per_port);
    t_entry_bits = flow_entry_bits;
  }

let th_table ~ports ~queues_per_port =
  {
    Ir.t_name = "th_table";
    t_keys = [ (Ir.F_egress, Ir.Exact); (Ir.F_n_active, Ir.Exact) ];
    t_entries = ports * (queues_per_port + 1);
    t_entry_bits = 24;
  }

let dqa_bitmap ~ports ~classes ~qpc =
  { Ir.r_name = "dqa_bitmap"; r_entries = ports * classes; r_bits = qpc - 1; r_init = 0 }

let stage ?(tables = []) ?(registers = []) ?(deps = []) ?(recirc = false) name hook actions =
  {
    Ir.s_name = name;
    s_hook = hook;
    s_tables = tables;
    s_registers = registers;
    s_actions = actions;
    s_deps = deps;
    s_recirc = recirc;
  }

(* ------------------------------------------------------------------ *)
(* BFC (paper 3.3): ingress = sample + flow table + dynamic queue
   assignment + threshold pause; egress = recirculated-header resume /
   size decrement / bitmap maintenance; ctrl = pause application. *)

let bfc ?(name = "bfc") ?(budget = Ir.tofino2_budget) ~ports ~queues_per_port ~classes
    (cfg : Dataplane.config) =
  let qpc = queues_per_port / classes in
  let th =
    match cfg.Dataplane.fixed_th with
    | Some b -> Ir.Th_fixed b
    | None -> Ir.Th_table { factor = cfg.Dataplane.th_factor }
  in
  let meta =
    {
      Ir.m_name = name;
      m_ports = ports;
      m_queues_per_port = queues_per_port;
      m_classes = classes;
      m_max_upstream_q = cfg.Dataplane.max_upstream_q;
      m_table_mult = cfg.Dataplane.table_mult;
      m_seed = cfg.Dataplane.seed;
      m_bitmap_period = cfg.Dataplane.bitmap_period;
    }
  in
  let stages =
    (if cfg.Dataplane.incast_label then
       [ stage "incast_label" Ir.H_classify [ Ir.Incast_relabel ] ]
     else [])
    @ [
        stage "sampling" Ir.H_classify
          [ Ir.Sample { rate = cfg.Dataplane.sampling; rand = Ir.Seeded } ];
        stage "flow_table" Ir.H_classify
          ~tables:[ flow_table ~ports ~queues_per_port ~mult:cfg.Dataplane.table_mult ]
          [ Ir.Flow_lookup ];
        stage "queue_assign" Ir.H_classify ~deps:[ "flow_table" ]
          ~registers:[ dqa_bitmap ~ports ~classes ~qpc ]
          [
            Ir.Assign_queue
              {
                policy = cfg.Dataplane.assignment;
                sticky_hrtt_mult = cfg.Dataplane.sticky_hrtt_mult;
                clock = Ir.Sim_clock;
                rand = Ir.Seeded;
              };
          ];
        stage "size_bump" Ir.H_classify
          ~deps:[ "flow_table"; "queue_assign" ]
          [ Ir.Bump_flow_size { clock = Ir.Sim_clock }; Ir.Collision_probe ];
        stage "occupancy" Ir.H_enqueue ~deps:[ "queue_assign" ]
          ~registers:
            [
              {
                Ir.r_name = "occupancy";
                r_entries = ports * queues_per_port;
                r_bits = 16;
                r_init = 0;
              };
            ]
          [ Ir.Mark_occupied ];
        stage "threshold_pause" Ir.H_enqueue
          ~tables:
            (match th with
            | Ir.Th_table _ -> [ th_table ~ports ~queues_per_port ]
            | Ir.Th_fixed _ -> [])
          ~registers:
            [
              {
                Ir.r_name = "pause_counters";
                r_entries = ports * cfg.Dataplane.max_upstream_q;
                r_bits = 16;
                r_init = 0;
              };
            ]
          [ Ir.Threshold_mark { th } ];
        stage "resume" Ir.H_dequeue ~deps:[ "threshold_pause" ] ~recirc:true
          [ Ir.Unmark_resume ];
        stage "size_dec" Ir.H_dequeue ~deps:[ "flow_table" ] ~recirc:true
          [ Ir.Dec_flow_size { clock = Ir.Sim_clock } ];
        stage "empty_bitmap" Ir.H_dequeue
          ~deps:[ "occupancy"; "queue_assign" ]
          ~recirc:true [ Ir.Mark_empty ];
        stage "stamp_upstream" Ir.H_dequeue [ Ir.Stamp_upstream_q ];
        stage "drop_undo" Ir.H_drop ~deps:[ "flow_table" ] ~recirc:true [ Ir.Drop_undo_size ];
        stage "pause_apply" Ir.H_ctrl
          ~registers:
            [
              {
                Ir.r_name = "pause_state";
                r_entries = ports * queues_per_port;
                r_bits = 1;
                r_init = 0;
              };
            ]
          [ Ir.Apply_pause ];
      ]
  in
  { Ir.p_meta = meta; p_budget = budget; p_stages = stages }

(* ------------------------------------------------------------------ *)
(* Credit dataplane: per-(egress, queue) byte balances with hop-by-hop
   grant-back; queue gating replaces pause counters. *)

let credit ?(name = "credit") ?(budget = Ir.tofino2_budget) ~ports ~queues_per_port
    (cfg : Credit_dataplane.config) =
  let meta =
    {
      Ir.m_name = name;
      m_ports = ports;
      m_queues_per_port = queues_per_port;
      m_classes = 1;
      m_max_upstream_q = cfg.Credit_dataplane.max_upstream_q;
      m_table_mult = cfg.Credit_dataplane.table_mult;
      m_seed = cfg.Credit_dataplane.seed;
      m_bitmap_period = None;
    }
  in
  let balances =
    {
      Ir.r_name = "balances";
      r_entries = ports * queues_per_port;
      r_bits = 32;
      r_init = cfg.Credit_dataplane.credit_bytes;
    }
  in
  let stages =
    [
      stage "flow_table" Ir.H_classify
        ~tables:[ flow_table ~ports ~queues_per_port ~mult:cfg.Credit_dataplane.table_mult ]
        ~registers:[ dqa_bitmap ~ports ~classes:1 ~qpc:queues_per_port ]
        [
          Ir.Credit_assign
            {
              sticky_hrtt_mult = cfg.Credit_dataplane.sticky_hrtt_mult;
              clock = Ir.Sim_clock;
            };
        ];
      stage "note_upstream" Ir.H_enqueue [ Ir.Note_upstream ];
      stage "occupancy" Ir.H_enqueue ~deps:[ "flow_table" ] [ Ir.Credit_mark_occupied ];
      stage "regate" Ir.H_enqueue ~registers:[ balances ] [ Ir.Credit_regate ];
      stage "grant_back" Ir.H_dequeue [ Ir.Grant_back ];
      stage "consume_gate" Ir.H_dequeue ~deps:[ "regate" ] ~recirc:true [ Ir.Credit_consume ];
      stage "size_dec" Ir.H_dequeue ~deps:[ "flow_table" ] ~recirc:true
        [ Ir.Credit_dec_size { clock = Ir.Sim_clock } ];
      stage "empty_bitmap" Ir.H_dequeue ~deps:[ "flow_table" ] ~recirc:true
        [ Ir.Credit_mark_empty ];
      stage "stamp_upstream" Ir.H_dequeue [ Ir.Stamp_upstream_q ];
      stage "replenish" Ir.H_ctrl ~deps:[ "regate" ] ~recirc:true [ Ir.Credit_replenish ];
    ]
  in
  { Ir.p_meta = meta; p_budget = budget; p_stages = stages }

(* ------------------------------------------------------------------ *)
(* Roster for `bfc_sim ir`: every committed feasible pipeline, at
   representative fabric dimensions (32-port switch, 32 queues/port). *)

let builtins () =
  let ports = 32 and queues_per_port = 32 in
  let d = Dataplane.default_config in
  [
    ("bfc", bfc ~name:"bfc" ~ports ~queues_per_port ~classes:1 d);
    ( "bfc-incast",
      bfc ~name:"bfc-incast" ~ports ~queues_per_port ~classes:1
        { d with Dataplane.incast_label = true } );
    ( "bfc-sampled",
      bfc ~name:"bfc-sampled" ~ports ~queues_per_port ~classes:1
        { d with Dataplane.sampling = 0.25 } );
    ( "bfc-fixed-th",
      bfc ~name:"bfc-fixed-th" ~ports ~queues_per_port ~classes:1
        { d with Dataplane.fixed_th = Some 45_000 } );
    ( "bfc-classes",
      bfc ~name:"bfc-classes" ~ports ~queues_per_port ~classes:2 d );
    ("credit", credit ~name:"credit" ~ports ~queues_per_port Credit_dataplane.default_config);
  ]

(* ------------------------------------------------------------------ *)
(* Deliberately-infeasible pipelines: each trips a specific DF/DT rule.
   Committed as golden fixtures (test/fixtures/ir) so the validator's
   rejection text is pinned. *)

let tiny_meta name =
  {
    Ir.m_name = name;
    m_ports = 4;
    m_queues_per_port = 8;
    m_classes = 1;
    m_max_upstream_q = 16;
    m_table_mult = 4;
    m_seed = 1;
    m_bitmap_period = None;
  }

let noop_stage name = stage name Ir.H_classify [ Ir.Flow_lookup ]

let infeasible () =
  [
    ( "too-many-stages",
      {
        Ir.p_meta = tiny_meta "too-many-stages";
        p_budget = Ir.tofino2_budget;
        p_stages = List.init 24 (fun i -> noop_stage (Printf.sprintf "s%02d" i));
      } );
    ( "oversized-table",
      {
        Ir.p_meta = tiny_meta "oversized-table";
        p_budget = Ir.tofino2_budget;
        p_stages =
          [
            stage "flow_table" Ir.H_classify
              ~tables:
                [
                  {
                    Ir.t_name = "flow_table";
                    t_keys = [ (Ir.F_egress, Ir.Exact); (Ir.F_fid_hash, Ir.Exact) ];
                    t_entries = 1 lsl 24;
                    t_entry_bits = flow_entry_bits;
                  };
                ]
              [ Ir.Flow_lookup ];
          ];
      } );
    ( "cross-stage-loop",
      {
        Ir.p_meta = tiny_meta "cross-stage-loop";
        p_budget = Ir.tofino2_budget;
        p_stages =
          [
            stage "a" Ir.H_classify ~deps:[ "b" ] [ Ir.Flow_lookup ];
            stage "b" Ir.H_classify ~deps:[ "a" ] [ Ir.Flow_lookup ];
          ];
      } );
    ( "per-packet-float",
      {
        Ir.p_meta = tiny_meta "per-packet-float";
        p_budget = Ir.tofino2_budget;
        p_stages =
          [
            stage "threshold" Ir.H_enqueue
              [ Ir.Float_compute "Th = HRTT * mu / N_active recomputed per packet" ];
          ];
      } );
    ( "ambient-random",
      {
        Ir.p_meta = tiny_meta "ambient-random";
        p_budget = Ir.tofino2_budget;
        p_stages =
          [ stage "sampling" Ir.H_classify [ Ir.Sample { rate = 0.5; rand = Ir.Ambient } ] ];
      } );
    ( "wall-clock-sticky",
      {
        Ir.p_meta = tiny_meta "wall-clock-sticky";
        p_budget = Ir.tofino2_budget;
        p_stages =
          [
            stage "queue_assign" Ir.H_classify
              [
                Ir.Assign_queue
                  {
                    policy = Bfc_core.Dqa.Dynamic;
                    sticky_hrtt_mult = 2.0;
                    clock = Ir.Wall_clock;
                    rand = Ir.Seeded;
                  };
              ];
          ];
      } );
    ( "debug-io",
      {
        Ir.p_meta = tiny_meta "debug-io";
        p_budget = Ir.tofino2_budget;
        p_stages =
          [ stage "logger" Ir.H_enqueue [ Ir.Debug_log "printf of queue depth per packet" ] ];
      } );
    ( "unbounded-work",
      {
        Ir.p_meta = tiny_meta "unbounded-work";
        p_budget = Ir.tofino2_budget;
        p_stages =
          [
            stage "scan" Ir.H_enqueue
              [
                Ir.Linked_scan "walk the flow list to find the heaviest flow";
                Ir.Unbounded_loop "retry until an empty queue is found";
              ];
          ];
      } );
  ]
