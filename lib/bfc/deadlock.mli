(** Deadlock analysis for backpressure (App. B).

    Nodes of the backpressure graph are egress ports (identified by their
    global port id); there is a directed edge B -> A when a packet can leave
    egress A, traverse one hop, and leave the next switch via egress B,
    triggering backpressure from B onto A. BFC is deadlock-free iff this
    graph is acyclic (Theorem 1); for shortest-path routing on Clos
    topologies it is, and for topologies or detour routes that create
    cyclic buffer dependencies we compute the match-action elision table
    that skips backpressure on the dangerous edges. *)

type graph

(** Build from a topology's shortest-path ECMP routing: for every
    destination, every switch-to-switch handoff contributes an edge.
    Host egress ports appear as sinks (NICs generate no backpressure). *)
val build : Bfc_net.Topology.t -> graph

(** Empty graph over [n] port ids, for synthetic tests. *)
val create : n:int -> graph

(** [add_edge g ~src ~dst] — src -> dst (src's congestion pauses dst). *)
val add_edge : graph -> src:int -> dst:int -> unit

val n_edges : graph -> int

(** Every edge, sorted by (src, dst). Runtime monitors use this to build
    induced subgraphs over the currently-paused ports. *)
val edges : graph -> (int * int) list

val has_cycle : graph -> bool

(** A witness cycle as a list of port gids, if any. *)
val find_cycle : graph -> int list option

(** Edges inside strongly connected components (every edge that can
    participate in a cycle). Removing them makes the graph acyclic. *)
val dangerous_edges : graph -> (int * int) list

(** The match-action filter of App. B: at the switch owning [egress],
    should a packet arriving on [in_port] and leaving via [egress] perform
    backpressure operations? [false] exactly for dangerous edges. *)
val make_filter :
  Bfc_net.Topology.t -> graph -> sw:int -> (in_port:int -> egress:int -> bool)
