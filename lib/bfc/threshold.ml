let bytes ~hrtt ~gbps ~n_active ~factor =
  let n = max 1 n_active in
  (* gbps Gbit/s = gbps/8 bytes per ns *)
  let bdp = float_of_int hrtt *. gbps /. 8.0 in
  int_of_float (factor *. bdp /. float_of_int n)

type table = { values : int array; max_active : int }

let table ~hrtt ~gbps ~max_active ~factor =
  if max_active <= 0 then invalid_arg "Threshold.table";
  {
    values = Array.init (max_active + 1) (fun n -> bytes ~hrtt ~gbps ~n_active:(max 1 n) ~factor);
    max_active;
  }

let lookup t ~n_active =
  let n = if n_active < 1 then 1 else if n_active > t.max_active then t.max_active else n_active in
  t.values.(n)

(* ------------------------------------------------------------------ *)
(* Shared control-plane derivations: Dataplane, Credit_dataplane and the
   IR compiler all populate their threshold/sticky state through these
   instead of keeping parallel copies. *)

module Switch = Bfc_switch.Switch

type source = Fixed of int | Per_egress of table array

let get src ~egress ~n_active =
  match src with Fixed b -> b | Per_egress tables -> lookup tables.(egress) ~n_active

let hrtt_per_egress sw =
  let n_ports = Switch.n_ports sw in
  (* Th uses the max 1-hop RTT across the ingress ports that can feed an
     egress, i.e. every port but the egress itself (§3.3.2: "we use the max
     of HRTT across all the ingresses"); this matters on asymmetric
     topologies like the cross-DC WAN link (App. A.9). *)
  Array.init n_ports (fun egress ->
      let m = ref 0 in
      for p = 0 to n_ports - 1 do
        if p <> egress || n_ports = 1 then
          m := max !m (Bfc_net.Port.hop_rtt (Switch.port sw p))
      done;
      !m)

let source_for_switch sw ~fixed_th ~factor =
  match fixed_th with
  | Some b -> Fixed b
  | None ->
    (* N_active is bounded by queues/port, so the whole Th function fits in
       a small per-egress table; populating it here is the control-plane
       side of the hardware split. *)
    let hrtt = hrtt_per_egress sw in
    let nq = (Switch.config sw).Switch.queues_per_port in
    Per_egress
      (Array.init (Switch.n_ports sw) (fun egress ->
           table ~hrtt:hrtt.(egress)
             ~gbps:(Bfc_net.Port.gbps (Switch.port sw egress))
             ~max_active:nq ~factor))

let sticky_window sw ~mult = int_of_float (mult *. float_of_int (Switch.max_hop_rtt sw))
