module Packet = Bfc_net.Packet
module Flow = Bfc_net.Flow
module Port = Bfc_net.Port
module Node = Bfc_net.Node
module Switch = Bfc_switch.Switch
module Fifo = Bfc_switch.Fifo
module Sim = Bfc_engine.Sim

type config = {
  assignment : Dqa.policy;
  table_mult : int;
  sticky_hrtt_mult : float;
  credit_bytes : int;
  max_upstream_q : int;
  seed : int;
}

let default_config =
  {
    assignment = Dqa.Dynamic;
    table_mult = 100;
    sticky_hrtt_mult = 2.0;
    credit_bytes = 25_000;
    max_upstream_q = 256;
    seed = 1;
  }

module Balance = struct
  type b = { bal : int array }

  let create ~queues ~initial = { bal = Array.make queues initial }

  let consume b ~queue ~bytes ~next =
    b.bal.(queue) <- b.bal.(queue) - bytes;
    next > 0 && b.bal.(queue) < next

  let replenish b ~queue ~bytes ~next =
    b.bal.(queue) <- b.bal.(queue) + bytes;
    next > 0 && b.bal.(queue) >= next

  let get b ~queue = b.bal.(queue)
end

type t = {
  sw : Switch.t;
  cfg : config;
  ft : Flow_table.t;
  dqa : Dqa.t;
  sticky : Bfc_engine.Time.t;
  balances : Balance.b array; (* per egress *)
  uncredited : bool array; (* host-facing egress: downstream always drains *)
  mutable credits_sent : int;
}

let switch t = t.sw

let balance t ~egress ~queue = Balance.get t.balances.(egress) ~queue

let credits_sent t = t.credits_sent

let required_buffer t =
  Switch.n_ports t.sw * t.cfg.max_upstream_q * t.cfg.credit_bytes

let now t = Sim.now (Switch.sim t.sw)

let data_queues t = Switch.(config t.sw).queues_per_port - 1

let ctrl_queue t = data_queues t

(* Gate: a queue is "paused" whenever its balance cannot cover its head. *)
let regate t ~egress ~queue =
  if not t.uncredited.(egress) then begin
    let q = Switch.queue t.sw ~egress ~queue in
    let next = Fifo.head_size q in
    let blocked = next > 0 && Balance.get t.balances.(egress) ~queue < next in
    Switch.set_queue_paused t.sw ~egress ~queue blocked
  end

let classify t _sw ~in_port:_ ~egress pkt =
  match pkt.Packet.kind with
  | Packet.Data ->
    let flow = Packet.flow_exn pkt ~at:(now t) in
    let e = Flow_table.entry t.ft ~egress ~fid_hash:(Flow.hash flow) in
    let stale = now t - e.Flow_table.last > t.sticky in
    if e.Flow_table.size = 0 && (e.Flow_table.q < 0 || stale) then
      e.Flow_table.q <- Dqa.assign t.dqa ~egress ~fid_hash:(Flow.hash flow);
    e.Flow_table.size <- e.Flow_table.size + 1;
    e.Flow_table.last <- now t;
    e.Flow_table.q
  | _ -> ctrl_queue t

let on_enqueue t _sw ~in_port:_ ~egress ~queue pkt =
  if pkt.Packet.kind = Packet.Data then begin
    pkt.Packet.bp_upq <- pkt.Packet.upstream_q;
    if queue < data_queues t then Dqa.mark_occupied t.dqa ~egress ~queue;
    (* the freshly enqueued packet may be the head of a starved queue *)
    regate t ~egress ~queue
  end

let grant_back t ~in_port ~upstream_q ~bytes =
  if in_port >= 0 && upstream_q >= 0 then begin
    let peer_is_host =
      (Port.peer (Switch.port t.sw in_port)).Node.kind = Node.Host
    in
    ignore peer_is_host;
    (* hosts also run credit-gated NICs, so grant regardless *)
    let pkt =
      match Switch.pool t.sw with
      | Some p ->
        Packet.Pool.acquire p Packet.Hop_credit ~src:(Switch.node_id t.sw) ~dst:(-1)
          ~size:Packet.ctrl_bytes ()
      | None ->
        Packet.make ~sim:(Switch.sim t.sw) Packet.Hop_credit ~src:(Switch.node_id t.sw) ~dst:(-1)
          ~size:Packet.ctrl_bytes ()
    in
    pkt.Packet.ctrl_a <- upstream_q;
    pkt.Packet.ctrl_b <- bytes;
    t.credits_sent <- t.credits_sent + 1;
    Switch.send_ctrl t.sw ~egress:in_port pkt
  end

let on_dequeue t _sw ~egress ~queue pkt =
  if pkt.Packet.kind = Packet.Data then begin
    (* granting side: the packet has left our buffer; return its bytes to
       the upstream queue it came from *)
    grant_back t ~in_port:pkt.Packet.bp_in_port ~upstream_q:pkt.Packet.bp_upq
      ~bytes:pkt.Packet.size;
    (* sending side: we just consumed downstream credit *)
    if not t.uncredited.(egress) then begin
      let q = Switch.queue t.sw ~egress ~queue in
      let next = Fifo.head_size q in
      let blocked = Balance.consume t.balances.(egress) ~queue ~bytes:pkt.Packet.size ~next in
      if blocked then Switch.set_queue_paused t.sw ~egress ~queue true
    end;
    (* bookkeeping identical to BFC *)
    let flow = Packet.flow_exn pkt ~at:(now t) in
    let e = Flow_table.entry t.ft ~egress ~fid_hash:(Flow.hash flow) in
    e.Flow_table.size <- max 0 (e.Flow_table.size - 1);
    e.Flow_table.last <- now t;
    if queue < data_queues t then begin
      let q = Switch.queue t.sw ~egress ~queue in
      if Fifo.is_empty q then Dqa.mark_empty t.dqa ~egress ~queue
    end;
    pkt.Packet.upstream_q <- queue
  end

let on_ctrl t _sw ~in_port pkt =
  match pkt.Packet.kind with
  | Packet.Hop_credit ->
    let queue = pkt.Packet.ctrl_a in
    if queue >= 0 && queue < Switch.(config t.sw).queues_per_port then begin
      let q = Switch.queue t.sw ~egress:in_port ~queue in
      let next = Fifo.head_size q in
      let unblock =
        Balance.replenish t.balances.(in_port) ~queue ~bytes:pkt.Packet.ctrl_b ~next
      in
      if unblock then Switch.set_queue_paused t.sw ~egress:in_port ~queue false
    end;
    true
  | _ -> false

(* Setup-time code: runs once per switch, not per packet. *)
(* bfc-lint: control-plane *)
let attach sw cfg =
  let n_ports = Switch.n_ports sw in
  let nq = Switch.(config sw).queues_per_port in
  let rng = Bfc_util.Rng.create (cfg.seed + (Switch.node_id sw * 104_729)) in
  let t =
    {
      sw;
      cfg;
      ft = Flow_table.create ~egresses:n_ports ~queues_per_port:nq ~mult:cfg.table_mult;
      dqa = Dqa.create ~egresses:n_ports ~queues:(nq - 1) ~policy:cfg.assignment ~rng;
      sticky = Threshold.sticky_window sw ~mult:cfg.sticky_hrtt_mult;
      balances = Array.init n_ports (fun _ -> Balance.create ~queues:nq ~initial:cfg.credit_bytes);
      uncredited =
        Array.init n_ports (fun e ->
            (Port.peer (Switch.port sw e)).Node.kind = Node.Host);
      credits_sent = 0;
    }
  in
  let hk = Switch.hooks sw in
  hk.Switch.classify <- classify t;
  hk.Switch.on_enqueue <- on_enqueue t;
  hk.Switch.on_dequeue <- on_dequeue t;
  hk.Switch.on_ctrl <- on_ctrl t;
  t
