module Topology = Bfc_net.Topology
module Port = Bfc_net.Port
module Node = Bfc_net.Node

type graph = {
  n : int;
  adj : int list array;
  seen : (int * int, unit) Hashtbl.t;
  mutable edges : int;
}

let create ~n = { n; adj = Array.make n []; seen = Hashtbl.create 256; edges = 0 }

let add_edge g ~src ~dst =
  if src < 0 || src >= g.n || dst < 0 || dst >= g.n then invalid_arg "Deadlock.add_edge";
  if not (Hashtbl.mem g.seen (src, dst)) then begin
    Hashtbl.add g.seen (src, dst) ();
    g.adj.(src) <- dst :: g.adj.(src);
    g.edges <- g.edges + 1
  end

let n_edges g = g.edges

let edges g =
  let out = ref [] in
  Array.iteri (fun u vs -> List.iter (fun v -> out := (u, v) :: !out) vs) g.adj;
  List.sort compare !out

(* The egress port at the upstream device that feeds [sw]'s ingress
   [in_port]: the paired reverse direction of the same link. *)
let upstream_egress_gid topo ~sw ~in_port =
  let p = Topology.port topo sw in_port in
  let u = (Port.peer p).Node.id in
  Port.gid (Topology.port topo u (Port.peer_port p))

let build topo =
  let g = create ~n:(Topology.total_ports topo) in
  let nodes = Topology.nodes topo in
  let hosts = Topology.hosts topo in
  Array.iter
    (fun nd ->
      if nd.Node.kind = Node.Switch then begin
        let s = nd.Node.id in
        let ports = Topology.ports topo s in
        Array.iteri
          (fun in_port p ->
            let u = (Port.peer p).Node.id in
            if nodes.(u).Node.kind = Node.Switch then begin
              let a_gid = upstream_egress_gid topo ~sw:s ~in_port in
              let u_to_s_port = Port.peer_port p in
              Array.iter
                (fun dst ->
                  if dst <> s && dst <> u then begin
                    let u_cands = Topology.candidates topo ~node:u ~dst in
                    let via_s = Array.exists (fun c -> c = u_to_s_port) u_cands in
                    if via_s then
                      Array.iter
                        (fun j ->
                          let b_gid = Port.gid (Topology.port topo s j) in
                          add_edge g ~src:b_gid ~dst:a_gid)
                        (Topology.candidates topo ~node:s ~dst)
                  end)
                hosts
            end)
          ports
      end)
    nodes;
  g

(* Iterative DFS cycle detection with colors. *)
let find_cycle g =
  let white = 0 and grey = 1 and black = 2 in
  let color = Array.make g.n white in
  let parent = Array.make g.n (-1) in
  let cycle = ref None in
  let rec dfs u =
    color.(u) <- grey;
    List.iter
      (fun v ->
        if !cycle = None then begin
          if color.(v) = grey then begin
            (* reconstruct u -> ... -> v *)
            let rec collect x acc = if x = v then v :: acc else collect parent.(x) (x :: acc) in
            cycle := Some (collect u [])
          end
          else if color.(v) = white then begin
            parent.(v) <- u;
            dfs v
          end
        end)
      g.adj.(u);
    if color.(u) = grey then color.(u) <- black
  in
  let i = ref 0 in
  while !cycle = None && !i < g.n do
    if color.(!i) = white then dfs !i;
    incr i
  done;
  !cycle

let has_cycle g = find_cycle g <> None

(* Tarjan SCC, iterative enough for our sizes (recursion depth bounded by
   port count, a few hundred). *)
let sccs g =
  let index = Array.make g.n (-1) in
  let low = Array.make g.n 0 in
  let on_stack = Array.make g.n false in
  let stack = ref [] in
  let counter = ref 0 in
  let comp = Array.make g.n (-1) in
  let n_comp = ref 0 in
  let rec strong u =
    index.(u) <- !counter;
    low.(u) <- !counter;
    incr counter;
    stack := u :: !stack;
    on_stack.(u) <- true;
    List.iter
      (fun v ->
        if index.(v) < 0 then begin
          strong v;
          if low.(v) < low.(u) then low.(u) <- low.(v)
        end
        else if on_stack.(v) && index.(v) < low.(u) then low.(u) <- index.(v))
      g.adj.(u);
    if low.(u) = index.(u) then begin
      let c = !n_comp in
      incr n_comp;
      let rec popall () =
        match !stack with
        | [] -> ()
        | v :: rest ->
          stack := rest;
          on_stack.(v) <- false;
          comp.(v) <- c;
          if v <> u then popall ()
      in
      popall ()
    end
  in
  for u = 0 to g.n - 1 do
    if index.(u) < 0 then strong u
  done;
  comp

let dangerous_edges g =
  let comp = sccs g in
  (* An edge is dangerous iff both ends share an SCC and that SCC has a
     cycle (size > 1, or a self loop). *)
  let comp_size = Hashtbl.create 16 in
  Array.iter
    (fun c ->
      Hashtbl.replace comp_size c (1 + Option.value ~default:0 (Hashtbl.find_opt comp_size c)))
    comp;
  let out = ref [] in
  Array.iteri
    (fun u vs ->
      List.iter
        (fun v ->
          if comp.(u) = comp.(v) && (u = v || Hashtbl.find comp_size comp.(u) > 1) then
            out := (u, v) :: !out)
        vs)
    g.adj;
  !out

let make_filter topo g ~sw =
  let dangerous = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace dangerous e ()) (dangerous_edges g);
  fun ~in_port ~egress ->
    let a_gid = upstream_egress_gid topo ~sw ~in_port in
    let b_gid = Port.gid (Topology.port topo sw egress) in
    not (Hashtbl.mem dangerous (b_gid, a_gid))
