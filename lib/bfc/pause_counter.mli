(** BFC's pause counters (§3.3.2).

    One counter per ⟨ingress port, upstream queue⟩. A packet that, on
    enqueue, found its assigned queue above the pause threshold increments
    the counter of the ⟨ingress, upstreamQ⟩ it arrived from and is marked;
    when that same packet departs the switch, the counter is decremented.
    The upstream queue must be paused iff its counter is non-zero; the
    0→1 / 1→0 transitions are reported so the dataplane can emit exactly
    one pause / resume message per episode. *)

type edge = Went_up (** 0 -> 1: send Pause *) | Went_down (** 1 -> 0: send Resume *) | No_change

type t

val create : ingresses:int -> max_upstream_q:int -> t

val incr : t -> ingress:int -> upstream_q:int -> edge

val decr : t -> ingress:int -> upstream_q:int -> edge

val count : t -> ingress:int -> upstream_q:int -> int

(** Is this upstream queue currently held paused? *)
val paused : t -> ingress:int -> upstream_q:int -> bool

(** All upstream queues of an ingress with non-zero counters (for the
    periodic idempotent pause bitmap). *)
val paused_queues : t -> ingress:int -> int list

(** Sum of all counters (invariant checking: must equal the number of
    marked packets resident in the switch). *)
val total : t -> int

(** Zero every counter (switch reboot). The upstream queues the counters
    held paused get no Resume; their pause watchdogs must recover them. *)
val reset : t -> unit
