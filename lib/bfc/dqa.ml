type policy = Dynamic | Stochastic | Single

type t = {
  policy : policy;
  queues : int;
  empty : Bfc_util.Bitset.t array;
  rot : int array; (* rotating scan start per egress *)
  rng : Bfc_util.Rng.t;
}

let create ~egresses ~queues ~policy ~rng =
  if queues <= 0 then invalid_arg "Dqa.create: queues";
  let empty =
    Array.init egresses (fun _ ->
        let b = Bfc_util.Bitset.create queues in
        Bfc_util.Bitset.fill b;
        b)
  in
  { policy; queues; empty; rot = Array.make (max 1 egresses) 0; rng }

let policy t = t.policy

let assign t ~egress ~fid_hash =
  match t.policy with
  | Single -> 0
  | Stochastic -> fid_hash mod t.queues
  | Dynamic -> (
    let b = t.empty.(egress) in
    match Bfc_util.Bitset.first_set b ~from:t.rot.(egress) with
    | Some q ->
      t.rot.(egress) <- q + 1;
      q
    | None -> Bfc_util.Rng.int t.rng t.queues)

let mark_empty t ~egress ~queue = Bfc_util.Bitset.set t.empty.(egress) queue

let mark_occupied t ~egress ~queue = Bfc_util.Bitset.clear t.empty.(egress) queue

let empty_count t ~egress = Bfc_util.Bitset.cardinal t.empty.(egress)

let is_empty_queue t ~egress ~queue = Bfc_util.Bitset.mem t.empty.(egress) queue

let reset t =
  Array.iter Bfc_util.Bitset.fill t.empty;
  Array.fill t.rot 0 (Array.length t.rot) 0
