(** The pause threshold Th (§3.3.2): one-hop BDP at the queue's drain rate.

    Th = HRTT x (µ / N_active), with µ the egress port capacity and
    N_active the number of active (non-empty, unpaused) queues at that
    egress. In hardware this is a pre-configured match-action table keyed
    by ⟨N_active, µ⟩; here we expose both the direct computation and a
    quantized table to mirror the hardware. *)

(** [bytes ~hrtt ~gbps ~n_active ~factor] — threshold in bytes.
    [factor] scales Th (1.0 = the paper's setting). *)
val bytes : hrtt:Bfc_engine.Time.t -> gbps:float -> n_active:int -> factor:float -> int

(** A precomputed table over N_active in [1, max_active] (clamping above),
    as the hardware match-action table would hold. *)
type table

val table : hrtt:Bfc_engine.Time.t -> gbps:float -> max_active:int -> factor:float -> table

val lookup : table -> n_active:int -> int

(** Where a dataplane reads Th from: a fixed byte override (Fig. 7 sweeps)
    or the per-egress precomputed tables. One accessor shared by the
    hand-written dataplanes and the IR compiler, so the hot-path lookup
    logic exists exactly once. *)
type source = Fixed of int | Per_egress of table array

(** Integer-only; safe on the per-packet path. *)
val get : source -> egress:int -> n_active:int -> int

(** Per-egress max one-hop RTT over the ingresses that can feed it
    (§3.3.2: the max of HRTT across all the ingresses). *)
val hrtt_per_egress : Bfc_switch.Switch.t -> Bfc_engine.Time.t array

(** Control-plane population of a switch's threshold source from its port
    speeds and hop RTTs. *)
val source_for_switch :
  Bfc_switch.Switch.t -> fixed_th:int option -> factor:float -> source

(** Sticky queue-reassignment window: [mult] x the switch's max one-hop
    RTT (paper: 2 HRTT). *)
val sticky_window : Bfc_switch.Switch.t -> mult:float -> Bfc_engine.Time.t
