(** The BFC dataplane program (§3.3), attached to a {!Bfc_switch.Switch}.

    Responsibilities, exactly following the paper's pseudocode:

    - {b Enqueue} (ingress pipeline): look up ⟨egress, hash(FID)⟩ in the
      flow table; (re)assign a physical queue if the entry has no packets in
      the switch and the sticky threshold (2 HRTT) has expired; bump
      [size]; if the assigned queue's occupancy exceeds Th = HRTT·µ/N_active,
      mark the packet and increment pauseCounter⟨ingress, upstreamQ⟩,
      emitting a Pause on the 0→1 edge.
    - {b Dequeue} (modelled recirculation): decrement [size]; if the packet
      was marked, decrement the pause counter, emitting a Resume on the
      1→0 edge; stamp our local queue id into the packet's [upstreamQ];
      update the empty-queue bitmap.
    - {b Reacting side}: Pause/Resume/Pause-bitmap control packets arriving
      on port [i] pause/resume queues of egress [i] (the reverse direction
      of the same link).

    The last queue of every port is reserved for end-to-end control traffic
    (ACKs, NACKs, grants), standing in for the high-priority control queue
    the paper reserves; data queues are [0, queues_per_port - 1). *)

type config = {
  assignment : Dqa.policy;
  table_mult : int; (** flow-table slots per port = mult x queues (paper: 100) *)
  sticky_hrtt_mult : float; (** sticky threshold in HRTTs (paper: 2) *)
  th_factor : float; (** scales Th; 1.0 = paper *)
  fixed_th : int option; (** fixed threshold in bytes (Fig. 7 sweeps) *)
  sampling : float; (** fraction of packets bookkept (App. A.8); 1.0 = all *)
  incast_label : bool; (** App. A.7: incast-labelled flows share queue 0 *)
  bitmap_period : Bfc_engine.Time.t option; (** periodic idempotent refresh *)
  max_upstream_q : int; (** pause-counter width (>= peers' queue counts) *)
  seed : int;
}

val default_config : config

type t

(** Statistics for tests and benches. *)
type stats = {
  mutable pauses_sent : int;
  mutable resumes_sent : int;
  mutable packets_counted : int; (** enqueues that exceeded Th *)
  mutable queue_collisions : int;
      (** data enqueues whose flow shared its queue with another active
          flow-table entry (diagnostic for Fig. 27) *)
  mutable assignments : int; (** fresh queue assignments *)
  mutable random_assignments : int; (** assignments with no empty queue *)
}

(** [attach sw config] installs BFC on the switch (overwrites hooks). *)
val attach : Bfc_switch.Switch.t -> config -> t

(** [allow_backpressure t f] installs the deadlock-prevention match-action
    filter (App. B): packets for which [f ~in_port ~egress] is false skip
    pause accounting. *)
val allow_backpressure : t -> (in_port:int -> egress:int -> bool) -> unit

val stats : t -> stats

val config : t -> config

val switch : t -> Bfc_switch.Switch.t

(** Current pause threshold for an egress (bytes). *)
val threshold : t -> egress:int -> int

(** Pause counters (for invariant checks in tests). *)
val pause_counters : t -> Pause_counter.t

val flow_table : t -> Flow_table.t

(** Number of data queues per port (one control queue is reserved per
    traffic class). *)
val data_queues : t -> int

(** The reacting side used by host NICs as well: given a control packet and
    the local queue-pause setter, apply it. Exposed for the NIC
    implementation. *)
val apply_ctrl :
  set_paused:(queue:int -> bool -> unit) -> n_queues:int -> Bfc_net.Packet.t -> unit

(** Wipe flow table, pause counters, DQA bitmaps and occupancy diagnostics;
    call together with {!Bfc_switch.Switch.reboot} so the dataplane state
    matches the flushed switch. *)
val reset : t -> unit
