module Packet = Bfc_net.Packet
module Flow = Bfc_net.Flow
module Switch = Bfc_switch.Switch
module Sim = Bfc_engine.Sim

type config = {
  assignment : Dqa.policy;
  table_mult : int;
  sticky_hrtt_mult : float;
  th_factor : float;
  fixed_th : int option;
  sampling : float;
  incast_label : bool;
  bitmap_period : Bfc_engine.Time.t option;
  max_upstream_q : int;
  seed : int;
}

let default_config =
  {
    assignment = Dqa.Dynamic;
    table_mult = 100;
    sticky_hrtt_mult = 2.0;
    th_factor = 1.0;
    fixed_th = None;
    sampling = 1.0;
    incast_label = false;
    bitmap_period = None;
    max_upstream_q = 256;
    seed = 1;
  }

type stats = {
  mutable pauses_sent : int;
  mutable resumes_sent : int;
  mutable packets_counted : int;
  mutable queue_collisions : int;
  mutable assignments : int;
  mutable random_assignments : int;
}

type t = {
  sw : Switch.t;
  cfg : config;
  classes : int;
  qpc : int; (* queues per class; last queue of each class is the control queue *)
  ft : Flow_table.t;
  pc : Pause_counter.t;
  dqa : Dqa.t; (* domains: egress * classes + class *)
  sticky : Bfc_engine.Time.t;
  allow_bp : (in_port:int -> egress:int -> bool) ref;
  th : Threshold.source;
      (* per egress: Th over N_active, precomputed at attach time like the
         control-plane-populated match-action table on the hardware — the
         per-packet path does integer lookups only *)
  rng : Bfc_util.Rng.t;
  st : stats;
  occupancy : int array array; (* packets per (egress, queue), collision diag *)
}

let stats t = t.st

let config t = t.cfg

let switch t = t.sw

let pause_counters t = t.pc

let flow_table t = t.ft

let data_queues t = (t.qpc - 1) * t.classes

let threshold t ~egress =
  Threshold.get t.th ~egress ~n_active:(Switch.n_active t.sw ~egress)

let allow_backpressure t f = t.allow_bp := f

let now t = Sim.now (Switch.sim t.sw)

let cls_of_flow t flow = min (t.classes - 1) (max 0 flow.Flow.prio_class)

let cls_of_pkt t pkt = min (t.classes - 1) (max 0 pkt.Packet.prio)

(* Reserved control queue of a class (ACKs and friends). *)
let ctrl_queue t ~cls = (cls * t.qpc) + t.qpc - 1

let domain t ~egress ~cls = (egress * t.classes) + cls

(* Is [queue] a data queue, i.e. subject to DQA bookkeeping? *)
let is_data_queue t ~queue = queue mod t.qpc < t.qpc - 1

let local_of_queue t ~queue = queue mod t.qpc

let cls_of_queue t ~queue = queue / t.qpc

(* --------------------------------------------------------------- *)
(* Enqueue side                                                     *)

let classify t _sw ~in_port:_ ~egress pkt =
  match pkt.Packet.kind with
  | Packet.Data -> (
    let flow = Packet.flow_exn pkt ~at:(now t) in
    let cls = cls_of_flow t flow in
    if t.cfg.incast_label && flow.Flow.is_incast then begin
      pkt.Packet.bp_sampled <- true;
      cls * t.qpc (* dedicated incast queue: local 0 of the class *)
    end
    else begin
      let sampled = t.cfg.sampling >= 1.0 || Bfc_util.Rng.bernoulli t.rng t.cfg.sampling in
      pkt.Packet.bp_sampled <- sampled;
      let e = Flow_table.entry t.ft ~egress ~fid_hash:(Flow.hash flow) in
      let stale = now t - e.Flow_table.last > t.sticky in
      if e.Flow_table.size = 0 && (e.Flow_table.q < 0 || stale) then begin
        let local = Dqa.assign t.dqa ~egress:(domain t ~egress ~cls) ~fid_hash:(Flow.hash flow) in
        t.st.assignments <- t.st.assignments + 1;
        if
          t.cfg.assignment = Dqa.Dynamic
          && not (Dqa.is_empty_queue t.dqa ~egress:(domain t ~egress ~cls) ~queue:local)
        then t.st.random_assignments <- t.st.random_assignments + 1;
        e.Flow_table.q <- (cls * t.qpc) + local
      end;
      if sampled then begin
        e.Flow_table.size <- e.Flow_table.size + 1;
        e.Flow_table.last <- now t
      end;
      if t.occupancy.(egress).(e.Flow_table.q) > 0 && e.Flow_table.size <= 1 then
        t.st.queue_collisions <- t.st.queue_collisions + 1;
      e.Flow_table.q
    end)
  | Packet.Ack | Packet.Nack | Packet.Grant | Packet.Cnp | Packet.Credit | Packet.Credit_req ->
    ctrl_queue t ~cls:(cls_of_pkt t pkt)
  | Packet.Pause | Packet.Resume | Packet.Pause_bitmap | Packet.Hop_credit | Packet.Pfc ->
    (* never reaches the data path *)
    ctrl_queue t ~cls:0

let make_ctrl t kind =
  match Switch.pool t.sw with
  | Some p -> Packet.Pool.acquire p kind ~src:(Switch.node_id t.sw) ~dst:(-1) ~size:Packet.ctrl_bytes ()
  | None ->
    Packet.make ~sim:(Switch.sim t.sw) kind ~src:(Switch.node_id t.sw) ~dst:(-1)
      ~size:Packet.ctrl_bytes ()

let send_pause t ~egress ~upstream_q kind =
  let pkt = make_ctrl t kind in
  pkt.Packet.ctrl_a <- upstream_q;
  Switch.send_ctrl t.sw ~egress pkt;
  match kind with
  | Packet.Pause -> t.st.pauses_sent <- t.st.pauses_sent + 1
  | Packet.Resume -> t.st.resumes_sent <- t.st.resumes_sent + 1
  | _ -> ()

let on_enqueue t _sw ~in_port ~egress ~queue pkt =
  if pkt.Packet.kind = Packet.Data then begin
    if is_data_queue t ~queue then begin
      Dqa.mark_occupied t.dqa
        ~egress:(domain t ~egress ~cls:(cls_of_queue t ~queue))
        ~queue:(local_of_queue t ~queue);
      t.occupancy.(egress).(queue) <- t.occupancy.(egress).(queue) + 1
    end;
    if
      pkt.Packet.bp_sampled
      && in_port >= 0
      && pkt.Packet.upstream_q >= 0
      && !(t.allow_bp) ~in_port ~egress
    then begin
      let q = Switch.queue t.sw ~egress ~queue in
      if q.Bfc_switch.Fifo.bytes > threshold t ~egress then begin
        pkt.Packet.bp_counted <- true;
        pkt.Packet.bp_upq <- pkt.Packet.upstream_q;
        t.st.packets_counted <- t.st.packets_counted + 1;
        match Pause_counter.incr t.pc ~ingress:in_port ~upstream_q:pkt.Packet.upstream_q with
        | Pause_counter.Went_up ->
          send_pause t ~egress:in_port ~upstream_q:pkt.Packet.upstream_q Packet.Pause
        | Pause_counter.Went_down | Pause_counter.No_change -> ()
      end
    end
  end

(* --------------------------------------------------------------- *)
(* Dequeue side (the recirculated header's work)                     *)

let on_dequeue t _sw ~egress ~queue pkt =
  if pkt.Packet.kind = Packet.Data then begin
    if pkt.Packet.bp_counted then begin
      (match
         Pause_counter.decr t.pc ~ingress:pkt.Packet.bp_in_port ~upstream_q:pkt.Packet.bp_upq
       with
      | Pause_counter.Went_down ->
        send_pause t ~egress:pkt.Packet.bp_in_port ~upstream_q:pkt.Packet.bp_upq Packet.Resume
      | Pause_counter.Went_up | Pause_counter.No_change -> ());
      pkt.Packet.bp_counted <- false
    end;
    let flow = Packet.flow_exn pkt ~at:(now t) in
    let incast_bypass = t.cfg.incast_label && flow.Flow.is_incast in
    if pkt.Packet.bp_sampled && not incast_bypass then begin
      let e = Flow_table.entry t.ft ~egress ~fid_hash:(Flow.hash flow) in
      e.Flow_table.size <- max 0 (e.Flow_table.size - 1);
      e.Flow_table.last <- now t
    end;
    if is_data_queue t ~queue then begin
      t.occupancy.(egress).(queue) <- max 0 (t.occupancy.(egress).(queue) - 1);
      let q = Switch.queue t.sw ~egress ~queue in
      let incast_queue = t.cfg.incast_label && local_of_queue t ~queue = 0 in
      if Bfc_switch.Fifo.is_empty q && not incast_queue then
        Dqa.mark_empty t.dqa
          ~egress:(domain t ~egress ~cls:(cls_of_queue t ~queue))
          ~queue:(local_of_queue t ~queue)
    end;
    (* Tell the next hop which of our queues this packet came from. *)
    pkt.Packet.upstream_q <- queue
  end

let on_drop t _sw ~in_port:_ ~egress ~queue:_ pkt =
  (* Undo the enqueue-side flow table increment. *)
  if pkt.Packet.kind = Packet.Data then begin
    let flow = Packet.flow_exn pkt ~at:(now t) in
    let incast_bypass = t.cfg.incast_label && flow.Flow.is_incast in
    if pkt.Packet.bp_sampled && not incast_bypass then begin
      let e = Flow_table.entry t.ft ~egress ~fid_hash:(Flow.hash flow) in
      e.Flow_table.size <- max 0 (e.Flow_table.size - 1)
    end
  end

(* --------------------------------------------------------------- *)
(* Reacting side                                                     *)

let apply_ctrl ~set_paused ~n_queues pkt =
  match pkt.Packet.kind with
  | Packet.Pause ->
    if pkt.Packet.ctrl_a >= 0 && pkt.Packet.ctrl_a < n_queues then
      set_paused ~queue:pkt.Packet.ctrl_a true
  | Packet.Resume ->
    if pkt.Packet.ctrl_a >= 0 && pkt.Packet.ctrl_a < n_queues then
      set_paused ~queue:pkt.Packet.ctrl_a false
  | Packet.Pause_bitmap ->
    let want = Array.make n_queues false in
    Array.iter (fun q -> if q >= 0 && q < n_queues then want.(q) <- true) pkt.Packet.ints;
    for q = 0 to n_queues - 1 do
      set_paused ~queue:q want.(q)
    done
  | _ -> ()

(* Wipe the dataplane program's state alongside a switch reboot: the flow
   table, pause counters, DQA bitmaps and occupancy diagnostics all restart
   from scratch (the reloaded P4 program has no memory of the old run). *)
(* bfc-lint: control-plane *)
let reset t =
  Flow_table.reset t.ft;
  Pause_counter.reset t.pc;
  Dqa.reset t.dqa;
  Array.iter (fun row -> Array.fill row 0 (Array.length row) 0) t.occupancy;
  if t.cfg.incast_label then
    for d = 0 to (Switch.n_ports t.sw * t.classes) - 1 do
      Dqa.mark_occupied t.dqa ~egress:d ~queue:0
    done

let on_ctrl t _sw ~in_port pkt =
  match pkt.Packet.kind with
  | Packet.Pause | Packet.Resume | Packet.Pause_bitmap ->
    let n_queues = Switch.(config t.sw).queues_per_port in
    apply_ctrl
      ~set_paused:(fun ~queue paused -> Switch.set_queue_paused t.sw ~egress:in_port ~queue paused)
      ~n_queues pkt;
    true
  | _ -> false

(* bfc-lint: control-plane *)
let start_bitmap_refresh t period =
  let sim = Switch.sim t.sw in
  ignore
    (Sim.every sim ~period (fun () ->
         for ingress = 0 to Switch.n_ports t.sw - 1 do
           let paused = Pause_counter.paused_queues t.pc ~ingress in
           let pkt = make_ctrl t Packet.Pause_bitmap in
           pkt.Packet.ints <- Array.of_list paused;
           Switch.send_ctrl t.sw ~egress:ingress pkt
         done))

(* bfc-lint: control-plane *)
let attach sw cfg =
  let scfg = Switch.config sw in
  let nq = scfg.Switch.queues_per_port in
  let classes = max 1 scfg.Switch.classes in
  if nq mod classes <> 0 then invalid_arg "Dataplane.attach: queues not divisible by classes";
  let qpc = nq / classes in
  if qpc < 2 then invalid_arg "Dataplane.attach: need at least 2 queues per class";
  let n_ports = Switch.n_ports sw in
  let rng = Bfc_util.Rng.create (cfg.seed + (Switch.node_id sw * 7919)) in
  let t =
    {
      sw;
      cfg;
      classes;
      qpc;
      ft = Flow_table.create ~egresses:n_ports ~queues_per_port:nq ~mult:cfg.table_mult;
      pc = Pause_counter.create ~ingresses:n_ports ~max_upstream_q:cfg.max_upstream_q;
      dqa =
        Dqa.create ~egresses:(n_ports * classes) ~queues:(qpc - 1) ~policy:cfg.assignment ~rng;
      sticky = Threshold.sticky_window sw ~mult:cfg.sticky_hrtt_mult;
      allow_bp = ref (fun ~in_port:_ ~egress:_ -> true);
      th = Threshold.source_for_switch sw ~fixed_th:cfg.fixed_th ~factor:cfg.th_factor;
      rng;
      st =
        {
          pauses_sent = 0;
          resumes_sent = 0;
          packets_counted = 0;
          queue_collisions = 0;
          assignments = 0;
          random_assignments = 0;
        };
      occupancy = Array.init n_ports (fun _ -> Array.make nq 0);
    }
  in
  if cfg.incast_label then
    for d = 0 to (n_ports * classes) - 1 do
      Dqa.mark_occupied t.dqa ~egress:d ~queue:0
    done;
  let hk = Switch.hooks sw in
  hk.Switch.classify <- classify t;
  hk.Switch.on_enqueue <- on_enqueue t;
  hk.Switch.on_dequeue <- on_dequeue t;
  hk.Switch.on_drop <- on_drop t;
  hk.Switch.on_ctrl <- on_ctrl t;
  (match cfg.bitmap_period with None -> () | Some p -> start_bitmap_refresh t p);
  t
