(** BFC's flow table (§3.3.1).

    An array indexed by ⟨egress port, hash(FID)⟩ storing, per entry, the
    physical queue assignment, the number of packets in the switch from
    flows mapping to this entry, and the last-touch timestamp used for
    sticky reassignment. Sized as a multiple of the number of queues
    (100x in the paper: < 1% index collisions when flows <= queues). *)

type entry = {
  mutable q : int; (** physical queue assignment; -1 = never assigned *)
  mutable size : int; (** packets from this entry currently in the switch *)
  mutable last : Bfc_engine.Time.t; (** last enqueue/dequeue touch *)
}

type t

(** [create ~egresses ~queues_per_port ~mult] — [mult x queues_per_port]
    slots per egress, rounded up to the next power of two so the
    per-packet {!entry} lookup is a bit-mask rather than a division. *)
val create : egresses:int -> queues_per_port:int -> mult:int -> t

val slots_per_port : t -> int

(** Total entries (all egresses). *)
val total_slots : t -> int

(** [entry t ~egress ~fid_hash] — the slot this flow maps to. *)
val entry : t -> egress:int -> fid_hash:int -> entry

(** Entries with [size > 0] at an egress (diagnostics). *)
val occupied : t -> egress:int -> int

(** Wipe every entry back to its initial state (switch reboot). *)
val reset : t -> unit
