type entry = { mutable q : int; mutable size : int; mutable last : Bfc_engine.Time.t }

type t = { slots : int; fmask : int; tables : entry array array }

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

(* Slot count is rounded up to a power of two so the per-packet [entry]
   lookup is a mask instead of a hardware division ([Flow.hash] already
   mixes the id through a splitmix64 finalizer, so the low bits are as
   good as a modulus). The paper only requires "a large multiple of the
   queue count"; rounding up strictly lowers the collision rate. *)
let create ~egresses ~queues_per_port ~mult =
  if egresses < 0 || queues_per_port <= 0 || mult <= 0 then invalid_arg "Flow_table.create";
  let slots = next_pow2 (queues_per_port * mult) 1 in
  {
    slots;
    fmask = slots - 1;
    tables =
      Array.init egresses (fun _ -> Array.init slots (fun _ -> { q = -1; size = 0; last = min_int }));
  }

let slots_per_port t = t.slots

let total_slots t = Array.length t.tables * t.slots

let entry t ~egress ~fid_hash = t.tables.(egress).(fid_hash land t.fmask)

let occupied t ~egress =
  Array.fold_left (fun acc e -> if e.size > 0 then acc + 1 else acc) 0 t.tables.(egress)

let reset t =
  Array.iter
    (fun tbl ->
      Array.iter
        (fun e ->
          e.q <- -1;
          e.size <- 0;
          e.last <- min_int)
        tbl)
    t.tables
