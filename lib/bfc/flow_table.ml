type entry = { mutable q : int; mutable size : int; mutable last : Bfc_engine.Time.t }

type t = { slots : int; tables : entry array array }

let create ~egresses ~queues_per_port ~mult =
  if egresses < 0 || queues_per_port <= 0 || mult <= 0 then invalid_arg "Flow_table.create";
  let slots = queues_per_port * mult in
  {
    slots;
    tables =
      Array.init egresses (fun _ -> Array.init slots (fun _ -> { q = -1; size = 0; last = min_int }));
  }

let slots_per_port t = t.slots

let total_slots t = Array.length t.tables * t.slots

let entry t ~egress ~fid_hash = t.tables.(egress).(fid_hash mod t.slots)

let occupied t ~egress =
  Array.fold_left (fun acc e -> if e.size > 0 then acc + 1 else acc) 0 t.tables.(egress)

let reset t =
  Array.iter
    (fun tbl ->
      Array.iter
        (fun e ->
          e.q <- -1;
          e.size <- 0;
          e.last <- min_int)
        tbl)
    t.tables
