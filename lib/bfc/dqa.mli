(** Dynamic queue assignment (§3.3.1).

    Per egress port, a bitmap of empty queues with a rotating scan start
    (mirroring Tofino2's per-pipeline rotation). A new flow takes an empty
    queue when one exists and a random one otherwise; [Stochastic] hashes
    statically (the strawman of §3.2); [Single] maps everything to queue 0
    (PFC-like, Fig. 8's "BFC + single"). *)

type policy = Dynamic | Stochastic | Single

type t

(** [create ~egresses ~queues ~policy ~rng] — [queues] = number of data
    queues eligible for assignment at each egress (reserved control queues
    excluded by the caller). All queues start empty. *)
val create : egresses:int -> queues:int -> policy:policy -> rng:Bfc_util.Rng.t -> t

val policy : t -> policy

(** [assign t ~egress ~fid_hash] picks a queue for a new flow. *)
val assign : t -> egress:int -> fid_hash:int -> int

(** Queue became empty: eligible for reassignment. *)
val mark_empty : t -> egress:int -> queue:int -> unit

(** Queue became occupied. *)
val mark_occupied : t -> egress:int -> queue:int -> unit

val empty_count : t -> egress:int -> int

val is_empty_queue : t -> egress:int -> queue:int -> bool

(** Every queue back to empty, scan starts rewound (switch reboot). *)
val reset : t -> unit
