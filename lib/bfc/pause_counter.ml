type edge = Went_up | Went_down | No_change

type t = { counters : int array array; max_q : int }

let create ~ingresses ~max_upstream_q =
  if ingresses < 0 || max_upstream_q <= 0 then invalid_arg "Pause_counter.create";
  { counters = Array.init ingresses (fun _ -> Array.make max_upstream_q 0); max_q = max_upstream_q }

let check t upstream_q =
  if upstream_q < 0 || upstream_q >= t.max_q then
    invalid_arg (Printf.sprintf "Pause_counter: upstream queue %d out of range" upstream_q)

let incr t ~ingress ~upstream_q =
  check t upstream_q;
  let c = t.counters.(ingress) in
  c.(upstream_q) <- c.(upstream_q) + 1;
  if c.(upstream_q) = 1 then Went_up else No_change

let decr t ~ingress ~upstream_q =
  check t upstream_q;
  let c = t.counters.(ingress) in
  if c.(upstream_q) <= 0 then invalid_arg "Pause_counter.decr: counter already zero";
  c.(upstream_q) <- c.(upstream_q) - 1;
  if c.(upstream_q) = 0 then Went_down else No_change

let count t ~ingress ~upstream_q =
  check t upstream_q;
  t.counters.(ingress).(upstream_q)

let paused t ~ingress ~upstream_q = count t ~ingress ~upstream_q > 0

let paused_queues t ~ingress =
  let c = t.counters.(ingress) in
  let acc = ref [] in
  for q = Array.length c - 1 downto 0 do
    if c.(q) > 0 then acc := q :: !acc
  done;
  !acc

let total t =
  Array.fold_left (fun a row -> Array.fold_left ( + ) a row) 0 t.counters

let reset t = Array.iter (fun row -> Array.fill row 0 (Array.length row) 0) t.counters
