(** One physical FIFO queue at an egress port (or NIC).

    Queues can be paused/resumed individually (the Tofino2 capability BFC
    builds on). Pausing affects scheduling eligibility only; enqueues are
    still accepted (admission is the buffer model's job). *)

type t = {
  idx : int; (** queue index within its egress port *)
  cls : int; (** traffic class this queue belongs to *)
  q : Bfc_net.Packet.t Queue.t;
  mutable bytes : int;
  mutable paused : bool; (** per-queue (BFC) pause *)
  mutable deficit : int; (** DRR state *)
  mutable in_ring : bool; (** scheduler bookkeeping *)
}

val create : idx:int -> cls:int -> t

val is_empty : t -> bool

val length : t -> int

val push : t -> Bfc_net.Packet.t -> unit

val pop : t -> Bfc_net.Packet.t

val peek : t -> Bfc_net.Packet.t option

(** Allocation-free [peek] for callers that know the queue is non-empty.
    Raises [Queue.Empty] otherwise. *)
val peek_exn : t -> Bfc_net.Packet.t

(** Head packet's size in bytes; [0] when empty (used by credit gating). *)
val head_size : t -> int

(** Head packet's [remaining] header field; [max_int] when empty (used by
    SRF scheduling). *)
val head_remaining : t -> int
