(** Shared-buffer memory model (the "standard shared buffer memory model
    implemented in existing switches", §6.2.1).

    All egress queues of a switch draw from one byte pool of [total] bytes.
    Admission uses the classic dynamic-threshold rule: a packet is accepted
    iff its target queue holds fewer than [alpha x free] bytes and the pool
    is not exhausted. Per-ingress byte counts support PFC thresholds. *)

type t

(** [total = max_int] means infinite buffering (Ideal-FQ). *)
val create : total:int -> alpha:float -> n_ingress:int -> t

val total : t -> int

val used : t -> int

val free : t -> int

val infinite : t -> bool

(** Would a [size]-byte packet be admitted to a queue currently holding
    [queue_bytes]? *)
val admit : t -> queue_bytes:int -> size:int -> bool

val on_enqueue : t -> in_port:int -> size:int -> unit

val on_dequeue : t -> in_port:int -> size:int -> unit

val ingress_used : t -> int -> int

(** Zero all accounting (total and per-ingress). Only meaningful together
    with flushing the queues that were counted (switch reboot). *)
val reset : t -> unit
