type t = {
  idx : int;
  cls : int;
  q : Bfc_net.Packet.t Queue.t;
  mutable bytes : int;
  mutable paused : bool;
  mutable deficit : int;
  mutable in_ring : bool;
}

let create ~idx ~cls =
  { idx; cls; q = Queue.create (); bytes = 0; paused = false; deficit = 0; in_ring = false }

let is_empty t = Queue.is_empty t.q

let length t = Queue.length t.q

let push t pkt =
  Queue.add pkt t.q;
  t.bytes <- t.bytes + pkt.Bfc_net.Packet.size

let pop t =
  let pkt = Queue.pop t.q in
  t.bytes <- t.bytes - pkt.Bfc_net.Packet.size;
  pkt

let peek t = Queue.peek_opt t.q

(* Allocation-free head accessors for the scheduling hot path (peek returns
   an option, i.e. one [Some] block per call). *)
let peek_exn t = Queue.peek t.q

let head_size t = if Queue.is_empty t.q then 0 else (Queue.peek t.q).Bfc_net.Packet.size

let head_remaining t =
  if Queue.is_empty t.q then max_int else (Queue.peek t.q).Bfc_net.Packet.remaining
