type t = {
  total : int;
  alpha : float;
  mutable used : int;
  ingress_used : int array;
}

let create ~total ~alpha ~n_ingress =
  if total <= 0 then invalid_arg "Buffer.create: total";
  { total; alpha; used = 0; ingress_used = Array.make (max 1 n_ingress) 0 }

let total t = t.total

let used t = t.used

let infinite t = t.total = max_int

let free t = if infinite t then max_int else t.total - t.used

let admit t ~queue_bytes ~size =
  if infinite t then true
  else begin
    let remaining = t.total - t.used in
    size <= remaining
    && float_of_int queue_bytes < t.alpha *. float_of_int remaining
  end

let on_enqueue t ~in_port ~size =
  t.used <- t.used + size;
  if in_port >= 0 && in_port < Array.length t.ingress_used then
    t.ingress_used.(in_port) <- t.ingress_used.(in_port) + size

let on_dequeue t ~in_port ~size =
  t.used <- t.used - size;
  if in_port >= 0 && in_port < Array.length t.ingress_used then
    t.ingress_used.(in_port) <- t.ingress_used.(in_port) - size

let ingress_used t i = t.ingress_used.(i)

let reset t =
  t.used <- 0;
  Array.fill t.ingress_used 0 (Array.length t.ingress_used) 0
