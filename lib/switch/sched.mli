(** Egress-port packet scheduler.

    Policies:
    - [Drr]: deficit round robin among eligible queues (per-flow fair
      queuing when each flow has its own queue — BFC's default, §3.3.1);
    - [Srf]: serve the eligible queue whose head packet has the smallest
      remaining-flow-size header (BFC-SRF, App. A.2);
    - [Prio_strict]: strict priority by queue index (Homa's priority
      queues).

    With [classes > 1], queues are statically partitioned among classes
    (queue [i] belongs to class [i * classes / n_queues]); classes are
    served in strict priority and the policy applies within a class
    (App. A.3).

    A queue is *eligible* when it has packets, is not BFC-paused, and its
    egress is not PFC-paused. The scheduler is notified of state changes via
    [activate] (queue may have become servable). *)

type policy = Drr | Srf | Prio_strict

type t

val create : policy -> queues:Fifo.t array -> classes:int -> quantum:int -> t

val policy : t -> policy

(** Tell the scheduler this queue may now be servable (enqueue into empty
    queue, resume, PFC unpause). Idempotent. *)
val activate : t -> Fifo.t -> unit

(** Enqueue through the scheduler so its backlog accounting stays exact. *)
val push : t -> Fifo.t -> Bfc_net.Packet.t -> unit

(** Pause or resume a queue (BFC's per-queue pause). *)
val set_paused : t -> Fifo.t -> bool -> unit

(** Pick and pop the next packet to transmit, honouring pauses; [None] when
    no queue is eligible. Updates DRR deficits. Returns the queue served. *)
val next : t -> (Fifo.t * Bfc_net.Packet.t) option

(** [flush t f] empties every queue, calling [f] on each resident packet
    (oldest first per queue), and resets all scheduler state: pauses,
    deficits, candidate rings, backlog counts. Models a device losing its
    buffered packets (switch drain / reboot). *)
val flush : t -> (Bfc_net.Packet.t -> unit) -> unit

(** Number of active queues: non-empty and not paused (the paper's
    N_active, used for the pause threshold Th). *)
val n_active : t -> int

(** Non-empty queue count regardless of pauses. *)
val n_backlogged : t -> int

(** Iterate non-empty queues. *)
val iter_backlogged : t -> (Fifo.t -> unit) -> unit
