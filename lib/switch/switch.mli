(** The switch: routing, shared buffer, per-port queue arrays, scheduler,
    ECN, PFC, INT, and dataplane hooks.

    The switch is deliberately "programmable": protocol-specific dataplane
    behaviour (BFC's flow table and pause counters, Ideal-FQ's per-flow
    queues, Homa's priority mapping) attaches through [hooks], mirroring how
    BFC is a P4 program over a fixed switch architecture (§3.1). *)

type ecn_config = { kmin : int; kmax : int; pmax : float }

type pfc_config = {
  threshold_frac : float;
      (** pause an ingress when its buffered bytes exceed this fraction of
          the free buffer (HPCC setting: 0.11) *)
  resume_frac : float; (** resume below [resume_frac x threshold] *)
}

type config = {
  queues_per_port : int;
  classes : int; (** traffic classes; queues are evenly partitioned *)
  policy : Sched.policy;
  buffer_bytes : int; (** [max_int] = infinite (Ideal-FQ) *)
  dt_alpha : float; (** dynamic-threshold alpha for admission *)
  ecn : ecn_config option;
  pfc : pfc_config option;
  int_stamping : bool; (** append HPCC INT telemetry on dequeue *)
  track_active_flows : bool; (** maintain per-egress distinct-flow counts *)
  mtu : int; (** DRR quantum = mtu + header *)
  pause_watchdog : Bfc_engine.Time.t option;
      (** force-resume any queue (or PFC-paused egress) paused longer than
          this; every pause assertion re-arms the deadline. [None] (the
          default) disables the watchdog. *)
}

val default_config : config

type t

(** Routing decision: local egress port for a packet. *)
type route_fn = t -> in_port:int -> Bfc_net.Packet.t -> int

type hooks = {
  mutable classify : t -> in_port:int -> egress:int -> Bfc_net.Packet.t -> int;
      (** queue index at the egress; may update dataplane state *)
  mutable on_enqueue : t -> in_port:int -> egress:int -> queue:int -> Bfc_net.Packet.t -> unit;
  mutable on_dequeue : t -> egress:int -> queue:int -> Bfc_net.Packet.t -> unit;
  mutable on_drop : t -> in_port:int -> egress:int -> queue:int -> Bfc_net.Packet.t -> unit;
  mutable on_ctrl : t -> in_port:int -> Bfc_net.Packet.t -> bool;
      (** BFC pause/resume/bitmap handler; return [true] if consumed *)
  mutable on_pkt_departed : t -> egress:int -> Bfc_net.Packet.t -> delay:int -> unit;
      (** metrics tap: queuing delay of each departing packet at this hop *)
  mutable admit : t -> egress:int -> queue:int -> Bfc_net.Packet.t -> bool;
      (** extra admission check ANDed with the buffer model (e.g.
          ExpressPass's 16-credit queue cap) *)
  mutable on_watchdog : t -> egress:int -> queue:int -> unit;
      (** pause watchdog force-resumed a queue ([queue = -1] for a PFC
          port-level unpause); fires before the resume takes effect *)
  mutable on_reboot : t -> flushed:int -> unit;
      (** fires at the end of {!reboot}, after all state is flushed (the
          attached dataplane program and auditors resync here) *)
  mutable on_queue_pause : t -> egress:int -> queue:int -> paused:bool -> unit;
      (** fires on every pause-state {e transition} of an egress queue
          ([queue = -1] for a PFC port-level pause); repeated assertions
          (bitmap refreshes) do not re-fire. The observability layer turns
          these into pause/resume spans *)
}

(** [create ~sim ~node ~config ~route] attaches a switch device to [node].
    [route] typically wraps {!Bfc_net.Topology.ecmp_port}. With [?pool],
    control packets are drawn from (and consumed packets returned to) the
    environment's packet pool; without it the switch allocates normally. *)
val create :
  sim:Bfc_engine.Sim.t ->
  node:Bfc_net.Node.t ->
  ports:Bfc_net.Port.t array ->
  config:config ->
  ?pool:Bfc_net.Packet.Pool.t ->
  route:route_fn ->
  unit ->
  t

val hooks : t -> hooks

val config : t -> config

val node_id : t -> int

val sim : t -> Bfc_engine.Sim.t

(** The attached packet pool, if the switch was created with one. Dataplane
    programs use it to mint pause/credit frames without allocating. *)
val pool : t -> Bfc_net.Packet.Pool.t option

val n_ports : t -> int

val port : t -> int -> Bfc_net.Port.t

(** {2 Dataplane services for hooks} *)

(** Queue [queue] of egress [egress]. *)
val queue : t -> egress:int -> queue:int -> Fifo.t

(** Queues of one egress. *)
val queues : t -> egress:int -> Fifo.t array

(** Pause/resume a queue (BFC backpressure reacting side). *)
val set_queue_paused : t -> egress:int -> queue:int -> bool -> unit

(** Number of active queues at an egress (non-empty, not paused):
    the paper's N_active. *)
val n_active : t -> egress:int -> int

(** Bytes queued at an egress (all queues). *)
val egress_bytes : t -> egress:int -> int

(** Send a control packet out of [egress] (towards the device whose
    packets arrive on the paired ingress), bypassing data queues. *)
val send_ctrl : t -> egress:int -> Bfc_net.Packet.t -> unit

(** Largest 1-hop RTT among this switch's ports (used for Th, §3.3.2). *)
val max_hop_rtt : t -> Bfc_engine.Time.t

(** {2 Introspection / metrics} *)

val buffer : t -> Buffer.t

val buffer_used : t -> int

val drops : t -> int

(** Dropped Data packets only (ExpressPass drops credits by design). *)
val data_drops : t -> int

val tx_packets : t -> int

val rx_packets : t -> int

(** Cumulative time (ns) egress [egress] has spent PFC-paused. *)
val pfc_paused_ns : t -> egress:int -> int

(** Is this egress currently PFC-paused? *)
val pfc_paused : t -> egress:int -> bool

(** Distinct flows with >= 1 packet queued at the egress
    (requires [track_active_flows]). *)
val active_flows : t -> egress:int -> int

(** Force the transmit loop of an egress to re-examine its queues (used
    after resume events originating outside the switch). *)
val kick : t -> egress:int -> unit

(** {2 Fault injection} *)

(** Crash-and-restart: every queue is flushed (resident packets are lost
    and counted in {!drops}), buffer accounting, pause state, PFC latches
    and flow tracking are reset. Upstream queues paused on this switch's
    behalf receive no Resume; their own pause watchdogs must recover them.
    Returns the number of packets lost. *)
val reboot : t -> int

(** Number of {!reboot}s so far (auditors use this as a generation
    counter to resynchronise conservation baselines). *)
val reboots : t -> int

(** Times the pause watchdog force-resumed a queue or egress. *)
val watchdog_fires : t -> int

val queue_paused : t -> egress:int -> queue:int -> bool

(** Number of currently paused queues across all egresses (each PFC-paused
    port counts as one). A telemetry gauge: walks the queue arrays, so call
    it per sample tick, not per packet. *)
val paused_queues : t -> int

(** Sim time at which the queue was last paused, [None] if not paused. *)
val queue_paused_since : t -> egress:int -> queue:int -> Bfc_engine.Time.t option
