module Packet = Bfc_net.Packet
module Port = Bfc_net.Port
module Node = Bfc_net.Node
module Sim = Bfc_engine.Sim

type ecn_config = { kmin : int; kmax : int; pmax : float }

type pfc_config = { threshold_frac : float; resume_frac : float }

type config = {
  queues_per_port : int;
  classes : int;
  policy : Sched.policy;
  buffer_bytes : int;
  dt_alpha : float;
  ecn : ecn_config option;
  pfc : pfc_config option;
  int_stamping : bool;
  track_active_flows : bool;
  mtu : int;
  pause_watchdog : Bfc_engine.Time.t option;
}

let default_config =
  {
    queues_per_port = 32;
    classes = 1;
    policy = Sched.Drr;
    buffer_bytes = 12_000_000;
    dt_alpha = 1.0;
    ecn = None;
    pfc = None;
    int_stamping = false;
    track_active_flows = false;
    mtu = 1000;
    pause_watchdog = None;
  }

type egress = {
  eidx : int;
  eport : Port.t;
  equeues : Fifo.t array;
  esched : Sched.t;
  mutable ebytes : int;
  mutable epfc_paused : bool;
  mutable epfc_since : Bfc_engine.Time.t;
  mutable epfc_total : int;
  mutable epfc_epoch : int; (* invalidates scheduled PFC watchdog checks *)
  ewd_since : Bfc_engine.Time.t array; (* per queue: pause start, -1 = not paused *)
  ewd_epoch : int array; (* invalidates scheduled per-queue watchdog checks *)
  eflows : Bfc_util.Int_table.Counter.t; (* flow id -> queued pkts, if tracking *)
}

type t = {
  sim : Sim.t;
  node : Node.t;
  idx : int; (* index into the per-sim switch registry, the [a0] of events *)
  cfg : config;
  pool : Packet.Pool.t option;
  route : route_fn;
  egresses : egress array;
  buffer : Buffer.t;
  hk : hooks;
  mutable pfc_sent : bool array; (* per ingress: pause frame outstanding *)
  mutable drops : int;
  mutable data_drops : int;
  mutable tx_packets : int;
  mutable rx_packets : int;
  mutable watchdog_fires : int;
  mutable reboot_count : int;
  max_hrtt : Bfc_engine.Time.t;
  rng : Bfc_util.Rng.t;
}

and route_fn = t -> in_port:int -> Packet.t -> int

and hooks = {
  mutable classify : t -> in_port:int -> egress:int -> Packet.t -> int;
  mutable on_enqueue : t -> in_port:int -> egress:int -> queue:int -> Packet.t -> unit;
  mutable on_dequeue : t -> egress:int -> queue:int -> Packet.t -> unit;
  mutable on_drop : t -> in_port:int -> egress:int -> queue:int -> Packet.t -> unit;
  mutable on_ctrl : t -> in_port:int -> Packet.t -> bool;
  mutable on_pkt_departed : t -> egress:int -> Packet.t -> delay:int -> unit;
  mutable admit : t -> egress:int -> queue:int -> Packet.t -> bool;
  mutable on_watchdog : t -> egress:int -> queue:int -> unit;
  mutable on_reboot : t -> flushed:int -> unit;
  mutable on_queue_pause : t -> egress:int -> queue:int -> paused:bool -> unit;
}

let nop_classify _ ~in_port:_ ~egress:_ pkt =
  (* Default: one FIFO per class. *)
  pkt.Packet.prio

let default_hooks () =
  {
    classify = nop_classify;
    on_enqueue = (fun _ ~in_port:_ ~egress:_ ~queue:_ _ -> ());
    on_dequeue = (fun _ ~egress:_ ~queue:_ _ -> ());
    on_drop = (fun _ ~in_port:_ ~egress:_ ~queue:_ _ -> ());
    on_ctrl = (fun _ ~in_port:_ _ -> false);
    on_pkt_departed = (fun _ ~egress:_ _ ~delay:_ -> ());
    admit = (fun _ ~egress:_ ~queue:_ _ -> true);
    on_watchdog = (fun _ ~egress:_ ~queue:_ -> ());
    on_reboot = (fun _ ~flushed:_ -> ());
    on_queue_pause = (fun _ ~egress:_ ~queue:_ ~paused:_ -> ());
  }

let hooks t = t.hk

let config t = t.cfg

let node_id t = t.node.Node.id

let sim t = t.sim

let pool t = t.pool

(* Return a consumed packet to the environment's pool, if one is attached.
   Standalone switches (unit tests) run pool-less and let the GC collect. *)
let recycle t pkt = match t.pool with Some p -> Packet.Pool.release p pkt | None -> ()

let make_pfc t =
  match t.pool with
  | Some p ->
    Packet.Pool.acquire p Packet.Pfc ~src:t.node.Node.id ~dst:(-1) ~size:Packet.ctrl_bytes ()
  | None ->
    Packet.make ~sim:t.sim Packet.Pfc ~src:t.node.Node.id ~dst:(-1) ~size:Packet.ctrl_bytes ()

let n_ports t = Array.length t.egresses

let port t i = t.egresses.(i).eport

let queue t ~egress ~queue = t.egresses.(egress).equeues.(queue)

let queues t ~egress = t.egresses.(egress).equeues

let n_active t ~egress = Sched.n_active t.egresses.(egress).esched

let egress_bytes t ~egress = t.egresses.(egress).ebytes

let buffer t = t.buffer

let buffer_used t = Buffer.used t.buffer

let drops t = t.drops

let data_drops t = t.data_drops

let tx_packets t = t.tx_packets

let rx_packets t = t.rx_packets

let max_hop_rtt t = t.max_hrtt

let pfc_paused t ~egress = t.egresses.(egress).epfc_paused

let pfc_paused_ns t ~egress =
  let e = t.egresses.(egress) in
  e.epfc_total + if e.epfc_paused then Sim.now t.sim - e.epfc_since else 0

let active_flows t ~egress = Bfc_util.Int_table.Counter.length t.egresses.(egress).eflows

let send_ctrl t ~egress pkt = Port.send_ctrl t.egresses.(egress).eport pkt

(* ------------------------------------------------------------------ *)
(* Transmit path                                                       *)

let flow_track_add e pkt =
  match pkt.Packet.flow with
  | None -> ()
  | Some f -> Bfc_util.Int_table.Counter.incr e.eflows f.Bfc_net.Flow.id

let flow_track_remove e pkt =
  match pkt.Packet.flow with
  | None -> ()
  | Some f -> Bfc_util.Int_table.Counter.decr e.eflows f.Bfc_net.Flow.id

let pfc_check_resume t in_port =
  match t.cfg.pfc with
  | None -> ()
  | Some pfc ->
    if t.pfc_sent.(in_port) then begin
      let threshold = pfc.threshold_frac *. float_of_int (Buffer.free t.buffer) in
      if float_of_int (Buffer.ingress_used t.buffer in_port) < pfc.resume_frac *. threshold
      then begin
        t.pfc_sent.(in_port) <- false;
        let pkt = make_pfc t in
        pkt.Packet.ctrl_b <- 0;
        send_ctrl t ~egress:in_port pkt
      end
    end

let try_send t e =
  if not e.epfc_paused then begin
    if Port.busy e.eport then Port.ensure_wakeup e.eport
    else begin
      match Sched.next e.esched with
      | None -> ()
      | Some (q, pkt) ->
        e.ebytes <- e.ebytes - pkt.Packet.size;
        let delay = Sim.now t.sim - pkt.Packet.enq_at in
        pkt.Packet.q_delay <- pkt.Packet.q_delay + delay;
        pkt.Packet.hop_cnt <- pkt.Packet.hop_cnt + 1;
        Buffer.on_dequeue t.buffer ~in_port:pkt.Packet.bp_in_port ~size:pkt.Packet.size;
        if pkt.Packet.bp_in_port >= 0 then pfc_check_resume t pkt.Packet.bp_in_port;
        if t.cfg.track_active_flows then flow_track_remove e pkt;
        t.hk.on_dequeue t ~egress:e.eidx ~queue:q.Fifo.idx pkt;
        t.hk.on_pkt_departed t ~egress:e.eidx pkt ~delay;
        if t.cfg.int_stamping && pkt.Packet.kind = Packet.Data then
          Packet.add_int_hop pkt ~ts:(Sim.now t.sim)
            ~tx_bytes:(Port.tx_bytes e.eport + pkt.Packet.size)
            ~qlen:e.ebytes ~gbps:(Port.gbps e.eport) ~link:(Port.gid e.eport);
        t.tx_packets <- t.tx_packets + 1;
        Port.send e.eport pkt;
        (* serialization takes >= 1 ns, so the port is busy now; if more
           traffic is queued, the idle wakeup pulls the next packet *)
        if Sched.n_active e.esched > 0 then Port.ensure_wakeup e.eport
    end
  end

let kick t ~egress = try_send t t.egresses.(egress)

(* The pause watchdog (the standard PFC-watchdog defense, applied to BFC's
   per-queue pauses): a queue paused longer than the configured timeout is
   force-resumed, on the assumption that the Resume (or the link carrying
   it) was lost. Every pause assertion re-arms the deadline, so periodic
   bitmap refreshes keep a legitimately-paused queue paused. *)
let rec set_queue_paused t ~egress ~queue paused =
  let e = t.egresses.(egress) in
  if e.equeues.(queue).Fifo.paused <> paused then
    t.hk.on_queue_pause t ~egress ~queue ~paused;
  Sched.set_paused e.esched e.equeues.(queue) paused;
  e.ewd_epoch.(queue) <- e.ewd_epoch.(queue) + 1;
  if paused then begin
    e.ewd_since.(queue) <- Sim.now t.sim;
    arm_queue_watchdog t e ~queue
  end
  else begin
    e.ewd_since.(queue) <- -1;
    try_send t e
  end

(* Watchdog checks are typed [cls_switch_ctrl] events: [a1] packs
   (epoch << 24) | (egress << 12) | (queue + 1), with queue slot 0
   reserved for the per-port PFC watchdog. The packing fits whenever the
   switch has < 4096 ports and < 4095 queues per port (the epoch is
   bounded by the event budget, far below the remaining 39 bits); a
   switch outsized for the packing falls back to the closure path, which
   is identical in schedule order — same deadline, same default key,
   one push either way. *)
and arm_queue_watchdog t e ~queue =
  match t.cfg.pause_watchdog with
  | None -> ()
  | Some timeout ->
    let epoch = e.ewd_epoch.(queue) in
    if e.eidx < 4096 && queue < 4095 then
      Sim.post t.sim
        (Sim.now t.sim + timeout)
        ~cls:Sim.cls_switch_ctrl ~a0:t.idx
        ~a1:((epoch lsl 24) lor (e.eidx lsl 12) lor (queue + 1))
    else ignore (Sim.after t.sim timeout (wd_fallback t e ~queue epoch))

and wd_fallback t e ~queue epoch () =
  if e.ewd_epoch.(queue) = epoch && e.equeues.(queue).Fifo.paused then begin
    t.watchdog_fires <- t.watchdog_fires + 1;
    t.hk.on_watchdog t ~egress:e.eidx ~queue;
    set_queue_paused t ~egress:e.eidx ~queue false
  end

(* ------------------------------------------------------------------ *)
(* Receive path                                                        *)

let ecn_mark t q pkt =
  match t.cfg.ecn with
  | None -> ()
  | Some { kmin; kmax; pmax } ->
    if pkt.Packet.kind = Packet.Data then begin
      let b = q.Fifo.bytes in
      if b > kmax then pkt.Packet.ecn <- true
      else if b > kmin then begin
        let p = pmax *. float_of_int (b - kmin) /. float_of_int (kmax - kmin) in
        if Bfc_util.Rng.bernoulli t.rng p then pkt.Packet.ecn <- true
      end
    end

let pfc_check_pause t in_port =
  match t.cfg.pfc with
  | None -> ()
  | Some pfc ->
    if not t.pfc_sent.(in_port) then begin
      let threshold = pfc.threshold_frac *. float_of_int (Buffer.free t.buffer) in
      if float_of_int (Buffer.ingress_used t.buffer in_port) > threshold then begin
        t.pfc_sent.(in_port) <- true;
        let pkt = make_pfc t in
        pkt.Packet.ctrl_b <- 1;
        send_ctrl t ~egress:in_port pkt
      end
    end

let pfc_unpause t e =
  e.epfc_paused <- false;
  e.epfc_total <- e.epfc_total + (Sim.now t.sim - e.epfc_since);
  e.epfc_epoch <- e.epfc_epoch + 1;
  t.hk.on_queue_pause t ~egress:e.eidx ~queue:(-1) ~paused:false;
  try_send t e

let pfc_wd_fallback t e epoch () =
  if e.epfc_epoch = epoch && e.epfc_paused then begin
    t.watchdog_fires <- t.watchdog_fires + 1;
    t.hk.on_watchdog t ~egress:e.eidx ~queue:(-1);
    pfc_unpause t e
  end

let arm_pfc_watchdog t e =
  match t.cfg.pause_watchdog with
  | None -> ()
  | Some timeout ->
    if e.eidx < 4096 then
      Sim.post t.sim
        (Sim.now t.sim + timeout)
        ~cls:Sim.cls_switch_ctrl ~a0:t.idx
        ~a1:((e.epfc_epoch lsl 24) lor (e.eidx lsl 12))
    else ignore (Sim.after t.sim timeout (pfc_wd_fallback t e e.epfc_epoch))

(* ------------------------------------------------------------------ *)
(* Typed watchdog dispatch: one per-sim registry of switches, one shared
   executor. The event replays exactly the epoch-and-still-paused check
   the closure form made; a stale epoch (pause toggled or the switch
   rebooted since arming) makes the event a no-op. *)

type reg = { mutable sarr : t array; mutable sn : int }

type Bfc_engine.Sim.user += Switch_reg of reg

let watchdog_exec st a0 a1 =
  match st with
  | Switch_reg r ->
    let t = Array.unsafe_get r.sarr a0 in
    let epoch = a1 lsr 24 in
    let e = t.egresses.((a1 lsr 12) land 0xfff) in
    let q1 = a1 land 0xfff in
    if q1 = 0 then pfc_wd_fallback t e epoch ()
    else wd_fallback t e ~queue:(q1 - 1) epoch ()
  | _ -> invalid_arg "Switch.watchdog_exec: foreign class state"

let registry sim =
  match Sim.class_state sim ~cls:Sim.cls_switch_ctrl with
  | Some (Switch_reg r) -> r
  | _ ->
    let r = { sarr = [||]; sn = 0 } in
    Sim.register_class sim ~cls:Sim.cls_switch_ctrl ~state:(Switch_reg r) ~exec:watchdog_exec;
    r

let handle_pfc t ~in_port pkt =
  let e = t.egresses.(in_port) in
  let pause = pkt.Packet.ctrl_b = 1 in
  if pause && not e.epfc_paused then begin
    e.epfc_paused <- true;
    e.epfc_since <- Sim.now t.sim;
    e.epfc_epoch <- e.epfc_epoch + 1;
    t.hk.on_queue_pause t ~egress:e.eidx ~queue:(-1) ~paused:true;
    arm_pfc_watchdog t e
  end
  else if (not pause) && e.epfc_paused then pfc_unpause t e

let forward t ~in_port pkt =
  let egress = t.route t ~in_port pkt in
  let e = t.egresses.(egress) in
  let qidx = t.hk.classify t ~in_port ~egress pkt in
  let q = e.equeues.(qidx) in
  if
    (not (Buffer.admit t.buffer ~queue_bytes:q.Fifo.bytes ~size:pkt.Packet.size))
    || not (t.hk.admit t ~egress ~queue:qidx pkt)
  then begin
    t.drops <- t.drops + 1;
    if pkt.Packet.kind = Packet.Data then t.data_drops <- t.data_drops + 1;
    t.hk.on_drop t ~in_port ~egress ~queue:qidx pkt;
    (* Drop hooks only read the packet synchronously; the drop is its end
       of life, so it goes back to the pool here. *)
    recycle t pkt
  end
  else begin
    ecn_mark t q pkt;
    pkt.Packet.bp_in_port <- in_port;
    pkt.Packet.enq_at <- Sim.now t.sim;
    Buffer.on_enqueue t.buffer ~in_port ~size:pkt.Packet.size;
    e.ebytes <- e.ebytes + pkt.Packet.size;
    if t.cfg.track_active_flows then flow_track_add e pkt;
    Sched.push e.esched q pkt;
    t.hk.on_enqueue t ~in_port ~egress ~queue:qidx pkt;
    pfc_check_pause t in_port;
    try_send t e
  end

(* ------------------------------------------------------------------ *)
(* Fault injection support                                             *)

(* Crash-and-restart: the shared buffer is flushed (resident packets are
   lost and counted as drops), pause state, PFC latches and per-flow
   tracking reset — as if the dataplane program was reloaded. Upstream
   devices our pause counters held paused get no Resume (we crashed);
   recovering them is the pause watchdog's job. Returns the number of
   packets lost. *)
let reboot t =
  let flushed = ref 0 in
  Array.iter
    (fun e ->
      Sched.flush e.esched (fun pkt ->
          incr flushed;
          t.drops <- t.drops + 1;
          if pkt.Packet.kind = Packet.Data then t.data_drops <- t.data_drops + 1;
          recycle t pkt);
      e.ebytes <- 0;
      if e.epfc_paused then begin
        e.epfc_paused <- false;
        e.epfc_total <- e.epfc_total + (Sim.now t.sim - e.epfc_since)
      end;
      e.epfc_epoch <- e.epfc_epoch + 1;
      Array.fill e.ewd_since 0 (Array.length e.ewd_since) (-1);
      for q = 0 to Array.length e.ewd_epoch - 1 do
        e.ewd_epoch.(q) <- e.ewd_epoch.(q) + 1
      done;
      Bfc_util.Int_table.Counter.reset e.eflows)
    t.egresses;
  Buffer.reset t.buffer;
  Array.fill t.pfc_sent 0 (Array.length t.pfc_sent) false;
  t.reboot_count <- t.reboot_count + 1;
  t.hk.on_reboot t ~flushed:!flushed;
  !flushed

let reboots t = t.reboot_count

let watchdog_fires t = t.watchdog_fires

let queue_paused t ~egress ~queue = t.egresses.(egress).equeues.(queue).Fifo.paused

(* Telemetry gauge: paused queues across every egress (PFC-paused ports
   count as one each). Walks the queue arrays; called per sample tick, not
   per packet. *)
let paused_queues t =
  let n = ref 0 in
  Array.iter
    (fun e ->
      if e.epfc_paused then incr n;
      Array.iter (fun q -> if q.Fifo.paused then incr n) e.equeues)
    t.egresses;
  !n

let queue_paused_since t ~egress ~queue =
  let since = t.egresses.(egress).ewd_since.(queue) in
  if since < 0 then None else Some since

let receive t ~in_port pkt =
  t.rx_packets <- t.rx_packets + 1;
  match pkt.Packet.kind with
  | Packet.Pfc ->
    handle_pfc t ~in_port pkt;
    recycle t pkt
  | Packet.Pause | Packet.Resume | Packet.Pause_bitmap | Packet.Hop_credit ->
    (* Control handlers consume the packet synchronously (handled or not,
       a control frame terminates here). *)
    ignore (t.hk.on_ctrl t ~in_port pkt);
    recycle t pkt
  | Packet.Data | Packet.Ack | Packet.Nack | Packet.Credit | Packet.Credit_req | Packet.Grant
  | Packet.Cnp ->
    forward t ~in_port pkt

let create ~sim ~node ~ports ~config:cfg ?pool ~route () =
  let r = registry sim in
  let n_ingress = Array.length ports in
  let quantum = cfg.mtu + Packet.header_bytes in
  let egresses =
    Array.mapi
      (fun i p ->
        let equeues =
          Array.init cfg.queues_per_port (fun qi ->
              Fifo.create ~idx:qi ~cls:(qi * cfg.classes / cfg.queues_per_port))
        in
        {
          eidx = i;
          eport = p;
          equeues;
          esched = Sched.create cfg.policy ~queues:equeues ~classes:cfg.classes ~quantum;
          ebytes = 0;
          epfc_paused = false;
          epfc_since = 0;
          epfc_total = 0;
          epfc_epoch = 0;
          ewd_since = Array.make cfg.queues_per_port (-1);
          ewd_epoch = Array.make cfg.queues_per_port 0;
          eflows = Bfc_util.Int_table.Counter.create ~size:64 ();
        })
      ports
  in
  let max_hrtt = Array.fold_left (fun acc p -> max acc (Port.hop_rtt p)) 0 ports in
  let t =
    {
      sim;
      node;
      idx = r.sn;
      cfg;
      pool;
      route;
      egresses;
      buffer = Buffer.create ~total:cfg.buffer_bytes ~alpha:cfg.dt_alpha ~n_ingress;
      hk = default_hooks ();
      pfc_sent = Array.make n_ingress false;
      drops = 0;
      data_drops = 0;
      tx_packets = 0;
      rx_packets = 0;
      watchdog_fires = 0;
      reboot_count = 0;
      max_hrtt;
      rng = Bfc_util.Rng.create (0x5EED + node.Node.id);
    }
  in
  if r.sn = Array.length r.sarr then begin
    let ncap = max 16 (2 * r.sn) in
    let ns = Array.make ncap t in
    Array.blit r.sarr 0 ns 0 r.sn;
    r.sarr <- ns
  end;
  r.sarr.(r.sn) <- t;
  r.sn <- r.sn + 1;
  Array.iter (fun e -> Port.set_on_idle e.eport (fun () -> try_send t e)) egresses;
  node.Node.handler <- (fun ~in_port pkt -> receive t ~in_port pkt);
  t
