type policy = Drr | Srf | Prio_strict

type t = {
  policy : policy;
  queues : Fifo.t array;
  classes : int;
  quantum : int;
  rings : Fifo.t Queue.t array; (* one candidate ring per class *)
  mutable nonempty : int;
  mutable nonempty_paused : int;
}

let create policy ~queues ~classes ~quantum =
  if classes <= 0 then invalid_arg "Sched.create: classes";
  {
    policy;
    queues;
    classes;
    quantum;
    rings = Array.init classes (fun _ -> Queue.create ());
    nonempty = 0;
    nonempty_paused = 0;
  }

let policy t = t.policy

let eligible q = (not (Fifo.is_empty q)) && not q.Fifo.paused

let activate t q =
  if (not q.Fifo.in_ring) && eligible q then begin
    q.Fifo.in_ring <- true;
    Queue.add q t.rings.(q.Fifo.cls)
  end

let push t q pkt =
  let was_empty = Fifo.is_empty q in
  Fifo.push q pkt;
  if was_empty then begin
    t.nonempty <- t.nonempty + 1;
    if q.Fifo.paused then t.nonempty_paused <- t.nonempty_paused + 1
  end;
  activate t q

let note_popped t q =
  if Fifo.is_empty q then begin
    t.nonempty <- t.nonempty - 1;
    if q.Fifo.paused then t.nonempty_paused <- t.nonempty_paused - 1;
    q.Fifo.deficit <- 0
  end

let set_paused t q paused =
  if q.Fifo.paused <> paused then begin
    q.Fifo.paused <- paused;
    if not (Fifo.is_empty q) then
      t.nonempty_paused <- (t.nonempty_paused + if paused then 1 else -1);
    if not paused then activate t q
  end

(* Evict the ring front (lazily removing stale candidates). *)
let evict_front ring =
  let q = Queue.pop ring in
  q.Fifo.in_ring <- false;
  q

let next_drr t ring =
  (* Serve the front queue if its deficit covers the head packet, otherwise
     top up its deficit and rotate. Bounded: each queue is visited at most
     twice per call because the quantum covers a full-size packet. *)
  let budget = ref ((2 * Queue.length ring) + 2) in
  let result = ref None in
  let searching = ref true in
  while !searching && (not (Queue.is_empty ring)) && !budget > 0 do
    decr budget;
    let q = Queue.peek ring in
    (* eligible implies non-empty, so the head peek cannot raise *)
    if not (eligible q) then ignore (evict_front ring)
    else begin
      let pkt = Fifo.peek_exn q in
      if q.Fifo.deficit >= pkt.Bfc_net.Packet.size then begin
        ignore (Fifo.pop q);
        q.Fifo.deficit <- q.Fifo.deficit - pkt.Bfc_net.Packet.size;
        note_popped t q;
        if Fifo.is_empty q then ignore (evict_front ring);
        result := Some (q, pkt);
        searching := false
      end
      else begin
        q.Fifo.deficit <- q.Fifo.deficit + t.quantum;
        let q = evict_front ring in
        q.Fifo.in_ring <- true;
        Queue.add q ring
      end
    end
  done;
  !result

let next_scan t ring ~better =
  (* Scan the whole ring, evicting stale entries, keeping the best eligible
     queue per [better]; used for SRF and strict priority. *)
  let n = Queue.length ring in
  let best = ref None in
  for _ = 1 to n do
    let q = Queue.pop ring in
    if eligible q then begin
      Queue.add q ring;
      match !best with
      | None -> best := Some q
      | Some b -> if better q b then best := Some q
    end
    else q.Fifo.in_ring <- false
  done;
  match !best with
  | None -> None
  | Some q ->
    let pkt = Fifo.pop q in
    note_popped t q;
    Some (q, pkt)

let next t =
  let rec by_class c =
    if c >= t.classes then None
    else begin
      let ring = t.rings.(c) in
      let r =
        if Queue.is_empty ring then None
        else begin
          match t.policy with
          | Drr -> next_drr t ring
          | Srf ->
            next_scan t ring ~better:(fun a b -> Fifo.head_remaining a < Fifo.head_remaining b)
          | Prio_strict -> next_scan t ring ~better:(fun a b -> a.Fifo.idx < b.Fifo.idx)
        end
      in
      match r with None -> by_class (c + 1) | Some _ -> r
    end
  in
  by_class 0

let flush t f =
  Array.iter
    (fun q ->
      while not (Fifo.is_empty q) do
        f (Fifo.pop q)
      done;
      q.Fifo.paused <- false;
      q.Fifo.deficit <- 0;
      q.Fifo.in_ring <- false)
    t.queues;
  Array.iter Queue.clear t.rings;
  t.nonempty <- 0;
  t.nonempty_paused <- 0

let n_active t = t.nonempty - t.nonempty_paused

let n_backlogged t = t.nonempty

let iter_backlogged t f =
  Array.iter (fun q -> if not (Fifo.is_empty q) then f q) t.queues
