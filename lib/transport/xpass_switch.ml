module Packet = Bfc_net.Packet
module Switch = Bfc_switch.Switch
module Sim = Bfc_engine.Sim

let credit_cap = 16

(* Typed resume dispatch ([cls_xpass_resume]): each [attach] registers an
   entry in the per-sim registry; [a0] names the attachment, [a1] the
   egress. The executor replays the staleness check — a resume armed
   before a later transmission slot is a no-op. *)

type att = { xsw : Switch.t; xnext_ok : int array; xcredit_q : int }

type reg = { mutable aarr : att array; mutable an : int }

type Bfc_engine.Sim.user += Xpass_reg of reg

let resume_exec st a0 a1 =
  match st with
  | Xpass_reg r ->
    let a = Array.unsafe_get r.aarr a0 in
    if Sim.now (Switch.sim a.xsw) >= a.xnext_ok.(a1) then
      Switch.set_queue_paused a.xsw ~egress:a1 ~queue:a.xcredit_q false
  | _ -> invalid_arg "Xpass_switch.resume_exec: foreign class state"

let registry sim =
  match Sim.class_state sim ~cls:Sim.cls_xpass_resume with
  | Some (Xpass_reg r) -> r
  | _ ->
    let r = { aarr = [||]; an = 0 } in
    Sim.register_class sim ~cls:Sim.cls_xpass_resume ~state:(Xpass_reg r) ~exec:resume_exec;
    r

let attach sw ~mtu_wire =
  let cfg = Switch.config sw in
  let credit_q = cfg.Switch.queues_per_port - 1 in
  let sim = Switch.sim sw in
  let n = Switch.n_ports sw in
  let next_ok = Array.make n 0 in
  let r = registry sim in
  let aidx = r.an in
  let a = { xsw = sw; xnext_ok = next_ok; xcredit_q = credit_q } in
  if r.an = Array.length r.aarr then begin
    let ncap = max 8 (2 * r.an) in
    let na = Array.make ncap a in
    Array.blit r.aarr 0 na 0 r.an;
    r.aarr <- na
  end;
  r.aarr.(r.an) <- a;
  r.an <- r.an + 1;
  let hk = Switch.hooks sw in
  hk.Switch.classify <-
    (fun _ ~in_port:_ ~egress:_ pkt ->
      match pkt.Packet.kind with
      | Packet.Credit -> credit_q
      | _ -> min pkt.Packet.prio (credit_q - 1));
  hk.Switch.admit <-
    (fun sw ~egress ~queue pkt ->
      match pkt.Packet.kind with
      | Packet.Credit ->
        let q = Switch.queue sw ~egress ~queue in
        Bfc_switch.Fifo.length q < credit_cap
      | _ -> true);
  (* A resume is stale if a later transmission slot was armed after it was
     scheduled; only the freshest resume may unpause. *)
  let resume_at _sw egress time = Sim.post sim time ~cls:Sim.cls_xpass_resume ~a0:aidx ~a1:egress in
  hk.Switch.on_enqueue <-
    (fun sw ~in_port:_ ~egress ~queue pkt ->
      (* Enforce the shaping gap: if the credit queue must wait, pause it
         until its next transmission slot. *)
      if pkt.Packet.kind = Packet.Credit && queue = credit_q then begin
        let now = Sim.now sim in
        if now < next_ok.(egress) then begin
          Switch.set_queue_paused sw ~egress ~queue:credit_q true;
          resume_at sw egress next_ok.(egress)
        end
      end);
  hk.Switch.on_dequeue <-
    (fun sw ~egress ~queue pkt ->
      if pkt.Packet.kind = Packet.Credit && queue = credit_q then begin
        let port = Switch.port sw egress in
        let interval =
          Bfc_engine.Time.tx_time ~gbps:(Bfc_net.Port.gbps port) ~bytes:mtu_wire
        in
        next_ok.(egress) <- Sim.now sim + interval;
        Switch.set_queue_paused sw ~egress ~queue:credit_q true;
        resume_at sw egress next_ok.(egress)
      end)
