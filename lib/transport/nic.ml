module Packet = Bfc_net.Packet
module Port = Bfc_net.Port
module Fifo = Bfc_switch.Fifo
module Sched = Bfc_switch.Sched

module Balance = Bfc_core.Credit_dataplane.Balance

type t = {
  sim : Bfc_engine.Sim.t;
  idx : int; (* index into the per-sim NIC registry, the [a0] of events *)
  port : Port.t;
  queues : Fifo.t array;
  sched : Sched.t;
  respect_pause : bool;
  mutable pfc_paused : bool;
  occupants : int array;
  mutable rr : int;
  mutable on_dequeue : int -> unit;
  mutable backlog : int;
  credit : Balance.b option; (* lossless-BFC variant: gate data queues *)
  pause_watchdog : Bfc_engine.Time.t option;
  ctrl_paused : bool array; (* queue paused by a ctrl frame (vs credit gating) *)
  wd_epoch : int array; (* invalidates scheduled per-queue watchdog checks *)
  mutable pfc_epoch : int;
  mutable watchdog_fires : int;
  mutable on_pause : queue:int -> paused:bool -> unit; (* telemetry tap *)
}

let try_send t =
  if not t.pfc_paused then begin
    if Port.busy t.port then Port.ensure_wakeup t.port
    else begin
      match Sched.next t.sched with
      | None -> ()
      | Some (q, pkt) ->
        t.backlog <- t.backlog - pkt.Packet.size;
        if pkt.Packet.kind = Packet.Data then begin
          pkt.Packet.upstream_q <- q.Fifo.idx;
          match t.credit with
          | Some b when q.Fifo.idx > 0 ->
            let next = Fifo.head_size q in
            if Balance.consume b ~queue:q.Fifo.idx ~bytes:pkt.Packet.size ~next then
              Sched.set_paused t.sched q true
          | _ -> ()
        end;
        pkt.Packet.sent_at <- Bfc_engine.Sim.now t.sim;
        Port.send t.port pkt;
        if Sched.n_active t.sched > 0 then Port.ensure_wakeup t.port;
        t.on_dequeue q.Fifo.idx
    end
  end

(* ------------------------------------------------------------------ *)
(* Pause watchdog: like the switch's, a queue paused by a ctrl frame for
   longer than the timeout is force-resumed (the Resume was presumably
   lost). Credit-gated pauses (lossless-BFC) are excluded: there is no
   Resume to lose, the gate opens on Hop_credit arrival. *)

let credit_starved t queue =
  match t.credit with
  | Some b when queue > 0 -> (
    match Fifo.peek t.queues.(queue) with
    | Some p -> Balance.get b ~queue < p.Packet.size
    | None -> false)
  | _ -> false

let wd_fallback t queue epoch () =
  if t.wd_epoch.(queue) = epoch && t.ctrl_paused.(queue) then begin
    t.watchdog_fires <- t.watchdog_fires + 1;
    t.wd_epoch.(queue) <- t.wd_epoch.(queue) + 1;
    t.ctrl_paused.(queue) <- false;
    t.on_pause ~queue ~paused:false;
    if not (credit_starved t queue) then begin
      Sched.set_paused t.sched t.queues.(queue) false;
      try_send t
    end
  end

let pfc_wd_fallback t epoch () =
  if t.pfc_epoch = epoch && t.pfc_paused then begin
    t.watchdog_fires <- t.watchdog_fires + 1;
    t.pfc_epoch <- t.pfc_epoch + 1;
    t.pfc_paused <- false;
    t.on_pause ~queue:(-1) ~paused:false;
    try_send t
  end

(* Typed watchdog dispatch ([cls_nic_ctrl]): [a1] packs
   (epoch << 12) | (queue + 1), queue slot 0 = the uplink PFC watchdog.
   One per-sim registry of NICs, one shared executor; a NIC with >= 4095
   queues falls back to the closure path (schedule-identical). *)

type reg = { mutable narr : t array; mutable nn : int }

type Bfc_engine.Sim.user += Nic_reg of reg

let watchdog_exec st a0 a1 =
  match st with
  | Nic_reg r ->
    let t = Array.unsafe_get r.narr a0 in
    let epoch = a1 lsr 12 in
    let q1 = a1 land 0xfff in
    if q1 = 0 then pfc_wd_fallback t epoch () else wd_fallback t (q1 - 1) epoch ()
  | _ -> invalid_arg "Nic.watchdog_exec: foreign class state"

let registry sim =
  match Bfc_engine.Sim.class_state sim ~cls:Bfc_engine.Sim.cls_nic_ctrl with
  | Some (Nic_reg r) -> r
  | _ ->
    let r = { narr = [||]; nn = 0 } in
    Bfc_engine.Sim.register_class sim ~cls:Bfc_engine.Sim.cls_nic_ctrl ~state:(Nic_reg r)
      ~exec:watchdog_exec;
    r

let create ~sim ~port ~n_queues ~policy ~respect_pause ?pause_watchdog ?credit () =
  if n_queues < 2 then invalid_arg "Nic.create: need >= 2 queues";
  let r = registry sim in
  let queues = Array.init n_queues (fun idx -> Fifo.create ~idx ~cls:0) in
  let quantum = 1100 + Packet.header_bytes in
  let t =
    {
      sim;
      idx = r.nn;
      port;
      queues;
      sched = Sched.create policy ~queues ~classes:1 ~quantum;
      respect_pause;
      pfc_paused = false;
      occupants = Array.make n_queues 0;
      rr = 1;
      on_dequeue = ignore;
      backlog = 0;
      credit = Option.map (fun initial -> Balance.create ~queues:n_queues ~initial) credit;
      pause_watchdog;
      ctrl_paused = Array.make n_queues false;
      wd_epoch = Array.make n_queues 0;
      pfc_epoch = 0;
      watchdog_fires = 0;
      on_pause = (fun ~queue:_ ~paused:_ -> ());
    }
  in
  if r.nn = Array.length r.narr then begin
    let ncap = max 16 (2 * r.nn) in
    let na = Array.make ncap t in
    Array.blit r.narr 0 na 0 r.nn;
    r.narr <- na
  end;
  r.narr.(r.nn) <- t;
  r.nn <- r.nn + 1;
  Port.set_on_idle port (fun () -> try_send t);
  t

let arm_queue_watchdog t queue =
  match t.pause_watchdog with
  | None -> ()
  | Some timeout ->
    let epoch = t.wd_epoch.(queue) in
    if queue < 4095 then
      Bfc_engine.Sim.post t.sim
        (Bfc_engine.Sim.now t.sim + timeout)
        ~cls:Bfc_engine.Sim.cls_nic_ctrl ~a0:t.idx
        ~a1:((epoch lsl 12) lor (queue + 1))
    else ignore (Bfc_engine.Sim.after t.sim timeout (wd_fallback t queue epoch))

(* Apply a ctrl-frame pause/resume; every pause assertion (including bitmap
   refreshes) re-arms the watchdog deadline. *)
let set_ctrl_paused t ~queue paused =
  t.wd_epoch.(queue) <- t.wd_epoch.(queue) + 1;
  if t.ctrl_paused.(queue) <> paused then t.on_pause ~queue ~paused;
  t.ctrl_paused.(queue) <- paused;
  Sched.set_paused t.sched t.queues.(queue) paused;
  if paused then arm_queue_watchdog t queue else try_send t

let arm_pfc_watchdog t =
  match t.pause_watchdog with
  | None -> ()
  | Some timeout ->
    Bfc_engine.Sim.post t.sim
      (Bfc_engine.Sim.now t.sim + timeout)
      ~cls:Bfc_engine.Sim.cls_nic_ctrl ~a0:t.idx ~a1:(t.pfc_epoch lsl 12)

let watchdog_fires t = t.watchdog_fires

let n_queues t = Array.length t.queues

let alloc_queue t =
  let n = Array.length t.queues in
  (* first unoccupied data queue starting from the rotation point *)
  let rec scan i remaining =
    if remaining = 0 then None
    else begin
      let i = if i >= n then 1 else i in
      if t.occupants.(i) = 0 then Some i else scan (i + 1) (remaining - 1)
    end
  in
  let q =
    match scan t.rr (n - 1) with
    | Some q -> q
    | None ->
      (* all occupied: share round-robin *)
      let q = 1 + ((t.rr - 1) mod (n - 1)) in
      q
  in
  t.rr <- (if q + 1 >= n then 1 else q + 1);
  t.occupants.(q) <- t.occupants.(q) + 1;
  q

let release_queue t q = if q >= 1 && q < Array.length t.queues then t.occupants.(q) <- max 0 (t.occupants.(q) - 1)

let submit t ~queue pkt =
  let q = t.queues.(queue) in
  Sched.push t.sched q pkt;
  t.backlog <- t.backlog + pkt.Packet.size;
  (* credit gating: a starved queue stays paused until replenished *)
  (match t.credit with
  | Some b when queue > 0 && pkt.Packet.kind = Packet.Data ->
    let next = Fifo.head_size q in
    if next > 0 && Balance.get b ~queue < next then Sched.set_paused t.sched q true
  | _ -> ());
  try_send t

let submit_ctrl t pkt = submit t ~queue:0 pkt

let queue_bytes t ~queue = t.queues.(queue).Fifo.bytes

let queue_paused t ~queue = t.queues.(queue).Fifo.paused

(* Telemetry gauge: currently paused queues (including credit-gated ones;
   the PFC-paused uplink counts as one more). Sample-tick cost only. *)
let paused_queues t =
  let n = ref (if t.pfc_paused then 1 else 0) in
  Array.iter (fun q -> if q.Fifo.paused then incr n) t.queues;
  !n

let backlog t = t.backlog

let set_on_dequeue t f = t.on_dequeue <- f

let set_on_pause t f = t.on_pause <- f

let on_pause t = t.on_pause

let on_ctrl t pkt =
  match pkt.Packet.kind with
  | Packet.Pfc ->
    let pause = pkt.Packet.ctrl_b = 1 in
    if t.pfc_paused && not pause then begin
      t.pfc_epoch <- t.pfc_epoch + 1;
      t.pfc_paused <- false;
      t.on_pause ~queue:(-1) ~paused:false;
      try_send t
    end
    else if pause then begin
      t.pfc_epoch <- t.pfc_epoch + 1;
      if not t.pfc_paused then t.on_pause ~queue:(-1) ~paused:true;
      t.pfc_paused <- true;
      arm_pfc_watchdog t
    end
  | Packet.Pause | Packet.Resume | Packet.Pause_bitmap ->
    if t.respect_pause then
      Bfc_core.Dataplane.apply_ctrl
        ~set_paused:(fun ~queue paused -> set_ctrl_paused t ~queue paused)
        ~n_queues:(Array.length t.queues) pkt
  | Packet.Hop_credit -> (
    match t.credit with
    | Some b ->
      let queue = pkt.Packet.ctrl_a in
      if queue > 0 && queue < Array.length t.queues then begin
        let q = t.queues.(queue) in
        let next = Fifo.head_size q in
        if Balance.replenish b ~queue ~bytes:pkt.Packet.ctrl_b ~next then begin
          Sched.set_paused t.sched q false;
          try_send t
        end
      end
    | None -> ())
  | _ -> ()
