(** HPCC sender state (Li et al., SIGCOMM 2019).

    Window-based control driven by per-hop INT telemetry echoed in ACKs:
    the sender estimates the most-utilized link's inflight ratio U and sets
    W = W_c / (U / eta) + W_AI multiplicatively (at most once per RTT via
    the reference window W_c), with up to [max_stage] additive steps in
    between. *)

type t

val create :
  eta:float ->
  max_stage:int ->
  w_ai:float ->
  bdp:int ->
  base_rtt:Bfc_engine.Time.t ->
  t

(** [on_ack t ~hops ~nhops ~ack_seq ~snd_nxt] — [hops] is the INT stack
    echoed in the ACK; only the first [nhops] records are valid (the
    packet's cursor, see {!Bfc_net.Packet.int_cnt}). *)
val on_ack :
  t -> hops:Bfc_net.Packet.int_hop array -> nhops:int -> ack_seq:int -> snd_nxt:int -> unit

val window : t -> int

(** Most recent utilization estimate (diagnostics). *)
val last_u : t -> float
