(** End hosts: transmit state machines for every scheme, the Go-Back-N /
    reassembly receive path, ACK/NACK/CNP/grant/credit generation, and the
    NIC glue.

    One [Host.t] is attached per host node; the experiment runner starts
    flows with {!start_flow} and is notified of completions (measured at the
    receiver when the last byte arrives, per §6.2.1). *)

type scheme =
  | Bfc of { window_cap : int option; delay_cc : bool }
      (** pure BFC sends at line rate gated only by NIC-queue pauses;
          [window_cap] = Some bdp is the incremental-deployment cap
          (App. A.8); [delay_cc] enables App. A.1's Algorithm 1 *)
  | Dctcp of { slow_start : bool }
  | Dcqcn of Dcqcn.params
  | Hpcc of { eta : float; max_stage : int; perfect_rtx : bool }
  | Swift of { target_mult : float; beta : float }
      (** delay-target window control (Kumar et al., SIGCOMM 2020) *)
  | Timely  (** RTT-gradient rate control (Mittal et al., SIGCOMM 2015) *)
  | Xpass of { target_loss : float; w_init : float; w_max : float }
  | Homa of Homa.params

type config = {
  scheme : scheme;
  mtu : int; (** payload bytes per packet *)
  extra_header : int; (** per-data-packet overhead (HPCC INT: 80 B) *)
  nic_queues : int;
  nic_policy : Bfc_switch.Sched.policy;
  respect_pause : bool; (** false = the BFC−NIC variant of App. A.8 *)
  srf : bool; (** stamp remaining size into packets (BFC-SRF) *)
  rto : Bfc_engine.Time.t;
  base_rtt : Bfc_engine.Time.t;
  bdp : int; (** bytes; the network-wide default *)
  line_gbps : float;
  flow_bdp : (Bfc_net.Flow.t -> int) option;
      (** per-flow BDP for window initialisation (cross-DC paths have a much
          larger BDP than intra-DC ones, App. A.9) *)
  nic_credit : int option; (** lossless-BFC: initial per-queue credit *)
  pause_watchdog : Bfc_engine.Time.t option;
      (** force-resume a ctrl-paused NIC queue after this long (see
          {!Nic.create}) *)
  seed : int;
}

val default_config : config

type t

(** [create ~sim ~node ~port ~config] attaches a host device to [node]
    ([port] is its uplink). With [?pool], data/ack/ctrl packets are drawn
    from (and consumed packets returned to) the environment's packet
    pool. *)
val create :
  sim:Bfc_engine.Sim.t ->
  node:Bfc_net.Node.t ->
  port:Bfc_net.Port.t ->
  config:config ->
  ?pool:Bfc_net.Packet.Pool.t ->
  unit ->
  t

val node_id : t -> int

val nic : t -> Nic.t

val config : t -> config

(** Register the completion callback (fires at the receiving host when the
    flow's last byte arrives). Replaces any previous callback. *)
val on_complete : t -> (Bfc_net.Flow.t -> unit) -> unit

(** Add a completion observer without displacing the existing one (the new
    observer runs after it). Streaming runs chain sketch updates and
    flow-trace writes onto the driver's completion counter this way. *)
val add_on_complete : t -> (Bfc_net.Flow.t -> unit) -> unit

(** Forget all per-flow sender/receiver state for [flow_id] on this host.
    Safe once the flow is complete and its last control packets have
    drained (packets for unknown flow ids are ignored); lets long streaming
    runs keep per-flow memory proportional to in-flight flows only. *)
val reclaim_flow_state : t -> flow_id:int -> unit

(** Begin transmitting a flow whose [src] is this host. *)
val start_flow : t -> Bfc_net.Flow.t -> unit

(** Perfect-retransmission notice (HPCC-PFC, §6.2.1): the switch tells the
    sender exactly which bytes were dropped. *)
val on_drop_notice : t -> flow_id:int -> seq:int -> len:int -> unit

(** Bytes of payload this host has injected (diagnostics). *)
val bytes_sent : t -> int

(** Retransmitted payload bytes (diagnostics; reordering/drops). *)
val bytes_retransmitted : t -> int

(** Times this host's NIC pause watchdog fired (see {!Nic.watchdog_fires}). *)
val watchdog_fires : t -> int
