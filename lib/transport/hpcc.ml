type link_view = {
  mutable ts : Bfc_engine.Time.t;
  mutable tx_bytes : int;
  mutable qlen : int;
  mutable gbps : float;
}

type t = {
  eta : float;
  max_stage : int;
  w_ai : float;
  bdp : int;
  base_rtt : Bfc_engine.Time.t;
  mutable w : float;
  mutable w_c : float;
  mutable inc_stage : int;
  mutable last_update_seq : int;
  links : (int, link_view) Hashtbl.t; (* by global link id *)
  mutable have_baseline : bool;
  mutable u : float;
}

let create ~eta ~max_stage ~w_ai ~bdp ~base_rtt =
  {
    eta;
    max_stage;
    w_ai;
    bdp;
    base_rtt;
    w = float_of_int bdp;
    w_c = float_of_int bdp;
    inc_stage = 0;
    last_update_seq = 0;
    links = Hashtbl.create 8;
    have_baseline = false;
    u = 0.0;
  }

let remember t hops nhops =
  for i = 0 to nhops - 1 do
    let h = hops.(i) in
    let open Bfc_net.Packet in
    match Hashtbl.find_opt t.links h.h_link with
    | Some v ->
      v.ts <- h.h_ts;
      v.tx_bytes <- h.h_tx_bytes;
      v.qlen <- h.h_qlen;
      v.gbps <- h.h_gbps
    | None ->
      Hashtbl.add t.links h.h_link
        { ts = h.h_ts; tx_bytes = h.h_tx_bytes; qlen = h.h_qlen; gbps = h.h_gbps }
  done

(* MeasureInflight from the HPCC paper: per link,
   u_j = qlen / (B.T) + txRate / B, take the max. *)
let measure t hops nhops =
  let u = ref 0.0 in
  for i = 0 to nhops - 1 do
    let h = hops.(i) in
    let open Bfc_net.Packet in
    match Hashtbl.find_opt t.links h.h_link with
    | None -> ()
    | Some prev ->
      if h.h_ts > prev.ts then begin
        let dt = float_of_int (h.h_ts - prev.ts) in
        let tx_rate = float_of_int (h.h_tx_bytes - prev.tx_bytes) /. dt in
        let b = h.h_gbps /. 8.0 (* bytes per ns *) in
        let bdp_link = b *. float_of_int t.base_rtt in
        let qlen = float_of_int (min h.h_qlen prev.qlen) in
        let u_j = (qlen /. bdp_link) +. (tx_rate /. b) in
        if u_j > !u then u := u_j
      end
  done;
  !u

let compute_wind t ~u ~update_wc =
  if u >= t.eta || t.inc_stage >= t.max_stage then begin
    let w = (t.w_c /. (u /. t.eta)) +. t.w_ai in
    if update_wc then begin
      t.inc_stage <- 0;
      t.w_c <- w
    end;
    t.w <- w
  end
  else begin
    let w = t.w_c +. t.w_ai in
    if update_wc then begin
      t.inc_stage <- t.inc_stage + 1;
      t.w_c <- w
    end;
    t.w <- w
  end;
  if t.w < 64.0 then t.w <- 64.0;
  (* HPCC bounds the window to the BDP plus queue allowance; keep a sane cap
     of 4 BDP so a wild U estimate cannot explode the window. *)
  let cap = 4.0 *. float_of_int t.bdp in
  if t.w > cap then t.w <- cap

let on_ack t ~hops ~nhops ~ack_seq ~snd_nxt =
  if not t.have_baseline then begin
    remember t hops nhops;
    t.have_baseline <- true
  end
  else begin
    let u = measure t hops nhops in
    t.u <- u;
    if u > 0.0 then begin
      let update_wc = ack_seq > t.last_update_seq in
      compute_wind t ~u ~update_wc;
      if update_wc then t.last_update_seq <- snd_nxt
    end;
    remember t hops nhops
  end

let window t = int_of_float t.w

let last_u t = t.u
