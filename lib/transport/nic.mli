(** The host NIC: the first "upstream device" of the network.

    Mirrors a switch egress: an array of FIFO queues, a scheduler
    (DRR / SRF / strict priority), per-queue pause (BFC's backpressure
    reaches down to the NIC), and PFC pause of the whole uplink. On the
    wire, data packets carry the NIC queue index in [upstreamQ] so the ToR
    can pause precisely (§3.3.2).

    Queue 0 is reserved for end-to-end control (ACKs, NACKs, grants,
    credits) — highest priority under strict-priority scheduling; data
    queues are [1, n). *)

type t

(** [credit] enables the lossless-BFC variant: data queues are gated by
    hop credits returned by the ToR ([Hop_credit] packets), starting from
    the given per-queue byte balance.

    [pause_watchdog] force-resumes a queue (or the PFC-paused uplink)
    paused by a ctrl frame for longer than the timeout, on the assumption
    that the Resume was lost; every pause assertion re-arms the deadline.
    Credit-gated pauses are exempt (they open on [Hop_credit] arrival, no
    Resume is expected). *)
val create :
  sim:Bfc_engine.Sim.t ->
  port:Bfc_net.Port.t ->
  n_queues:int ->
  policy:Bfc_switch.Sched.policy ->
  respect_pause:bool ->
  ?pause_watchdog:Bfc_engine.Time.t ->
  ?credit:int ->
  unit ->
  t

val n_queues : t -> int

(** Allocate a data queue for a flow: an unoccupied queue if one exists
    (dynamic assignment, like the switch), else round-robin sharing. *)
val alloc_queue : t -> int

val release_queue : t -> int -> unit

(** Enqueue a packet on a specific queue and kick the transmitter. *)
val submit : t -> queue:int -> Bfc_net.Packet.t -> unit

(** Enqueue on the reserved control queue. *)
val submit_ctrl : t -> Bfc_net.Packet.t -> unit

val queue_bytes : t -> queue:int -> int

val queue_paused : t -> queue:int -> bool

(** Total bytes queued in the NIC. *)
val backlog : t -> int

(** Handle Pause / Resume / Pause-bitmap / PFC addressed to this NIC. *)
val on_ctrl : t -> Bfc_net.Packet.t -> unit

(** [set_on_dequeue t f] — [f queue] runs after each packet leaves the NIC
    (drives window/line-rate refill). *)
val set_on_dequeue : t -> (int -> unit) -> unit

(** Telemetry tap: fires on every {e ctrl-frame} pause-state transition of
    a data queue ([queue = -1] for PFC pause of the whole uplink),
    including watchdog force-resumes. Credit-gate openings/closings (the
    lossless variant) are not reported — no Pause/Resume is exchanged for
    them. *)
val set_on_pause : t -> (queue:int -> paused:bool -> unit) -> unit

(** The currently installed pause tap (a no-op if none was set). Monitors
    that want to observe pauses without stealing them from the telemetry
    layer read the old tap, then install a closure that calls it first. *)
val on_pause : t -> (queue:int -> paused:bool -> unit)

(** Currently paused queues (credit-gated included; a PFC-paused uplink
    adds one). Walks the queue array — a sample-tick gauge, not a
    per-packet probe. *)
val paused_queues : t -> int

(** Times the pause watchdog force-resumed a queue or the uplink. *)
val watchdog_fires : t -> int
