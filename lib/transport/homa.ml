module Dist = Bfc_workload.Dist
module Flow = Bfc_net.Flow

type params = {
  total_prios : int;
  unsched_prios : int;
  overcommit : int;
  rtt_bytes : int;
  spray : bool;
  cutoffs : int array;
}

let params_for ~dist ~total_prios ~rtt_bytes ~spray =
  (* Deterministic sampling of the workload to estimate the unscheduled
     byte fraction and the equal-mass cutoffs. *)
  let rng = Bfc_util.Rng.create 0x40A1 in
  let n = 100_000 in
  let sizes = Array.init n (fun _ -> Dist.sample dist rng) in
  Array.sort compare sizes;
  let unsched_of s = min s rtt_bytes in
  let total_bytes = Array.fold_left (fun a s -> a +. float_of_int s) 0.0 sizes in
  let unsched_bytes = Array.fold_left (fun a s -> a +. float_of_int (unsched_of s)) 0.0 sizes in
  let frac = unsched_bytes /. total_bytes in
  let unsched_prios =
    max 1 (min (total_prios - 1) (int_of_float (Float.round (frac *. float_of_int total_prios))))
  in
  (* Cutoffs: ascending size boundaries splitting unscheduled bytes evenly;
     priority 0 (highest) goes to the smallest messages. *)
  let cutoffs = Array.make (max 0 (unsched_prios - 1)) 0 in
  if unsched_prios > 1 then begin
    let per_level = unsched_bytes /. float_of_int unsched_prios in
    let acc = ref 0.0 in
    let level = ref 0 in
    Array.iter
      (fun s ->
        acc := !acc +. float_of_int (unsched_of s);
        if !level < unsched_prios - 1 && !acc >= per_level *. float_of_int (!level + 1) then begin
          cutoffs.(!level) <- s;
          incr level
        end)
      sizes
  end;
  { total_prios; unsched_prios; overcommit = total_prios - unsched_prios; rtt_bytes; spray; cutoffs }

let unsched_prio p ~size =
  let rec go i = if i >= Array.length p.cutoffs then Array.length p.cutoffs else if size <= p.cutoffs.(i) then i else go (i + 1) in
  go 0

type grant = { g_flow : Flow.t; g_offset : int; g_prio : int }

module Receiver = struct
  type msg = { m_flow : Flow.t; mutable covered : int; mutable granted : int }

  type t = { p : params; msgs : (int, msg) Hashtbl.t }

  let create p = { p; msgs = Hashtbl.create 32 }

  let active t = Hashtbl.length t.msgs

  (* Re-evaluate the SRPT grant schedule; return new grants. The live
     message list comes out of a Hashtbl fold, so pipe it straight into a
     total-order sort (ties broken by flow id) to keep grant order
     reproducible across OCaml hash seeds. *)
  let reschedule t =
    let by_remaining =
      Hashtbl.fold (fun _ m acc -> m :: acc) t.msgs []
      |> List.sort (fun a b ->
             compare
               (a.m_flow.Flow.size - a.covered, a.m_flow.Flow.id)
               (b.m_flow.Flow.size - b.covered, b.m_flow.Flow.id))
    in
    let grants = ref [] in
    List.iteri
      (fun rank m ->
        if rank < t.p.overcommit then begin
          let desired = min m.m_flow.Flow.size (m.covered + t.p.rtt_bytes) in
          if desired > m.granted then begin
            m.granted <- desired;
            let prio = min (t.p.total_prios - 1) (t.p.unsched_prios + rank) in
            grants := { g_flow = m.m_flow; g_offset = desired; g_prio = prio } :: !grants
          end
        end)
      by_remaining;
    !grants

  let on_data t ~flow ~covered =
    let id = flow.Flow.id in
    let m =
      match Hashtbl.find_opt t.msgs id with
      | Some m -> m
      | None ->
        let m = { m_flow = flow; covered = 0; granted = min flow.Flow.size t.p.rtt_bytes } in
        Hashtbl.add t.msgs id m;
        m
    in
    m.covered <- max m.covered covered;
    if m.covered >= flow.Flow.size then Hashtbl.remove t.msgs id;
    reschedule t
end
