module Packet = Bfc_net.Packet
module Flow = Bfc_net.Flow
module Node = Bfc_net.Node
module Sim = Bfc_engine.Sim
module Rng = Bfc_util.Rng

type scheme =
  | Bfc of { window_cap : int option; delay_cc : bool }
  | Dctcp of { slow_start : bool }
  | Dcqcn of Dcqcn.params
  | Hpcc of { eta : float; max_stage : int; perfect_rtx : bool }
  | Swift of { target_mult : float; beta : float }
  | Timely
  | Xpass of { target_loss : float; w_init : float; w_max : float }
  | Homa of Homa.params

type config = {
  scheme : scheme;
  mtu : int;
  extra_header : int;
  nic_queues : int;
  nic_policy : Bfc_switch.Sched.policy;
  respect_pause : bool;
  srf : bool;
  rto : Bfc_engine.Time.t;
  base_rtt : Bfc_engine.Time.t;
  bdp : int;
  line_gbps : float;
  flow_bdp : (Bfc_net.Flow.t -> int) option;
  nic_credit : int option;
  pause_watchdog : Bfc_engine.Time.t option;
  seed : int;
}

let default_config =
  {
    scheme = Bfc { window_cap = None; delay_cc = false };
    mtu = 1000;
    extra_header = 0;
    nic_queues = 129;
    nic_policy = Bfc_switch.Sched.Drr;
    respect_pause = true;
    srf = false;
    rto = Bfc_engine.Time.us 1000.0;
    base_rtt = Bfc_engine.Time.us 8.0;
    bdp = 100_000;
    line_gbps = 100.0;
    flow_bdp = None;
    nic_credit = None;
    pause_watchdog = None;
    seed = 7;
  }

type cc =
  | Cap of int (* window cap in bytes; max_int = unlimited *)
  | Cc_delay of Delay_cc.t
  | Cc_dctcp of Dctcp.t
  | Cc_hpcc of Hpcc.t
  | Cc_dcqcn of Dcqcn.t
  | Cc_swift of Swift.t
  | Cc_timely of Timely.t
  | Cc_xpass
  | Cc_homa

type tx = {
  flow : Flow.t;
  mutable snd_nxt : int;
  mutable snd_una : int;
  mutable cc : cc;
  mutable nic_q : int; (* -1 for priority-mapped (Homa) *)
  mutable rtx : (int * int) list; (* pending retransmit ranges *)
  mutable rto_t : Sim.token; (* pending RTO event, 0 = none *)
  mutable finished : bool;
  mutable granted : int; (* homa grant offset *)
  mutable grant_prio : int;
  mutable unsched : int; (* homa unscheduled limit *)
  mutable fin_sent : bool;
  mutable retransmitted : int;
}

(* Receiver-side reassembly: sorted disjoint [start, stop) ranges. *)
type rx = {
  rflow : Flow.t;
  mutable expected : int; (* contiguous prefix received *)
  mutable ranges : (int * int) list; (* beyond the prefix *)
  mutable last_nack : Bfc_engine.Time.t;
  mutable last_cnp : Bfc_engine.Time.t;
  mutable complete : bool;
  (* ExpressPass credit source state (receiver paces credits): *)
  mutable cr_rate : float; (* data bytes per ns the credits ask for *)
  mutable cr_w : float;
  mutable cr_sent : int;
  mutable cr_used : int;
  mutable cr_pacer : Sim.token; (* pending credit-pacer event, 0 = none *)
  mutable cr_feedback : Sim.ticker option;
  mutable cr_stop : bool;
}

type t = {
  sim : Sim.t;
  node : Node.t;
  idx : int; (* index into the per-sim host registry, the [a0] of events *)
  cfg : config;
  pool : Packet.Pool.t option;
  nic : Nic.t;
  txs : tx Bfc_util.Int_table.t; (* flow id -> sender state, flat probe per packet *)
  rxs : rx Bfc_util.Int_table.t;
  homa_recv : Homa.Receiver.t option;
  mutable complete_cb : Flow.t -> unit;
  owners : tx list ref array; (* per NIC queue: window-based flows to pump *)
  rng : Rng.t;
  mutable bytes_sent : int;
  mutable bytes_retransmitted : int;
}

let node_id t = t.node.Node.id

let nic t = t.nic

let config t = t.cfg

let on_complete t f = t.complete_cb <- f

(* Chain instead of replace, so several observers (run driver, sketches,
   flowlog writer) can all see completions. bfc-lint: control-plane *)
let add_on_complete t f =
  let prev = t.complete_cb in
  t.complete_cb <-
    (fun flow ->
      prev flow;
      f flow)

(* Drop per-flow sender/receiver state once a flow is fully done with it
   (streaming runs reclaim after a grace period, so per-flow memory stays
   bounded by the number of in-flight flows instead of growing with every
   flow ever started). Packets for an unknown flow id are already ignored
   on every lookup path, so late stragglers are harmless. *)
let reclaim_flow_state t ~flow_id =
  Bfc_util.Int_table.remove t.txs flow_id;
  Bfc_util.Int_table.remove t.rxs flow_id

let bytes_sent t = t.bytes_sent

let bytes_retransmitted t = t.bytes_retransmitted

let watchdog_fires t = Nic.watchdog_fires t.nic

let mtu_wire cfg = cfg.mtu + Packet.header_bytes + cfg.extra_header

(* Return a fully-consumed packet to the environment's pool (no-op for
   pool-less hosts, e.g. unit tests). *)
let recycle t pkt = match t.pool with Some p -> Packet.Pool.release p pkt | None -> ()

(* NIC queue depth kept per window-based flow; the refill pump tops it up on
   every dequeue, so the flow still sends at line rate when permitted. *)
let depth_cap cfg = 4 * mtu_wire cfg

let window tx =
  match tx.cc with
  | Cap w -> w
  | Cc_delay d -> Delay_cc.window d
  | Cc_dctcp d -> Dctcp.window d
  | Cc_hpcc h -> Hpcc.window h
  | Cc_swift s -> Swift.window s
  | Cc_dcqcn _ | Cc_timely _ -> max_int (* rate-paced, not window-gated *)
  | Cc_xpass -> 0 (* credit-clocked *)
  | Cc_homa -> 0 (* grant-clocked *)

let is_window_based tx =
  match tx.cc with
  | Cap _ | Cc_delay _ | Cc_dctcp _ | Cc_hpcc _ | Cc_swift _ -> true
  | Cc_dcqcn _ | Cc_timely _ | Cc_xpass | Cc_homa -> false

let is_rate_based tx =
  match tx.cc with
  | Cc_dcqcn _ | Cc_timely _ -> true
  | Cap _ | Cc_delay _ | Cc_dctcp _ | Cc_hpcc _ | Cc_swift _ | Cc_xpass | Cc_homa -> false

let rate_of tx =
  match tx.cc with
  | Cc_dcqcn d -> Dcqcn.rate d
  | Cc_timely tm -> Timely.rate tm
  | Cap _ | Cc_delay _ | Cc_dctcp _ | Cc_hpcc _ | Cc_swift _ | Cc_xpass | Cc_homa -> 0.0

(* ------------------------------------------------------------------ *)
(* Transmit path                                                        *)

let make_data t tx ~seq ~len =
  let pkt =
    match t.pool with
    | Some p -> Packet.Pool.data p ~flow:tx.flow ~seq ~payload:len ~extra_header:t.cfg.extra_header ()
    | None ->
      Packet.data ~sim:t.sim ~flow:tx.flow ~seq ~payload:len ~extra_header:t.cfg.extra_header ()
  in
  if t.cfg.srf then pkt.Packet.remaining <- max 0 (tx.flow.Flow.size - tx.snd_una);
  t.bytes_sent <- t.bytes_sent + len;
  pkt

let homa_data_prio t tx ~seq =
  match t.cfg.scheme with
  | Homa p -> if seq < tx.unsched then Homa.unsched_prio p ~size:tx.flow.Flow.size else tx.grant_prio
  | _ -> tx.flow.Flow.prio_class

let submit_data t tx pkt =
  (match t.cfg.scheme with
  | Homa _ ->
    (* priority-mapped NIC queue: ctrl is queue 0, data prio p -> queue p+1 *)
    let q = min (t.cfg.nic_queues - 1) (pkt.Packet.prio + 1) in
    Nic.submit t.nic ~queue:q pkt
  | _ -> Nic.submit t.nic ~queue:tx.nic_q pkt);
  if tx.flow.Flow.size - pkt.Packet.seq <= pkt.Packet.payload && not tx.fin_sent then begin
    pkt.Packet.ctrl_b <- 1;
    (* FIN flag *)
    tx.fin_sent <- true
  end

(* Send limit as an absolute byte offset. *)
let send_limit tx =
  match tx.cc with
  | Cc_homa -> min tx.flow.Flow.size (max tx.unsched tx.granted)
  | Cc_xpass -> tx.snd_nxt (* xpass sends only on credit arrival *)
  | Cc_dcqcn _ | Cc_timely _ -> tx.snd_nxt (* paced separately *)
  | _ ->
    let w = window tx in
    if w = max_int then tx.flow.Flow.size else min tx.flow.Flow.size (tx.snd_una + w)

let next_chunk t tx =
  (* retransmissions take precedence *)
  match tx.rtx with
  | (s, e) :: rest ->
    let len = min t.cfg.mtu (e - s) in
    let rest = if s + len >= e then rest else (s + len, e) :: rest in
    tx.rtx <- rest;
    tx.retransmitted <- tx.retransmitted + len;
    Some (s, len)
  | [] ->
    let limit = send_limit tx in
    if tx.snd_nxt < limit then begin
      let len = min t.cfg.mtu (limit - tx.snd_nxt) in
      let s = tx.snd_nxt in
      tx.snd_nxt <- tx.snd_nxt + len;
      Some (s, len)
    end
    else None

let rec pump t tx =
  if not tx.finished then begin
    let gated_by_depth =
      is_window_based tx && Nic.queue_bytes t.nic ~queue:tx.nic_q >= depth_cap t.cfg
    in
    if not gated_by_depth then begin
      match next_chunk t tx with
      | None -> ()
      | Some (seq, len) ->
        let pkt = make_data t tx ~seq ~len in
        pkt.Packet.prio <- homa_data_prio t tx ~seq;
        submit_data t tx pkt;
        pump t tx
    end
  end

(* Homa: unscheduled bytes go out at line rate immediately; the NIC queue
   absorbs them (that's Homa's behaviour: first RTT is blind). *)
let homa_start t tx =
  let rec blast () =
    match next_chunk t tx with
    | None -> ()
    | Some (seq, len) ->
      let pkt = make_data t tx ~seq ~len in
      pkt.Packet.prio <- homa_data_prio t tx ~seq;
      submit_data t tx pkt;
      blast ()
  in
  blast ()

(* Flow timers are typed [cls_flow_timeout] events: [a1] packs
   (flow_id << 2) | kind, kind 0 = RTO, 1 = xpass credit pacer,
   2 = delayed xpass credit stop, 3 = rate-pacer tick. The executor
   re-finds the flow's tx/rx state by id — a reclaimed flow makes the
   event a benign no-op, exactly like the old closures' [finished]
   check. *)
let rto_kind = 0

let xpass_pace_kind = 1

let xpass_stop_kind = 2

let rate_pace_kind = 3

(* Pacing loop for rate-based senders (DCQCN, Timely). *)
let rate_pace t tx =
  if (not tx.finished) && (tx.snd_nxt < tx.flow.Flow.size || tx.rtx <> []) then begin
    if is_rate_based tx then begin
      let on_sent bytes =
        match tx.cc with Cc_dcqcn d -> Dcqcn.on_sent d ~bytes | _ -> ()
      in
      (* hold off while the NIC is badly backlogged (PFC pause) *)
      if Nic.queue_bytes t.nic ~queue:tx.nic_q < 8 * mtu_wire t.cfg then begin
        (match tx.rtx with
        | (s, e) :: rest ->
          let len = min t.cfg.mtu (e - s) in
          tx.rtx <- (if s + len >= e then rest else (s + len, e) :: rest);
          tx.retransmitted <- tx.retransmitted + len;
          t.bytes_retransmitted <- t.bytes_retransmitted + len;
          let pkt = make_data t tx ~seq:s ~len in
          submit_data t tx pkt;
          on_sent len
        | [] ->
          if tx.snd_nxt < tx.flow.Flow.size then begin
            let len = min t.cfg.mtu (tx.flow.Flow.size - tx.snd_nxt) in
            let pkt = make_data t tx ~seq:tx.snd_nxt ~len in
            tx.snd_nxt <- tx.snd_nxt + len;
            submit_data t tx pkt;
            on_sent len
          end)
      end;
      let gap =
        let r = rate_of tx in
        if r <= 0.0 then Bfc_engine.Time.us 10.0
        else max 1 (int_of_float (float_of_int (mtu_wire t.cfg) /. r))
      in
      Sim.post t.sim (Sim.now t.sim + gap) ~cls:Sim.cls_flow_timeout ~a0:t.idx
        ~a1:((tx.flow.Flow.id lsl 2) lor rate_pace_kind)
    end
  end

(* ------------------------------------------------------------------ *)
(* Timers                                                               *)

let cancel_rto t tx =
  Sim.cancel_token t.sim tx.rto_t;
  tx.rto_t <- 0

let arm_rto t tx =
  cancel_rto t tx;
  if not tx.finished then
    tx.rto_t <-
      Sim.post_token t.sim
        (Sim.now t.sim + t.cfg.rto)
        ~cls:Sim.cls_flow_timeout ~a0:t.idx
        ~a1:((tx.flow.Flow.id lsl 2) lor rto_kind)

let rto_fire t tx =
  tx.rto_t <- 0;
  if not tx.finished then begin
    (* Don't rewind while our NIC queue is paused or backlogged:
       the data is safe, just flow-controlled. *)
    let q = if tx.nic_q >= 0 then tx.nic_q else 0 in
    let held =
      tx.nic_q >= 0 && (Nic.queue_paused t.nic ~queue:q || Nic.queue_bytes t.nic ~queue:q > 0)
    in
    if not held then begin
      (match tx.cc with Cc_dctcp d -> Dctcp.on_timeout d | _ -> ());
      if tx.snd_nxt > tx.snd_una then begin
        t.bytes_retransmitted <- t.bytes_retransmitted + (tx.snd_nxt - tx.snd_una);
        tx.snd_nxt <- tx.snd_una;
        tx.rtx <- []
      end;
      pump t tx
    end;
    arm_rto t tx
  end

let finish_tx t tx =
  if not tx.finished then begin
    tx.finished <- true;
    cancel_rto t tx;
    (match tx.cc with Cc_dcqcn d -> Dcqcn.stop d | _ -> ());
    if tx.nic_q >= 1 then begin
      Nic.release_queue t.nic tx.nic_q;
      t.owners.(tx.nic_q) := List.filter (fun o -> o != tx) !(t.owners.(tx.nic_q))
    end
  end

(* ------------------------------------------------------------------ *)
(* ACK / NACK / grant / credit handling (sender side)                   *)

let on_ack t pkt =
  match Bfc_util.Int_table.find_exn t.txs (Packet.flow_id pkt) with
  | exception Not_found -> ()
  | tx ->
    if not tx.finished then begin
      let prev = tx.snd_una in
      if pkt.Packet.seq > tx.snd_una then begin
        tx.snd_una <- pkt.Packet.seq;
        if tx.snd_nxt < tx.snd_una then tx.snd_nxt <- tx.snd_una;
        arm_rto t tx
      end;
      let acked = tx.snd_una - prev in
      (match tx.cc with
      | Cc_dctcp d ->
        Dctcp.on_ack d ~acked ~marked:pkt.Packet.ecn_echo ~snd_una:tx.snd_una ~snd_nxt:tx.snd_nxt
      | Cc_hpcc h ->
        Hpcc.on_ack h ~hops:pkt.Packet.int_hops ~nhops:pkt.Packet.int_cnt ~ack_seq:pkt.Packet.seq
          ~snd_nxt:tx.snd_nxt
      | Cc_delay d ->
        let rtt = Sim.now t.sim - pkt.Packet.sent_at in
        if pkt.Packet.sent_at > 0 then Delay_cc.on_ack d ~rtt
      | Cc_swift sw ->
        let rtt = Sim.now t.sim - pkt.Packet.sent_at in
        if pkt.Packet.sent_at > 0 then Swift.on_ack sw ~rtt ~now:(Sim.now t.sim)
      | Cc_timely tm ->
        let rtt = Sim.now t.sim - pkt.Packet.sent_at in
        if pkt.Packet.sent_at > 0 then Timely.on_ack tm ~rtt
      | Cap _ | Cc_dcqcn _ | Cc_xpass | Cc_homa -> ());
      if tx.snd_una >= tx.flow.Flow.size then finish_tx t tx else pump t tx
    end

let on_nack t pkt =
  match Bfc_util.Int_table.find_exn t.txs (Packet.flow_id pkt) with
  | exception Not_found -> ()
  | tx ->
    if (not tx.finished) && pkt.Packet.seq >= tx.snd_una && pkt.Packet.seq < tx.snd_nxt then begin
      t.bytes_retransmitted <- t.bytes_retransmitted + (tx.snd_nxt - pkt.Packet.seq);
      tx.snd_nxt <- pkt.Packet.seq;
      tx.rtx <- [];
      pump t tx
    end

let on_grant t pkt =
  match Bfc_util.Int_table.find_exn t.txs (Packet.flow_id pkt) with
  | exception Not_found -> ()
  | tx ->
    if pkt.Packet.ctrl_a > tx.granted then begin
      tx.granted <- pkt.Packet.ctrl_a;
      tx.grant_prio <- pkt.Packet.ctrl_b;
      let rec blast () =
        match next_chunk t tx with
        | None -> ()
        | Some (seq, len) ->
          let p = make_data t tx ~seq ~len in
          p.Packet.prio <- homa_data_prio t tx ~seq;
          submit_data t tx p;
          blast ()
      in
      blast ()
    end

let on_credit t pkt =
  match Bfc_util.Int_table.find_exn t.txs (Packet.flow_id pkt) with
  | exception Not_found -> ()
  | tx ->
    if (not tx.finished) && tx.snd_nxt < tx.flow.Flow.size then begin
      let len = min t.cfg.mtu (tx.flow.Flow.size - tx.snd_nxt) in
      let p = make_data t tx ~seq:tx.snd_nxt ~len in
      (* echo the credit sequence so the receiver can measure credit waste *)
      p.Packet.ctrl_a <- pkt.Packet.ctrl_a;
      tx.snd_nxt <- tx.snd_nxt + len;
      submit_data t tx p
    end

let on_cnp t pkt =
  match Bfc_util.Int_table.find_exn t.txs (Packet.flow_id pkt) with
  | exception Not_found -> ()
  | tx -> ( match tx.cc with Cc_dcqcn d -> Dcqcn.on_cnp d | _ -> ())

let on_drop_notice t ~flow_id ~seq ~len =
  match Bfc_util.Int_table.find_exn t.txs flow_id with
  | exception Not_found -> ()
  | tx ->
    if not tx.finished then begin
      tx.rtx <- List.merge compare [ (seq, seq + len) ] tx.rtx;
      t.bytes_retransmitted <- t.bytes_retransmitted + len;
      pump t tx
    end

(* ------------------------------------------------------------------ *)
(* Receive path                                                         *)

let insert_range rx ~start ~stop =
  (* merge [start, stop) into the prefix + ranges *)
  if stop > rx.expected then begin
    let ranges = List.merge compare [ (max start rx.expected, stop) ] rx.ranges in
    (* coalesce *)
    let rec coalesce = function
      | (a, b) :: (c, d) :: rest when c <= b -> coalesce ((a, max b d) :: rest)
      | r :: rest -> r :: coalesce rest
      | [] -> []
    in
    let ranges = coalesce ranges in
    (* absorb into the contiguous prefix *)
    let rec absorb exp = function
      | (a, b) :: rest when a <= exp -> absorb (max exp b) rest
      | rest -> (exp, rest)
    in
    let exp, ranges = absorb rx.expected ranges in
    rx.expected <- exp;
    rx.ranges <- ranges
  end

let covered rx = rx.expected

let get_rx t flow =
  match Bfc_util.Int_table.find_exn t.rxs flow.Flow.id with
  | rx -> rx
  | exception Not_found ->
    let rx =
      {
        rflow = flow;
        expected = 0;
        ranges = [];
        last_nack = min_int / 2;
        last_cnp = min_int / 2;
        complete = false;
        cr_rate = 0.0;
        cr_w = 0.0;
        cr_sent = 0;
        cr_used = 0;
        cr_pacer = 0;
        cr_feedback = None;
        cr_stop = false;
      }
    in
    Bfc_util.Int_table.set t.rxs flow.Flow.id rx;
    rx

let send_ctrl_pkt t kind ~flow ~dst ~size ~seq =
  let pkt =
    match t.pool with
    | Some p -> Packet.Pool.acquire p kind ~flow ~src:t.node.Node.id ~dst ~size ~seq ()
    | None -> Packet.make ~sim:t.sim kind ~flow ~src:t.node.Node.id ~dst ~size ~seq ()
  in
  Nic.submit_ctrl t.nic pkt;
  pkt

let gbn_mode t =
  match t.cfg.scheme with
  | Homa _ -> false
  | Hpcc { perfect_rtx; _ } -> not perfect_rtx
  | _ -> true

(* ExpressPass receiver: credit pacing with loss-based feedback. *)
let xpass_stop_credits t rx =
  rx.cr_stop <- true;
  Sim.cancel_token t.sim rx.cr_pacer;
  (match rx.cr_feedback with Some tk -> Sim.stop_ticker tk | None -> ());
  rx.cr_pacer <- 0;
  rx.cr_feedback <- None

let xpass_pace t rx =
  if not rx.cr_stop then begin
    let credit =
      match t.pool with
      | Some p ->
        Packet.Pool.acquire p Packet.Credit ~flow:rx.rflow ~src:t.node.Node.id
          ~dst:rx.rflow.Flow.src ~size:Packet.ctrl_bytes ()
      | None ->
        Packet.make ~sim:t.sim Packet.Credit ~flow:rx.rflow ~src:t.node.Node.id
          ~dst:rx.rflow.Flow.src ~size:Packet.ctrl_bytes ()
    in
    rx.cr_sent <- rx.cr_sent + 1;
    credit.Packet.ctrl_a <- rx.cr_sent;
    Nic.submit_ctrl t.nic credit;
    (* jitter the credit spacing (xpass does, to avoid synchronized credit
       bursts colliding at the rate limiter) *)
    let base = float_of_int (mtu_wire t.cfg) /. rx.cr_rate in
    let jitter = 0.8 +. (0.4 *. Bfc_util.Rng.float t.rng) in
    let gap = max 1 (int_of_float (base *. jitter)) in
    rx.cr_pacer <-
      Sim.post_token t.sim (Sim.now t.sim + gap) ~cls:Sim.cls_flow_timeout ~a0:t.idx
        ~a1:((rx.rflow.Flow.id lsl 2) lor xpass_pace_kind)
  end

let xpass_start_credits t rx ~target_loss ~w_init ~w_max =
  if (not (Sim.token_pending t.sim rx.cr_pacer)) && not rx.cr_stop then begin
    let line = t.cfg.line_gbps /. 8.0 in
    rx.cr_rate <- line /. 2.0;
    rx.cr_w <- w_init;
    let last_sent = ref 0 and last_used = ref 0 in
    rx.cr_feedback <-
      Some
        (Sim.every t.sim ~period:(2 * t.cfg.base_rtt) (fun () ->
             let sent = rx.cr_sent - !last_sent and used = rx.cr_used - !last_used in
             last_sent := rx.cr_sent;
             last_used := rx.cr_used;
             if sent > 0 then begin
               let loss = 1.0 -. (float_of_int used /. float_of_int sent) in
               if loss <= target_loss then begin
                 rx.cr_w <- Float.min w_max ((rx.cr_w +. w_max) /. 2.0);
                 rx.cr_rate <- ((1.0 -. rx.cr_w) *. rx.cr_rate) +. (rx.cr_w *. line)
               end
               else begin
                 rx.cr_rate <- rx.cr_rate *. (1.0 -. loss) *. (1.0 +. target_loss);
                 rx.cr_w <- Float.max (rx.cr_w /. 2.0) 0.01
               end;
               if rx.cr_rate < line /. 1000.0 then rx.cr_rate <- line /. 1000.0
             end));
    xpass_pace t rx
  end

let on_data t pkt =
  let flow = Packet.flow_exn pkt ~at:(Sim.now t.sim) in
  let rx = get_rx t flow in
  let was = covered rx in
  if gbn_mode t then begin
    if pkt.Packet.seq = rx.expected then rx.expected <- rx.expected + pkt.Packet.payload
    else if pkt.Packet.seq > rx.expected then begin
      (* gap: Go-Back-N NACK, at most one per RTT *)
      if Sim.now t.sim - rx.last_nack > t.cfg.base_rtt then begin
        rx.last_nack <- Sim.now t.sim;
        ignore
          (send_ctrl_pkt t Packet.Nack ~flow ~dst:flow.Flow.src ~size:Packet.ack_bytes
             ~seq:rx.expected)
      end
    end
  end
  else insert_range rx ~start:pkt.Packet.seq ~stop:(pkt.Packet.seq + pkt.Packet.payload);
  let now_cov = covered rx in
  if now_cov > was then begin
    if flow.Flow.first_byte < 0 then flow.Flow.first_byte <- Sim.now t.sim;
    flow.Flow.delivered <- now_cov
  end;
  (* per-scheme receiver reactions *)
  (match t.cfg.scheme with
  | Dcqcn p ->
    if pkt.Packet.ecn && Sim.now t.sim - rx.last_cnp > p.Dcqcn.cnp_interval then begin
      rx.last_cnp <- Sim.now t.sim;
      ignore (send_ctrl_pkt t Packet.Cnp ~flow ~dst:flow.Flow.src ~size:Packet.ctrl_bytes ~seq:0)
    end
  | Homa _ -> (
    match t.homa_recv with
    | Some hr ->
      let grants = Homa.Receiver.on_data hr ~flow ~covered:now_cov in
      List.iter
        (fun g ->
          let gp =
            send_ctrl_pkt t Packet.Grant ~flow:g.Homa.g_flow ~dst:g.Homa.g_flow.Flow.src
              ~size:Packet.ctrl_bytes ~seq:0
          in
          gp.Packet.ctrl_a <- g.Homa.g_offset;
          gp.Packet.ctrl_b <- g.Homa.g_prio)
        grants
    | None -> ())
  | Xpass _ ->
    if pkt.Packet.ctrl_a > 0 then rx.cr_used <- rx.cr_used + 1;
    (* FIN: flow has no more data; stop crediting after the in-flight RTT *)
    if pkt.Packet.ctrl_b = 1 then
      Sim.post t.sim
        (Sim.now t.sim + t.cfg.base_rtt)
        ~cls:Sim.cls_flow_timeout ~a0:t.idx
        ~a1:((flow.Flow.id lsl 2) lor xpass_stop_kind)
  | Bfc _ | Dctcp _ | Hpcc _ | Swift _ | Timely -> ());
  (* acknowledgements *)
  let ack_now =
    match t.cfg.scheme with
    | Homa _ | Xpass _ -> now_cov >= flow.Flow.size && not rx.complete
    | _ -> true
  in
  if ack_now then begin
    let ack =
      match t.pool with
      | Some p ->
        Packet.Pool.acquire p Packet.Ack ~flow ~src:t.node.Node.id ~dst:flow.Flow.src
          ~size:Packet.ack_bytes ~seq:now_cov ()
      | None ->
        Packet.make ~sim:t.sim Packet.Ack ~flow ~src:t.node.Node.id ~dst:flow.Flow.src
          ~size:Packet.ack_bytes ~seq:now_cov ()
    in
    ack.Packet.ecn_echo <- pkt.Packet.ecn;
    (* Copy (never alias) the INT stack: [pkt] may be recycled the moment
       this handler returns, while the ack is still in flight. *)
    Packet.copy_int_hops ~src:pkt ~dst:ack;
    ack.Packet.sent_at <- pkt.Packet.sent_at;
    Nic.submit_ctrl t.nic ack
  end;
  if now_cov >= flow.Flow.size && not rx.complete then begin
    rx.complete <- true;
    if flow.Flow.finish < 0 then flow.Flow.finish <- Sim.now t.sim;
    (match t.cfg.scheme with Xpass _ -> xpass_stop_credits t rx | _ -> ());
    t.complete_cb flow
  end

let on_credit_req t pkt =
  match t.cfg.scheme with
  | Xpass { target_loss; w_init; w_max } ->
    let flow = Packet.flow_exn pkt ~at:(Sim.now t.sim) in
    let rx = get_rx t flow in
    xpass_start_credits t rx ~target_loss ~w_init ~w_max
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Flow start                                                           *)

let flow_bdp t flow =
  match t.cfg.flow_bdp with Some f -> f flow | None -> t.cfg.bdp

let make_cc t flow =
  let bdp = flow_bdp t flow in
  match t.cfg.scheme with
  | Bfc { window_cap; delay_cc } ->
    if delay_cc then
      Cc_delay (Delay_cc.create ~mtu:t.cfg.mtu ~bdp ~base_rtt:t.cfg.base_rtt ~target_mult:2.5)
    else begin
      (* a per-BDP cap scales with the flow's own path *)
      match window_cap with
      | None -> Cap max_int
      | Some cap_bytes ->
        let scaled =
          if t.cfg.bdp = 0 then cap_bytes
          else int_of_float (float_of_int cap_bytes *. float_of_int bdp /. float_of_int t.cfg.bdp)
        in
        Cap (max t.cfg.mtu scaled)
    end
  | Dctcp { slow_start } -> Cc_dctcp (Dctcp.create ~mtu:t.cfg.mtu ~bdp ~slow_start ~g:(1.0 /. 16.0))
  | Dcqcn params ->
    Cc_dcqcn (Dcqcn.create t.sim ~params ~line_gbps:t.cfg.line_gbps ~on_rate_change:ignore)
  | Hpcc { eta; max_stage; _ } ->
    Cc_hpcc (Hpcc.create ~eta ~max_stage ~w_ai:80.0 ~bdp ~base_rtt:t.cfg.base_rtt)
  | Swift { target_mult; beta } ->
    Cc_swift (Swift.create ~mtu:t.cfg.mtu ~bdp ~base_rtt:t.cfg.base_rtt ~target_mult ~beta)
  | Timely ->
    Cc_timely
      (Timely.create ~line_gbps:t.cfg.line_gbps ~base_rtt:t.cfg.base_rtt
         ~t_low:(t.cfg.base_rtt + (t.cfg.base_rtt / 4))
         ~t_high:(2 * t.cfg.base_rtt))
  | Xpass _ -> Cc_xpass
  | Homa _ -> Cc_homa

let start_flow t flow =
  if flow.Flow.src <> t.node.Node.id then invalid_arg "Host.start_flow: not the source host";
  let cc = make_cc t flow in
  let needs_queue = match t.cfg.scheme with Homa _ -> false | _ -> true in
  let nic_q = if needs_queue then Nic.alloc_queue t.nic else -1 in
  let tx =
    {
      flow;
      snd_nxt = 0;
      snd_una = 0;
      cc;
      nic_q;
      rtx = [];
      rto_t = 0;
      finished = false;
      granted = 0;
      grant_prio = 0;
      unsched = (match t.cfg.scheme with Homa p -> min flow.Flow.size p.Homa.rtt_bytes | _ -> 0);
      fin_sent = false;
      retransmitted = 0;
    }
  in
  Bfc_util.Int_table.set t.txs flow.Flow.id tx;
  if nic_q >= 1 && is_window_based tx then t.owners.(nic_q) := tx :: !(t.owners.(nic_q));
  arm_rto t tx;
  (match t.cfg.scheme with
  | Xpass _ ->
    ignore
      (send_ctrl_pkt t Packet.Credit_req ~flow ~dst:flow.Flow.dst ~size:Packet.ctrl_bytes ~seq:0)
  | Dcqcn _ | Timely -> rate_pace t tx
  | Homa _ -> homa_start t tx
  | Bfc _ | Dctcp _ | Hpcc _ | Swift _ -> pump t tx)

(* ------------------------------------------------------------------ *)
(* Dispatch                                                             *)

let receive t ~in_port:_ pkt =
  (* Every branch consumes the packet synchronously (handlers copy what
     they keep), so the host is the end of its life: recycle afterwards. *)
  (match pkt.Packet.kind with
  | Packet.Data -> on_data t pkt
  | Packet.Ack -> on_ack t pkt
  | Packet.Nack -> on_nack t pkt
  | Packet.Grant -> on_grant t pkt
  | Packet.Credit -> on_credit t pkt
  | Packet.Credit_req -> on_credit_req t pkt
  | Packet.Cnp -> on_cnp t pkt
  | Packet.Pause | Packet.Resume | Packet.Pause_bitmap | Packet.Hop_credit | Packet.Pfc ->
    Nic.on_ctrl t.nic pkt);
  recycle t pkt

(* Typed flow-timer dispatch: one per-sim registry of hosts, one shared
   executor keyed by the packed (flow_id, kind) in [a1]. *)

type reg = { mutable harr : t array; mutable hn : int }

type Bfc_engine.Sim.user += Host_reg of reg

let timeout_exec st a0 a1 =
  match st with
  | Host_reg r ->
    let t = Array.unsafe_get r.harr a0 in
    let fid = a1 lsr 2 in
    let kind = a1 land 3 in
    if kind = rto_kind then begin
      match Bfc_util.Int_table.find_exn t.txs fid with
      | exception Not_found -> ()
      | tx -> rto_fire t tx
    end
    else if kind = rate_pace_kind then begin
      match Bfc_util.Int_table.find_exn t.txs fid with
      | exception Not_found -> ()
      | tx -> rate_pace t tx
    end
    else begin
      match Bfc_util.Int_table.find_exn t.rxs fid with
      | exception Not_found -> ()
      | rx -> if kind = xpass_pace_kind then xpass_pace t rx else xpass_stop_credits t rx
    end
  | _ -> invalid_arg "Host.timeout_exec: foreign class state"

let registry sim =
  match Sim.class_state sim ~cls:Sim.cls_flow_timeout with
  | Some (Host_reg r) -> r
  | _ ->
    let r = { harr = [||]; hn = 0 } in
    Sim.register_class sim ~cls:Sim.cls_flow_timeout ~state:(Host_reg r) ~exec:timeout_exec;
    r

let create ~sim ~node ~port ~config:cfg ?pool () =
  let r = registry sim in
  let nic =
    Nic.create ~sim ~port ~n_queues:cfg.nic_queues ~policy:cfg.nic_policy
      ~respect_pause:cfg.respect_pause ?pause_watchdog:cfg.pause_watchdog ?credit:cfg.nic_credit
      ()
  in
  let homa_recv = match cfg.scheme with Homa p -> Some (Homa.Receiver.create p) | _ -> None in
  let t =
    {
      sim;
      node;
      idx = r.hn;
      cfg;
      pool;
      nic;
      txs = Bfc_util.Int_table.create ~size:64 ();
      rxs = Bfc_util.Int_table.create ~size:64 ();
      homa_recv;
      complete_cb = ignore;
      owners = Array.init cfg.nic_queues (fun _ -> ref []);
      rng = Rng.create (cfg.seed + (node.Node.id * 65_537));
      bytes_sent = 0;
      bytes_retransmitted = 0;
    }
  in
  if r.hn = Array.length r.harr then begin
    let ncap = max 16 (2 * r.hn) in
    let na = Array.make ncap t in
    Array.blit r.harr 0 na 0 r.hn;
    r.harr <- na
  end;
  r.harr.(r.hn) <- t;
  r.hn <- r.hn + 1;
  Nic.set_on_dequeue nic (fun q ->
      if q >= 0 && q < Array.length t.owners then List.iter (fun tx -> pump t tx) !(t.owners.(q)));
  node.Node.handler <- (fun ~in_port pkt -> receive t ~in_port pkt);
  t
