(** Bounded single-producer/single-consumer channel.

    The inter-shard packet conduit of the PDES runtime: each shard owns
    the producer end, the window coordinator the consumer end. The PDES
    producer batches its messages into bursts (arrays), so one ring slot
    — one cursor publication — carries a whole burst rather than a
    single message. The ring is bounded and lossless — when it fills,
    {!try_push} reports [false] and the producing shard stalls until the
    consumer drains, so the simulator behaves like the backpressured
    pipeline it models; nothing is ever dropped.

    Safe for exactly one producer domain and one consumer domain at a
    time (cursor publication uses [Atomic]); the non-atomic statistics
    ({!pushed}/{!popped}) are each owned by one side and must only be
    read by the other across a synchronisation point (a PDES barrier). *)

type 'a t

(** [create ~capacity] — capacity is rounded up to a power of two. *)
val create : capacity:int -> 'a t

val capacity : 'a t -> int

val length : 'a t -> int

val is_empty : 'a t -> bool

(** Producer only. [false] means the ring is full: retry after the
    consumer drains (the caller owns the stall loop). *)
val try_push : 'a t -> 'a -> bool

(** Consumer only. *)
val pop : 'a t -> 'a option

(** Consumer only. [drain t f] pops until the ring is empty, calling [f]
    on each element in FIFO order; returns how many were popped.
    Elements pushed concurrently during the drain may or may not be
    seen — the caller's barrier protocol decides when "empty" is
    final. *)
val drain : 'a t -> ('a -> unit) -> int

(** Total successful pushes (producer-owned counter). *)
val pushed : 'a t -> int

(** Total pops (consumer-owned counter). *)
val popped : 'a t -> int
