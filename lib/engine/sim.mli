(** The discrete-event simulation core.

    A [Sim.t] owns the virtual clock and the pending-event queue. Components
    schedule events at absolute or relative times; [run] executes events in
    time order (FIFO among simultaneous events) until the horizon or until
    the event set drains.

    Events come in two representations:

    - {b closures} ([at]/[after]/[make_handle]/[every]) — fully general,
      one heap allocation and an indirect call per occurrence. The control
      plane and out-of-tree callers use these.
    - {b typed posts} ([post]/[post_token]) — a class id from the small
      fixed enum below plus two immediate int args, fired through a
      per-class executor registered once per sim with [register_class].
      Typed events are pooled inside the engine, so the steady-state hot
      path (deliveries, watchdogs, retransmit timers, pacers) allocates
      nothing and dispatches through a direct match instead of a closure
      call. Cancellation uses int tokens ([cancel_token]), so callers need
      no handle field either.

    Both representations share one queue and one (time, rank, seq)
    ordering contract; which one an event uses is invisible to the
    schedule. *)

type t

type handle
(** A scheduled event that can be cancelled. Cancellation is O(1): the event
    stays in the queue but becomes a no-op. *)

(** Per-class executor state. Each subsystem extends this variant with a
    constructor carrying its own registry (ports, switches, flow tables...)
    and hands it to {!register_class}; the engine stores and returns it
    without inspecting it. *)
type user = ..

type user += No_state

(** The pending-event queue backend: the 4-ary min-heap
    ({!Bfc_util.Heap}, O(log n)) or the hierarchical timing wheel
    ({!Bfc_util.Wheel}, amortized O(1)). Both pop in strict
    (time, insertion order), so event execution is byte-identical across
    backends; [Wheel] is the default and the faster one on the engine's
    rearm-dominated event mix (see BENCH_engine.json). *)
type sched = Heap | Wheel

val create : ?sched:sched -> unit -> t
(** [create ()] uses the process-wide default backend
    ({!default_sched}); pass [~sched] to pin one explicitly. *)

val set_default_sched : sched -> unit
(** Set the backend used by [create ()] calls that don't pass [~sched]
    — the hook bench A/B runs and differential tests use to drive
    experiment code that creates its own sims. Not domain-safe: set it
    before spawning worker domains (same contract as
    [Pool.set_default_jobs]). *)

val default_sched : unit -> sched

val sched : t -> sched
(** The backend this sim was created with. *)

(** Current virtual time. *)
val now : t -> Time.t

(** [fresh_uid t] draws from a per-simulation counter (packet uids and the
    like). Keeping the counter inside [Sim.t] makes uid sequences
    reproducible across back-to-back runs in one process and race-free when
    independent sims run on separate domains. *)
val fresh_uid : t -> int

(** [at t time f] runs [f] at absolute [time] (>= now). Among events at
    the same [time], execution order is (insertion instant, key,
    insertion order): the clock value at scheduling time first, then the
    optional canonical [~key], then FIFO.

    [~sent] (PDES barrier only) inserts the event as if it had been
    scheduled when the clock read [sent] (which must be in
    [0, now]): among same-[time] events it sorts before everything
    inserted at a later clock — the position a sequential run gives a
    cross-shard delivery scheduled at its send time.

    [~key] is a canonical tie-break below the insertion instant — a
    globally-known physical identity (ports pass their gid when
    scheduling packet deliveries) that orders same-(time, instant)
    insertions made on different shards without reference to the
    insertion interleaving, which no shard can observe. Defaults to the
    maximum key, so unkeyed events sort after keyed ones at the same
    instant. Must be in [0, 2^20 - 1]. *)
val at : ?sent:Time.t -> ?key:int -> t -> Time.t -> (unit -> unit) -> handle

(** [after t delay f] runs [f] at [now + delay]. [~key] as in {!at}. *)
val after : ?key:int -> t -> Time.t -> (unit -> unit) -> handle

(** {2 Typed event classes}

    Engine-reserved class ids. They are names, not priorities: class ids
    never enter the rank and never affect ordering. Classes 0–2 are the
    closure representations and cannot be posted to directly. *)

val cls_port_tx : int
(** Port transmit wakeup — [a0] = port registry index, [a1] unused. *)

val cls_delivery : int
(** In-flight packet delivery at a port — [a0] = port registry index,
    [a1] = ring selector (0 data, 1 control). *)

val cls_switch_ctrl : int
(** Switch watchdog (egress-queue or PFC unpause) — [a0] = switch
    registry index, [a1] = packed (epoch, egress, queue). *)

val cls_nic_ctrl : int
(** NIC watchdog (per-queue pause or PFC) — [a0] = NIC registry index,
    [a1] = packed (epoch, queue). *)

val cls_flow_timeout : int
(** Transport timer — [a0] = host registry index, [a1] = packed
    (flow id, timer kind: RTO / credit pacer / credit stop / rate
    pacer). *)

val cls_pdes_barrier : int
(** Cross-shard delivery admitted at a conservative-window barrier —
    [a0] = parcel-table slot, [a1] unused. *)

val cls_xpass_resume : int
(** ExpressPass credit-queue resume probe — [a0] = attach registry
    index, [a1] = egress. *)

val n_classes : int
(** Exclusive upper bound on class ids (16). Ids in
    [[cls_port_tx, n_classes)] not claimed above are free for
    out-of-tree subsystems. *)

(** [register_class t ~cls ~state ~exec] installs the executor for a
    typed class on this sim: every event posted with [~cls] fires as
    [exec state a0 a1]. One executor per (sim, class); registering again
    replaces it (subsystems call this idempotently from their [attach]/
    [create] paths). Raises [Invalid_argument] for class ids outside
    [[cls_port_tx, n_classes)]. *)
val register_class : t -> cls:int -> state:user -> exec:(user -> int -> int -> unit) -> unit

(** [class_state t ~cls] is the state registered for [cls] on this sim,
    or [None] — how a subsystem finds (or decides to create) its
    per-sim registry when attaching a second instance. *)
val class_state : t -> cls:int -> user option

(** [post t time ~cls ~a0 ~a1] schedules a typed fire-and-forget event:
    [exec state a0 a1] runs at absolute [time]. No allocation in steady
    state — the engine recycles a pooled handle. [?sent] and [?key]
    exactly as in {!at}. Raises [Invalid_argument] on a past [time] or
    a class outside the typed range ({!register_class} may happen
    later, but must happen before the event fires). *)
val post : ?sent:Time.t -> ?key:int -> t -> Time.t -> cls:int -> a0:int -> a1:int -> unit

type token = int
(** A cancellable typed event, as a plain int: 0 is never a valid token,
    so callers can keep one in a bare mutable field with 0 as "none".
    Tokens are generation-checked — a token outlives its event safely,
    [cancel_token]/[token_pending] on a fired or already-cancelled
    event's token are no-ops. *)

(** Like {!post} but returns a {!token} for cancellation. *)
val post_token : ?sent:Time.t -> ?key:int -> t -> Time.t -> cls:int -> a0:int -> a1:int -> token

(** [cancel_token t tok] cancels the typed event named by [tok] if it is
    still pending; O(1), no-op on 0, stale, fired or cancelled tokens. *)
val cancel_token : t -> token -> unit

(** Is the typed event named by this token still pending? *)
val token_pending : t -> token -> bool

val cancel : handle -> unit

(** Is the event still pending (not run, not cancelled)? *)
val pending : handle -> bool

(** [make_handle t f] builds an unarmed, reusable handle for [f]. Arm it
    with {!rearm}; once fired it can be rearmed again, so a steady-state
    chained event (a port's idle wakeup, an in-flight delivery slot)
    allocates nothing per occurrence. *)
val make_handle : t -> (unit -> unit) -> handle

(** [rearm h ~at] schedules an unarmed reusable handle at absolute time
    [at]. Raises [Invalid_argument] if [h] is still armed or [at] is in the
    past. A handle [cancel]led while armed leaves a stale queue entry behind
    and must not be rearmed until that deadline has passed. [~key] as in
    {!at}. *)
val rearm : ?key:int -> handle -> at:Time.t -> unit

(** [every t ~period f] runs [f] every [period] starting at [now + period],
    until [stop_ticker] is called on the returned controller. The ticker
    reuses one handle for its whole life, so steady-state ticking allocates
    nothing per period. *)
type ticker

val every : t -> period:Time.t -> (unit -> unit) -> ticker

(** Stops the ticker and cancels its armed handle, so the pending-event
    count drops immediately instead of carrying a dead event to its
    deadline. *)
val stop_ticker : ticker -> unit

(** [run t ~until] processes events until the clock passes [until] or the
    queue drains. Returns the number of events executed. The clock is left at
    [until] (or at the last event time if the queue drained first). *)
val run : t -> until:Time.t -> int

(** Raised by [run_until_idle] when the event count exceeds the safety cap:
    the simulation is executing events but not converging (e.g. a pause
    storm, a retransmission livelock). Carries the virtual time reached and
    the number of events still pending so the stall is diagnosable. *)
exception Runaway of { now : Time.t; pending_events : int }

(** [run_until_idle t] processes everything; intended for closed workloads
    with a natural end. Returns events executed.
    Raises {!Runaway} after [cap] events (default 2^30). *)
val run_until_idle : ?cap:int -> t -> int

(** Deadline of the earliest queued entry, or [-1] when the queue is
    empty. Cancelled tombstones are included, so the value is a lower
    bound on the next event that will actually execute — exactly what a
    conservative synchronization window needs (a too-early bound shrinks
    the window; it can never overshoot). *)
val next_time : t -> Time.t

(** Number of live scheduled events (cancelled tombstones excluded). *)
val pending_events : t -> int

(** Total events executed over the simulation's lifetime; the denominator
    for events/sec macro benchmarks. *)
val executed_events : t -> int

(** Engine self-profile: how the event load decomposes and how hard the
    event queue and the handle-reuse machinery are working. Maintained
    unconditionally (plain int stores per event); read it at any point.

    - [p_one_shot] / [p_reusable] / [p_ticker]: closure events executed
      per class — fresh [at]/[after] closures, reusable handles
      ([make_handle] + {!rearm}: port wakeups), and {!every} ticks.
    - [p_typed]: typed events executed ({!post}/{!post_token}), summed
      over all registered classes. A healthy hot path executes mostly
      typed and reusable events.
    - [p_heap_hwm]: deepest the pending-event queue ever got (backlog
      high-water mark, whichever backend); [p_heap_capacity] is the
      backing storage it grew to (heap array slots, or total wheel
      bucket slots).
    - [p_rearms]: handle re-armings — every one is an allocation avoided.
    - [p_cancels]: cancellations (each leaves a tombstone until its
      deadline). *)
type profile = {
  p_one_shot : int;
  p_reusable : int;
  p_ticker : int;
  p_typed : int;
  p_heap_hwm : int;
  p_heap_capacity : int;
  p_rearms : int;
  p_cancels : int;
  p_executed : int;
  p_live : int;
}

val profile : t -> profile
