(** The discrete-event simulation core.

    A [Sim.t] owns the virtual clock and the pending-event heap. Components
    schedule closures at absolute or relative times; [run] executes events in
    time order (FIFO among simultaneous events) until the horizon or until
    the event set drains. *)

type t

type handle
(** A scheduled event that can be cancelled. Cancellation is O(1): the event
    stays in the heap but becomes a no-op. *)

val create : unit -> t

(** Current virtual time. *)
val now : t -> Time.t

(** [at t time f] runs [f] at absolute [time] (>= now). *)
val at : t -> Time.t -> (unit -> unit) -> handle

(** [after t delay f] runs [f] at [now + delay]. *)
val after : t -> Time.t -> (unit -> unit) -> handle

val cancel : handle -> unit

(** Is the event still pending (not run, not cancelled)? *)
val pending : handle -> bool

(** [every t ~period f] runs [f] every [period] starting at [now + period],
    until [stop] is called on the returned controller. *)
type ticker

val every : t -> period:Time.t -> (unit -> unit) -> ticker

val stop_ticker : ticker -> unit

(** [run t ~until] processes events until the clock passes [until] or the
    heap drains. Returns the number of events executed. The clock is left at
    [until] (or at the last event time if the heap drained first). *)
val run : t -> until:Time.t -> int

(** Raised by [run_until_idle] when the event count exceeds the safety cap:
    the simulation is executing events but not converging (e.g. a pause
    storm, a retransmission livelock). Carries the virtual time reached and
    the number of events still pending so the stall is diagnosable. *)
exception Runaway of { now : Time.t; pending_events : int }

(** [run_until_idle t] processes everything; intended for closed workloads
    with a natural end. Returns events executed.
    Raises {!Runaway} after [cap] events (default 2^30). *)
val run_until_idle : ?cap:int -> t -> int

(** Number of events still in the heap (including cancelled tombstones);
    for diagnostics only. *)
val pending_events : t -> int
