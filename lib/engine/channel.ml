(* Bounded single-producer/single-consumer ring for inter-shard traffic.

   The PDES coordinator (lib/sim) gives each shard one outbound channel;
   the shard's domain is the only producer and the coordinator thread the
   only consumer, so a slot needs no lock: the producer publishes a slot
   by the release [Atomic.set] on [tail], and the consumer's acquire
   [Atomic.get] on [tail] orders the slot read after the write (the
   standard SPSC ring under the OCaml 5 memory model — every slot access
   is separated from the cursor bump that hands the slot over, so there
   are no data races on the buffer).

   The ring is deliberately bounded: a shard that outruns its consumer
   finds [try_push] returning [false] and stalls — the simulator itself
   is a backpressured pipeline, mirroring the paper's hop-by-hop story.
   Nothing is ever dropped. Blocking lives in the caller (Pdes), not
   here, so the per-message operations stay straight-line code. *)

type 'a t = {
  buf : 'a option array;
  mask : int;
  head : int Atomic.t; (* consumer cursor: next slot to pop *)
  tail : int Atomic.t; (* producer cursor: next slot to fill *)
  mutable pushed : int; (* producer-side total, read at barriers *)
  mutable popped : int; (* consumer-side total *)
}

(* sizing at wiring time, not per-message; bfc-lint: control-plane *)
let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

let create ~capacity =
  if capacity <= 0 then invalid_arg "Channel.create: capacity must be positive";
  let cap = next_pow2 capacity 1 in
  {
    buf = Array.make cap None;
    mask = cap - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    pushed = 0;
    popped = 0;
  }

let capacity t = t.mask + 1

let length t = Atomic.get t.tail - Atomic.get t.head

let is_empty t = length t = 0

(* Producer side. Returns [false] when the ring is full — the caller
   decides how to stall (the PDES shard spins with [Domain.cpu_relax]
   while the coordinator drains). *)
let try_push t x =
  let tail = Atomic.get t.tail in
  if tail - Atomic.get t.head > t.mask then false
  else begin
    Array.unsafe_set t.buf (tail land t.mask) (Some x);
    Atomic.set t.tail (tail + 1);
    t.pushed <- t.pushed + 1;
    true
  end

(* Consumer side. The popped slot is cleared so the ring never pins a
   message for a full lap. *)
let pop t =
  let head = Atomic.get t.head in
  if Atomic.get t.tail = head then None
  else begin
    let i = head land t.mask in
    let x = Array.unsafe_get t.buf i in
    Array.unsafe_set t.buf i None;
    Atomic.set t.head (head + 1);
    t.popped <- t.popped + 1;
    x
  end

(* Consumer-side bulk pop: drain everything currently visible. One
   acquire per element (via [pop]) keeps the proof obligations identical
   to the single-pop path; the win is the caller's loop, not the ring.
   Runs on the coordinator at barriers; bfc-lint: control-plane *)
let drain t f =
  let n = ref 0 in
  let continue = ref true in
  while !continue do
    match pop t with
    | Some x ->
      incr n;
      f x
    | None -> continue := false
  done;
  !n

let pushed t = t.pushed

let popped t = t.popped
