(* The pending-event queue is backend-selectable: the 4-ary heap
   ([Bfc_util.Heap], O(log n)) or the hierarchical timing wheel
   ([Bfc_util.Wheel], amortized O(1)). Both order entries by strict
   (time, rank, insertion-seq) — so the two backends replay
   byte-identical schedules; the wheel is the default because the
   engine's event mix is
   dominated by short-horizon reusable rearms (see bench --macro /
   --sched A/B in BENCH_engine.json).

   The rank packs two components: the clock at the moment of insertion
   (high bits) and a caller-supplied canonical key (low [key_bits] bits,
   default [key_mask]). Within one simulation the clock is monotone, so
   for events inserted at different instants the order is exactly the
   classic (time, insertion order). The two refinements exist for the
   PDES barrier ([Bfc_sim.Pdes]), which must insert a cross-shard
   delivery at the end of the window that produced it — later than the
   sequential run would have inserted it — yet have it execute in
   exactly the sequential position:

   - [at ~sent] stamps the event with its virtual send time, so it
     sorts among same-time events as if inserted back then;
   - [~key] (ports pass their gid when scheduling deliveries) breaks
     the remaining tie — several insertions at the same (time, clock)
     on different shards — by a globally-known physical identity
     instead of the insertion interleaving, which no shard can observe.
     The cost is that same-(time, clock) ties in a sequential run are
     canonicalized too (port deliveries sort by source gid, ahead of
     same-instant non-port events): a reordering of simultaneous
     events with no physical meaning, applied identically everywhere
     so sharded and sequential schedules agree byte-for-byte.

   The only observable divergence is tombstone handling: the heap pops
   every cancelled entry (a no-op step that still advances the clock),
   while the wheel purges tombstones that cascade before reaching level
   0. Purged tombstones can only affect where the clock coasts to after
   the last live event — never the order or timing of executed events. *)

type sched = Heap | Wheel

type t = {
  mutable clock : Time.t;
  q : queue;
  mutable live : int; (* scheduled, not yet fired, not cancelled *)
  mutable executed : int;
  mutable next_uid : int;
  (* self-profiling: per-event-class execution counts, queue-depth
     high-water mark and handle-reuse stats. Plain int stores, cheap
     enough to keep on unconditionally (see bench --macro). *)
  exec_by_class : int array; (* indexed by handle class *)
  mutable heap_hwm : int;
  mutable rearms : int;
  mutable cancels : int;
}

and queue =
  | Q_heap of handle Bfc_util.Heap.t
  | Q_wheel of handle Bfc_util.Wheel.t

and handle = {
  owner : t;
  cls : int; (* 0 one-shot, 1 reusable, 2 ticker *)
  mutable alive : bool;
  mutable fired : bool;
  mutable fn : unit -> unit;
}

type ticker = { mutable running : bool; tick_handle : handle }

let cls_one_shot = 0

let cls_reusable = 1

let cls_ticker = 2

type profile = {
  p_one_shot : int;
  p_reusable : int;
  p_ticker : int;
  p_heap_hwm : int;
  p_heap_capacity : int;
  p_rearms : int;
  p_cancels : int;
  p_executed : int;
  p_live : int;
}

(* Process-wide default backend, same pattern as [Pool.set_default_jobs]:
   harnesses (bench A/B, differential tests) flip it around experiment
   code that calls [create ()] deep inside. *)
let default_sched_ref = ref Wheel

let set_default_sched s = default_sched_ref := s

let default_sched () = !default_sched_ref

(* --- the single dispatch point between the two backends --- *)

let q_push q ~priority ~rank h =
  match q with
  | Q_heap hp -> Bfc_util.Heap.push hp ~rank ~priority h
  | Q_wheel w -> Bfc_util.Wheel.push w ~rank ~priority h

(* Insertion with a rank below the clock (the PDES barrier): the heap
   compares ranks anyway; the wheel needs its scan-insert entry point. *)
let q_push_late q ~priority ~rank h =
  match q with
  | Q_heap hp -> Bfc_util.Heap.push hp ~rank ~priority h
  | Q_wheel w -> Bfc_util.Wheel.push_late w ~priority ~rank h

(* Deadline of the head entry, or -1 when the queue is empty (event
   times are non-negative). *)
let q_head_time q =
  match q with
  | Q_heap hp -> if Bfc_util.Heap.is_empty hp then -1 else Bfc_util.Heap.peek_priority hp
  | Q_wheel w -> Bfc_util.Wheel.head_time w

let q_pop q =
  match q with
  | Q_heap hp -> Bfc_util.Heap.pop_min_exn hp
  | Q_wheel w -> Bfc_util.Wheel.pop_min_exn w

let q_length q =
  match q with Q_heap hp -> Bfc_util.Heap.length hp | Q_wheel w -> Bfc_util.Wheel.length w

let q_is_empty q =
  match q with Q_heap hp -> Bfc_util.Heap.is_empty hp | Q_wheel w -> Bfc_util.Wheel.is_empty w

let q_capacity q =
  match q with Q_heap hp -> Bfc_util.Heap.capacity hp | Q_wheel w -> Bfc_util.Wheel.capacity w

let create ?sched () =
  let q =
    match match sched with Some s -> s | None -> !default_sched_ref with
    | Heap -> Q_heap (Bfc_util.Heap.create ())
    | Wheel -> Q_wheel (Bfc_util.Wheel.create ~garbage:(fun h -> not h.alive) ())
  in
  {
    clock = 0;
    q;
    live = 0;
    executed = 0;
    next_uid = 0;
    exec_by_class = Array.make 3 0;
    heap_hwm = 0;
    rearms = 0;
    cancels = 0;
  }

let sched t = match t.q with Q_heap _ -> Heap | Q_wheel _ -> Wheel

let now t = t.clock

let fresh_uid t =
  let u = t.next_uid in
  t.next_uid <- u + 1;
  u

(* Queue-depth high-water mark, maintained at every push point. *)
let note_depth t =
  let d = q_length t.q in
  if d > t.heap_hwm then t.heap_hwm <- d

(* Rank packing: (insertion clock | canonical key). 43 clock bits cover
   ~2.4 hours of virtual nanoseconds before the shift overflows —
   far beyond any experiment horizon. *)
let key_bits = 20

let key_mask = (1 lsl key_bits) - 1

let rank_of ~clock ~key = (clock lsl key_bits) lor (key land key_mask)

let at ?sent ?(key = key_mask) t time fn =
  if time < t.clock then
    invalid_arg (Printf.sprintf "Sim.at: scheduling in the past (%d < %d)" time t.clock);
  let h = { owner = t; cls = cls_one_shot; alive = true; fired = false; fn } in
  (match sent with
  | None -> q_push t.q ~priority:time ~rank:(rank_of ~clock:t.clock ~key) h
  | Some s ->
    if s < 0 || s > t.clock then
      invalid_arg (Printf.sprintf "Sim.at: ~sent out of range (%d, clock %d)" s t.clock);
    q_push_late t.q ~priority:time ~rank:(rank_of ~clock:s ~key) h);
  note_depth t;
  t.live <- t.live + 1;
  h

let after ?key t delay fn = at ?key t (t.clock + max 0 delay) fn

(* Reusable handles: [make_handle] builds an unarmed handle once; [rearm]
   puts it back in the queue. Steady-state periodic or chained events (port
   wakeups, in-flight deliveries) allocate nothing per occurrence. A handle
   that was [cancel]led while armed still has a stale queue entry and must
   not be rearmed before its original deadline passes — the engine's own
   users (Port) never cancel reusable handles. *)
let make_handle t fn = { owner = t; cls = cls_reusable; alive = false; fired = false; fn }

let rearm ?(key = key_mask) h ~at:time =
  let t = h.owner in
  if h.alive && not h.fired then invalid_arg "Sim.rearm: handle is already armed";
  if time < t.clock then
    invalid_arg (Printf.sprintf "Sim.rearm: scheduling in the past (%d < %d)" time t.clock);
  h.alive <- true;
  h.fired <- false;
  q_push t.q ~priority:time ~rank:(rank_of ~clock:t.clock ~key) h;
  note_depth t;
  t.live <- t.live + 1;
  t.rearms <- t.rearms + 1

(* Cancellation only tombstones the queue entry (neither backend supports
   removal from the middle), but the closure is dropped eagerly: a cancelled
   RTO's closure is often the only thing keeping a finished flow's transport
   state alive, and the stale entry can outlive the whole run. Reusable
   handles keep their [fn] — [rearm] exists to reuse it. *)
let noop_fn () = ()

let cancel h =
  if h.alive && not h.fired then begin
    h.alive <- false;
    if h.cls <> cls_reusable then h.fn <- noop_fn;
    h.owner.live <- h.owner.live - 1;
    h.owner.cancels <- h.owner.cancels + 1
  end

let pending h = h.alive && not h.fired

(* The ticker owns a single handle for its whole life: after each tick it
   resets [fired] and pushes the same handle back, so a steady-state ticker
   allocates nothing per period. [stop_ticker] can then cancel the armed
   handle outright instead of leaving a live closure in the queue until its
   deadline. *)
let every t ~period fn =
  let rec tick = { running = true; tick_handle = h }
  and h =
    {
      owner = t;
      cls = cls_ticker;
      alive = true;
      fired = false;
      fn =
        (fun () ->
          if tick.running then begin
            fn ();
            if tick.running then begin
              h.fired <- false;
              q_push t.q ~priority:(t.clock + period) ~rank:(rank_of ~clock:t.clock ~key:key_mask) h;
              note_depth t;
              t.live <- t.live + 1
            end
          end);
    }
  in
  q_push t.q ~priority:(t.clock + period) ~rank:(rank_of ~clock:t.clock ~key:key_mask) h;
  note_depth t;
  t.live <- t.live + 1;
  tick

let stop_ticker tick =
  if tick.running then begin
    tick.running <- false;
    cancel tick.tick_handle
  end

let step t =
  let time = q_head_time t.q in
  if time < 0 then false
  else begin
    let h = q_pop t.q in
    t.clock <- time;
    if h.alive && not h.fired then begin
      h.fired <- true;
      t.live <- t.live - 1;
      t.executed <- t.executed + 1;
      t.exec_by_class.(h.cls) <- t.exec_by_class.(h.cls) + 1;
      h.fn ();
      (* A fired one-shot never runs again; drop the closure so recycled
         queue slots that still point at the handle can't keep whatever
         it captured (often a flow's transport state) alive. *)
      if h.cls = cls_one_shot then h.fn <- noop_fn;
      true
    end
    else false
  end

let run t ~until =
  let executed = ref 0 in
  let continue = ref true in
  while !continue do
    let head = q_head_time t.q in
    if head < 0 || head > until then continue := false
    else if step t then incr executed
  done;
  if t.clock < until then t.clock <- until;
  !executed

let safety_cap = 1 lsl 30

exception Runaway of { now : Time.t; pending_events : int }

let () =
  Printexc.register_printer (function
    | Runaway { now; pending_events } ->
      Some
        (Printf.sprintf "Sim.Runaway (event cap exceeded at t=%dns with %d pending events)" now
           pending_events)
    | _ -> None)

let run_until_idle ?(cap = safety_cap) t =
  let executed = ref 0 in
  (* [step] can return false without popping when a wheel cascade purges
     the last tombstones, so re-check emptiness each iteration. *)
  while not (q_is_empty t.q) do
    if step t then incr executed;
    if !executed > cap then raise (Runaway { now = t.clock; pending_events = t.live })
  done;
  !executed

(* Head-entry deadline, tombstones included: a cancelled head reports its
   stale time, which is <= the first live deadline — callers using this as
   a horizon bound (the PDES window coordinator) only get a conservative
   (smaller) window out of that, never a wrong one. *)
let next_time t = q_head_time t.q

let pending_events t = t.live

let executed_events t = t.executed

let profile t =
  {
    p_one_shot = t.exec_by_class.(cls_one_shot);
    p_reusable = t.exec_by_class.(cls_reusable);
    p_ticker = t.exec_by_class.(cls_ticker);
    p_heap_hwm = t.heap_hwm;
    p_heap_capacity = q_capacity t.q;
    p_rearms = t.rearms;
    p_cancels = t.cancels;
    p_executed = t.executed;
    p_live = t.live;
  }
