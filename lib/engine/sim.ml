type t = {
  mutable clock : Time.t;
  heap : handle Bfc_util.Heap.t;
  mutable live : int; (* scheduled, not yet fired, not cancelled *)
  mutable executed : int;
  mutable next_uid : int;
  (* self-profiling: per-event-class execution counts, heap-depth
     high-water mark and handle-reuse stats. Plain int stores, cheap
     enough to keep on unconditionally (see bench --macro). *)
  exec_by_class : int array; (* indexed by handle class *)
  mutable heap_hwm : int;
  mutable rearms : int;
  mutable cancels : int;
}

and handle = {
  owner : t;
  cls : int; (* 0 one-shot, 1 reusable, 2 ticker *)
  mutable alive : bool;
  mutable fired : bool;
  mutable fn : unit -> unit;
}

type ticker = { mutable running : bool; tick_handle : handle }

let cls_one_shot = 0

let cls_reusable = 1

let cls_ticker = 2

type profile = {
  p_one_shot : int;
  p_reusable : int;
  p_ticker : int;
  p_heap_hwm : int;
  p_heap_capacity : int;
  p_rearms : int;
  p_cancels : int;
  p_executed : int;
  p_live : int;
}

let create () =
  {
    clock = 0;
    heap = Bfc_util.Heap.create ();
    live = 0;
    executed = 0;
    next_uid = 0;
    exec_by_class = Array.make 3 0;
    heap_hwm = 0;
    rearms = 0;
    cancels = 0;
  }

let now t = t.clock

let fresh_uid t =
  let u = t.next_uid in
  t.next_uid <- u + 1;
  u

(* Heap-depth high-water mark, maintained at every push point. *)
let note_depth t =
  let d = Bfc_util.Heap.length t.heap in
  if d > t.heap_hwm then t.heap_hwm <- d

let at t time fn =
  if time < t.clock then
    invalid_arg (Printf.sprintf "Sim.at: scheduling in the past (%d < %d)" time t.clock);
  let h = { owner = t; cls = cls_one_shot; alive = true; fired = false; fn } in
  Bfc_util.Heap.push t.heap ~priority:time h;
  note_depth t;
  t.live <- t.live + 1;
  h

let after t delay fn = at t (t.clock + max 0 delay) fn

(* Reusable handles: [make_handle] builds an unarmed handle once; [rearm]
   puts it back in the heap. Steady-state periodic or chained events (port
   wakeups, in-flight deliveries) allocate nothing per occurrence. A handle
   that was [cancel]led while armed still has a stale heap entry and must
   not be rearmed before its original deadline passes — the engine's own
   users (Port) never cancel reusable handles. *)
let make_handle t fn = { owner = t; cls = cls_reusable; alive = false; fired = false; fn }

let rearm h ~at:time =
  let t = h.owner in
  if h.alive && not h.fired then invalid_arg "Sim.rearm: handle is already armed";
  if time < t.clock then
    invalid_arg (Printf.sprintf "Sim.rearm: scheduling in the past (%d < %d)" time t.clock);
  h.alive <- true;
  h.fired <- false;
  Bfc_util.Heap.push t.heap ~priority:time h;
  note_depth t;
  t.live <- t.live + 1;
  t.rearms <- t.rearms + 1

let cancel h =
  if h.alive && not h.fired then begin
    h.alive <- false;
    h.owner.live <- h.owner.live - 1;
    h.owner.cancels <- h.owner.cancels + 1
  end

let pending h = h.alive && not h.fired

(* The ticker owns a single handle for its whole life: after each tick it
   resets [fired] and pushes the same handle back, so a steady-state ticker
   allocates nothing per period. [stop_ticker] can then cancel the armed
   handle outright instead of leaving a live closure in the heap until its
   deadline. *)
let every t ~period fn =
  let rec tick = { running = true; tick_handle = h }
  and h =
    {
      owner = t;
      cls = cls_ticker;
      alive = true;
      fired = false;
      fn =
        (fun () ->
          if tick.running then begin
            fn ();
            if tick.running then begin
              h.fired <- false;
              Bfc_util.Heap.push t.heap ~priority:(t.clock + period) h;
              note_depth t;
              t.live <- t.live + 1
            end
          end);
    }
  in
  Bfc_util.Heap.push t.heap ~priority:(t.clock + period) h;
  note_depth t;
  t.live <- t.live + 1;
  tick

let stop_ticker tick =
  if tick.running then begin
    tick.running <- false;
    cancel tick.tick_handle
  end

let step t =
  if Bfc_util.Heap.is_empty t.heap then false
  else begin
    let time = Bfc_util.Heap.peek_priority t.heap in
    let h = Bfc_util.Heap.pop_min_exn t.heap in
    t.clock <- time;
    if h.alive && not h.fired then begin
      h.fired <- true;
      t.live <- t.live - 1;
      t.executed <- t.executed + 1;
      t.exec_by_class.(h.cls) <- t.exec_by_class.(h.cls) + 1;
      h.fn ();
      true
    end
    else false
  end

let run t ~until =
  let executed = ref 0 in
  let continue = ref true in
  while !continue do
    if Bfc_util.Heap.is_empty t.heap then continue := false
    else if Bfc_util.Heap.peek_priority t.heap <= until then begin
      if step t then incr executed
    end
    else continue := false
  done;
  if t.clock < until then t.clock <- until;
  !executed

let safety_cap = 1 lsl 30

exception Runaway of { now : Time.t; pending_events : int }

let () =
  Printexc.register_printer (function
    | Runaway { now; pending_events } ->
      Some
        (Printf.sprintf "Sim.Runaway (event cap exceeded at t=%dns with %d pending events)" now
           pending_events)
    | _ -> None)

let run_until_idle ?(cap = safety_cap) t =
  let executed = ref 0 in
  while not (Bfc_util.Heap.is_empty t.heap) do
    if step t then incr executed;
    if !executed > cap then raise (Runaway { now = t.clock; pending_events = t.live })
  done;
  !executed

let pending_events t = t.live

let executed_events t = t.executed

let profile t =
  {
    p_one_shot = t.exec_by_class.(cls_one_shot);
    p_reusable = t.exec_by_class.(cls_reusable);
    p_ticker = t.exec_by_class.(cls_ticker);
    p_heap_hwm = t.heap_hwm;
    p_heap_capacity = Bfc_util.Heap.capacity t.heap;
    p_rearms = t.rearms;
    p_cancels = t.cancels;
    p_executed = t.executed;
    p_live = t.live;
  }
