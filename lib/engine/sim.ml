type handle = { mutable alive : bool; mutable fired : bool; fn : unit -> unit }

type t = { mutable clock : Time.t; heap : handle Bfc_util.Heap.t }

type ticker = { mutable running : bool }

let create () = { clock = 0; heap = Bfc_util.Heap.create () }

let now t = t.clock

let at t time fn =
  if time < t.clock then
    invalid_arg (Printf.sprintf "Sim.at: scheduling in the past (%d < %d)" time t.clock);
  let h = { alive = true; fired = false; fn } in
  Bfc_util.Heap.push t.heap ~priority:time h;
  h

let after t delay fn = at t (t.clock + max 0 delay) fn

let cancel h = if not h.fired then h.alive <- false

let pending h = h.alive && not h.fired

let every t ~period fn =
  let tick = { running = true } in
  let rec arm () =
    ignore
      (after t period (fun () ->
           if tick.running then begin
             fn ();
             arm ()
           end))
  in
  arm ();
  tick

let stop_ticker tick = tick.running <- false

let step t =
  match Bfc_util.Heap.pop t.heap with
  | None -> false
  | Some (time, h) ->
    t.clock <- time;
    if h.alive then begin
      h.fired <- true;
      h.fn ();
      true
    end
    else false

let run t ~until =
  let executed = ref 0 in
  let continue = ref true in
  while !continue do
    match Bfc_util.Heap.min_priority t.heap with
    | Some time when time <= until -> if step t then incr executed
    | Some _ | None -> continue := false
  done;
  if t.clock < until then t.clock <- until;
  !executed

let safety_cap = 1 lsl 30

exception Runaway of { now : Time.t; pending_events : int }

let () =
  Printexc.register_printer (function
    | Runaway { now; pending_events } ->
      Some
        (Printf.sprintf "Sim.Runaway (event cap exceeded at t=%dns with %d pending events)" now
           pending_events)
    | _ -> None)

let run_until_idle ?(cap = safety_cap) t =
  let executed = ref 0 in
  while not (Bfc_util.Heap.is_empty t.heap) do
    if step t then incr executed;
    if !executed > cap then
      raise (Runaway { now = t.clock; pending_events = Bfc_util.Heap.length t.heap })
  done;
  !executed

let pending_events t = Bfc_util.Heap.length t.heap
