(* The pending-event queue is backend-selectable: the 4-ary heap
   ([Bfc_util.Heap], O(log n)) or the hierarchical timing wheel
   ([Bfc_util.Wheel], amortized O(1)). Both order entries by strict
   (time, rank, insertion-seq) — so the two backends replay
   byte-identical schedules; the wheel is the default because the
   engine's event mix is
   dominated by short-horizon reusable rearms (see bench --macro /
   --sched A/B in BENCH_engine.json).

   The rank packs two components: the clock at the moment of insertion
   (high bits) and a caller-supplied canonical key (low [key_bits] bits,
   default [key_mask]). Within one simulation the clock is monotone, so
   for events inserted at different instants the order is exactly the
   classic (time, insertion order). The two refinements exist for the
   PDES barrier ([Bfc_sim.Pdes]), which must insert a cross-shard
   delivery at the end of the window that produced it — later than the
   sequential run would have inserted it — yet have it execute in
   exactly the sequential position:

   - [at ~sent] stamps the event with its virtual send time, so it
     sorts among same-time events as if inserted back then;
   - [~key] (ports pass their gid when scheduling deliveries) breaks
     the remaining tie — several insertions at the same (time, clock)
     on different shards — by a globally-known physical identity
     instead of the insertion interleaving, which no shard can observe.
     The cost is that same-(time, clock) ties in a sequential run are
     canonicalized too (port deliveries sort by source gid, ahead of
     same-instant non-port events): a reordering of simultaneous
     events with no physical meaning, applied identically everywhere
     so sharded and sequential schedules agree byte-for-byte.

   Event representation (the typed event table). A queue entry is a
   [handle]; its [cls] field selects how it fires:

   - classes 0–2 (closure one-shot / reusable / ticker) carry a
     [unit -> unit] closure — the original representation, kept for the
     control plane and as the source-compatible fallback behind
     [at]/[after]/[make_handle]/[every];
   - classes 3+ are typed: the handle carries two immediate int args
     ([a0], [a1]) and fires through a per-class executor registered
     once per (sim, class) with [register_class]. Typed handles are
     pooled — [post] pulls one from a free list, firing or purging
     returns it — so the steady-state hot path (deliveries, watchdogs,
     RTOs, pacers) allocates nothing per event and dispatches through
     one direct [match] + array-indexed call to a single shared
     executor per class, instead of an indirect call to one of
     thousands of short-lived closures.

   Pooled-handle lifecycle: a slot is on the free list iff no queue
   entry references it. Cancellation ([cancel_token]) only tombstones —
   it bumps the handle's generation so the token dies, but the slot is
   reclaimed at the point the queue disposes of the entry: a pop (heap
   tombstones, wheel tombstones that reach level 0) or the wheel's
   garbage purge (the [release] hook). Reclaiming any earlier would
   let the slot be re-armed while the stale entry is still queued, and
   the stale entry would then fire the new event at the old deadline.
   Generations start at 1 and only grow, so a token is never 0 and —
   with the [safety_cap] bounding lifetime executions at 2^30 — never
   collides with a previous incarnation of its slot.

   Same-instant batch execution: the run loop drains the maximal run of
   head entries sharing the head deadline whose rank is below
   [time lsl key_bits] — i.e. inserted at a strictly earlier clock —
   and executes them as one batch. Events pushed by the batch at the
   same instant carry rank >= the bound (the clock has caught up), so
   they sort after every drained entry and cannot be overtaken; entries
   already queued with rank >= the bound pop singly, because a new push
   at the same instant with a smaller canonical key may still belong
   before them. That is the whole ordering argument: the (time, rank,
   seq) contract is untouched, batching only amortizes the per-event
   head probe and cursor repositioning (3 wheel repositions per event
   before, 1 per batch + 1 per pop now). The one scheduling form that
   could violate the bound — [at ~sent], whose rank is below the
   current clock — is only ever used between [run] calls (the PDES
   window coordinator), never from inside an executing event; see
   DESIGN.md §16 for the proof obligation.

   The only observable divergence between backends is tombstone
   handling: the heap pops every cancelled entry (a no-op step that
   still advances the clock), while the wheel purges tombstones that
   cascade before reaching level 0. Purged tombstones can only affect
   where the clock coasts to after the last live event — never the
   order or timing of executed events. *)

type sched = Heap | Wheel

(* Per-class executor state: each subsystem extends this with its own
   constructor (a registry of ports, switches, flows...) so executors
   get their targets by int index without the sim depending on any of
   them. *)
type user = ..

type user += No_state

type t = {
  mutable clock : Time.t;
  q : queue;
  mutable live : int; (* scheduled, not yet fired, not cancelled *)
  mutable executed : int;
  mutable next_uid : int;
  (* self-profiling: per-event-class execution counts, queue-depth
     high-water mark and handle-reuse stats. Plain int stores, cheap
     enough to keep on unconditionally (see bench --macro). *)
  exec_by_class : int array; (* indexed by handle class *)
  mutable heap_hwm : int;
  mutable rearms : int;
  mutable cancels : int;
  (* typed event table: per-class executors and their state... *)
  exec_fn : (user -> int -> int -> unit) array;
  exec_st : user array;
  (* ...the handle pool behind [post] (slot-indexed, LIFO free list)... *)
  mutable pool : handle array;
  mutable pool_len : int;
  mutable free : int array;
  mutable free_len : int;
  (* ...and the one callback the batched drain fires entries through,
     preallocated so the drain itself allocates and stores nothing. *)
  mutable fire_cb : handle -> unit;
}

and queue =
  | Q_heap of handle Bfc_util.Heap.t
  | Q_wheel of handle Bfc_util.Wheel.t

and handle = {
  owner : t;
  mutable cls : int; (* 0 one-shot, 1 reusable, 2 ticker, 3+ typed *)
  mutable alive : bool;
  mutable fired : bool;
  mutable fn : unit -> unit;
  mutable a0 : int; (* typed classes: immediate args *)
  mutable a1 : int;
  mutable gen : int; (* typed classes: token generation, >= 1 *)
  slot : int; (* pool slot, or -1 for closure handles *)
}

type ticker = { mutable running : bool; tick_handle : handle }

let cls_one_shot = 0

let cls_reusable = 1

let cls_ticker = 2

(* Typed event classes. The ids are engine-reserved names so call sites
   across libraries agree without a central registry; they are not part
   of the rank and never affect ordering. *)
let cls_port_tx = 3

let cls_delivery = 4

let cls_switch_ctrl = 5

let cls_nic_ctrl = 6

let cls_flow_timeout = 7

let cls_pdes_barrier = 8

let cls_xpass_resume = 9

let n_classes = 16

type profile = {
  p_one_shot : int;
  p_reusable : int;
  p_ticker : int;
  p_typed : int;
  p_heap_hwm : int;
  p_heap_capacity : int;
  p_rearms : int;
  p_cancels : int;
  p_executed : int;
  p_live : int;
}

(* Process-wide default backend, same pattern as [Pool.set_default_jobs]:
   harnesses (bench A/B, differential tests) flip it around experiment
   code that calls [create ()] deep inside. *)
let default_sched_ref = ref Wheel

let set_default_sched s = default_sched_ref := s

let default_sched () = !default_sched_ref

(* --- the single dispatch point between the two backends --- *)

let q_push q ~priority ~rank h =
  match q with
  | Q_heap hp -> Bfc_util.Heap.push hp ~rank ~priority h
  | Q_wheel w -> Bfc_util.Wheel.push w ~rank ~priority h

(* Insertion with a rank below the clock (the PDES barrier): the heap
   compares ranks anyway; the wheel needs its scan-insert entry point. *)
let q_push_late q ~priority ~rank h =
  match q with
  | Q_heap hp -> Bfc_util.Heap.push hp ~rank ~priority h
  | Q_wheel w -> Bfc_util.Wheel.push_late w ~priority ~rank h

(* Deadline of the head entry, or -1 when the queue is empty (event
   times are non-negative). *)
let q_head_time q =
  match q with
  | Q_heap hp -> if Bfc_util.Heap.is_empty hp then -1 else Bfc_util.Heap.peek_priority hp
  | Q_wheel w -> Bfc_util.Wheel.head_time w

let q_pop q =
  match q with
  | Q_heap hp -> Bfc_util.Heap.pop_min_exn hp
  | Q_wheel w -> Bfc_util.Wheel.pop_min_exn w

let q_drain_run q ~time ~rank_bound f =
  match q with
  | Q_heap hp -> Bfc_util.Heap.drain_run hp ~time ~rank_bound f
  | Q_wheel w -> Bfc_util.Wheel.drain_run w ~time ~rank_bound f

let q_length q =
  match q with Q_heap hp -> Bfc_util.Heap.length hp | Q_wheel w -> Bfc_util.Wheel.length w

let q_is_empty q =
  match q with Q_heap hp -> Bfc_util.Heap.is_empty hp | Q_wheel w -> Bfc_util.Wheel.is_empty w

let q_capacity q =
  match q with Q_heap hp -> Bfc_util.Heap.capacity hp | Q_wheel w -> Bfc_util.Wheel.capacity w

let noop_fn () = ()

let unregistered_exec (_ : user) (_ : int) (_ : int) =
  invalid_arg "Sim: event posted to an unregistered class"

(* Return a fired or purged pooled handle's slot to the free list. Only
   called at queue-disposal points (see the lifecycle comment up top). *)
let free_slot t h =
  if t.free_len = Array.length t.free then begin
    let ncap = max 16 (2 * t.free_len) in
    let nf = Array.make ncap 0 in
    Array.blit t.free 0 nf 0 t.free_len;
    t.free <- nf
  end;
  Array.unsafe_set t.free t.free_len h.slot;
  t.free_len <- t.free_len + 1

(* Disposal of a popped dead entry: pooled handles go back to the free
   list ([gen] was already bumped when the token was cancelled). *)
let recycle_dead t h = if h.slot >= 0 then free_slot t h

(* Fire one live handle: the direct-match dispatch point. Closure
   classes call through [fn]; typed classes index the executor table
   and then return their pooled handle. The generation bump comes after
   the executor runs, so [token_pending] on the firing event's own
   token already answers false (fired is set) without the executor
   observing a recycled slot. *)
let fire t h =
  h.fired <- true;
  t.live <- t.live - 1;
  t.executed <- t.executed + 1;
  let c = h.cls in
  t.exec_by_class.(c) <- t.exec_by_class.(c) + 1;
  if c <= cls_ticker then begin
    h.fn ();
    (* A fired one-shot never runs again; drop the closure so recycled
       queue slots that still point at the handle can't keep whatever
       it captured (often a flow's transport state) alive. *)
    if c = cls_one_shot then h.fn <- noop_fn
  end
  else begin
    (Array.unsafe_get t.exec_fn c) (Array.unsafe_get t.exec_st c) h.a0 h.a1;
    h.gen <- h.gen + 1;
    free_slot t h
  end

let create ?sched () =
  let q =
    match match sched with Some s -> s | None -> !default_sched_ref with
    | Heap -> Q_heap (Bfc_util.Heap.create ())
    | Wheel ->
      (* the release hook reclaims purged pooled tombstones — without
         it a cancelled typed event whose entry cascades to its death
         would leak its pool slot forever *)
      Q_wheel
        (Bfc_util.Wheel.create
           ~garbage:(fun h -> not h.alive)
           ~release:(fun h -> recycle_dead h.owner h)
           ())
  in
  let t =
    {
      clock = 0;
      q;
      live = 0;
      executed = 0;
      next_uid = 0;
      exec_by_class = Array.make n_classes 0;
      heap_hwm = 0;
      rearms = 0;
      cancels = 0;
      exec_fn = Array.make n_classes unregistered_exec;
      exec_st = Array.make n_classes No_state;
      pool = [||];
      pool_len = 0;
      free = [||];
      free_len = 0;
      fire_cb = ignore;
    }
  in
  let sentinel =
    { owner = t; cls = cls_one_shot; alive = false; fired = true; fn = noop_fn;
      a0 = 0; a1 = 0; gen = 0; slot = -1 }
  in
  t.pool <- Array.make 16 sentinel;
  t.fire_cb <-
    (fun h -> if h.alive && not h.fired then fire t h else recycle_dead t h);
  t

let sched t = match t.q with Q_heap _ -> Heap | Q_wheel _ -> Wheel

let now t = t.clock

let fresh_uid t =
  let u = t.next_uid in
  t.next_uid <- u + 1;
  u

(* Queue-depth high-water mark, maintained at every push point. *)
let note_depth t =
  let d = q_length t.q in
  if d > t.heap_hwm then t.heap_hwm <- d

(* Rank packing: (insertion clock | canonical key). 43 clock bits cover
   ~2.4 hours of virtual nanoseconds before the shift overflows —
   far beyond any experiment horizon. *)
let key_bits = 20

let key_mask = (1 lsl key_bits) - 1

let rank_of ~clock ~key = (clock lsl key_bits) lor (key land key_mask)

let at ?sent ?(key = key_mask) t time fn =
  if time < t.clock then
    invalid_arg (Printf.sprintf "Sim.at: scheduling in the past (%d < %d)" time t.clock);
  let h =
    { owner = t; cls = cls_one_shot; alive = true; fired = false; fn;
      a0 = 0; a1 = 0; gen = 0; slot = -1 }
  in
  (match sent with
  | None -> q_push t.q ~priority:time ~rank:(rank_of ~clock:t.clock ~key) h
  | Some s ->
    if s < 0 || s > t.clock then
      invalid_arg (Printf.sprintf "Sim.at: ~sent out of range (%d, clock %d)" s t.clock);
    q_push_late t.q ~priority:time ~rank:(rank_of ~clock:s ~key) h);
  note_depth t;
  t.live <- t.live + 1;
  h

let after ?key t delay fn = at ?key t (t.clock + max 0 delay) fn

(* ------------------------- typed event posts ------------------------ *)

let register_class t ~cls ~state ~exec =
  if cls <= cls_ticker || cls >= n_classes then
    invalid_arg (Printf.sprintf "Sim.register_class: class %d out of range" cls);
  t.exec_fn.(cls) <- exec;
  t.exec_st.(cls) <- state

let class_state t ~cls =
  if cls > cls_ticker && cls < n_classes && t.exec_fn.(cls) != unregistered_exec then
    Some t.exec_st.(cls)
  else None

(* Token packing: slot in the high bits, generation (always >= 1, and
   bounded by slot executions + cancellations <= safety_cap < 2^31) in
   the low 31 — so 0 never names a live event and callers can use it as
   "none" in a bare mutable int field. *)
type token = int

let gen_bits = 31

let gen_mask = (1 lsl gen_bits) - 1

let token_of h = (h.slot lsl gen_bits) lor (h.gen land gen_mask)

let alloc_pooled t =
  if t.free_len > 0 then begin
    t.free_len <- t.free_len - 1;
    Array.unsafe_get t.pool (Array.unsafe_get t.free t.free_len)
  end
  else begin
    let slot = t.pool_len in
    if slot = Array.length t.pool then begin
      let ncap = 2 * slot in
      let np = Array.make ncap (Array.unsafe_get t.pool 0) in
      Array.blit t.pool 0 np 0 slot;
      t.pool <- np
    end;
    let h =
      { owner = t; cls = cls_one_shot; alive = false; fired = false; fn = noop_fn;
        a0 = 0; a1 = 0; gen = 1; slot }
    in
    t.pool.(slot) <- h;
    t.pool_len <- slot + 1;
    h
  end

let post_handle ?sent ?(key = key_mask) t time ~cls ~a0 ~a1 =
  if time < t.clock then
    invalid_arg (Printf.sprintf "Sim.post: scheduling in the past (%d < %d)" time t.clock);
  if cls <= cls_ticker || cls >= n_classes then
    invalid_arg (Printf.sprintf "Sim.post: class %d out of range" cls);
  let h = alloc_pooled t in
  h.cls <- cls;
  h.a0 <- a0;
  h.a1 <- a1;
  h.alive <- true;
  h.fired <- false;
  (match sent with
  | None -> q_push t.q ~priority:time ~rank:(rank_of ~clock:t.clock ~key) h
  | Some s ->
    if s < 0 || s > t.clock then
      invalid_arg (Printf.sprintf "Sim.post: ~sent out of range (%d, clock %d)" s t.clock);
    q_push_late t.q ~priority:time ~rank:(rank_of ~clock:s ~key) h);
  note_depth t;
  t.live <- t.live + 1;
  h

let post ?sent ?key t time ~cls ~a0 ~a1 =
  ignore (post_handle ?sent ?key t time ~cls ~a0 ~a1)

let post_token ?sent ?key t time ~cls ~a0 ~a1 =
  token_of (post_handle ?sent ?key t time ~cls ~a0 ~a1)

let token_pending t token =
  token <> 0
  &&
  let slot = token lsr gen_bits in
  slot < t.pool_len
  &&
  let h = Array.unsafe_get t.pool slot in
  h.gen land gen_mask = token land gen_mask && h.alive && not h.fired

let cancel_token t token =
  if token <> 0 then begin
    let slot = token lsr gen_bits in
    if slot < t.pool_len then begin
      let h = Array.unsafe_get t.pool slot in
      if h.gen land gen_mask = token land gen_mask && h.alive && not h.fired then begin
        (* tombstone only: the queue entry still references the slot,
           so it is reclaimed when the entry pops or is purged *)
        h.alive <- false;
        h.gen <- h.gen + 1;
        t.live <- t.live - 1;
        t.cancels <- t.cancels + 1
      end
    end
  end

(* Reusable handles: [make_handle] builds an unarmed handle once; [rearm]
   puts it back in the queue. Steady-state periodic or chained events (port
   wakeups, in-flight deliveries) allocate nothing per occurrence. A handle
   that was [cancel]led while armed still has a stale queue entry and must
   not be rearmed before its original deadline passes — the engine's own
   users (Port) never cancel reusable handles. *)
let make_handle t fn =
  { owner = t; cls = cls_reusable; alive = false; fired = false; fn;
    a0 = 0; a1 = 0; gen = 0; slot = -1 }

let rearm ?(key = key_mask) h ~at:time =
  let t = h.owner in
  if h.alive && not h.fired then invalid_arg "Sim.rearm: handle is already armed";
  if time < t.clock then
    invalid_arg (Printf.sprintf "Sim.rearm: scheduling in the past (%d < %d)" time t.clock);
  h.alive <- true;
  h.fired <- false;
  q_push t.q ~priority:time ~rank:(rank_of ~clock:t.clock ~key) h;
  note_depth t;
  t.live <- t.live + 1;
  t.rearms <- t.rearms + 1

(* Cancellation only tombstones the queue entry (neither backend supports
   removal from the middle), but the closure is dropped eagerly: a cancelled
   RTO's closure is often the only thing keeping a finished flow's transport
   state alive, and the stale entry can outlive the whole run. Reusable
   handles keep their [fn] — [rearm] exists to reuse it. *)
let cancel h =
  if h.alive && not h.fired then begin
    h.alive <- false;
    if h.cls <> cls_reusable then h.fn <- noop_fn;
    h.owner.live <- h.owner.live - 1;
    h.owner.cancels <- h.owner.cancels + 1
  end

let pending h = h.alive && not h.fired

(* The ticker owns a single handle for its whole life: after each tick it
   resets [fired] and pushes the same handle back, so a steady-state ticker
   allocates nothing per period. [stop_ticker] can then cancel the armed
   handle outright instead of leaving a live closure in the queue until its
   deadline. *)
let every t ~period fn =
  let rec tick = { running = true; tick_handle = h }
  and h =
    {
      owner = t;
      cls = cls_ticker;
      alive = true;
      fired = false;
      fn =
        (fun () ->
          if tick.running then begin
            fn ();
            if tick.running then begin
              h.fired <- false;
              q_push t.q ~priority:(t.clock + period) ~rank:(rank_of ~clock:t.clock ~key:key_mask) h;
              note_depth t;
              t.live <- t.live + 1
            end
          end);
      a0 = 0;
      a1 = 0;
      gen = 0;
      slot = -1;
    }
  in
  q_push t.q ~priority:(t.clock + period) ~rank:(rank_of ~clock:t.clock ~key:key_mask) h;
  note_depth t;
  t.live <- t.live + 1;
  tick

let stop_ticker tick =
  if tick.running then begin
    tick.running <- false;
    cancel tick.tick_handle
  end

let step t =
  let time = q_head_time t.q in
  if time < 0 then false
  else begin
    let h = q_pop t.q in
    t.clock <- time;
    if h.alive && not h.fired then begin
      fire t h;
      true
    end
    else begin
      recycle_dead t h;
      false
    end
  end

(* Execute the same-instant batch at head deadline [time]; returns how
   many live events ran. [q_drain_run]'s rank bound admits only entries
   inserted at strictly earlier clocks (see the header comment for why
   that makes the drain order-exact), and the drain is guaranteed
   non-empty when the head deadline is [time], so the clock can advance
   before the first callback. The n = 0 fallback covers the one odd
   case — a garbage purge emptied the queue between the head probe and
   the drain — by deferring to the single-pop path. *)
let exec_batch t time =
  t.clock <- time;
  let before = t.executed in
  let n = q_drain_run t.q ~time ~rank_bound:(time lsl key_bits) t.fire_cb in
  if n = 0 then (if step t then 1 else 0) else t.executed - before

(* The run loops are specialized per backend. The wheel profits from
   batch draining — one cursor reposition covers a whole same-instant
   run instead of three probes per event — while the heap has no cursor
   to amortize and pays a sift per pop regardless, so the batch
   plumbing is pure overhead there; it keeps the tight peek/pop loop.
   Both execute through [fire], so the ordering and the executed
   accounting are identical; the A/B equal-event-count assertion in
   bench --macro and the dispatch differential suite hold the two
   shapes to the same schedule. *)
let run_heap t hp ~until =
  let executed = ref 0 in
  let continue = ref true in
  while !continue do
    if Bfc_util.Heap.is_empty hp then continue := false
    else begin
      let head = Bfc_util.Heap.peek_priority hp in
      if head > until then continue := false
      else begin
        let h = Bfc_util.Heap.pop_min_exn hp in
        t.clock <- head;
        if h.alive && not h.fired then begin
          fire t h;
          incr executed
        end
        else recycle_dead t h
      end
    end
  done;
  !executed

let run_wheel t w ~until =
  let executed = ref 0 in
  let continue = ref true in
  while !continue do
    let head = Bfc_util.Wheel.head_time w in
    if head < 0 || head > until then continue := false
    else begin
      t.clock <- head;
      let before = t.executed in
      let n = Bfc_util.Wheel.drain_run w ~time:head ~rank_bound:(head lsl key_bits) t.fire_cb in
      if n = 0 then begin
        if step t then incr executed
      end
      else executed := !executed + (t.executed - before)
    end
  done;
  !executed

let run t ~until =
  let executed =
    match t.q with
    | Q_heap hp -> run_heap t hp ~until
    | Q_wheel w -> run_wheel t w ~until
  in
  if t.clock < until then t.clock <- until;
  executed

let safety_cap = 1 lsl 30

exception Runaway of { now : Time.t; pending_events : int }

let () =
  Printexc.register_printer (function
    | Runaway { now; pending_events } ->
      Some
        (Printf.sprintf "Sim.Runaway (event cap exceeded at t=%dns with %d pending events)" now
           pending_events)
    | _ -> None)

let run_until_idle ?(cap = safety_cap) t =
  let executed = ref 0 in
  (* the head probe can report empty after a wheel cascade purges the
     last tombstones, so re-check emptiness each iteration *)
  while not (q_is_empty t.q) do
    let head = q_head_time t.q in
    if head >= 0 then executed := !executed + exec_batch t head;
    if !executed > cap then raise (Runaway { now = t.clock; pending_events = t.live })
  done;
  !executed

(* Head-entry deadline, tombstones included: a cancelled head reports its
   stale time, which is <= the first live deadline — callers using this as
   a horizon bound (the PDES window coordinator) only get a conservative
   (smaller) window out of that, never a wrong one. *)
let next_time t = q_head_time t.q

let pending_events t = t.live

let executed_events t = t.executed

let profile t =
  let typed = ref 0 in
  for c = cls_ticker + 1 to n_classes - 1 do
    typed := !typed + t.exec_by_class.(c)
  done;
  {
    p_one_shot = t.exec_by_class.(cls_one_shot);
    p_reusable = t.exec_by_class.(cls_reusable);
    p_ticker = t.exec_by_class.(cls_ticker);
    p_typed = !typed;
    p_heap_hwm = t.heap_hwm;
    p_heap_capacity = q_capacity t.q;
    p_rearms = t.rearms;
    p_cancels = t.cancels;
    p_executed = t.executed;
    p_live = t.live;
  }
