(* Topology partition map for the sharded (PDES) engine: every node is
   owned by exactly one shard; links whose endpoints live in different
   shards are the "cut" over which packets travel as inter-shard
   messages. The conservative lookahead of the whole arrangement is the
   minimum propagation delay across the cut — a message sent at t cannot
   arrive before t + lookahead, which is what lets every shard run a
   [lookahead]-wide window past the global minimum next-event time
   without waiting for its neighbours. *)

type t = { shards : int; owner : int array }

let shards t = t.shards

let owner t node = t.owner.(node)

let owns t ~shard node = t.owner.(node) = shard

let single topo = { shards = 1; owner = Array.make (Array.length (Topology.nodes topo)) 0 }

let make ~shards ~owner =
  if shards <= 0 then invalid_arg "Partition.make: shards must be positive";
  Array.iter
    (fun s -> if s < 0 || s >= shards then invalid_arg "Partition.make: owner out of range")
    owner;
  { shards; owner }

(* Pod-aware Clos partition: contiguous blocks of ToRs (with their rack's
   hosts) per shard, spines spread the same way. With [shards] dividing
   both counts, every shard gets an equal slice of switches, hosts — and
   therefore of the event load. *)
let clos_pods (cl : Topology.clos) ~shards =
  let topo = cl.Topology.t in
  let ntors = Array.length cl.Topology.tors in
  if shards <= 0 then invalid_arg "Partition.clos_pods: shards must be positive";
  if shards > ntors then
    invalid_arg
      (Printf.sprintf "Partition.clos_pods: %d shards for %d ToRs (at most one shard per ToR)"
         shards ntors);
  let owner = Array.make (Array.length (Topology.nodes topo)) 0 in
  Array.iteri (fun i tor -> owner.(tor) <- i * shards / ntors) cl.Topology.tors;
  Array.iter
    (fun h -> owner.(h) <- owner.(cl.Topology.tors.(cl.Topology.rack_of h)))
    cl.Topology.cl_hosts;
  let nspines = Array.length cl.Topology.spines in
  Array.iteri (fun j sp -> owner.(sp) <- j * shards / nspines) cl.Topology.spines;
  { shards; owner }

(* Topology-agnostic fallback: switches round-robin in node-id order,
   hosts co-located with the switch their uplink attaches to (a host-ToR
   link has the same propagation as any other, but keeping racks whole
   minimises cut traffic). *)
let generic topo ~shards =
  if shards <= 0 then invalid_arg "Partition.generic: shards must be positive";
  let nodes = Topology.nodes topo in
  let owner = Array.make (Array.length nodes) 0 in
  let next = ref 0 in
  Array.iter
    (fun nd ->
      if nd.Node.kind = Node.Switch then begin
        owner.(nd.Node.id) <- !next mod shards;
        incr next
      end)
    nodes;
  Array.iter
    (fun nd ->
      if nd.Node.kind = Node.Host then begin
        let ports = Topology.ports topo nd.Node.id in
        if Array.length ports > 0 then
          owner.(nd.Node.id) <- owner.((Port.peer ports.(0)).Node.id)
      end)
    nodes;
  { shards; owner }

(* Every directed port whose endpoints are owned by different shards. *)
let iter_cut topo t f =
  Array.iter
    (fun nd ->
      let u = nd.Node.id in
      Array.iter
        (fun p ->
          let v = (Port.peer p).Node.id in
          if t.owner.(u) <> t.owner.(v) then f ~src:u p)
        (Topology.ports topo u))
    (Topology.nodes topo)

let cut_size topo t =
  let n = ref 0 in
  iter_cut topo t (fun ~src:_ _ -> incr n);
  !n

(* Minimum propagation delay across the cut; [None] when nothing crosses
   (a single shard, or a partition that happens to cut no link). *)
let lookahead topo t =
  let best = ref max_int in
  iter_cut topo t (fun ~src:_ p -> if Port.prop p < !best then best := Port.prop p);
  if !best = max_int then None else Some !best

(* Structural validation, the contract the qcheck property pins:
   - the map covers every node exactly once (right length, owner in range);
   - every cut port has its matching remote endpoint stub: the peer's
     reverse port exists, points back, and crosses the same shard pair;
   - every cut link has positive propagation (zero-lookahead links cannot
     be cut: the window would be empty and shards could never advance). *)
let check topo t =
  let nodes = Topology.nodes topo in
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  if Array.length t.owner <> Array.length nodes then
    err "owner map covers %d nodes, topology has %d" (Array.length t.owner) (Array.length nodes);
  Array.iteri
    (fun i s -> if s < 0 || s >= t.shards then err "node %d owned by out-of-range shard %d" i s)
    t.owner;
  if !errors = [] then
    iter_cut topo t (fun ~src:u p ->
        let v = (Port.peer p).Node.id in
        let back = Topology.ports topo v in
        if Port.peer_port p < 0 || Port.peer_port p >= Array.length back then
          err "cut port gid=%d at node %d: peer_port %d out of range at node %d" (Port.gid p) u
            (Port.peer_port p) v
        else begin
          let q = back.(Port.peer_port p) in
          if (Port.peer q).Node.id <> u then
            err "cut port gid=%d at node %d: reverse port at node %d points to node %d" (Port.gid p)
              u v (Port.peer q).Node.id
          else if Port.peer_port q >= Array.length (Topology.ports topo u)
                  || (Topology.ports topo u).(Port.peer_port q) != p then
            err "cut port gid=%d: endpoint stubs do not pair up (node %d <-> %d)" (Port.gid p) u v
        end;
        if Port.prop p <= 0 then
          err "cut port gid=%d (node %d -> %d) has zero propagation: no lookahead" (Port.gid p) u v);
  match !errors with [] -> Ok () | es -> Error (String.concat "; " (List.rev es))
