(** Topology partition map for sharded (conservative PDES) runs.

    A partition assigns every node to exactly one shard. Links whose
    endpoints land in different shards form the {e cut}: packets crossing
    them become inter-shard messages, and the minimum propagation delay
    across the cut is the {e lookahead} — the guarantee that a message
    sent at virtual time [t] cannot arrive before [t + lookahead], which
    is what lets shards run a lookahead-wide window in parallel without
    waiting on each other.

    Maps are plain data (no simulation state); they are built once before
    setup and read by every shard. *)

type t

(** Number of shards (>= 1). *)
val shards : t -> int

(** Owning shard of a node id. *)
val owner : t -> int -> int

val owns : t -> shard:int -> int -> bool

(** The trivial one-shard map (everything in shard 0). *)
val single : Topology.t -> t

(** [make ~shards ~owner] wraps an explicit owner map (index = node id).
    Raises [Invalid_argument] if [shards <= 0] or an entry is out of
    range. Structural soundness against a topology is checked separately
    by {!check}. *)
val make : shards:int -> owner:int array -> t

(** Pod-aware Clos partition: contiguous blocks of ToRs — each with its
    rack's hosts — per shard; spines spread across shards the same way.
    Cut links are ToR-spine (and host-ToR only if a rack ever straddled,
    which this builder never produces). Raises [Invalid_argument] when
    [shards] exceeds the ToR count. *)
val clos_pods : Topology.clos -> shards:int -> t

(** Topology-agnostic fallback: switches round-robin in node-id order,
    hosts co-located with the switch their first port attaches to. *)
val generic : Topology.t -> shards:int -> t

(** Directed ports crossing the cut. *)
val iter_cut : Topology.t -> t -> (src:int -> Port.t -> unit) -> unit

(** Number of directed cut ports. *)
val cut_size : Topology.t -> t -> int

(** Minimum propagation delay over the cut, or [None] when no link
    crosses (single shard). This is the conservative lookahead used to
    size the synchronization window. *)
val lookahead : Topology.t -> t -> Bfc_engine.Time.t option

(** Structural validation: the map covers every node exactly once, every
    cut port's reverse endpoint exists / points back / pairs up, and
    every cut link has positive propagation (a zero-lookahead cut would
    stall the window protocol). Returns all violations joined in the
    error string. *)
val check : Topology.t -> t -> (unit, string) result
