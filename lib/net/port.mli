(** A directed egress port: one end of a link plus its transmitter.

    The owning device drives the port: it may [send] only when the port is
    idle. The transmitter is clock-based: [send] records when serialization
    finishes and schedules no completion event. A device that finds the
    port [busy] and still has work queued calls [ensure_wakeup], which arms
    one reusable handle to fire [on_idle] the moment the transmitter frees
    up — ports that go idle with nothing queued cost no event at all.
    Delivery at the peer happens one propagation delay after serialization
    finishes (store-and-forward).

    Control packets ([send_ctrl]) model the dedicated high-priority control
    queue of the paper: they are delivered after the propagation delay
    without occupying the data transmitter (their bandwidth is negligible:
    64 B at 100 Gbps is 5 ns). *)

type t

val create :
  sim:Bfc_engine.Sim.t ->
  gid:int ->
  gbps:float ->
  prop:Bfc_engine.Time.t ->
  peer:Node.t ->
  peer_port:int ->
  t

(** Global port id (unique across the topology), used by metrics and INT. *)
val gid : t -> int

val gbps : t -> float

val prop : t -> Bfc_engine.Time.t

val peer : t -> Node.t

val peer_port : t -> int

val busy : t -> bool

(** Cumulative bytes serialized on this port (data path only). *)
val tx_bytes : t -> int

(** Cumulative packets serialized on this port (data path only). *)
val tx_packets : t -> int

(** Telemetry tap: [f pkt] runs at the start of every data-path
    serialization (after the busy check, before fault injection). Default
    is [ignore]; the observability layer uses this to record wire spans. *)
val set_on_tx : t -> (Packet.t -> unit) -> unit

(** Raised by [send] when the transmitter is already serializing a packet —
    a device scheduling bug. Carries the global port id and the simulation
    time at which the violation happened. *)
exception Busy of { gid : int; now : Bfc_engine.Time.t }

(** [send t pkt] starts serializing [pkt]. Raises {!Busy} if the port is
    busy. *)
val send : t -> Packet.t -> unit

(** Deliver a control packet after the propagation delay, bypassing the
    transmitter. *)
val send_ctrl : t -> Packet.t -> unit

(** The device's "transmitter idle" callback; fired when an [ensure_wakeup]
    request matures. *)
val set_on_idle : t -> (unit -> unit) -> unit

(** Arm the idle wakeup: if the transmitter is busy, [on_idle] fires exactly
    when it frees up (no-op if already armed, or if the port is idle now).
    Devices call this instead of polling — once per stretch of busy time,
    not once per packet. *)
val ensure_wakeup : t -> unit

(** Cross-shard egress (PDES): [set_remote t f] makes the port hand every
    delivery to [f pkt ~at] — [at] the absolute arrival time at the peer —
    instead of scheduling it on the local simulator. Serialization timing,
    the busy check, the telemetry tap and fault injection are unchanged;
    only the last step (the delivery event) is redirected, so a port with
    no remote hook behaves byte-identically to before the hook existed.
    The PDES runtime installs this on ports whose peer lives in another
    shard and forwards the capture over a bounded {!Bfc_engine.Channel}. *)
val set_remote : t -> (Packet.t -> at:Bfc_engine.Time.t -> unit) -> unit

(** Does this port deliver to another shard? *)
val is_remote : t -> bool

(** Fault injection: packets for which the predicate returns true are
    silently lost on the wire (fiber corruption, §3.3 "Idempotent state";
    the periodic pause bitmap exists to survive exactly this). *)
val set_fault : t -> (Packet.t -> bool) -> unit

(** Packets lost to injected faults so far. *)
val faults_injected : t -> int

(** One-hop RTT to the peer: 2 x propagation (switch pipeline latency is
    folded into the propagation figure, as in the paper's simulations). *)
val hop_rtt : t -> Bfc_engine.Time.t
