(** A directed egress port: one end of a link plus its transmitter.

    The owning device drives the port: it may [send] only when the port is
    idle; completion of serialization triggers [on_idle], at which point the
    device's scheduler picks the next packet. Delivery at the peer happens
    one propagation delay after serialization finishes (store-and-forward).

    Control packets ([send_ctrl]) model the dedicated high-priority control
    queue of the paper: they are delivered after the propagation delay
    without occupying the data transmitter (their bandwidth is negligible:
    64 B at 100 Gbps is 5 ns). *)

type t

val create :
  sim:Bfc_engine.Sim.t ->
  gid:int ->
  gbps:float ->
  prop:Bfc_engine.Time.t ->
  peer:Node.t ->
  peer_port:int ->
  t

(** Global port id (unique across the topology), used by metrics and INT. *)
val gid : t -> int

val gbps : t -> float

val prop : t -> Bfc_engine.Time.t

val peer : t -> Node.t

val peer_port : t -> int

val busy : t -> bool

(** Cumulative bytes serialized on this port (data path only). *)
val tx_bytes : t -> int

(** Raised by [send] when the transmitter is already serializing a packet —
    a device scheduling bug. Carries the global port id and the simulation
    time at which the violation happened. *)
exception Busy of { gid : int; now : Bfc_engine.Time.t }

(** [send t pkt] starts serializing [pkt]. Raises {!Busy} if the port is
    busy. *)
val send : t -> Packet.t -> unit

(** Deliver a control packet after the propagation delay, bypassing the
    transmitter. *)
val send_ctrl : t -> Packet.t -> unit

(** The device's "transmitter idle" callback; fired when serialization of
    the current packet completes. *)
val set_on_idle : t -> (unit -> unit) -> unit

(** Fault injection: packets for which the predicate returns true are
    silently lost on the wire (fiber corruption, §3.3 "Idempotent state";
    the periodic pause bitmap exists to survive exactly this). *)
val set_fault : t -> (Packet.t -> bool) -> unit

(** Packets lost to injected faults so far. *)
val faults_injected : t -> int

(** One-hop RTT to the peer: 2 x propagation (switch pipeline latency is
    folded into the propagation figure, as in the paper's simulations). *)
val hop_rtt : t -> Bfc_engine.Time.t
