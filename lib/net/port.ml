(* The transmitter is clock-based rather than event-based: [send] records
   when serialization will finish ([busy_until]) and schedules no completion
   event of its own. A device that wants the port back calls
   [ensure_wakeup], which posts one typed [cls_port_tx] event at
   [busy_until] — so an egress that goes idle with an empty queue costs
   zero events, and a backlogged egress costs one (allocation-free) wakeup
   per transmission instead of one fresh closure + handle per packet.

   Deliveries are typed events over FIFO rings: in-flight packets sit in
   a per-port ring (delivery times are monotone per port — sends are
   serialized and [prop] is constant), and a [cls_delivery] event pops the
   ring head when it fires. Control packets get a second ring: their
   delivery times are monotone among themselves (now + prop) but
   interleave arbitrarily with data deliveries, so the two streams cannot
   share one FIFO; the event's [a1] selects the ring. Every port of a sim
   registers in one per-sim registry ([Sim.user] state), and the shared
   executors reach the port by its registry index in [a0] — no per-event
   closure anywhere on the wire path. *)

type t = {
  sim : Bfc_engine.Sim.t;
  idx : int; (* index into the per-sim port registry, the [a0] of events *)
  gid : int;
  gbps : float;
  prop : Bfc_engine.Time.t;
  peer : Node.t;
  peer_port : int;
  mutable busy_until : Bfc_engine.Time.t;
  mutable tx_bytes : int;
  mutable tx_packets : int;
  mutable on_idle : unit -> unit;
  mutable on_tx : (Packet.t -> unit) option; (* telemetry tap *)
  mutable fault : Packet.t -> bool; (* fault injection: drop on the wire? *)
  mutable dropped : int;
  mutable wake_t : Bfc_engine.Sim.token; (* lazy idle wakeup, 0 = none *)
  mutable ring : Packet.t array; (* in-flight data deliveries, circular FIFO *)
  mutable head : int;
  mutable count : int;
  mutable cring : Packet.t array; (* in-flight control deliveries *)
  mutable chead : int;
  mutable ccount : int;
  mutable remote : (Packet.t -> at:Bfc_engine.Time.t -> unit) option;
      (* cross-shard egress (PDES): when set, deliveries are handed to this
         capture hook instead of being scheduled on the local sim *)
}

(* ------------------------ per-sim registry ------------------------- *)

type reg = { mutable parr : t array; mutable pn : int }

type Bfc_engine.Sim.user += Port_reg of reg

let ring_pop t =
  let pkt = t.ring.(t.head) in
  t.head <- (t.head + 1) mod Array.length t.ring;
  t.count <- t.count - 1;
  pkt

let cring_pop t =
  let pkt = t.cring.(t.chead) in
  t.chead <- (t.chead + 1) mod Array.length t.cring;
  t.ccount <- t.ccount - 1;
  pkt

(* The two shared executors: every delivery and every transmit wakeup in
   a simulation dispatches to these two code paths, keyed by registry
   index — stable call targets instead of thousands of closures. *)
let deliver_exec st a0 a1 =
  match st with
  | Port_reg r ->
    let p = Array.unsafe_get r.parr a0 in
    Node.deliver p.peer ~in_port:p.peer_port (if a1 = 0 then ring_pop p else cring_pop p)
  | _ -> invalid_arg "Port.deliver_exec: foreign class state"

let tx_exec st a0 _a1 =
  match st with
  | Port_reg r -> (Array.unsafe_get r.parr a0).on_idle ()
  | _ -> invalid_arg "Port.tx_exec: foreign class state"

let registry sim =
  match Bfc_engine.Sim.class_state sim ~cls:Bfc_engine.Sim.cls_delivery with
  | Some (Port_reg r) -> r
  | _ ->
    let r = { parr = [||]; pn = 0 } in
    let state = Port_reg r in
    Bfc_engine.Sim.register_class sim ~cls:Bfc_engine.Sim.cls_delivery ~state
      ~exec:deliver_exec;
    Bfc_engine.Sim.register_class sim ~cls:Bfc_engine.Sim.cls_port_tx ~state ~exec:tx_exec;
    r

let create ~sim ~gid ~gbps ~prop ~peer ~peer_port =
  let r = registry sim in
  let t =
    {
      sim;
      idx = r.pn;
      gid;
      gbps;
      prop;
      peer;
      peer_port;
      busy_until = 0;
      tx_bytes = 0;
      tx_packets = 0;
      on_idle = ignore;
      on_tx = None;
      fault = (fun _ -> false);
      dropped = 0;
      wake_t = 0;
      ring = [||];
      head = 0;
      count = 0;
      cring = [||];
      chead = 0;
      ccount = 0;
      remote = None;
    }
  in
  if r.pn = Array.length r.parr then begin
    let ncap = max 64 (2 * r.pn) in
    let np = Array.make ncap t in
    Array.blit r.parr 0 np 0 r.pn;
    r.parr <- np
  end;
  r.parr.(r.pn) <- t;
  r.pn <- r.pn + 1;
  t

let gid t = t.gid

let gbps t = t.gbps

let prop t = t.prop

let peer t = t.peer

let peer_port t = t.peer_port

let busy t = Bfc_engine.Sim.now t.sim < t.busy_until

let tx_bytes t = t.tx_bytes

let tx_packets t = t.tx_packets

let set_on_idle t f = t.on_idle <- f

let set_on_tx t f = t.on_tx <- Some f

exception Busy of { gid : int; now : Bfc_engine.Time.t }

let () =
  Printexc.register_printer (function
    | Busy { gid; now } ->
      Some (Printf.sprintf "Port.Busy (send on busy transmitter, port gid=%d, t=%dns)" gid now)
    | _ -> None)

let ring_push t pkt =
  let cap = Array.length t.ring in
  if t.count = cap then begin
    (* seed new slots with [pkt]; stale slots are overwritten before use *)
    let ncap = if cap = 0 then 8 else cap * 2 in
    let nr = Array.make ncap pkt in
    for i = 0 to t.count - 1 do
      nr.(i) <- t.ring.((t.head + i) mod cap)
    done;
    t.ring <- nr;
    t.head <- 0
  end;
  t.ring.((t.head + t.count) mod Array.length t.ring) <- pkt;
  t.count <- t.count + 1

let cring_push t pkt =
  let cap = Array.length t.cring in
  if t.ccount = cap then begin
    let ncap = if cap = 0 then 8 else cap * 2 in
    let nr = Array.make ncap pkt in
    for i = 0 to t.ccount - 1 do
      nr.(i) <- t.cring.((t.chead + i) mod cap)
    done;
    t.cring <- nr;
    t.chead <- 0
  end;
  t.cring.((t.chead + t.ccount) mod Array.length t.cring) <- pkt;
  t.ccount <- t.ccount + 1

let send t pkt =
  let now = Bfc_engine.Sim.now t.sim in
  if now < t.busy_until then raise (Busy { gid = t.gid; now });
  let ser = Bfc_engine.Time.tx_time ~gbps:t.gbps ~bytes:pkt.Packet.size in
  t.busy_until <- now + ser;
  t.tx_bytes <- t.tx_bytes + pkt.Packet.size;
  t.tx_packets <- t.tx_packets + 1;
  (match t.on_tx with None -> () | Some f -> f pkt);
  if t.fault pkt then t.dropped <- t.dropped + 1
  else begin
    match t.remote with
    | None ->
      ring_push t pkt;
      Bfc_engine.Sim.post ~key:t.gid t.sim (now + ser + t.prop)
        ~cls:Bfc_engine.Sim.cls_delivery ~a0:t.idx ~a1:0
    | Some f -> f pkt ~at:(now + ser + t.prop)
  end

let ensure_wakeup t =
  if
    Bfc_engine.Sim.now t.sim < t.busy_until
    && not (Bfc_engine.Sim.token_pending t.sim t.wake_t)
  then
    t.wake_t <-
      Bfc_engine.Sim.post_token t.sim t.busy_until ~cls:Bfc_engine.Sim.cls_port_tx ~a0:t.idx
        ~a1:0

let send_ctrl t pkt =
  if t.fault pkt then t.dropped <- t.dropped + 1
  else begin
    match t.remote with
    | None ->
      cring_push t pkt;
      Bfc_engine.Sim.post ~key:t.gid t.sim
        (Bfc_engine.Sim.now t.sim + t.prop)
        ~cls:Bfc_engine.Sim.cls_delivery ~a0:t.idx ~a1:1
    | Some f -> f pkt ~at:(Bfc_engine.Sim.now t.sim + t.prop)
  end

let set_remote t f = t.remote <- Some f

let is_remote t = t.remote <> None

let set_fault t f = t.fault <- f

let faults_injected t = t.dropped

let hop_rtt t = 2 * t.prop
