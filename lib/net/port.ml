type t = {
  sim : Bfc_engine.Sim.t;
  gid : int;
  gbps : float;
  prop : Bfc_engine.Time.t;
  peer : Node.t;
  peer_port : int;
  mutable busy : bool;
  mutable tx_bytes : int;
  mutable on_idle : unit -> unit;
  mutable fault : Packet.t -> bool; (* fault injection: drop on the wire? *)
  mutable dropped : int;
}

let create ~sim ~gid ~gbps ~prop ~peer ~peer_port =
  {
    sim;
    gid;
    gbps;
    prop;
    peer;
    peer_port;
    busy = false;
    tx_bytes = 0;
    on_idle = ignore;
    fault = (fun _ -> false);
    dropped = 0;
  }

let gid t = t.gid

let gbps t = t.gbps

let prop t = t.prop

let peer t = t.peer

let peer_port t = t.peer_port

let busy t = t.busy

let tx_bytes t = t.tx_bytes

let set_on_idle t f = t.on_idle <- f

exception Busy of { gid : int; now : Bfc_engine.Time.t }

let () =
  Printexc.register_printer (function
    | Busy { gid; now } ->
      Some (Printf.sprintf "Port.Busy (send on busy transmitter, port gid=%d, t=%dns)" gid now)
    | _ -> None)

let send t pkt =
  if t.busy then raise (Busy { gid = t.gid; now = Bfc_engine.Sim.now t.sim });
  t.busy <- true;
  let ser = Bfc_engine.Time.tx_time ~gbps:t.gbps ~bytes:pkt.Packet.size in
  t.tx_bytes <- t.tx_bytes + pkt.Packet.size;
  ignore
    (Bfc_engine.Sim.after t.sim ser (fun () ->
         t.busy <- false;
         t.on_idle ()));
  if t.fault pkt then t.dropped <- t.dropped + 1
  else
    ignore
      (Bfc_engine.Sim.after t.sim (ser + t.prop) (fun () ->
           Node.deliver t.peer ~in_port:t.peer_port pkt))

let send_ctrl t pkt =
  if t.fault pkt then t.dropped <- t.dropped + 1
  else
    ignore
      (Bfc_engine.Sim.after t.sim t.prop (fun () -> Node.deliver t.peer ~in_port:t.peer_port pkt))

let set_fault t f = t.fault <- f

let faults_injected t = t.dropped

let hop_rtt t = 2 * t.prop
