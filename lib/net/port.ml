(* The transmitter is clock-based rather than event-based: [send] records
   when serialization will finish ([busy_until]) and schedules no completion
   event of its own. A device that wants the port back calls
   [ensure_wakeup], which arms one reusable handle at [busy_until] — so an
   egress that goes idle with an empty queue costs zero events, and a
   backlogged egress costs one (allocation-free) wakeup per transmission
   instead of one fresh closure + handle per packet.

   Deliveries reuse handles too: in-flight packets sit in a FIFO ring
   (delivery times are monotone per port — sends are serialized and [prop]
   is constant), and each delivery event borrows a handle from a per-port
   free list, popping the ring head when it fires. *)

type t = {
  sim : Bfc_engine.Sim.t;
  gid : int;
  gbps : float;
  prop : Bfc_engine.Time.t;
  peer : Node.t;
  peer_port : int;
  mutable busy_until : Bfc_engine.Time.t;
  mutable tx_bytes : int;
  mutable tx_packets : int;
  mutable on_idle : unit -> unit;
  mutable on_tx : (Packet.t -> unit) option; (* telemetry tap *)
  mutable fault : Packet.t -> bool; (* fault injection: drop on the wire? *)
  mutable dropped : int;
  mutable wake : Bfc_engine.Sim.handle option; (* lazy idle wakeup *)
  mutable ring : Packet.t array; (* in-flight deliveries, circular FIFO *)
  mutable head : int;
  mutable count : int;
  mutable hpool : Bfc_engine.Sim.handle array; (* free delivery handles *)
  mutable hpool_n : int;
  mutable remote : (Packet.t -> at:Bfc_engine.Time.t -> unit) option;
      (* cross-shard egress (PDES): when set, deliveries are handed to this
         capture hook instead of being scheduled on the local sim *)
}

let create ~sim ~gid ~gbps ~prop ~peer ~peer_port =
  {
    sim;
    gid;
    gbps;
    prop;
    peer;
    peer_port;
    busy_until = 0;
    tx_bytes = 0;
    tx_packets = 0;
    on_idle = ignore;
    on_tx = None;
    fault = (fun _ -> false);
    dropped = 0;
    wake = None;
    ring = [||];
    head = 0;
    count = 0;
    hpool = [||];
    hpool_n = 0;
    remote = None;
  }

let gid t = t.gid

let gbps t = t.gbps

let prop t = t.prop

let peer t = t.peer

let peer_port t = t.peer_port

let busy t = Bfc_engine.Sim.now t.sim < t.busy_until

let tx_bytes t = t.tx_bytes

let tx_packets t = t.tx_packets

let set_on_idle t f = t.on_idle <- f

let set_on_tx t f = t.on_tx <- Some f

exception Busy of { gid : int; now : Bfc_engine.Time.t }

let () =
  Printexc.register_printer (function
    | Busy { gid; now } ->
      Some (Printf.sprintf "Port.Busy (send on busy transmitter, port gid=%d, t=%dns)" gid now)
    | _ -> None)

let ring_push t pkt =
  let cap = Array.length t.ring in
  if t.count = cap then begin
    (* seed new slots with [pkt]; stale slots are overwritten before use *)
    let ncap = if cap = 0 then 8 else cap * 2 in
    let nr = Array.make ncap pkt in
    for i = 0 to t.count - 1 do
      nr.(i) <- t.ring.((t.head + i) mod cap)
    done;
    t.ring <- nr;
    t.head <- 0
  end;
  t.ring.((t.head + t.count) mod Array.length t.ring) <- pkt;
  t.count <- t.count + 1

let ring_pop t =
  let pkt = t.ring.(t.head) in
  t.head <- (t.head + 1) mod Array.length t.ring;
  t.count <- t.count - 1;
  pkt

let hpool_put t h =
  let cap = Array.length t.hpool in
  if t.hpool_n = cap then begin
    let ncap = if cap = 0 then 8 else cap * 2 in
    let nh = Array.make ncap h in
    Array.blit t.hpool 0 nh 0 t.hpool_n;
    t.hpool <- nh
  end;
  t.hpool.(t.hpool_n) <- h;
  t.hpool_n <- t.hpool_n + 1

let new_delivery_handle t =
  let hr = ref None in
  let h =
    Bfc_engine.Sim.make_handle t.sim (fun () ->
        (match !hr with Some h -> hpool_put t h | None -> ());
        Node.deliver t.peer ~in_port:t.peer_port (ring_pop t))
  in
  hr := Some h;
  h

let schedule_delivery t pkt ~at =
  ring_push t pkt;
  let h =
    if t.hpool_n > 0 then begin
      t.hpool_n <- t.hpool_n - 1;
      t.hpool.(t.hpool_n)
    end
    else new_delivery_handle t
  in
  Bfc_engine.Sim.rearm ~key:t.gid h ~at

let send t pkt =
  let now = Bfc_engine.Sim.now t.sim in
  if now < t.busy_until then raise (Busy { gid = t.gid; now });
  let ser = Bfc_engine.Time.tx_time ~gbps:t.gbps ~bytes:pkt.Packet.size in
  t.busy_until <- now + ser;
  t.tx_bytes <- t.tx_bytes + pkt.Packet.size;
  t.tx_packets <- t.tx_packets + 1;
  (match t.on_tx with None -> () | Some f -> f pkt);
  if t.fault pkt then t.dropped <- t.dropped + 1
  else begin
    match t.remote with
    | None -> schedule_delivery t pkt ~at:(now + ser + t.prop)
    | Some f -> f pkt ~at:(now + ser + t.prop)
  end

let ensure_wakeup t =
  if Bfc_engine.Sim.now t.sim < t.busy_until then begin
    match t.wake with
    | Some h -> if not (Bfc_engine.Sim.pending h) then Bfc_engine.Sim.rearm h ~at:t.busy_until
    | None ->
      let h = Bfc_engine.Sim.make_handle t.sim (fun () -> t.on_idle ()) in
      t.wake <- Some h;
      Bfc_engine.Sim.rearm h ~at:t.busy_until
  end

let send_ctrl t pkt =
  if t.fault pkt then t.dropped <- t.dropped + 1
  else begin
    match t.remote with
    | None ->
      ignore
        (Bfc_engine.Sim.after ~key:t.gid t.sim t.prop (fun () ->
             Node.deliver t.peer ~in_port:t.peer_port pkt))
    | Some f -> f pkt ~at:(Bfc_engine.Sim.now t.sim + t.prop)
  end

let set_remote t f = t.remote <- Some f

let is_remote t = t.remote <> None

let set_fault t f = t.fault <- f

let faults_injected t = t.dropped

let hop_rtt t = 2 * t.prop
