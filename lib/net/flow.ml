type t = {
  id : int;
  src : int;
  dst : int;
  size : int;
  arrival : Bfc_engine.Time.t;
  prio_class : int;
  is_incast : bool;
  mutable delivered : int;
  mutable finish : Bfc_engine.Time.t;
  mutable first_byte : Bfc_engine.Time.t;
}

let make ~id ~src ~dst ~size ~arrival ?(prio_class = 0) ?(is_incast = false) () =
  if size <= 0 then invalid_arg "Flow.make: size must be positive";
  { id; src; dst; size; arrival; prio_class; is_incast; delivered = 0; finish = -1; first_byte = -1 }

(* A private copy with virgin progress fields. Shards must not share flow
   records — the receiving host writes [delivered]/[finish]/[first_byte] —
   so each shard works on replicas and the merge picks, per flow, the
   replica owned by the shard of [dst] (the only writer). *)
let replica t =
  {
    id = t.id;
    src = t.src;
    dst = t.dst;
    size = t.size;
    arrival = t.arrival;
    prio_class = t.prio_class;
    is_incast = t.is_incast;
    delivered = 0;
    finish = -1;
    first_byte = -1;
  }

let complete t = t.finish >= 0

let fct t =
  if not (complete t) then invalid_arg "Flow.fct: flow not complete";
  t.finish - t.arrival

let hash t =
  (* splitmix64 finalizer over the id; 30 bits out *)
  let z = Int64.add (Int64.of_int t.id) 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.logand z 0x3FFFFFFFL)
