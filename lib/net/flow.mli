(** A flow: one unidirectional message of [size] bytes from [src] to [dst].

    Flows are the unit the paper's mechanisms act on (the FID is the
    five-tuple; here the integer [id] stands in for its hash). Completion is
    recorded by the receiver when the last byte arrives. *)

type t = {
  id : int;
  src : int; (** source host node id *)
  dst : int; (** destination host node id *)
  size : int; (** bytes *)
  arrival : Bfc_engine.Time.t;
  prio_class : int; (** traffic class (Fig. 20); 0 = highest *)
  is_incast : bool;
  mutable delivered : int; (** contiguous bytes received *)
  mutable finish : Bfc_engine.Time.t; (** -1 until complete *)
  mutable first_byte : Bfc_engine.Time.t; (** -1 until first data arrives *)
}

val make :
  id:int ->
  src:int ->
  dst:int ->
  size:int ->
  arrival:Bfc_engine.Time.t ->
  ?prio_class:int ->
  ?is_incast:bool ->
  unit ->
  t

(** [replica t] — a fresh record with the same identity and schedule but
    progress fields reset ([delivered = 0], [finish]/[first_byte] = -1).
    PDES shards each work on their own replicas so no mutable flow state
    is shared across domains. *)
val replica : t -> t

val complete : t -> bool

(** Flow completion time; raises if not complete. *)
val fct : t -> Bfc_engine.Time.t

(** Deterministic 30-bit hash of the flow id (stands in for hash(FID)). *)
val hash : t -> int
