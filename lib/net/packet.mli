(** Packets: the unit of transmission, queueing and flow control.

    One flat mutable record covers data, acknowledgement and control
    packets; protocols use the fields they need (mirroring how real headers
    stack optional fields). Per-hop BFC scratch fields ([bp_*]) are
    overwritten at every switch, exactly like metadata in a switch
    pipeline. *)

type kind =
  | Data
  | Ack  (** cumulative ack; [seq] = next expected byte *)
  | Nack  (** Go-Back-N: receiver asks for retransmit from [seq] *)
  | Credit  (** ExpressPass credit *)
  | Credit_req  (** ExpressPass: sender asks the receiver to start crediting *)
  | Grant  (** Homa grant; [ctrl_a] = grant offset, [ctrl_b] = priority *)
  | Pause  (** BFC pause; [ctrl_a] = upstream queue id *)
  | Resume  (** BFC resume; [ctrl_a] = upstream queue id *)
  | Pause_bitmap  (** BFC periodic refresh; [ints] = paused queue ids *)
  | Hop_credit
      (** hop-by-hop credit return (lossless BFC variant, §5):
          [ctrl_a] = upstream queue id, [ctrl_b] = bytes returned *)
  | Pfc  (** PFC pause/resume; [ctrl_a] = class, [ctrl_b] = 1 pause / 0 resume *)
  | Cnp  (** DCQCN congestion notification *)

type int_hop = {
  mutable h_ts : Bfc_engine.Time.t;
  mutable h_tx_bytes : int;
  mutable h_qlen : int;
  mutable h_gbps : float;
  mutable h_link : int; (** global port id, for per-link delay accounting *)
}

type t = {
  uid : int;
  kind : kind;
  flow : Flow.t option;
  src : int;
  dst : int;
  mutable size : int; (** bytes on the wire *)
  mutable payload : int; (** data bytes carried (<= size) *)
  mutable seq : int;
  mutable ecn : bool;
  mutable ecn_echo : bool;
  mutable prio : int; (** scheduling priority class; 0 = highest *)
  mutable remaining : int; (** sender's remaining bytes (SRF header field) *)
  mutable upstream_q : int; (** BFC: sender-side queue at the upstream device *)
  mutable bp_in_port : int;
  mutable bp_upq : int;
  mutable bp_counted : bool;
  mutable bp_sampled : bool; (** recirculation-sampling variant: bookkept? *)
  mutable int_hops : int_hop list; (** HPCC INT stack, most recent hop first *)
  mutable sent_at : Bfc_engine.Time.t;
  mutable enq_at : Bfc_engine.Time.t;
  mutable q_delay : int; (** accumulated queuing delay over all hops (ns) *)
  mutable hop_cnt : int;
  mutable ctrl_a : int;
  mutable ctrl_b : int;
  mutable ints : int array; (** bitmap payloads etc. *)
  mutable path_hint : int; (** pinned spine for spraying; -1 = ECMP *)
}

val header_bytes : int

val ack_bytes : int

val ctrl_bytes : int

(** [make kind ~flow ~src ~dst ~size ...] — fresh packet with unique uid. *)
val make :
  kind ->
  ?flow:Flow.t ->
  src:int ->
  dst:int ->
  size:int ->
  ?payload:int ->
  ?seq:int ->
  ?prio:int ->
  unit ->
  t

(** [data ~flow ~seq ~payload ~extra_header] — a data packet of the flow;
    wire size = payload + header + extra_header. *)
val data : flow:Flow.t -> seq:int -> payload:int -> ?extra_header:int -> unit -> t

(** Raised by [flow_exn] when a packet that must belong to a flow (a
    data-path packet inside a dataplane hook or a host receive path) carries
    none — a malformed injection or a corrupted header. Carries the packet
    uid and the sim time at which the packet was seen. *)
exception Missing_flow of { uid : int; at : Bfc_engine.Time.t }

(** The packet's flow, or raises {!Missing_flow} stamped with [at]. *)
val flow_exn : t -> at:Bfc_engine.Time.t -> Flow.t

val is_control : t -> bool

(** Flow id or -1. *)
val flow_id : t -> int
