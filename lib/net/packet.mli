(** Packets: the unit of transmission, queueing and flow control.

    One flat mutable record covers data, acknowledgement and control
    packets; protocols use the fields they need (mirroring how real headers
    stack optional fields). Per-hop BFC scratch fields ([bp_*]) are
    overwritten at every switch, exactly like metadata in a switch
    pipeline. All fields are mutable so packets can be recycled through
    {!Pool} without allocation on the hot path. *)

type kind =
  | Data
  | Ack  (** cumulative ack; [seq] = next expected byte *)
  | Nack  (** Go-Back-N: receiver asks for retransmit from [seq] *)
  | Credit  (** ExpressPass credit *)
  | Credit_req  (** ExpressPass: sender asks the receiver to start crediting *)
  | Grant  (** Homa grant; [ctrl_a] = grant offset, [ctrl_b] = priority *)
  | Pause  (** BFC pause; [ctrl_a] = upstream queue id *)
  | Resume  (** BFC resume; [ctrl_a] = upstream queue id *)
  | Pause_bitmap  (** BFC periodic refresh; [ints] = paused queue ids *)
  | Hop_credit
      (** hop-by-hop credit return (lossless BFC variant, §5):
          [ctrl_a] = upstream queue id, [ctrl_b] = bytes returned *)
  | Pfc  (** PFC pause/resume; [ctrl_a] = class, [ctrl_b] = 1 pause / 0 resume *)
  | Cnp  (** DCQCN congestion notification *)

type int_hop = {
  mutable h_ts : Bfc_engine.Time.t;
  mutable h_tx_bytes : int;
  mutable h_qlen : int;
  mutable h_gbps : float;
  mutable h_link : int; (** global port id, for per-link delay accounting *)
}

type t = {
  mutable uid : int;
  mutable kind : kind;
  mutable flow : Flow.t option;
  mutable src : int;
  mutable dst : int;
  mutable size : int; (** bytes on the wire *)
  mutable payload : int; (** data bytes carried (<= size) *)
  mutable seq : int;
  mutable ecn : bool;
  mutable ecn_echo : bool;
  mutable prio : int; (** scheduling priority class; 0 = highest *)
  mutable remaining : int; (** sender's remaining bytes (SRF header field) *)
  mutable upstream_q : int; (** BFC: sender-side queue at the upstream device *)
  mutable bp_in_port : int;
  mutable bp_upq : int;
  mutable bp_counted : bool;
  mutable bp_sampled : bool; (** recirculation-sampling variant: bookkept? *)
  mutable int_hops : int_hop array;
      (** HPCC INT stack storage; only the first [int_cnt] records are
          valid. Use {!add_int_hop} / {!iter_int_hops} — records are reused
          in place, never consed. *)
  mutable int_cnt : int; (** INT stack cursor *)
  mutable sent_at : Bfc_engine.Time.t;
  mutable enq_at : Bfc_engine.Time.t;
  mutable q_delay : int; (** accumulated queuing delay over all hops (ns) *)
  mutable hop_cnt : int;
  mutable ctrl_a : int;
  mutable ctrl_b : int;
  mutable ints : int array; (** bitmap payloads etc. *)
  mutable path_hint : int; (** pinned spine for spraying; -1 = ECMP *)
  mutable pooled : bool; (** currently parked in a {!Pool} free list *)
}

val header_bytes : int

val ack_bytes : int

val ctrl_bytes : int

(** [make kind ~flow ~src ~dst ~size ...] — fresh packet. With [?sim] the
    uid comes from that simulation's counter ({!Bfc_engine.Sim.fresh_uid}),
    which is deterministic per run and safe under domains; without it a
    process-global atomic fallback is used (tests, standalone tools). *)
val make :
  ?sim:Bfc_engine.Sim.t ->
  kind ->
  ?flow:Flow.t ->
  src:int ->
  dst:int ->
  size:int ->
  ?payload:int ->
  ?seq:int ->
  ?prio:int ->
  unit ->
  t

(** [data ~flow ~seq ~payload ~extra_header] — a data packet of the flow;
    wire size = payload + header + extra_header. *)
val data :
  ?sim:Bfc_engine.Sim.t -> flow:Flow.t -> seq:int -> payload:int -> ?extra_header:int -> unit -> t

(** [add_int_hop t ~ts ~tx_bytes ~qlen ~gbps ~link] appends an INT record,
    reusing the packet's preallocated hop storage (no allocation once the
    array has grown to the path length). *)
val add_int_hop :
  t -> ts:Bfc_engine.Time.t -> tx_bytes:int -> qlen:int -> gbps:float -> link:int -> unit

val int_hop_count : t -> int

(** [get_int_hop t i] is the [i]-th stamped hop (0 = first hop on the
    path). Raises [Invalid_argument] outside [0, int_hop_count)]. *)
val get_int_hop : t -> int -> int_hop

(** [iter_int_hops f t] applies [f] to each valid hop record in path
    order, allocation-free. *)
val iter_int_hops : (int_hop -> unit) -> t -> unit

val clear_int_hops : t -> unit

(** [copy_int_hops ~src ~dst] copies the INT stack field-by-field into
    [dst]'s own records — no structure sharing, so recycling [src] cannot
    corrupt [dst]. *)
val copy_int_hops : src:t -> dst:t -> unit

(** [clone ?sim p] — a fresh packet carrying every behavioral field of
    [p] (header, scratch, INT stack, bitmap payload), with [flow = None]
    and a fresh uid. This is the cross-shard transfer copy: the clone is
    safe to hand to another domain (no structure shared with [p] and no
    flow pointer; the receiving shard re-binds its own flow replica by
    id), while [p] remains the sender's to keep, drop or recycle. *)
val clone : ?sim:Bfc_engine.Sim.t -> t -> t

(** Raised by [flow_exn] when a packet that must belong to a flow (a
    data-path packet inside a dataplane hook or a host receive path) carries
    none — a malformed injection or a corrupted header. Carries the packet
    uid and the sim time at which the packet was seen. *)
exception Missing_flow of { uid : int; at : Bfc_engine.Time.t }

(** The packet's flow, or raises {!Missing_flow} stamped with [at]. *)
val flow_exn : t -> at:Bfc_engine.Time.t -> Flow.t

val is_control : t -> bool

(** Flow id or -1. *)
val flow_id : t -> int

(** Per-simulation free-list pool. [release] resets every mutable field to
    the [make] defaults (keeping the INT-hop backing array) and parks the
    packet; [acquire] hands it back with a fresh per-sim uid. Double
    release raises [Invalid_argument]. One pool per simulation — packets
    never migrate between domains. *)
module Pool : sig
  type packet = t

  type t

  val create : sim:Bfc_engine.Sim.t -> t

  val acquire :
    t ->
    kind ->
    ?flow:Flow.t ->
    src:int ->
    dst:int ->
    size:int ->
    ?payload:int ->
    ?seq:int ->
    ?prio:int ->
    unit ->
    packet

  (** Mirrors {!val:Packet.data} but draws from the pool. *)
  val data : t -> flow:Flow.t -> seq:int -> payload:int -> ?extra_header:int -> unit -> packet

  val release : t -> packet -> unit

  (** Packets currently parked in the free list. *)
  val free_count : t -> int

  (** Fresh allocations made because the free list was empty. *)
  val allocated : t -> int

  (** Acquisitions served from the free list. *)
  val recycled : t -> int
end
