type kind =
  | Data
  | Ack
  | Nack
  | Credit
  | Credit_req
  | Grant
  | Pause
  | Resume
  | Pause_bitmap
  | Hop_credit
  | Pfc
  | Cnp

type int_hop = {
  mutable h_ts : Bfc_engine.Time.t;
  mutable h_tx_bytes : int;
  mutable h_qlen : int;
  mutable h_gbps : float;
  mutable h_link : int;
}

type t = {
  uid : int;
  kind : kind;
  flow : Flow.t option;
  src : int;
  dst : int;
  mutable size : int;
  mutable payload : int;
  mutable seq : int;
  mutable ecn : bool;
  mutable ecn_echo : bool;
  mutable prio : int;
  mutable remaining : int;
  mutable upstream_q : int;
  mutable bp_in_port : int;
  mutable bp_upq : int;
  mutable bp_counted : bool;
  mutable bp_sampled : bool;
  mutable int_hops : int_hop list;
  mutable sent_at : Bfc_engine.Time.t;
  mutable enq_at : Bfc_engine.Time.t;
  mutable q_delay : int;
  mutable hop_cnt : int;
  mutable ctrl_a : int;
  mutable ctrl_b : int;
  mutable ints : int array;
  mutable path_hint : int;
}

let header_bytes = 48

let ack_bytes = 64

let ctrl_bytes = 64

let next_uid = ref 0

let make kind ?flow ~src ~dst ~size ?(payload = 0) ?(seq = 0) ?(prio = 0) () =
  incr next_uid;
  {
    uid = !next_uid;
    kind;
    flow;
    src;
    dst;
    size;
    payload;
    seq;
    ecn = false;
    ecn_echo = false;
    prio;
    remaining = 0;
    upstream_q = 0;
    bp_in_port = -1;
    bp_upq = -1;
    bp_counted = false;
    bp_sampled = true;
    int_hops = [];
    sent_at = 0;
    enq_at = 0;
    q_delay = 0;
    hop_cnt = 0;
    ctrl_a = 0;
    ctrl_b = 0;
    ints = [||];
    path_hint = -1;
  }

let data ~flow ~seq ~payload ?(extra_header = 0) () =
  make Data ~flow ~src:flow.Flow.src ~dst:flow.Flow.dst
    ~size:(payload + header_bytes + extra_header)
    ~payload ~seq ~prio:flow.prio_class ()

exception Missing_flow of { uid : int; at : Bfc_engine.Time.t }

let () =
  Printexc.register_printer (function
    | Missing_flow { uid; at } ->
      Some
        (Format.asprintf "Packet.Missing_flow(uid=%d, t=%a): data-path packet without a flow" uid
           Bfc_engine.Time.pp at)
    | _ -> None)

let flow_exn t ~at = match t.flow with Some f -> f | None -> raise (Missing_flow { uid = t.uid; at })

let is_control t =
  match t.kind with
  | Pause | Resume | Pause_bitmap | Hop_credit | Pfc | Cnp -> true
  | Data | Ack | Nack | Credit | Credit_req | Grant -> false

let flow_id t = match t.flow with Some f -> f.Flow.id | None -> -1
