type kind =
  | Data
  | Ack
  | Nack
  | Credit
  | Credit_req
  | Grant
  | Pause
  | Resume
  | Pause_bitmap
  | Hop_credit
  | Pfc
  | Cnp

type int_hop = {
  mutable h_ts : Bfc_engine.Time.t;
  mutable h_tx_bytes : int;
  mutable h_qlen : int;
  mutable h_gbps : float;
  mutable h_link : int;
}

type t = {
  mutable uid : int;
  mutable kind : kind;
  mutable flow : Flow.t option;
  mutable src : int;
  mutable dst : int;
  mutable size : int;
  mutable payload : int;
  mutable seq : int;
  mutable ecn : bool;
  mutable ecn_echo : bool;
  mutable prio : int;
  mutable remaining : int;
  mutable upstream_q : int;
  mutable bp_in_port : int;
  mutable bp_upq : int;
  mutable bp_counted : bool;
  mutable bp_sampled : bool;
  mutable int_hops : int_hop array;
  mutable int_cnt : int;
  mutable sent_at : Bfc_engine.Time.t;
  mutable enq_at : Bfc_engine.Time.t;
  mutable q_delay : int;
  mutable hop_cnt : int;
  mutable ctrl_a : int;
  mutable ctrl_b : int;
  mutable ints : int array;
  mutable path_hint : int;
  mutable pooled : bool;
}

let header_bytes = 48

let ack_bytes = 64

let ctrl_bytes = 64

(* Fallback uid source for packets made outside any simulation (unit tests,
   standalone tools). Pools and [~sim] callers draw from the per-sim counter
   instead, which is what keeps uid sequences deterministic per run and
   race-free across domains. *)
let fallback_uid = Atomic.make 0

let make ?sim kind ?flow ~src ~dst ~size ?(payload = 0) ?(seq = 0) ?(prio = 0) () =
  let uid =
    match sim with
    | Some s -> Bfc_engine.Sim.fresh_uid s
    | None -> Atomic.fetch_and_add fallback_uid 1
  in
  {
    uid;
    kind;
    flow;
    src;
    dst;
    size;
    payload;
    seq;
    ecn = false;
    ecn_echo = false;
    prio;
    remaining = 0;
    upstream_q = 0;
    bp_in_port = -1;
    bp_upq = -1;
    bp_counted = false;
    bp_sampled = true;
    int_hops = [||];
    int_cnt = 0;
    sent_at = 0;
    enq_at = 0;
    q_delay = 0;
    hop_cnt = 0;
    ctrl_a = 0;
    ctrl_b = 0;
    ints = [||];
    path_hint = -1;
    pooled = false;
  }

let data ?sim ~flow ~seq ~payload ?(extra_header = 0) () =
  make ?sim Data ~flow ~src:flow.Flow.src ~dst:flow.Flow.dst
    ~size:(payload + header_bytes + extra_header)
    ~payload ~seq ~prio:flow.prio_class ()

(* ------------------------------ INT stack ------------------------------ *)

let fresh_hop () = { h_ts = 0; h_tx_bytes = 0; h_qlen = 0; h_gbps = 0.0; h_link = -1 }

let grow_hops t needed =
  let cap = Array.length t.int_hops in
  if needed > cap then begin
    let ncap = max needed (max 4 (cap * 2)) in
    let nh = Array.init ncap (fun i -> if i < cap then t.int_hops.(i) else fresh_hop ()) in
    t.int_hops <- nh
  end

let add_int_hop t ~ts ~tx_bytes ~qlen ~gbps ~link =
  grow_hops t (t.int_cnt + 1);
  let h = t.int_hops.(t.int_cnt) in
  h.h_ts <- ts;
  h.h_tx_bytes <- tx_bytes;
  h.h_qlen <- qlen;
  h.h_gbps <- gbps;
  h.h_link <- link;
  t.int_cnt <- t.int_cnt + 1

let int_hop_count t = t.int_cnt

let get_int_hop t i =
  if i < 0 || i >= t.int_cnt then invalid_arg "Packet.get_int_hop: index out of bounds";
  t.int_hops.(i)

let iter_int_hops f t =
  for i = 0 to t.int_cnt - 1 do
    f t.int_hops.(i)
  done

let clear_int_hops t = t.int_cnt <- 0

(* Field-by-field copy into [dst]'s own (reused) hop records. Sharing the
   array between packets would alias hop records across a recycled packet
   and a live ack — the classic use-after-release bug a pool invites. *)
let copy_int_hops ~src ~dst =
  grow_hops dst src.int_cnt;
  for i = 0 to src.int_cnt - 1 do
    let s = src.int_hops.(i) in
    let d = dst.int_hops.(i) in
    d.h_ts <- s.h_ts;
    d.h_tx_bytes <- s.h_tx_bytes;
    d.h_qlen <- s.h_qlen;
    d.h_gbps <- s.h_gbps;
    d.h_link <- s.h_link
  done;
  dst.int_cnt <- src.int_cnt

(* Deep field copy for handing a packet to another shard: the original
   stays behind (its sender may still read it, and it belongs to the
   source pool's lifecycle), while the clone carries every behavioral
   field across the channel. [flow] is deliberately dropped — flow
   records are mutated by the receiving host, so a pointer must never
   cross a domain; the PDES runtime re-binds the destination shard's
   replica by flow id at delivery. The uid is fresh (uids are per-sim
   diagnostics, not protocol state). *)
let clone ?sim p =
  let c = make ?sim p.kind ~src:p.src ~dst:p.dst ~size:p.size ~payload:p.payload ~seq:p.seq ~prio:p.prio () in
  c.remaining <- p.remaining;
  c.upstream_q <- p.upstream_q;
  c.ecn <- p.ecn;
  c.ecn_echo <- p.ecn_echo;
  c.bp_in_port <- p.bp_in_port;
  c.bp_upq <- p.bp_upq;
  c.bp_counted <- p.bp_counted;
  c.bp_sampled <- p.bp_sampled;
  copy_int_hops ~src:p ~dst:c;
  c.sent_at <- p.sent_at;
  c.enq_at <- p.enq_at;
  c.q_delay <- p.q_delay;
  c.hop_cnt <- p.hop_cnt;
  c.ctrl_a <- p.ctrl_a;
  c.ctrl_b <- p.ctrl_b;
  if Array.length p.ints > 0 then c.ints <- Array.copy p.ints;
  c.path_hint <- p.path_hint;
  c

(* ------------------------------ Exceptions ----------------------------- *)

exception Missing_flow of { uid : int; at : Bfc_engine.Time.t }

let () =
  Printexc.register_printer (function
    | Missing_flow { uid; at } ->
      Some
        (Format.asprintf "Packet.Missing_flow(uid=%d, t=%a): data-path packet without a flow" uid
           Bfc_engine.Time.pp at)
    | _ -> None)

let flow_exn t ~at = match t.flow with Some f -> f | None -> raise (Missing_flow { uid = t.uid; at })

let is_control t =
  match t.kind with
  | Pause | Resume | Pause_bitmap | Hop_credit | Pfc | Cnp -> true
  | Data | Ack | Nack | Credit | Credit_req | Grant -> false

let flow_id t = match t.flow with Some f -> f.Flow.id | None -> -1

(* -------------------------------- Pool --------------------------------- *)

module Pool = struct
  type packet = t

  type nonrec t = {
    sim : Bfc_engine.Sim.t;
    mutable free : packet array;
    mutable n_free : int;
    mutable allocated : int;
    mutable recycled : int;
  }

  let create ~sim = { sim; free = [||]; n_free = 0; allocated = 0; recycled = 0 }

  let free_count t = t.n_free

  let allocated t = t.allocated

  let recycled t = t.recycled

  (* Full reset to [make]'s defaults: an acquired packet must be
     indistinguishable from a fresh one, or a stale [ecn_echo] / [bp_*] /
     cursor silently corrupts the next flow that reuses it. The INT-hop
     backing array is kept (records are reused via the cursor). *)
  let reset (p : packet) =
    p.flow <- None;
    p.src <- -1;
    p.dst <- -1;
    p.size <- 0;
    p.payload <- 0;
    p.seq <- 0;
    p.ecn <- false;
    p.ecn_echo <- false;
    p.prio <- 0;
    p.remaining <- 0;
    p.upstream_q <- 0;
    p.bp_in_port <- -1;
    p.bp_upq <- -1;
    p.bp_counted <- false;
    p.bp_sampled <- true;
    p.int_cnt <- 0;
    p.sent_at <- 0;
    p.enq_at <- 0;
    p.q_delay <- 0;
    p.hop_cnt <- 0;
    p.ctrl_a <- 0;
    p.ctrl_b <- 0;
    p.ints <- [||];
    p.path_hint <- -1

  let release t (p : packet) =
    if p.pooled then invalid_arg "Packet.Pool.release: double release";
    reset p;
    p.pooled <- true;
    let cap = Array.length t.free in
    if t.n_free = cap then begin
      let ncap = if cap = 0 then 64 else cap * 2 in
      let nf = Array.make ncap p in
      Array.blit t.free 0 nf 0 t.n_free;
      t.free <- nf
    end;
    t.free.(t.n_free) <- p;
    t.n_free <- t.n_free + 1

  let acquire t kind ?flow ~src ~dst ~size ?(payload = 0) ?(seq = 0) ?(prio = 0) () =
    if t.n_free = 0 then begin
      t.allocated <- t.allocated + 1;
      make ~sim:t.sim kind ?flow ~src ~dst ~size ~payload ~seq ~prio ()
    end
    else begin
      t.n_free <- t.n_free - 1;
      let p = t.free.(t.n_free) in
      t.recycled <- t.recycled + 1;
      p.pooled <- false;
      p.uid <- Bfc_engine.Sim.fresh_uid t.sim;
      p.kind <- kind;
      p.flow <- flow;
      p.src <- src;
      p.dst <- dst;
      p.size <- size;
      p.payload <- payload;
      p.seq <- seq;
      p.prio <- prio;
      p
    end

  let data t ~flow ~seq ~payload ?(extra_header = 0) () =
    acquire t Data ~flow ~src:flow.Flow.src ~dst:flow.Flow.dst
      ~size:(payload + header_bytes + extra_header)
      ~payload ~seq ~prio:flow.prio_class ()
end
