(* Parallel-array 4-ary min-heap. Priorities, secondary ranks, and
   tie-breaking sequence numbers live in unboxed int arrays; values in a
   fourth array. The hot-path accessors ([pop_min_exn], [peek_priority])
   allocate nothing — no entry record, no [Some (p, v)] tuple — which
   matters because the simulator pops one event per packet per hop.

   Ordering is (priority, rank, seq). The rank is a caller-supplied
   secondary key (default 0); the simulator passes its clock at insertion
   time so that entries inserted later than a sequential run would have —
   cross-shard deliveries placed at a PDES window barrier — can take the
   position the sequential run would have given them. When every push
   carries a non-decreasing rank (any sequential run: the clock is
   monotone), (rank, seq) orders exactly like seq alone, so the rank
   changes nothing there.

   Two further hot-path choices, both measured on the event-engine macro
   benchmark: a branching factor of 4 halves the tree depth versus a binary
   heap (the four children of a node share cache lines in the parallel
   arrays), and sifting moves a hole instead of swapping — the displaced
   element's (priority, rank, seq, value) stay in locals and are written
   exactly once at the final position. Internal index arithmetic is
   trusted, so the sift loops use unsafe array accessors; every index is
   derived from [size], which the public API keeps within capacity. *)

type 'a t = {
  mutable prios : int array;
  mutable ranks : int array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable size : int;
  mutable next_seq : int;
}

exception Empty

let () =
  Printexc.register_printer (function
    | Empty -> Some "Heap.Empty (pop/peek on an empty heap)"
    | _ -> None)

let create () =
  { prios = [||]; ranks = [||]; seqs = [||]; vals = [||]; size = 0; next_seq = 0 }

let length t = t.size

let is_empty t = t.size = 0

let capacity t = Array.length t.vals

(* [v] seeds the value array on first growth; after that slots are recycled. *)
let grow t v =
  let cap = Array.length t.vals in
  if t.size = cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let np = Array.make ncap 0 in
    let nr = Array.make ncap 0 in
    let ns = Array.make ncap 0 in
    let nv = Array.make ncap v in
    Array.blit t.prios 0 np 0 t.size;
    Array.blit t.ranks 0 nr 0 t.size;
    Array.blit t.seqs 0 ns 0 t.size;
    Array.blit t.vals 0 nv 0 t.size;
    t.prios <- np;
    t.ranks <- nr;
    t.seqs <- ns;
    t.vals <- nv
  end

let push t ?(rank = 0) ~priority value =
  grow t value;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let prios = t.prios and ranks = t.ranks and seqs = t.seqs and vals = t.vals in
  (* sift the hole up; write the new element once at its final slot *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 4 in
    let pp = Array.unsafe_get prios parent in
    let less =
      priority < pp
      || (priority = pp
         &&
         let pr = Array.unsafe_get ranks parent in
         rank < pr || (rank = pr && seq < Array.unsafe_get seqs parent))
    in
    if less then begin
      Array.unsafe_set prios !i pp;
      Array.unsafe_set ranks !i (Array.unsafe_get ranks parent);
      Array.unsafe_set seqs !i (Array.unsafe_get seqs parent);
      Array.unsafe_set vals !i (Array.unsafe_get vals parent);
      i := parent
    end
    else continue := false
  done;
  Array.unsafe_set prios !i priority;
  Array.unsafe_set ranks !i rank;
  Array.unsafe_set seqs !i seq;
  Array.unsafe_set vals !i value

let peek_priority t =
  if t.size = 0 then raise Empty;
  t.prios.(0)

let pop_min_exn t =
  let n = t.size - 1 in
  if n < 0 then raise Empty;
  let prios = t.prios and ranks = t.ranks and seqs = t.seqs and vals = t.vals in
  let top = Array.unsafe_get vals 0 in
  t.size <- n;
  if n > 0 then begin
    (* re-insert the last element by sifting a hole down from the root *)
    let mp = Array.unsafe_get prios n in
    let mr = Array.unsafe_get ranks n in
    let ms = Array.unsafe_get seqs n in
    let mv = Array.unsafe_get vals n in
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let c0 = (4 * !i) + 1 in
      if c0 >= n then continue := false
      else begin
        (* smallest of up to four children *)
        let last = min (c0 + 3) (n - 1) in
        let best = ref c0 in
        let bp = ref (Array.unsafe_get prios c0) in
        let br = ref (Array.unsafe_get ranks c0) in
        let bs = ref (Array.unsafe_get seqs c0) in
        for c = c0 + 1 to last do
          let cp = Array.unsafe_get prios c in
          let less =
            cp < !bp
            || (cp = !bp
               &&
               let cr = Array.unsafe_get ranks c in
               cr < !br || (cr = !br && Array.unsafe_get seqs c < !bs))
          in
          if less then begin
            best := c;
            bp := cp;
            br := Array.unsafe_get ranks c;
            bs := Array.unsafe_get seqs c
          end
        done;
        if !bp < mp || (!bp = mp && (!br < mr || (!br = mr && !bs < ms))) then begin
          Array.unsafe_set prios !i !bp;
          Array.unsafe_set ranks !i !br;
          Array.unsafe_set seqs !i !bs;
          Array.unsafe_set vals !i (Array.unsafe_get vals !best);
          i := !best
        end
        else continue := false
      end
    done;
    Array.unsafe_set prios !i mp;
    Array.unsafe_set ranks !i mr;
    Array.unsafe_set seqs !i ms;
    Array.unsafe_set vals !i mv
  end;
  top

(* Batched pop, ordering-compatible with [Wheel.drain_run]: drain the
   maximal leading run of entries at priority [time] with rank strictly
   below [rank_bound] (entries inserted at earlier clocks, which nothing
   [f] executes can overtake), calling [f] on each; when the head itself
   is at or above the bound, pop exactly one entry. [f] may push — the
   parallel arrays are re-read from [t] every iteration, and a push at
   the same priority carries rank >= the bound, which ends the run —
   but must not pop. The heap still pays a sift per entry; the win here
   is the caller's amortized head checks, not the pop itself. *)
let drain_run t ~time ~rank_bound f =
  let n = ref 0 in
  while
    t.size > 0
    && Array.unsafe_get t.prios 0 = time
    && (!n = 0 || Array.unsafe_get t.ranks 0 < rank_bound)
  do
    let v = pop_min_exn t in
    incr n;
    f v
  done;
  !n

let pop t =
  if t.size = 0 then None
  else begin
    let p = t.prios.(0) in
    Some (p, pop_min_exn t)
  end

let peek t = if t.size = 0 then None else Some (t.prios.(0), t.vals.(0))

let min_priority t = if t.size = 0 then None else Some t.prios.(0)

(* Keep the backing arrays: pooled simulations clear and refill the heap
   repeatedly, and re-growing from zero capacity each round defeats the
   point. Popped value slots are not scrubbed — they are overwritten by the
   next pushes, and the values the engine stores (event handles) are small. *)
let clear t =
  t.size <- 0;
  t.next_seq <- 0
