(* Hierarchical timing wheel (Varghese & Lauck), the O(1) alternative to
   the binary/4-ary heap for the simulator's event mix: almost every event
   is a short-horizon rearm (port wakeups, in-flight deliveries), which a
   heap pays O(log n) to push and pop while a wheel pays a digit split and
   an array append.

   Layout: [levels] wheels of [bsize] buckets each; level [l]'s buckets
   span [bsize^l] ticks, so the hierarchy covers the whole non-negative
   int range. An entry lives at the level of the most-significant base-
   [bsize] digit in which its deadline differs from the cursor ([wnow]);
   when the cursor enters a higher-level bucket the bucket cascades: its
   entries are re-dealt into the levels below. A level-0 bucket therefore
   holds entries of exactly one deadline.

   Ordering contract (what makes a wheel run byte-identical to the heap):
   pops come out in strict (time, rank, insertion-seq) order, where the
   rank is a caller-supplied secondary key (default 0). [push] requires
   ranks to be non-decreasing among same-time entries — free for the
   simulator, whose rank is its monotone clock — so no sorting is needed
   to maintain the order: same-time entries share every digit, so they
   sit in the same bucket at every level, are appended in push order, and
   cascades preserve bucket order. The one exception is a push below the
   cursor (legal down to the last popped time: [Sim.run ~until] can park
   the cursor on a far-future event and then admit new near-term work
   between runs); those are placed into the cursor bucket by an explicit
   sorted insert. [push_late] lifts the monotone-rank requirement — a
   PDES barrier inserts cross-shard deliveries whose rank (their virtual
   send time) is below ranks already pushed — by paying a bucket scan to
   find the (time, rank, seq) position.

   Cancellation is lazy: the wheel never searches for an entry. The
   optional [garbage] predicate lets the owner mark entries dead
   (e.g. cancelled simulation events); a cascade drops dead entries
   instead of re-dealing them, so tombstones cost one bucket slot until
   the next cascade sweeps them, never a re-insertion.

   Buckets are parallel int arrays (time, rank, seq) plus a value array,
   grown geometrically and reused forever — steady-state push/pop
   allocates nothing. Index arithmetic inside the scan loops is derived
   from [bsize]-bounded cursors, so it uses unsafe accessors like Heap. *)

let bits = 8

let bsize = 1 lsl bits (* buckets per level *)

let bmask = bsize - 1

(* 8 levels x 8 bits = 64 bits: deadlines up to max_int are representable
   (digits above the top level are always zero for OCaml's 63-bit ints). *)
let levels = 8

type 'a bucket = {
  mutable bt : int array; (* absolute deadlines *)
  mutable br : int array; (* secondary ranks *)
  mutable bs : int array; (* global insertion sequence numbers *)
  mutable bv : 'a array;
  mutable blen : int;
}

type 'a t = {
  lv : 'a bucket array array; (* lv.(level).(slot) *)
  l0 : 'a bucket array; (* alias of lv.(0), the hot level *)
  garbage : 'a -> bool;
  release : 'a -> unit; (* called on every purged garbage entry *)
  mutable wnow : int; (* deadline of the bucket under the cursor *)
  mutable ci : int; (* pop cursor inside the current level-0 bucket *)
  mutable size : int; (* resident entries, including unpurged garbage *)
  mutable next_seq : int;
  mutable cap : int; (* total allocated bucket slots, for profiling *)
}

exception Empty

let () =
  Printexc.register_printer (function
    | Empty -> Some "Wheel.Empty (pop on an empty wheel)"
    | _ -> None)

let create ?(garbage = fun _ -> false) ?(release = fun _ -> ()) () =
  let lv =
    Array.init levels (fun _ ->
        Array.init bsize (fun _ -> { bt = [||]; br = [||]; bs = [||]; bv = [||]; blen = 0 }))
  in
  { lv; l0 = lv.(0); garbage; release; wnow = 0; ci = 0; size = 0; next_seq = 0; cap = 0 }

let length t = t.size

let is_empty t = t.size = 0

let capacity t = t.cap

(* The level of the most-significant base-[bsize] digit in which [time]
   and the cursor differ; 0 when they agree everywhere (time = wnow). *)
let level_for t time =
  let l = ref 0 in
  while
    !l < levels - 1 && time lsr ((!l + 1) * bits) <> t.wnow lsr ((!l + 1) * bits)
  do
    incr l
  done;
  !l

(* [v] seeds the value array on first growth, after which slots are
   recycled (stale values are overwritten before use). *)
let bucket_grow t b v =
  let cap = Array.length b.bv in
  let ncap = if cap = 0 then 8 else cap * 2 in
  t.cap <- t.cap + (ncap - cap);
  let nt = Array.make ncap 0
  and nr = Array.make ncap 0
  and ns = Array.make ncap 0
  and nv = Array.make ncap v in
  Array.blit b.bt 0 nt 0 b.blen;
  Array.blit b.br 0 nr 0 b.blen;
  Array.blit b.bs 0 ns 0 b.blen;
  Array.blit b.bv 0 nv 0 b.blen;
  b.bt <- nt;
  b.br <- nr;
  b.bs <- ns;
  b.bv <- nv

(* Append one entry. *)
let bucket_put t b time rank seq v =
  if b.blen = Array.length b.bv then bucket_grow t b v;
  Array.unsafe_set b.bt b.blen time;
  Array.unsafe_set b.br b.blen rank;
  Array.unsafe_set b.bs b.blen seq;
  Array.unsafe_set b.bv b.blen v;
  b.blen <- b.blen + 1

(* Drop dead entries from a bucket in place, preserving relative order —
   the same purge a cascade performs, applied early. Freed tail slots
   keep duplicate value refs (the owner scrubs payloads it cares about:
   Sim drops a handle's closure on cancel and after firing). *)
let bucket_compact t b =
  let w = ref 0 in
  for k = 0 to b.blen - 1 do
    let v = Array.unsafe_get b.bv k in
    if t.garbage v then begin
      t.size <- t.size - 1;
      t.release v
    end
    else begin
      if !w < k then begin
        Array.unsafe_set b.bt !w (Array.unsafe_get b.bt k);
        Array.unsafe_set b.br !w (Array.unsafe_get b.br k);
        Array.unsafe_set b.bs !w (Array.unsafe_get b.bs k);
        Array.unsafe_set b.bv !w v
      end;
      incr w
    end
  done;
  b.blen <- !w

(* Append, shedding tombstones under growth pressure: a full bucket is
   compacted before it is allowed to double, so far-future buckets that
   no cascade reaches within a run (cancelled retransmit timers pile up
   there) stay sized to their live population instead of growing with
   the total event count. If compaction frees less than a quarter of the
   bucket, grow anyway so pushes stay amortized O(1). Only safe where no
   in-bucket position is held across the call — the cursor bucket
   ([bucket_insert_sorted] fences on [ci]) and [push_late] (its insert
   position is computed before the append) must use plain [bucket_put]. *)
let bucket_put_pressure t b time rank seq v =
  let cap = Array.length b.bv in
  if b.blen = cap && cap > 0 then begin
    bucket_compact t b;
    if b.blen >= cap - (cap / 4) then bucket_grow t b v
  end;
  bucket_put t b time rank seq v

(* Sorted insert for pushes at or below the cursor: walk the fresh tail
   entry left to its (time, rank, seq) slot. [from] fences off already-
   popped entries. The cursor bucket is kept fully sorted by this same
   walk, so the lexicographic stop condition lands the entry exactly: a
   monotone push (rank and seq both maximal) only moves past strictly-
   later deadlines — a push at the cursor time lands at the tail without
   moving at all — while a [push_late] entry also moves past same-time
   entries of larger rank. *)
let bucket_insert_sorted t b ~from time rank seq v =
  bucket_put t b time rank seq v;
  let i = ref (b.blen - 1) in
  let continue = ref true in
  while !continue && !i > from do
    let j = !i - 1 in
    let tj = Array.unsafe_get b.bt j in
    let after =
      tj > time
      || (tj = time
         &&
         let rj = Array.unsafe_get b.br j in
         rj > rank || (rj = rank && Array.unsafe_get b.bs j > seq))
    in
    if after then begin
      Array.unsafe_set b.bt !i tj;
      Array.unsafe_set b.br !i (Array.unsafe_get b.br j);
      Array.unsafe_set b.bs !i (Array.unsafe_get b.bs j);
      Array.unsafe_set b.bv !i (Array.unsafe_get b.bv j);
      decr i
    end
    else continue := false
  done;
  Array.unsafe_set b.bt !i time;
  Array.unsafe_set b.br !i rank;
  Array.unsafe_set b.bs !i seq;
  Array.unsafe_set b.bv !i v

let push t ?(rank = 0) ~priority:time value =
  if time < 0 then invalid_arg "Wheel.push: negative priority";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.size <- t.size + 1;
  if time <= t.wnow then
    (* cursor bucket: either exactly the cursor deadline, or the
       below-cursor staging case described in the header comment *)
    bucket_insert_sorted t (Array.unsafe_get t.l0 (t.wnow land bmask)) ~from:t.ci time rank seq
      value
  else begin
    let l = level_for t time in
    let b = Array.unsafe_get (Array.unsafe_get t.lv l) ((time lsr (l * bits)) land bmask) in
    bucket_put_pressure t b time rank seq value;
    (* Insertion-sort the fresh tail entry left past larger ranks. With
       fully monotone ranks this loop runs zero iterations (one compare);
       it exists for the bounded disorder the simulator produces — pushes
       within one clock instant carry a canonical low-bits key, so a
       burst of same-instant pushes is not rank-sorted on arrival. Ranks
       across instants are monotone, so the walk never leaves the
       same-instant tail, and the bucket stays rank-sorted — which is
       what keeps same-deadline runs in (rank, seq) pop order. *)
    let i = ref (b.blen - 1) in
    let continue = ref true in
    while !continue && !i > 0 do
      let j = !i - 1 in
      if Array.unsafe_get b.br j > rank then begin
        Array.unsafe_set b.bt !i (Array.unsafe_get b.bt j);
        Array.unsafe_set b.br !i (Array.unsafe_get b.br j);
        Array.unsafe_set b.bs !i (Array.unsafe_get b.bs j);
        Array.unsafe_set b.bv !i (Array.unsafe_get b.bv j);
        decr i
      end
      else continue := false
    done;
    if !i < b.blen - 1 then begin
      Array.unsafe_set b.bt !i time;
      Array.unsafe_set b.br !i rank;
      Array.unsafe_set b.bs !i seq;
      Array.unsafe_set b.bv !i value
    end
  end

(* Out-of-rank-order insert (the PDES barrier): the entry's rank may be
   below ranks already resident at the same deadline, so the append fast
   path would mis-order it. Above the cursor the target bucket is not
   time-sorted (digit placement orders deadlines), so the entry goes
   immediately before the leftmost same-deadline entry of larger
   (rank, seq) — an O(bucket) scan, fine for the handful of cross-shard
   messages a barrier carries. At or below the cursor the sorted insert
   already handles arbitrary ranks. *)
let push_late t ~priority:time ~rank value =
  if time < 0 then invalid_arg "Wheel.push_late: negative priority";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.size <- t.size + 1;
  if time <= t.wnow then
    bucket_insert_sorted t (Array.unsafe_get t.l0 (t.wnow land bmask)) ~from:t.ci time rank seq
      value
  else begin
    let l = level_for t time in
    let b = Array.unsafe_get (Array.unsafe_get t.lv l) ((time lsr (l * bits)) land bmask) in
    (* leftmost same-deadline entry strictly after (rank, seq), if any *)
    let pos = ref (-1) in
    let i = ref 0 in
    while !pos < 0 && !i < b.blen do
      (if Array.unsafe_get b.bt !i = time then begin
         let ri = Array.unsafe_get b.br !i in
         if ri > rank || (ri = rank && Array.unsafe_get b.bs !i > seq) then pos := !i
       end);
      incr i
    done;
    bucket_put t b time rank seq value;
    match !pos with
    | -1 -> () (* no later same-deadline entry: the tail is the slot *)
    | p ->
      let last = b.blen - 1 in
      for j = last downto p + 1 do
        Array.unsafe_set b.bt j (Array.unsafe_get b.bt (j - 1));
        Array.unsafe_set b.br j (Array.unsafe_get b.br (j - 1));
        Array.unsafe_set b.bs j (Array.unsafe_get b.bs (j - 1));
        Array.unsafe_set b.bv j (Array.unsafe_get b.bv (j - 1))
      done;
      Array.unsafe_set b.bt p time;
      Array.unsafe_set b.br p rank;
      Array.unsafe_set b.bs p seq;
      Array.unsafe_set b.bv p value
  end

(* A bucket that grew past this many slots has its arrays released after
   it cascades instead of being kept for reuse: high-level buckets are
   revisited only after a full wrap of their level (65 ms at level 2), so
   a burst-grown array would otherwise sit idle — with stale value refs
   in its tail — for the rest of the run. Hot low-level buckets stay far
   below the threshold and keep their arrays. *)
let shrink_threshold = 1024

(* Re-deal a cascading bucket into the levels below; dead entries are
   purged here instead of travelling further down the hierarchy. Source
   order is preserved, which keeps same-deadline runs in (rank, seq)
   order. *)
let redistribute t src =
  let n = src.blen in
  src.blen <- 0;
  for k = 0 to n - 1 do
    let v = Array.unsafe_get src.bv k in
    if t.garbage v then begin
      t.size <- t.size - 1;
      t.release v
    end
    else begin
      let time = Array.unsafe_get src.bt k in
      let l = level_for t time in
      let b = Array.unsafe_get (Array.unsafe_get t.lv l) ((time lsr (l * bits)) land bmask) in
      bucket_put_pressure t b time (Array.unsafe_get src.br k) (Array.unsafe_get src.bs k) v
    end
  done;
  if Array.length src.bv > shrink_threshold then begin
    t.cap <- t.cap - Array.length src.bv;
    src.bt <- [||];
    src.br <- [||];
    src.bs <- [||];
    src.bv <- [||]
  end

(* Position the cursor on the next resident entry. Returns false when
   the wheel drained (possibly because a cascade purged the remaining
   garbage). Each cascade strictly advances [wnow], so the mutual
   recursion is bounded by the number of levels per resident entry. *)
let rec reposition t =
  if t.size = 0 then false
  else begin
    let b = Array.unsafe_get t.l0 (t.wnow land bmask) in
    if t.ci < b.blen then true
    else begin
      b.blen <- 0;
      t.ci <- 0;
      (* scan the rest of the level-0 window *)
      let base = t.wnow land lnot bmask in
      let i = ref ((t.wnow land bmask) + 1) in
      let found = ref false in
      while (not !found) && !i < bsize do
        if (Array.unsafe_get t.l0 !i).blen > 0 then found := true else incr i
      done;
      if !found then begin
        t.wnow <- base lor !i;
        true
      end
      else cascade t 1
    end
  end

and cascade t l =
  if l >= levels then false
  else begin
    let lvl = Array.unsafe_get t.lv l in
    let i = ref (((t.wnow lsr (l * bits)) land bmask) + 1) in
    let found = ref false in
    while (not !found) && !i < bsize do
      if (Array.unsafe_get lvl !i).blen > 0 then found := true else incr i
    done;
    if not !found then cascade t (l + 1)
    else begin
      let span = (l + 1) * bits in
      (* keep the digits above level l, set digit l, zero everything
         below (span >= 62 would shift past the int width; those digits
         are always zero for non-negative ints) *)
      let keep = if span >= 62 then 0 else t.wnow land lnot ((1 lsl span) - 1) in
      t.wnow <- keep lor (!i lsl (l * bits));
      t.ci <- 0;
      redistribute t (Array.unsafe_get lvl !i);
      reposition t
    end
  end

let head_time t =
  if reposition t then
    let b = Array.unsafe_get t.l0 (t.wnow land bmask) in
    Array.unsafe_get b.bt t.ci
  else -1

let pop_min_exn t =
  if not (reposition t) then raise Empty
  else begin
    let b = Array.unsafe_get t.l0 (t.wnow land bmask) in
    let v = Array.unsafe_get b.bv t.ci in
    t.ci <- t.ci + 1;
    t.size <- t.size - 1;
    v
  end

(* Batched pop: one reposition, then a straight scan of the (sorted)
   cursor bucket, calling [f] on each drained entry. Drains the maximal
   leading run of entries at deadline [time] whose rank is strictly
   below [rank_bound]; when the head entry itself is at or above the
   bound, pops exactly that one entry. The caller (Sim's fused run
   loop) passes [time = head_time] and [rank_bound = time lsl key_bits]:
   entries below the bound were inserted at strictly earlier clocks, so
   nothing [f] executes can push ahead of them — same-time entries pop
   in non-decreasing rank order, so the eligible run is exactly a
   prefix. [f] may push (the bucket arrays and [blen] are re-read every
   iteration, and a same-instant push carries rank >= the bound, which
   ends the run) but must not pop. The callback is the same value every
   call (Sim preallocates it), so the indirect call predicts perfectly —
   and nothing is copied out, so the drain itself performs no writes to
   the heap. Returns the number of entries drained (0 only when the
   wheel is empty or the head moved off [time]). *)
let drain_run t ~time ~rank_bound f =
  if not (reposition t) then 0
  else begin
    let b = Array.unsafe_get t.l0 (t.wnow land bmask) in
    if Array.unsafe_get b.bt t.ci <> time then 0
    else begin
      let n = ref 0 in
      while
        t.ci < b.blen
        && Array.unsafe_get b.bt t.ci = time
        && (!n = 0 || Array.unsafe_get b.br t.ci < rank_bound)
      do
        let v = Array.unsafe_get b.bv t.ci in
        t.ci <- t.ci + 1;
        t.size <- t.size - 1;
        incr n;
        f v
      done;
      !n
    end
  end

(* Keep the bucket arrays: cleared wheels refill without re-growing.
   Popped value slots are not scrubbed (overwritten by later pushes). *)
let clear t =
  Array.iter (fun lvl -> Array.iter (fun b -> b.blen <- 0) lvl) t.lv;
  t.wnow <- 0;
  t.ci <- 0;
  t.size <- 0;
  t.next_seq <- 0
