type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next_int64 t }

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 1)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias for large [n]. *)
  let mask_bits = bits t in
  if n land (n - 1) = 0 then mask_bits land (n - 1)
  else
    let rec loop v = if v < 0 then loop (bits t) else v mod n in
    loop mask_bits

let float t =
  (* 53 random bits mapped to [0,1). *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int v *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Rng.bernoulli: probability %g not in [0, 1]" p);
  (* The endpoints consume no randomness so that a degenerate coin does not
     perturb the stream of later draws. *)
  if p <= 0.0 then false else if p >= 1.0 then true else float t < p

let exponential t ~mean =
  let u = 1.0 -. float t in
  -.mean *. log u

let normal t =
  let rec nonzero () =
    let u = float t in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let lognormal t ~mu ~sigma = exp (mu +. (sigma *. normal t))

let lognormal_mean t ~mean ~sigma =
  let mu = log mean -. (sigma *. sigma /. 2.0) in
  lognormal t ~mu ~sigma

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
