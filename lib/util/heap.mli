(** Binary min-heap with integer priorities and stable ordering.

    The event queue of the simulator sits on top of this heap; entries
    pop in (priority, rank, insertion order), where the rank is an
    optional caller-supplied secondary key (default 0) — the simulator
    passes its clock at insertion so a PDES barrier can place a
    cross-shard delivery at the position a sequential run would have
    given it. With equal or monotone ranks the order reduces to
    (priority, insertion order), so simulations stay deterministic.
    Storage is four parallel arrays (priority, rank, sequence, value),
    so the non-option accessors below allocate nothing. *)

type 'a t

(** Raised by {!pop_min_exn} and {!peek_priority} on an empty heap. *)
exception Empty

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

(** Current backing-array capacity (grows geometrically, kept by {!clear}). *)
val capacity : 'a t -> int

(** [push t ?rank ~priority v] inserts [v]; [rank] (default 0) breaks
    priority ties ahead of insertion order. Amortized O(log n). *)
val push : 'a t -> ?rank:int -> priority:int -> 'a -> unit

(** [pop t] removes and returns the minimum-priority element (FIFO among
    equal priorities). Allocates the result tuple; the hot path should use
    {!peek_priority} + {!pop_min_exn} instead. *)
val pop : 'a t -> (int * 'a) option

(** [pop_min_exn t] removes and returns the minimum element without
    allocating. Raises {!Empty} when the heap is empty. *)
val pop_min_exn : 'a t -> 'a

(** [peek_priority t] is the priority of the minimum element, without
    allocating. Raises {!Empty} when the heap is empty. *)
val peek_priority : 'a t -> int

(** [drain_run t ~time ~rank_bound f] pops a same-instant batch,
    calling [f] on each entry in pop order, and returns the batch
    length — the same contract as {!Bfc_util.Wheel.drain_run}, so the
    simulator's fused run loop is backend-agnostic: the maximal leading
    run at priority [time] with rank strictly below [rank_bound], or
    exactly one entry when the head is at or above the bound. [f] may
    push but must not pop. *)
val drain_run : 'a t -> time:int -> rank_bound:int -> ('a -> unit) -> int

(** [peek t] returns the minimum without removing it. *)
val peek : 'a t -> (int * 'a) option

(** [min_priority t] is the priority of the minimum element. *)
val min_priority : 'a t -> int option

(** Empties the heap but keeps the backing arrays, so a cleared heap refills
    without re-growing from zero capacity. *)
val clear : 'a t -> unit
