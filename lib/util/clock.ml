(* The only sanctioned wall-clock reading in lib/. Simulated time comes from
   Engine.Time/Sim.now; this exists for progress reporting and experiment
   wall-time accounting only, and is fenced off here so the determinism lint
   (DT002/DT003) can forbid Unix time everywhere else. *)

(* bfc-lint: allow det-wallclock det-unix *)
let now_s () = Unix.gettimeofday ()

let elapsed_s ~since = now_s () -. since
