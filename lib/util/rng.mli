(** Deterministic pseudo-random number generation.

    A small, fast, splittable generator (splitmix64) used everywhere in the
    simulator so that experiments are reproducible from a single seed. *)

type t

(** [create seed] returns a fresh generator. Equal seeds give equal
    streams. *)
val create : int -> t

(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each traffic source / switch its own stream so that adding
    a component does not perturb the others. *)
val split : t -> t

(** [copy t] duplicates the current state (same future stream). *)
val copy : t -> t

(** Next raw 64-bit value (as an OCaml [int], so 63 bits retained). *)
val bits : t -> int

(** [int t n] is uniform in [0, n). Raises [Invalid_argument] if [n <= 0]. *)
val int : t -> int -> int

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [bernoulli t p] is a biased coin: [true] with probability [p]. The
    endpoints are exact ([p = 0.] never, [p = 1.] always) and consume no
    randomness. Raises [Invalid_argument] unless [0. <= p <= 1.] (NaN
    included). *)
val bernoulli : t -> float -> bool

(** [exponential t ~mean] samples Exp with the given mean. *)
val exponential : t -> mean:float -> float

(** [lognormal t ~mu ~sigma] samples exp(N(mu, sigma^2)). *)
val lognormal : t -> mu:float -> sigma:float -> float

(** [lognormal_mean t ~mean ~sigma] samples a lognormal with expectation
    [mean] and shape [sigma] (mu derived as ln mean - sigma^2/2). *)
val lognormal_mean : t -> mean:float -> sigma:float -> float

(** Standard normal via Box–Muller. *)
val normal : t -> float

(** [shuffle t a] shuffles [a] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [pick t a] returns a uniformly random element of [a].
    Raises [Invalid_argument] on an empty array. *)
val pick : t -> 'a array -> 'a
