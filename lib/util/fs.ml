(* The only sanctioned filesystem mutation in lib/ (CSV export directories).
   Fenced off here so the determinism lint (DT003) can forbid direct Unix
   calls everywhere else. *)

(* bfc-lint: allow det-unix *)
let ensure_dir path = if not (Sys.file_exists path) then Unix.mkdir path 0o755
