(** Hierarchical timing wheel: an O(1)-amortized event queue for
    monotone discrete-event workloads, drop-in ordering-compatible with
    {!Heap}.

    Entries are keyed by a non-negative integer deadline ([priority])
    and pop in strict (deadline, rank, insertion order) sequence — the
    same total order {!Heap} produces — so a simulator can switch
    between the two backends and replay byte-identical schedules. The
    rank is an optional secondary key (default 0); {!push} requires it
    to be non-decreasing among same-deadline entries (free when the
    rank is the simulator's monotone clock), while {!push_late} accepts
    arbitrary ranks at a per-push scan cost.

    The wheel is hierarchical: 8 levels of 256 power-of-two buckets,
    covering the full non-negative [int] range. Far-future entries park
    in coarse upper-level buckets and cascade down as the cursor
    advances; near-term entries (the overwhelmingly common case in the
    BFC engine: short-horizon rearms) hit a level-0 bucket directly.

    Monotonicity contract: deadlines must never be below the last
    popped deadline. Pushing below the {e cursor} is allowed — the
    cursor can sit ahead of the last pop when the head was peeked but
    not consumed — and is handled by a sorted insert into the cursor
    bucket.

    Cancellation is lazy: callers mark values dead and supply a
    [garbage] predicate at {!create}; cascades purge dead entries
    instead of re-dealing them. Dead entries that reach level 0 before
    a cascade sweeps them still pop normally (the caller skips them),
    exactly like heap tombstones. *)

type 'a t

exception Empty

val create : ?garbage:('a -> bool) -> ?release:('a -> unit) -> unit -> 'a t
(** [create ?garbage ?release ()] makes an empty wheel. [garbage v]
    should return [true] when [v] is a dead (cancelled) entry safe to
    drop during a cascade; it defaults to [fun _ -> false] (never
    purge). [release v] is invoked on every entry the wheel purges as
    garbage — an owner that pools its entries (Sim's typed event table)
    uses it to reclaim the slot, since a purged entry never reaches
    {!pop_min_exn}. Defaults to a no-op. *)

val length : 'a t -> int
(** Resident entries, including dead ones not yet purged or popped. *)

val is_empty : 'a t -> bool

val capacity : 'a t -> int
(** Total allocated bucket slots across all levels (profiling). *)

val push : 'a t -> ?rank:int -> priority:int -> 'a -> unit
(** [push t ?rank ~priority v] inserts [v] with deadline [priority];
    [rank] (default 0) breaks deadline ties ahead of insertion order.
    [priority] must be [>= 0] and at or after the last popped deadline.
    Ranks must be pushed in non-decreasing order except within a
    trailing burst (the simulator: insertions at one clock instant,
    whose rank low bits carry a canonical key) — the burst is
    insertion-sorted on arrival, zero-cost when ranks arrive monotone.
    A rank below ranks pushed before the current burst silently
    mis-orders (use {!push_late} for that). Amortized O(1); allocates
    only when a bucket grows. *)

val push_late : 'a t -> priority:int -> rank:int -> 'a -> unit
(** Like {!push} but accepts a [rank] below ranks already resident at
    the same deadline, placing the entry at its (deadline, rank,
    insertion order) position — how a PDES barrier inserts a
    cross-shard delivery at the rank of its virtual send time. Costs a
    scan of the target bucket. *)

val head_time : 'a t -> int
(** Deadline of the next entry to pop, or [-1] when the wheel is empty
    (deadlines are non-negative, so [-1] is unambiguous). May advance
    the internal cursor and purge garbage; amortized O(1). *)

val pop_min_exn : 'a t -> 'a
(** Remove and return the entry with the smallest (deadline, insertion
    order). Never allocates. @raise Empty when the wheel is empty. *)

val drain_run : 'a t -> time:int -> rank_bound:int -> ('a -> unit) -> int
(** [drain_run t ~time ~rank_bound f] pops a same-instant batch,
    calling [f] on each entry in pop order, and returns the batch
    length: the maximal leading run of entries at deadline [time] whose
    rank is strictly below [rank_bound], or exactly one entry when the
    head is at or above the bound. One cursor reposition covers the
    whole batch (against one per {!head_time}/{!pop_min_exn} pair),
    which is the wheel's share of the simulator's same-instant batch
    execution. [f] may push into the wheel but must not pop. Ordering
    caveat: entries at or above [rank_bound] may still be overtaken by
    pushes [f] makes, so only the caller's bound choice makes batch
    draining order-safe (see the simulator's run loop). Returns 0 when
    the wheel is empty or the head deadline is not [time]. *)

val clear : 'a t -> unit
(** Empty the wheel and rewind the cursor to time 0, keeping bucket
    arrays for reuse. *)
