(* Open-addressing int-keyed hash table for the per-packet hot paths
   (Host tx/rx lookup, Switch active-flow counting). Compared to
   [Hashtbl]:
     - no bucket lists, so a hit is a multiply, a mask and (usually) one
       array probe — no pointer chasing, no boxed key comparison;
     - lookups allocate nothing ([find_exn] + [match ... with exception
       Not_found] on the caller side, instead of [find_opt]'s [Some]);
     - deletions use backward-shift compaction, so there are no
       tombstones and probe chains never degrade.

   Keys are hashed with a Fibonacci-style odd multiplier (the splitmix64
   increment, truncated to OCaml's 62-bit literal range); multiplication
   by an odd constant is a bijection on the low bits, so masking cannot
   alias more keys than the table has slots. [min_int] is reserved as
   the empty-slot marker — flow and packet ids are small non-negative
   ints, far from it.

   The value array is seeded lazily by the first stored value (the Heap
   / Wheel idiom for ['a] arrays without a dummy), and slots freed by
   [remove]/[reset] are not scrubbed: stale values are unreachable
   (their key slot is [empty]) and are overwritten before any read. *)

let empty_key = min_int

let hash_mult = 0x2545F4914F6CDD1D

type 'a t = {
  mutable keys : int array;
  mutable vals : 'a array; (* length 0 until the first [set] *)
  mutable mask : int;
  mutable count : int;
}

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

let create ?(size = 16) () =
  let cap = next_pow2 (max 8 size) 8 in
  { keys = Array.make cap empty_key; vals = [||]; mask = cap - 1; count = 0 }

let length t = t.count

let slot t k = k * hash_mult land t.mask

let find_exn t k =
  let keys = t.keys in
  let mask = t.mask in
  let i = ref (slot t k) in
  while
    let kk = Array.unsafe_get keys !i in
    kk <> k && kk <> empty_key
  do
    i := (!i + 1) land mask
  done;
  if Array.unsafe_get keys !i = k then Array.unsafe_get t.vals !i else raise Not_found

let find_opt t k = match find_exn t k with exception Not_found -> None | v -> Some v

let mem t k = match find_exn t k with exception Not_found -> false | _ -> true

let grow t v =
  let ocap = t.mask + 1 in
  let ncap = ocap * 2 in
  let okeys = t.keys and ovals = t.vals in
  t.keys <- Array.make ncap empty_key;
  t.vals <- Array.make ncap v;
  t.mask <- ncap - 1;
  for j = 0 to ocap - 1 do
    let k = Array.unsafe_get okeys j in
    if k <> empty_key then begin
      let i = ref (slot t k) in
      while Array.unsafe_get t.keys !i <> empty_key do
        i := (!i + 1) land t.mask
      done;
      Array.unsafe_set t.keys !i k;
      Array.unsafe_set t.vals !i (Array.unsafe_get ovals j)
    end
  done

(* Pre-size for [n] entries: one allocation (and at most one rehash of
   whatever is already stored) instead of log(n) doubling rehashes while
   filling. Capacity lands at the next power of two >= 2n, honouring the
   1/2 load-factor bound, so [n] subsequent [set]s trigger no [grow].
   Used when the final population is known up front, e.g. the per-shard
   flow-replica tables built at PDES setup. *)
let reserve t n =
  let need = next_pow2 (max 8 (2 * n)) 8 in
  if need > t.mask + 1 then begin
    let okeys = t.keys and ovals = t.vals in
    let ocap = t.mask + 1 in
    t.keys <- Array.make need empty_key;
    t.mask <- need - 1;
    if Array.length ovals > 0 then begin
      (* any existing value works as the array seed *)
      t.vals <- Array.make need ovals.(0);
      for j = 0 to ocap - 1 do
        let k = Array.unsafe_get okeys j in
        if k <> empty_key then begin
          let i = ref (slot t k) in
          while Array.unsafe_get t.keys !i <> empty_key do
            i := (!i + 1) land t.mask
          done;
          Array.unsafe_set t.keys !i k;
          Array.unsafe_set t.vals !i (Array.unsafe_get ovals j)
        end
      done
    end
  end

let set t k v =
  if Array.length t.vals = 0 then t.vals <- Array.make (t.mask + 1) v;
  if 2 * (t.count + 1) > t.mask + 1 then grow t v;
  let keys = t.keys in
  let mask = t.mask in
  let i = ref (slot t k) in
  while
    let kk = Array.unsafe_get keys !i in
    kk <> k && kk <> empty_key
  do
    i := (!i + 1) land mask
  done;
  if Array.unsafe_get keys !i <> k then begin
    Array.unsafe_set keys !i k;
    t.count <- t.count + 1
  end;
  Array.unsafe_set t.vals !i v

(* Backward-shift deletion: close the hole at [i] by pulling back any
   later chain member whose home slot is at or before the hole. *)
let delete_at t i =
  let keys = t.keys and mask = t.mask in
  let i = ref i in
  let j = ref i.contents in
  let stop = ref false in
  while not !stop do
    j := (!j + 1) land mask;
    let k = Array.unsafe_get keys !j in
    if k = empty_key then begin
      Array.unsafe_set keys !i empty_key;
      stop := true
    end
    else begin
      let h = slot t k in
      if (!j - h) land mask >= (!j - !i) land mask then begin
        Array.unsafe_set keys !i k;
        Array.unsafe_set t.vals !i (Array.unsafe_get t.vals !j);
        i := !j
      end
    end
  done;
  t.count <- t.count - 1

let remove t k =
  let keys = t.keys and mask = t.mask in
  let i = ref (slot t k) in
  while
    let kk = Array.unsafe_get keys !i in
    kk <> k && kk <> empty_key
  do
    i := (!i + 1) land mask
  done;
  if Array.unsafe_get keys !i = k then delete_at t !i

let reset t =
  Array.fill t.keys 0 (Array.length t.keys) empty_key;
  t.count <- 0

(* Monomorphic int->int counter specialization: values live in a plain
   [int array] (no write barrier, no lazy seeding) and absent keys read
   as 0, so call sites need no [int ref] cells or option matching. *)
module Counter = struct
  type t = {
    mutable keys : int array;
    mutable vals : int array;
    mutable mask : int;
    mutable count : int;
  }

  let create ?(size = 16) () =
    let cap = next_pow2 (max 8 size) 8 in
    { keys = Array.make cap empty_key; vals = Array.make cap 0; mask = cap - 1; count = 0 }

  let length t = t.count

  let slot t k = k * hash_mult land t.mask

  let probe t k =
    let keys = t.keys in
    let mask = t.mask in
    let i = ref (slot t k) in
    while
      let kk = Array.unsafe_get keys !i in
      kk <> k && kk <> empty_key
    do
      i := (!i + 1) land mask
    done;
    !i

  let get t k =
    let i = probe t k in
    if Array.unsafe_get t.keys i = k then Array.unsafe_get t.vals i else 0

  let grow t =
    let ocap = t.mask + 1 in
    let ncap = ocap * 2 in
    let okeys = t.keys and ovals = t.vals in
    t.keys <- Array.make ncap empty_key;
    t.vals <- Array.make ncap 0;
    t.mask <- ncap - 1;
    for j = 0 to ocap - 1 do
      let k = Array.unsafe_get okeys j in
      if k <> empty_key then begin
        let i = ref (slot t k) in
        while Array.unsafe_get t.keys !i <> empty_key do
          i := (!i + 1) land t.mask
        done;
        Array.unsafe_set t.keys !i k;
        Array.unsafe_set t.vals !i (Array.unsafe_get ovals j)
      end
    done

  let incr t k =
    if 2 * (t.count + 1) > t.mask + 1 then grow t;
    let i = probe t k in
    if Array.unsafe_get t.keys i = k then
      Array.unsafe_set t.vals i (Array.unsafe_get t.vals i + 1)
    else begin
      Array.unsafe_set t.keys i k;
      Array.unsafe_set t.vals i 1;
      t.count <- t.count + 1
    end

  let delete_at t i =
    let keys = t.keys and mask = t.mask in
    let i = ref i in
    let j = ref i.contents in
    let stop = ref false in
    while not !stop do
      j := (!j + 1) land mask;
      let k = Array.unsafe_get keys !j in
      if k = empty_key then begin
        Array.unsafe_set keys !i empty_key;
        stop := true
      end
      else begin
        let h = slot t k in
        if (!j - h) land mask >= (!j - !i) land mask then begin
          Array.unsafe_set keys !i k;
          Array.unsafe_set t.vals !i (Array.unsafe_get t.vals !j);
          i := !j
        end
      end
    done;
    t.count <- t.count - 1

  let decr t k =
    let i = probe t k in
    if Array.unsafe_get t.keys i = k then begin
      let n = Array.unsafe_get t.vals i - 1 in
      if n <= 0 then delete_at t i else Array.unsafe_set t.vals i n
    end

  let reset t =
    Array.fill t.keys 0 (Array.length t.keys) empty_key;
    t.count <- 0
end
