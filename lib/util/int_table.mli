(** Open-addressing, linear-probing hash table keyed by [int], built
    for per-packet hot paths: no bucket lists, no boxing, and a
    zero-allocation lookup idiom.

    Any [int] key is accepted except [min_int] (reserved as the
    empty-slot marker). Deletion uses backward-shift compaction, so
    probe chains never accumulate tombstones. Load factor is kept at or
    below 1/2.

    The allocation-free lookup idiom:
    {[
      match Int_table.find_exn t key with
      | exception Not_found -> (* miss *)
      | v -> (* hit, no [Some] box *)
    ]} *)

type 'a t

val create : ?size:int -> unit -> 'a t
(** [create ?size ()] makes an empty table pre-sized for [size]
    entries (default 16). *)

val length : 'a t -> int

val mem : 'a t -> int -> bool

val find_exn : 'a t -> int -> 'a
(** Allocation-free lookup. @raise Not_found on a miss. *)

val find_opt : 'a t -> int -> 'a option
(** Convenience wrapper over {!find_exn}; allocates [Some] on a hit. *)

val reserve : 'a t -> int -> unit
(** [reserve t n] grows the backing arrays (once) so that [n] total
    entries fit within the 1/2 load-factor bound — [n] subsequent
    {!set}s perform no incremental rehash. Existing entries are kept.
    No-op when the table is already large enough. *)

val set : 'a t -> int -> 'a -> unit
(** Insert or overwrite. *)

val remove : 'a t -> int -> unit
(** No-op when the key is absent. *)

val reset : 'a t -> unit
(** Drop all entries, keeping the allocated arrays. *)

(** Monomorphic [int -> int] multiset counter (values in a flat
    [int array]: no write barrier, no per-key ref cells). Absent keys
    count as 0; {!Counter.decr} removes a key when its count reaches 0
    and ignores absent keys. *)
module Counter : sig
  type t

  val create : ?size:int -> unit -> t

  val length : t -> int
  (** Number of keys with a positive count. *)

  val get : t -> int -> int

  val incr : t -> int -> unit

  val decr : t -> int -> unit

  val reset : t -> unit
end
