(* Edge construction and bin lookup live in Buckets (shared with the
   Registry histograms in lib/obs); this module keeps the clamped
   log-spaced flavour. *)

type t = { edges : float array; counts : int array; mutable total : int }

let create ~lo ~hi ~bins =
  let edges =
    try Buckets.log_edges ~lo ~hi ~bins with Invalid_argument _ -> invalid_arg "Histogram.create"
  in
  { edges; counts = Array.make bins 0; total = 0 }

let bins t = Array.length t.counts

let bin_of t v = Buckets.clamped_bin ~edges:t.edges v

let add t v =
  let b = bin_of t v in
  t.counts.(b) <- t.counts.(b) + 1;
  t.total <- t.total + 1

let count t = t.total

let edges t = Array.copy t.edges

let counts t = Array.copy t.counts

let cumulative t =
  let n = bins t in
  let out = Array.make n 0.0 in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := !acc + t.counts.(i);
    out.(i) <- (if t.total = 0 then 0.0 else float_of_int !acc /. float_of_int t.total)
  done;
  out
