(** Filesystem side effects, quarantined (see {!Clock} for the rationale).
    The determinism lint rule DT003 (det-unix) forbids direct [Unix] calls
    anywhere else under [lib/]. *)

(** Create [path] as a directory (mode 0o755) if it does not already exist.
    Only creates the final component, like [mkdir] without [-p]. *)
val ensure_dir : string -> unit
