(* One binary search serving both fixed-bucket histogram flavours in the
   tree (Bfc_util.Histogram's clamped log bins and Bfc_obs.Registry's
   overflow-bucket histograms). The two public APIs differ only in how
   they treat the out-of-range ends, so both are thin wrappers over
   [upper_index]. *)

let check ~edges =
  let n = Array.length edges in
  if n = 0 then invalid_arg "Buckets.check: empty edges";
  for i = 1 to n - 1 do
    if not (edges.(i) > edges.(i - 1)) then
      invalid_arg "Buckets.check: edges must be strictly ascending"
  done

let upper_index ~edges v =
  let n = Array.length edges in
  if v < edges.(0) then 0
  else if v >= edges.(n - 1) then n
  else begin
    (* invariant: v >= edges.(!lo), v < edges.(!hi) *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if v >= edges.(mid) then lo := mid else hi := mid
    done;
    !hi
  end

let clamped_bin ~edges v =
  let bins = Array.length edges - 1 in
  let i = upper_index ~edges v - 1 in
  if i < 0 then 0 else if i >= bins then bins - 1 else i

let log_edges ~lo ~hi ~bins =
  if lo <= 0.0 || hi <= lo || bins <= 0 then invalid_arg "Buckets.log_edges";
  Array.init (bins + 1) (fun i ->
      let frac = float_of_int i /. float_of_int bins in
      lo *. exp (frac *. log (hi /. lo)))
