(** Collection and summarisation of samples (FCTs, queue depths, delays).

    [Sample] accumulates float observations and answers percentile / mean
    queries exactly (sorting on demand, caching the sorted view).
    [Running] is a constant-memory mean/variance accumulator. *)

module Sample : sig
  type t

  val create : unit -> t

  val add : t -> float -> unit

  val count : t -> int

  val is_empty : t -> bool

  val mean : t -> float

  val min : t -> float

  val max : t -> float

  val sum : t -> float

  val stddev : t -> float

  (** [percentile t p] with [p] in [0,100]; nearest-rank with linear
      interpolation. Raises [Invalid_argument] if empty or [p] out of
      range. *)
  val percentile : t -> float -> float

  (** [cdf t ~points] returns [(value, cumulative_fraction)] pairs at
      [points] evenly spaced ranks, suitable for plotting a CDF. *)
  val cdf : t -> points:int -> (float * float) list

  (** All values, sorted ascending (a copy). *)
  val sorted : t -> float array

  (** Visit values in insertion order. *)
  val iter : (float -> unit) -> t -> unit

  (** [append ~into src] adds every value of [src] to [into], preserving
      [src]'s insertion order ([sum]/[mean] accumulate in that order, so
      merged samples reproduce a single accumulator bit-for-bit). Used to
      merge per-shard buffer samples after a sharded run. *)
  val append : into:t -> t -> unit

  val clear : t -> unit
end

module Running : sig
  type t

  val create : unit -> t

  val add : t -> float -> unit

  val count : t -> int

  val mean : t -> float

  val variance : t -> float

  val max : t -> float

  val min : t -> float
end
