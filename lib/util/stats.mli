(** Collection and summarisation of samples (FCTs, queue depths, delays).

    [Sample] accumulates float observations and answers percentile / mean
    queries exactly. Quantile queries sort the backing array {e in place}
    (flagging it clean until the next [add]) rather than caching a sorted
    copy, so the exact path holds one copy of the data, not two.

    {b NaN ordering guarantee.} All ordering inside [Sample] uses
    [Float.compare], a total order in which every NaN compares equal to
    itself and {e below} every real number (and [-0.] below [0.]). So a
    stray NaN observation cannot poison the sort: NaNs collect at the front
    of {!sorted}, {!min} reports [nan] iff a NaN was added, {!max} still
    reports the largest real number, and low percentiles degrade to [nan]
    in proportion to how many NaNs were added instead of scrambling the
    whole order (as [(<)]-based sorting would).

    [Running] is a constant-memory mean/variance accumulator. *)

module Sample : sig
  type t

  val create : unit -> t

  val add : t -> float -> unit

  val count : t -> int

  val is_empty : t -> bool

  (** [sum /. count]; maintained incrementally in insertion order, so the
      float result is unaffected by the in-place sorting of queries. *)
  val mean : t -> float

  (** Smallest value in [Float.compare] order — [nan] iff a NaN was ever
      added (NaN sorts below every number), [nan] also when empty. *)
  val min : t -> float

  (** Largest value in [Float.compare] order — ignores NaNs unless the
      sample is all-NaN; [nan] when empty. *)
  val max : t -> float

  (** Running sum in insertion order. *)
  val sum : t -> float

  (** Sample standard deviation (n-1). Accumulated in ascending (sorted)
      order — a canonical order, so the float result does not depend on how
      observations interleaved. *)
  val stddev : t -> float

  (** [percentile t p] with [p] in [0,100]; nearest-rank with linear
      interpolation over the [Float.compare]-sorted values. Raises
      [Invalid_argument] if empty or [p] out of range. *)
  val percentile : t -> float -> float

  (** [cdf t ~points] returns [(value, cumulative_fraction)] pairs at
      [points] evenly spaced ranks, suitable for plotting a CDF. *)
  val cdf : t -> points:int -> (float * float) list

  (** All values, sorted ascending by [Float.compare] (a fresh copy; NaNs
      first — see the NaN ordering guarantee above). *)
  val sorted : t -> float array

  (** Visit values in storage order: insertion order until the first
      quantile query, sorted order after (queries sort in place). Callers
      needing a deterministic order should query {!sorted} or only [iter]
      before the first quantile query. *)
  val iter : (float -> unit) -> t -> unit

  (** [append ~into src] adds every value of [src] to [into] in [src]'s
      current storage order (see {!iter}). When both sides are unqueried —
      the in-tree pattern: per-shard buffer samples are merged before any
      stats are read — this reproduces a single accumulator's [sum]
      bit-for-bit. *)
  val append : into:t -> t -> unit

  val clear : t -> unit
end

module Running : sig
  type t

  val create : unit -> t

  val add : t -> float -> unit

  val count : t -> int

  val mean : t -> float

  val variance : t -> float

  val max : t -> float

  val min : t -> float
end
