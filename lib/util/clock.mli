(** Wall-clock readings, quarantined.

    Simulation logic must never read real time (it breaks deterministic
    replay); everything inside the simulator uses [Engine.Time]/[Sim.now].
    This wrapper is the single sanctioned escape hatch, for progress
    reporting and experiment wall-time accounting. The determinism lint
    rules (DT002 det-wallclock, DT003 det-unix) forbid direct [Unix] use
    anywhere else under [lib/]. *)

(** Seconds since the epoch, from the wall clock. *)
val now_s : unit -> float

(** [elapsed_s ~since] — seconds elapsed since a previous [now_s] reading. *)
val elapsed_s : since:float -> float
