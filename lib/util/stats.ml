module Sample = struct
  type t = {
    mutable data : float array;
    mutable size : int;
    mutable sorted : float array option; (* cache invalidated by add *)
  }

  let create () = { data = [||]; size = 0; sorted = None }

  let add t x =
    let cap = Array.length t.data in
    if t.size = cap then begin
      let ncap = if cap = 0 then 256 else cap * 2 in
      let nd = Array.make ncap 0.0 in
      Array.blit t.data 0 nd 0 t.size;
      t.data <- nd
    end;
    t.data.(t.size) <- x;
    t.size <- t.size + 1;
    t.sorted <- None

  let count t = t.size

  let is_empty t = t.size = 0

  let sorted t =
    match t.sorted with
    | Some s -> s
    | None ->
      let s = Array.sub t.data 0 t.size in
      (* Float.compare, not polymorphic compare: monomorphic (no boxing
         dispatch per comparison) and totally ordered on NaN, so a stray
         NaN sample cannot corrupt the sort order the percentile lookups
         rely on. *)
      Array.sort Float.compare s;
      t.sorted <- Some s;
      s

  let sum t =
    let acc = ref 0.0 in
    for i = 0 to t.size - 1 do
      acc := !acc +. t.data.(i)
    done;
    !acc

  let mean t = if t.size = 0 then nan else sum t /. float_of_int t.size

  let min t =
    let s = sorted t in
    if Array.length s = 0 then nan else s.(0)

  let max t =
    let s = sorted t in
    let n = Array.length s in
    if n = 0 then nan else s.(n - 1)

  let stddev t =
    if t.size < 2 then 0.0
    else begin
      let m = mean t in
      let acc = ref 0.0 in
      for i = 0 to t.size - 1 do
        let d = t.data.(i) -. m in
        acc := !acc +. (d *. d)
      done;
      sqrt (!acc /. float_of_int (t.size - 1))
    end

  let percentile t p =
    if t.size = 0 then invalid_arg "Stats.Sample.percentile: empty sample";
    if p < 0.0 || p > 100.0 then invalid_arg "Stats.Sample.percentile: p out of range";
    let s = sorted t in
    let n = Array.length s in
    if n = 1 then s.(0)
    else begin
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = Stdlib.min (lo + 1) (n - 1) in
      let frac = rank -. float_of_int lo in
      s.(lo) +. (frac *. (s.(hi) -. s.(lo)))
    end

  let cdf t ~points =
    let s = sorted t in
    let n = Array.length s in
    if n = 0 then []
    else begin
      let pts = Stdlib.max 2 points in
      List.init pts (fun i ->
          let frac = float_of_int i /. float_of_int (pts - 1) in
          let idx = Stdlib.min (n - 1) (int_of_float (frac *. float_of_int (n - 1))) in
          (s.(idx), float_of_int (idx + 1) /. float_of_int n))
    end

  let iter f t =
    for i = 0 to t.size - 1 do
      f t.data.(i)
    done

  (* Append [src] in its insertion order so a merged sample is
     indistinguishable from one built by a single accumulator that saw
     the same observations in the same sequence — order matters for the
     (order-sensitive) float [sum]/[mean]. *)
  let append ~into src = iter (add into) src

  let clear t =
    t.data <- [||];
    t.size <- 0;
    t.sorted <- None
end

module Running = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable max : float;
    mutable min : float;
  }

  let create () = { n = 0; mean = 0.0; m2 = 0.0; max = neg_infinity; min = infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x > t.max then t.max <- x;
    if x < t.min then t.min <- x

  let count t = t.n

  let mean t = if t.n = 0 then nan else t.mean

  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)

  let max t = t.max

  let min t = t.min
end
