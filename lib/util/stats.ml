module Sample = struct
  type t = {
    mutable data : float array;
    mutable size : int;
    mutable dirty : bool; (* values added since the last in-place sort *)
    (* Order-sensitive aggregates are maintained at [add] time, in
       insertion order, so quantile queries (which sort [data] in place
       and therefore lose the insertion order) cannot change them. *)
    mutable sum : float;
    mutable min_v : float;
    mutable max_v : float;
  }

  let create () =
    { data = [||]; size = 0; dirty = false; sum = 0.0; min_v = nan; max_v = nan }

  let add t x =
    let cap = Array.length t.data in
    if t.size = cap then begin
      let ncap = if cap = 0 then 256 else cap * 2 in
      let nd = Array.make ncap 0.0 in
      Array.blit t.data 0 nd 0 t.size;
      t.data <- nd
    end;
    t.data.(t.size) <- x;
    t.size <- t.size + 1;
    t.dirty <- true;
    t.sum <- t.sum +. x;
    (* Float.compare, not (<): totally ordered on NaN (NaN sorts below
       every number), so min/max agree with the sorted view's ends. *)
    if t.size = 1 || Float.compare x t.min_v < 0 then t.min_v <- x;
    if t.size = 1 || Float.compare x t.max_v > 0 then t.max_v <- x

  let count t = t.size

  let is_empty t = t.size = 0

  (* In-place heapsort of the live prefix [0, n): zero allocation, so the
     exact quantile path peaks at one copy of the data instead of the two
     the old full-copy sorted cache needed. Float.compare, not (<):
     monomorphic (no boxing dispatch per comparison) and totally ordered
     on NaN, so a stray NaN sample cannot corrupt the sort order the
     percentile lookups rely on (NaN sorts below every number). *)
  let sift_down a n root =
    let i = ref root and live = ref true in
    while !live do
      let l = (2 * !i) + 1 in
      if l >= n then live := false
      else begin
        let c = if l + 1 < n && Float.compare a.(l + 1) a.(l) > 0 then l + 1 else l in
        if Float.compare a.(c) a.(!i) > 0 then begin
          let tmp = a.(c) in
          a.(c) <- a.(!i);
          a.(!i) <- tmp;
          i := c
        end
        else live := false
      end
    done

  let sort_prefix a n =
    for root = (n / 2) - 1 downto 0 do
      sift_down a n root
    done;
    for last = n - 1 downto 1 do
      let tmp = a.(last) in
      a.(last) <- a.(0);
      a.(0) <- tmp;
      sift_down a last 0
    done

  let ensure_sorted t =
    if t.dirty then begin
      sort_prefix t.data t.size;
      t.dirty <- false
    end

  let sorted t =
    ensure_sorted t;
    Array.sub t.data 0 t.size

  let sum t = t.sum

  let mean t = if t.size = 0 then nan else t.sum /. float_of_int t.size

  let min t = t.min_v

  let max t = t.max_v

  let stddev t =
    if t.size < 2 then 0.0
    else begin
      (* Accumulate in ascending (sorted) order: a canonical order, so the
         float result does not depend on how observations interleaved. *)
      ensure_sorted t;
      let m = mean t in
      let acc = ref 0.0 in
      for i = 0 to t.size - 1 do
        let d = t.data.(i) -. m in
        acc := !acc +. (d *. d)
      done;
      sqrt (!acc /. float_of_int (t.size - 1))
    end

  let percentile t p =
    if t.size = 0 then invalid_arg "Stats.Sample.percentile: empty sample";
    if p < 0.0 || p > 100.0 then invalid_arg "Stats.Sample.percentile: p out of range";
    ensure_sorted t;
    let n = t.size in
    if n = 1 then t.data.(0)
    else begin
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = Stdlib.min (lo + 1) (n - 1) in
      let frac = rank -. float_of_int lo in
      t.data.(lo) +. (frac *. (t.data.(hi) -. t.data.(lo)))
    end

  let cdf t ~points =
    if t.size = 0 then []
    else begin
      ensure_sorted t;
      let n = t.size in
      let pts = Stdlib.max 2 points in
      List.init pts (fun i ->
          let frac = float_of_int i /. float_of_int (pts - 1) in
          let idx = Stdlib.min (n - 1) (int_of_float (frac *. float_of_int (n - 1))) in
          (t.data.(idx), float_of_int (idx + 1) /. float_of_int n))
    end

  let iter f t =
    for i = 0 to t.size - 1 do
      f t.data.(i)
    done

  (* Append [src] in its current storage order (insertion order, unless a
     quantile query has already sorted [src] in place) so a merged sample
     reproduces a single accumulator that saw the same sequence — order
     matters for the (order-sensitive) float [sum]. In-tree callers merge
     before querying, so the order is the insertion order in practice. *)
  let append ~into src = iter (add into) src

  let clear t =
    t.data <- [||];
    t.size <- 0;
    t.dirty <- false;
    t.sum <- 0.0;
    t.min_v <- nan;
    t.max_v <- nan
end

module Running = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable max : float;
    mutable min : float;
  }

  let create () = { n = 0; mean = 0.0; m2 = 0.0; max = neg_infinity; min = infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x > t.max then t.max <- x;
    if x < t.min then t.min <- x

  let count t = t.n

  let mean t = if t.n = 0 then nan else t.mean

  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)

  let max t = t.max

  let min t = t.min
end
