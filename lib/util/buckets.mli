(** Shared bucketing core for every fixed-edge histogram in the tree.

    Both {!Histogram} (clamped log-spaced bins) and [Bfc_obs.Registry]'s
    overflow-bucket histograms resolve values against a strictly ascending
    edge array with the same O(log n) search; they differ only in end
    handling, captured by the two lookup flavours below. *)

(** Raise [Invalid_argument] unless [edges] is non-empty and strictly
    ascending. *)
val check : edges:float array -> unit

(** [upper_index ~edges v] is the smallest index [i] with [v < edges.(i)],
    or [Array.length edges] when [v >= edges.(n-1)] — i.e. the bucket index
    in an {e overflow-bucket} scheme with [n + 1] buckets ([0] = underflow,
    [n] = overflow). NaN resolves to bucket 1 (both comparisons are false,
    matching the historical behaviour of each call site). *)
val upper_index : edges:float array -> float -> int

(** [clamped_bin ~edges v] is the index of the half-open bin
    [\[edges.(i), edges.(i+1))] containing [v], clamped to
    [\[0, bins - 1\]] with [bins = Array.length edges - 1] — the
    {e clamping} scheme used by {!Histogram}. *)
val clamped_bin : edges:float array -> float -> int

(** [log_edges ~lo ~hi ~bins] builds [bins + 1] logarithmically spaced
    edges from [lo] to [hi] (both > 0, [hi > lo]). *)
val log_edges : lo:float -> hi:float -> bins:int -> float array
