type family = Feasibility | Determinism | Robustness | Perf

type severity = Error | Warning

type t = {
  id : string;  (* stable short id, e.g. "DF001" *)
  name : string;  (* kebab-case name usable in suppression comments *)
  family : family;
  severity : severity;
  doc : string;
}

let family_to_string = function
  | Feasibility -> "feasibility"
  | Determinism -> "determinism"
  | Robustness -> "robustness"
  | Perf -> "perf"

let severity_to_string = function Error -> "error" | Warning -> "warning"

let df_list =
  {
    id = "DF001";
    name = "df-list";
    family = Feasibility;
    severity = Error;
    doc =
      "List operation in per-packet dataplane code: linked lists are unbounded and need pointer \
       chasing; Tofino per-packet state is fixed-size registers (paper 3.3)";
  }

let df_while =
  {
    id = "DF002";
    name = "df-while";
    family = Feasibility;
    severity = Error;
    doc =
      "while loop in per-packet dataplane code: every dataplane operation must be constant-time \
       (one pipeline pass per packet)";
  }

let df_rec =
  {
    id = "DF003";
    name = "df-rec";
    family = Feasibility;
    severity = Error;
    doc =
      "recursion in per-packet dataplane code: unbounded call depth has no Tofino equivalent; \
       unroll to a bounded loop or move off the packet path";
  }

let df_float =
  {
    id = "DF004";
    name = "df-float";
    family = Feasibility;
    severity = Error;
    doc =
      "float arithmetic in per-packet dataplane code: switch ALUs are integer-only; precompute a \
       lookup table at control-plane time (like Threshold.table)";
  }

let df_io =
  {
    id = "DF005";
    name = "df-io";
    family = Feasibility;
    severity = Warning;
    doc =
      "I/O or string formatting in per-packet dataplane code: allocation and side channels do not \
       exist on the packet path; use counters and the tracer instead";
  }

let det_random =
  {
    id = "DT001";
    name = "det-random";
    family = Determinism;
    severity = Error;
    doc =
      "Stdlib Random in lib/: its global state breaks reproducible replay; draw from a seeded \
       Bfc_util.Rng stream instead";
  }

let det_wallclock =
  {
    id = "DT002";
    name = "det-wallclock";
    family = Determinism;
    severity = Error;
    doc =
      "wall-clock reading in lib/: simulated time must come from Engine.Time/Sim.now; real time \
       only via Bfc_util.Clock (progress reporting)";
  }

let det_unix =
  {
    id = "DT003";
    name = "det-unix";
    family = Determinism;
    severity = Warning;
    doc =
      "direct Unix call in lib/: ambient OS state is nondeterministic; go through the \
       Bfc_util.Clock/Bfc_util.Fs wrappers";
  }

let det_hashtbl_order =
  {
    id = "DT004";
    name = "det-hashtbl-order";
    family = Determinism;
    severity = Warning;
    doc =
      "Hashtbl.iter/fold whose result is not piped through a deterministic sort: iteration order \
       depends on the hash seed; sort by key before the result feeds output or scheduling";
  }

let rob_catchall =
  {
    id = "RB001";
    name = "rob-catchall";
    family = Robustness;
    severity = Error;
    doc =
      "catch-all `try ... with _ ->` swallows structured errors (Sim.Runaway, Port.Busy, \
       Packet.Missing_flow); match the specific exceptions";
  }

let rob_assert_false =
  {
    id = "RB002";
    name = "rob-assert-false";
    family = Robustness;
    severity = Error;
    doc =
      "bare `assert false` on a packet path: raise a structured exception carrying packet id and \
       sim time (e.g. Packet.Missing_flow) so failures are diagnosable";
  }

let pf_closure_timer =
  {
    id = "PF001";
    name = "pf-closure-timer";
    family = Perf;
    severity = Error;
    doc =
      "Sim.at/Sim.after with a closure literal on a hot scheduling path: each arm allocates a \
       fresh closure; post a typed event (Sim.post with a class id) or pre-build the handle once \
       with Sim.make_handle";
  }

let all =
  [
    df_list;
    df_while;
    df_rec;
    df_float;
    df_io;
    det_random;
    det_wallclock;
    det_unix;
    det_hashtbl_order;
    rob_catchall;
    rob_assert_false;
    pf_closure_timer;
  ]

let find key =
  let k = String.lowercase_ascii key in
  List.find_opt (fun r -> String.lowercase_ascii r.id = k || r.name = k) all

(* [matches r key] — does suppression token [key] cover rule [r]?  Accepts the
   rule id (case-insensitive), the kebab name, or "all". *)
let matches r key =
  let k = String.lowercase_ascii key in
  k = "all" || k = String.lowercase_ascii r.id || k = r.name
