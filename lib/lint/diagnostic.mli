(** A single lint finding, anchored to a source location. *)

type t = {
  rule : Rule.t;
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, like the compiler *)
  message : string;
}

(** Order by (file, line, col, rule id) for stable reports. *)
val compare : t -> t -> int

(** [file:line:col: severity [ID name] message] *)
val to_human : t -> string

(** One JSON object (no trailing newline). *)
val to_json : t -> string

(** Escape a string for embedding in a JSON literal. *)
val json_escape : string -> string
