type t = {
  rule : Rule.t;
  file : string;
  line : int;
  col : int;
  message : string;
}

let compare a b =
  Stdlib.compare (a.file, a.line, a.col, a.rule.Rule.id) (b.file, b.line, b.col, b.rule.Rule.id)

let to_human d =
  Printf.sprintf "%s:%d:%d: %s [%s %s] %s" d.file d.line d.col
    (Rule.severity_to_string d.rule.Rule.severity)
    d.rule.Rule.id d.rule.Rule.name d.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  Printf.sprintf
    "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\"name\":\"%s\",\"family\":\"%s\",\"severity\":\"%s\",\"message\":\"%s\"}"
    (json_escape d.file) d.line d.col d.rule.Rule.id d.rule.Rule.name
    (Rule.family_to_string d.rule.Rule.family)
    (Rule.severity_to_string d.rule.Rule.severity)
    (json_escape d.message)
