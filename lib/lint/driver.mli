(** File discovery, parsing, and report rendering for bfc-lint. *)

(** Path → which rule families apply. Dataplane scope is the per-packet BFC
    modules ([lib/bfc/dataplane.ml], [lib/bfc/credit_dataplane.ml]); lib
    scope is any file under a [lib/] directory segment. *)
val scope_of_path : string -> Check.scope

(** Lint one source text. [virtual_path] overrides [path] for scope
    classification and reporting (fixture tests lint files as if they lived
    on a dataplane path). Returns findings paired with their suppression
    status, or a parse-failure reason. *)
val lint_source :
  ?virtual_path:string -> path:string -> string -> ((Diagnostic.t * bool) list, string) result

type report = {
  files : int;
  findings : (Diagnostic.t * bool) list;
  failures : (string * string) list;
}

(** Walk the given files/directories (recursively, [.ml] only, skipping
    [_build] and dot-dirs) and lint each. *)
val lint_paths : string list -> report

(** Unsuppressed findings. *)
val violations : report -> Diagnostic.t list

(** Findings covered by an allow comment. *)
val suppressed : report -> Diagnostic.t list

(** 0 clean, 1 violations, 2 parse/IO failures. *)
val exit_code : report -> int

val render_human : ?show_suppressed:bool -> report -> string

val render_json : report -> string

(** The rule table, one line per rule. *)
val render_rules : unit -> string
