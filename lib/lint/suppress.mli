(** Scanner for [(* bfc-lint: ... *)] comment directives.

    The parsetree drops comments, so directives are recovered from the raw
    source text, line by line:

    - [(* bfc-lint: allow <rule> [<rule> ...] *)] suppresses the listed
      rules (by id, kebab name, or ["all"]) on the same line and the line
      below; placed on (or immediately above) the first line of a top-level
      binding it covers the whole binding.
    - [(* bfc-lint: control-plane *)] immediately above a top-level binding
      marks it control-plane: dataplane-feasibility rules are skipped inside
      (determinism and robustness rules still apply). *)

type t

val scan : string -> t

(** Rule keys allowed exactly on [line]. *)
val allows_at : t -> line:int -> string list

(** Rule keys allowed on [line] or the line above it. *)
val allows_near : t -> line:int -> string list

(** Is there a control-plane marker on [line] or the line above it? *)
val control_plane_near : t -> line:int -> bool
