(* The Ast_iterator pass implementing every rule.

   Scope model:
   - [lib] files (anything under a lib/ segment) get the determinism and
     robustness families;
   - [dataplane] files (the per-packet BFC dataplane modules) additionally
     get the feasibility family, except inside top-level bindings marked
     [(* bfc-lint: control-plane *)] (setup code that corresponds to the
     switch control plane loading the P4 program).

   Known limitations (documented in DESIGN.md): the pass sees one parsetree
   at a time, so it cannot follow calls across modules, and [let open]-style
   unqualified access to a flagged module escapes the identifier checks. *)

open Parsetree

type scope = { dataplane : bool; lib : bool; perf : bool }

(* Longident path as a string list, with any [Stdlib.] prefix dropped. *)
let path_of_lid lid =
  let rec go acc = function
    | Longident.Lident s -> s :: acc
    | Longident.Ldot (l, s) -> go (s :: acc) l
    | Longident.Lapply (l, _) -> go acc l
  in
  match go [] lid with "Stdlib" :: rest -> rest | p -> p

let float_ops =
  [
    "+."; "-."; "*."; "/."; "**"; "~-."; "~+."; "float_of_int"; "int_of_float"; "float_of_string";
    "sqrt"; "log"; "exp"; "ceil"; "floor"; "mod_float"; "abs_float"; "atan"; "cos"; "sin";
  ]

let io_fns =
  [
    "print_string"; "print_endline"; "print_newline"; "print_int"; "print_float"; "print_char";
    "prerr_string"; "prerr_endline"; "prerr_newline"; "output_string"; "output_char"; "output_bytes";
  ]

let wallclock_fns = [ "gettimeofday"; "time"; "gmtime"; "localtime"; "mktime"; "sleep"; "sleepf" ]

let is_sort_path = function
  | [ "List"; ("sort" | "stable_sort" | "fast_sort" | "sort_uniq") ] -> true
  | [ "Array"; ("sort" | "stable_sort") ] -> true
  | _ -> false

let run ~path ~(scope : scope) suppress (structure : structure) =
  let diags = ref [] in
  let sorted_depth = ref 0 in
  let binding_allows = ref [] in
  let control_plane = ref false in
  let dataplane_here () = scope.dataplane && not !control_plane in
  let perf_here () = scope.perf && not !control_plane in
  let report rule (loc : Location.t) message =
    let line = loc.Location.loc_start.Lexing.pos_lnum in
    let col = loc.Location.loc_start.Lexing.pos_cnum - loc.Location.loc_start.Lexing.pos_bol in
    let suppressed =
      List.exists (Rule.matches rule) (Suppress.allows_near suppress ~line)
      || List.exists (Rule.matches rule) !binding_allows
    in
    diags := ({ Diagnostic.rule; file = path; line; col; message }, suppressed) :: !diags
  in
  let check_ident loc lid =
    match path_of_lid lid with
    | "List" :: fn :: _ when dataplane_here () ->
      report Rule.df_list loc (Printf.sprintf "List.%s on a per-packet path" fn)
    | ("Printf" | "Format" | "Buffer") :: fn :: _ when dataplane_here () ->
      report Rule.df_io loc
        (Printf.sprintf "%s.%s on a per-packet path" (List.hd (path_of_lid lid)) fn)
    | [ fn ] when dataplane_here () && List.mem fn io_fns ->
      report Rule.df_io loc (Printf.sprintf "%s on a per-packet path" fn)
    | [ op ] when dataplane_here () && List.mem op float_ops ->
      report Rule.df_float loc (Printf.sprintf "float operation (%s) on a per-packet path" op)
    | "Float" :: fn :: _ when dataplane_here () ->
      report Rule.df_float loc (Printf.sprintf "Float.%s on a per-packet path" fn)
    | "Random" :: rest when scope.lib ->
      let fn = match rest with [] -> "Random" | l -> "Random." ^ String.concat "." l in
      report Rule.det_random loc (fn ^ " uses ambient global state")
    | [ "Unix"; fn ] when scope.lib && List.mem fn wallclock_fns ->
      report Rule.det_wallclock loc
        (Printf.sprintf "Unix.%s reads the wall clock; use Engine.Time or Bfc_util.Clock" fn)
    | [ "Sys"; "time" ] when scope.lib ->
      report Rule.det_wallclock loc "Sys.time reads the wall clock; use Engine.Time or Bfc_util.Clock"
    | "Unix" :: fn :: _ when scope.lib ->
      report Rule.det_unix loc
        (Printf.sprintf "Unix.%s touches ambient OS state; use the Bfc_util wrappers" fn)
    | [ "Hashtbl"; (("iter" | "fold") as fn) ] when scope.lib && !sorted_depth = 0 ->
      report Rule.det_hashtbl_order loc
        (Printf.sprintf
           "Hashtbl.%s order depends on the hash seed; sort the result by key (or allow if the \
            reduction is order-independent)"
           fn)
    | _ -> ()
  in
  (* Does an expression (possibly a partial application) head a sort call? *)
  let heads_sort e =
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> is_sort_path (path_of_lid txt)
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> is_sort_path (path_of_lid txt)
    | _ -> false
  in
  let in_sorted f =
    incr sorted_depth;
    f ();
    decr sorted_depth
  in
  let expr (self : Ast_iterator.iterator) e =
    match e.pexp_desc with
    | Pexp_ident { txt; loc } ->
      check_ident loc txt;
      Ast_iterator.default_iterator.expr self e
    | Pexp_while (_, _) when dataplane_here () ->
      report Rule.df_while e.pexp_loc "while loop on a per-packet path";
      Ast_iterator.default_iterator.expr self e
    | Pexp_let (Recursive, _, _) when dataplane_here () ->
      report Rule.df_rec e.pexp_loc "recursive binding on a per-packet path";
      Ast_iterator.default_iterator.expr self e
    | Pexp_try (_, cases) ->
      if scope.lib then
        List.iter
          (fun c ->
            match (c.pc_lhs.ppat_desc, c.pc_guard) with
            | Ppat_any, None ->
              report Rule.rob_catchall c.pc_lhs.ppat_loc
                "catch-all handler swallows structured errors; match specific exceptions"
            | _ -> ())
          cases;
      Ast_iterator.default_iterator.expr self e
    | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None); _ }
      when scope.lib ->
      report Rule.rob_assert_false e.pexp_loc
        "assert false aborts without context; raise a structured exception"
    | Pexp_apply (fn, args) -> (
      (* PF001: arming a timer with a closure literal allocates on every
         arm; hot paths must post typed events or pre-build the handle.
         Named partial applications (rare fallbacks) pass. *)
      (if perf_here () then
         match fn.pexp_desc with
         | Pexp_ident { txt; _ } -> (
           match List.rev (path_of_lid txt) with
           | (("at" | "after") as tfn) :: "Sim" :: _
             when List.exists
                    (fun (_, a) ->
                      match a.pexp_desc with
                      | Pexp_fun _ | Pexp_function _ -> true
                      | _ -> false)
                    args ->
             report Rule.pf_closure_timer fn.pexp_loc
               (Printf.sprintf
                  "Sim.%s with a closure literal on a hot scheduling path; post a typed event \
                   (Sim.post) or pre-build the handle with Sim.make_handle"
                  tfn)
           | _ -> ())
         | _ -> ());
      match (fn.pexp_desc, args) with
      (* e |> List.sort cmp : the left-hand side flows into a sort *)
      | Pexp_ident { txt = Longident.Lident "|>"; _ }, [ (_, lhs); (_, rhs) ] when heads_sort rhs
        ->
        self.expr self rhs;
        in_sorted (fun () -> self.expr self lhs)
      (* List.sort cmp @@ e *)
      | Pexp_ident { txt = Longident.Lident "@@"; _ }, [ (_, lhs); (_, rhs) ] when heads_sort lhs
        ->
        self.expr self lhs;
        in_sorted (fun () -> self.expr self rhs)
      (* List.sort cmp (Hashtbl.fold ...) : arguments flow into the sort *)
      | _ when heads_sort fn ->
        self.expr self fn;
        in_sorted (fun () -> List.iter (fun (_, a) -> self.expr self a) args)
      | _ -> Ast_iterator.default_iterator.expr self e)
    | _ -> Ast_iterator.default_iterator.expr self e
  in
  let structure_item (self : Ast_iterator.iterator) si =
    match si.pstr_desc with
    | Pstr_value (rec_flag, _) ->
      let line = si.pstr_loc.Location.loc_start.Lexing.pos_lnum in
      let saved_allows = !binding_allows and saved_cp = !control_plane in
      binding_allows := Suppress.allows_near suppress ~line @ saved_allows;
      control_plane := saved_cp || Suppress.control_plane_near suppress ~line;
      if rec_flag = Recursive && dataplane_here () then
        report Rule.df_rec si.pstr_loc "recursive binding on a per-packet path";
      Ast_iterator.default_iterator.structure_item self si;
      binding_allows := saved_allows;
      control_plane := saved_cp
    | _ -> Ast_iterator.default_iterator.structure_item self si
  in
  let iter = { Ast_iterator.default_iterator with expr; structure_item } in
  iter.structure iter structure;
  List.sort
    (fun (a, _) (b, _) -> Diagnostic.compare a b)
    !diags
