(** The parsetree pass implementing every rule. *)

type scope = {
  dataplane : bool;  (** feasibility family applies (per-packet BFC modules) *)
  lib : bool;  (** determinism + robustness families apply (under lib/) *)
  perf : bool;  (** perf family applies (hot scheduling paths) *)
}

(** [run ~path ~scope suppress structure] returns every finding paired with
    whether a suppression comment covers it, sorted by location. [path] is
    used verbatim in diagnostics. *)
val run :
  path:string ->
  scope:scope ->
  Suppress.t ->
  Parsetree.structure ->
  (Diagnostic.t * bool) list
