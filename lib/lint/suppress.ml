(* Comment directives recognised in source text:

     (* bfc-lint: allow <rule> [<rule> ...] *)     suppress the listed rules
     (* bfc-lint: control-plane *)                 mark a top-level binding as
                                                   control-plane (feasibility
                                                   rules do not apply inside)

   An [allow] covers violations on its own line and the next line; placed on
   (or immediately above) the first line of a top-level binding it covers the
   binding's whole body.  Rules are named by id ("DT004") or kebab name
   ("det-hashtbl-order"); "all" covers every rule.  Prose before the
   directive inside the same comment is fine:
   [(* commutative sum; bfc-lint: allow det-hashtbl-order *)]. *)

type t = {
  allows : (int, string list) Hashtbl.t;  (* line -> rule keys *)
  control_plane : (int, unit) Hashtbl.t;  (* line -> marked *)
}

let marker = "bfc-lint:"

(* Index of [sub] in [s] at or after [from], or -1. *)
let find_sub s sub from =
  let n = String.length s and m = String.length sub in
  let rec go i = if i + m > n then -1 else if String.sub s i m = sub then i else go (i + 1) in
  if m = 0 then -1 else go from

let is_sep c = c = ' ' || c = '\t' || c = ','

let tokens_after s start =
  (* split the directive payload into tokens, stopping at the comment close *)
  let stop = match find_sub s "*)" start with -1 -> String.length s | i -> i in
  let out = ref [] in
  let i = ref start in
  while !i < stop do
    while !i < stop && is_sep s.[!i] do
      incr i
    done;
    let b = !i in
    while !i < stop && not (is_sep s.[!i]) do
      incr i
    done;
    if !i > b then out := String.sub s b (!i - b) :: !out
  done;
  List.rev !out

let scan source =
  let t = { allows = Hashtbl.create 8; control_plane = Hashtbl.create 4 } in
  List.iteri
    (fun i line ->
      let lnum = i + 1 in
      match find_sub line marker 0 with
      | -1 -> ()
      | at -> (
        match tokens_after line (at + String.length marker) with
        | "allow" :: rules when rules <> [] ->
          let prev = match Hashtbl.find_opt t.allows lnum with Some l -> l | None -> [] in
          Hashtbl.replace t.allows lnum (prev @ rules)
        | [ "control-plane" ] -> Hashtbl.replace t.control_plane lnum ()
        | _ -> ()))
    (String.split_on_char '\n' source);
  t

let allows_at t ~line = match Hashtbl.find_opt t.allows line with Some l -> l | None -> []

(* Directives attach to their own line and the line below. *)
let allows_near t ~line = allows_at t ~line @ allows_at t ~line:(line - 1)

let control_plane_near t ~line =
  Hashtbl.mem t.control_plane line || Hashtbl.mem t.control_plane (line - 1)
