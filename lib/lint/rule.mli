(** Lint rule registry.

    Four families, mirroring the properties the reproduction depends on:

    - {b feasibility} (DF rules): the BFC dataplane of paper section 3.3
      only fits Tofino2 because every per-packet operation is constant-time
      over bounded integer state. These rules fence the per-packet paths of
      the dataplane modules.
    - {b determinism} (DT rules): the simulator must replay identically from
      a seed, across OCaml hash seeds and wall-clock conditions.
    - {b robustness} (RB rules): packet-path failures must raise structured,
      diagnosable errors.
    - {b perf} (PF rules): the engine's steady state is allocation-free;
      these rules keep closure allocation off the hot scheduling paths. *)

type family = Feasibility | Determinism | Robustness | Perf

type severity = Error | Warning

type t = {
  id : string;  (** stable short id, e.g. ["DF001"] *)
  name : string;  (** kebab-case name usable in suppression comments *)
  family : family;
  severity : severity;
  doc : string;
}

val family_to_string : family -> string

val severity_to_string : severity -> string

val df_list : t

val df_while : t

val df_rec : t

val df_float : t

val df_io : t

val det_random : t

val det_wallclock : t

val det_unix : t

val det_hashtbl_order : t

val rob_catchall : t

val rob_assert_false : t

val pf_closure_timer : t

(** Every rule, in id order. *)
val all : t list

(** Look a rule up by id (case-insensitive) or name. *)
val find : string -> t option

(** [matches r key] — does suppression token [key] cover rule [r]? Accepts
    the rule id, the kebab name, or ["all"]. *)
val matches : t -> string -> bool
