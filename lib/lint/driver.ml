(* File discovery, parsing and report rendering. *)

(* Per-packet / per-event hot-path modules that get the feasibility family.
   The two BFC dataplane programs are the original set (PR 2); the IR
   compiler's execution engine, the stress/obs hot paths (detectors and
   counters that run on every packet or pause transition) and the PDES
   inter-shard ring (crossed by every cut packet) joined later. *)
let dataplane_files =
  [
    "lib/bfc/dataplane.ml";
    "lib/bfc/credit_dataplane.ml";
    "lib/ir/compile.ml";
    "lib/stress/detect.ml";
    "lib/obs/registry.ml";
    "lib/obs/trace.ml";
    "lib/obs/sketch.ml";
    "lib/engine/channel.ml";
  ]

(* Hot scheduling paths that get the perf family (PF rules) on top of the
   dataplane set: the modules that arm per-packet/per-pause timers. These
   went closure-free with the typed event table (PR 10) and must stay so. *)
let perf_files =
  [
    "lib/net/port.ml";
    "lib/switch/switch.ml";
    "lib/transport/nic.ml";
    "lib/transport/host.ml";
    "lib/transport/xpass_switch.ml";
  ]

let normalize path =
  let path = String.map (fun c -> if c = '\\' then '/' else c) path in
  let rec strip p = if String.length p > 2 && String.sub p 0 2 = "./" then strip (String.sub p 2 (String.length p - 2)) else p in
  strip path

let has_suffix s suf =
  let n = String.length s and m = String.length suf in
  n >= m
  && String.sub s (n - m) m = suf
  && (n = m || s.[n - m - 1] = '/')

let scope_of_path path =
  let p = normalize path in
  let segments = String.split_on_char '/' p in
  let dir_segments = match List.rev segments with [] -> [] | _ :: rev_dirs -> rev_dirs in
  let dataplane = List.exists (has_suffix p) dataplane_files in
  {
    Check.dataplane;
    lib = List.mem "lib" dir_segments;
    perf = dataplane || List.exists (has_suffix p) perf_files;
  }

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Parse failures are reported per-file rather than aborting the run. *)
let parse ~path source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf path;
  Location.input_name := path;
  match Parse.implementation lexbuf with
  | structure -> Ok structure
  | exception Syntaxerr.Error _ ->
    Error
      (Printf.sprintf "syntax error near line %d"
         lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum)
  | exception Lexer.Error (_, loc) ->
    Error (Printf.sprintf "lexer error near line %d" loc.Location.loc_start.Lexing.pos_lnum)

(* [virtual_path] overrides scope classification and reporting; used by the
   fixture tests to lint fixture files as if they lived on a dataplane path. *)
let lint_source ?virtual_path ~path source =
  let spath = match virtual_path with Some p -> p | None -> path in
  let scope = scope_of_path spath in
  let suppress = Suppress.scan source in
  match parse ~path:spath source with
  | Ok structure -> Ok (Check.run ~path:spath ~scope suppress structure)
  | Error e -> Error e

type report = {
  files : int;
  findings : (Diagnostic.t * bool) list;  (* diagnostic, suppressed *)
  failures : (string * string) list;  (* path, reason *)
}

let violations r = List.filter_map (fun (d, sup) -> if sup then None else Some d) r.findings

let suppressed r = List.filter_map (fun (d, sup) -> if sup then Some d else None) r.findings

let rec walk path acc =
  match Sys.is_directory path with
  | exception Sys_error _ -> acc
  | true ->
    let entries = Sys.readdir path in
    Array.sort compare entries;
    Array.fold_left
      (fun acc name ->
        if name = "" || name.[0] = '.' || name = "_build" then acc
        else walk (Filename.concat path name) acc)
      acc entries
  | false -> if Filename.check_suffix path ".ml" then path :: acc else acc

let lint_paths paths =
  let files = List.rev (List.fold_left (fun acc p -> walk p acc) [] paths) in
  let findings, failures =
    List.fold_left
      (fun (fs, errs) path ->
        match read_file path with
        | exception Sys_error e -> (fs, (path, e) :: errs)
        | source -> (
          match lint_source ~path source with
          | Ok ds -> (fs @ ds, errs)
          | Error e -> (fs, (path, e) :: errs)))
      ([], []) files
  in
  {
    files = List.length files;
    findings = List.sort (fun (a, _) (b, _) -> Diagnostic.compare a b) findings;
    failures = List.rev failures;
  }

let exit_code r = if r.failures <> [] then 2 else if violations r <> [] then 1 else 0

let render_human ?(show_suppressed = false) r =
  let buf = Buffer.create 1024 in
  List.iter
    (fun d ->
      Buffer.add_string buf (Diagnostic.to_human d);
      Buffer.add_char buf '\n')
    (violations r);
  if show_suppressed then
    List.iter
      (fun d ->
        Buffer.add_string buf (Diagnostic.to_human d);
        Buffer.add_string buf " (suppressed)\n")
      (suppressed r);
  List.iter
    (fun (path, reason) -> Buffer.add_string buf (Printf.sprintf "%s: cannot lint: %s\n" path reason))
    r.failures;
  Buffer.add_string buf
    (Printf.sprintf "bfc-lint: %d file%s checked, %d violation%s, %d suppressed%s\n" r.files
       (if r.files = 1 then "" else "s")
       (List.length (violations r))
       (if List.length (violations r) = 1 then "" else "s")
       (List.length (suppressed r))
       (if r.failures = [] then ""
        else Printf.sprintf ", %d file(s) failed to parse" (List.length r.failures)));
  Buffer.contents buf

let render_json r =
  let arr to_j xs = "[" ^ String.concat "," (List.map to_j xs) ^ "]" in
  Printf.sprintf
    "{\"files\":%d,\"violations\":%s,\"suppressed\":%s,\"failures\":%s}\n" r.files
    (arr Diagnostic.to_json (violations r))
    (arr Diagnostic.to_json (suppressed r))
    (arr
       (fun (p, e) ->
         Printf.sprintf "{\"file\":\"%s\",\"error\":\"%s\"}" (Diagnostic.json_escape p)
           (Diagnostic.json_escape e))
       r.failures)

let render_rules () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-6s %-18s %-12s %-8s %s\n" r.Rule.id r.Rule.name
           (Rule.family_to_string r.Rule.family)
           (Rule.severity_to_string r.Rule.severity)
           r.Rule.doc))
    Rule.all;
  Buffer.contents buf
