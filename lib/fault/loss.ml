module Packet = Bfc_net.Packet

type mode =
  | Prob of float
  | Nth of { n : int; mutable seen : int } (* drop exactly the nth match *)
  | Every of { n : int; mutable seen : int } (* drop every nth match *)

type rule = {
  matches : Packet.t -> bool;
  mode : mode;
  corrupt : bool;
  mutable rule_dropped : int;
}

type t = {
  rng : Bfc_util.Rng.t;
  mutable rules : rule list; (* evaluation order = addition order *)
  mutable dropped : int;
  mutable corrupted : int;
}

let create ~seed = { rng = Bfc_util.Rng.create seed; rules = []; dropped = 0; corrupted = 0 }

(* Matchers *)

let any _ = true

let data pkt = pkt.Packet.kind = Packet.Data

let ctrl pkt =
  match pkt.Packet.kind with
  | Packet.Pause | Packet.Resume | Packet.Pause_bitmap | Packet.Pfc -> true
  | _ -> false

let kind k pkt = pkt.Packet.kind = k

let pauses = kind Packet.Pause

let resumes = kind Packet.Resume

let add t rule = t.rules <- t.rules @ [ rule ]

let add_prob t ?(corrupt = false) ~p matches =
  if not (p >= 0.0 && p <= 1.0) then invalid_arg "Loss.add_prob: probability not in [0, 1]";
  add t { matches; mode = Prob p; corrupt; rule_dropped = 0 }

let add_nth t ?(corrupt = false) ~n matches =
  if n <= 0 then invalid_arg "Loss.add_nth: n";
  add t { matches; mode = Nth { n; seen = 0 }; corrupt; rule_dropped = 0 }

let add_every t ?(corrupt = false) ~n matches =
  if n <= 0 then invalid_arg "Loss.add_every: n";
  add t { matches; mode = Every { n; seen = 0 }; corrupt; rule_dropped = 0 }

(* First matching rule that fires wins; rules that match but do not fire
   still consume their position in the deterministic counters, so an Nth
   rule counts every match it sees regardless of other rules. *)
let decide t pkt =
  let lost = ref false in
  List.iter
    (fun r ->
      if r.matches pkt then begin
        let fire =
          match r.mode with
          | Prob p -> Bfc_util.Rng.bernoulli t.rng p
          | Nth s ->
            s.seen <- s.seen + 1;
            s.seen = s.n
          | Every s ->
            s.seen <- s.seen + 1;
            s.seen mod s.n = 0
        in
        if fire && not !lost then begin
          lost := true;
          r.rule_dropped <- r.rule_dropped + 1;
          if r.corrupt then t.corrupted <- t.corrupted + 1 else t.dropped <- t.dropped + 1
        end
      end)
    t.rules;
  !lost

let dropped t = t.dropped

let corrupted t = t.corrupted

let total t = t.dropped + t.corrupted
