module Sim = Bfc_engine.Sim
module Time = Bfc_engine.Time
module Topology = Bfc_net.Topology
module Node = Bfc_net.Node
module Port = Bfc_net.Port
module Switch = Bfc_switch.Switch
module Dataplane = Bfc_core.Dataplane
module Runner = Bfc_sim.Runner
module Tracer = Bfc_sim.Tracer
module Registry = Bfc_obs.Registry

(* Per directed port: the injector owns the port's fault predicate and
   composes link-down state with an optional loss model. *)
(* [down_epoch] counts down-transitions of the directed port; scheduled
   restores capture it so a later, independent outage of the same link is
   never resurrected by an earlier fault's timer. *)
type link_state = {
  lport : Port.t;
  mutable down : bool;
  mutable down_epoch : int;
  mutable loss : Loss.t option;
}

(* Telemetry probes, when the injector is attached with a registry. *)
type probes = {
  reg : Registry.t;
  c_down : Registry.counter;
  c_up : Registry.counter;
  c_reboot : Registry.counter;
  c_flushed : Registry.counter;
}

type t = {
  env : Runner.env;
  tracer : Tracer.t option;
  links : (int, link_state) Hashtbl.t; (* gid -> state *)
  probes : probes option;
}

let bump t f = match t.probes with None -> () | Some p -> Registry.incr p.reg (f p)

let attach ?tracer ?registry env =
  let probes =
    Option.map
      (fun reg ->
        {
          reg;
          c_down = Registry.counter reg "fault_link_downs";
          c_up = Registry.counter reg "fault_link_ups";
          c_reboot = Registry.counter reg "fault_reboots";
          c_flushed = Registry.counter reg "fault_packets_flushed";
        })
      registry
  in
  let t = { env; tracer; links = Hashtbl.create 64; probes } in
  (match registry with
  | None -> ()
  | Some reg ->
    Registry.gauge reg "fault_links_down" (fun () ->
        (* commutative count; bfc-lint: allow det-hashtbl-order *)
        float_of_int (Hashtbl.fold (fun _ s n -> if s.down then n + 1 else n) t.links 0));
    Registry.gauge reg "fault_packets_lost" (fun () ->
        (* commutative sum; bfc-lint: allow det-hashtbl-order *)
        float_of_int (Hashtbl.fold (fun _ s acc -> acc + Port.faults_injected s.lport) t.links 0)));
  t

let note t ~node ev =
  match t.tracer with None -> () | Some tr -> Tracer.note tr t.env ~node ev

let state t ~gid =
  match Hashtbl.find_opt t.links gid with
  | Some s -> s
  | None ->
    let p = Topology.port_by_gid (Runner.topo t.env) gid in
    let s = { lport = p; down = false; down_epoch = 0; loss = None } in
    Port.set_fault p (fun pkt ->
        s.down || (match s.loss with Some l -> Loss.decide l pkt | None -> false));
    Hashtbl.add t.links gid s;
    s

(* The opposite direction of the same link: the peer's egress port whose
   local index is where our packets arrive. *)
let reverse_port t p =
  let topo = Runner.topo t.env in
  (Topology.ports topo (Port.peer p).Node.id).(Port.peer_port p)

(* The node that owns (transmits on) a directed port. *)
let owner t p = (Port.peer (reverse_port t p)).Node.id

let set_loss t ~gid loss = (state t ~gid).loss <- Some loss

let clear_loss t ~gid = (state t ~gid).loss <- None

let set_loss_everywhere t loss =
  let topo = Runner.topo t.env in
  for gid = 0 to Topology.total_ports topo - 1 do
    set_loss t ~gid loss
  done

let clear_loss_everywhere t =
  let topo = Runner.topo t.env in
  for gid = 0 to Topology.total_ports topo - 1 do
    clear_loss t ~gid
  done

let mark_down s =
  if not s.down then begin
    s.down <- true;
    s.down_epoch <- s.down_epoch + 1
  end

let set_directed_down t ~gid down =
  let s = state t ~gid in
  if down then mark_down s else s.down <- false

let is_down t ~gid = (state t ~gid).down

let link_down t ~gid =
  let s = state t ~gid in
  if not s.down then begin
    mark_down s;
    mark_down (state t ~gid:(Port.gid (reverse_port t s.lport)));
    bump t (fun p -> p.c_down);
    note t ~node:(owner t s.lport) (Tracer.Link_down { gid })
  end

let link_up t ~gid =
  let s = state t ~gid in
  if s.down then begin
    s.down <- false;
    (state t ~gid:(Port.gid (reverse_port t s.lport))).down <- false;
    bump t (fun p -> p.c_up);
    note t ~node:(owner t s.lport) (Tracer.Link_up { gid })
  end

let flap t ~gid ~start ~down_for ~period ~count =
  if down_for <= 0 || period <= down_for then invalid_arg "Injector.flap: down_for/period";
  let sim = Runner.sim t.env in
  for i = 0 to count - 1 do
    let at = start + (i * period) in
    ignore (Sim.at sim at (fun () -> link_down t ~gid));
    ignore (Sim.at sim (at + down_for) (fun () -> link_up t ~gid))
  done

let find_switch t ~node =
  let found = ref None in
  Array.iter
    (fun sw -> if Switch.node_id sw = node then found := Some sw)
    (Runner.switches t.env);
  match !found with
  | Some sw -> sw
  | None -> invalid_arg (Printf.sprintf "Injector: node %d is not a switch" node)

let find_dataplane t ~node =
  let found = ref None in
  Array.iter
    (fun dp -> if Switch.node_id (Dataplane.switch dp) = node then found := Some dp)
    (Runner.dataplanes t.env);
  !found

let reboot_switch t ~node ?down_for () =
  let sw = find_switch t ~node in
  (* Take the switch's links down first so in-flight deliveries during the
     outage are lost too, then flush. The tracer logs the reboot through
     the switch's [on_reboot] hook. *)
  (match down_for with
  | None -> ()
  | Some d ->
    let sim = Runner.sim t.env in
    for e = 0 to Switch.n_ports sw - 1 do
      let gid = Port.gid (Switch.port sw e) in
      let s = state t ~gid in
      (* A link already down belongs to an earlier, independent fault:
         taking it "down again" must neither bump the fault counters a
         second time nor let this crash-restart timer resurrect it before
         that fault's own recovery. The epoch capture also keeps two
         overlapping reboots from cutting each other's outage short. *)
      if not s.down then begin
        link_down t ~gid;
        let epoch = s.down_epoch in
        ignore
          (Sim.after sim d (fun () ->
               if s.down && s.down_epoch = epoch then link_up t ~gid))
      end
    done);
  let flushed = Switch.reboot sw in
  (match find_dataplane t ~node with Some dp -> Dataplane.reset dp | None -> ());
  bump t (fun p -> p.c_reboot);
  (match t.probes with
  | Some p -> Registry.add p.reg p.c_flushed flushed
  | None -> ());
  flushed

let faults_injected t =
  (* commutative sum, order-independent; bfc-lint: allow det-hashtbl-order *)
  Hashtbl.fold (fun _ s acc -> acc + Port.faults_injected s.lport) t.links 0
