(** Runtime invariant auditor for the BFC dataplane.

    Attaches to a {!Bfc_sim.Runner.env} like a tracer — wrapping switch
    hooks and node handlers — and re-checks conservation invariants every
    [period] of simulated time:

    - {b buffer-bytes} / {b egress-bytes}: the shared-buffer byte account
      and each per-egress byte count equal the sum of actual queue
      occupancies;
    - {b packet-conservation}: per switch, packets enqueued = dequeued +
      flushed (reboots) + resident — drops observed via hooks are excluded
      on both sides, so the identity holds across switch reboots without
      resynchronisation;
    - {b pause-balance}: the sum of all BFC pause counters equals the
      number of resident packets that were counted into them;
    - {b flow-occupancy}: no flow-table egress holds more entries than it
      has slots;
    - {b orphaned-pause}: no queue stays paused longer than [max_paused]
      while its downstream pause counter is zero (a lost Resume — what the
      pause watchdog repairs);
    - {b pause-pairing} (optional): every Resume arriving at a node pairs
      with a prior Pause for the same (port, queue), and no Pause repeats
      while one is outstanding; bitmap refreshes are idempotent. Disable
      with [check_pairing = false] when injecting control-frame loss, which
      legitimately breaks strict pairing (the watchdog, not the frame
      stream, restores liveness);
    - {b flow-conservation}: completed flows never exceed injected flows.

    A failed check records a {!violation}; with [fail_fast] (the default)
    it also raises {!Audit_violation}, aborting the run at the exact
    simulated time the inconsistency was observed. *)

type violation = {
  v_at : Bfc_engine.Time.t;
  v_node : int;  (** switch/host node id, or -1 for network-wide checks *)
  v_invariant : string;
  v_detail : string;
}

exception Audit_violation of violation

type config = {
  period : Bfc_engine.Time.t;  (** interval between audit sweeps *)
  max_paused : Bfc_engine.Time.t;  (** orphaned-pause threshold *)
  check_pairing : bool;
  fail_fast : bool;  (** raise on first violation *)
}

val default_config : config
(** 5 us period, 2 ms max pause, pairing on, fail-fast on. *)

type t

val attach : ?config:config -> Bfc_sim.Runner.env -> t
(** Install hook wraps and schedule the periodic sweep. Attach {e after}
    {!Bfc_sim.Runner.setup} and after any tracer (hook wraps stack). *)

val check : t -> unit
(** Run one audit sweep immediately (also called by the periodic timer). *)

val violations : t -> violation list
(** All recorded violations, oldest first. *)

val violation_count : t -> int

val checks_run : t -> int
(** Number of audit sweeps performed. *)

val ok : t -> bool

val to_string : violation -> string
