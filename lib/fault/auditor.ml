module Sim = Bfc_engine.Sim
module Time = Bfc_engine.Time
module Topology = Bfc_net.Topology
module Node = Bfc_net.Node
module Port = Bfc_net.Port
module Packet = Bfc_net.Packet
module Fifo = Bfc_switch.Fifo
module Switch = Bfc_switch.Switch
module Dataplane = Bfc_core.Dataplane
module Pause_counter = Bfc_core.Pause_counter
module Flow_table = Bfc_core.Flow_table
module Runner = Bfc_sim.Runner

type violation = {
  v_at : Time.t;
  v_node : int; (* -1 = network-wide *)
  v_invariant : string;
  v_detail : string;
}

exception Audit_violation of violation

let () =
  Printexc.register_printer (function
    | Audit_violation v ->
      Some
        (Printf.sprintf "Audit_violation (t=%dns, node %d, %s: %s)" v.v_at v.v_node v.v_invariant
           v.v_detail)
    | _ -> None)

type config = {
  period : Time.t;
  max_paused : Time.t;
  check_pairing : bool;
  fail_fast : bool;
}

let default_config =
  { period = Time.us 5.0; max_paused = Time.ms 2.0; check_pairing = true; fail_fast = true }

(* Per-switch bookkeeping fed by hook wraps. The conservation identity is
   enq = deq + flushed + resident, where flushed (reboot losses) is exactly
   the switch's drop counter growth that did NOT pass through the on_drop
   hook — so the identity needs no resync across reboots. *)
type sw_state = {
  asw : Switch.t;
  adp : Dataplane.t option;
  drops_base : int;
  mutable enq : int;
  mutable deq : int;
  mutable hook_drops : int;
  mutable marked : int; (* resident packets counted into pause counters *)
}

type t = {
  env : Runner.env;
  cfg : config;
  sws : sw_state array;
  (* Pause/Resume pairing beliefs from frames seen arriving at each
     (node, port, queue); [ever] distinguishes a benign re-Resume (watchdog
     or bitmap idempotence) from a Resume that never had a Pause. *)
  beliefs : (int * int * int, bool) Hashtbl.t;
  ever : (int * int * int, unit) Hashtbl.t;
  mutable violations : violation list; (* newest first *)
  mutable checks : int;
}

let violate t ~node ~invariant ~detail =
  let v =
    { v_at = Sim.now (Runner.sim t.env); v_node = node; v_invariant = invariant; v_detail = detail }
  in
  t.violations <- v :: t.violations;
  if t.cfg.fail_fast then raise (Audit_violation v)

(* ------------------------------------------------------------------ *)
(* Invariant checks                                                    *)

let check_switch t st =
  let sw = st.asw in
  let node = Switch.node_id sw in
  let now = Sim.now (Runner.sim t.env) in
  let total_bytes = ref 0 and total_pkts = ref 0 in
  for e = 0 to Switch.n_ports sw - 1 do
    let qs = Switch.queues sw ~egress:e in
    let eb = Array.fold_left (fun a q -> a + q.Fifo.bytes) 0 qs in
    total_bytes := !total_bytes + eb;
    total_pkts := !total_pkts + Array.fold_left (fun a q -> a + Fifo.length q) 0 qs;
    if eb <> Switch.egress_bytes sw ~egress:e then
      violate t ~node ~invariant:"egress-bytes"
        ~detail:
          (Printf.sprintf "egress %d accounts %d B but queues hold %d B" e
             (Switch.egress_bytes sw ~egress:e)
             eb)
  done;
  if Switch.buffer_used sw <> !total_bytes then
    violate t ~node ~invariant:"buffer-bytes"
      ~detail:
        (Printf.sprintf "shared buffer accounts %d B but queues hold %d B" (Switch.buffer_used sw)
           !total_bytes);
  let flushed = Switch.drops sw - st.drops_base - st.hook_drops in
  if st.enq - st.deq - flushed <> !total_pkts then
    violate t ~node ~invariant:"packet-conservation"
      ~detail:
        (Printf.sprintf "enq %d - deq %d - flushed %d <> %d resident" st.enq st.deq flushed
           !total_pkts);
  match st.adp with
  | None -> ()
  | Some dp ->
    let pc_total = Pause_counter.total (Dataplane.pause_counters dp) in
    if pc_total <> st.marked then
      violate t ~node ~invariant:"pause-balance"
        ~detail:
          (Printf.sprintf "pause counters sum to %d but %d marked packets resident" pc_total
             st.marked);
    let ft = Dataplane.flow_table dp in
    let slots = Flow_table.slots_per_port ft in
    for e = 0 to Switch.n_ports sw - 1 do
      let occ = Flow_table.occupied ft ~egress:e in
      if occ > slots then
        violate t ~node ~invariant:"flow-occupancy"
          ~detail:(Printf.sprintf "egress %d holds %d entries of %d slots" e occ slots)
    done;
    (* A queue held paused for a long time whose downstream pause counter
       is zero received a Pause whose matching Resume is gone (lost frame
       or downstream reboot) — exactly what the watchdog repairs. *)
    for e = 0 to Switch.n_ports sw - 1 do
      let port = Switch.port sw e in
      let peer = Port.peer port in
      if peer.Node.kind = Node.Switch then begin
        match
          Array.find_opt
            (fun o -> Switch.node_id (Dataplane.switch o) = peer.Node.id)
            (Runner.dataplanes t.env)
        with
        | None -> ()
        | Some dp_peer ->
          let pc = Dataplane.pause_counters dp_peer in
          Array.iter
            (fun q ->
              match Switch.queue_paused_since sw ~egress:e ~queue:q.Fifo.idx with
              | Some since
                when now - since > t.cfg.max_paused
                     && Pause_counter.count pc ~ingress:(Port.peer_port port)
                          ~upstream_q:q.Fifo.idx
                        = 0 ->
                violate t ~node ~invariant:"orphaned-pause"
                  ~detail:
                    (Printf.sprintf
                       "egress %d queue %d paused %d ns with zero downstream pause counter" e
                       q.Fifo.idx (now - since))
              | _ -> ())
            (Switch.queues sw ~egress:e)
      end
    done

let check t =
  t.checks <- t.checks + 1;
  Array.iter (fun st -> check_switch t st) t.sws;
  if Runner.completed t.env > Runner.injected t.env then
    violate t ~node:(-1) ~invariant:"flow-conservation"
      ~detail:
        (Printf.sprintf "%d flows completed of %d injected" (Runner.completed t.env)
           (Runner.injected t.env))

(* ------------------------------------------------------------------ *)
(* Pairing beliefs (ctrl frames observed on arrival)                   *)

let on_pause t ~node ~in_port ~queue =
  let key = (node, in_port, queue) in
  if Hashtbl.find_opt t.beliefs key = Some true then
    violate t ~node ~invariant:"pause-pairing"
      ~detail:(Printf.sprintf "duplicate Pause for port %d queue %d" in_port queue);
  Hashtbl.replace t.beliefs key true;
  Hashtbl.replace t.ever key ()

let on_resume t ~node ~in_port ~queue =
  let key = (node, in_port, queue) in
  if Hashtbl.find_opt t.beliefs key <> Some true && not (Hashtbl.mem t.ever key) then
    violate t ~node ~invariant:"pause-pairing"
      ~detail:(Printf.sprintf "Resume without prior Pause for port %d queue %d" in_port queue);
  Hashtbl.replace t.beliefs key false

let on_bitmap t ~node ~in_port ints =
  (* idempotent: listed queues are paused, every other known queue of this
     (node, port) is resumed; neither direction is a pairing violation *)
  Array.iter
    (fun q ->
      Hashtbl.replace t.beliefs (node, in_port, q) true;
      Hashtbl.replace t.ever (node, in_port, q) ())
    ints;
  let listed q = Array.exists (fun x -> x = q) ints in
  let to_resume =
    (* collected keys only feed Hashtbl.replace, order-independent;
       bfc-lint: allow det-hashtbl-order *)
    Hashtbl.fold
      (fun (n, p, q) paused acc ->
        if n = node && p = in_port && paused && not (listed q) then (n, p, q) :: acc else acc)
      t.beliefs []
  in
  List.iter (fun key -> Hashtbl.replace t.beliefs key false) to_resume

(* ------------------------------------------------------------------ *)

let attach ?(config = default_config) env =
  let sws =
    Array.map
      (fun sw ->
        let adp =
          Array.find_opt
            (fun dp -> Switch.node_id (Dataplane.switch dp) = Switch.node_id sw)
            (Runner.dataplanes env)
        in
        {
          asw = sw;
          adp;
          drops_base = Switch.drops sw;
          enq = 0;
          deq = 0;
          hook_drops = 0;
          marked = 0;
        })
      (Runner.switches env)
  in
  let t =
    {
      env;
      cfg = config;
      sws;
      beliefs = Hashtbl.create 256;
      ever = Hashtbl.create 256;
      violations = [];
      checks = 0;
    }
  in
  Array.iter
    (fun st ->
      let hk = Switch.hooks st.asw in
      let prev_enq = hk.Switch.on_enqueue in
      hk.Switch.on_enqueue <-
        (fun sw ~in_port ~egress ~queue pkt ->
          prev_enq sw ~in_port ~egress ~queue pkt;
          st.enq <- st.enq + 1;
          (* the dataplane (prev hook) marks the packet if it counted it *)
          if pkt.Packet.bp_counted then st.marked <- st.marked + 1);
      let prev_deq = hk.Switch.on_dequeue in
      hk.Switch.on_dequeue <-
        (fun sw ~egress ~queue pkt ->
          (* capture before the dataplane clears the mark *)
          let was_marked = pkt.Packet.bp_counted in
          prev_deq sw ~egress ~queue pkt;
          st.deq <- st.deq + 1;
          if was_marked then st.marked <- st.marked - 1);
      let prev_drop = hk.Switch.on_drop in
      hk.Switch.on_drop <-
        (fun sw ~in_port ~egress ~queue pkt ->
          prev_drop sw ~in_port ~egress ~queue pkt;
          st.hook_drops <- st.hook_drops + 1);
      let prev_rb = hk.Switch.on_reboot in
      hk.Switch.on_reboot <-
        (fun sw ~flushed ->
          prev_rb sw ~flushed;
          (* resident marked packets were flushed; Dataplane.reset (run by
             the injector right after) zeroes the counters to match *)
          st.marked <- 0))
    sws;
  if config.check_pairing then
    Array.iter
      (fun nd ->
        let node = nd.Node.id in
        let prev = nd.Node.handler in
        nd.Node.handler <-
          (fun ~in_port pkt ->
            (match pkt.Packet.kind with
            | Packet.Pause -> on_pause t ~node ~in_port ~queue:pkt.Packet.ctrl_a
            | Packet.Resume -> on_resume t ~node ~in_port ~queue:pkt.Packet.ctrl_a
            | Packet.Pause_bitmap -> on_bitmap t ~node ~in_port pkt.Packet.ints
            | _ -> ());
            prev ~in_port pkt))
      (Topology.nodes (Runner.topo env));
  ignore (Sim.every (Runner.sim env) ~period:config.period (fun () -> check t));
  t

let violations t = List.rev t.violations

let violation_count t = List.length t.violations

let checks_run t = t.checks

let ok t = t.violations = []

let to_string v =
  Printf.sprintf "%.3fus node %d [%s] %s" (Time.to_us v.v_at) v.v_node v.v_invariant v.v_detail
