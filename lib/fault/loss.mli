(** Packet-loss model for fault injection.

    A loss model is an ordered list of rules, each a matcher (which packets
    it applies to) plus a firing mode: probabilistic (an independent coin
    per matching packet), exactly-the-nth matching packet (deterministic,
    for reproducing a specific lost frame), or every-nth (steady
    deterministic loss). Corruption is modelled as loss — a corrupted frame
    fails its CRC and is discarded by the receiver — but counted
    separately.

    Install a model on a directed link via {!Injector.set_loss}; the port
    calls {!decide} once per packet put on the wire. *)

type t

(** [create ~seed] — the seed drives the probabilistic rules only;
    deterministic rules never consume randomness. *)
val create : seed:int -> t

(** {2 Matchers} *)

val any : Bfc_net.Packet.t -> bool

val data : Bfc_net.Packet.t -> bool

(** Pause, Resume, pause-bitmap and PFC frames. *)
val ctrl : Bfc_net.Packet.t -> bool

val kind : Bfc_net.Packet.kind -> Bfc_net.Packet.t -> bool

val pauses : Bfc_net.Packet.t -> bool

val resumes : Bfc_net.Packet.t -> bool

(** {2 Rules} *)

(** Lose each matching packet independently with probability [p].
    Raises [Invalid_argument] unless [0 <= p <= 1]. *)
val add_prob : t -> ?corrupt:bool -> p:float -> (Bfc_net.Packet.t -> bool) -> unit

(** Lose exactly the [n]-th matching packet (1-based), once. *)
val add_nth : t -> ?corrupt:bool -> n:int -> (Bfc_net.Packet.t -> bool) -> unit

(** Lose every [n]-th matching packet. *)
val add_every : t -> ?corrupt:bool -> n:int -> (Bfc_net.Packet.t -> bool) -> unit

(** [decide t pkt] — should this packet be lost? Advances the
    deterministic counters of every matching rule. *)
val decide : t -> Bfc_net.Packet.t -> bool

(** Packets lost to non-[corrupt] rules. *)
val dropped : t -> int

(** Packets lost to [corrupt] rules. *)
val corrupted : t -> int

val total : t -> int
