(** Fault injection over a running experiment.

    Attach after {!Bfc_sim.Runner.setup} (and after {!Bfc_sim.Tracer.attach}
    if you want fault events in the trace). The injector owns the fault
    predicate of every port it touches and composes two fault sources:

    - a per-directed-link {!Loss} model (probabilistic or deterministic
      packet loss / corruption), and
    - link state: a downed link loses every packet in both directions,
      including control frames, until brought back up.

    Switch reboots flush the victim's buffer (resident packets are lost),
    reset its dataplane program state (flow table, pause counters, DQA) and
    optionally keep its links down for the crash-restart window. Upstream
    queues paused on the dead switch's behalf receive no Resume — the pause
    watchdog ({!Bfc_sim.Runner.params}[.pause_watchdog]) is the recovery
    mechanism, which is exactly what these faults are designed to
    exercise. *)

type t

(** With [?registry], the injector registers fault telemetry: counters
    [fault_link_downs] / [fault_link_ups] / [fault_reboots] /
    [fault_packets_flushed] and gauges [fault_links_down] /
    [fault_packets_lost] (cumulative over managed ports). *)
val attach : ?tracer:Bfc_sim.Tracer.t -> ?registry:Bfc_obs.Registry.t -> Bfc_sim.Runner.env -> t

(** {2 Packet loss} *)

(** Install a loss model on one directed port (by global port id),
    replacing any previous model on it. *)
val set_loss : t -> gid:int -> Loss.t -> unit

val clear_loss : t -> gid:int -> unit

(** Share one loss model across every directed port of the topology. *)
val set_loss_everywhere : t -> Loss.t -> unit

(** Remove the loss model from every directed port (ends a loss burst). *)
val clear_loss_everywhere : t -> unit

(** {2 Link state} *)

(** Take the link carrying directed port [gid] down in both directions.
    Idempotent. *)
val link_down : t -> gid:int -> unit

val link_up : t -> gid:int -> unit

(** Lower-level: set only the given direction (asymmetric faults). *)
val set_directed_down : t -> gid:int -> bool -> unit

(** Is the directed port currently down? *)
val is_down : t -> gid:int -> bool

(** [flap t ~gid ~start ~down_for ~period ~count] schedules [count]
    down/up cycles: down at [start + i*period], up [down_for] later.
    Requires [0 < down_for < period]. *)
val flap :
  t ->
  gid:int ->
  start:Bfc_engine.Time.t ->
  down_for:Bfc_engine.Time.t ->
  period:Bfc_engine.Time.t ->
  count:int ->
  unit

(** {2 Switch crash} *)

(** [reboot_switch t ~node ()] drains and restarts the switch at [node]:
    buffer flushed (packets counted as drops), PFC and pause state cleared,
    BFC flow table / pause counters / DQA reset. With [down_for], the
    switch's links also stay down for the crash-restart window so peers see
    the outage. Links that were already down when the reboot hit are left
    to their own fault's timeline: their counters are not bumped again and
    the crash-restart timer does not bring them back early. Returns the
    number of packets lost. *)
val reboot_switch : t -> node:int -> ?down_for:Bfc_engine.Time.t -> unit -> int

(** Packets lost so far on ports this injector manages (loss models and
    downed links combined). *)
val faults_injected : t -> int
