module Time = Bfc_engine.Time
module Sim = Bfc_engine.Sim
module Topology = Bfc_net.Topology
module Dist = Bfc_workload.Dist
module Traffic = Bfc_workload.Traffic
module Arrivals = Bfc_workload.Arrivals
module Sample = Bfc_util.Stats.Sample

type profile = Smoke | Quick | Paper

let profile_of_string = function
  | "smoke" -> Smoke
  | "quick" -> Quick
  | "paper" -> Paper
  | s -> invalid_arg (Printf.sprintf "unknown profile %S (smoke|quick|paper)" s)

type table = { title : string; header : string list; rows : string list list }

let print_table t = Bfc_util.Ascii_table.print ~title:t.title ~header:t.header t.rows

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let write_csv t ~path =
  let oc = open_out path in
  output_string oc ("# " ^ t.title ^ "\n");
  List.iter
    (fun row -> output_string oc (String.concat "," (List.map csv_escape row) ^ "\n"))
    (t.header :: t.rows);
  close_out oc

let cell = Bfc_util.Ascii_table.float_cell

let clos_scale = function
  | Smoke -> (2, 2, 4)
  | Quick -> (4, 4, 8)
  | Paper -> (8, 8, 16)

let duration profile ~dist =
  (* Budget enough trace time for a few thousand flows at Quick scale. *)
  let mean = Dist.mean dist in
  let base =
    match profile with
    | Smoke -> Time.us 300.0
    | Quick -> Time.ms 1.2
    | Paper -> Time.ms 10.0
  in
  (* heavier-flow workloads need longer traces for the same flow count *)
  if mean > 50_000.0 then 2 * base else base

type incast_mix = { degree : int; agg_frac_of_paper : float }

let default_incast = { degree = 100; agg_frac_of_paper = 1.0 }

type std_setup = {
  sp_profile : profile;
  sp_scheme : Scheme.t;
  sp_dist : Dist.t;
  sp_load : float;
  sp_incast : incast_mix option;
  sp_classes : int;
  sp_locality : float option;
  sp_track_active : bool;
  sp_seed : int;
  sp_dur_mult : float;
  sp_params : Runner.params -> Runner.params;
  sp_obs : Runner.env -> unit;
}

let std profile scheme =
  {
    sp_profile = profile;
    sp_scheme = scheme;
    sp_dist = Dist.fb_hadoop;
    sp_load = 0.6;
    sp_incast = None;
    sp_classes = 1;
    sp_locality = None;
    sp_track_active = false;
    sp_seed = 1;
    sp_dur_mult = 1.0;
    sp_params = (fun p -> p);
    sp_obs = ignore;
  }

type std_result = {
  env : Runner.env;
  flows : Bfc_net.Flow.t list;
  buffers : Sample.t;
  active : Sample.t option;
  measure_from : Time.t;
}

let std_params s =
  s.sp_params
    {
      Runner.default_params with
      track_active_flows = s.sp_track_active;
      classes = s.sp_classes;
      seed = s.sp_seed;
      homa_dist = s.sp_dist;
    }

let std_duration s =
  int_of_float (s.sp_dur_mult *. float_of_int (duration s.sp_profile ~dist:s.sp_dist))

(* The full workload of a standard run. Purely a function of the setup,
   the topology structure and seeded RNGs — no simulator state — so a
   sharded run can regenerate the identical flow list independently in
   every shard (each shard then owns private records: its replicas). *)
let gen_flows s ~cl ~dur =
  let spines, tors, hosts_per_tor = clos_scale s.sp_profile in
  let hosts = cl.Topology.cl_hosts in
  let n_hosts = Array.length hosts in
  let core_gbps = float_of_int (spines * tors) *. 100.0 in
  let uniform_cross = 1.0 -. (float_of_int (hosts_per_tor - 1) /. float_of_int (n_hosts - 1)) in
  let matrix, core_fraction =
    match s.sp_locality with
    | None -> (Traffic.Uniform, uniform_cross)
    | Some local_frac ->
      ( Traffic.Rack_local { local_frac; rack_of = cl.Topology.rack_of },
        1.0 -. local_frac )
  in
  let bg_load, incast_flows, ids =
    let ids = ref 0 in
    match s.sp_incast with
    | None -> (s.sp_load, [], ids)
    | Some im ->
      (* the paper's convention: total load includes 5% incast *)
      let frac = 0.05 in
      let agg =
        max 100_000
          (int_of_float (20e6 *. im.agg_frac_of_paper *. (core_gbps /. 6400.0)))
      in
      let period = Traffic.period_for_load ~agg_size:agg ~frac ~ref_capacity_gbps:core_gbps in
      let inc =
        Traffic.generate_incast
          {
            Traffic.i_hosts = hosts;
            degree = im.degree;
            agg_size = agg;
            period;
            i_duration = dur;
            i_seed = s.sp_seed + 1000;
          }
          ~ids
      in
      (s.sp_load -. frac, inc, ids)
  in
  let spec =
    {
      Traffic.hosts;
      dist = s.sp_dist;
      arrivals = Arrivals.lognormal_default;
      load = bg_load;
      ref_capacity_gbps = core_gbps;
      core_fraction;
      matrix;
      duration = dur;
      seed = s.sp_seed;
      prio_classes = s.sp_classes;
    }
  in
  let bg = Traffic.generate spec ~ids in
  Traffic.merge [ bg; incast_flows ]

let run_std_seq s =
  let sim = Sim.create () in
  let spines, tors, hosts_per_tor = clos_scale s.sp_profile in
  let cl = Topology.clos sim ~spines ~tors ~hosts_per_tor ~gbps:100.0 ~prop:(Time.us 1.0) in
  let params = std_params s in
  let env = Runner.setup ~topo:cl.Topology.t ~scheme:s.sp_scheme ~params in
  let dur = std_duration s in
  let flows = gen_flows s ~cl ~dur in
  let buffers = Metrics.watch_buffers env ~period:(Time.us 5.0) in
  let active =
    if s.sp_track_active then Some (Metrics.watch_active_flows env ~period:(Time.us 10.0))
    else None
  in
  s.sp_obs env;
  Runner.inject env flows;
  Runner.run env ~until:dur;
  Runner.drain env ~budget:(8 * dur);
  let measure_from = dur / 10 in
  { env; flows; buffers; active; measure_from }

(* ------------------------------------------------------------------ *)
(* Sharded (PDES) execution of the same standard run.

   Every shard builds a full replica of the experiment — its own Sim,
   topology, seeded workload — but instantiates devices only on the
   nodes it owns (Runner.setup_shard). Replication is what makes the
   shards independent: structural quantities and the flow list are
   derived deterministically, so no setup state needs to cross domains;
   only packets do, over the Pdes channels. *)

(* Per-shard metric watchers tick on per-shard sims; a sequential run's
   single watcher visits switches in node-id order within each tick.
   Rebuild that exact insertion order: per tick, walk all shards'
   per-tick blocks in global switch node-id order. Tick counts agree
   across shards because every shard runs to the same virtual time. *)
let merge_tick_samples parts =
  (* parts : (Sample.t * (node_id * width) array) array *)
  let arrs =
    Array.map
      (fun (smp, _) ->
        let a = Array.make (Sample.count smp) 0.0 in
        let i = ref 0 in
        Sample.iter
          (fun v ->
            a.(!i) <- v;
            incr i)
          smp;
        a)
      parts
  in
  let block = Array.map (fun (_, cols) -> Array.fold_left (fun a (_, w) -> a + w) 0 cols) parts in
  let ticks = ref (-1) in
  Array.iteri
    (fun sh (smp, _) ->
      if block.(sh) > 0 then begin
        let n = Sample.count smp / block.(sh) in
        if !ticks >= 0 && !ticks <> n then
          invalid_arg "Exp_common.merge_tick_samples: shards sampled unequal tick counts";
        ticks := n
      end)
    parts;
  let cols = ref [] in
  Array.iteri
    (fun sh (_, shard_cols) ->
      let off = ref 0 in
      Array.iter
        (fun (nid, w) ->
          cols := (nid, sh, !off, w) :: !cols;
          off := !off + w)
        shard_cols)
    parts;
  let cols = List.sort (fun (a, _, _, _) (b, _, _, _) -> Int.compare a b) (List.rev !cols) in
  let out = Sample.create () in
  for t = 0 to max 0 !ticks - 1 do
    List.iter
      (fun (_, sh, off, w) ->
        for c = 0 to w - 1 do
          Sample.add out arrs.(sh).((t * block.(sh)) + off + c)
        done)
      cols
  done;
  out

let run_std_sharded s ~shards =
  let spines, tors, hosts_per_tor = clos_scale s.sp_profile in
  let params = std_params s in
  let dur = std_duration s in
  let reps =
    Array.init shards (fun _ ->
        let sim = Sim.create () in
        Topology.clos sim ~spines ~tors ~hosts_per_tor ~gbps:100.0 ~prop:(Time.us 1.0))
  in
  let cl0 = reps.(0) in
  let part = Bfc_net.Partition.clos_pods cl0 ~shards in
  (match Bfc_net.Partition.check cl0.Topology.t part with
  | Ok () -> ()
  | Error e -> invalid_arg ("Exp_common.run_std: bad partition: " ^ e));
  let lookahead =
    match Bfc_net.Partition.lookahead cl0.Topology.t part with
    | Some l -> l
    | None -> invalid_arg "Exp_common.run_std: partition cuts no link; use shards = 1"
  in
  let envs =
    Array.init shards (fun k ->
        Runner.setup_shard
          ~owned:(fun n -> Bfc_net.Partition.owner part n = k)
          ~topo:reps.(k).Topology.t ~scheme:s.sp_scheme ~params)
  in
  let flows_a = Array.init shards (fun k -> Array.of_list (gen_flows s ~cl:reps.(k) ~dur)) in
  let buffers_a = Array.map (fun env -> Metrics.watch_buffers env ~period:(Time.us 5.0)) envs in
  let active_a =
    if s.sp_track_active then
      Some (Array.map (fun env -> Metrics.watch_active_flows env ~period:(Time.us 10.0)) envs)
    else None
  in
  Array.iter s.sp_obs envs;
  Array.iteri
    (fun k env ->
      (* a flow is injected exactly once: by the shard owning its source *)
      let mine =
        List.filter
          (fun f -> Bfc_net.Partition.owner part f.Bfc_net.Flow.src = k)
          (Array.to_list flows_a.(k))
      in
      Runner.inject env mine)
    envs;
  let ctxs =
    Array.init shards (fun k ->
        let replicas = Bfc_util.Int_table.create () in
        Bfc_util.Int_table.reserve replicas (Array.length flows_a.(k));
        Array.iter (fun f -> Bfc_util.Int_table.set replicas f.Bfc_net.Flow.id f) flows_a.(k);
        {
          Pdes.sx_sim = Topology.sim reps.(k).Topology.t;
          sx_nodes = Topology.nodes reps.(k).Topology.t;
          sx_replicas = replicas;
        })
  in
  let p = Pdes.create ~shards:ctxs ~lookahead in
  Fun.protect
    ~finally:(fun () -> Pdes.shutdown p)
    (fun () ->
      Array.iteri
        (fun k _ -> Pdes.wire p ~partition:part ~shard:k ~topo:reps.(k).Topology.t)
        envs;
      Pdes.run p ~until:dur;
      let injected = Array.fold_left (fun a e -> a + Runner.injected e) 0 envs in
      Pdes.drain p ~budget:(8 * dur) ~done_:(fun () ->
          Array.fold_left (fun a e -> a + Runner.completed e) 0 envs >= injected));
  let env = Runner.merged envs in
  (* generation order preserved; per flow, the record written by its
     receiver — the dst shard's replica — is the authoritative one *)
  let flows =
    Array.to_list
      (Array.mapi
         (fun i f0 -> flows_a.(Bfc_net.Partition.owner part f0.Bfc_net.Flow.dst).(i))
         flows_a.(0))
  in
  let switch_cols width_of env =
    Array.map
      (fun sw -> (Bfc_switch.Switch.node_id sw, width_of sw))
      (Runner.switches env)
  in
  let buffers =
    merge_tick_samples
      (Array.init shards (fun k -> (buffers_a.(k), switch_cols (fun _ -> 1) envs.(k))))
  in
  let active =
    Option.map
      (fun arr ->
        merge_tick_samples
          (Array.init shards (fun k ->
               (arr.(k), switch_cols Bfc_switch.Switch.n_ports envs.(k)))))
      active_a
  in
  let measure_from = dur / 10 in
  { env; flows; buffers; active; measure_from }

let run_std s =
  let shards = Pdes.default_shards () in
  if shards <= 1 then run_std_seq s else run_std_sharded s ~shards

(* ------------------------------------------------------------------ *)
(* Sweep points: experiments describe themselves as an explicit list of
   independent (key, thunk) pairs instead of an internal loop, so the
   domain pool can run them concurrently. Results come back in point
   order, so tables are byte-identical at any job count. *)

type 'a sweep_point = { pt_key : string; pt_run : unit -> 'a }

let pt pt_key pt_run = { pt_key; pt_run }

let sweep points = Pool.run (List.map (fun p -> p.pt_run) points)

let sweep_tagged points =
  List.combine (List.map (fun p -> p.pt_key) points) (sweep points)

let fct_rows r =
  let stats = Metrics.fct_table r.env ~since:r.measure_from r.flows in
  List.filter_map
    (fun (s : Metrics.fct_stats) ->
      if s.Metrics.count = 0 then None
      else
        Some
          [
            s.Metrics.bucket;
            string_of_int s.Metrics.count;
            cell s.Metrics.avg;
            cell s.Metrics.p50;
            cell s.Metrics.p95;
            cell s.Metrics.p99;
          ])
    stats

let buffer_p99 r = if Sample.is_empty r.buffers then 0.0 else Sample.percentile r.buffers 99.0
