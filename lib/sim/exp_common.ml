module Time = Bfc_engine.Time
module Sim = Bfc_engine.Sim
module Topology = Bfc_net.Topology
module Dist = Bfc_workload.Dist
module Traffic = Bfc_workload.Traffic
module Arrivals = Bfc_workload.Arrivals
module Sample = Bfc_util.Stats.Sample

type profile = Smoke | Quick | Paper

let profile_of_string = function
  | "smoke" -> Smoke
  | "quick" -> Quick
  | "paper" -> Paper
  | s -> invalid_arg (Printf.sprintf "unknown profile %S (smoke|quick|paper)" s)

type table = { title : string; header : string list; rows : string list list }

let print_table t = Bfc_util.Ascii_table.print ~title:t.title ~header:t.header t.rows

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let write_csv t ~path =
  let oc = open_out path in
  output_string oc ("# " ^ t.title ^ "\n");
  List.iter
    (fun row -> output_string oc (String.concat "," (List.map csv_escape row) ^ "\n"))
    (t.header :: t.rows);
  close_out oc

let cell = Bfc_util.Ascii_table.float_cell

let clos_scale = function
  | Smoke -> (2, 2, 4)
  | Quick -> (4, 4, 8)
  | Paper -> (8, 8, 16)

let duration profile ~dist =
  (* Budget enough trace time for a few thousand flows at Quick scale. *)
  let mean = Dist.mean dist in
  let base =
    match profile with
    | Smoke -> Time.us 300.0
    | Quick -> Time.ms 1.2
    | Paper -> Time.ms 10.0
  in
  (* heavier-flow workloads need longer traces for the same flow count *)
  if mean > 50_000.0 then 2 * base else base

type incast_mix = { degree : int; agg_frac_of_paper : float }

let default_incast = { degree = 100; agg_frac_of_paper = 1.0 }

type std_setup = {
  sp_profile : profile;
  sp_scheme : Scheme.t;
  sp_dist : Dist.t;
  sp_load : float;
  sp_incast : incast_mix option;
  sp_classes : int;
  sp_locality : float option;
  sp_track_active : bool;
  sp_seed : int;
  sp_dur_mult : float;
  sp_params : Runner.params -> Runner.params;
  sp_obs : Runner.env -> unit;
}

let std profile scheme =
  {
    sp_profile = profile;
    sp_scheme = scheme;
    sp_dist = Dist.fb_hadoop;
    sp_load = 0.6;
    sp_incast = None;
    sp_classes = 1;
    sp_locality = None;
    sp_track_active = false;
    sp_seed = 1;
    sp_dur_mult = 1.0;
    sp_params = (fun p -> p);
    sp_obs = ignore;
  }

type std_result = {
  env : Runner.env;
  flows : Bfc_net.Flow.t list;
  buffers : Sample.t;
  active : Sample.t option;
  measure_from : Time.t;
}

let run_std s =
  let sim = Sim.create () in
  let spines, tors, hosts_per_tor = clos_scale s.sp_profile in
  let cl = Topology.clos sim ~spines ~tors ~hosts_per_tor ~gbps:100.0 ~prop:(Time.us 1.0) in
  let params =
    s.sp_params
      {
        Runner.default_params with
        track_active_flows = s.sp_track_active;
        classes = s.sp_classes;
        seed = s.sp_seed;
        homa_dist = s.sp_dist;
      }
  in
  let env = Runner.setup ~topo:cl.Topology.t ~scheme:s.sp_scheme ~params in
  let hosts = cl.Topology.cl_hosts in
  let n_hosts = Array.length hosts in
  let dur =
    int_of_float (s.sp_dur_mult *. float_of_int (duration s.sp_profile ~dist:s.sp_dist))
  in
  let core_gbps = float_of_int (spines * tors) *. 100.0 in
  let uniform_cross = 1.0 -. (float_of_int (hosts_per_tor - 1) /. float_of_int (n_hosts - 1)) in
  let matrix, core_fraction =
    match s.sp_locality with
    | None -> (Traffic.Uniform, uniform_cross)
    | Some local_frac ->
      ( Traffic.Rack_local { local_frac; rack_of = cl.Topology.rack_of },
        1.0 -. local_frac )
  in
  let bg_load, incast_flows, ids =
    let ids = ref 0 in
    match s.sp_incast with
    | None -> (s.sp_load, [], ids)
    | Some im ->
      (* the paper's convention: total load includes 5% incast *)
      let frac = 0.05 in
      let agg =
        max 100_000
          (int_of_float (20e6 *. im.agg_frac_of_paper *. (core_gbps /. 6400.0)))
      in
      let period = Traffic.period_for_load ~agg_size:agg ~frac ~ref_capacity_gbps:core_gbps in
      let inc =
        Traffic.generate_incast
          {
            Traffic.i_hosts = hosts;
            degree = im.degree;
            agg_size = agg;
            period;
            i_duration = dur;
            i_seed = s.sp_seed + 1000;
          }
          ~ids
      in
      (s.sp_load -. frac, inc, ids)
  in
  let spec =
    {
      Traffic.hosts;
      dist = s.sp_dist;
      arrivals = Arrivals.lognormal_default;
      load = bg_load;
      ref_capacity_gbps = core_gbps;
      core_fraction;
      matrix;
      duration = dur;
      seed = s.sp_seed;
      prio_classes = s.sp_classes;
    }
  in
  let bg = Traffic.generate spec ~ids in
  let flows = Traffic.merge [ bg; incast_flows ] in
  let buffers = Metrics.watch_buffers env ~period:(Time.us 5.0) in
  let active =
    if s.sp_track_active then Some (Metrics.watch_active_flows env ~period:(Time.us 10.0))
    else None
  in
  s.sp_obs env;
  Runner.inject env flows;
  Runner.run env ~until:dur;
  Runner.drain env ~budget:(8 * dur);
  let measure_from = dur / 10 in
  { env; flows; buffers; active; measure_from }

(* ------------------------------------------------------------------ *)
(* Sweep points: experiments describe themselves as an explicit list of
   independent (key, thunk) pairs instead of an internal loop, so the
   domain pool can run them concurrently. Results come back in point
   order, so tables are byte-identical at any job count. *)

type 'a sweep_point = { pt_key : string; pt_run : unit -> 'a }

let pt pt_key pt_run = { pt_key; pt_run }

let sweep points = Pool.run (List.map (fun p -> p.pt_run) points)

let sweep_tagged points =
  List.combine (List.map (fun p -> p.pt_key) points) (sweep points)

let fct_rows r =
  let stats = Metrics.fct_table r.env ~since:r.measure_from r.flows in
  List.filter_map
    (fun (s : Metrics.fct_stats) ->
      if s.Metrics.count = 0 then None
      else
        Some
          [
            s.Metrics.bucket;
            string_of_int s.Metrics.count;
            cell s.Metrics.avg;
            cell s.Metrics.p50;
            cell s.Metrics.p95;
            cell s.Metrics.p99;
          ])
    stats

let buffer_p99 r = if Sample.is_empty r.buffers then 0.0 else Sample.percentile r.buffers 99.0
