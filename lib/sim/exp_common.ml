module Time = Bfc_engine.Time
module Sim = Bfc_engine.Sim
module Topology = Bfc_net.Topology
module Dist = Bfc_workload.Dist
module Traffic = Bfc_workload.Traffic
module Arrivals = Bfc_workload.Arrivals
module Sample = Bfc_util.Stats.Sample

type profile = Smoke | Quick | Paper

let profile_of_string = function
  | "smoke" -> Smoke
  | "quick" -> Quick
  | "paper" -> Paper
  | s -> invalid_arg (Printf.sprintf "unknown profile %S (smoke|quick|paper)" s)

type table = { title : string; header : string list; rows : string list list }

let print_table t = Bfc_util.Ascii_table.print ~title:t.title ~header:t.header t.rows

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let write_csv t ~path =
  let oc = open_out path in
  output_string oc ("# " ^ t.title ^ "\n");
  List.iter
    (fun row -> output_string oc (String.concat "," (List.map csv_escape row) ^ "\n"))
    (t.header :: t.rows);
  close_out oc

let cell = Bfc_util.Ascii_table.float_cell

let clos_scale = function
  | Smoke -> (2, 2, 4)
  | Quick -> (4, 4, 8)
  | Paper -> (8, 8, 16)

let duration profile ~dist =
  (* Budget enough trace time for a few thousand flows at Quick scale. *)
  let mean = Dist.mean dist in
  let base =
    match profile with
    | Smoke -> Time.us 300.0
    | Quick -> Time.ms 1.2
    | Paper -> Time.ms 10.0
  in
  (* heavier-flow workloads need longer traces for the same flow count *)
  if mean > 50_000.0 then 2 * base else base

type incast_mix = { degree : int; agg_frac_of_paper : float }

let default_incast = { degree = 100; agg_frac_of_paper = 1.0 }

(* ------------------------------------------------------------------ *)
(* Ambient streaming-observability settings (same pattern as
   Pdes.set_default_shards): the CLI sets them once at startup, before any
   experiment runs; standard runs consult them when building params. *)

type stream_settings = { ss_alpha : float; ss_flowlog : string option; ss_progress : bool }

let stream_settings = ref None

let set_streaming ?(alpha = 0.01) ?flowlog ?(progress = false) enabled =
  stream_settings :=
    if enabled then Some { ss_alpha = alpha; ss_flowlog = flowlog; ss_progress = progress }
    else None

let streaming_on () = Option.is_some !stream_settings

let stream_alpha () =
  match !stream_settings with
  | Some ss -> ss.ss_alpha
  | None -> 0.01

type std_setup = {
  sp_profile : profile;
  sp_scheme : Scheme.t;
  sp_dist : Dist.t;
  sp_load : float;
  sp_incast : incast_mix option;
  sp_classes : int;
  sp_locality : float option;
  sp_track_active : bool;
  sp_seed : int;
  sp_dur_mult : float;
  sp_params : Runner.params -> Runner.params;
  sp_obs : Runner.env -> unit;
}

let std profile scheme =
  {
    sp_profile = profile;
    sp_scheme = scheme;
    sp_dist = Dist.fb_hadoop;
    sp_load = 0.6;
    sp_incast = None;
    sp_classes = 1;
    sp_locality = None;
    sp_track_active = false;
    sp_seed = 1;
    sp_dur_mult = 1.0;
    sp_params = (fun p -> p);
    sp_obs = ignore;
  }

type std_result = {
  env : Runner.env;
  flows : Bfc_net.Flow.t list;
  buffers : Sample.t;
  active : Sample.t option;
  measure_from : Time.t;
  sketches : Metrics.fct_sketches option; (* present iff the run streamed *)
}

let std_params s =
  s.sp_params
    {
      Runner.default_params with
      track_active_flows = s.sp_track_active;
      classes = s.sp_classes;
      seed = s.sp_seed;
      homa_dist = s.sp_dist;
      streaming = streaming_on ();
    }

(* Chain sketch observation onto every host's completion callback (after
   the runner's own completion counter). [env] must be the environment
   owning those hosts — in a sharded run, each shard feeds its own sketch
   from its own replica records. *)
let attach_sketches env ~since =
  let sk = Metrics.sketches_create ~alpha:(stream_alpha ()) ~since () in
  Runner.iter_hosts env (fun h ->
      Bfc_transport.Host.add_on_complete h (fun f -> Metrics.sketches_observe env sk f));
  sk

let ns_to_s t = float_of_int t /. 1e9

let flow_record env f =
  {
    Bfc_obs.Flowlog.id = f.Bfc_net.Flow.id;
    src = f.Bfc_net.Flow.src;
    dst = f.Bfc_net.Flow.dst;
    size = f.Bfc_net.Flow.size;
    incast = f.Bfc_net.Flow.is_incast;
    prio_class = f.Bfc_net.Flow.prio_class;
    arrival = ns_to_s f.Bfc_net.Flow.arrival;
    fct = ns_to_s (Bfc_net.Flow.fct f);
    ideal = ns_to_s (Runner.ideal_fct env f);
  }

(* Post-run flowlog dump for standard runs: completed flows in generation
   order. The writer is chunked, so even a huge flow list streams through
   a bounded serialisation buffer. *)
let write_flowlog_file env flows ~path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let w = Bfc_obs.Flowlog.Writer.create oc in
      List.iter (fun f -> if Bfc_net.Flow.complete f then
                    Bfc_obs.Flowlog.Writer.append w (flow_record env f)) flows;
      Bfc_obs.Flowlog.Writer.close w)

let maybe_write_flowlog env flows =
  match !stream_settings with
  | Some { ss_flowlog = Some path; _ } -> write_flowlog_file env flows ~path
  | _ -> ()

let maybe_progress env =
  match !stream_settings with
  | Some { ss_progress = true; _ } -> Telemetry.progress_reporter env stderr
  | _ -> ()

let std_duration s =
  int_of_float (s.sp_dur_mult *. float_of_int (duration s.sp_profile ~dist:s.sp_dist))

(* The full workload of a standard run. Purely a function of the setup,
   the topology structure and seeded RNGs — no simulator state — so a
   sharded run can regenerate the identical flow list independently in
   every shard (each shard then owns private records: its replicas). *)
let gen_flows s ~cl ~dur =
  let spines, tors, hosts_per_tor = clos_scale s.sp_profile in
  let hosts = cl.Topology.cl_hosts in
  let n_hosts = Array.length hosts in
  let core_gbps = float_of_int (spines * tors) *. 100.0 in
  let uniform_cross = 1.0 -. (float_of_int (hosts_per_tor - 1) /. float_of_int (n_hosts - 1)) in
  let matrix, core_fraction =
    match s.sp_locality with
    | None -> (Traffic.Uniform, uniform_cross)
    | Some local_frac ->
      ( Traffic.Rack_local { local_frac; rack_of = cl.Topology.rack_of },
        1.0 -. local_frac )
  in
  let bg_load, incast_flows, ids =
    let ids = ref 0 in
    match s.sp_incast with
    | None -> (s.sp_load, [], ids)
    | Some im ->
      (* the paper's convention: total load includes 5% incast *)
      let frac = 0.05 in
      let agg =
        max 100_000
          (int_of_float (20e6 *. im.agg_frac_of_paper *. (core_gbps /. 6400.0)))
      in
      let period = Traffic.period_for_load ~agg_size:agg ~frac ~ref_capacity_gbps:core_gbps in
      let inc =
        Traffic.generate_incast
          {
            Traffic.i_hosts = hosts;
            degree = im.degree;
            agg_size = agg;
            period;
            i_duration = dur;
            i_seed = s.sp_seed + 1000;
          }
          ~ids
      in
      (s.sp_load -. frac, inc, ids)
  in
  let spec =
    {
      Traffic.hosts;
      dist = s.sp_dist;
      arrivals = Arrivals.lognormal_default;
      load = bg_load;
      ref_capacity_gbps = core_gbps;
      core_fraction;
      matrix;
      duration = dur;
      seed = s.sp_seed;
      prio_classes = s.sp_classes;
    }
  in
  let bg = Traffic.generate spec ~ids in
  Traffic.merge [ bg; incast_flows ]

let run_std_seq s =
  let sim = Sim.create () in
  let spines, tors, hosts_per_tor = clos_scale s.sp_profile in
  let cl = Topology.clos sim ~spines ~tors ~hosts_per_tor ~gbps:100.0 ~prop:(Time.us 1.0) in
  let params = std_params s in
  let env = Runner.setup ~topo:cl.Topology.t ~scheme:s.sp_scheme ~params in
  let dur = std_duration s in
  let measure_from = dur / 10 in
  let flows = gen_flows s ~cl ~dur in
  let buffers = Metrics.watch_buffers env ~period:(Time.us 5.0) in
  let active =
    if s.sp_track_active then Some (Metrics.watch_active_flows env ~period:(Time.us 10.0))
    else None
  in
  let sketches =
    if params.Runner.streaming then Some (attach_sketches env ~since:measure_from) else None
  in
  if params.Runner.streaming then maybe_progress env;
  s.sp_obs env;
  Runner.inject env flows;
  Runner.run env ~until:dur;
  Runner.drain env ~budget:(8 * dur);
  if params.Runner.streaming then maybe_write_flowlog env flows;
  { env; flows; buffers; active; measure_from; sketches }

(* ------------------------------------------------------------------ *)
(* Sharded (PDES) execution of the same standard run.

   Every shard builds a full replica of the experiment — its own Sim,
   topology, seeded workload — but instantiates devices only on the
   nodes it owns (Runner.setup_shard). Replication is what makes the
   shards independent: structural quantities and the flow list are
   derived deterministically, so no setup state needs to cross domains;
   only packets do, over the Pdes channels. *)

(* Per-shard metric watchers tick on per-shard sims; a sequential run's
   single watcher visits switches in node-id order within each tick.
   Rebuild that exact insertion order: per tick, walk all shards'
   per-tick blocks in global switch node-id order. Tick counts agree
   across shards because every shard runs to the same virtual time. *)
let merge_tick_samples parts =
  (* parts : (Sample.t * (node_id * width) array) array *)
  let arrs =
    Array.map
      (fun (smp, _) ->
        let a = Array.make (Sample.count smp) 0.0 in
        let i = ref 0 in
        Sample.iter
          (fun v ->
            a.(!i) <- v;
            incr i)
          smp;
        a)
      parts
  in
  let block = Array.map (fun (_, cols) -> Array.fold_left (fun a (_, w) -> a + w) 0 cols) parts in
  let ticks = ref (-1) in
  Array.iteri
    (fun sh (smp, _) ->
      if block.(sh) > 0 then begin
        let n = Sample.count smp / block.(sh) in
        if !ticks >= 0 && !ticks <> n then
          invalid_arg "Exp_common.merge_tick_samples: shards sampled unequal tick counts";
        ticks := n
      end)
    parts;
  let cols = ref [] in
  Array.iteri
    (fun sh (_, shard_cols) ->
      let off = ref 0 in
      Array.iter
        (fun (nid, w) ->
          cols := (nid, sh, !off, w) :: !cols;
          off := !off + w)
        shard_cols)
    parts;
  let cols = List.sort (fun (a, _, _, _) (b, _, _, _) -> Int.compare a b) (List.rev !cols) in
  let out = Sample.create () in
  for t = 0 to max 0 !ticks - 1 do
    List.iter
      (fun (_, sh, off, w) ->
        for c = 0 to w - 1 do
          Sample.add out arrs.(sh).((t * block.(sh)) + off + c)
        done)
      cols
  done;
  out

(* Synchronization diagnostics of the most recent sharded run (messages,
   ring bursts, windows, stalls), recorded before the workers are torn
   down so the bench can report the batching ratio without keeping the
   PDES instance alive. *)
type pdes_stats = { ps_messages : int; ps_bursts : int; ps_windows : int; ps_stalls : int }

let last_pdes_stats : pdes_stats option ref = ref None

let run_std_sharded s ~shards =
  let spines, tors, hosts_per_tor = clos_scale s.sp_profile in
  let params = std_params s in
  let dur = std_duration s in
  let reps =
    Array.init shards (fun _ ->
        let sim = Sim.create () in
        Topology.clos sim ~spines ~tors ~hosts_per_tor ~gbps:100.0 ~prop:(Time.us 1.0))
  in
  let cl0 = reps.(0) in
  let part = Bfc_net.Partition.clos_pods cl0 ~shards in
  (match Bfc_net.Partition.check cl0.Topology.t part with
  | Ok () -> ()
  | Error e -> invalid_arg ("Exp_common.run_std: bad partition: " ^ e));
  let lookahead =
    match Bfc_net.Partition.lookahead cl0.Topology.t part with
    | Some l -> l
    | None -> invalid_arg "Exp_common.run_std: partition cuts no link; use shards = 1"
  in
  let envs =
    Array.init shards (fun k ->
        Runner.setup_shard
          ~owned:(fun n -> Bfc_net.Partition.owner part n = k)
          ~topo:reps.(k).Topology.t ~scheme:s.sp_scheme ~params)
  in
  let measure_from = dur / 10 in
  let flows_a = Array.init shards (fun k -> Array.of_list (gen_flows s ~cl:reps.(k) ~dur)) in
  (* per-shard sketches fed by each shard's own completions; merged after
     quiescence (Sketch.merge is exact, so the merged table is identical
     to a sequential streaming run's) *)
  let sketches_a =
    if params.Runner.streaming then
      Some (Array.map (fun env -> attach_sketches env ~since:measure_from) envs)
    else None
  in
  let buffers_a = Array.map (fun env -> Metrics.watch_buffers env ~period:(Time.us 5.0)) envs in
  let active_a =
    if s.sp_track_active then
      Some (Array.map (fun env -> Metrics.watch_active_flows env ~period:(Time.us 10.0)) envs)
    else None
  in
  Array.iter s.sp_obs envs;
  Array.iteri
    (fun k env ->
      (* a flow is injected exactly once: by the shard owning its source *)
      let mine =
        List.filter
          (fun f -> Bfc_net.Partition.owner part f.Bfc_net.Flow.src = k)
          (Array.to_list flows_a.(k))
      in
      Runner.inject env mine)
    envs;
  let ctxs =
    Array.init shards (fun k ->
        let replicas = Bfc_util.Int_table.create () in
        Bfc_util.Int_table.reserve replicas (Array.length flows_a.(k));
        Array.iter (fun f -> Bfc_util.Int_table.set replicas f.Bfc_net.Flow.id f) flows_a.(k);
        {
          Pdes.sx_sim = Topology.sim reps.(k).Topology.t;
          sx_nodes = Topology.nodes reps.(k).Topology.t;
          sx_replicas = replicas;
        })
  in
  let p = Pdes.create ~shards:ctxs ~lookahead in
  Fun.protect
    ~finally:(fun () -> Pdes.shutdown p)
    (fun () ->
      Array.iteri
        (fun k _ -> Pdes.wire p ~partition:part ~shard:k ~topo:reps.(k).Topology.t)
        envs;
      Pdes.run p ~until:dur;
      let injected = Array.fold_left (fun a e -> a + Runner.injected e) 0 envs in
      Pdes.drain p ~budget:(8 * dur) ~done_:(fun () ->
          Array.fold_left (fun a e -> a + Runner.completed e) 0 envs >= injected);
      last_pdes_stats :=
        Some
          {
            ps_messages = Pdes.messages p;
            ps_bursts = Pdes.bursts p;
            ps_windows = Pdes.windows p;
            ps_stalls = Pdes.stalls p;
          });
  let env = Runner.merged envs in
  (* generation order preserved; per flow, the record written by its
     receiver — the dst shard's replica — is the authoritative one *)
  let flows =
    Array.to_list
      (Array.mapi
         (fun i f0 -> flows_a.(Bfc_net.Partition.owner part f0.Bfc_net.Flow.dst).(i))
         flows_a.(0))
  in
  let switch_cols width_of env =
    Array.map
      (fun sw -> (Bfc_switch.Switch.node_id sw, width_of sw))
      (Runner.switches env)
  in
  let buffers =
    merge_tick_samples
      (Array.init shards (fun k -> (buffers_a.(k), switch_cols (fun _ -> 1) envs.(k))))
  in
  let active =
    Option.map
      (fun arr ->
        merge_tick_samples
          (Array.init shards (fun k ->
               (arr.(k), switch_cols Bfc_switch.Switch.n_ports envs.(k)))))
      active_a
  in
  let sketches =
    Option.map
      (fun arr ->
        let into = arr.(0) in
        for k = 1 to shards - 1 do
          Metrics.sketches_merge ~into arr.(k)
        done;
        into)
      sketches_a
  in
  if params.Runner.streaming then maybe_write_flowlog env flows;
  { env; flows; buffers; active; measure_from; sketches }

let run_std s =
  let shards = Pdes.default_shards () in
  if shards <= 1 then run_std_seq s else run_std_sharded s ~shards

(* ------------------------------------------------------------------ *)
(* Sweep points: experiments describe themselves as an explicit list of
   independent (key, thunk) pairs instead of an internal loop, so the
   domain pool can run them concurrently. Results come back in point
   order, so tables are byte-identical at any job count. *)

type 'a sweep_point = { pt_key : string; pt_run : unit -> 'a }

let pt pt_key pt_run = { pt_key; pt_run }

let sweep points = Pool.run (List.map (fun p -> p.pt_run) points)

let sweep_tagged points =
  List.combine (List.map (fun p -> p.pt_key) points) (sweep points)

let fct_rows r =
  (* streaming runs report from the sketches (counts exact, percentiles
     within the configured relative-error bound); exact runs from the
     retained per-flow samples *)
  let stats =
    match r.sketches with
    | Some sk -> Metrics.fct_table_of_sketches sk
    | None -> Metrics.fct_table r.env ~since:r.measure_from r.flows
  in
  List.filter_map
    (fun (s : Metrics.fct_stats) ->
      if s.Metrics.count = 0 then None
      else
        Some
          [
            s.Metrics.bucket;
            string_of_int s.Metrics.count;
            cell s.Metrics.avg;
            cell s.Metrics.p50;
            cell s.Metrics.p95;
            cell s.Metrics.p99;
          ])
    stats

let buffer_p99 r = if Sample.is_empty r.buffers then 0.0 else Sample.percentile r.buffers 99.0

(* ------------------------------------------------------------------ *)
(* Memory-scale streaming driver: millions of tiny flows through a Quick
   Clos, generated in sliding windows (never materialising the full flow
   list), with completions feeding sketches / the flowlog and per-flow
   transport state reclaimed after a grace period — so resident memory
   tracks flows in flight, not flows ever run. The [streaming:false] mode
   retains everything the standard path would (the flow records and their
   exact slowdown samples), giving the memory baseline the BENCH block and
   CI gate compare against. *)

type stream_report = {
  sr_streaming : bool;
  sr_injected : int;
  sr_completed : int;
  sr_events : int;
  sr_elapsed_s : float;
  sr_peak_heap_words : int; (* running max of Gc heap_words during the run *)
  sr_overall : Metrics.fct_stats;
  sr_table : Metrics.fct_stats list;
  sr_sketches : Metrics.fct_sketches option;
}

let run_stream ?(scheme = Scheme.Bfc Scheme.bfc_default) ?(seed = 7) ?(alpha = 0.01) ?flowlog
    ?(progress = false) ~streaming ~flows:n_flows () =
  if n_flows <= 0 then invalid_arg "Exp_common.run_stream: flows must be positive";
  let wall0 = Bfc_util.Clock.now_s () in
  let sim = Sim.create () in
  let cl = Topology.clos sim ~spines:4 ~tors:4 ~hosts_per_tor:8 ~gbps:100.0 ~prop:(Time.us 1.0) in
  let params = { Runner.default_params with seed; streaming } in
  let env = Runner.setup ~topo:cl.Topology.t ~scheme ~params in
  let hosts = cl.Topology.cl_hosts in
  let n_hosts = Array.length hosts in
  let size = params.Runner.mtu in
  (* single-MTU flows at ~30% aggregate host load: flows per ns *)
  let load = 0.3 in
  let bytes_per_ns = float_of_int n_hosts *. 12.5 *. load in
  let delta_ns = float_of_int size /. bytes_per_ns in
  let arrival_of k = 1 + int_of_float (float_of_int k *. delta_ns) in
  let horizon = arrival_of n_flows + 1 in
  let rng = Bfc_util.Rng.create seed in
  let next = ref 0 in
  (* generate and inject every flow arriving before [t_end]; called from a
     window ticker, so at most a window's worth of new records exists at a
     time and completed ones are garbage as soon as their grace passes *)
  let gen_until t_end =
    let batch = ref [] in
    while !next < n_flows && arrival_of !next < t_end do
      let src = hosts.(Bfc_util.Rng.int rng n_hosts) in
      let dst = ref src in
      while !dst = src do
        dst := hosts.(Bfc_util.Rng.int rng n_hosts)
      done;
      batch :=
        Bfc_net.Flow.make ~id:!next ~src ~dst:!dst ~size ~arrival:(arrival_of !next) ()
        :: !batch;
      incr next
    done;
    if !batch <> [] then Runner.inject env (List.rev !batch)
  in
  let window = Time.us 50.0 in
  gen_until (2 * window);
  ignore (Sim.every sim ~period:window (fun () -> gen_until (Sim.now sim + (2 * window))));
  let sketches = if streaming then Some (Metrics.sketches_create ~alpha ~since:0 ()) else None in
  let kept = ref [] in
  let flog =
    Option.map
      (fun path ->
        let oc = open_out_bin path in
        (oc, Bfc_obs.Flowlog.Writer.create oc))
      flowlog
  in
  let grace = 4 * Runner.base_rtt env in
  Runner.iter_hosts env (fun h ->
      Bfc_transport.Host.add_on_complete h (fun f ->
          (match sketches with
          | Some sk -> Metrics.sketches_observe env sk f
          | None -> kept := f :: !kept);
          (match flog with
          | Some (_, w) -> Bfc_obs.Flowlog.Writer.append w (flow_record env f)
          | None -> ());
          if streaming then begin
            let fid = f.Bfc_net.Flow.id and src = f.Bfc_net.Flow.src and dst = f.Bfc_net.Flow.dst in
            ignore
              (Sim.after sim grace (fun () ->
                   Bfc_transport.Host.reclaim_flow_state (Runner.host env src) ~flow_id:fid;
                   Bfc_transport.Host.reclaim_flow_state (Runner.host env dst) ~flow_id:fid))
          end));
  let peak = ref (Gc.quick_stat ()).Gc.heap_words in
  ignore
    (Sim.every sim ~period:(Time.us 20.0) (fun () ->
         let hw = (Gc.quick_stat ()).Gc.heap_words in
         if hw > !peak then peak := hw));
  if progress then
    Telemetry.progress_reporter
      ?sketch_buckets:(Option.map (fun sk () -> Metrics.sketches_buckets sk) sketches)
      env stderr;
  Runner.run env ~until:horizon;
  Runner.drain env ~budget:(50 * Runner.base_rtt env);
  (match flog with
  | Some (oc, w) ->
    Bfc_obs.Flowlog.Writer.close w;
    close_out_noerr oc
  | None -> ());
  let hw = (Gc.quick_stat ()).Gc.heap_words in
  if hw > !peak then peak := hw;
  let overall, table =
    match sketches with
    | Some sk -> (Metrics.fct_overall_of_sketches sk, Metrics.fct_table_of_sketches sk)
    | None ->
      let flows = List.rev !kept in
      (Metrics.fct_overall env flows, Metrics.fct_table env flows)
  in
  {
    sr_streaming = streaming;
    sr_injected = Runner.injected env;
    sr_completed = Runner.completed env;
    sr_events = Runner.events_executed env;
    sr_elapsed_s = Bfc_util.Clock.elapsed_s ~since:wall0;
    sr_peak_heap_words = !peak;
    sr_overall = overall;
    sr_table = table;
    sr_sketches = sketches;
  }
