(** Wire a scheme onto a topology, inject flows, run, collect.

    [setup] instantiates a switch (with the scheme's dataplane program) on
    every switch node and a host on every host node; [inject] schedules
    flow starts; [run]/[drain] advance the simulation. *)

type params = {
  mtu : int;
  buffer_bytes : int; (** shared buffer per switch (12 MB paper) *)
  ecn_kmin : int; (** 100 KB *)
  ecn_kmax : int; (** 400 KB *)
  pfc_frac : float; (** 0.11 of free buffer *)
  ideal_queues : int; (** queue count standing in for "unbounded" *)
  track_active_flows : bool;
  deadlock_filter : bool; (** install the App. B elision table *)
  classes : int; (** traffic classes (Fig. 20) *)
  pause_watchdog : Bfc_engine.Time.t option;
      (** arm the pause watchdog on every switch and host NIC: a queue held
          paused longer than this is force-resumed (lost-Resume recovery).
          [None] (the default) disables it. *)
  seed : int;
  homa_dist : Bfc_workload.Dist.t;
      (** workload distribution used to derive Homa's priority cutoffs; a
          [params] field (not a global) so concurrent sweeps on separate
          domains cannot race on it *)
  use_ir : bool;
      (** route the scheme's dataplane program through the pipeline IR:
          build, validate and compile it per switch (Bfc_ir.Compile)
          instead of installing the hand-written hooks. Behavior is
          byte-identical (held to that by the differential test). *)
  streaming : bool;
      (** bounded-memory observability: FCT statistics go through mergeable
          quantile sketches instead of exact per-flow samples, hosts
          reclaim per-flow transport state after completion, and flow
          records can stream to a binary flowlog. Simulation behavior is
          unchanged — only what is retained about it. *)
}

val default_params : params

type env

val setup : topo:Bfc_net.Topology.t -> scheme:Scheme.t -> params:params -> env

(** Like {!setup}, but instantiates devices only on nodes for which
    [owned] holds. Sharded (PDES) runs pass the owning shard's membership
    predicate so each domain builds devices only for its own nodes — the
    full topology graph is still walked, so structural quantities (base
    RTT, BDP, per-node RNG seeds) are identical across shards. Raises
    [Invalid_argument] for schemes whose hooks reach across devices
    ([Scheme.Hpcc_pfc]). *)
val setup_shard :
  owned:(int -> bool) -> topo:Bfc_net.Topology.t -> scheme:Scheme.t -> params:params -> env

(** [merged envs] — a read-only union of per-shard environments for the
    metrics pipeline: switches/hosts collected in node-id order (the order
    a sequential setup yields), [injected]/[completed] summed, identity
    fields taken from shard 0. Merge only after every shard has quiesced;
    counters are snapshots, not live views. *)
val merged : env array -> env

val sim : env -> Bfc_engine.Sim.t

val topo : env -> Bfc_net.Topology.t

val scheme : env -> Scheme.t

val params : env -> params

(** Maximum base RTT between hosts (used for windows and BDP). *)
val base_rtt : env -> Bfc_engine.Time.t

val bdp : env -> int

(** Switches, in node-id order. *)
val switches : env -> Bfc_switch.Switch.t array

(** BFC dataplanes (same order as [switches]) when the scheme has one. *)
val dataplanes : env -> Bfc_core.Dataplane.t array

(** Compiled IR programs (same order as [switches]) when [use_ir] is set. *)
val ir_programs : env -> Bfc_ir.Compile.t array

val host : env -> int -> Bfc_transport.Host.t

(** Apply [f] to every host this environment instantiated (a shard's own
    hosts only, in a sharded run). *)
val iter_hosts : env -> (Bfc_transport.Host.t -> unit) -> unit

(** Schedule [Host.start_flow] at each flow's arrival time. *)
val inject : env -> Bfc_net.Flow.t list -> unit

val injected : env -> int

val completed : env -> int

(** The environment's packet pool (diagnostics: recycle/alloc counters). *)
val pool : env -> Bfc_net.Packet.Pool.t

(** Events executed by this environment's simulator so far (macro
    benchmark denominator). *)
val events_executed : env -> int

(** Run to an absolute simulation time. *)
val run : env -> until:Bfc_engine.Time.t -> unit

(** Keep running in [step]-sized slices until every injected flow has
    completed or [budget] extra time elapses. *)
val drain : ?step:Bfc_engine.Time.t -> env -> budget:Bfc_engine.Time.t -> unit

(** Total Data-packet drops across switches (credit drops excluded). *)
val total_drops : env -> int

(** Fraction of egress-time spent PFC-paused across all switch ports. *)
val pfc_pause_fraction : env -> float

(** Ideal (store-and-forward, line-rate) FCT for a flow on this topology,
    accounting for the scheme's per-packet header overhead. *)
val ideal_fct : env -> Bfc_net.Flow.t -> Bfc_engine.Time.t

(** FCT slowdown of a completed flow. *)
val slowdown : env -> Bfc_net.Flow.t -> float
