(* Motivation-section experiments: Fig. 1-4, Table 1, the M/G/1-PS law of
   §2.3 and the App. C threshold model (Fig. 30). *)

module Time = Bfc_engine.Time
module Sim = Bfc_engine.Sim
module Topology = Bfc_net.Topology
module Flow = Bfc_net.Flow
module Switch = Bfc_switch.Switch
module Dist = Bfc_workload.Dist
module Traffic = Bfc_workload.Traffic
module Arrivals = Bfc_workload.Arrivals
module Sample = Bfc_util.Stats.Sample
open Exp_common

(* ------------------------------------------------------------------ *)
(* Fig. 1: hardware trends (published Broadcom data, re-tabulated).     *)

let fig1 _profile =
  let data =
    (* chip, year, capacity (Tbps), buffer (MB) *)
    [
      ("Trident+", 2010, 0.64, 9.0);
      ("Trident2", 2013, 1.28, 12.0);
      ("Tomahawk", 2015, 3.2, 16.0);
      ("Tomahawk2", 2017, 6.4, 42.0);
      ("Tomahawk3", 2019, 12.8, 64.0);
    ]
  in
  let rows =
    List.map
      (fun (chip, year, cap, buf) ->
        let ratio_us = buf *. 8.0 /. cap in
        [ chip; string_of_int year; cell cap; cell buf; cell ratio_us ])
      data
  in
  [
    {
      title = "Fig 1: switch capacity vs buffer (Broadcom top-of-line)";
      header = [ "chip"; "year"; "capacity(Tbps)"; "buffer(MB)"; "buffer/capacity(us)" ];
      rows;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Fig. 2: byte-weighted CDF of flow sizes, with BDP markers.           *)

let fig2 _profile =
  let sizes = [ 1e3; 3e3; 1e4; 3e4; 1e5; 3e5; 1e6; 3e6; 1e7 ] in
  let dists = [ Dist.google; Dist.fb_hadoop; Dist.websearch ] in
  let rows =
    List.map
      (fun s ->
        string_of_int (int_of_float s)
        :: List.map (fun d -> cell (Dist.byte_cdf d s)) dists)
      sizes
  in
  let bdp gbps = gbps /. 8.0 *. 12_000.0 in
  [
    {
      title = "Fig 2: cumulative bytes by flow size (fraction of bytes in flows <= size)";
      header = [ "size(B)"; "google"; "fb_hadoop"; "websearch" ];
      rows;
    };
    {
      title = "Fig 2 (BDP markers, 12us RTT)";
      header = [ "link"; "BDP(B)" ];
      rows =
        List.map
          (fun g -> [ Printf.sprintf "%gG" g; string_of_int (int_of_float (bdp g)) ])
          [ 10.0; 40.0; 100.0 ];
    };
  ]

(* ------------------------------------------------------------------ *)
(* Fig. 3: fair-share variability on a processor-sharing link.          *)

(* Fluid PS simulation: flows arrive open-loop and share the link equally;
   we track N(t) and compute the mean relative change of f = C/N over an
   interval I. *)
let ps_trace ~dist ~gbps ~load ~duration ~seed =
  let rng = Bfc_util.Rng.create seed in
  let rate = gbps /. 8.0 (* bytes per ns *) in
  let mean_gap = Dist.mean dist /. (load *. rate) in
  (* active flows: remaining work; event-driven *)
  let active : (int, float ref) Hashtbl.t = Hashtbl.create 64 in
  let changes = ref [] in
  (* (time, n) *)
  let now = ref 0.0 in
  let next_arrival = ref (Arrivals.gap Arrivals.lognormal_default rng ~mean:mean_gap) in
  let next_id = ref 0 in
  let record () = changes := (!now, Hashtbl.length active) :: !changes in
  record ();
  while !now < duration do
    let n = Hashtbl.length active in
    (* earliest completion under PS *)
    let min_rem =
      (* commutative min-reduction, order-independent; bfc-lint: allow det-hashtbl-order *)
      Hashtbl.fold (fun _ r acc -> Float.min acc !r) active infinity
    in
    let per_flow_rate = if n = 0 then 0.0 else rate /. float_of_int n in
    let t_completion =
      if n = 0 then infinity else !now +. (min_rem /. per_flow_rate)
    in
    if !next_arrival <= t_completion then begin
      let dt = !next_arrival -. !now in
      if n > 0 then
        (* independent per-entry updates, order-independent; bfc-lint: allow det-hashtbl-order *)
        Hashtbl.iter (fun _ r -> r := !r -. (dt *. per_flow_rate)) active;
      now := !next_arrival;
      incr next_id;
      Hashtbl.add active !next_id (ref (float_of_int (Dist.sample dist rng)));
      next_arrival := !now +. Arrivals.gap Arrivals.lognormal_default rng ~mean:mean_gap;
      record ()
    end
    else begin
      let dt = t_completion -. !now in
      (* independent per-entry updates, order-independent; bfc-lint: allow det-hashtbl-order *)
      Hashtbl.iter (fun _ r -> r := !r -. (dt *. per_flow_rate)) active;
      now := t_completion;
      (* remove all with remaining <= epsilon; the collected keys only feed
         Hashtbl.remove, so order is irrelevant; bfc-lint: allow det-hashtbl-order *)
      let dead = Hashtbl.fold (fun k r acc -> if !r <= 1.0 then k :: acc else acc) active [] in
      List.iter (Hashtbl.remove active) dead;
      record ()
    end
  done;
  Array.of_list (List.rev !changes)

let n_at trace t =
  (* binary search the step function *)
  let n = Array.length trace in
  if n = 0 then 0
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if fst trace.(mid) <= t then lo := mid else hi := mid
    done;
    snd trace.(if fst trace.(!hi) <= t then !hi else !lo)
  end

let fair_share_change trace ~duration ~interval =
  let s = Sample.create () in
  let step = interval /. 4.0 in
  let t = ref (duration /. 10.0) in
  while !t +. interval < duration do
    let n1 = n_at trace !t and n2 = n_at trace (!t +. interval) in
    if n1 > 0 && n2 > 0 then begin
      let f1 = 1.0 /. float_of_int n1 and f2 = 1.0 /. float_of_int n2 in
      Sample.add s (Float.abs (f2 -. f1) /. f1 *. 100.0)
    end;
    t := !t +. step
  done;
  if Sample.is_empty s then nan else Sample.mean s

let fig3 profile =
  let duration =
    match profile with Smoke -> 2e6 | Quick -> 2e7 | Paper -> 2e8
    (* ns *)
  in
  let intervals = [ 8e3; 32e3; 128e3; 512e3 ] in
  let combos =
    List.concat_map
      (fun dist -> List.map (fun gbps -> (dist, gbps)) [ 10.0; 40.0; 100.0 ])
      [ Dist.google; Dist.fb_hadoop; Dist.websearch ]
  in
  let rows =
    sweep
      (List.map
         (fun (dist, gbps) ->
           pt
             (Printf.sprintf "fig3:%s:%g" (Dist.name dist) gbps)
             (fun () ->
               let trace = ps_trace ~dist ~gbps ~load:0.6 ~duration ~seed:11 in
               let cells =
                 List.map
                   (fun i -> cell (fair_share_change trace ~duration ~interval:i))
                   intervals
               in
               Dist.name dist :: Printf.sprintf "%gG" gbps :: cells))
         combos)
  in
  [
    {
      title = "Fig 3: mean % change in fair-share rate vs measurement interval (60% load)";
      header = [ "workload"; "link"; "8us"; "32us"; "128us"; "512us" ];
      rows;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Fig. 4: number of active flows at a bottleneck port.                 *)

let bottleneck_egress topo ~switch ~receiver =
  let ports = Topology.ports topo switch in
  let found = ref (-1) in
  Array.iteri
    (fun i p -> if (Bfc_net.Port.peer p).Bfc_net.Node.id = receiver then found := i)
    ports;
  !found

let active_flow_run ~profile ~scheme ~gbps ~load ~seed =
  let sim = Sim.create () in
  let senders = match profile with Smoke -> 8 | _ -> 16 in
  let st = Topology.star sim ~senders ~gbps ~prop:(Time.us 1.0) in
  let params = { Runner.default_params with track_active_flows = true; seed } in
  let env = Runner.setup ~topo:st.Topology.s ~scheme ~params in
  let duration =
    let base = match profile with Smoke -> Time.us 500.0 | Quick -> Time.ms 5.0 | Paper -> Time.ms 40.0 in
    (* slower links need longer wall-clock to see the same flow count *)
    int_of_float (float_of_int base *. (100.0 /. gbps))
  in
  let spec =
    {
      Traffic.hosts = st.Topology.st_senders;
      dist = Dist.google;
      arrivals = Arrivals.lognormal_default;
      load;
      ref_capacity_gbps = gbps;
      core_fraction = 1.0;
      matrix = Traffic.To_one st.Topology.st_receiver;
      duration;
      seed;
      prio_classes = 1;
    }
  in
  (* To_one picks among hosts incl receiver: hosts here are only senders, so
     add the receiver to the matrix target only. *)
  let ids = ref 0 in
  let flows = Traffic.generate spec ~ids in
  let egress = bottleneck_egress st.Topology.s ~switch:st.Topology.st_switch ~receiver:st.Topology.st_receiver in
  let sw =
    Array.to_list (Runner.switches env)
    |> List.find (fun s -> Switch.node_id s = st.Topology.st_switch)
  in
  let sample = Sample.create () in
  ignore
    (Sim.every sim ~period:(Time.us 10.0) (fun () ->
         Sample.add sample (float_of_int (Switch.active_flows sw ~egress))));
  Runner.inject env flows;
  Runner.run env ~until:duration;
  sample

let fig4 profile =
  let pct sample p = if Sample.is_empty sample then nan else Sample.percentile sample p in
  (* (a) FQ across loads and link speeds *)
  let loads = [ 0.5; 0.7; 0.85; 0.95 ] in
  let combos_a =
    List.concat_map
      (fun gbps -> List.map (fun load -> (gbps, load)) loads)
      (match profile with Smoke -> [ 100.0 ] | _ -> [ 10.0; 40.0; 100.0 ])
  in
  let rows_a =
    sweep
      (List.map
         (fun (gbps, load) ->
           pt
             (Printf.sprintf "fig4a:%g:%g" gbps load)
             (fun () ->
               let s = active_flow_run ~profile ~scheme:Scheme.Ideal_fq ~gbps ~load ~seed:3 in
               [
                 Printf.sprintf "%gG" gbps;
                 cell load;
                 cell (Sample.mean s);
                 cell (pct s 50.0);
                 cell (pct s 90.0);
                 cell (pct s 99.0);
               ]))
         combos_a)
  in
  (* (b) scheduling policy at 100G, 60/85% *)
  let fifo_scheme =
    Scheme.Bfc
      {
        Scheme.bfc_default with
        Scheme.queues = 2;
        fixed_th = Some max_int;
        window_cap = Some 1.0;
      }
  in
  let combos_b =
    List.concat_map
      (fun (name, scheme) -> List.map (fun load -> (name, scheme, load)) [ 0.6; 0.85 ])
      [ ("FQ", Scheme.Ideal_fq); ("SRF", Scheme.Ideal_srf); ("FIFO", fifo_scheme) ]
  in
  let rows_b =
    sweep
      (List.map
         (fun (name, scheme, load) ->
           pt
             (Printf.sprintf "fig4b:%s:%g" name load)
             (fun () ->
               let s = active_flow_run ~profile ~scheme ~gbps:100.0 ~load ~seed:3 in
               [
                 name;
                 cell load;
                 cell (Sample.mean s);
                 cell (pct s 50.0);
                 cell (pct s 90.0);
                 cell (pct s 99.0);
               ]))
         combos_b)
  in
  [
    {
      title = "Fig 4a: active flows at the bottleneck (fair queuing; Tofino2 has 32 queues/100G port)";
      header = [ "link"; "load"; "mean"; "p50"; "p90"; "p99" ];
      rows = rows_a;
    };
    {
      title = "Fig 4b: active flows vs scheduling policy (100G)";
      header = [ "policy"; "load"; "mean"; "p50"; "p90"; "p99" ];
      rows = rows_b;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Table 1: long flow on a shared 100G link.                            *)

let table1 profile =
  let schemes = [ Scheme.bfc; Scheme.hpcc; Scheme.dcqcn ] in
  let rows =
    sweep
      (List.map
         (fun scheme ->
           pt ("table1:" ^ Scheme.name scheme) (fun () ->
        let sim = Sim.create () in
        let senders = 16 in
        let st = Topology.star sim ~senders ~gbps:100.0 ~prop:(Time.us 1.0) in
        let env = Runner.setup ~topo:st.Topology.s ~scheme ~params:Runner.default_params in
        let duration =
          match profile with Smoke -> Time.us 400.0 | Quick -> Time.ms 4.0 | Paper -> Time.ms 20.0
        in
        (* one long-lived flow plus FB cross traffic at 60% *)
        let ids = ref 0 in
        let long =
          Traffic.long_lived
            ~pairs:[| (st.Topology.st_senders.(0), st.Topology.st_receiver) |]
            ~size:(1 lsl 40) ~ids ()
        in
        let cross_spec =
          {
            Traffic.hosts = Array.sub st.Topology.st_senders 1 (senders - 1);
            dist = Dist.fb_hadoop;
            arrivals = Arrivals.lognormal_default;
            load = 0.6;
            ref_capacity_gbps = 100.0;
            core_fraction = 1.0;
            matrix = Traffic.To_one st.Topology.st_receiver;
            duration;
            seed = 5;
            prio_classes = 1;
          }
        in
        let cross = Traffic.generate cross_spec ~ids in
        let egress =
          bottleneck_egress st.Topology.s ~switch:st.Topology.st_switch
            ~receiver:st.Topology.st_receiver
        in
        let lf = List.hd long in
        (* the paper's metric: per-packet queuing delay of the *long flow*
           at the bottleneck *)
        let delays = Sample.create () in
        Array.iter
          (fun sw ->
            if Switch.node_id sw = st.Topology.st_switch then begin
              let hk = Switch.hooks sw in
              let prev = hk.Switch.on_pkt_departed in
              hk.Switch.on_pkt_departed <-
                (fun sw ~egress:e pkt ~delay ->
                  prev sw ~egress:e pkt ~delay;
                  if e = egress && Bfc_net.Packet.flow_id pkt = lf.Flow.id then
                    Sample.add delays (float_of_int delay /. 1000.0))
            end)
          (Runner.switches env);
        Runner.inject env (Traffic.merge [ long; cross ]);
        Runner.run env ~until:duration;
        let tput =
          float_of_int lf.Flow.delivered /. (100.0 /. 8.0 *. float_of_int duration) *. 100.0
        in
        let p99 = if Sample.is_empty delays then nan else Sample.percentile delays 99.0 in
        [ Scheme.name scheme; cell tput; cell p99 ]))
         schemes)
  in
  [
    {
      title = "Table 1: long flow sharing a 100G link with FB cross-traffic (60% load)";
      header = [ "scheme"; "long-flow tput (%)"; "p99 queuing delay (us)" ];
      rows;
    };
  ]

(* ------------------------------------------------------------------ *)
(* M/G/1-PS theory vs simulation (Sec 2.3).                             *)

let mg1 profile =
  let rows =
    sweep
      (List.map
         (fun rho ->
           pt (Printf.sprintf "mg1:%g" rho) (fun () ->
        let sim = Sim.create () in
        let st = Topology.star sim ~senders:16 ~gbps:100.0 ~prop:(Time.us 1.0) in
        let params = { Runner.default_params with track_active_flows = true } in
        let env = Runner.setup ~topo:st.Topology.s ~scheme:Scheme.Ideal_fq ~params in
        let duration =
          match profile with Smoke -> Time.us 500.0 | Quick -> Time.ms 6.0 | Paper -> Time.ms 40.0
        in
        let spec =
          {
            Traffic.hosts = st.Topology.st_senders;
            dist = Dist.google;
            arrivals = Arrivals.Poisson;
            load = rho;
            ref_capacity_gbps = 100.0;
            core_fraction = 1.0;
            matrix = Traffic.To_one st.Topology.st_receiver;
            duration;
            seed = 17;
            prio_classes = 1;
          }
        in
        let ids = ref 0 in
        let flows = Traffic.generate spec ~ids in
        let egress =
          bottleneck_egress st.Topology.s ~switch:st.Topology.st_switch
            ~receiver:st.Topology.st_receiver
        in
        let sw =
          Array.to_list (Runner.switches env)
          |> List.find (fun s -> Switch.node_id s = st.Topology.st_switch)
        in
        let sample = Sample.create () in
        ignore
          (Sim.every sim ~period:(Time.us 5.0) (fun () ->
               Sample.add sample (float_of_int (Switch.active_flows sw ~egress))));
        Runner.inject env flows;
        Runner.run env ~until:duration;
        [
          cell rho;
          cell (Bfc_core.Active_flows.mean ~rho);
          cell (Sample.mean sample);
          string_of_int (Bfc_core.Active_flows.quantile ~rho ~p:0.99);
          cell (Sample.percentile sample 99.0);
        ]))
         [ 0.5; 0.7; 0.8; 0.9 ])
  in
  [
    {
      title = "Sec 2.3: M/G/1-PS active flows, theory (rho/(1-rho)) vs packet simulation";
      header = [ "rho"; "mean(theory)"; "mean(sim)"; "p99(theory)"; "p99(sim)" ];
      rows;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Fig. 30: worst-case idle fraction vs pause threshold (analytic).     *)

let fig30 _profile =
  let rows =
    List.map
      (fun th ->
        [
          cell th;
          cell (Bfc_core.Model.worst_x ~th_ratio:th);
          cell (Bfc_core.Model.max_ef ~th_ratio:th);
          cell (Bfc_core.Model.peak_queue ~x:(Bfc_core.Model.worst_x ~th_ratio:th) ~th_ratio:th);
        ])
      [ 0.25; 0.5; 1.0; 2.0; 4.0; 8.0 ]
  in
  [
    {
      title = "Fig 30 (App C): max_x E_f(x,Th) vs Th (in 1-hop-BDP units); 0.2 at Th=1";
      header = [ "Th/BDP"; "worst x"; "max idle fraction"; "peak queue (BDP)" ];
      rows;
    };
  ]
