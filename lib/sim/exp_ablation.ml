(* Ablations of BFC's design choices beyond what the paper sweeps:
   the sticky-reassignment threshold (§3.3.2 picks 2 HRTT), the pause
   threshold scale factor (Th = factor x HRTT.mu/N_active), the cost of
   the periodic pause-bitmap refresh, and cross-scheme fairness (the
   paper's "fairness dealt with trivially by scheduling" claim made
   measurable via Jain's index). *)

module Time = Bfc_engine.Time
module Dist = Bfc_workload.Dist
open Exp_common

let summarize name r =
  [
    name;
    cell (Metrics.short_p99 r.env ~since:r.measure_from r.flows);
    cell (Metrics.fct_overall r.env r.flows).Metrics.p99;
    cell (buffer_p99 r /. 1e6);
    Printf.sprintf "%d/%d" (Runner.completed r.env) (Runner.injected r.env);
  ]

let header = [ "config"; "short p99"; "overall p99"; "p99 buffer(MB)"; "completed" ]

(* --------------------------- Sticky threshold ---------------------- *)

let sticky profile =
  let rows =
    sweep
      (List.map
         (fun mult ->
           pt (Printf.sprintf "sticky:%g" mult) (fun () ->
               let scheme =
                 Scheme.Bfc { Scheme.bfc_default with Scheme.sticky_hrtt_mult = mult }
               in
               let s =
                 {
                   (std profile scheme) with
                   sp_dist = Dist.fb_hadoop;
                   sp_incast = Some default_incast;
                 }
               in
               summarize (Printf.sprintf "sticky = %g HRTT" mult) (run_std s)))
         (match profile with Smoke -> [ 2.0 ] | _ -> [ 0.0; 1.0; 2.0; 8.0; 64.0 ]))
  in
  [
    {
      title =
        "Ablation: sticky queue-reassignment threshold (paper: 2 HRTT) — FB + incast";
      header;
      rows;
    };
  ]

(* --------------------------- Pause threshold ------------------------ *)

let thfactor profile =
  let rows =
    sweep
      (List.map
         (fun factor ->
           pt (Printf.sprintf "thfactor:%g" factor) (fun () ->
               let scheme =
                 Scheme.Bfc { Scheme.bfc_default with Scheme.th_factor = factor }
               in
               let s = { (std profile scheme) with sp_dist = Dist.fb_hadoop } in
               let r = run_std s in
               let pauses =
                 Array.fold_left
                   (fun a dp ->
                     a + (Bfc_core.Dataplane.stats dp).Bfc_core.Dataplane.pauses_sent)
                   0 (Runner.dataplanes r.env)
               in
               summarize (Printf.sprintf "Th = %gx 1-hop BDP" factor) r
               @ [ string_of_int pauses ]))
         (match profile with Smoke -> [ 1.0 ] | _ -> [ 0.25; 0.5; 1.0; 2.0; 4.0 ]))
  in
  [
    {
      title = "Ablation: pause threshold scale (paper: 1x) — buffering vs pause volume";
      header = header @ [ "pauses sent" ];
      rows;
    };
  ]

(* ----------------------------- Bitmap cost -------------------------- *)

let bitmap_cost profile =
  let rows =
    sweep
      (List.map
         (fun period ->
           let name =
             match period with
             | None -> "no refresh"
             | Some p -> Printf.sprintf "refresh every %gus" (Time.to_us p)
           in
           pt ("bitmap:" ^ name) (fun () ->
               let scheme =
                 Scheme.Bfc { Scheme.bfc_default with Scheme.bitmap_period = period }
               in
               let s =
                 {
                   (std profile scheme) with
                   sp_dist = Dist.fb_hadoop;
                   sp_incast = Some default_incast;
                 }
               in
               summarize name (run_std s)))
         (match profile with
         | Smoke -> [ None ]
         | _ -> [ None; Some (Time.us 100.0); Some (Time.us 20.0); Some (Time.us 5.0) ]))
  in
  [
    {
      title = "Ablation: periodic pause-bitmap refresh cost (reliability vs overhead)";
      header;
      rows;
    };
  ]

(* ------------------------------ Fairness ---------------------------- *)

let fairness profile =
  let schemes =
    match profile with
    | Smoke -> [ Scheme.bfc; Scheme.dctcp ]
    | _ -> [ Scheme.bfc; Scheme.Ideal_fq; Scheme.hpcc; Scheme.dcqcn; Scheme.dctcp ]
  in
  let rows =
    sweep
      (List.map
         (fun scheme ->
           pt ("fairness:" ^ Scheme.name scheme) (fun () ->
               let s =
                 { (std profile scheme) with sp_dist = Dist.fb_hadoop; sp_load = 0.7 }
               in
               let r = run_std s in
               [
                 Scheme.name scheme;
                 cell
                   (Metrics.jain_fairness r.env ~min_size:300_000 ~max_size:1_000_000 r.flows);
                 cell
                   (Metrics.long_avg r.env ~threshold:1_000_000 ~since:r.measure_from r.flows);
               ]))
         schemes)
  in
  [
    {
      title =
        "Ablation: Jain fairness over 0.3-1MB flow throughputs (FB 70%) — \"fairness by scheduling\"";
      header = [ "scheme"; "Jain index"; "long avg slowdown" ];
      rows;
    };
  ]

(* ------------------- Sec 2.2: existing solutions ------------------- *)

(* PFC alone (coarse hop-by-hop pausing, FIFO queues) against the other
   deployed end-to-end schemes of Sec 2 (Timely/Swift-class delay control,
   DCTCP/DCQCN) and BFC, under incast: PFC's pause spreads congestion to
   victims (HoL blocking), which is exactly the paper's case for per-flow
   backpressure. *)
let strawman profile =
  let schemes =
    match profile with
    | Smoke -> [ Scheme.pfc_only; Scheme.bfc ]
    | _ ->
      [ Scheme.pfc_only; Scheme.swift; Scheme.timely; Scheme.dctcp; Scheme.dcqcn; Scheme.bfc ]
  in
  let rows =
    sweep
      (List.map
         (fun scheme ->
           pt ("strawman:" ^ Scheme.name scheme) (fun () ->
               let s =
                 {
                   (std profile scheme) with
                   sp_dist = Dist.google;
                   sp_incast = Some default_incast;
                 }
               in
               let r = run_std s in
               [
                 Scheme.name scheme;
                 cell (Metrics.short_p99 r.env ~since:r.measure_from r.flows);
                 cell (Metrics.fct_overall r.env r.flows).Metrics.p99;
                 cell (Runner.pfc_pause_fraction r.env *. 100.0);
                 cell (buffer_p99 r /. 1e6);
                 string_of_int (Runner.total_drops r.env);
               ]))
         schemes)
  in
  [
    {
      title =
        "Sec 2.2: PFC strawman and deployed e2e schemes vs BFC (Google, 55% + 5% incast)";
      header = [ "scheme"; "short p99"; "overall p99"; "pfc pause %"; "p99 buffer(MB)"; "drops" ];
      rows;
    };
  ]
