(** Unified telemetry for a running experiment.

    [attach] wires a {!Bfc_obs.Registry} (counters + gauges), an optional
    packet-lifecycle {!Bfc_obs.Trace} and an optional gauge time series
    onto a {!Runner.env}:

    - switch hooks record enqueue/dequeue/drop/ECN-mark counters, a
      ["queued"] span per dequeued packet (residency from enqueue to
      dequeue, one Perfetto track per (egress, queue)), a ["paused"] span
      per queue pause/resume transition, and drop instants;
    - host NICs record ctrl-frame pause/resume instants and counters;
    - switch ports feed a transmitted-packet counter;
    - gauges sample buffer occupancy, paused-queue counts, NIC backlog,
      in-flight/completed flows, packet-pool and event-engine statistics.

    Everything honours the registry's enabled flag: attach with
    [t_enabled = false] and every probe collapses to a single-branch no-op
    (the trace and series are not even created), preserving the
    zero-allocation hot path. *)

type config = {
  t_enabled : bool;
  t_trace : bool; (** record the packet-lifecycle trace *)
  t_trace_capacity : int; (** ring capacity; [<= 0] = unbounded *)
  t_series_period : Bfc_engine.Time.t option;
      (** gauge sampling period; [None] disables the time series *)
}

(** Enabled, tracing, unbounded, sampling every 10 us. *)
val default_config : config

type t

(** Call after {!Runner.setup} (and after any {!Tracer}/fault wiring whose
    hooks should run first), before injecting flows. *)
val attach : ?config:config -> Runner.env -> t

val registry : t -> Bfc_obs.Registry.t

(** The lifecycle trace, when configured. *)
val trace : t -> Bfc_obs.Trace.t option

(** The gauge time series, when configured. *)
val series : t -> Bfc_obs.Series.t option

(** Chrome trace-event JSON with process names ("switch N" / "host N") and
    per-(egress, queue) track names resolved from the environment. Opens in
    ui.perfetto.dev. No-op when tracing is off. *)
val write_trace : t -> out_channel -> unit

(** JSONL sink for the same records. No-op when tracing is off. *)
val write_jsonl : t -> out_channel -> unit

(** Gauge time series as CSV. No-op when the series is off. *)
val write_series : t -> out_channel -> unit

(** Registry snapshot (counters, gauges, histograms) as JSON. *)
val counters_json : t -> string

(** Install a simulation ticker that prints a one-line progress report to
    [oc] every [period] of sim-time (default 1 ms): sim-time, events
    executed, wall-clock events/sec over the last interval, flows
    completed/injected, optionally the live sketch bucket count, and the
    major-heap size in words. Flushes per line so the run can be tailed. *)
val progress_reporter :
  ?period:Bfc_engine.Time.t -> ?sketch_buckets:(unit -> int) -> Runner.env -> out_channel -> unit

(** Event-engine self-profile of the environment's simulator as JSON
    (execution counts per handle class, heap high-water mark, handle reuse
    stats). Usable without {!attach}. *)
val engine_profile_json : Runner.env -> string
