module Flow = Bfc_net.Flow
module Sim = Bfc_engine.Sim
module Switch = Bfc_switch.Switch
module Sample = Bfc_util.Stats.Sample

let size_buckets =
  [
    ("<3K", 0, 3_000);
    ("3-10K", 3_000, 10_000);
    ("10-30K", 10_000, 30_000);
    ("30-100K", 30_000, 100_000);
    ("100-300K", 100_000, 300_000);
    ("0.3-1M", 300_000, 1_000_000);
    ("1-3M", 1_000_000, 3_000_000);
    (">3M", 3_000_000, max_int);
  ]

type fct_stats = {
  bucket : string;
  lo : int;
  count : int;
  avg : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let eligible ?(incast = false) ?(since = 0) flows =
  List.filter
    (fun f -> Flow.complete f && f.Flow.is_incast = incast && f.Flow.arrival >= since)
    flows

let stats_of ~bucket ~lo sample =
  if Sample.is_empty sample then
    { bucket; lo; count = 0; avg = nan; p50 = nan; p95 = nan; p99 = nan }
  else
    {
      bucket;
      lo;
      count = Sample.count sample;
      avg = Sample.mean sample;
      p50 = Sample.percentile sample 50.0;
      p95 = Sample.percentile sample 95.0;
      p99 = Sample.percentile sample 99.0;
    }

let fct_table env ?(incast = false) ?(since = 0) flows =
  let flows = eligible ~incast ~since flows in
  List.map
    (fun (bucket, lo, hi) ->
      let s = Sample.create () in
      List.iter
        (fun f -> if f.Flow.size >= lo && f.Flow.size < hi then Sample.add s (Runner.slowdown env f))
        flows;
      stats_of ~bucket ~lo s)
    size_buckets

let fct_overall env flows =
  let s = Sample.create () in
  List.iter (fun f -> if Flow.complete f then Sample.add s (Runner.slowdown env f)) flows;
  stats_of ~bucket:"all" ~lo:0 s

let short_p99 env ?(since = 0) flows =
  let s = Sample.create () in
  List.iter
    (fun f ->
      if Flow.complete f && (not f.Flow.is_incast) && f.Flow.arrival >= since && f.Flow.size < 3_000
      then Sample.add s (Runner.slowdown env f))
    (List.filter (fun _ -> true) flows);
  if Sample.is_empty s then nan else Sample.percentile s 99.0

let long_avg env ?(threshold = 3_000_000) ?(since = 0) flows =
  let s = Sample.create () in
  List.iter
    (fun f ->
      if
        Flow.complete f && (not f.Flow.is_incast) && f.Flow.arrival >= since
        && f.Flow.size >= threshold
      then Sample.add s (Runner.slowdown env f))
    flows;
  if Sample.is_empty s then nan else Sample.mean s

let median_slowdown env flows =
  let s = Sample.create () in
  List.iter (fun f -> if Flow.complete f then Sample.add s (Runner.slowdown env f)) flows;
  if Sample.is_empty s then nan else Sample.percentile s 50.0

let watch_buffers env ~period =
  let s = Sample.create () in
  ignore
    (Sim.every (Runner.sim env) ~period (fun () ->
         Array.iter
           (fun sw -> Sample.add s (float_of_int (Switch.buffer_used sw)))
           (Runner.switches env)));
  s

let watch_active_flows env ~period =
  let s = Sample.create () in
  ignore
    (Sim.every (Runner.sim env) ~period (fun () ->
         Array.iter
           (fun sw ->
             for e = 0 to Switch.n_ports sw - 1 do
               (* only fabric-facing ports matter for Fig. 4/10c; counting
                  all switch egresses matches "at a port" in the paper *)
               Sample.add s (float_of_int (Switch.active_flows sw ~egress:e))
             done)
           (Runner.switches env)));
  s

type util_probe = { port : Bfc_net.Port.t; t0 : Bfc_engine.Time.t; b0 : int; env : Runner.env }

let utilization_probe env ~gid =
  let port = Bfc_net.Topology.port_by_gid (Runner.topo env) gid in
  { port; t0 = Sim.now (Runner.sim env); b0 = Bfc_net.Port.tx_bytes port; env }

let utilization probe =
  let now = Sim.now (Runner.sim probe.env) in
  let dt = now - probe.t0 in
  if dt <= 0 then 0.0
  else begin
    let bytes = Bfc_net.Port.tx_bytes probe.port - probe.b0 in
    let capacity = Bfc_net.Port.gbps probe.port /. 8.0 *. float_of_int dt in
    float_of_int bytes /. capacity
  end

let watch_queue_delay env ~filter =
  let s = Sample.create () in
  Array.iter
    (fun sw ->
      let hk = Switch.hooks sw in
      let prev = hk.Switch.on_pkt_departed in
      hk.Switch.on_pkt_departed <-
        (fun sw ~egress pkt ~delay ->
          prev sw ~egress pkt ~delay;
          if pkt.Bfc_net.Packet.kind = Bfc_net.Packet.Data && filter ~sw:(Switch.node_id sw) ~egress
          then Sample.add s (float_of_int delay /. 1000.0)))
    (Runner.switches env);
  s

let watchdog_fires env =
  let sw =
    Array.fold_left (fun acc s -> acc + Switch.watchdog_fires s) 0 (Runner.switches env)
  in
  Array.fold_left
    (fun acc h -> acc + Bfc_transport.Host.watchdog_fires (Runner.host env h))
    sw
    (Bfc_net.Topology.hosts (Runner.topo env))

let reboots env =
  Array.fold_left (fun acc s -> acc + Switch.reboots s) 0 (Runner.switches env)

let jain_fairness env ~min_size ?(max_size = max_int) flows =
  ignore env;
  let xs =
    List.filter_map
      (fun f ->
        if Flow.complete f && f.Flow.size >= min_size && f.Flow.size < max_size then
          Some (float_of_int f.Flow.size /. float_of_int (Flow.fct f))
        else None)
      flows
  in
  match xs with
  | [] -> nan
  | _ ->
    let n = float_of_int (List.length xs) in
    let s = List.fold_left ( +. ) 0.0 xs in
    let s2 = List.fold_left (fun a x -> a +. (x *. x)) 0.0 xs in
    s *. s /. (n *. s2)
