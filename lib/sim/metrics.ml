module Flow = Bfc_net.Flow
module Sim = Bfc_engine.Sim
module Switch = Bfc_switch.Switch
module Sample = Bfc_util.Stats.Sample

let size_buckets =
  [
    ("<3K", 0, 3_000);
    ("3-10K", 3_000, 10_000);
    ("10-30K", 10_000, 30_000);
    ("30-100K", 30_000, 100_000);
    ("100-300K", 100_000, 300_000);
    ("0.3-1M", 300_000, 1_000_000);
    ("1-3M", 1_000_000, 3_000_000);
    (">3M", 3_000_000, max_int);
  ]

type fct_stats = {
  bucket : string;
  lo : int;
  count : int;
  avg : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let eligible ?(incast = false) ?(since = 0) flows =
  List.filter
    (fun f -> Flow.complete f && f.Flow.is_incast = incast && f.Flow.arrival >= since)
    flows

let stats_of ~bucket ~lo sample =
  if Sample.is_empty sample then
    { bucket; lo; count = 0; avg = nan; p50 = nan; p95 = nan; p99 = nan }
  else
    {
      bucket;
      lo;
      count = Sample.count sample;
      avg = Sample.mean sample;
      p50 = Sample.percentile sample 50.0;
      p95 = Sample.percentile sample 95.0;
      p99 = Sample.percentile sample 99.0;
    }

let fct_table env ?(incast = false) ?(since = 0) flows =
  let flows = eligible ~incast ~since flows in
  List.map
    (fun (bucket, lo, hi) ->
      let s = Sample.create () in
      List.iter
        (fun f -> if f.Flow.size >= lo && f.Flow.size < hi then Sample.add s (Runner.slowdown env f))
        flows;
      stats_of ~bucket ~lo s)
    size_buckets

let fct_overall env flows =
  let s = Sample.create () in
  List.iter (fun f -> if Flow.complete f then Sample.add s (Runner.slowdown env f)) flows;
  stats_of ~bucket:"all" ~lo:0 s

(* ------------------------------------------------------------------ *)
(* Sketch-backed FCT statistics (streaming runs): instead of retaining a
   slowdown sample per flow, completions feed mergeable quantile sketches —
   one overall, one per size bucket — so memory is O(buckets) however many
   flows complete. Per-shard sketches merge exactly (Sketch.merge is
   associative), so sharded and sequential streaming runs produce
   byte-identical tables. *)

module Sketch = Bfc_obs.Sketch

type fct_sketches = {
  fs_alpha : float; (* relative-error bound the sketches were created with *)
  fs_since : Bfc_engine.Time.t;
  fs_overall : Sketch.t; (* every completed flow, incast included *)
  fs_buckets : Sketch.t array; (* non-incast, arrival >= since, by size *)
}

let n_size_buckets = List.length size_buckets

let sketches_create ?(alpha = 0.01) ?(since = 0) () =
  {
    fs_alpha = alpha;
    fs_since = since;
    fs_overall = Sketch.create ~alpha ();
    fs_buckets = Array.init n_size_buckets (fun _ -> Sketch.create ~alpha ());
  }

let bucket_index =
  let arr = Array.of_list size_buckets in
  fun size ->
    let rec go i =
      if i >= Array.length arr then -1
      else begin
        let _, lo, hi = arr.(i) in
        if size >= lo && size < hi then i else go (i + 1)
      end
    in
    go 0

(* Feed one completed flow. Mirrors the eligibility rules of [fct_overall]
   (all completed flows) and [fct_table] (non-incast, arrival >= since). *)
let sketches_observe env sk f =
  let v = Runner.slowdown env f in
  Sketch.add sk.fs_overall v;
  if (not f.Flow.is_incast) && f.Flow.arrival >= sk.fs_since then begin
    let i = bucket_index f.Flow.size in
    if i >= 0 then Sketch.add sk.fs_buckets.(i) v
  end

let sketches_merge ~into src =
  if Array.length into.fs_buckets <> Array.length src.fs_buckets then
    invalid_arg "Metrics.sketches_merge: mismatched bucket sets";
  Sketch.merge ~into:into.fs_overall src.fs_overall;
  Array.iteri (fun i s -> Sketch.merge ~into:into.fs_buckets.(i) s) src.fs_buckets

let stats_of_sketch ~bucket ~lo sk =
  if Sketch.is_empty sk then { bucket; lo; count = 0; avg = nan; p50 = nan; p95 = nan; p99 = nan }
  else
    {
      bucket;
      lo;
      count = Sketch.count sk;
      avg = Sketch.mean sk;
      p50 = Sketch.percentile sk 50.0;
      p95 = Sketch.percentile sk 95.0;
      p99 = Sketch.percentile sk 99.0;
    }

let fct_table_of_sketches sk =
  List.mapi
    (fun i (bucket, lo, _) -> stats_of_sketch ~bucket ~lo sk.fs_buckets.(i))
    size_buckets

let fct_overall_of_sketches sk = stats_of_sketch ~bucket:"all" ~lo:0 sk.fs_overall

(* Total nonzero buckets across all sketches (progress reporting). *)
let sketches_buckets sk =
  Array.fold_left
    (fun a s -> a + Sketch.bucket_count s)
    (Sketch.bucket_count sk.fs_overall)
    sk.fs_buckets

let sketches_alpha sk = sk.fs_alpha

(* Concatenated canonical encodings (overall first, then each size bucket):
   equal strings iff the sketch states are identical, whatever merge order
   produced them — the sharded-vs-sequential differential gate. *)
let sketches_encode sk =
  String.concat ""
    (Sketch.encode sk.fs_overall :: Array.to_list (Array.map Sketch.encode sk.fs_buckets))

let short_p99 env ?(since = 0) flows =
  let s = Sample.create () in
  List.iter
    (fun f ->
      if Flow.complete f && (not f.Flow.is_incast) && f.Flow.arrival >= since && f.Flow.size < 3_000
      then Sample.add s (Runner.slowdown env f))
    (List.filter (fun _ -> true) flows);
  if Sample.is_empty s then nan else Sample.percentile s 99.0

let long_avg env ?(threshold = 3_000_000) ?(since = 0) flows =
  let s = Sample.create () in
  List.iter
    (fun f ->
      if
        Flow.complete f && (not f.Flow.is_incast) && f.Flow.arrival >= since
        && f.Flow.size >= threshold
      then Sample.add s (Runner.slowdown env f))
    flows;
  if Sample.is_empty s then nan else Sample.mean s

let median_slowdown env flows =
  let s = Sample.create () in
  List.iter (fun f -> if Flow.complete f then Sample.add s (Runner.slowdown env f)) flows;
  if Sample.is_empty s then nan else Sample.percentile s 50.0

let watch_buffers env ~period =
  let s = Sample.create () in
  ignore
    (Sim.every (Runner.sim env) ~period (fun () ->
         Array.iter
           (fun sw -> Sample.add s (float_of_int (Switch.buffer_used sw)))
           (Runner.switches env)));
  s

let watch_active_flows env ~period =
  let s = Sample.create () in
  ignore
    (Sim.every (Runner.sim env) ~period (fun () ->
         Array.iter
           (fun sw ->
             for e = 0 to Switch.n_ports sw - 1 do
               (* only fabric-facing ports matter for Fig. 4/10c; counting
                  all switch egresses matches "at a port" in the paper *)
               Sample.add s (float_of_int (Switch.active_flows sw ~egress:e))
             done)
           (Runner.switches env)));
  s

type util_probe = { port : Bfc_net.Port.t; t0 : Bfc_engine.Time.t; b0 : int; env : Runner.env }

let utilization_probe env ~gid =
  let port = Bfc_net.Topology.port_by_gid (Runner.topo env) gid in
  { port; t0 = Sim.now (Runner.sim env); b0 = Bfc_net.Port.tx_bytes port; env }

let utilization probe =
  let now = Sim.now (Runner.sim probe.env) in
  let dt = now - probe.t0 in
  if dt <= 0 then 0.0
  else begin
    let bytes = Bfc_net.Port.tx_bytes probe.port - probe.b0 in
    let capacity = Bfc_net.Port.gbps probe.port /. 8.0 *. float_of_int dt in
    float_of_int bytes /. capacity
  end

let watch_queue_delay env ~filter =
  let s = Sample.create () in
  Array.iter
    (fun sw ->
      let hk = Switch.hooks sw in
      let prev = hk.Switch.on_pkt_departed in
      hk.Switch.on_pkt_departed <-
        (fun sw ~egress pkt ~delay ->
          prev sw ~egress pkt ~delay;
          if pkt.Bfc_net.Packet.kind = Bfc_net.Packet.Data && filter ~sw:(Switch.node_id sw) ~egress
          then Sample.add s (float_of_int delay /. 1000.0)))
    (Runner.switches env);
  s

let watchdog_fires env =
  let sw =
    Array.fold_left (fun acc s -> acc + Switch.watchdog_fires s) 0 (Runner.switches env)
  in
  Array.fold_left
    (fun acc h -> acc + Bfc_transport.Host.watchdog_fires (Runner.host env h))
    sw
    (Bfc_net.Topology.hosts (Runner.topo env))

let reboots env =
  Array.fold_left (fun acc s -> acc + Switch.reboots s) 0 (Runner.switches env)

let jain_fairness env ~min_size ?(max_size = max_int) flows =
  ignore env;
  let xs =
    List.filter_map
      (fun f ->
        if Flow.complete f && f.Flow.size >= min_size && f.Flow.size < max_size then
          Some (float_of_int f.Flow.size /. float_of_int (Flow.fct f))
        else None)
      flows
  in
  match xs with
  | [] -> nan
  | _ ->
    let n = float_of_int (List.length xs) in
    let s = List.fold_left ( +. ) 0.0 xs in
    let s2 = List.fold_left (fun a x -> a +. (x *. x)) 0.0 xs in
    s *. s /. (n *. s2)
