(* Principal simulation results (§6.2.2-§6.4): Fig. 9-14 and the incast
   flow FCTs of App. A.12 (Fig. 29). *)

module Time = Bfc_engine.Time
module Dist = Bfc_workload.Dist
module Sample = Bfc_util.Stats.Sample
open Exp_common

let main_schemes =
  [
    Scheme.bfc;
    Scheme.hpcc;
    Scheme.hpcc_pfc;
    Scheme.dcqcn;
    Scheme.dctcp;
    Scheme.expresspass;
    Scheme.Ideal_fq;
  ]

let quick_schemes profile =
  match profile with
  | Smoke -> [ Scheme.bfc; Scheme.dctcp ]
  | Quick | Paper -> main_schemes

(* One Fig-9/10/11-style panel: per-scheme FCT buckets + buffer + pfc.
   Each scheme is an independent sweep point returning its slice of every
   table; slices are concatenated in scheme order afterwards. *)
let panel ~title ~profile ~dist ~load ~incast ~track_active =
  let run_one scheme () =
    let s =
      {
        (std profile scheme) with
        sp_dist = dist;
        sp_load = load;
        sp_incast = incast;
        sp_track_active = track_active;
      }
    in
    let r = run_std s in
    let name = Scheme.name scheme in
    let fct = List.map (fun row -> name :: row) (fct_rows r) in
    (* incast flows separately (App A.12 / Fig 29 uses the Fig 9 setup) *)
    let incast_rows =
      match incast with
      | None -> []
      | Some _ ->
        let stats = Metrics.fct_table r.env ~incast:true ~since:r.measure_from r.flows in
        List.filter_map
          (fun (st : Metrics.fct_stats) ->
            if st.Metrics.count = 0 then None
            else
              Some
                [
                  name ^ " [incast]";
                  st.Metrics.bucket;
                  string_of_int st.Metrics.count;
                  cell st.Metrics.avg;
                  cell st.Metrics.p50;
                  cell st.Metrics.p95;
                  cell st.Metrics.p99;
                ])
          stats
    in
    let summary =
      [
        name;
        cell (buffer_p99 r /. 1e6);
        string_of_int (Runner.total_drops r.env);
        cell (Runner.pfc_pause_fraction r.env *. 100.0);
        Printf.sprintf "%d/%d" (Runner.completed r.env) (Runner.injected r.env);
      ]
    in
    let active =
      match r.active with
      | Some a when not (Sample.is_empty a) ->
        Some
          [
            name;
            cell (Sample.mean a);
            cell (Sample.percentile a 90.0);
            cell (Sample.percentile a 99.0);
            cell (Sample.max a);
          ]
      | _ -> None
    in
    (fct @ incast_rows, summary, active)
  in
  let results =
    sweep
      (List.map (fun sch -> pt (Scheme.name sch) (run_one sch)) (quick_schemes profile))
  in
  let fct_rows_all = List.concat_map (fun (f, _, _) -> f) results in
  let summary = List.map (fun (_, s, _) -> s) results in
  let active_tbl = List.filter_map (fun (_, _, a) -> a) results in
  let tables =
    [
      {
        title;
        header = [ "scheme"; "bucket"; "n"; "avg"; "p50"; "p95"; "p99" ];
        rows = fct_rows_all;
      };
      {
        title = title ^ " — buffer occupancy & health";
        header = [ "scheme"; "p99 buffer(MB)"; "drops"; "pfc pause(%)"; "completed" ];
        rows = summary;
      };
    ]
  in
  if active_tbl = [] then tables
  else
    tables
    @ [
        {
          title = title ^ " — active flows per port";
          header = [ "scheme"; "mean"; "p90"; "p99"; "max" ];
          rows = active_tbl;
        };
      ]

let fig9 profile =
  panel ~title:"Fig 9: Google, 55% load + 5% 100:1 incast — FCT slowdown" ~profile
    ~dist:Dist.google ~load:0.6 ~incast:(Some default_incast) ~track_active:false

let fig10 profile =
  panel ~title:"Fig 10: Google, 60% load, no incast — FCT slowdown" ~profile ~dist:Dist.google
    ~load:0.6 ~incast:None ~track_active:true

let fig11 profile =
  panel
    ~title:"Fig 11a: Facebook, 55% + 5% 100:1 incast — FCT slowdown" ~profile
    ~dist:Dist.fb_hadoop ~load:0.6 ~incast:(Some default_incast) ~track_active:false
  @ panel ~title:"Fig 11b: Facebook, 60% load, no incast — FCT slowdown" ~profile
      ~dist:Dist.fb_hadoop ~load:0.6 ~incast:None ~track_active:false

(* ------------------------------------------------------------------ *)
(* Fig. 12: load sweep.                                                 *)

let fig12 profile =
  let loads = match profile with Smoke -> [ 0.6 ] | _ -> [ 0.5; 0.6; 0.7; 0.8; 0.9; 0.95 ] in
  let schemes =
    match profile with
    | Smoke -> [ Scheme.bfc ]
    | _ -> [ Scheme.bfc; Scheme.bfc_q 128; Scheme.hpcc; Scheme.hpcc_pfc; Scheme.dctcp ]
  in
  let combos =
    List.concat_map
      (fun scheme ->
        List.filter_map
          (fun load ->
            (* HPCC becomes unstable above 70% load (paper) *)
            let skip = match scheme with Scheme.Hpcc _ -> load > 0.71 | _ -> false in
            if skip then None else Some (scheme, load))
          loads)
      schemes
  in
  let rows =
    sweep
      (List.map
         (fun (scheme, load) ->
           pt
             (Printf.sprintf "fig12:%s:%.2f" (Scheme.name scheme) load)
             (fun () ->
               (* queue exhaustion at high load takes ~1/(1-rho) to develop *)
               let mult = if load >= 0.9 then 3.0 else 1.0 in
               let s = { (std profile scheme) with sp_load = load; sp_dur_mult = mult } in
               let r = run_std s in
               [
                 Scheme.name scheme;
                 cell load;
                 cell (Metrics.long_avg r.env ~since:r.measure_from r.flows);
                 cell (Metrics.short_p99 r.env ~since:r.measure_from r.flows);
                 Printf.sprintf "%d/%d" (Runner.completed r.env) (Runner.injected r.env);
               ]))
         combos)
  in
  [
    {
      title = "Fig 12: FB, no incast — long-flow avg & short-flow p99 slowdown vs load";
      header = [ "scheme"; "load"; "long avg"; "short p99"; "completed" ];
      rows;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Fig. 13: incast degree sweep.                                        *)

let fig13 profile =
  let degrees =
    match profile with
    | Smoke -> [ 20 ]
    | Quick -> [ 10; 50; 100; 400; 800 ]
    | Paper -> [ 10; 50; 100; 200; 500; 1000; 2000 ]
  in
  let schemes =
    match profile with
    | Smoke -> [ Scheme.bfc ]
    | _ -> [ Scheme.bfc; Scheme.bfc_q 128; Scheme.hpcc_pfc; Scheme.dctcp ]
  in
  let combos =
    List.concat_map (fun scheme -> List.map (fun d -> (scheme, d)) degrees) schemes
  in
  let rows =
    sweep
      (List.map
         (fun (scheme, degree) ->
           pt
             (Printf.sprintf "fig13:%s:%d" (Scheme.name scheme) degree)
             (fun () ->
               let s =
                 {
                   (std profile scheme) with
                   sp_incast = Some { default_incast with degree };
                 }
               in
               let r = run_std s in
               [
                 Scheme.name scheme;
                 string_of_int degree;
                 cell (Metrics.long_avg r.env ~since:r.measure_from r.flows);
                 cell (Metrics.short_p99 r.env ~since:r.measure_from r.flows);
                 string_of_int (Runner.total_drops r.env);
               ]))
         combos)
  in
  [
    {
      title = "Fig 13: FB, 55% + 5% incast — slowdown vs incast degree";
      header = [ "scheme"; "degree"; "long avg"; "short p99"; "drops" ];
      rows;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Fig. 14: decomposing BFC — HPCC-PFC with SFQ / DQA.                  *)

let fig14 profile =
  let schemes =
    [
      Scheme.hpcc_pfc;
      Scheme.Hpcc_pfc { sfq = true; dqa = false };
      Scheme.Hpcc_pfc { sfq = false; dqa = true };
      Scheme.bfc;
      Scheme.Ideal_fq;
    ]
  in
  let results =
    sweep
      (List.map
         (fun scheme ->
           pt
             (Printf.sprintf "fig14:%s" (Scheme.name scheme))
             (fun () ->
               let s =
                 {
                   (std profile scheme) with
                   sp_dist = Dist.fb_hadoop;
                   sp_incast = Some default_incast;
                 }
               in
               let r = run_std s in
               let name = Scheme.name scheme in
               ( List.map (fun row -> name :: row) (fct_rows r),
                 [ name; cell (buffer_p99 r /. 1e6); string_of_int (Runner.total_drops r.env) ]
               )))
         schemes)
  in
  [
    {
      title = "Fig 14: HPCC-PFC variants vs BFC (FB + incast) — FCT slowdown";
      header = [ "scheme"; "bucket"; "n"; "avg"; "p50"; "p95"; "p99" ];
      rows = List.concat_map fst results;
    };
    {
      title = "Fig 14b: buffer occupancy";
      header = [ "scheme"; "p99 buffer(MB)"; "drops" ];
      rows = List.map snd results;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Fig. 29 (App. A.12): incast flow slowdowns, Fig. 9 setup.            *)

let fig29 profile =
  let schemes =
    match profile with
    | Smoke -> [ Scheme.bfc ]
    | _ -> [ Scheme.bfc; Scheme.hpcc; Scheme.hpcc_pfc; Scheme.dctcp; Scheme.Ideal_fq ]
  in
  let rows =
    sweep
      (List.map
         (fun scheme ->
           pt
             (Printf.sprintf "fig29:%s" (Scheme.name scheme))
             (fun () ->
               let s =
                 {
                   (std profile scheme) with
                   sp_dist = Dist.google;
                   sp_incast = Some default_incast;
                 }
               in
               let r = run_std s in
               let sample = Sample.create () in
               List.iter
                 (fun f ->
                   if Bfc_net.Flow.complete f && f.Bfc_net.Flow.is_incast then
                     Sample.add sample (Runner.slowdown r.env f))
                 r.flows;
               let v p = if Sample.is_empty sample then nan else Sample.percentile sample p in
               [
                 Scheme.name scheme;
                 string_of_int (Sample.count sample);
                 cell (Sample.mean sample);
                 cell (v 50.0);
                 cell (v 95.0);
                 cell (v 99.0);
               ]))
         schemes)
  in
  [
    {
      title = "Fig 29 (App A.12): incast flow FCT slowdown (Google + 5% 100:1 incast)";
      header = [ "scheme"; "n"; "avg"; "p50"; "p95"; "p99" ];
      rows;
    };
  ]
