(** Work-stealing domain pool for experiment sweeps.

    Each task is an independent thunk (one simulation per task, no shared
    mutable state); the pool runs them on OCaml 5 domains and merges
    results in task order, so output is deterministic at any job count. *)

(** [Domain.recommended_domain_count ()] — the default for [--jobs]. *)
val recommended_jobs : unit -> int

(** Set the ambient job count used when {!run} gets no [?jobs]. 1 (the
    initial value) means run inline on the calling domain. *)
val set_default_jobs : int -> unit

val default_jobs : unit -> int

(** A task raised: carries the task's index (in submission order), the
    original exception and its backtrace. When several tasks fail, the
    lowest-index failure is reported, independent of execution order. *)
exception Task_error of { index : int; exn : exn; backtrace : string }

(** [run ?jobs tasks] executes every thunk and returns their results in
    submission order. [jobs] defaults to the ambient count; it is clamped
    to the task count, and [jobs <= 1] runs inline (no domains spawned).
    Raises {!Task_error} if any task raised. *)
val run : ?jobs:int -> (unit -> 'a) list -> 'a list

val run_array : ?jobs:int -> (unit -> 'a) array -> 'a array
