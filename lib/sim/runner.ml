module Sim = Bfc_engine.Sim
module Time = Bfc_engine.Time
module Topology = Bfc_net.Topology
module Node = Bfc_net.Node
module Port = Bfc_net.Port
module Packet = Bfc_net.Packet
module Flow = Bfc_net.Flow
module Switch = Bfc_switch.Switch
module Sched = Bfc_switch.Sched
module Dataplane = Bfc_core.Dataplane
module Host = Bfc_transport.Host

type params = {
  mtu : int;
  buffer_bytes : int;
  ecn_kmin : int;
  ecn_kmax : int;
  pfc_frac : float;
  ideal_queues : int;
  track_active_flows : bool;
  deadlock_filter : bool;
  classes : int;
  pause_watchdog : Time.t option;
  seed : int;
  homa_dist : Bfc_workload.Dist.t;
  use_ir : bool;
  streaming : bool;
}

let default_params =
  {
    mtu = 1000;
    buffer_bytes = 12_000_000;
    ecn_kmin = 100_000;
    ecn_kmax = 400_000;
    pfc_frac = 0.11;
    ideal_queues = 256;
    track_active_flows = false;
    deadlock_filter = false;
    classes = 1;
    pause_watchdog = None;
    seed = 42;
    homa_dist = Bfc_workload.Dist.google;
    use_ir = false;
    streaming = false;
  }

type env = {
  sim : Sim.t;
  topo : Topology.t;
  scheme : Scheme.t;
  params : params;
  pool : Packet.Pool.t;
  hosts : Host.t option array;
  switches : Switch.t array;
  dataplanes : Dataplane.t array;
  ir_programs : Bfc_ir.Compile.t array;
  base_rtt : Time.t;
  bdp : int;
  extra_header : int;
  mutable injected : int;
  mutable completed : int;
}

let sim env = env.sim

let topo env = env.topo

let scheme env = env.scheme

let params env = env.params

let base_rtt env = env.base_rtt

let bdp env = env.bdp

let switches env = env.switches

let dataplanes env = env.dataplanes

let ir_programs env = env.ir_programs

let host env i =
  match env.hosts.(i) with
  | Some h -> h
  | None -> invalid_arg (Printf.sprintf "Runner.host: node %d is not a host" i)

let iter_hosts env f =
  Array.iter
    (function
      | Some h -> f h
      | None -> ())
    env.hosts

let injected env = env.injected

let completed env = env.completed

let pool env = env.pool

let events_executed env = Sim.executed_events env.sim

(* ------------------------------------------------------------------ *)

let compute_base_rtt topo =
  let hosts = Topology.hosts topo in
  let n = Array.length hosts in
  if n < 2 then 0
  else begin
    (* sample a handful of pairs and take the max *)
    let acc = ref 0 in
    let probe a b = if a <> b then acc := max !acc (Topology.base_rtt topo ~src:a ~dst:b) in
    probe hosts.(0) hosts.(n - 1);
    probe hosts.(0) hosts.(n / 2);
    probe hosts.(n / 4) hosts.(n - 1);
    !acc
  end

let ecmp_route topo sw ~in_port:_ pkt =
  let node = Switch.node_id sw in
  match pkt.Packet.flow with
  | Some f -> Topology.ecmp_port topo ~node ~flow:f ~dst:pkt.Packet.dst
  | None -> (Topology.candidates topo ~node ~dst:pkt.Packet.dst).(0)

let spray_route topo rngs sw ~in_port pkt =
  let node = Switch.node_id sw in
  match pkt.Packet.kind with
  | Packet.Data -> Topology.spray_port topo ~node ~rng:rngs.(node) ~dst:pkt.Packet.dst
  | _ -> ecmp_route topo sw ~in_port pkt

(* Switch + dataplane + host configuration per scheme. *)

let hpcc_int_header = 80

let extra_header_of = function
  | Scheme.Hpcc _ | Scheme.Hpcc_pfc _ -> hpcc_int_header
  | _ -> 0

let switch_config (s : Scheme.t) (p : params) : Switch.config =
  let base =
    {
      Switch.default_config with
      mtu = p.mtu;
      buffer_bytes = p.buffer_bytes;
      pause_watchdog = p.pause_watchdog;
    }
  in
  let ecn = Some { Switch.kmin = p.ecn_kmin; kmax = p.ecn_kmax; pmax = 1.0 } in
  let pfc = Some { Switch.threshold_frac = p.pfc_frac; resume_frac = 0.8 } in
  match s with
  | Scheme.Bfc o ->
    {
      base with
      queues_per_port = o.Scheme.queues;
      classes = o.Scheme.classes;
      policy = (if o.Scheme.srf then Sched.Srf else Sched.Drr);
      track_active_flows = p.track_active_flows;
    }
  | Scheme.Bfc_credit { queues; _ } ->
    (* lossless by construction: the buffer must cover all granted credit;
       we run unbounded and report the (bounded) peak occupancy instead *)
    {
      base with
      queues_per_port = queues;
      buffer_bytes = max_int;
      track_active_flows = p.track_active_flows;
    }
  | Scheme.Ideal_fq ->
    {
      base with
      queues_per_port = p.ideal_queues;
      policy = Sched.Drr;
      buffer_bytes = max_int;
      track_active_flows = p.track_active_flows;
    }
  | Scheme.Ideal_srf ->
    {
      base with
      queues_per_port = p.ideal_queues;
      policy = Sched.Srf;
      buffer_bytes = max_int;
      track_active_flows = p.track_active_flows;
    }
  | Scheme.Dctcp _ | Scheme.Dcqcn ->
    {
      base with
      queues_per_port = max 1 p.classes;
      classes = max 1 p.classes;
      ecn;
      pfc;
      track_active_flows = p.track_active_flows;
    }
  | Scheme.Hpcc _ ->
    {
      base with
      queues_per_port = max 1 p.classes;
      classes = max 1 p.classes;
      pfc;
      int_stamping = true;
    }
  | Scheme.Hpcc_pfc { sfq; dqa } ->
    let queues = if sfq || dqa then 32 else 1 in
    { base with queues_per_port = queues; int_stamping = true }
  | Scheme.Swift _ | Scheme.Timely ->
    { base with queues_per_port = max 1 p.classes; classes = max 1 p.classes; pfc }
  | Scheme.Pfc_only -> { base with queues_per_port = 1; pfc }
  | Scheme.Expresspass _ ->
    { base with queues_per_port = 4; buffer_bytes = max_int }
  | Scheme.Homa _ ->
    { base with queues_per_port = 32; policy = Sched.Prio_strict; buffer_bytes = max_int }

let dataplane_config (s : Scheme.t) (p : params) ~nic_queues : Dataplane.config option =
  let max_upstream_q = max (p.ideal_queues + 1) (nic_queues + 1) in
  match s with
  | Scheme.Bfc o ->
    Some
      {
        Dataplane.assignment = o.Scheme.assignment;
        table_mult = o.Scheme.table_mult;
        sticky_hrtt_mult = o.Scheme.sticky_hrtt_mult;
        th_factor = o.Scheme.th_factor;
        fixed_th = o.Scheme.fixed_th;
        sampling = o.Scheme.sampling;
        incast_label = o.Scheme.incast_label;
        bitmap_period = o.Scheme.bitmap_period;
        max_upstream_q;
        seed = p.seed;
      }
  | Scheme.Ideal_fq | Scheme.Ideal_srf ->
    Some
      {
        Dataplane.default_config with
        table_mult = 8;
        fixed_th = Some max_int;
        max_upstream_q;
        seed = p.seed;
      }
  | Scheme.Hpcc_pfc { sfq; dqa } when sfq || dqa ->
    Some
      {
        Dataplane.default_config with
        assignment = (if dqa then Bfc_core.Dqa.Dynamic else Bfc_core.Dqa.Stochastic);
        table_mult = 100;
        fixed_th = Some max_int;
        max_upstream_q;
        seed = p.seed;
      }
  | _ -> None

let nic_queues_of = function
  | Scheme.Bfc _ | Scheme.Bfc_credit _ -> 129
  | Scheme.Ideal_fq | Scheme.Ideal_srf -> 257
  | Scheme.Homa _ -> 33
  | _ -> 65

let host_config (s : Scheme.t) (p : params) ~base_rtt ~bdp ~line_gbps : Host.config =
  let base =
    {
      Host.default_config with
      mtu = p.mtu;
      extra_header = extra_header_of s;
      base_rtt;
      bdp;
      line_gbps;
      nic_queues = nic_queues_of s;
      pause_watchdog = p.pause_watchdog;
      seed = p.seed;
      rto = max (Time.us 200.0) (10 * base_rtt);
    }
  in
  match s with
  | Scheme.Bfc o ->
    {
      base with
      scheme =
        Host.Bfc
          {
            window_cap =
              Option.map (fun x -> int_of_float (x *. float_of_int bdp)) o.Scheme.window_cap;
            delay_cc = o.Scheme.delay_cc;
          };
      nic_policy = (if o.Scheme.srf then Sched.Srf else Sched.Drr);
      respect_pause = o.Scheme.nic_respect_pause;
      srf = o.Scheme.srf;
    }
  | Scheme.Bfc_credit { credit_bytes; _ } ->
    {
      base with
      scheme = Host.Bfc { window_cap = None; delay_cc = false };
      nic_credit = Some credit_bytes;
    }
  | Scheme.Ideal_fq ->
    { base with scheme = Host.Bfc { window_cap = Some bdp; delay_cc = false } }
  | Scheme.Ideal_srf ->
    {
      base with
      scheme = Host.Bfc { window_cap = Some bdp; delay_cc = false };
      nic_policy = Sched.Srf;
      srf = true;
    }
  | Scheme.Dctcp { slow_start } -> { base with scheme = Host.Dctcp { slow_start } }
  | Scheme.Dcqcn -> { base with scheme = Host.Dcqcn Bfc_transport.Dcqcn.default_params }
  | Scheme.Hpcc { eta; max_stage } ->
    { base with scheme = Host.Hpcc { eta; max_stage; perfect_rtx = false } }
  | Scheme.Hpcc_pfc _ ->
    { base with scheme = Host.Hpcc { eta = 0.95; max_stage = 5; perfect_rtx = true } }
  | Scheme.Swift { target_mult; beta } ->
    { base with scheme = Host.Swift { target_mult; beta } }
  | Scheme.Timely -> { base with scheme = Host.Timely }
  | Scheme.Pfc_only ->
    { base with scheme = Host.Bfc { window_cap = Some bdp; delay_cc = false } }
  | Scheme.Expresspass { target_loss; w_init; w_max } ->
    { base with scheme = Host.Xpass { target_loss; w_init; w_max } }
  | Scheme.Homa { spray } ->
    let prms =
      Bfc_transport.Homa.params_for ~dist:Bfc_workload.Dist.google ~total_prios:32
        ~rtt_bytes:bdp ~spray
    in
    { base with scheme = Host.Homa prms; nic_policy = Sched.Prio_strict }

let setup_gen ~owned ~topo ~scheme ~params:p =
  (* Hpcc_pfc's perfect-retransmission notice reaches across devices
     (switch drop -> source host), which in a sharded run would mean a
     cross-domain call outside the channel protocol. Reject it early
     rather than silently losing notices at shard boundaries. *)
  (match (owned, scheme) with
  | Some _, Scheme.Hpcc_pfc _ ->
    invalid_arg "Runner.setup: Hpcc_pfc's cross-device drop notice cannot span shards"
  | _ -> ());
  let own = match owned with None -> fun _ -> true | Some f -> f in
  let sim = Topology.sim topo in
  (* One free-list pool per environment: every switch and host draws from
     (and recycles into) it, so the steady-state hot path allocates no
     packets. Pools never cross environments, hence never cross domains. *)
  let pool = Packet.Pool.create ~sim in
  let nodes = Topology.nodes topo in
  let base_rtt = compute_base_rtt topo in
  (* line rate of host uplinks *)
  let line_gbps =
    let h = (Topology.hosts topo).(0) in
    Port.gbps (Topology.ports topo h).(0)
  in
  let bdp = int_of_float (float_of_int base_rtt *. line_gbps /. 8.0) in
  let swcfg = switch_config scheme p in
  let spray_rngs =
    Array.init (Array.length nodes) (fun i -> Bfc_util.Rng.create (p.seed + 31 + i))
  in
  let route =
    match scheme with
    | Scheme.Homa { spray = true } -> spray_route topo spray_rngs
    | _ -> ecmp_route topo
  in
  let hosts = Array.make (Array.length nodes) None in
  let switches = ref [] in
  let dataplanes = ref [] in
  let ir_programs = ref [] in
  let nic_queues = nic_queues_of scheme in
  let dpcfg = dataplane_config scheme p ~nic_queues in
  (* Homa parameters depend on the workload distribution *)
  let pair_bdp_cache : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  let flow_bdp f =
    let key = (f.Flow.src, f.Flow.dst) in
    match Hashtbl.find_opt pair_bdp_cache key with
    | Some b -> b
    | None ->
      let rtt = Topology.base_rtt topo ~src:f.Flow.src ~dst:f.Flow.dst in
      let b = max 1 (int_of_float (float_of_int rtt *. line_gbps /. 8.0)) in
      Hashtbl.add pair_bdp_cache key b;
      b
  in
  let hostcfg =
    let c = { (host_config scheme p ~base_rtt ~bdp ~line_gbps) with Host.flow_bdp = Some flow_bdp } in
    match (scheme, c.Host.scheme) with
    | Scheme.Homa { spray }, Host.Homa _ ->
      let prms =
        Bfc_transport.Homa.params_for ~dist:p.homa_dist ~total_prios:32 ~rtt_bytes:bdp ~spray
      in
      { c with Host.scheme = Host.Homa prms }
    | _ -> c
  in
  let env_ref = ref None in
  Array.iter
    (fun nd ->
      if not (own nd.Node.id) then ()
      else
      match nd.Node.kind with
      | Node.Switch ->
        let sw =
          Switch.create ~sim ~node:nd ~ports:(Topology.ports topo nd.Node.id) ~config:swcfg
            ~pool
            ~route:(fun sw ~in_port pkt -> route sw ~in_port pkt)
            ()
        in
        (match dpcfg with
        | Some c ->
          if p.use_ir then
            (* same config, but routed through the IR: build the pipeline
               for this switch's dimensions, validate, compile *)
            ir_programs := Bfc_ir.Compile.attach_bfc sw c :: !ir_programs
          else begin
            let dp = Dataplane.attach sw c in
            dataplanes := dp :: !dataplanes
          end
        | None -> ());
        (match scheme with
        | Scheme.Bfc_credit { credit_bytes; _ } ->
          let ccfg =
            {
              Bfc_core.Credit_dataplane.default_config with
              Bfc_core.Credit_dataplane.credit_bytes;
              max_upstream_q = max (nic_queues + 1) 130;
            }
          in
          if p.use_ir then
            ir_programs := Bfc_ir.Compile.attach_credit sw ccfg :: !ir_programs
          else ignore (Bfc_core.Credit_dataplane.attach sw ccfg)
        | _ -> ());
        (match scheme with
        | Scheme.Expresspass _ ->
          Bfc_transport.Xpass_switch.attach sw ~mtu_wire:(p.mtu + Packet.header_bytes)
        | _ -> ());
        (* perfect retransmission notice (HPCC-PFC) *)
        (match scheme with
        | Scheme.Hpcc_pfc _ ->
          let hk = Switch.hooks sw in
          let prev = hk.Switch.on_drop in
          hk.Switch.on_drop <-
            (fun sw ~in_port ~egress ~queue pkt ->
              prev sw ~in_port ~egress ~queue pkt;
              match (pkt.Packet.kind, pkt.Packet.flow) with
              | Packet.Data, Some f ->
                let fid = f.Flow.id and seq = pkt.Packet.seq and len = pkt.Packet.payload in
                ignore
                  (Sim.after sim (Time.us 1.0) (fun () ->
                       match !env_ref with
                       | Some env -> (
                         match env.hosts.(f.Flow.src) with
                         | Some h -> Host.on_drop_notice h ~flow_id:fid ~seq ~len
                         | None -> ())
                       | None -> ()))
              | _ -> ())
        | _ -> ());
        switches := sw :: !switches
      | Node.Host ->
        let port = (Topology.ports topo nd.Node.id).(0) in
        let h = Host.create ~sim ~node:nd ~port ~config:hostcfg ~pool () in
        hosts.(nd.Node.id) <- Some h)
    nodes;
  let env =
    {
      sim;
      topo;
      scheme;
      params = p;
      pool;
      hosts;
      switches = Array.of_list (List.rev !switches);
      dataplanes = Array.of_list (List.rev !dataplanes);
      ir_programs = Array.of_list (List.rev !ir_programs);
      base_rtt;
      bdp;
      extra_header = extra_header_of scheme;
      injected = 0;
      completed = 0;
    }
  in
  env_ref := Some env;
  (* deadlock-prevention filter (App. B) *)
  if p.deadlock_filter then begin
    let g = Bfc_core.Deadlock.build topo in
    Array.iter
      (fun dp ->
        let sw = Dataplane.switch dp in
        let f = Bfc_core.Deadlock.make_filter topo g ~sw:(Switch.node_id sw) in
        Dataplane.allow_backpressure dp f)
      env.dataplanes;
    Array.iter
      (fun prog ->
        let sw = Bfc_ir.Compile.switch prog in
        let f = Bfc_core.Deadlock.make_filter topo g ~sw:(Switch.node_id sw) in
        Bfc_ir.Compile.allow_backpressure prog f)
      env.ir_programs
  end;
  (* completion counting *)
  Array.iter
    (fun h ->
      match h with
      | Some h -> Host.on_complete h (fun _ -> env.completed <- env.completed + 1)
      | None -> ())
    hosts;
  env

let setup ~topo ~scheme ~params = setup_gen ~owned:None ~topo ~scheme ~params

let setup_shard ~owned ~topo ~scheme ~params = setup_gen ~owned:(Some owned) ~topo ~scheme ~params

let inject env flows =
  List.iter
    (fun f ->
      env.injected <- env.injected + 1;
      ignore
        (Sim.at env.sim f.Flow.arrival (fun () ->
             match env.hosts.(f.Flow.src) with
             | Some h -> Host.start_flow h f
             | None -> invalid_arg "Runner.inject: src is not a host")))
    flows

let run env ~until = ignore (Sim.run env.sim ~until)

let drain ?(step = Time.us 100.0) env ~budget =
  let deadline = Sim.now env.sim + budget in
  let rec loop () =
    if env.completed < env.injected && Sim.now env.sim < deadline then begin
      ignore (Sim.run env.sim ~until:(min deadline (Sim.now env.sim + step)));
      loop ()
    end
  in
  loop ()

let total_drops env =
  Array.fold_left (fun acc sw -> acc + Switch.data_drops sw) 0 env.switches

let pfc_pause_fraction env =
  let now = Sim.now env.sim in
  if now = 0 then 0.0
  else begin
    let total = ref 0 and ports = ref 0 in
    Array.iter
      (fun sw ->
        for e = 0 to Switch.n_ports sw - 1 do
          incr ports;
          total := !total + Switch.pfc_paused_ns sw ~egress:e
        done)
      env.switches;
    float_of_int !total /. (float_of_int !ports *. float_of_int now)
  end

let ideal_fct env f =
  Topology.ideal_fct env.topo ~src:f.Flow.src ~dst:f.Flow.dst ~size:f.Flow.size
    ~mtu:env.params.mtu ~extra_header:env.extra_header ()

let slowdown env f =
  if not (Flow.complete f) then invalid_arg "Runner.slowdown: incomplete flow";
  float_of_int (Flow.fct f) /. float_of_int (ideal_fct env f)

(* Read-only union of per-shard environments, for running the unchanged
   metrics pipeline over a sharded run once all domains have quiesced:
   devices are collected in node-id order (the same order a sequential
   setup produces), injected/completed are summed, and identity fields
   come from shard 0 (every shard shares topology structure, scheme and
   params by construction). Counters are copied, not aliased — merge
   after the run, not during. *)
let merged envs =
  if Array.length envs = 0 then invalid_arg "Runner.merged: no shards";
  let e0 = envs.(0) in
  let n = Array.length (Topology.nodes e0.topo) in
  let hosts = Array.make n None in
  Array.iter
    (fun e ->
      Array.iteri
        (fun i h ->
          match h with
          | None -> ()
          | Some _ -> (
            match hosts.(i) with
            | Some _ -> invalid_arg "Runner.merged: host instantiated by two shards"
            | None -> hosts.(i) <- h))
        e.hosts)
    envs;
  let switches = Array.concat (Array.to_list (Array.map (fun e -> e.switches) envs)) in
  Array.sort (fun a b -> Int.compare (Switch.node_id a) (Switch.node_id b)) switches;
  let dataplanes = Array.concat (Array.to_list (Array.map (fun e -> e.dataplanes) envs)) in
  Array.sort
    (fun a b -> Int.compare (Switch.node_id (Dataplane.switch a)) (Switch.node_id (Dataplane.switch b)))
    dataplanes;
  let ir_programs = Array.concat (Array.to_list (Array.map (fun e -> e.ir_programs) envs)) in
  Array.sort
    (fun a b ->
      Int.compare
        (Switch.node_id (Bfc_ir.Compile.switch a))
        (Switch.node_id (Bfc_ir.Compile.switch b)))
    ir_programs;
  {
    sim = e0.sim;
    topo = e0.topo;
    scheme = e0.scheme;
    params = e0.params;
    pool = e0.pool;
    hosts;
    switches;
    dataplanes;
    ir_programs;
    base_rtt = e0.base_rtt;
    bdp = e0.bdp;
    extra_header = e0.extra_header;
    injected = Array.fold_left (fun a e -> a + e.injected) 0 envs;
    completed = Array.fold_left (fun a e -> a + e.completed) 0 envs;
  }
