(* Homa comparison (App. A.2): Fig. 17-19 and Table 2. *)

module Time = Bfc_engine.Time
module Sim = Bfc_engine.Sim
module Topology = Bfc_net.Topology
module Switch = Bfc_switch.Switch
module Packet = Bfc_net.Packet
module Dist = Bfc_workload.Dist
module Traffic = Bfc_workload.Traffic
module Arrivals = Bfc_workload.Arrivals
module Sample = Bfc_util.Stats.Sample
open Exp_common

let srf_schemes profile =
  match profile with
  | Smoke -> [ Scheme.homa; Scheme.bfc_srf ]
  | _ -> [ Scheme.homa; Scheme.homa_ecmp; Scheme.bfc_srf; Scheme.Ideal_srf ]

let dists = [ Dist.google; Dist.fb_hadoop ]

(* dist x scheme sweeps regroup their flat result list back into one table
   per dist; comparing by name keeps the grouping independent of physical
   identity. *)
let group_by_dist combos results =
  List.map
    (fun dist ->
      ( dist,
        List.concat_map
          (fun ((d, _), rows) -> if Dist.name d = Dist.name dist then rows else [])
          (List.combine combos results) ))
    dists

let fig17 profile =
  let combos =
    List.concat_map (fun d -> List.map (fun s -> (d, s)) (srf_schemes profile)) dists
  in
  let results =
    sweep
      (List.map
         (fun (dist, scheme) ->
           pt
             (Printf.sprintf "fig17:%s:%s" (Dist.name dist) (Scheme.name scheme))
             (fun () ->
               let r = run_std { (std profile scheme) with sp_dist = dist } in
               List.map (fun row -> Scheme.name scheme :: row) (fct_rows r)))
         combos)
  in
  List.map
    (fun (dist, rows) ->
      {
        title =
          Printf.sprintf "Fig 17: %s, 60%% load, SRF schemes — FCT slowdown" (Dist.name dist);
        header = [ "scheme"; "bucket"; "n"; "avg"; "p50"; "p95"; "p99" ];
        rows;
      })
    (group_by_dist combos results)

(* ------------------------------------------------------------------ *)
(* Table 2: scheduled-traffic queuing delay in the core.                *)

let table2_point profile scheme () =
  let sim = Sim.create () in
  let spines, tors, hosts_per_tor = clos_scale profile in
  let cl = Topology.clos sim ~spines ~tors ~hosts_per_tor ~gbps:100.0 ~prop:(Time.us 1.0) in
  let env =
    Runner.setup ~topo:cl.Topology.t ~scheme
      ~params:{ Runner.default_params with homa_dist = Dist.fb_hadoop }
  in
  let bdp = Runner.bdp env in
  let prms =
    Bfc_transport.Homa.params_for ~dist:Dist.fb_hadoop ~total_prios:32 ~rtt_bytes:bdp
      ~spray:true
  in
  let unsched = prms.Bfc_transport.Homa.unsched_prios in
  let spine_set = Array.to_list cl.Topology.spines in
  let tor_set = Array.to_list cl.Topology.tors in
  let is_spine n = List.mem n spine_set and is_tor n = List.mem n tor_set in
  (* taps for the two directions, scheduled packets only *)
  let agg_tor = Sample.create () and tor_agg = Sample.create () in
  Array.iter
    (fun sw ->
      let hk = Switch.hooks sw in
      let prev = hk.Switch.on_pkt_departed in
      hk.Switch.on_pkt_departed <-
        (fun sw ~egress pkt ~delay ->
          prev sw ~egress pkt ~delay;
          if pkt.Packet.kind = Packet.Data && pkt.Packet.prio >= unsched then begin
            let me = Switch.node_id sw in
            let peer = (Bfc_net.Port.peer (Switch.port sw egress)).Bfc_net.Node.id in
            if is_spine me && is_tor peer then
              Sample.add agg_tor (float_of_int delay /. 1000.0)
            else if is_tor me && is_spine peer then
              Sample.add tor_agg (float_of_int delay /. 1000.0)
          end))
    (Runner.switches env);
  let dur = duration profile ~dist:Dist.fb_hadoop in
  let spec =
    {
      Traffic.hosts = cl.Topology.cl_hosts;
      dist = Dist.fb_hadoop;
      arrivals = Arrivals.lognormal_default;
      load = 0.6;
      ref_capacity_gbps = float_of_int (spines * tors) *. 100.0;
      core_fraction =
        1.0
        -. float_of_int (hosts_per_tor - 1)
           /. float_of_int ((tors * hosts_per_tor) - 1);
      matrix = Traffic.Uniform;
      duration = dur;
      seed = 2;
      prio_classes = 1;
    }
  in
  let ids = ref 0 in
  Runner.inject env (Traffic.generate spec ~ids);
  Runner.run env ~until:dur;
  Runner.drain env ~budget:(4 * dur);
  let v s p = if Sample.is_empty s then nan else Sample.percentile s p in
  [
    [ Scheme.name scheme; "Agg-ToR"; cell (v agg_tor 95.0); cell (v agg_tor 99.0) ];
    [ Scheme.name scheme; "ToR-Agg"; cell (v tor_agg 95.0); cell (v tor_agg 99.0) ];
  ]

let table2 profile =
  let rows =
    List.concat
      (sweep
         (List.map
            (fun scheme ->
              pt
                (Printf.sprintf "table2:%s" (Scheme.name scheme))
                (table2_point profile scheme))
            [ Scheme.homa; Scheme.homa_ecmp ]))
  in
  [
    {
      title = "Table 2: per-packet queuing delay of scheduled traffic in the core (us)";
      header = [ "scheme"; "link"; "p95(us)"; "p99(us)" ];
      rows;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Fig. 18: single receiver, senders in the same rack (SRF accuracy).   *)

let fig18_point profile dist scheme () =
  let sim = Sim.create () in
  let spines, tors, hosts_per_tor = clos_scale profile in
  let cl = Topology.clos sim ~spines ~tors ~hosts_per_tor ~gbps:100.0 ~prop:(Time.us 1.0) in
  let env =
    Runner.setup ~topo:cl.Topology.t ~scheme
      ~params:{ Runner.default_params with homa_dist = dist }
  in
  (* receiver = host 0; senders = rest of its rack *)
  let recv = cl.Topology.cl_hosts.(0) in
  let rack = Array.sub cl.Topology.cl_hosts 1 (hosts_per_tor - 1) in
  let dur = 2 * duration profile ~dist in
  let spec =
    {
      Traffic.hosts = rack;
      dist;
      arrivals = Arrivals.lognormal_default;
      load = 0.6;
      ref_capacity_gbps = 100.0;
      core_fraction = 1.0;
      matrix = Traffic.To_one recv;
      duration = dur;
      seed = 3;
      prio_classes = 1;
    }
  in
  let ids = ref 0 in
  let flows = Traffic.generate spec ~ids in
  Runner.inject env flows;
  Runner.run env ~until:dur;
  Runner.drain env ~budget:(4 * dur);
  let stats = Metrics.fct_table env ~since:(dur / 10) flows in
  List.filter_map
    (fun (st : Metrics.fct_stats) ->
      if st.Metrics.count = 0 then None
      else
        Some
          [
            Scheme.name scheme;
            st.Metrics.bucket;
            string_of_int st.Metrics.count;
            cell st.Metrics.avg;
            cell st.Metrics.p99;
          ])
    stats

let fig18 profile =
  let schemes =
    match profile with
    | Smoke -> [ Scheme.homa; Scheme.bfc_srf ]
    | _ -> [ Scheme.homa; Scheme.bfc_srf; Scheme.Ideal_srf ]
  in
  let combos = List.concat_map (fun d -> List.map (fun s -> (d, s)) schemes) dists in
  let results =
    sweep
      (List.map
         (fun (dist, scheme) ->
           pt
             (Printf.sprintf "fig18:%s:%s" (Dist.name dist) (Scheme.name scheme))
             (fig18_point profile dist scheme))
         combos)
  in
  List.map
    (fun (dist, rows) ->
      {
        title =
          Printf.sprintf "Fig 18: %s, single in-rack receiver — SRF accuracy" (Dist.name dist);
        header = [ "scheme"; "bucket"; "n"; "avg"; "p99" ];
        rows;
      })
    (group_by_dist combos results)

(* ------------------------------------------------------------------ *)
(* Fig. 19: priority inversions under incast.                           *)

let fig19 profile =
  let schemes =
    match profile with
    | Smoke -> [ Scheme.bfc_srf ]
    | _ -> [ Scheme.homa; Scheme.bfc_srf; Scheme.bfc ]
  in
  let combos = List.concat_map (fun d -> List.map (fun s -> (d, s)) schemes) dists in
  let results =
    sweep
      (List.map
         (fun (dist, scheme) ->
           pt
             (Printf.sprintf "fig19:%s:%s" (Dist.name dist) (Scheme.name scheme))
             (fun () ->
               let r =
                 run_std
                   { (std profile scheme) with sp_dist = dist; sp_incast = Some default_incast }
               in
               List.map (fun row -> Scheme.name scheme :: row) (fct_rows r)))
         combos)
  in
  List.map
    (fun (dist, rows) ->
      {
        title =
          Printf.sprintf "Fig 19: %s, 55%% + 5%% 100:1 incast — SRF under collisions"
            (Dist.name dist);
        header = [ "scheme"; "bucket"; "n"; "avg"; "p50"; "p95"; "p99" ];
        rows;
      })
    (group_by_dist combos results)
