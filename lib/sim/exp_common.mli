(** Shared scaffolding for the paper-reproduction experiments.

    Profiles pick the scale: [Smoke] for tests (seconds), [Quick] for the
    default bench run (a half-scale Clos, short traces — the shape of every
    result is preserved), [Paper] for the full §6.2.1 configuration. *)

type profile = Smoke | Quick | Paper

val profile_of_string : string -> profile

type table = { title : string; header : string list; rows : string list list }

val print_table : table -> unit

(** Write a table as CSV (header row first, title as a # comment). *)
val write_csv : table -> path:string -> unit

val cell : float -> string

(** Clos scale for a profile: (spines, tors, hosts_per_tor). *)
val clos_scale : profile -> int * int * int

(** Trace duration for a profile, scaled by the workload's mean flow size
    so every run completes a comparable flow count. *)
val duration : profile -> dist:Bfc_workload.Dist.t -> Bfc_engine.Time.t

type incast_mix = {
  degree : int;
  agg_frac_of_paper : float; (** aggregate size relative to 20 MB at paper scale *)
}

val default_incast : incast_mix

(** {2 Ambient streaming-observability settings}

    Set once by the CLI before experiments run (same ambient-default
    pattern as {!Pdes.set_default_shards}). When enabled, standard runs
    build their params with [Runner.streaming = true]: FCT stats flow
    through mergeable quantile sketches ([alpha] relative error), the run
    optionally dumps a binary {!Bfc_obs.Flowlog} of completed flows to
    [flowlog], and [progress] prints a live one-line report per sim-ms to
    stderr. *)

val set_streaming : ?alpha:float -> ?flowlog:string -> ?progress:bool -> bool -> unit

val streaming_on : unit -> bool

(** One standard Clos experiment (the Fig. 9/10/11 machinery). *)
type std_setup = {
  sp_profile : profile;
  sp_scheme : Scheme.t;
  sp_dist : Bfc_workload.Dist.t;
  sp_load : float;
  sp_incast : incast_mix option;
  sp_classes : int;
  sp_locality : float option; (** rack-local probability (Fig. 22) *)
  sp_track_active : bool;
  sp_seed : int;
  sp_dur_mult : float;
      (** scales the trace duration (high-load sweeps need longer traces to
          reach steady state) *)
  sp_params : Runner.params -> Runner.params; (** final tweak *)
  sp_obs : Runner.env -> unit;
      (** observability wiring, run after setup and metric watchers but
          before flows are injected (attach {!Telemetry}/{!Tracer} here) *)
}

val std : profile -> Scheme.t -> std_setup

type std_result = {
  env : Runner.env;
  flows : Bfc_net.Flow.t list;
  buffers : Bfc_util.Stats.Sample.t;
  active : Bfc_util.Stats.Sample.t option;
  measure_from : Bfc_engine.Time.t; (** warmup cutoff for FCT stats *)
  sketches : Metrics.fct_sketches option;
      (** present iff the run streamed; {!fct_rows} then reports from the
          sketches. Sharded runs hold the exact merge of the per-shard
          sketches, identical to a sequential streaming run's. *)
}

(** Execute the standard run. With {!Pdes.default_shards}[ () > 1] the
    simulation is partitioned pod-wise across that many domains
    ({!Bfc_net.Partition.clos_pods} + {!Pdes}); results — FCT rows,
    injected/completed counters, buffer samples — are byte-identical to
    the sequential path on the same setup (held by the differential
    test). [sp_obs] is then invoked once per shard environment, so
    observers must only touch the environment they are handed. *)
val run_std : std_setup -> std_result

(** The always-sequential path (what [run_std] does at one shard). *)
val run_std_seq : std_setup -> std_result

(** The sharded path, explicit shard count ([shards >= 2]). *)
val run_std_sharded : std_setup -> shards:int -> std_result

(** Synchronization diagnostics of the most recent {!run_std_sharded}:
    cross-shard messages, the SPSC ring slots (bursts) they crossed in,
    barrier windows, and full-channel stalls. [None] until a sharded run
    completes. *)
type pdes_stats = { ps_messages : int; ps_bursts : int; ps_windows : int; ps_stalls : int }

val last_pdes_stats : pdes_stats option ref

(** One independent unit of an experiment sweep: a label and a thunk that
    builds its own [Sim.t]/[Runner.env] from scratch (no state shared with
    any other point, so points can run on separate domains). *)
type 'a sweep_point = { pt_key : string; pt_run : unit -> 'a }

val pt : string -> (unit -> 'a) -> 'a sweep_point

(** Run the points on the domain pool ({!Pool.run}; sequential at
    [jobs = 1]). Results are returned in point order regardless of the job
    count, so downstream tables are byte-identical. *)
val sweep : 'a sweep_point list -> 'a list

(** Like {!sweep}, pairing each result with its point's key. *)
val sweep_tagged : 'a sweep_point list -> (string * 'a) list

(** Rows of per-bucket slowdown stats for one run, prefixed by the scheme
    name: bucket, n, avg, p50, p95, p99. *)
val fct_rows : std_result -> string list list

(** p99 (bytes) of the buffer occupancy samples. *)
val buffer_p99 : std_result -> float

(** {2 Memory-scale streaming driver}

    Pushes [flows] single-MTU flows (millions) through a Quick-scale Clos,
    generating arrivals in sliding windows so the full flow list is never
    materialised. With [streaming:true], completions feed quantile sketches
    (and optionally a binary flowlog), and per-flow transport state is
    reclaimed a few RTTs after completion — resident memory tracks flows in
    flight, not flows ever run. With [streaming:false], every flow record
    and exact slowdown sample is retained, as the standard path would:
    the memory baseline for the BENCH block and CI gate. *)

type stream_report = {
  sr_streaming : bool;
  sr_injected : int;
  sr_completed : int;
  sr_events : int;
  sr_elapsed_s : float; (** wall-clock seconds for the whole run *)
  sr_peak_heap_words : int;
      (** running max of [Gc.heap_words], sampled every 20 sim-us *)
  sr_overall : Metrics.fct_stats;
  sr_table : Metrics.fct_stats list;
  sr_sketches : Metrics.fct_sketches option;
}

val run_stream :
  ?scheme:Scheme.t ->
  ?seed:int ->
  ?alpha:float ->
  ?flowlog:string ->
  ?progress:bool ->
  streaming:bool ->
  flows:int ->
  unit ->
  stream_report
