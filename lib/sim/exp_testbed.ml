(* Tofino2 testbed experiments (§6.1), reproduced on the simulated
   equivalent of the loopback topology: Fig. 7 (queue length and
   under-utilization vs pause threshold) and Fig. 8 (congestion spreading
   under the three queue-assignment strategies). *)

module Time = Bfc_engine.Time
module Sim = Bfc_engine.Sim
module Topology = Bfc_net.Topology
module Flow = Bfc_net.Flow
module Switch = Bfc_switch.Switch
module Traffic = Bfc_workload.Traffic
module Sample = Bfc_util.Stats.Sample
open Exp_common

let egress_towards topo ~switch ~peer =
  let found = ref (-1) in
  Array.iteri
    (fun i p -> if (Bfc_net.Port.peer p).Bfc_net.Node.id = peer then found := i)
    (Topology.ports topo switch);
  !found

(* ------------------------------------------------------------------ *)
(* Fig. 7: two flows at a 100G link; sweep the pause threshold.         *)

let fig7 profile =
  let duration =
    match profile with Smoke -> Time.us 300.0 | Quick -> Time.ms 2.0 | Paper -> Time.ms 10.0
  in
  (* thresholds in us of drain time at 100G (12.5 KB/us) *)
  let ths_us = [ 0.25; 0.5; 1.0; 2.0; 4.0 ] in
  let rows =
    sweep
      (List.map
         (fun th_us ->
           pt (Printf.sprintf "fig7:%g" th_us) (fun () ->
        let sim = Sim.create () in
        let tb = Topology.testbed sim ~g1:1 ~g2:1 ~g3:1 ~gbps:100.0 ~prop:(Time.us 1.0) in
        let fixed_th = int_of_float (th_us *. 12_500.0) in
        let scheme =
          Scheme.Bfc { Scheme.bfc_default with Scheme.queues = 16; fixed_th = Some fixed_th }
        in
        let env = Runner.setup ~topo:tb.Topology.tb ~scheme ~params:Runner.default_params in
        let ids = ref 0 in
        let flows =
          Traffic.long_lived
            ~pairs:
              [|
                (tb.Topology.group2.(0), tb.Topology.recv2);
                (tb.Topology.group3.(0), tb.Topology.recv2);
              |]
            ~ids ()
        in
        let egress = egress_towards tb.Topology.tb ~switch:tb.Topology.sw2 ~peer:tb.Topology.recv2 in
        let sw2 =
          Array.to_list (Runner.switches env)
          |> List.find (fun s -> Switch.node_id s = tb.Topology.sw2)
        in
        let qlen = Sample.create () in
        ignore
          (Sim.every sim ~period:(Time.ns 500) (fun () ->
               Sample.add qlen (float_of_int (Switch.egress_bytes sw2 ~egress))));
        let probe =
          Metrics.utilization_probe env
            ~gid:(Bfc_net.Port.gid (Topology.port tb.Topology.tb tb.Topology.sw2 egress))
        in
        Runner.inject env flows;
        Runner.run env ~until:duration;
        let util = Metrics.utilization probe in
        [
          cell th_us;
          string_of_int fixed_th;
          cell (Sample.mean qlen /. 1000.0);
          cell (Sample.percentile qlen 99.0 /. 1000.0);
          cell ((1.0 -. util) *. 100.0);
        ]))
         ths_us)
  in
  [
    {
      title = "Fig 7: queue length & under-utilization vs pause threshold (2 flows, 100G)";
      header = [ "Th(us)"; "Th(B)"; "avg qlen(KB)"; "p99 qlen(KB)"; "under-util(%)" ];
      rows;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Fig. 8: congestion spreading vs queue-assignment strategy.           *)

let fig8 profile =
  let n_runs = match profile with Smoke -> 2 | Quick -> 4 | Paper -> 8 in
  let g2_counts = match profile with Smoke -> [ 8 ] | _ -> [ 4; 8; 12; 16; 20 ] in
  let strategies =
    [
      ("single", Bfc_core.Dqa.Single);
      ("stochastic", Bfc_core.Dqa.Stochastic);
      ("dynamic", Bfc_core.Dqa.Dynamic);
    ]
  in
  (* every (strategy, g2, run) triple is one independent sweep point
     returning its group-1 FCTs; runs merge back per (strategy, g2) *)
  let one_run assignment g2 run () =
    let sim = Sim.create () in
    let tb = Topology.testbed sim ~g1:2 ~g2 ~g3:8 ~gbps:100.0 ~prop:(Time.us 1.0) in
    let scheme = Scheme.Bfc { Scheme.bfc_default with Scheme.queues = 16; assignment } in
    let params = { Runner.default_params with seed = run * 7 } in
    let env = Runner.setup ~topo:tb.Topology.tb ~scheme ~params in
    let ids = ref (run * 10_000) in
    let size = 1_500_000 in
    let mk src dst =
      let id = !ids in
      incr ids;
      Flow.make ~id ~src ~dst ~size ~arrival:0 ()
    in
    let group1 = Array.to_list (Array.map (fun h -> mk h tb.Topology.recv1) tb.Topology.group1) in
    let group2 = Array.to_list (Array.map (fun h -> mk h tb.Topology.recv2) tb.Topology.group2) in
    let group3 = Array.to_list (Array.map (fun h -> mk h tb.Topology.recv2) tb.Topology.group3) in
    Runner.inject env (group1 @ group2 @ group3);
    Runner.run env ~until:(Time.ms 10.0);
    Runner.drain env ~budget:(Time.ms 40.0);
    List.filter_map
      (fun f -> if Flow.complete f then Some (Time.to_us (Flow.fct f)) else None)
      group1
  in
  let combos =
    List.concat_map
      (fun (sname, assignment) ->
        List.map (fun g2 -> (sname, assignment, g2)) g2_counts)
      strategies
  in
  let points =
    List.concat_map
      (fun (sname, assignment, g2) ->
        List.init n_runs (fun i ->
            pt (Printf.sprintf "fig8:%s:%d:%d" sname g2 (i + 1)) (one_run assignment g2 (i + 1))))
      combos
  in
  let per_run = Array.of_list (sweep points) in
  let rows =
    List.mapi
      (fun ci (sname, _, g2) ->
        let fcts = Sample.create () in
        for i = 0 to n_runs - 1 do
          List.iter (Sample.add fcts) per_run.((ci * n_runs) + i)
        done;
        [ sname; string_of_int g2; cell (Sample.mean fcts); cell (Sample.stddev fcts) ])
      combos
  in
  [
    {
      title =
        "Fig 8: group-1 victim FCT under congestion spreading (1.5MB flows; 16 queues/port)";
      header = [ "assignment"; "#group2 flows"; "avg FCT(us)"; "stddev(us)" ];
      rows;
    };
  ]
