(* Work-stealing domain pool for experiment sweeps.

   Tasks are independent thunks (each builds its own [Sim.t] from scratch),
   so the only sharing between domains is the task/result arrays and the
   per-worker cursors. Distribution is strided: worker [w] owns task
   indices [w, w + jobs, w + 2*jobs, ...] behind an atomic cursor; a worker
   that drains its own queue steals from the other queues through the same
   fetch-and-add, so every index is handed out exactly once no matter who
   takes it. Results are merged by task index and errors re-raised in task
   order, which keeps output deterministic at any job count. *)

let recommended_jobs () = Domain.recommended_domain_count ()

(* Ambient job count used by [run] when no [?jobs] is given. Set once at
   startup (bench CLI --jobs / Experiments.run_parallel); sweeps deep
   inside experiment code pick it up without threading a parameter through
   every figure. *)
let ambient = Atomic.make 1

let set_default_jobs j =
  if j < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  Atomic.set ambient j

let default_jobs () = Atomic.get ambient

exception Task_error of { index : int; exn : exn; backtrace : string }

let () =
  Printexc.register_printer (function
    | Task_error { index; exn; backtrace } ->
      Some
        (Printf.sprintf "Pool.Task_error (task %d raised %s)\n%s" index (Printexc.to_string exn)
           backtrace)
    | _ -> None)

let run_list ?jobs tasks =
  let n = Array.length tasks in
  let jobs = max 1 (min n (match jobs with Some j -> j | None -> default_jobs ())) in
  let results = Array.make n None in
  let errors = Array.make n None in
  let exec i =
    try results.(i) <- Some (tasks.(i) ())
    with exn ->
      let backtrace = Printexc.get_backtrace () in
      errors.(i) <- Some (Task_error { index = i; exn; backtrace })
  in
  if jobs <= 1 then
    for i = 0 to n - 1 do
      exec i
    done
  else begin
    (* queue [w] = indices w, w+jobs, ...; cursor counts handed-out slots *)
    let cursors = Array.init jobs (fun _ -> Atomic.make 0) in
    let qlen w = (n - w + jobs - 1) / jobs in
    let drain_queue w =
      let continue = ref true in
      while !continue do
        let k = Atomic.fetch_and_add cursors.(w) 1 in
        if k < qlen w then exec (w + (k * jobs)) else continue := false
      done
    in
    let worker w =
      drain_queue w;
      for v = 1 to jobs - 1 do
        drain_queue ((w + v) mod jobs)
      done
    in
    let domains = Array.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1))) in
    worker 0;
    Array.iter Domain.join domains
  end;
  (* first failure in task order wins, independent of execution order *)
  Array.iter (function Some e -> raise e | None -> ()) errors;
  (* a None slot is impossible here: every index was executed and any
     failure was re-raised above *)
  (* bfc-lint: allow rob-assert-false *)
  Array.to_list (Array.map (function Some r -> r | None -> assert false) results)

let run ?jobs tasks = run_list ?jobs (Array.of_list tasks)

let run_array ?jobs tasks = Array.of_list (run_list ?jobs tasks)
