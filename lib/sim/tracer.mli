(** Network-wide control-plane tracing.

    Wraps every node's receive handler (after {!Runner.setup}) to record
    Pause / Resume / pause-bitmap / PFC / hop-credit control packets with
    timestamps, plus packet drops — the observable control actions of the
    backpressure machinery. Useful for debugging pause storms, verifying
    pause/resume pairing, and producing timelines. *)

type kind =
  | Pause_rx of { queue : int }
  | Resume_rx of { queue : int }
  | Bitmap_rx of { paused : int }  (** number of queues the bitmap pauses *)
  | Pfc_rx of { pause : bool }
  | Hop_credit_rx of { queue : int; bytes : int }
  | Dropped of { flow : int }
  | Watchdog_fire of { egress : int; queue : int }
      (** pause watchdog force-resume; [queue = -1] = PFC port unpause *)
  | Link_down of { gid : int }  (** fault injector took the link down *)
  | Link_up of { gid : int }
  | Rebooted of { flushed : int }  (** switch reboot; packets lost *)

type event = { at : Bfc_engine.Time.t; node : int; ev : kind }

type t

(** [attach env ~capacity] starts recording (ring buffer of [capacity]
    events; oldest dropped first). Call after [Runner.setup], before
    running. *)
val attach : Runner.env -> capacity:int -> t

(** Record an out-of-band event (the fault injector announces link state
    changes and reboots through this). *)
val note : t -> Runner.env -> node:int -> kind -> unit

(** Events in chronological order (oldest first). *)
val events : t -> event list

(** Total events observed (including any that fell off the ring). *)
val observed : t -> int

val count : t -> pred:(event -> bool) -> int

(** Pauses and resumes received per node, as (node, pauses, resumes). *)
val pause_balance : t -> (int * int * int) list

(** Render a human-readable timeline of up to [limit] events. *)
val render : ?limit:int -> t -> string

(** The underlying trace ring (pid = node id, instants only). Export it
    with {!Bfc_obs.Trace.to_chrome} for a Perfetto view of the control
    plane. *)
val trace : t -> Bfc_obs.Trace.t
