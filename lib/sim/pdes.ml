(* Conservative parallel discrete-event engine (PDES): one simulation
   partitioned into shards, each a full [Sim.t] owned by one domain,
   synchronized with a window barrier derived from link lookahead.

   Protocol. Let L be the minimum propagation delay over the partition
   cut (at least one full propagation separates any cross-shard send
   from its delivery). Each round the coordinator:

     1. computes T_min = min over shards of [Sim.next_time];
     2. commands every shard to run its window [.., E-1] where
        E = min (T_min + L, until + 1);
     3. waits for all shards, draining their outbound channels while
        they run;
     4. at the barrier, sorts the drained messages deterministically and
        inserts each into its destination shard's event queue.

   Safety: a packet sent at virtual time s crosses the cut no earlier
   than s + L (serialization only adds to that), and every event the
   window executes has time >= T_min, so every message produced inside a
   window has delivery time >= T_min + L = E — strictly after the window
   it was produced in. Hence at the moment a window starts, each shard's
   queue already holds every event the window will execute: conservative,
   no rollback, and [Sim.run] itself is untouched.

   Deadlock-freedom. Channels are bounded; a producer finding its channel
   full wakes the coordinator (condition broadcast) and retries — it
   never drops. The coordinator is the single consumer of every channel
   and drains them whenever awake, and every wait it takes is interrupted
   by exactly the events that require action (worker completion, full
   channel). A stalled producer therefore always has an awake consumer:
   every push eventually succeeds, every window eventually ends.

   Determinism. Barrier insertion orders messages by (delivery time,
   send time, source port gid, per-producer sequence) — the order a
   sequential run would have created the same delivery events in
   whenever their send times differ. All shard-local scheduling is the
   untouched sequential code, so a sharded run reproduces the sequential
   event order (held to byte-identity by the differential test). *)

module Sim = Bfc_engine.Sim
module Time = Bfc_engine.Time
module Channel = Bfc_engine.Channel
module Node = Bfc_net.Node
module Port = Bfc_net.Port
module Packet = Bfc_net.Packet
module Flow = Bfc_net.Flow
module Partition = Bfc_net.Partition
module Topology = Bfc_net.Topology
module Int_table = Bfc_util.Int_table

(* Ambient default, set by the CLI (--shards) exactly like the scheduler
   backend and the pool job count; [Exp_common.run_std] consults it so
   sharding composes with every experiment and with [Pool] sweeps. *)
let default = Atomic.make 1

let set_default_shards n = Atomic.set default (max 1 n)

let default_shards () = Atomic.get default

type shard_ctx = {
  sx_sim : Sim.t;
  sx_nodes : Node.t array;
  sx_replicas : Flow.t Int_table.t;
}

type msg = {
  m_at : Time.t; (* absolute delivery time at the destination *)
  m_sent : Time.t; (* producer's virtual clock at the send *)
  m_src_gid : int; (* global id of the producing port *)
  m_seq : int; (* per-producer running count (same-send tiebreak) *)
  m_dst_shard : int;
  m_dst_node : int;
  m_in_port : int;
  m_flow_id : int; (* -1 for flow-less control packets *)
  m_pkt : Packet.t; (* a clone owned by the destination shard *)
}

type cmd = Run of Time.t | Quit

type worker = {
  w_mu : Mutex.t;
  w_cv : Condition.t; (* command handoff (coordinator -> worker) *)
  mutable w_cmd : cmd option;
  w_busy : bool Atomic.t;
  w_chan : msg array Channel.t; (* one ring slot per burst, not per message *)
  mutable w_burst : msg list; (* burst under construction, newest first *)
  mutable w_burst_n : int;
  mutable w_seq : int; (* written by the owning worker only *)
  mutable w_stalls : int; (* full-channel retries (diagnostics) *)
  mutable w_exn : exn option; (* failure inside Sim.run, rethrown at the barrier *)
  mutable w_dom : unit Domain.t option;
}

type t = {
  shards : shard_ctx array;
  lookahead : Time.t;
  workers : worker array;
  co_mu : Mutex.t;
  co_cv : Condition.t; (* coordinator wakeups (completion / full channel) *)
  mutable pending : msg list; (* drained, not yet inserted *)
  mutable messages : int; (* total cross-shard messages (diagnostics) *)
  mutable bursts : int; (* ring slots those messages crossed in *)
  mutable windows : int; (* barrier rounds (diagnostics) *)
}

let channel_capacity = 1 lsl 15

(* Messages per ring slot: a producer publishes at most one cursor bump
   per [burst_max] messages (plus one for the window's tail), instead of
   one per message. *)
let burst_max = 256

(* Wake the coordinator: workers call this on completion and while
   spinning on a full channel (so the single consumer is never asleep
   when a producer needs it to drain). *)
let wake t =
  Mutex.lock t.co_mu;
  Condition.broadcast t.co_cv;
  Mutex.unlock t.co_mu

(* Producer side: publish the burst under construction as one ring slot.
   Runs on the owning worker's domain (and, harmlessly, on the
   coordinator after a barrier, when the buffer is always empty). *)
let flush_burst t w =
  if w.w_burst_n > 0 then begin
    let b = Array.of_list (List.rev w.w_burst) in
    w.w_burst <- [];
    w.w_burst_n <- 0;
    while not (Channel.try_push w.w_chan b) do
      (* bounded + lossless: stall here (never drop), and wake the
         coordinator so the single consumer drains us free *)
      w.w_stalls <- w.w_stalls + 1;
      wake t;
      Domain.cpu_relax ()
    done
  end

let worker_body t k =
  let w = t.workers.(k) in
  let sx = t.shards.(k) in
  let rec loop () =
    Mutex.lock w.w_mu;
    let rec take () =
      match w.w_cmd with
      | Some c ->
        w.w_cmd <- None;
        c
      | None ->
        Condition.wait w.w_cv w.w_mu;
        take ()
    in
    let cmd = take () in
    Mutex.unlock w.w_mu;
    match cmd with
    | Quit ->
      Atomic.set w.w_busy false;
      wake t
    | Run until ->
      (try ignore (Sim.run sx.sx_sim ~until) with e -> w.w_exn <- Some e);
      (* the window's tail burst must be visible before the barrier sees
         us parked ([Atomic.set] publishes both) *)
      flush_burst t w;
      Atomic.set w.w_busy false;
      wake t;
      loop ()
  in
  loop ()

let create ~shards ~lookahead =
  if Array.length shards = 0 then invalid_arg "Pdes.create: no shards";
  if lookahead <= 0 then invalid_arg "Pdes.create: lookahead must be positive";
  let workers =
    Array.map
      (fun _ ->
        {
          w_mu = Mutex.create ();
          w_cv = Condition.create ();
          w_cmd = None;
          w_busy = Atomic.make false;
          w_chan = Channel.create ~capacity:channel_capacity;
          w_burst = [];
          w_burst_n = 0;
          w_seq = 0;
          w_stalls = 0;
          w_exn = None;
          w_dom = None;
        })
      shards
  in
  let t =
    {
      shards;
      lookahead;
      workers;
      co_mu = Mutex.create ();
      co_cv = Condition.create ();
      pending = [];
      messages = 0;
      bursts = 0;
      windows = 0;
    }
  in
  Array.iteri (fun k w -> w.w_dom <- Some (Domain.spawn (fun () -> worker_body t k))) workers;
  t

(* Producer side: runs on the source shard's domain, inside Sim.run.
   The clone (made here, in the producing domain) is the only part of
   the packet that crosses; the original stays in its shard's lifecycle.
   No [~sim] on the clone: uids would otherwise perturb the per-sim uid
   stream relative to a sequential run (uids are diagnostics, but the
   differential is easier to trust when streams match). *)
let emit t ~src_shard ~src_gid ~dst_shard ~dst_node ~in_port pkt ~at =
  let w = t.workers.(src_shard) in
  let m =
    {
      m_at = at;
      m_sent = Sim.now t.shards.(src_shard).sx_sim;
      m_src_gid = src_gid;
      m_seq = w.w_seq;
      m_dst_shard = dst_shard;
      m_dst_node = dst_node;
      m_in_port = in_port;
      m_flow_id = Packet.flow_id pkt;
      m_pkt = Packet.clone pkt;
    }
  in
  w.w_seq <- w.w_seq + 1;
  w.w_burst <- m :: w.w_burst;
  w.w_burst_n <- w.w_burst_n + 1;
  if w.w_burst_n >= burst_max then flush_burst t w

(* Install the remote hook on every cut port owned by [shard]: captures
   happen at send time on the producing domain (capturing at
   delivery-event time would race with the destination's window). *)
let wire t ~partition ~shard ~topo =
  Partition.iter_cut topo partition (fun ~src p ->
      if Partition.owner partition src = shard then begin
        let dst_shard = Partition.owner partition (Port.peer p).Node.id in
        let dst_node = (Port.peer p).Node.id in
        let in_port = Port.peer_port p in
        let src_gid = Port.gid p in
        Port.set_remote p (fun pkt ~at ->
            emit t ~src_shard:shard ~src_gid ~dst_shard ~dst_node ~in_port pkt ~at)
      end)

let drain_channels t =
  Array.iter
    (fun w ->
      t.bursts <-
        t.bursts
        + Channel.drain w.w_chan (fun b ->
              Array.iter
                (fun m ->
                  t.pending <- m :: t.pending;
                  t.messages <- t.messages + 1)
                b))
    t.workers

let any_busy t = Array.exists (fun w -> Atomic.get w.w_busy) t.workers

let channels_empty t = Array.for_all (fun w -> Channel.is_empty w.w_chan) t.workers

let command_all t cmd =
  Array.iter
    (fun w ->
      Atomic.set w.w_busy true;
      Mutex.lock w.w_mu;
      w.w_cmd <- Some cmd;
      Condition.signal w.w_cv;
      Mutex.unlock w.w_mu)
    t.workers

(* Wait for every worker to park, draining outbound channels the whole
   time. The sleep is taken under [co_mu] and only when there is nothing
   to drain; both events that need the coordinator (completion, full
   channel) broadcast [co_cv], so no wakeup can be missed. *)
let await_all t =
  let rec go () =
    drain_channels t;
    if any_busy t then begin
      Mutex.lock t.co_mu;
      if any_busy t && channels_empty t then Condition.wait t.co_cv t.co_mu;
      Mutex.unlock t.co_mu;
      go ()
    end
  in
  go ();
  drain_channels t;
  Array.iter
    (fun w ->
      match w.w_exn with
      | Some e ->
        w.w_exn <- None;
        raise e
      | None -> ())
    t.workers

let cmp_msg a b =
  let c = Int.compare a.m_at b.m_at in
  if c <> 0 then c
  else
    let c = Int.compare a.m_sent b.m_sent in
    if c <> 0 then c
    else
      let c = Int.compare a.m_src_gid b.m_src_gid in
      if c <> 0 then c else Int.compare a.m_seq b.m_seq

(* Typed barrier delivery ([cls_pdes_barrier]): the payload of a
   cross-shard delivery — destination node, ingress port, packet — lives
   in a per-sim parcel table, and the event carries only the parcel slot
   in [a0]. Slots are allocated at the barrier (coordinator thread,
   every shard parked) and released by the executor (the owning worker's
   domain, inside its window); each side's writes are published to the
   other by the barrier protocol itself (the [w_busy] atomics and the
   command mutex handoff), so the table needs no locking of its own. *)

type parcel = {
  mutable pc_node : Node.t;
  mutable pc_in_port : int;
  mutable pc_pkt : Packet.t;
}

type preg = {
  mutable pslots : parcel array; (* [0, pn) are allocated-or-free parcels *)
  mutable pn : int;
  mutable pfree : int array; (* LIFO free list of slot indices *)
  mutable pfree_n : int;
}

type Bfc_engine.Sim.user += Pdes_reg of preg

let parcel_exec st a0 _a1 =
  match st with
  | Pdes_reg r ->
    let p = Array.unsafe_get r.pslots a0 in
    if r.pfree_n = Array.length r.pfree then begin
      let ncap = max 64 (2 * r.pfree_n) in
      let nf = Array.make ncap 0 in
      Array.blit r.pfree 0 nf 0 r.pfree_n;
      r.pfree <- nf
    end;
    r.pfree.(r.pfree_n) <- a0;
    r.pfree_n <- r.pfree_n + 1;
    Node.deliver p.pc_node ~in_port:p.pc_in_port p.pc_pkt
  | _ -> invalid_arg "Pdes.parcel_exec: foreign class state"

let preg_of sim =
  match Sim.class_state sim ~cls:Sim.cls_pdes_barrier with
  | Some (Pdes_reg r) -> r
  | _ ->
    let r = { pslots = [||]; pn = 0; pfree = [||]; pfree_n = 0 } in
    Sim.register_class sim ~cls:Sim.cls_pdes_barrier ~state:(Pdes_reg r) ~exec:parcel_exec;
    r

let parcel_alloc r node ~in_port pkt =
  if r.pfree_n > 0 then begin
    r.pfree_n <- r.pfree_n - 1;
    let i = r.pfree.(r.pfree_n) in
    let p = r.pslots.(i) in
    p.pc_node <- node;
    p.pc_in_port <- in_port;
    p.pc_pkt <- pkt;
    i
  end
  else begin
    let p = { pc_node = node; pc_in_port = in_port; pc_pkt = pkt } in
    if r.pn = Array.length r.pslots then begin
      let ncap = max 64 (2 * r.pn) in
      let ns = Array.make ncap p in
      Array.blit r.pslots 0 ns 0 r.pn;
      r.pslots <- ns
    end;
    r.pslots.(r.pn) <- p;
    r.pn <- r.pn + 1;
    r.pn - 1
  end

(* Barrier insertion: all shards are parked, so their queues are safe to
   touch from here (the next command's mutex handoff publishes the
   writes). Re-binding the flow replica happens now, on the packet the
   destination exclusively owns. [~sent] stamps the event with the
   producer's virtual send time, which is when a sequential run would
   have inserted it — so among same-time events it takes exactly the
   position the sequential schedule gives it. *)
let flush_pending t =
  match t.pending with
  | [] -> ()
  | ms ->
    t.pending <- [];
    List.iter
      (fun m ->
        let sx = t.shards.(m.m_dst_shard) in
        (match Int_table.find_exn sx.sx_replicas m.m_flow_id with
        | exception Not_found -> ()
        | f -> m.m_pkt.Packet.flow <- Some f);
        let r = preg_of sx.sx_sim in
        let slot = parcel_alloc r sx.sx_nodes.(m.m_dst_node) ~in_port:m.m_in_port m.m_pkt in
        Sim.post ~sent:m.m_sent ~key:m.m_src_gid sx.sx_sim m.m_at ~cls:Sim.cls_pdes_barrier
          ~a0:slot ~a1:0)
      (List.sort cmp_msg ms)

let run t ~until =
  let rec loop () =
    let tmin = ref max_int in
    Array.iter
      (fun sx ->
        let nt = Sim.next_time sx.sx_sim in
        if nt >= 0 && nt < !tmin then tmin := nt)
      t.shards;
    if !tmin > until then begin
      (* nothing left at or before [until] anywhere: advance clocks *)
      command_all t (Run until);
      await_all t;
      flush_pending t
    end
    else begin
      let e = min (!tmin + t.lookahead) (until + 1) in
      t.windows <- t.windows + 1;
      command_all t (Run (min (e - 1) until));
      await_all t;
      flush_pending t;
      loop ()
    end
  in
  loop ()

let now t = Sim.now t.shards.(0).sx_sim

(* Mirror of [Runner.drain]: same default slice, same stop conditions,
   evaluated at the same virtual times — so a sharded drain ends at
   exactly the virtual time the sequential one does. *)
let drain ?(step = Time.us 100.0) t ~budget ~done_ =
  let deadline = now t + budget in
  let rec loop () =
    if (not (done_ ())) && now t < deadline then begin
      run t ~until:(min deadline (now t + step));
      loop ()
    end
  in
  loop ()

let shutdown t =
  command_all t Quit;
  Array.iter
    (fun w -> match w.w_dom with None -> () | Some d -> Domain.join d)
    t.workers;
  Array.iter (fun w -> w.w_dom <- None) t.workers

let messages t = t.messages

let bursts t = t.bursts

let windows t = t.windows

let stalls t = Array.fold_left (fun acc w -> acc + w.w_stalls) 0 t.workers

let events_executed t =
  Array.fold_left (fun acc sx -> acc + Sim.executed_events sx.sx_sim) 0 t.shards
