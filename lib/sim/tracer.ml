module Packet = Bfc_net.Packet
module Node = Bfc_net.Node
module Topology = Bfc_net.Topology
module Switch = Bfc_switch.Switch

type kind =
  | Pause_rx of { queue : int }
  | Resume_rx of { queue : int }
  | Bitmap_rx of { paused : int }
  | Pfc_rx of { pause : bool }
  | Hop_credit_rx of { queue : int; bytes : int }
  | Dropped of { flow : int }
  | Watchdog_fire of { egress : int; queue : int }
  | Link_down of { gid : int }
  | Link_up of { gid : int }
  | Rebooted of { flushed : int }

type event = { at : Bfc_engine.Time.t; node : int; ev : kind }

type t = {
  ring : event option array;
  mutable next : int;
  mutable observed : int;
}

let record t at node ev =
  t.ring.(t.next) <- Some { at; node; ev };
  t.next <- (t.next + 1) mod Array.length t.ring;
  t.observed <- t.observed + 1

let attach env ~capacity =
  if capacity <= 0 then invalid_arg "Tracer.attach: capacity";
  let t = { ring = Array.make capacity None; next = 0; observed = 0 } in
  let topo = Runner.topo env in
  let sim = Runner.sim env in
  Array.iter
    (fun nd ->
      let prev = nd.Node.handler in
      nd.Node.handler <-
        (fun ~in_port pkt ->
          (match pkt.Packet.kind with
          | Packet.Pause ->
            record t (Bfc_engine.Sim.now sim) nd.Node.id (Pause_rx { queue = pkt.Packet.ctrl_a })
          | Packet.Resume ->
            record t (Bfc_engine.Sim.now sim) nd.Node.id (Resume_rx { queue = pkt.Packet.ctrl_a })
          | Packet.Pause_bitmap ->
            record t (Bfc_engine.Sim.now sim) nd.Node.id
              (Bitmap_rx { paused = Array.length pkt.Packet.ints })
          | Packet.Pfc ->
            record t (Bfc_engine.Sim.now sim) nd.Node.id (Pfc_rx { pause = pkt.Packet.ctrl_b = 1 })
          | Packet.Hop_credit ->
            record t (Bfc_engine.Sim.now sim) nd.Node.id
              (Hop_credit_rx { queue = pkt.Packet.ctrl_a; bytes = pkt.Packet.ctrl_b })
          | Packet.Data | Packet.Ack | Packet.Nack | Packet.Credit | Packet.Credit_req
          | Packet.Grant | Packet.Cnp ->
            ());
          prev ~in_port pkt))
    (Topology.nodes topo);
  Array.iter
    (fun sw ->
      let hk = Switch.hooks sw in
      let prev = hk.Switch.on_drop in
      hk.Switch.on_drop <-
        (fun sw ~in_port ~egress ~queue pkt ->
          prev sw ~in_port ~egress ~queue pkt;
          record t (Bfc_engine.Sim.now sim) (Switch.node_id sw)
            (Dropped { flow = Packet.flow_id pkt }));
      let prev_wd = hk.Switch.on_watchdog in
      hk.Switch.on_watchdog <-
        (fun sw ~egress ~queue ->
          prev_wd sw ~egress ~queue;
          record t (Bfc_engine.Sim.now sim) (Switch.node_id sw) (Watchdog_fire { egress; queue }));
      let prev_rb = hk.Switch.on_reboot in
      hk.Switch.on_reboot <-
        (fun sw ~flushed ->
          prev_rb sw ~flushed;
          record t (Bfc_engine.Sim.now sim) (Switch.node_id sw) (Rebooted { flushed })))
    (Runner.switches env);
  t

let note t env ~node ev = record t (Bfc_engine.Sim.now (Runner.sim env)) node ev

let events t =
  (* slot [t.next] holds the oldest event once the ring has wrapped *)
  let n = Array.length t.ring in
  let out = ref [] in
  for i = n - 1 downto 0 do
    match t.ring.((t.next + i) mod n) with
    | Some e -> out := e :: !out
    | None -> ()
  done;
  !out

let observed t = t.observed

let count t ~pred = List.length (List.filter pred (events t))

let pause_balance t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let p, r = Option.value ~default:(0, 0) (Hashtbl.find_opt tbl e.node) in
      match e.ev with
      | Pause_rx _ -> Hashtbl.replace tbl e.node (p + 1, r)
      | Resume_rx _ -> Hashtbl.replace tbl e.node (p, r + 1)
      | Bitmap_rx _ | Pfc_rx _ | Hop_credit_rx _ | Dropped _ | Watchdog_fire _ | Link_down _
      | Link_up _ | Rebooted _ -> ())
    (events t);
  Hashtbl.fold (fun node (p, r) acc -> (node, p, r) :: acc) tbl []
  |> List.sort compare

let kind_to_string = function
  | Pause_rx { queue } -> Printf.sprintf "PAUSE   q=%d" queue
  | Resume_rx { queue } -> Printf.sprintf "RESUME  q=%d" queue
  | Bitmap_rx { paused } -> Printf.sprintf "BITMAP  paused=%d" paused
  | Pfc_rx { pause } -> if pause then "PFC     pause" else "PFC     resume"
  | Hop_credit_rx { queue; bytes } -> Printf.sprintf "CREDIT  q=%d +%dB" queue bytes
  | Dropped { flow } -> Printf.sprintf "DROP    flow=%d" flow
  | Watchdog_fire { egress; queue } ->
    if queue < 0 then Printf.sprintf "WDOG    egress=%d (pfc)" egress
    else Printf.sprintf "WDOG    egress=%d q=%d" egress queue
  | Link_down { gid } -> Printf.sprintf "LINK-   gid=%d" gid
  | Link_up { gid } -> Printf.sprintf "LINK+   gid=%d" gid
  | Rebooted { flushed } -> Printf.sprintf "REBOOT  flushed=%d" flushed

let render ?(limit = 50) t =
  let buf = Buffer.create 1024 in
  let evs = events t in
  let skip = max 0 (List.length evs - limit) in
  if skip > 0 then Buffer.add_string buf (Printf.sprintf "... (%d earlier events)\n" skip);
  List.iteri
    (fun i e ->
      if i >= skip then
        Buffer.add_string buf
          (Printf.sprintf "%10.3fus  node %-3d  %s\n" (Bfc_engine.Time.to_us e.at) e.node
             (kind_to_string e.ev)))
    evs;
  Buffer.contents buf
