(* The control-plane tracer, rebased onto the Bfc_obs.Trace ring: events
   are stored as interned instants (pid = node id), so the same buffer that
   feeds [events]/[render] exports to Perfetto via {!trace}. The public API
   is unchanged from the pre-obs ring implementation. *)

module Packet = Bfc_net.Packet
module Node = Bfc_net.Node
module Topology = Bfc_net.Topology
module Switch = Bfc_switch.Switch
module Trace = Bfc_obs.Trace

type kind =
  | Pause_rx of { queue : int }
  | Resume_rx of { queue : int }
  | Bitmap_rx of { paused : int }
  | Pfc_rx of { pause : bool }
  | Hop_credit_rx of { queue : int; bytes : int }
  | Dropped of { flow : int }
  | Watchdog_fire of { egress : int; queue : int }
  | Link_down of { gid : int }
  | Link_up of { gid : int }
  | Rebooted of { flushed : int }

type event = { at : Bfc_engine.Time.t; node : int; ev : kind }

type t = {
  tr : Trace.t;
  id_pause : int;
  id_resume : int;
  id_bitmap : int;
  id_pfc : int;
  id_credit : int;
  id_drop : int;
  id_wdog : int;
  id_linkdown : int;
  id_linkup : int;
  id_reboot : int;
}

let encode t = function
  | Pause_rx { queue } -> (t.id_pause, queue, Trace.absent_arg)
  | Resume_rx { queue } -> (t.id_resume, queue, Trace.absent_arg)
  | Bitmap_rx { paused } -> (t.id_bitmap, paused, Trace.absent_arg)
  | Pfc_rx { pause } -> (t.id_pfc, (if pause then 1 else 0), Trace.absent_arg)
  | Hop_credit_rx { queue; bytes } -> (t.id_credit, queue, bytes)
  | Dropped { flow } -> (t.id_drop, flow, Trace.absent_arg)
  | Watchdog_fire { egress; queue } -> (t.id_wdog, egress, queue)
  | Link_down { gid } -> (t.id_linkdown, gid, Trace.absent_arg)
  | Link_up { gid } -> (t.id_linkup, gid, Trace.absent_arg)
  | Rebooted { flushed } -> (t.id_reboot, flushed, Trace.absent_arg)

let decode t ~name ~a ~b =
  let arg = function Some v -> v | None -> 0 in
  if name = t.id_pause then Pause_rx { queue = arg a }
  else if name = t.id_resume then Resume_rx { queue = arg a }
  else if name = t.id_bitmap then Bitmap_rx { paused = arg a }
  else if name = t.id_pfc then Pfc_rx { pause = arg a = 1 }
  else if name = t.id_credit then Hop_credit_rx { queue = arg a; bytes = arg b }
  else if name = t.id_drop then Dropped { flow = arg a }
  else if name = t.id_wdog then Watchdog_fire { egress = arg a; queue = arg b }
  else if name = t.id_linkdown then Link_down { gid = arg a }
  else if name = t.id_linkup then Link_up { gid = arg a }
  else Rebooted { flushed = arg a }

let record t at node ev =
  let name, a, b = encode t ev in
  Trace.instant t.tr ~ts:at ~name ~pid:node ~tid:0 ~a ~b ()

let make ~capacity =
  let tr = Trace.create ~capacity () in
  {
    tr;
    id_pause = Trace.intern tr ~akey:"queue" "pause_rx";
    id_resume = Trace.intern tr ~akey:"queue" "resume_rx";
    id_bitmap = Trace.intern tr ~akey:"paused" "bitmap_rx";
    id_pfc = Trace.intern tr ~akey:"pause" "pfc_rx";
    id_credit = Trace.intern tr ~akey:"queue" ~bkey:"bytes" "hop_credit_rx";
    id_drop = Trace.intern tr ~akey:"flow" "drop";
    id_wdog = Trace.intern tr ~akey:"egress" ~bkey:"queue" "watchdog";
    id_linkdown = Trace.intern tr ~akey:"gid" "link_down";
    id_linkup = Trace.intern tr ~akey:"gid" "link_up";
    id_reboot = Trace.intern tr ~akey:"flushed" "reboot";
  }

let attach env ~capacity =
  if capacity <= 0 then invalid_arg "Tracer.attach: capacity";
  let t = make ~capacity in
  let topo = Runner.topo env in
  let sim = Runner.sim env in
  Array.iter
    (fun nd ->
      let prev = nd.Node.handler in
      nd.Node.handler <-
        (fun ~in_port pkt ->
          (match pkt.Packet.kind with
          | Packet.Pause ->
            record t (Bfc_engine.Sim.now sim) nd.Node.id (Pause_rx { queue = pkt.Packet.ctrl_a })
          | Packet.Resume ->
            record t (Bfc_engine.Sim.now sim) nd.Node.id (Resume_rx { queue = pkt.Packet.ctrl_a })
          | Packet.Pause_bitmap ->
            record t (Bfc_engine.Sim.now sim) nd.Node.id
              (Bitmap_rx { paused = Array.length pkt.Packet.ints })
          | Packet.Pfc ->
            record t (Bfc_engine.Sim.now sim) nd.Node.id (Pfc_rx { pause = pkt.Packet.ctrl_b = 1 })
          | Packet.Hop_credit ->
            record t (Bfc_engine.Sim.now sim) nd.Node.id
              (Hop_credit_rx { queue = pkt.Packet.ctrl_a; bytes = pkt.Packet.ctrl_b })
          | Packet.Data | Packet.Ack | Packet.Nack | Packet.Credit | Packet.Credit_req
          | Packet.Grant | Packet.Cnp ->
            ());
          prev ~in_port pkt))
    (Topology.nodes topo);
  Array.iter
    (fun sw ->
      let hk = Switch.hooks sw in
      let prev = hk.Switch.on_drop in
      hk.Switch.on_drop <-
        (fun sw ~in_port ~egress ~queue pkt ->
          prev sw ~in_port ~egress ~queue pkt;
          record t (Bfc_engine.Sim.now sim) (Switch.node_id sw)
            (Dropped { flow = Packet.flow_id pkt }));
      let prev_wd = hk.Switch.on_watchdog in
      hk.Switch.on_watchdog <-
        (fun sw ~egress ~queue ->
          prev_wd sw ~egress ~queue;
          record t (Bfc_engine.Sim.now sim) (Switch.node_id sw) (Watchdog_fire { egress; queue }));
      let prev_rb = hk.Switch.on_reboot in
      hk.Switch.on_reboot <-
        (fun sw ~flushed ->
          prev_rb sw ~flushed;
          record t (Bfc_engine.Sim.now sim) (Switch.node_id sw) (Rebooted { flushed })))
    (Runner.switches env);
  t

let note t env ~node ev = record t (Bfc_engine.Sim.now (Runner.sim env)) node ev

let trace t = t.tr

let events t =
  let out = ref [] in
  Trace.iter t.tr (fun ~ts ~dur:_ ~name ~pid ~tid:_ ~a ~b ->
      out := { at = ts; node = pid; ev = decode t ~name ~a ~b } :: !out);
  List.rev !out

let observed t = Trace.recorded t.tr

let count t ~pred = List.length (List.filter pred (events t))

let pause_balance t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let p, r = Option.value ~default:(0, 0) (Hashtbl.find_opt tbl e.node) in
      match e.ev with
      | Pause_rx _ -> Hashtbl.replace tbl e.node (p + 1, r)
      | Resume_rx _ -> Hashtbl.replace tbl e.node (p, r + 1)
      | Bitmap_rx _ | Pfc_rx _ | Hop_credit_rx _ | Dropped _ | Watchdog_fire _ | Link_down _
      | Link_up _ | Rebooted _ -> ())
    (events t);
  Hashtbl.fold (fun node (p, r) acc -> (node, p, r) :: acc) tbl []
  |> List.sort compare

let kind_to_string = function
  | Pause_rx { queue } -> Printf.sprintf "PAUSE   q=%d" queue
  | Resume_rx { queue } -> Printf.sprintf "RESUME  q=%d" queue
  | Bitmap_rx { paused } -> Printf.sprintf "BITMAP  paused=%d" paused
  | Pfc_rx { pause } -> if pause then "PFC     pause" else "PFC     resume"
  | Hop_credit_rx { queue; bytes } -> Printf.sprintf "CREDIT  q=%d +%dB" queue bytes
  | Dropped { flow } -> Printf.sprintf "DROP    flow=%d" flow
  | Watchdog_fire { egress; queue } ->
    if queue < 0 then Printf.sprintf "WDOG    egress=%d (pfc)" egress
    else Printf.sprintf "WDOG    egress=%d q=%d" egress queue
  | Link_down { gid } -> Printf.sprintf "LINK-   gid=%d" gid
  | Link_up { gid } -> Printf.sprintf "LINK+   gid=%d" gid
  | Rebooted { flushed } -> Printf.sprintf "REBOOT  flushed=%d" flushed

let render ?(limit = 50) t =
  let buf = Buffer.create 1024 in
  let evs = events t in
  let skip = max 0 (List.length evs - limit) in
  if skip > 0 then Buffer.add_string buf (Printf.sprintf "... (%d earlier events)\n" skip);
  List.iteri
    (fun i e ->
      if i >= skip then
        Buffer.add_string buf
          (Printf.sprintf "%10.3fus  node %-3d  %s\n" (Bfc_engine.Time.to_us e.at) e.node
             (kind_to_string e.ev)))
    evs;
  Buffer.contents buf
