(** Metric collection and summarization (§6.2.1 Performance metrics).

    FCT slowdown = FCT / best-possible FCT at line rate, bucketed by flow
    size the way the paper's figures are; buffer occupancy and active-flow
    counts are sampled periodically; per-packet queuing delays are captured
    via the switch's departure tap. *)

(** Flow-size buckets used across the figures. *)
val size_buckets : (string * int * int) list
(** (label, lo, hi) with hi exclusive; the last bucket is open-ended. *)

type fct_stats = {
  bucket : string;
  lo : int;
  count : int;
  avg : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

(** [fct_table env flows] — slowdown stats per size bucket over completed
    flows ([incast] selects the incast subset; default excludes incast
    flows, as the paper reports them separately). *)
val fct_table :
  Runner.env -> ?incast:bool -> ?since:Bfc_engine.Time.t -> Bfc_net.Flow.t list -> fct_stats list

(** Overall slowdown stats of an arbitrary flow subset. *)
val fct_overall :
  Runner.env -> Bfc_net.Flow.t list -> fct_stats

(** {2 Sketch-backed FCT statistics (streaming runs)}

    Completions feed mergeable quantile sketches — one overall, one per
    size bucket — so FCT stats cost O(buckets) memory however many flows
    complete, at a bounded relative error ([alpha], default 1%) on the
    percentile columns. Per-shard sketches merge exactly, so sharded and
    sequential streaming runs produce identical tables. *)

type fct_sketches

(** [since] mirrors [fct_table]'s warm-up cutoff for the per-size-bucket
    sketches (the overall sketch sees every completed flow, incast
    included, like {!fct_overall}). *)
val sketches_create : ?alpha:float -> ?since:Bfc_engine.Time.t -> unit -> fct_sketches

(** Feed one completed flow's slowdown. *)
val sketches_observe : Runner.env -> fct_sketches -> Bfc_net.Flow.t -> unit

(** Exact merge (associative, commutative) of per-shard sketches. *)
val sketches_merge : into:fct_sketches -> fct_sketches -> unit

(** Same rows as {!fct_table} / {!fct_overall}, estimated from sketches:
    counts exact, avg/percentiles within the sketches' relative-error
    bound. *)
val fct_table_of_sketches : fct_sketches -> fct_stats list

val fct_overall_of_sketches : fct_sketches -> fct_stats

(** Total nonzero buckets held across all sketches (progress reporting /
    memory accounting). *)
val sketches_buckets : fct_sketches -> int

(** The relative-error bound the sketches were created with. *)
val sketches_alpha : fct_sketches -> float

(** Concatenated canonical encodings of every sketch: equal strings iff
    the states are identical, whatever add/merge order produced them
    (the sharded-vs-sequential byte-identity check). *)
val sketches_encode : fct_sketches -> string

(** Short flows (< 3 KB) p99 slowdown; NaN if none. *)
val short_p99 : Runner.env -> ?since:Bfc_engine.Time.t -> Bfc_net.Flow.t list -> float

(** Long flows (> 3 MB... the paper uses > 3 MB; for workloads without such
    flows use the top size bucket) average slowdown; NaN if none. *)
val long_avg : Runner.env -> ?threshold:int -> ?since:Bfc_engine.Time.t -> Bfc_net.Flow.t list -> float

val median_slowdown : Runner.env -> Bfc_net.Flow.t list -> float

(** Periodic sampling of aggregate switch buffer occupancy. Returns the
    sample set (bytes, per switch per sample). *)
val watch_buffers :
  Runner.env -> period:Bfc_engine.Time.t -> Bfc_util.Stats.Sample.t

(** Periodic sampling of the active-flow count of every switch egress port
    (requires [track_active_flows]); [min_gbps] filters to fabric ports. *)
val watch_active_flows :
  Runner.env -> period:Bfc_engine.Time.t -> Bfc_util.Stats.Sample.t

(** Utilization of one directed port over a window: call [start], run, then
    [finish] returns the fraction of capacity used. *)
type util_probe

val utilization_probe : Runner.env -> gid:int -> util_probe

val utilization : util_probe -> float

(** Install a queuing-delay tap on all switches; [filter] selects which
    (switch node id, egress) pairs to record. Returns the sample (us). *)
val watch_queue_delay :
  Runner.env -> filter:(sw:int -> egress:int -> bool) -> Bfc_util.Stats.Sample.t

(** Total pause-watchdog force-resumes across every switch and host NIC. *)
val watchdog_fires : Runner.env -> int

(** Total switch reboots injected so far. *)
val reboots : Runner.env -> int

(** Jain's fairness index over per-flow average throughputs
    ((Σx)² / (n·Σx²)); 1.0 = perfectly fair. Computed over completed flows
    of at least [min_size] bytes (throughput of tiny flows is noise). *)
val jain_fairness :
  Runner.env -> min_size:int -> ?max_size:int -> Bfc_net.Flow.t list -> float
