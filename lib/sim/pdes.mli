(** Conservative parallel discrete-event engine: one simulation sharded
    across domains, synchronized by a lookahead-wide window barrier.

    Each shard is an ordinary {!Bfc_engine.Sim.t} running the untouched
    sequential engine over the subset of devices its shard owns (see
    {!Bfc_net.Partition} and [Runner.setup_shard]). Packets crossing the
    partition cut are captured at send time by the {!Bfc_net.Port}
    remote hook, cloned, and carried over a bounded SPSC
    {!Bfc_engine.Channel} to the coordinator, which inserts them into
    the destination shard's queue at the next window barrier — always
    before the window that could execute them, because every cross-shard
    delivery is at least one cut propagation (the lookahead) after its
    send. Channels are backpressured, never lossy: a full channel stalls
    its producer and wakes the coordinator to drain.

    The coordinator (the calling thread) is the single consumer of every
    channel and the only code that touches a shard's queue between
    windows, so no simulation state is ever accessed concurrently.

    Determinism: barrier insertion sorts messages by (delivery time,
    send time, source port gid, producer sequence); shard-local
    scheduling is the unmodified sequential engine. The differential
    test holds sharded runs to byte-identical results against
    sequential ones. *)

(** Everything the coordinator needs to know about one shard. *)
type shard_ctx = {
  sx_sim : Bfc_engine.Sim.t;
  sx_nodes : Bfc_net.Node.t array;  (** this shard's node records, by id *)
  sx_replicas : Bfc_net.Flow.t Bfc_util.Int_table.t;
      (** flow id -> this shard's flow replica, for re-binding the flow
          pointer of packets arriving over a channel *)
}

type t

(** [create ~shards ~lookahead] spawns one domain per shard (workers park
    immediately; they run only when commanded). [lookahead] must be the
    minimum propagation over the partition cut
    ({!Bfc_net.Partition.lookahead}) and positive. *)
val create : shards:shard_ctx array -> lookahead:Bfc_engine.Time.t -> t

(** [wire t ~partition ~shard ~topo] installs the cross-shard capture
    hook on every cut port of [topo] owned by [shard]. Call once per
    shard with that shard's own topology replica, after [Runner.setup_shard]. *)
val wire : t -> partition:Bfc_net.Partition.t -> shard:int -> topo:Bfc_net.Topology.t -> unit

(** Run every shard to [until] (inclusive), window by window. On return
    all shard clocks equal [until] and every produced message has been
    delivered into its destination queue (as events strictly after
    [until] when beyond it). Re-raises any exception a shard's
    [Sim.run] raised. *)
val run : t -> until:Bfc_engine.Time.t -> unit

(** [drain ?step t ~budget ~done_] mirrors [Runner.drain] over the whole
    sharded simulation: advance in [step] slices (default 100 us) until
    [done_ ()] holds — evaluated only at slice barriers, where all
    shards are parked — or [budget] virtual time has elapsed. *)
val drain :
  ?step:Bfc_engine.Time.t -> t -> budget:Bfc_engine.Time.t -> done_:(unit -> bool) -> unit

(** Current virtual time (all shards agree between windows). *)
val now : t -> Bfc_engine.Time.t

(** Stop and join the worker domains. The shards' simulations remain
    readable afterwards. *)
val shutdown : t -> unit

(** Cross-shard messages carried so far. *)
val messages : t -> int

(** SPSC ring slots those messages crossed in (producers batch up to 256
    messages per slot); [messages / bursts] is the batching win. *)
val bursts : t -> int

(** Window barriers executed so far. *)
val windows : t -> int

(** Full-channel producer retries so far (0 in a well-sized run). *)
val stalls : t -> int

(** Total events executed across all shards. *)
val events_executed : t -> int

(** {2 Ambient shard count}

    Set from the CLI ([--shards]); consulted by [Exp_common.run_std] so
    sharding composes with every experiment and with [Pool] sweeps, the
    same pattern as [Sim.set_default_sched] / [Pool.set_default_jobs]. *)

val set_default_shards : int -> unit

val default_shards : unit -> int
