type target = {
  t_name : string;
  t_what : string;
  t_run : Exp_common.profile -> Exp_common.table list;
}

let all =
  [
    { t_name = "fig1"; t_what = "hardware trends (buffer vs capacity)"; t_run = Exp_motivation.fig1 };
    { t_name = "fig2"; t_what = "byte-weighted flow size CDFs"; t_run = Exp_motivation.fig2 };
    { t_name = "fig3"; t_what = "fair-share rate variability"; t_run = Exp_motivation.fig3 };
    { t_name = "fig4"; t_what = "active flows vs load/speed/policy"; t_run = Exp_motivation.fig4 };
    { t_name = "table1"; t_what = "long flow on a shared 100G link"; t_run = Exp_motivation.table1 };
    { t_name = "mg1"; t_what = "M/G/1-PS active-flow law vs simulation"; t_run = Exp_motivation.mg1 };
    { t_name = "fig30"; t_what = "pause threshold analytic model (App C)"; t_run = Exp_motivation.fig30 };
    { t_name = "fig7"; t_what = "queue length vs pause threshold (testbed)"; t_run = Exp_testbed.fig7 };
    { t_name = "fig8"; t_what = "congestion spreading vs queue assignment"; t_run = Exp_testbed.fig8 };
    { t_name = "fig9"; t_what = "Google 55% + 5% incast"; t_run = Exp_main.fig9 };
    { t_name = "fig10"; t_what = "Google 60%, no incast"; t_run = Exp_main.fig10 };
    { t_name = "fig11"; t_what = "Facebook with and without incast"; t_run = Exp_main.fig11 };
    { t_name = "fig12"; t_what = "load sweep 50-95%"; t_run = Exp_main.fig12 };
    { t_name = "fig13"; t_what = "incast degree sweep"; t_run = Exp_main.fig13 };
    { t_name = "fig14"; t_what = "HPCC-PFC + SFQ/DQA decomposition"; t_run = Exp_main.fig14 };
    { t_name = "fig29"; t_what = "incast flow FCTs (App A.12)"; t_run = Exp_main.fig29 };
    { t_name = "fig15"; t_what = "mice vs elephants microbenchmark (App A.1)"; t_run = Exp_appendix.fig15 };
    { t_name = "fig16"; t_what = "BFC + end-to-end CC (App A.1)"; t_run = Exp_appendix.fig16 };
    { t_name = "fig17"; t_what = "Homa vs BFC-SRF (App A.2)"; t_run = Exp_homa.fig17 };
    { t_name = "table2"; t_what = "core queuing delay, Homa vs Homa-ECMP"; t_run = Exp_homa.table2 };
    { t_name = "fig18"; t_what = "single-receiver SRF accuracy"; t_run = Exp_homa.fig18 };
    { t_name = "fig19"; t_what = "SRF priority inversions under incast"; t_run = Exp_homa.fig19 };
    { t_name = "fig20"; t_what = "four traffic classes (App A.3)"; t_run = Exp_appendix.fig20 };
    { t_name = "fig21"; t_what = "baseline parameter sensitivity (App A.4)"; t_run = Exp_appendix.fig21 };
    { t_name = "fig22"; t_what = "spatial locality (App A.5)"; t_run = Exp_appendix.fig22 };
    { t_name = "fig23"; t_what = "slow start (App A.6)"; t_run = Exp_appendix.fig23 };
    { t_name = "fig24"; t_what = "incast labelling (App A.7)"; t_run = Exp_appendix.fig24 };
    { t_name = "fig25"; t_what = "incremental deployment (App A.8)"; t_run = Exp_appendix.fig25 };
    { t_name = "fig26"; t_what = "cross data center (App A.9)"; t_run = Exp_appendix.fig26 };
    { t_name = "fig27"; t_what = "dynamic vs stochastic assignment (App A.10)"; t_run = Exp_appendix.fig27 };
    { t_name = "fig28"; t_what = "flow-table size (App A.11)"; t_run = Exp_appendix.fig28 };
    { t_name = "deadlock"; t_what = "backpressure-graph analysis (App B)"; t_run = Exp_appendix.deadlock };
    { t_name = "deadlock_sim"; t_what = "live ring deadlock + prevention (App B)"; t_run = Exp_appendix.deadlock_sim };
    { t_name = "lossless"; t_what = "credit-based lossless BFC (Sec 5 extension)"; t_run = Exp_appendix.lossless };
    { t_name = "idempotent"; t_what = "pause/resume loss resilience (Sec 3.3)"; t_run = Exp_appendix.idempotent };
    { t_name = "sticky"; t_what = "ablation: sticky reassignment threshold"; t_run = Exp_ablation.sticky };
    { t_name = "thfactor"; t_what = "ablation: pause threshold scale"; t_run = Exp_ablation.thfactor };
    { t_name = "bitmap"; t_what = "ablation: pause-bitmap refresh cost"; t_run = Exp_ablation.bitmap_cost };
    { t_name = "fairness"; t_what = "ablation: Jain fairness across schemes"; t_run = Exp_ablation.fairness };
    { t_name = "strawman"; t_what = "PFC + deployed e2e schemes vs BFC (Sec 2.2)"; t_run = Exp_ablation.strawman };
  ]

let find name = List.find_opt (fun t -> t.t_name = name) all

let names () = List.map (fun t -> t.t_name) all

let run_and_print ?csv_dir profile t =
  let t0 = Bfc_util.Clock.now_s () in
  Printf.printf "\n################ %s — %s\n%!" t.t_name t.t_what;
  let tables = t.t_run profile in
  List.iter Exp_common.print_table tables;
  (match csv_dir with
  | Some dir ->
    Bfc_util.Fs.ensure_dir dir;
    List.iteri
      (fun i table ->
        let path = Filename.concat dir (Printf.sprintf "%s_%d.csv" t.t_name i) in
        Exp_common.write_csv table ~path)
      tables
  | None -> ());
  Printf.printf "[%s done in %.1fs]\n%!" t.t_name (Bfc_util.Clock.elapsed_s ~since:t0)

let run_parallel ?csv_dir ~jobs profile t =
  let prev = Pool.default_jobs () in
  Pool.set_default_jobs jobs;
  Fun.protect
    ~finally:(fun () -> Pool.set_default_jobs prev)
    (fun () -> run_and_print ?csv_dir profile t)
