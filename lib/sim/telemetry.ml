module Time = Bfc_engine.Time
module Sim = Bfc_engine.Sim
module Packet = Bfc_net.Packet
module Port = Bfc_net.Port
module Topology = Bfc_net.Topology
module Switch = Bfc_switch.Switch
module Host = Bfc_transport.Host
module Nic = Bfc_transport.Nic
module Registry = Bfc_obs.Registry
module Trace = Bfc_obs.Trace
module Series = Bfc_obs.Series

type config = {
  t_enabled : bool;
  t_trace : bool;
  t_trace_capacity : int;
  t_series_period : Time.t option;
}

let default_config =
  { t_enabled = true; t_trace = true; t_trace_capacity = 0; t_series_period = Some (Time.us 10.0) }

type t = {
  reg : Registry.t;
  tr : Trace.t option;
  ser : Series.t option;
  (* node-id -> queues_per_port, for track naming at export *)
  sw_qpp : (int, int) Hashtbl.t;
  host_ids : (int, unit) Hashtbl.t;
}

(* Track encoding on a switch pid: each egress owns [qpp + 1] tids — slot 0
   is the port-level PFC track, slots [1, qpp] are its queues. *)
let sw_tid ~qpp ~egress ~queue = (egress * (qpp + 1)) + queue + 1

let nic_tid ~queue = queue + 1 (* -1 (PFC uplink) -> 0 *)

let registry t = t.reg

let trace t = t.tr

let series t = t.ser

(* ------------------------------------------------------------------ *)

let wire_switches t env trace_ids =
  let sim = Runner.sim env in
  let c_enq = Registry.counter t.reg "sw_enqueues" in
  let c_deq = Registry.counter t.reg "sw_dequeues" in
  let c_drop = Registry.counter t.reg "sw_drops" in
  let c_ecn = Registry.counter t.reg "ecn_marks" in
  let c_pause = Registry.counter t.reg "queue_pauses" in
  let c_resume = Registry.counter t.reg "queue_resumes" in
  let c_tx = Registry.counter t.reg "port_tx_packets" in
  (* open pause spans, keyed by (pid, tid); find_opt/replace/remove only *)
  let pause_start = Hashtbl.create 64 in
  Array.iter
    (fun sw ->
      let pid = Switch.node_id sw in
      let qpp = (Switch.config sw).Switch.queues_per_port in
      Hashtbl.replace t.sw_qpp pid qpp;
      for p = 0 to Switch.n_ports sw - 1 do
        Port.set_on_tx (Switch.port sw p) (fun _pkt -> Registry.incr t.reg c_tx)
      done;
      let hk = Switch.hooks sw in
      let prev_enq = hk.Switch.on_enqueue in
      hk.Switch.on_enqueue <-
        (fun sw ~in_port ~egress ~queue pkt ->
          prev_enq sw ~in_port ~egress ~queue pkt;
          Registry.incr t.reg c_enq);
      let prev_deq = hk.Switch.on_dequeue in
      hk.Switch.on_dequeue <-
        (fun sw ~egress ~queue pkt ->
          prev_deq sw ~egress ~queue pkt;
          Registry.incr t.reg c_deq;
          if pkt.Packet.ecn then Registry.incr t.reg c_ecn;
          match (t.tr, trace_ids) with
          | Some b, Some (id_queued, _, _, _, _) ->
            let ts = pkt.Packet.enq_at in
            Trace.complete b ~ts
              ~dur:(Sim.now sim - ts)
              ~name:id_queued ~pid ~tid:(sw_tid ~qpp ~egress ~queue) ~a:(Packet.flow_id pkt)
              ~b:pkt.Packet.size ()
          | _ -> ());
      let prev_drop = hk.Switch.on_drop in
      hk.Switch.on_drop <-
        (fun sw ~in_port ~egress ~queue pkt ->
          prev_drop sw ~in_port ~egress ~queue pkt;
          Registry.incr t.reg c_drop;
          match (t.tr, trace_ids) with
          | Some b, Some (_, id_drop, _, _, _) ->
            Trace.instant b ~ts:(Sim.now sim) ~name:id_drop ~pid ~tid:(sw_tid ~qpp ~egress ~queue)
              ~a:(Packet.flow_id pkt) ~b:pkt.Packet.size ()
          | _ -> ());
      let prev_qp = hk.Switch.on_queue_pause in
      hk.Switch.on_queue_pause <-
        (fun sw ~egress ~queue ~paused ->
          prev_qp sw ~egress ~queue ~paused;
          Registry.incr t.reg (if paused then c_pause else c_resume);
          match (t.tr, trace_ids) with
          | Some b, Some (_, _, id_pause, id_paused, _) ->
            let tid = sw_tid ~qpp ~egress ~queue in
            let now = Sim.now sim in
            if paused then begin
              Trace.instant b ~ts:now ~name:id_pause ~pid ~tid ~a:queue ();
              Hashtbl.replace pause_start (pid, tid) now
            end
            else begin
              match Hashtbl.find_opt pause_start (pid, tid) with
              | Some start ->
                Hashtbl.remove pause_start (pid, tid);
                Trace.complete b ~ts:start ~dur:(now - start) ~name:id_paused ~pid ~tid ~a:queue
                  ()
              | None -> ()
            end
          | _ -> ()))
    (Runner.switches env)

let wire_nics t env trace_ids =
  let sim = Runner.sim env in
  let c_pause = Registry.counter t.reg "nic_pauses" in
  let c_resume = Registry.counter t.reg "nic_resumes" in
  Array.iter
    (fun hid ->
      Hashtbl.replace t.host_ids hid ();
      let nic = Host.nic (Runner.host env hid) in
      Nic.set_on_pause nic (fun ~queue ~paused ->
          Registry.incr t.reg (if paused then c_pause else c_resume);
          match (t.tr, trace_ids) with
          | Some b, Some (_, _, _, _, id_nic) ->
            Trace.instant b ~ts:(Sim.now sim) ~name:id_nic ~pid:hid ~tid:(nic_tid ~queue) ~a:queue
              ~b:(if paused then 1 else 0) ()
          | _ -> ()))
    (Topology.hosts (Runner.topo env))

let wire_gauges t env =
  let g name f = Registry.gauge t.reg name f in
  let switches = Runner.switches env in
  let hosts = Topology.hosts (Runner.topo env) in
  let nics = Array.map (fun hid -> Host.nic (Runner.host env hid)) hosts in
  let sum_over arr f = Array.fold_left (fun acc x -> acc + f x) 0 arr in
  g "buffer_bytes" (fun () -> float_of_int (sum_over switches Switch.buffer_used));
  g "buffer_bytes_max" (fun () ->
      float_of_int (Array.fold_left (fun m sw -> max m (Switch.buffer_used sw)) 0 switches));
  g "sw_paused_queues" (fun () -> float_of_int (sum_over switches Switch.paused_queues));
  g "nic_paused_queues" (fun () -> float_of_int (sum_over nics Nic.paused_queues));
  g "nic_backlog_bytes" (fun () -> float_of_int (sum_over nics Nic.backlog));
  g "active_flows" (fun () ->
      float_of_int
        (sum_over switches (fun sw ->
             let n = ref 0 in
             for e = 0 to Switch.n_ports sw - 1 do
               n := !n + Switch.active_flows sw ~egress:e
             done;
             !n)));
  g "flows_in_flight" (fun () -> float_of_int (Runner.injected env - Runner.completed env));
  g "flows_completed" (fun () -> float_of_int (Runner.completed env));
  let pool = Runner.pool env in
  g "pool_free" (fun () -> float_of_int (Packet.Pool.free_count pool));
  g "pool_allocated" (fun () -> float_of_int (Packet.Pool.allocated pool));
  g "pool_recycled" (fun () -> float_of_int (Packet.Pool.recycled pool));
  let sim = Runner.sim env in
  g "heap_live" (fun () -> float_of_int (Sim.profile sim).Sim.p_live);
  g "heap_hwm" (fun () -> float_of_int (Sim.profile sim).Sim.p_heap_hwm);
  g "events_executed" (fun () -> float_of_int (Runner.events_executed env));
  (* Process-level GC/heap residency: lets long runs watch for metric-side
     memory growth (the point of streaming mode) from the same series as
     the simulation gauges. quick_stat is cheap and exact for these
     fields. *)
  g "gc_heap_words" (fun () -> float_of_int (Gc.quick_stat ()).Gc.heap_words);
  g "gc_top_heap_words" (fun () -> float_of_int (Gc.quick_stat ()).Gc.top_heap_words);
  g "gc_minor_collections" (fun () -> float_of_int (Gc.quick_stat ()).Gc.minor_collections);
  g "gc_major_collections" (fun () -> float_of_int (Gc.quick_stat ()).Gc.major_collections);
  g "gc_major_words" (fun () -> (Gc.quick_stat ()).Gc.major_words)

let attach ?(config = default_config) env =
  let reg = Registry.create ~enabled:config.t_enabled () in
  let tr =
    if config.t_enabled && config.t_trace then Some (Trace.create ~capacity:config.t_trace_capacity ())
    else None
  in
  let t = { reg; tr; ser = None; sw_qpp = Hashtbl.create 16; host_ids = Hashtbl.create 64 } in
  if not config.t_enabled then t
  else begin
    let trace_ids =
      Option.map
        (fun b ->
          ( ( Trace.intern b ~akey:"flow" ~bkey:"bytes" "queued",
              Trace.intern b ~akey:"flow" ~bkey:"bytes" "drop",
              Trace.intern b ~akey:"queue" "pause",
              Trace.intern b ~akey:"queue" "paused",
              Trace.intern b ~akey:"queue" ~bkey:"paused" "nic_pause" ) ))
        tr
    in
    wire_switches t env trace_ids;
    wire_nics t env trace_ids;
    wire_gauges t env;
    let ser =
      match config.t_series_period with
      | None -> None
      | Some period ->
        let s = Series.create reg in
        let sim = Runner.sim env in
        let _ticker = Sim.every sim ~period (fun () -> Series.sample s ~now:(Sim.now sim)) in
        Some s
    in
    { t with ser }
  end

(* ------------------------------------------------------------------ *)
(* Live progress: one line per sim-time period so long streaming runs are
   observable from a terminal while they execute. Wall time comes from the
   sanctioned Bfc_util.Clock; events/sec is measured over the interval
   since the previous report. *)

let progress_reporter ?(period = Time.ms 1.0) ?sketch_buckets env oc =
  let sim = Runner.sim env in
  let last_wall = ref (Bfc_util.Clock.now_s ()) in
  let last_events = ref (Runner.events_executed env) in
  ignore
    (Sim.every sim ~period (fun () ->
         let wall = Bfc_util.Clock.now_s () in
         let events = Runner.events_executed env in
         let dt = wall -. !last_wall in
         let eps =
           if dt > 0.0 then float_of_int (events - !last_events) /. dt /. 1e6 else 0.0
         in
         last_wall := wall;
         last_events := events;
         let heap_mw = float_of_int (Gc.quick_stat ()).Gc.heap_words /. 1e6 in
         let sk =
           match sketch_buckets with
           | Some f -> Printf.sprintf " sketch_buckets=%d" (f ())
           | None -> ""
         in
         Printf.fprintf oc
           "progress: t=%.3fms events=%d (%.2fM ev/s) flows=%d/%d%s major_heap=%.1fMw\n%!"
           (float_of_int (Sim.now sim) /. 1e6)
           events eps (Runner.completed env) (Runner.injected env) sk heap_mw))

(* ------------------------------------------------------------------ *)
(* Export *)

let process_name t ~pid =
  if Hashtbl.mem t.sw_qpp pid then Some (Printf.sprintf "switch %d" pid)
  else if Hashtbl.mem t.host_ids pid then Some (Printf.sprintf "host %d" pid)
  else None

let track_name t ~pid ~tid =
  match Hashtbl.find_opt t.sw_qpp pid with
  | Some qpp ->
    let egress = tid / (qpp + 1) and slot = tid mod (qpp + 1) in
    if slot = 0 then Some (Printf.sprintf "eg%d/pfc" egress)
    else Some (Printf.sprintf "eg%d/q%d" egress (slot - 1))
  | None ->
    if Hashtbl.mem t.host_ids pid then
      if tid = 0 then Some "nic/pfc" else Some (Printf.sprintf "nic/q%d" (tid - 1))
    else None

let write_trace t oc =
  match t.tr with
  | None -> ()
  | Some b ->
    Trace.to_chrome
      ~process_name:(fun ~pid -> process_name t ~pid)
      ~track_name:(fun ~pid ~tid -> track_name t ~pid ~tid)
      b oc

let write_jsonl t oc =
  match t.tr with
  | None -> ()
  | Some b -> Trace.to_jsonl b oc

let write_series t oc =
  match t.ser with
  | None -> ()
  | Some s -> Series.to_csv s oc

let counters_json t = Registry.to_json t.reg

let engine_profile_json env =
  let p = Sim.profile (Runner.sim env) in
  Printf.sprintf
    "{\"executed\":%d,\"typed\":%d,\"one_shot\":%d,\"reusable\":%d,\"ticker\":%d,\"heap_hwm\":%d,\"heap_capacity\":%d,\"rearms\":%d,\"cancels\":%d,\"live\":%d}"
    p.Sim.p_executed p.Sim.p_typed p.Sim.p_one_shot p.Sim.p_reusable p.Sim.p_ticker p.Sim.p_heap_hwm
    p.Sim.p_heap_capacity p.Sim.p_rearms p.Sim.p_cancels p.Sim.p_live
