(* Appendix experiments: Fig. 15/16 (limits of BFC + end-to-end CC),
   Fig. 20 (traffic classes), Fig. 21 (parameter sensitivity), Fig. 22
   (spatial locality), Fig. 23 (slow start), Fig. 24 (incast labelling),
   Fig. 25 (incremental deployment), Fig. 26 (cross-DC), Fig. 27
   (stochastic vs dynamic assignment), Fig. 28 (flow-table size) and the
   App. B deadlock analysis. *)

module Time = Bfc_engine.Time
module Sim = Bfc_engine.Sim
module Topology = Bfc_net.Topology
module Flow = Bfc_net.Flow
module Dist = Bfc_workload.Dist
module Traffic = Bfc_workload.Traffic
module Arrivals = Bfc_workload.Arrivals
module Sample = Bfc_util.Stats.Sample
module Dataplane = Bfc_core.Dataplane
open Exp_common

(* ------------------------------------------------------------------ *)
(* Fig. 15: mice FCT vs number of long-running elephants.               *)

let fig15 profile =
  let elephant_counts =
    match profile with Smoke -> [ 16 ] | Quick -> [ 8; 32; 64; 128 ] | Paper -> [ 8; 16; 32; 64; 128; 256 ]
  in
  let schemes =
    match profile with
    | Smoke -> [ Scheme.bfc ]
    | _ ->
      [
        Scheme.bfc;
        Scheme.bfc_q 128;
        Scheme.Bfc { Scheme.bfc_default with Scheme.delay_cc = true };
        Scheme.Ideal_fq;
      ]
  in
  let combos =
    List.concat_map (fun s -> List.map (fun n -> (s, n)) elephant_counts) schemes
  in
  let rows =
    sweep
      (List.map
         (fun (scheme, n_eleph) ->
           pt (Printf.sprintf "fig15:%s:%d" (Scheme.name scheme) n_eleph) (fun () ->
          let sim = Sim.create () in
          let spines, tors, hosts_per_tor = clos_scale profile in
          let cl = Topology.clos sim ~spines ~tors ~hosts_per_tor ~gbps:100.0 ~prop:(Time.us 1.0) in
          let env = Runner.setup ~topo:cl.Topology.t ~scheme ~params:Runner.default_params in
          let hosts = cl.Topology.cl_hosts in
          let recv_a = hosts.(0) and recv_b = hosts.(1) in
          let ids = ref 0 in
          (* elephants to A from round-robin senders outside A's rack *)
          let senders =
            Array.of_list
              (List.filter
                 (fun h -> cl.Topology.rack_of h <> cl.Topology.rack_of recv_a)
                 (Array.to_list hosts))
          in
          let eleph_pairs =
            Array.init n_eleph (fun i -> (senders.(i mod Array.length senders), recv_a))
          in
          let elephants = Traffic.long_lived ~pairs:eleph_pairs ~ids () in
          let dur =
            match profile with Smoke -> Time.us 400.0 | Quick -> Time.ms 2.0 | Paper -> Time.ms 10.0
          in
          let mice dst seed =
            Traffic.generate
              {
                Traffic.hosts = senders;
                dist = Dist.fixed 1_000;
                arrivals = Arrivals.Poisson;
                load = 0.03;
                ref_capacity_gbps = 100.0;
                core_fraction = 1.0;
                matrix = Traffic.To_one dst;
                duration = dur;
                seed;
                prio_classes = 1;
              }
              ~ids
          in
          let direct = mice recv_a 21 and indirect = mice recv_b 22 in
          Runner.inject env (Traffic.merge [ elephants; direct; indirect ]);
          Runner.run env ~until:dur;
          Runner.drain env ~budget:(2 * dur);
          [
            Scheme.name scheme;
            string_of_int n_eleph;
            cell (Metrics.median_slowdown env direct);
            cell (Metrics.median_slowdown env indirect);
          ]))
         combos)
  in
  [
    {
      title = "Fig 15: median mice slowdown vs number of elephants to one receiver";
      header = [ "scheme"; "elephants"; "direct mice p50"; "indirect mice p50" ];
      rows;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Fig. 16: BFC vs BFC+CC on the Fig. 11 setup.                         *)

let fig16 profile =
  let cc = Scheme.Bfc { Scheme.bfc_default with Scheme.delay_cc = true } in
  let combos =
    List.concat_map
      (fun (tag, incast) -> List.map (fun s -> (tag, incast, s)) [ Scheme.bfc; cc ])
      [ (" +incast", Some default_incast); (" no-incast", None) ]
  in
  let results =
    sweep
      (List.map
         (fun (tag, incast, scheme) ->
           pt ("fig16:" ^ Scheme.name scheme ^ tag) (fun () ->
               let s = { (std profile scheme) with sp_incast = incast } in
               let r = run_std s in
               let name = Scheme.name scheme ^ tag in
               ( List.map (fun row -> name :: row) (fct_rows r),
                 [ name; cell (buffer_p99 r /. 1e6) ] )))
         combos)
  in
  [
    {
      title = "Fig 16: BFC vs BFC+CC (App A.1), FB workload — p99 slowdown";
      header = [ "scheme"; "bucket"; "n"; "avg"; "p50"; "p95"; "p99" ];
      rows = List.concat_map fst results;
    };
    {
      title = "Fig 16b: buffer";
      header = [ "scheme"; "p99 buffer(MB)" ];
      rows = List.map snd results;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Fig. 20: four traffic classes.                                       *)

let fig20 profile =
  let schemes =
    match profile with
    | Smoke -> [ Scheme.bfc ]
    | _ -> [ Scheme.bfc; Scheme.bfc_q 128; Scheme.hpcc; Scheme.dctcp ]
  in
  let classes = 4 in
  let rows =
    List.concat
      (sweep
         (List.map
            (fun scheme ->
              pt ("fig20:" ^ Scheme.name scheme) (fun () ->
                  let scheme =
                    match scheme with
                    | Scheme.Bfc o -> Scheme.Bfc { o with Scheme.classes }
                    | s -> s
                  in
                  let s = { (std profile scheme) with sp_classes = classes } in
                  let r = run_std s in
                  List.init classes (fun c ->
                      let sub = List.filter (fun f -> f.Flow.prio_class = c) r.flows in
                      let short = Metrics.short_p99 r.env ~since:r.measure_from sub in
                      let all = Metrics.fct_overall r.env sub in
                      [
                        Scheme.name scheme;
                        string_of_int c;
                        string_of_int all.Metrics.count;
                        cell short;
                        cell all.Metrics.avg;
                        cell all.Metrics.p99;
                      ])))
            schemes))
  in
  [
    {
      title = "Fig 20: 4 priority classes (FB 60%, 15% each) — per-class slowdown";
      header = [ "scheme"; "class"; "n"; "short p99"; "overall avg"; "overall p99" ];
      rows;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Fig. 21: parameter sensitivity of the baselines.                     *)

let fig21 profile =
  let summarize name r =
    [
      name;
      cell (Metrics.short_p99 r.env ~since:r.measure_from r.flows);
      cell (Metrics.long_avg r.env ~since:r.measure_from r.flows);
      cell (Metrics.fct_overall r.env r.flows).Metrics.p99;
    ]
  in
  (* one flat point list across the three parameter families *)
  let hpcc_pts =
    List.map
      (fun eta ->
        pt (Printf.sprintf "fig21:hpcc:%.2f" eta) (fun () ->
            let s = std profile (Scheme.Hpcc { eta; max_stage = 5 }) in
            summarize (Printf.sprintf "HPCC eta=%.2f" eta) (run_std s)))
      (match profile with Smoke -> [ 0.95 ] | _ -> [ 0.90; 0.95; 0.98 ])
  in
  let dctcp_pts =
    List.map
      (fun (kmin, kmax) ->
        pt (Printf.sprintf "fig21:dctcp:%d" kmin) (fun () ->
            let s =
              {
                (std profile Scheme.dctcp) with
                sp_params = (fun p -> { p with Runner.ecn_kmin = kmin; ecn_kmax = kmax });
              }
            in
            summarize (Printf.sprintf "DCTCP K=%dK/%dK" (kmin / 1000) (kmax / 1000)) (run_std s)))
      (match profile with
      | Smoke -> [ (100_000, 400_000) ]
      | _ -> [ (25_000, 100_000); (100_000, 400_000); (400_000, 1_600_000) ])
  in
  let xpass_pts =
    List.map
      (fun (target_loss, w_init) ->
        pt (Printf.sprintf "fig21:xpass:%g:%g" target_loss w_init) (fun () ->
            let s = std profile (Scheme.Expresspass { target_loss; w_init; w_max = 0.5 }) in
            summarize (Printf.sprintf "xpass loss=%.2f w0=%.3f" target_loss w_init) (run_std s)))
      (match profile with
      | Smoke -> [ (0.1, 0.0625) ]
      | _ -> [ (0.02, 0.0625); (0.1, 0.0625); (0.3, 0.0625); (0.1, 0.5) ])
  in
  let rows = sweep (hpcc_pts @ dctcp_pts @ xpass_pts) in
  [
    {
      title = "Fig 21: parameter sensitivity (FB 60%, no incast)";
      header = [ "config"; "short p99"; "long avg"; "overall p99" ];
      rows;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Fig. 22: spatial locality.                                           *)

let fig22 profile =
  let schemes =
    match profile with
    | Smoke -> [ Scheme.bfc ]
    | _ -> [ Scheme.bfc; Scheme.hpcc; Scheme.dctcp; Scheme.Ideal_fq ]
  in
  let combos =
    List.concat_map
      (fun (tag, incast) -> List.map (fun s -> (tag, incast, s)) schemes)
      (match profile with
      | Smoke -> [ (" no-incast", None) ]
      | _ -> [ (" +incast", Some default_incast); (" no-incast", None) ])
  in
  let rows =
    List.concat
      (sweep
         (List.map
            (fun (tag, incast, scheme) ->
              pt ("fig22:" ^ Scheme.name scheme ^ tag) (fun () ->
                  let s =
                    { (std profile scheme) with sp_incast = incast; sp_locality = Some 0.5 }
                  in
                  let r = run_std s in
                  List.map (fun row -> (Scheme.name scheme ^ tag) :: row) (fct_rows r)))
            combos))
  in
  [
    {
      title = "Fig 22: rack-local traffic matrix (equalized link load) — FCT slowdown";
      header = [ "scheme"; "bucket"; "n"; "avg"; "p50"; "p95"; "p99" ];
      rows;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Fig. 23: slow start vs line-rate start.                               *)

let fig23 profile =
  let combos =
    List.concat_map
      (fun (tag, incast) ->
        List.map (fun v -> (tag, incast, v)) [ ("DCTCP", false); ("DCTCP+SS", true) ])
      (match profile with
      | Smoke -> [ (" no-incast", None) ]
      | _ -> [ (" +incast", Some default_incast); (" no-incast", None) ])
  in
  let rows =
    List.concat
      (sweep
         (List.map
            (fun (tag, incast, (name, slow_start)) ->
              pt ("fig23:" ^ name ^ tag) (fun () ->
                  let s =
                    { (std profile (Scheme.Dctcp { slow_start })) with sp_incast = incast }
                  in
                  let r = run_std s in
                  List.map (fun row -> (name ^ tag) :: row) (fct_rows r)))
            combos))
  in
  [
    {
      title = "Fig 23: DCTCP line-rate start vs slow start (FB) — slowdown (p50 in col p50)";
      header = [ "scheme"; "bucket"; "n"; "avg"; "p50"; "p95"; "p99" ];
      rows;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Fig. 24: incast labelling.                                           *)

let fig24 profile =
  let degrees =
    match profile with Smoke -> [ 20 ] | Quick -> [ 10; 100; 400; 800 ] | Paper -> [ 10; 100; 500; 2000 ]
  in
  let combos =
    List.concat_map
      (fun (name, scheme) -> List.map (fun d -> (name, scheme, d)) degrees)
      [
        ("BFC + Flow FQ", Scheme.bfc);
        ("BFC + IncastLabel", Scheme.Bfc { Scheme.bfc_default with Scheme.incast_label = true });
      ]
  in
  let rows =
    sweep
      (List.map
         (fun (name, scheme, degree) ->
           pt (Printf.sprintf "fig24:%s:%d" name degree) (fun () ->
               let s =
                 { (std profile scheme) with sp_incast = Some { default_incast with degree } }
               in
               let r = run_std s in
               let inc_stats =
                 let sample = Sample.create () in
                 List.iter
                   (fun f ->
                     if Flow.complete f && f.Flow.is_incast then
                       Sample.add sample (Runner.slowdown r.env f))
                   r.flows;
                 if Sample.is_empty sample then nan else Sample.percentile sample 99.0
               in
               [
                 name;
                 string_of_int degree;
                 cell (Metrics.long_avg r.env ~since:r.measure_from r.flows);
                 cell (Metrics.short_p99 r.env ~since:r.measure_from r.flows);
                 cell inc_stats;
               ]))
         combos)
  in
  [
    {
      title = "Fig 24: incast labelling (App A.7) vs incast degree (FB, 55%+5%)";
      header = [ "scheme"; "degree"; "long avg"; "short p99"; "incast p99" ];
      rows;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Fig. 25: incremental deployment.                                     *)

let fig25 profile =
  let schemes =
    [
      ("BFC", Scheme.bfc);
      ( "BFC - NIC",
        Scheme.Bfc
          {
            Scheme.bfc_default with
            Scheme.nic_respect_pause = false;
            window_cap = Some 1.0;
          } );
      ("BFC + sampling", Scheme.Bfc { Scheme.bfc_default with Scheme.sampling = 0.5 });
    ]
  in
  let results =
    sweep
      (List.map
         (fun (name, scheme) ->
           pt ("fig25:" ^ name) (fun () ->
               let s = { (std profile scheme) with sp_incast = Some default_incast } in
               let r = run_std s in
               ( List.map (fun row -> name :: row) (fct_rows r),
                 [ name; cell (buffer_p99 r /. 1e6); string_of_int (Runner.total_drops r.env) ]
               )))
         schemes)
  in
  [
    {
      title = "Fig 25: incremental deployment (FB + incast) — FCT slowdown";
      header = [ "scheme"; "bucket"; "n"; "avg"; "p50"; "p95"; "p99" ];
      rows = List.concat_map fst results;
    };
    {
      title = "Fig 25b: buffer & drops";
      header = [ "scheme"; "p99 buffer(MB)"; "drops" ];
      rows = List.map snd results;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Fig. 26: cross data center.                                          *)

let fig26 profile =
  let schemes =
    match profile with
    | Smoke -> [ Scheme.bfc ]
    | _ -> [ Scheme.bfc; Scheme.hpcc; Scheme.dcqcn ]
  in
  let rows =
    sweep
      (List.map
         (fun scheme ->
           pt ("fig26:" ^ Scheme.name scheme) (fun () ->
        let sim = Sim.create () in
        (* the WAN must be a small fraction of the DC core (the paper: 200G
           vs a 3.2T core) or the cores, not the schemes, are the limit *)
        let spines, tors, hosts_per_tor =
          match profile with Smoke -> (2, 2, 2) | Quick -> (4, 4, 8) | Paper -> (4, 8, 8)
        in
        let x =
          Topology.cross_dc sim ~spines ~tors ~hosts_per_tor ~gbps:100.0 ~prop:(Time.us 1.0)
            ~wan_gbps:200.0 ~wan_prop:(Time.us 200.0)
        in
        let env = Runner.setup ~topo:x.Topology.x ~scheme ~params:Runner.default_params in
        let dur =
          match profile with Smoke -> Time.ms 1.5 | Quick -> Time.ms 5.0 | Paper -> Time.ms 25.0
        in
        let ids = ref 0 in
        (* "ample parallelism" (App. A.9): enough flows that their combined
           intra-DC fair shares exceed the WAN capacity *)
        let n_inter = match profile with Smoke -> 4 | Quick -> 24 | Paper -> 24 in
        let h1 = x.Topology.dc1.Topology.xc_hosts and h2 = x.Topology.dc2.Topology.xc_hosts in
        let inter =
          Traffic.long_lived
            ~pairs:
              (Array.init (2 * n_inter) (fun i ->
                   if i < n_inter then (h1.(i mod Array.length h1), h2.(i mod Array.length h2))
                   else (h2.(i mod Array.length h2), h1.(i mod Array.length h1))))
            ~ids ()
        in
        let intra hosts seed =
          Traffic.generate
            {
              Traffic.hosts;
              dist = Dist.fb_hadoop;
              arrivals = Arrivals.lognormal_default;
              load = 0.6;
              ref_capacity_gbps = float_of_int (spines * tors) *. 100.0;
              core_fraction =
                1.0
                -. float_of_int (hosts_per_tor - 1)
                   /. float_of_int (Array.length hosts - 1);
              matrix = Traffic.Uniform;
              duration = dur;
              seed;
              prio_classes = 1;
            }
            ~ids
        in
        let intra1 = intra h1 31 and intra2 = intra h2 32 in
        let probe = Metrics.utilization_probe env ~gid:x.Topology.interconnect_gid in
        Runner.inject env (Traffic.merge [ inter; intra1; intra2 ]);
        Runner.run env ~until:dur;
        let util = Metrics.utilization probe in
        let intra_flows = intra1 @ intra2 in
        [
          Scheme.name scheme;
          cell (Metrics.short_p99 env ~since:(dur / 5) intra_flows);
          cell (Metrics.fct_overall env intra_flows).Metrics.p99;
          cell (util *. 100.0);
        ]))
         schemes)
  in
  [
    {
      title = "Fig 26: cross-DC (200G WAN, 400us base RTT) — intra-DC tails & WAN utilization";
      header = [ "scheme"; "intra short p99"; "intra overall p99"; "interconnect util (%)" ];
      rows;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Fig. 27: dynamic vs stochastic queue assignment.                     *)

let fig27 profile =
  let results =
    sweep
      (List.map
         (fun (name, scheme) ->
           pt ("fig27:" ^ name) (fun () ->
               let s = { (std profile scheme) with sp_incast = Some default_incast } in
               let r = run_std s in
               let collisions, randoms, assigns =
                 Array.fold_left
                   (fun (c, ra, a) dp ->
                     let st = Dataplane.stats dp in
                     ( c + st.Dataplane.queue_collisions,
                       ra + st.Dataplane.random_assignments,
                       a + st.Dataplane.assignments ))
                   (0, 0, 0) (Runner.dataplanes r.env)
               in
               ( List.map (fun row -> name :: row) (fct_rows r),
                 [
                   name;
                   string_of_int assigns;
                   string_of_int collisions;
                   string_of_int randoms;
                 ] )))
         [
           ("BFC + Dynamic", Scheme.bfc);
           ( "BFC + Stochastic",
             Scheme.Bfc { Scheme.bfc_default with Scheme.assignment = Bfc_core.Dqa.Stochastic }
           );
         ])
  in
  [
    {
      title = "Fig 27: dynamic vs stochastic queue assignment (FB + incast) — slowdown";
      header = [ "scheme"; "bucket"; "n"; "avg"; "p50"; "p95"; "p99" ];
      rows = List.concat_map fst results;
    };
    {
      title = "Fig 27b: queue collisions";
      header = [ "scheme"; "assignments"; "collisions"; "forced-random" ];
      rows = List.map snd results;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Fig. 28: flow-table size.                                            *)

let fig28 profile =
  let mults = match profile with Smoke -> [ 100 ] | _ -> [ 10; 25; 50; 100; 400 ] in
  let rows =
    sweep
      (List.map
         (fun table_mult ->
           pt (Printf.sprintf "fig28:%d" table_mult) (fun () ->
               let scheme = Scheme.Bfc { Scheme.bfc_default with Scheme.table_mult } in
               let s = { (std profile scheme) with sp_incast = Some default_incast } in
               let r = run_std s in
               [
                 Printf.sprintf "%dx" table_mult;
                 cell (Metrics.short_p99 r.env ~since:r.measure_from r.flows);
                 cell (Metrics.fct_overall r.env r.flows).Metrics.p99;
                 cell (Metrics.long_avg r.env ~since:r.measure_from r.flows);
               ]))
         mults)
  in
  [
    {
      title = "Fig 28: flow-table size (slots per port / queues) — FB + incast";
      header = [ "table size"; "short p99"; "overall p99"; "long avg" ];
      rows;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Sec 5 extension: credit-based lossless BFC under extreme incast.     *)

let lossless profile =
  let degree = match profile with Smoke -> 50 | Quick -> 800 | Paper -> 2000 in
  let rows =
    sweep
      (List.map
         (fun (name, scheme) ->
           pt ("lossless:" ^ name) (fun () ->
        let s =
          {
            (std profile scheme) with
            sp_dist = Dist.fb_hadoop;
            sp_incast = Some { default_incast with degree };
          }
        in
        let r = run_std s in
        let sent =
          Array.fold_left (fun a sw -> a + Bfc_switch.Switch.tx_packets sw) 0
            (Runner.switches r.env)
        in
        let drops = Runner.total_drops r.env in
        let drop_pct = 100.0 *. float_of_int drops /. float_of_int (max 1 sent) in
        [
          name;
          string_of_int degree;
          string_of_int drops;
          cell drop_pct;
          cell (Sample.max r.buffers /. 1e6);
          cell (Metrics.short_p99 r.env ~since:r.measure_from r.flows);
          Printf.sprintf "%d/%d" (Runner.completed r.env) (Runner.injected r.env);
        ]))
         [
           ("BFC (12MB buffer)", Scheme.bfc);
           ("BFC-credit (lossless)", Scheme.bfc_credit);
         ])
  in
  [
    {
      title =
        "Sec 5: losslessness under extreme incast — pause/resume BFC vs the credit variant";
      header =
        [ "scheme"; "incast degree"; "data drops"; "drop %"; "peak buffer(MB)"; "short p99"; "completed" ];
      rows;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Sec 3.3 "Idempotent state": losing pause/resume packets on the wire.
   Without the periodic bitmap a lost Resume can strand a queue paused
   forever; with it, state converges. *)

let idempotent profile =
  let run name ~loss ~bitmap =
    let scheme =
      Scheme.Bfc
        {
          Scheme.bfc_default with
          Scheme.bitmap_period = (if bitmap then Some (Time.us 20.0) else None);
        }
    in
    let s =
      {
        (std profile scheme) with
        sp_dist = Dist.google;
        sp_load = 0.7;
        sp_incast = Some { default_incast with degree = 20 };
      }
    in
    (* replicate run_std but with wire faults on control packets *)
    let sim = Sim.create () in
    let spines, tors, hosts_per_tor = clos_scale s.sp_profile in
    let cl = Topology.clos sim ~spines ~tors ~hosts_per_tor ~gbps:100.0 ~prop:(Time.us 1.0) in
    let env =
      Runner.setup ~topo:cl.Topology.t ~scheme ~params:{ Runner.default_params with seed = 3 }
    in
    let rng = Bfc_util.Rng.create 424_242 in
    if loss > 0.0 then
      for g = 0 to Topology.total_ports cl.Topology.t - 1 do
        Bfc_net.Port.set_fault
          (Topology.port_by_gid cl.Topology.t g)
          (fun pkt ->
            match pkt.Bfc_net.Packet.kind with
            | Bfc_net.Packet.Pause | Bfc_net.Packet.Resume -> Bfc_util.Rng.float rng < loss
            | _ -> false)
      done;
    let dur = duration s.sp_profile ~dist:s.sp_dist in
    let hosts = cl.Topology.cl_hosts in
    let core_gbps = float_of_int (spines * tors) *. 100.0 in
    let ids = ref 0 in
    let inc =
      Traffic.generate_incast
        {
          Traffic.i_hosts = hosts;
          degree = 20;
          agg_size = int_of_float (20e6 *. (core_gbps /. 6400.0));
          period =
            Traffic.period_for_load
              ~agg_size:(int_of_float (20e6 *. (core_gbps /. 6400.0)))
              ~frac:0.05 ~ref_capacity_gbps:core_gbps;
          i_duration = dur;
          i_seed = 77;
        }
        ~ids
    in
    let bg =
      Traffic.generate
        {
          Traffic.hosts;
          dist = Dist.google;
          arrivals = Arrivals.lognormal_default;
          load = 0.65;
          ref_capacity_gbps = core_gbps;
          core_fraction =
            1.0 -. (float_of_int (hosts_per_tor - 1) /. float_of_int (Array.length hosts - 1));
          matrix = Traffic.Uniform;
          duration = dur;
          seed = 3;
          prio_classes = 1;
        }
        ~ids
    in
    let flows = Traffic.merge [ bg; inc ] in
    Runner.inject env flows;
    Runner.run env ~until:dur;
    Runner.drain env ~budget:(8 * dur);
    let lost =
      let acc = ref 0 in
      for g = 0 to Topology.total_ports cl.Topology.t - 1 do
        acc := !acc + Bfc_net.Port.faults_injected (Topology.port_by_gid cl.Topology.t g)
      done;
      !acc
    in
    let stuck =
      Array.fold_left
        (fun a dp -> a + Bfc_core.Pause_counter.total (Bfc_core.Dataplane.pause_counters dp))
        0 (Runner.dataplanes env)
    in
    ignore stuck;
    [
      name;
      cell (loss *. 100.0);
      string_of_int lost;
      Printf.sprintf "%d/%d" (Runner.completed env) (Runner.injected env);
      cell (Metrics.short_p99 env ~since:(dur / 10) flows);
    ]
  in
  let rows =
    sweep
      [
        pt "idempotent:none" (fun () -> run "no loss" ~loss:0.0 ~bitmap:false);
        pt "idempotent:loss" (fun () ->
            run "20% ctrl loss, no refresh" ~loss:0.2 ~bitmap:false);
        pt "idempotent:loss+bitmap" (fun () ->
            run "20% ctrl loss + bitmap refresh" ~loss:0.2 ~bitmap:true);
      ]
  in
  [
    {
      title =
        "Sec 3.3 idempotent state: pause/resume loss on the wire, with/without bitmap refresh";
      header = [ "config"; "ctrl loss %"; "ctrl pkts lost"; "completed"; "short p99" ];
      rows;
    };
  ]

(* ------------------------------------------------------------------ *)
(* App. B live: actually deadlock a ring, then prevent it.              *)

let ring_topology sim n =
  let b = Topology.Builder.create sim in
  let sws = Array.init n (fun i -> Topology.Builder.add_switch b ~name:(Printf.sprintf "r%d" i)) in
  let hosts =
    Array.map
      (fun sw ->
        let h = Topology.Builder.add_host b ~name:(Printf.sprintf "rh%d" sw) in
        Topology.Builder.link b h sw ~gbps:100.0 ~prop:(Time.us 1.0);
        h)
      sws
  in
  for i = 0 to n - 1 do
    Topology.Builder.link b sws.(i) sws.((i + 1) mod n) ~gbps:100.0 ~prop:(Time.us 1.0)
  done;
  (Topology.Builder.finish b, hosts)

let deadlock_sim _profile =
  let run ~filter =
    let sim = Sim.create () in
    let n = 5 in
    let topo, hosts = ring_topology sim n in
    (* 2 queues per port = one shared data queue: the PFC-like regime in
       which cyclic buffer dependencies produce real head-of-line deadlock *)
    let scheme = Scheme.Bfc { Scheme.bfc_default with Scheme.queues = 2 } in
    let env =
      Runner.setup ~topo ~scheme
        ~params:{ Runner.default_params with deadlock_filter = filter }
    in
    (* every host sends sustained bursts one and two hops around the ring:
       overload on every ring link, in a cyclic pattern *)
    let ids = ref 0 in
    let flows =
      List.concat_map
        (fun i ->
          List.map
            (fun hop ->
              let id = !ids in
              incr ids;
              Flow.make ~id ~src:hosts.(i) ~dst:hosts.((i + hop) mod n) ~size:5_000_000
                ~arrival:0 ())
            [ 1; 2 ])
        (List.init n (fun i -> i))
    in
    Runner.inject env flows;
    Runner.run env ~until:(Time.ms 4.0);
    Runner.drain env ~budget:(Time.ms 40.0);
    let stuck =
      Array.fold_left
        (fun a dp -> a + Bfc_core.Pause_counter.total (Bfc_core.Dataplane.pause_counters dp))
        0 (Runner.dataplanes env)
    in
    [
      (if filter then "with App B elision table" else "no deadlock prevention");
      Printf.sprintf "%d/%d" (Runner.completed env) (Runner.injected env);
      string_of_int stuck;
      string_of_int (Runner.total_drops env);
    ]
  in
  [
    {
      title =
        "App B live: cyclic flows on a 5-switch ring (5MB each) — deadlock and its prevention";
      header = [ "config"; "completed"; "stranded pause counts"; "drops" ];
      rows =
        sweep
          [
            pt "deadlock:none" (fun () -> run ~filter:false);
            pt "deadlock:filter" (fun () -> run ~filter:true);
          ];
    };
  ]

(* ------------------------------------------------------------------ *)
(* App. B: deadlock analysis.                                           *)

let deadlock profile =
  let sim = Sim.create () in
  let spines, tors, hosts_per_tor = clos_scale profile in
  let cl = Topology.clos sim ~spines ~tors ~hosts_per_tor ~gbps:100.0 ~prop:(Time.us 1.0) in
  let g = Bfc_core.Deadlock.build cl.Topology.t in
  let clos_row =
    [
      "clos (up-down routing)";
      string_of_int (Bfc_core.Deadlock.n_edges g);
      string_of_bool (Bfc_core.Deadlock.has_cycle g);
      "0";
    ]
  in
  (* a 5-switch ring: shortest-path routing creates a cyclic buffer
     dependency; the elision table must break it *)
  let sim2 = Sim.create () in
  let b = Topology.Builder.create sim2 in
  let n = 5 in
  let sws = Array.init n (fun i -> Topology.Builder.add_switch b ~name:(Printf.sprintf "r%d" i)) in
  let _hosts =
    Array.init n (fun i ->
        let h = Topology.Builder.add_host b ~name:(Printf.sprintf "rh%d" i) in
        Topology.Builder.link b h sws.(i) ~gbps:100.0 ~prop:(Time.us 1.0);
        h)
  in
  for i = 0 to n - 1 do
    Topology.Builder.link b sws.(i) sws.((i + 1) mod n) ~gbps:100.0 ~prop:(Time.us 1.0)
  done;
  let ring = Topology.Builder.finish b in
  let gr = Bfc_core.Deadlock.build ring in
  let cyc = Bfc_core.Deadlock.has_cycle gr in
  let dangerous = Bfc_core.Deadlock.dangerous_edges gr in
  let ring_row =
    [
      "5-switch ring";
      string_of_int (Bfc_core.Deadlock.n_edges gr);
      string_of_bool cyc;
      string_of_int (List.length dangerous);
    ]
  in
  let witness =
    match Bfc_core.Deadlock.find_cycle gr with
    | Some c -> Printf.sprintf "cycle through %d ports" (List.length c)
    | None -> "acyclic"
  in
  [
    {
      title = "App B: backpressure-graph analysis (cycle => potential deadlock)";
      header = [ "topology"; "bp edges"; "has cycle"; "edges elided" ];
      rows = [ clos_row; ring_row; [ "ring witness"; witness; ""; "" ] ];
    };
  ]
