(** Registry of every table/figure reproduction (see DESIGN.md's
    per-experiment index). Each target maps to a function producing
    printable tables at the requested profile. *)

type target = {
  t_name : string; (** e.g. "fig9", "table1" *)
  t_what : string; (** one-line description *)
  t_run : Exp_common.profile -> Exp_common.table list;
}

val all : target list

val find : string -> target option

val names : unit -> string list

(** Run one target and print its tables, with wall-clock timing; also
    write each table as CSV into [csv_dir] when given. *)
val run_and_print : ?csv_dir:string -> Exp_common.profile -> target -> unit

(** Like {!run_and_print} but with the ambient {!Pool} job count set to
    [jobs] for the duration of the run: every sweep inside the target fans
    out over that many domains. Tables (and CSVs) are byte-identical to a
    sequential run — only wall-clock time changes. *)
val run_parallel : ?csv_dir:string -> jobs:int -> Exp_common.profile -> target -> unit
