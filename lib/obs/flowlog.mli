(** Versioned binary flow-trace format with bounded-memory streaming I/O.

    On disk: a 16-byte header (magic ["BFCFLOG1"], version, record size)
    followed by self-delimiting chunks. Each chunk stores up to a few
    thousand records in struct-of-arrays form (a count, then one column
    per field), all little-endian and fixed-size — 48 bytes per record.

    The {!Writer} buffers one chunk and serialises it in a single write;
    the reader holds one chunk at a time, so arbitrarily large traces
    stream through O(chunk) memory in both directions. A trace cut short
    mid-chunk (a killed run) is still readable up to the last complete
    chunk; the reader reports the damage via its [truncated] flag instead
    of failing. *)

type record = {
  id : int;
  src : int; (* host indices *)
  dst : int;
  size : int; (* bytes *)
  incast : bool;
  prio_class : int;
  arrival : float; (* seconds *)
  fct : float;
  ideal : float; (* ideal (unloaded) FCT; slowdown = fct / ideal *)
}

val version : int

(** Bytes per record on disk (fixed for version 1). *)
val record_bytes : int

(** Records per chunk when the writer is not told otherwise. *)
val default_chunk : int

module Writer : sig
  type t

  (** [create ?chunk oc] writes the header immediately and buffers up to
      [chunk] records (default {!default_chunk}) between flushes. The
      caller retains ownership of [oc]. *)
  val create : ?chunk:int -> out_channel -> t

  val append : t -> record -> unit

  (** Records appended so far (flushed or buffered). *)
  val count : t -> int

  (** Flush the partial chunk and the channel buffer. The channel stays
      open; [append] after [close] starts a new chunk and is valid. *)
  val close : t -> unit
end

(** [fold_channel ic ~init ~f] streams every complete record through [f]
    in file order, holding one chunk at a time. Returns the accumulator
    and a [truncated] flag: [true] when the file ends mid-chunk (the
    partial chunk is dropped). Raises [Invalid_argument] on a bad header. *)
val fold_channel : in_channel -> init:'a -> f:('a -> record -> 'a) -> 'a * bool

(** {!fold_channel} over a file path (opened binary, always closed). *)
val fold_file : string -> init:'a -> f:('a -> record -> 'a) -> 'a * bool

(** Iterate a file; returns the [truncated] flag. *)
val iter_file : string -> f:(record -> unit) -> bool
