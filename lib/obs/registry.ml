(* Slots live in flat growable arrays; a handle is an index into them. The
   name -> handle map is only consulted at registration time, so the update
   path touches nothing but the slot array. *)

type counter = int

type histogram = int

type t = {
  enabled : bool;
  (* counters *)
  mutable c_names : string array;
  mutable c_cells : int array;
  mutable c_n : int;
  (* gauges *)
  mutable g_names : string array;
  mutable g_fns : (unit -> float) array;
  mutable g_n : int;
  (* histograms: edges + counts per slot *)
  mutable h_names : string array;
  mutable h_edges : float array array;
  mutable h_counts : int array array;
  mutable h_n : int;
}

let create ?(enabled = true) () =
  {
    enabled;
    c_names = [||];
    c_cells = [||];
    c_n = 0;
    g_names = [||];
    g_fns = [||];
    g_n = 0;
    h_names = [||];
    h_edges = [||];
    h_counts = [||];
    h_n = 0;
  }

let enabled t = t.enabled

(* Registration-time linear lookup: registries hold tens of probes and
   registration happens once per run, so no hash table is needed (and
   enumeration order stays the registration order for free). *)
(* bfc-lint: control-plane *)
let find names n name =
  let rec scan i = if i >= n then -1 else if names.(i) = name then i else scan (i + 1) in
  scan 0

let grow_str a n = if n < Array.length a then a else Array.append a (Array.make (max 8 n) "")

let counter t name =
  match find t.c_names t.c_n name with
  | i when i >= 0 -> i
  | _ ->
    let i = t.c_n in
    t.c_names <- grow_str t.c_names (i + 1);
    if i >= Array.length t.c_cells then
      t.c_cells <- Array.append t.c_cells (Array.make (max 8 (i + 1)) 0);
    t.c_names.(i) <- name;
    t.c_cells.(i) <- 0;
    t.c_n <- i + 1;
    i

let incr t c = if t.enabled then t.c_cells.(c) <- t.c_cells.(c) + 1

let add t c d = if t.enabled then t.c_cells.(c) <- t.c_cells.(c) + d

let value t c = t.c_cells.(c)

(* enumeration for export, not per packet; bfc-lint: control-plane *)
let counters t = List.init t.c_n (fun i -> (t.c_names.(i), t.c_cells.(i)))

let gauge t name fn =
  match find t.g_names t.g_n name with
  | i when i >= 0 -> t.g_fns.(i) <- fn
  | _ ->
    let i = t.g_n in
    t.g_names <- grow_str t.g_names (i + 1);
    if i >= Array.length t.g_fns then
      t.g_fns <- Array.append t.g_fns (Array.make (max 8 (i + 1)) (fun () -> 0.0));
    t.g_names.(i) <- name;
    t.g_fns.(i) <- fn;
    t.g_n <- i + 1

(* bfc-lint: control-plane *)
let gauges t = List.init t.g_n (fun i -> (t.g_names.(i), t.g_fns.(i)))

(* bfc-lint: control-plane *)
let sample_gauges t =
  if not t.enabled then []
  else List.init t.g_n (fun i -> (t.g_names.(i), t.g_fns.(i) ()))

let check_edges edges =
  try Bfc_util.Buckets.check ~edges
  with Invalid_argument _ ->
    invalid_arg "Registry.histogram: edges must be non-empty and strictly ascending"

(* registration time; bfc-lint: control-plane *)
let histogram t name ~edges =
  match find t.h_names t.h_n name with
  | i when i >= 0 ->
    if t.h_edges.(i) <> edges then
      invalid_arg (Printf.sprintf "Registry.histogram: %s already registered with other edges" name);
    i
  | _ ->
    check_edges edges;
    let i = t.h_n in
    t.h_names <- grow_str t.h_names (i + 1);
    if i >= Array.length t.h_edges then begin
      t.h_edges <- Array.append t.h_edges (Array.make (max 8 (i + 1)) [||]);
      t.h_counts <- Array.append t.h_counts (Array.make (max 8 (i + 1)) [||])
    end;
    t.h_names.(i) <- name;
    t.h_edges.(i) <- Array.copy edges;
    t.h_counts.(i) <- Array.make (Array.length edges + 1) 0;
    t.h_n <- i + 1;
    i

(* First bucket i with v < edges.(i); overflow bucket otherwise. The
   shared binary search keeps wide histograms O(log buckets) on the hot
   path (Buckets.upper_index is the overflow-bucket flavour verbatim). *)
let bucket_of edges v = Bfc_util.Buckets.upper_index ~edges v

let observe t h v =
  if t.enabled then begin
    let counts = t.h_counts.(h) in
    let b = bucket_of t.h_edges.(h) v in
    counts.(b) <- counts.(b) + 1
  end

let histogram_counts t h = Array.copy t.h_counts.(h)

let histogram_edges t h = Array.copy t.h_edges.(h)

(* bfc-lint: control-plane *)
let histograms t =
  List.init t.h_n (fun i -> (t.h_names.(i), Array.copy t.h_edges.(i), Array.copy t.h_counts.(i)))

(* ------------------------------------------------------------------ *)
(* JSON export. Probe names are plain identifiers ("engine.heap_hwm"), but
   escape defensively anyway. *)

(* bfc-lint: control-plane *)
let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* bfc-lint: control-plane *)
let json_float f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

(* bfc-lint: control-plane *)
let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"counters\": {";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\n    \"%s\": %d" (json_escape name) v))
    (counters t);
  Buffer.add_string buf "\n  },\n  \"gauges\": {";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\n    \"%s\": %s" (json_escape name) (json_float v)))
    (sample_gauges t);
  Buffer.add_string buf "\n  },\n  \"histograms\": {";
  List.iteri
    (fun i (name, edges, counts) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\n    \"%s\": { \"edges\": [" (json_escape name));
      Array.iteri
        (fun j e ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (json_float e))
        edges;
      Buffer.add_string buf "], \"counts\": [";
      Array.iteri
        (fun j c ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (string_of_int c))
        counts;
      Buffer.add_string buf "] }")
    (histograms t);
  Buffer.add_string buf "\n  }\n}\n";
  Buffer.contents buf
