(* Versioned binary flow-trace format, struct-of-arrays on disk.

   Layout (all integers little-endian):

     header   : magic "BFCFLOG1" (8 bytes), version u32 = 1,
                record_bytes u32 = 48
     chunk    : count n (u32), then eight columns each holding n entries:
                  ids, srcs, dsts, flags          (u32 each)
                  sizes, arrivals, fcts, ideals   (u64 / IEEE-754 bits)
     ...chunks repeat; the file is a stream, so a writer can die mid-chunk
     and readers recover everything up to the last complete chunk.

   flags = (incast ? 1 : 0) lor (prio_class lsl 8).

   The writer buffers one chunk (default 4096 records) in pre-sized
   column arrays and serialises it in one [output_string]; the full trace
   is never resident. The reader symmetrically holds one chunk. *)

type record = {
  id : int;
  src : int;
  dst : int;
  size : int; (* bytes *)
  incast : bool;
  prio_class : int;
  arrival : float; (* seconds *)
  fct : float;
  ideal : float;
}

let magic = "BFCFLOG1"

let version = 1

let record_bytes = 48

let header_bytes = 16

let default_chunk = 4096

module Writer = struct
  type t = {
    oc : out_channel;
    cap : int;
    mutable n : int;
    mutable written : int; (* records flushed to the channel *)
    ids : int array;
    srcs : int array;
    dsts : int array;
    flags : int array;
    sizes : int array;
    arr_bits : int64 array;
    fct_bits : int64 array;
    ideal_bits : int64 array;
    buf : Buffer.t;
  }

  let create ?(chunk = default_chunk) oc =
    if chunk <= 0 then invalid_arg "Flowlog.Writer.create: chunk must be positive";
    let buf = Buffer.create (8 + (chunk * record_bytes)) in
    Buffer.add_string buf magic;
    Buffer.add_int32_le buf (Int32.of_int version);
    Buffer.add_int32_le buf (Int32.of_int record_bytes);
    output_string oc (Buffer.contents buf);
    Buffer.clear buf;
    {
      oc;
      cap = chunk;
      n = 0;
      written = 0;
      ids = Array.make chunk 0;
      srcs = Array.make chunk 0;
      dsts = Array.make chunk 0;
      flags = Array.make chunk 0;
      sizes = Array.make chunk 0;
      arr_bits = Array.make chunk 0L;
      fct_bits = Array.make chunk 0L;
      ideal_bits = Array.make chunk 0L;
      buf;
    }

  let flush_chunk t =
    if t.n > 0 then begin
      let b = t.buf in
      Buffer.clear b;
      Buffer.add_int32_le b (Int32.of_int t.n);
      for i = 0 to t.n - 1 do Buffer.add_int32_le b (Int32.of_int t.ids.(i)) done;
      for i = 0 to t.n - 1 do Buffer.add_int32_le b (Int32.of_int t.srcs.(i)) done;
      for i = 0 to t.n - 1 do Buffer.add_int32_le b (Int32.of_int t.dsts.(i)) done;
      for i = 0 to t.n - 1 do Buffer.add_int32_le b (Int32.of_int t.flags.(i)) done;
      for i = 0 to t.n - 1 do Buffer.add_int64_le b (Int64.of_int t.sizes.(i)) done;
      for i = 0 to t.n - 1 do Buffer.add_int64_le b t.arr_bits.(i) done;
      for i = 0 to t.n - 1 do Buffer.add_int64_le b t.fct_bits.(i) done;
      for i = 0 to t.n - 1 do Buffer.add_int64_le b t.ideal_bits.(i) done;
      output_string t.oc (Buffer.contents b);
      Buffer.clear b;
      t.written <- t.written + t.n;
      t.n <- 0
    end

  let append t r =
    if t.n = t.cap then flush_chunk t;
    let i = t.n in
    t.ids.(i) <- r.id land 0xFFFFFFFF;
    t.srcs.(i) <- r.src land 0xFFFFFFFF;
    t.dsts.(i) <- r.dst land 0xFFFFFFFF;
    t.flags.(i) <- ((if r.incast then 1 else 0) lor (r.prio_class lsl 8)) land 0xFFFFFFFF;
    t.sizes.(i) <- r.size;
    t.arr_bits.(i) <- Int64.bits_of_float r.arrival;
    t.fct_bits.(i) <- Int64.bits_of_float r.fct;
    t.ideal_bits.(i) <- Int64.bits_of_float r.ideal;
    t.n <- t.n + 1

  let count t = t.written + t.n

  (* Flush the partial chunk and the channel buffer; the channel itself
     stays open (the caller owns it). *)
  let close t =
    flush_chunk t;
    flush t.oc
end

(* ------------------------------------------------------------------ *)
(* Incremental reader: one chunk resident at a time. *)

(* Read up to [len] bytes; short count only at end of file. *)
let read_upto ic b len =
  let off = ref 0 and eof = ref false in
  while (not !eof) && !off < len do
    let k = input ic b !off (len - !off) in
    if k = 0 then eof := true else off := !off + k
  done;
  !off

(* A count field beyond this is corruption, not a big chunk: writers cap
   chunks well below it, and it bounds the reader's allocation. *)
let max_chunk = 1 lsl 24

let fold_channel ic ~init ~f =
  let hdr = Bytes.create header_bytes in
  if read_upto ic hdr header_bytes <> header_bytes then
    invalid_arg "Flowlog: missing header";
  if Bytes.sub_string hdr 0 8 <> magic then invalid_arg "Flowlog: bad magic";
  if Int32.to_int (Bytes.get_int32_le hdr 8) <> version then
    invalid_arg "Flowlog: unsupported version";
  if Int32.to_int (Bytes.get_int32_le hdr 12) <> record_bytes then
    invalid_arg "Flowlog: unexpected record size";
  let cnt = Bytes.create 4 in
  let acc = ref init in
  let truncated = ref false in
  let finished = ref false in
  while not !finished do
    let got = read_upto ic cnt 4 in
    if got = 0 then finished := true
    else if got < 4 then begin
      truncated := true;
      finished := true
    end
    else begin
      let n = Int32.to_int (Bytes.get_int32_le cnt 0) in
      if n <= 0 || n > max_chunk then begin
        truncated := true;
        finished := true
      end
      else begin
        let len = n * record_bytes in
        let chunk = Bytes.create len in
        if read_upto ic chunk len < len then begin
          (* writer died mid-chunk: drop the partial chunk *)
          truncated := true;
          finished := true
        end
        else begin
          let u32 col i = Int32.to_int (Bytes.get_int32_le chunk ((col * 4 * n) + (4 * i))) land 0xFFFFFFFF in
          let base64 = 16 * n in
          let u64 col i = Bytes.get_int64_le chunk (base64 + (col * 8 * n) + (8 * i)) in
          for i = 0 to n - 1 do
            let flags = u32 3 i in
            acc :=
              f !acc
                {
                  id = u32 0 i;
                  src = u32 1 i;
                  dst = u32 2 i;
                  size = Int64.to_int (u64 0 i);
                  incast = flags land 1 <> 0;
                  prio_class = flags lsr 8;
                  arrival = Int64.float_of_bits (u64 1 i);
                  fct = Int64.float_of_bits (u64 2 i);
                  ideal = Int64.float_of_bits (u64 3 i);
                }
          done
        end
      end
    end
  done;
  (!acc, !truncated)

let fold_file path ~init ~f =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> fold_channel ic ~init ~f)

let iter_file path ~f =
  let (), truncated = fold_file path ~init:() ~f:(fun () r -> f r) in
  truncated
