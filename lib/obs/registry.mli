(** Telemetry registry: named counters, gauges and fixed-bucket histograms.

    Probes resolve to preallocated slots at registration time and carry an
    integer handle, so hot-path updates are a bounds-checked array store —
    no allocation, no hashing, no string work. A registry created with
    [~enabled:false] turns every update into a single-branch no-op, so
    instrumented code can stay compiled in without perturbing the
    zero-allocation event-engine hot path.

    Registration is idempotent: asking for an existing name returns the
    same handle (so independent subsystems can share a probe). All
    enumeration functions return entries in registration order, which keeps
    exported column orders stable across runs. *)

type t

type counter
(** Handle to a monotonically increasing integer slot. *)

type histogram
(** Handle to a fixed-bucket histogram. *)

val create : ?enabled:bool -> unit -> t
(** A fresh registry; [enabled] defaults to [true]. *)

val enabled : t -> bool

(** {1 Counters} *)

val counter : t -> string -> counter
(** Register (or look up) a counter by name. *)

val incr : t -> counter -> unit
(** Add one. No-op on a disabled registry. *)

val add : t -> counter -> int -> unit
(** Add an arbitrary delta. No-op on a disabled registry. *)

val value : t -> counter -> int

val counters : t -> (string * int) list
(** All counters, registration order. *)

(** {1 Gauges} *)

val gauge : t -> string -> (unit -> float) -> unit
(** Register a sampled gauge: the closure is evaluated only when the
    registry is read (series ticks, exports), never on the hot path.
    Re-registering a name replaces its closure. *)

val gauges : t -> (string * (unit -> float)) list
(** All gauges, registration order (closures unevaluated). *)

val sample_gauges : t -> (string * float) list
(** Evaluate every gauge, registration order. On a disabled registry the
    closures are not called and the list is empty. *)

(** {1 Histograms} *)

val histogram : t -> string -> edges:float array -> histogram
(** Register a histogram with the given ascending bucket edges. A value [v]
    lands in the first bucket [i] with [v < edges.(i)]; values
    [>= edges.(n-1)] land in the overflow bucket, so counts have
    [Array.length edges + 1] entries. Raises [Invalid_argument] on empty or
    non-ascending edges, or if the name is already registered with
    different edges. *)

val observe : t -> histogram -> float -> unit
(** Record a value. No-op on a disabled registry. *)

val histogram_counts : t -> histogram -> int array
(** Per-bucket counts (a copy; length = #edges + 1, last = overflow). *)

val histogram_edges : t -> histogram -> float array

val histograms : t -> (string * float array * int array) list
(** (name, edges, counts), registration order. *)

(** {1 Export} *)

val to_json : t -> string
(** The whole registry (counters, sampled gauges, histograms) as a JSON
    object; key order is registration order. *)
