(* Struct-of-arrays record storage: recording an event is seven int stores
   (plus amortized growth in unbounded mode), so tracing perturbs the
   simulation as little as possible. [absent] marks an unused argument. *)

let absent = min_int

let absent_arg = absent

type t = {
  capacity : int; (* <= 0: unbounded *)
  mutable ts : int array;
  mutable dur : int array; (* -1 = instant *)
  mutable name : int array;
  mutable pid : int array;
  mutable tid : int array;
  mutable a : int array;
  mutable b : int array;
  mutable next : int; (* ring cursor (bounded) / append cursor (unbounded) *)
  mutable count : int; (* buffered records *)
  mutable recorded : int; (* total ever *)
  mutable sink : out_channel option; (* streaming export: flush-and-reset target *)
  (* interned names with their two arg keys *)
  mutable names : string array;
  mutable akeys : string array;
  mutable bkeys : string array;
  mutable n_names : int;
}

let create ?(capacity = 0) () =
  let cap = if capacity > 0 then capacity else 1024 in
  {
    capacity;
    ts = Array.make cap 0;
    dur = Array.make cap 0;
    name = Array.make cap 0;
    pid = Array.make cap 0;
    tid = Array.make cap 0;
    a = Array.make cap absent;
    b = Array.make cap absent;
    next = 0;
    count = 0;
    recorded = 0;
    sink = None;
    names = [||];
    akeys = [||];
    bkeys = [||];
    n_names = 0;
  }

(* probe registration; bfc-lint: control-plane *)
let intern t ?(akey = "a") ?(bkey = "b") nm =
  let rec scan i = if i >= t.n_names then -1 else if t.names.(i) = nm then i else scan (i + 1) in
  match scan 0 with
  | i when i >= 0 -> i
  | _ ->
    let i = t.n_names in
    if i >= Array.length t.names then begin
      let grow a fill = Array.append a (Array.make (max 8 (i + 1)) fill) in
      t.names <- grow t.names "";
      t.akeys <- grow t.akeys "";
      t.bkeys <- grow t.bkeys ""
    end;
    t.names.(i) <- nm;
    t.akeys.(i) <- akey;
    t.bkeys.(i) <- bkey;
    t.n_names <- i + 1;
    i

let name t i = t.names.(i)

let grow t =
  let cap = Array.length t.ts in
  let ncap = cap * 2 in
  let g a fill =
    let n = Array.make ncap fill in
    Array.blit a 0 n 0 cap;
    n
  in
  t.ts <- g t.ts 0;
  t.dur <- g t.dur 0;
  t.name <- g t.name 0;
  t.pid <- g t.pid 0;
  t.tid <- g t.tid 0;
  t.a <- g t.a absent;
  t.b <- g t.b absent

(* Oldest record: in a wrapped ring it sits at the cursor; otherwise 0. *)
let iter t f =
  let cap = Array.length t.ts in
  let start = if t.capacity > 0 && t.recorded > t.count then t.next else 0 in
  for k = 0 to t.count - 1 do
    let i = (start + k) mod cap in
    let opt v = if v = absent then None else Some v in
    f ~ts:t.ts.(i) ~dur:t.dur.(i) ~name:t.name.(i) ~pid:t.pid.(i) ~tid:t.tid.(i)
      ~a:(opt t.a.(i)) ~b:(opt t.b.(i))
  done

(* bfc-lint: control-plane *)
let args_json t ~name ~a ~b =
  match (a, b) with
  | None, None -> ""
  | Some a, None -> Printf.sprintf ",\"args\":{\"%s\":%d}" t.akeys.(name) a
  | None, Some b -> Printf.sprintf ",\"args\":{\"%s\":%d}" t.bkeys.(name) b
  | Some a, Some b ->
    Printf.sprintf ",\"args\":{\"%s\":%d,\"%s\":%d}" t.akeys.(name) a t.bkeys.(name) b

(* bfc-lint: control-plane *)
let jsonl_row t oc ~ts ~dur ~name ~pid ~tid ~a ~b =
  let args = args_json t ~name ~a ~b in
  output_string oc
    (Printf.sprintf "{\"ts\":%d,\"dur\":%d,\"name\":\"%s\",\"pid\":%d,\"tid\":%d%s}\n" ts dur
       t.names.(name) pid tid args)

(* Drain buffered records to the sink as JSONL oldest-first and reset the
   buffer (interned names survive), then flush the channel so a live run
   can be tailed. No-op without a sink. bfc-lint: control-plane *)
let flush t =
  match t.sink with
  | None -> ()
  | Some oc ->
    if t.count > 0 then begin
      iter t (fun ~ts ~dur ~name ~pid ~tid ~a ~b -> jsonl_row t oc ~ts ~dur ~name ~pid ~tid ~a ~b);
      t.next <- 0;
      t.count <- 0;
      Stdlib.flush oc
    end

let set_sink t oc = t.sink <- Some oc

let record t ~ts ~dur ~name ~pid ~tid ~a ~b =
  (* With a sink, a full buffer drains to it (the capacity acts as the
     chunk size) instead of growing or overwriting ring-style. *)
  (match t.sink with
  | Some _ -> if t.count = Array.length t.ts then flush t
  | None -> if t.capacity <= 0 && t.next = Array.length t.ts then grow t);
  let cap = Array.length t.ts in
  let i = t.next in
  t.ts.(i) <- ts;
  t.dur.(i) <- dur;
  t.name.(i) <- name;
  t.pid.(i) <- pid;
  t.tid.(i) <- tid;
  t.a.(i) <- a;
  t.b.(i) <- b;
  t.next <- (if t.capacity > 0 then (i + 1) mod cap else i + 1);
  if t.count < cap then t.count <- t.count + 1;
  t.recorded <- t.recorded + 1

let instant t ~ts ~name ~pid ~tid ?(a = absent) ?(b = absent) () =
  record t ~ts ~dur:(-1) ~name ~pid ~tid ~a ~b

let complete t ~ts ~dur ~name ~pid ~tid ?(a = absent) ?(b = absent) () =
  record t ~ts ~dur:(max 0 dur) ~name ~pid ~tid ~a ~b

let length t = t.count

let recorded t = t.recorded

(* ------------------------------------------------------------------ *)
(* Exporters *)

(* bfc-lint: control-plane *)
let us_of_ns ns = Printf.sprintf "%.3f" (float_of_int ns /. 1000.0)

(* Distinct (pid, tid) tracks of the buffered records, sorted. *)
(* bfc-lint: control-plane *)
let tracks t =
  let seen = Hashtbl.create 64 in
  iter t (fun ~ts:_ ~dur:_ ~name:_ ~pid ~tid ~a:_ ~b:_ ->
      if not (Hashtbl.mem seen (pid, tid)) then Hashtbl.add seen (pid, tid) ());
  (* commutative collection, then a deterministic sort for stable output;
     bfc-lint: allow det-hashtbl-order *)
  Hashtbl.fold (fun k () acc -> k :: acc) seen [] |> List.sort compare

(* Buffered record indices oldest-first, stable-sorted by timestamp:
   complete spans are recorded when they close but stamped with their start
   ts, so raw record order is not time order. *)
let sorted_indices t =
  let cap = Array.length t.ts in
  let start = if t.capacity > 0 && t.recorded > t.count then t.next else 0 in
  let idx = Array.init t.count (fun k -> (start + k) mod cap) in
  Array.stable_sort (fun i j -> compare t.ts.(i) t.ts.(j)) idx;
  idx

(* bfc-lint: control-plane *)
let to_chrome ?process_name ?track_name t oc =
  output_string oc "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else output_char oc ',';
    output_string oc "\n"
  in
  let tracks = tracks t in
  let pids = List.sort_uniq compare (List.map fst tracks) in
  (match process_name with
  | None -> ()
  | Some f ->
    List.iter
      (fun pid ->
        match f ~pid with
        | None -> ()
        | Some nm ->
          sep ();
          output_string oc
            (Printf.sprintf
               "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
               pid nm))
      pids);
  (match track_name with
  | None -> ()
  | Some f ->
    List.iter
      (fun (pid, tid) ->
        match f ~pid ~tid with
        | None -> ()
        | Some nm ->
          sep ();
          output_string oc
            (Printf.sprintf
               "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
               pid tid nm))
      tracks);
  Array.iter
    (fun i ->
      let ts = t.ts.(i) and dur = t.dur.(i) and name = t.name.(i) in
      let pid = t.pid.(i) and tid = t.tid.(i) in
      let opt v = if v = absent then None else Some v in
      let a = opt t.a.(i) and b = opt t.b.(i) in
      sep ();
      let args = args_json t ~name ~a ~b in
      if dur < 0 then
        output_string oc
          (Printf.sprintf
             "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%s,\"pid\":%d,\"tid\":%d%s}"
             t.names.(name) (us_of_ns ts) pid tid args)
      else
        output_string oc
          (Printf.sprintf
             "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":%d,\"tid\":%d%s}"
             t.names.(name) (us_of_ns ts) (us_of_ns dur) pid tid args))
    (sorted_indices t);
  output_string oc "\n]}\n"

(* bfc-lint: control-plane *)
let to_jsonl t oc =
  iter t (fun ~ts ~dur ~name ~pid ~tid ~a ~b -> jsonl_row t oc ~ts ~dur ~name ~pid ~tid ~a ~b)
