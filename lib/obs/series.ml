type t = {
  reg : Registry.t;
  names : string array;
  fns : (unit -> float) array;
  sink : out_channel option;
  mutable times : int array;
  mutable data : float array array;
  mutable n : int; (* rows retained in memory *)
  mutable streamed : int; (* rows written straight to the sink *)
}

let csv_float v =
  if Float.is_nan v then ""
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let columns_of names = "t_ns" :: Array.to_list names

let write_header names oc =
  output_string oc (String.concat "," (columns_of names));
  output_char oc '\n'

let create ?sink reg =
  let cols = Registry.gauges reg in
  let names = Array.of_list (List.map fst cols) in
  (match sink with
  | Some oc when Registry.enabled reg -> write_header names oc
  | _ -> ());
  {
    reg;
    names;
    fns = Array.of_list (List.map snd cols);
    sink;
    times = [||];
    data = [||];
    n = 0;
    streamed = 0;
  }

let columns t = columns_of t.names

let write_row oc ~now row =
  output_string oc (string_of_int now);
  Array.iter
    (fun v ->
      output_char oc ',';
      output_string oc (csv_float v))
    row;
  output_char oc '\n'

let sample t ~now =
  if Registry.enabled t.reg then begin
    let row = Array.map (fun f -> f ()) t.fns in
    match t.sink with
    | Some oc ->
      (* streaming export: the row goes straight out, never resident *)
      write_row oc ~now row;
      t.streamed <- t.streamed + 1
    | None ->
      if t.n = Array.length t.times then begin
        let ncap = if t.n = 0 then 64 else t.n * 2 in
        let nt = Array.make ncap 0 and nd = Array.make ncap [||] in
        Array.blit t.times 0 nt 0 t.n;
        Array.blit t.data 0 nd 0 t.n;
        t.times <- nt;
        t.data <- nd
      end;
      t.times.(t.n) <- now;
      t.data.(t.n) <- row;
      t.n <- t.n + 1
  end

let n_samples t = t.n + t.streamed

let rows t = List.init t.n (fun i -> (t.times.(i), Array.copy t.data.(i)))

let to_csv t oc =
  write_header t.names oc;
  for i = 0 to t.n - 1 do
    write_row oc ~now:t.times.(i) t.data.(i)
  done
