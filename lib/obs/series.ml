type t = {
  reg : Registry.t;
  names : string array;
  fns : (unit -> float) array;
  mutable times : int array;
  mutable data : float array array;
  mutable n : int;
}

let create reg =
  let cols = Registry.gauges reg in
  {
    reg;
    names = Array.of_list (List.map fst cols);
    fns = Array.of_list (List.map snd cols);
    times = [||];
    data = [||];
    n = 0;
  }

let columns t = "t_ns" :: Array.to_list t.names

let sample t ~now =
  if Registry.enabled t.reg then begin
    if t.n = Array.length t.times then begin
      let ncap = if t.n = 0 then 64 else t.n * 2 in
      let nt = Array.make ncap 0 and nd = Array.make ncap [||] in
      Array.blit t.times 0 nt 0 t.n;
      Array.blit t.data 0 nd 0 t.n;
      t.times <- nt;
      t.data <- nd
    end;
    t.times.(t.n) <- now;
    t.data.(t.n) <- Array.map (fun f -> f ()) t.fns;
    t.n <- t.n + 1
  end

let n_samples t = t.n

let rows t = List.init t.n (fun i -> (t.times.(i), Array.copy t.data.(i)))

let csv_float v =
  if Float.is_nan v then ""
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let to_csv t oc =
  output_string oc (String.concat "," (columns t));
  output_char oc '\n';
  for i = 0 to t.n - 1 do
    output_string oc (string_of_int t.times.(i));
    Array.iter
      (fun v ->
        output_char oc ',';
        output_string oc (csv_float v))
      t.data.(i);
    output_char oc '\n'
  done
