(** Packet-lifecycle trace buffer with Chrome trace-event export.

    Records instants and duration spans on (pid, tid) tracks — by
    convention pid is a node id and tid encodes (egress, queue) — into
    struct-of-array storage, so recording is a handful of int stores.
    Event names are interned once; each record carries up to two integer
    arguments whose JSON keys are fixed per name at intern time.

    A trace can be bounded ([capacity]): once full, the oldest records are
    overwritten ring-style ({!recorded} keeps counting). Unbounded traces
    grow geometrically.

    Timestamps are simulation nanoseconds; the Chrome exporter converts to
    the microseconds Perfetto expects. Any exported file opens directly in
    ui.perfetto.dev or chrome://tracing. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity <= 0] (the default) means unbounded. *)

val absent_arg : int
(** Sentinel for "no argument" ([min_int]): passing it to {!instant} or
    {!complete} is equivalent to omitting the argument. Lets callers store
    pre-encoded (name, a, b) triples without wrapping in options. *)

val intern : t -> ?akey:string -> ?bkey:string -> string -> int
(** Intern an event name, fixing the JSON keys of its two optional integer
    arguments. Re-interning the same name returns the same id (arg keys are
    kept from the first registration). *)

val name : t -> int -> string
(** The string for an interned id. *)

val instant : t -> ts:int -> name:int -> pid:int -> tid:int -> ?a:int -> ?b:int -> unit -> unit
(** A point event at [ts] ns. *)

val complete : t -> ts:int -> dur:int -> name:int -> pid:int -> tid:int -> ?a:int -> ?b:int -> unit -> unit
(** A span starting at [ts] ns lasting [dur] ns. *)

val length : t -> int
(** Records currently buffered. *)

val recorded : t -> int
(** Total records observed, including any overwritten in ring mode. *)

val iter :
  t ->
  (ts:int -> dur:int -> name:int -> pid:int -> tid:int -> a:int option -> b:int option -> unit) ->
  unit
(** Iterate buffered records oldest-first ([dur = -1] for instants). *)

val to_chrome :
  ?process_name:(pid:int -> string option) ->
  ?track_name:(pid:int -> tid:int -> string option) ->
  t ->
  out_channel ->
  unit
(** Write the Chrome trace-event JSON ({"traceEvents": [...]}) including
    process/thread-name metadata for every track that appears. Events are
    emitted in timestamp order (complete spans are recorded when they close
    but stamped with their start time), so every track is monotone. *)

val to_jsonl : t -> out_channel -> unit
(** One JSON object per record per line (stable keys: ts, dur, name, pid,
    tid, then the per-name argument keys). *)

val set_sink : t -> out_channel -> unit
(** Switch the trace to streaming export: whenever the buffer fills, its
    records are drained to the channel as JSONL (oldest-first) and the
    buffer resets, so the buffer capacity becomes the flush chunk size and
    memory stays O(capacity) for arbitrarily long runs. With a sink set, a
    bounded trace never overwrites records ring-style — the stream is
    lossless. The caller owns the channel; call {!flush} at end of run to
    drain the final partial chunk. *)

val flush : t -> unit
(** Drain buffered records to the sink (and flush the channel, so live runs
    can be tailed) and reset the buffer. No-op when no sink is set. *)
