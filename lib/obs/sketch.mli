(** Mergeable quantile sketch with a relative-error bound (DDSketch-style).

    Observations land in logarithmically spaced buckets derived from the
    IEEE-754 bit pattern — K sub-buckets per octave — so any quantile
    estimate is within relative error [alpha = 1/(2K)] of the exact
    percentile, at O(buckets touched) memory regardless
    of how many observations were added. Memory for a dataset spanning [d]
    octaves is at most [K * d] counters.

    State is integer bucket counts plus exact min/max, so {!merge} is
    exactly associative and commutative: per-shard sketches from a PDES run
    (or per-job sketches from a sweep) combine into byte-identical state
    regardless of merge order — checked via the canonical {!encode}.

    Only positive finite values are bucketed. Zero, negative, NaN and
    infinite observations are counted separately and treated as zeros at
    the low end of the distribution (FCTs and queue delays are positive, so
    this path is empty in practice). *)

type t

(** [create ?alpha ()] builds an empty sketch whose quantile estimates are
    within relative error [alpha] (default [0.01]) of the exact value. The
    bucket resolution is rounded up to the next power of two, so {!alpha}
    reports an actual guarantee at least as tight as requested. Raises
    [Invalid_argument] unless [0 < alpha < 0.5]. *)
val create : ?alpha:float -> unit -> t

(** Actual relative-error guarantee (<= the [alpha] passed to {!create}). *)
val alpha : t -> float

(** Record one observation. Hot path: two float comparisons and integer
    arithmetic; allocates only when the observed value range grows. *)
val add : t -> float -> unit

(** Total observations, including non-positive ones. *)
val count : t -> int

val is_empty : t -> bool

(** Exact smallest / largest bucketed (positive finite) observation; [nan]
    if none. *)
val min : t -> float

val max : t -> float

(** [quantile t q] with [q] in [0,1]: estimate of the exact percentile
    under the same convention as [Stats.Sample.percentile] — rank
    [q * (n - 1)], linear interpolation between the two adjacent order
    statistics — within relative error {!alpha} (each order statistic is
    estimated within {!alpha}, and the convex combination preserves the
    bound; the extremes clamp to the exact {!min} / {!max}).
    Raises [Invalid_argument] if empty or [q] out of range. *)
val quantile : t -> float -> float

(** [percentile t p] = [quantile t (p /. 100.)]. *)
val percentile : t -> float -> float

(** Mean estimate from bucket midpoints (within {!alpha} relative error of
    the exact mean of the bucketed values; non-positive observations
    contribute zero). Accumulated in canonical ascending-bucket order, so
    the float result is independent of add interleaving and merge order. *)
val mean : t -> float

(** Number of nonzero buckets currently held. *)
val bucket_count : t -> int

(** Approximate resident size in words (the bucket window dominates). *)
val mem_words : t -> int

(** [merge ~into src] folds [src] into [into] ([src] is unchanged).
    Exactly associative and commutative. Raises [Invalid_argument] when
    the two sketches were created with different resolutions. *)
val merge : into:t -> t -> unit

(** Canonical binary encoding: independent of growth and merge history, so
    equal-content sketches encode byte-identically ([encode a = encode b]
    is a valid deep-equality check). *)
val encode : t -> string

(** Inverse of {!encode}. Raises [Invalid_argument] on malformed input. *)
val decode : string -> t
