(** Time-series recorder: periodic snapshots of a registry's gauges.

    The column set is frozen at {!create} (gauges registered later are not
    recorded), so the CSV column order is stable for a given wiring order.
    Driving the sampling clock is the caller's job — the simulator owns
    time, this module owns storage — so call {!sample} from a ticker. *)

type t

val create : ?sink:out_channel -> Registry.t -> t
(** Snapshot the registry's current gauge list as the column set. With
    [?sink], the series streams: the CSV header is written immediately and
    every {!sample} writes its row straight to the channel instead of
    retaining it, so memory stays O(columns) for arbitrarily long runs
    ({!rows} then returns [[]] and {!to_csv} re-emits only the header).
    The caller owns the channel. *)

val columns : t -> string list
(** ["t_ns"] followed by the gauge names, in registration order. *)

val sample : t -> now:int -> unit
(** Evaluate every column gauge at simulated time [now] (ns) and append a
    row — to memory, or directly to the sink in streaming mode. No-op
    (records nothing) when the registry is disabled. *)

val n_samples : t -> int
(** Total rows recorded, whether retained or streamed to the sink. *)

val rows : t -> (int * float array) list
(** (t_ns, values) in sample order; values align with [columns] minus the
    leading time column. Streamed rows are not retained, so this is [[]]
    in streaming mode. *)

val to_csv : t -> out_channel -> unit
(** Header row then one line per sample. *)
