(* Mergeable log-bucketed quantile sketch (DDSketch-style).

   A positive finite double [v] lands in bucket [bits_of_float v >> shift]
   with [shift = 52 - log2k]: the top bits of the IEEE encoding are the
   exponent plus the leading [log2k] mantissa bits, and for positive floats
   the bit pattern is monotone in the value. That gives K = 2^log2k
   sub-buckets per octave, so every bucket spans a relative width of at
   most 1/K and the bucket midpoint is within alpha = 1/(2K) relative error
   of any value in it.

   State is integer-only (bucket counts plus exact min/max, which merge by
   exact comparison), so [merge] is exactly associative and commutative:
   per-shard sketches from a PDES run combine into byte-identical state
   regardless of merge order — the property the sharded-vs-sequential
   differential gate checks via [encode].

   The hot path ([add]) is pure integer arithmetic after two float
   comparisons; everything else is control-plane. *)

type t = {
  log2k : int;
  shift : int;
  (* absolute bucket index of counts.(0); counts is a dense window that
     grows to cover the observed index range *)
  mutable offset : int;
  mutable counts : int array;
  mutable n_pos : int; (* bucketed observations: 0 < v <= max_float *)
  mutable n_other : int; (* zero / negative / NaN / infinite observations *)
  mutable min_v : float; (* exact extremes of the bucketed observations *)
  mutable max_v : float;
}

(* bfc-lint: control-plane *)
let create ?(alpha = 0.01) () =
  if not (alpha > 0.0 && alpha < 0.5) then invalid_arg "Sketch.create: alpha must be in (0, 0.5)";
  let k = 1.0 /. (2.0 *. alpha) in
  let log2k = int_of_float (Float.ceil (Float.log k /. Float.log 2.0)) in
  let log2k = Stdlib.max 0 (Stdlib.min 20 log2k) in
  {
    log2k;
    shift = 52 - log2k;
    offset = 0;
    counts = [||];
    n_pos = 0;
    n_other = 0;
    min_v = infinity;
    max_v = neg_infinity;
  }

(* bfc-lint: control-plane *)
let alpha t = 1.0 /. float_of_int (2 lsl t.log2k)

(* Extend the dense window to cover absolute bucket [idx], with slack on
   the growing side so repeated extension is amortised. Rare (the window
   settles after the first few octaves appear); bfc-lint: control-plane *)
let grow t idx =
  let len = Array.length t.counts in
  if len = 0 then begin
    t.offset <- idx;
    t.counts <- Array.make 8 0
  end
  else begin
    let lo = Stdlib.min idx t.offset in
    let hi = Stdlib.max (idx + 1) (t.offset + len) in
    let span = hi - lo in
    let cap = Stdlib.max span (2 * len) in
    let new_off = if idx < t.offset then Stdlib.max 0 (hi - cap) else lo in
    let nc = Array.make cap 0 in
    Array.blit t.counts 0 nc (t.offset - new_off) len;
    t.offset <- new_off;
    t.counts <- nc
  end

let add t v =
  if v > 0.0 && v <= max_float then begin
    let idx = Int64.to_int (Int64.shift_right_logical (Int64.bits_of_float v) t.shift) in
    let rel = idx - t.offset in
    if rel < 0 || rel >= Array.length t.counts then grow t idx;
    let rel = idx - t.offset in
    t.counts.(rel) <- t.counts.(rel) + 1;
    t.n_pos <- t.n_pos + 1;
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end
  else t.n_other <- t.n_other + 1

let count t = t.n_pos + t.n_other

let is_empty t = t.n_pos + t.n_other = 0

let min t = if t.n_pos = 0 then nan else t.min_v

let max t = if t.n_pos = 0 then nan else t.max_v

(* Lower edge of absolute bucket [i]: the smallest positive double whose
   top bits equal [i]. bfc-lint: control-plane *)
let edge_value t i = Int64.float_of_bits (Int64.shift_left (Int64.of_int i) t.shift)

(* Midpoint estimate for absolute bucket [i], clamped to the exact observed
   range (clamping can only reduce the error). bfc-lint: control-plane *)
let bucket_estimate t i =
  let lo = edge_value t i and hi = edge_value t (i + 1) in
  let mid = (lo +. hi) /. 2.0 in
  if mid < t.min_v then t.min_v else if mid > t.max_v then t.max_v else mid

(* Estimate of the rank-th order statistic (0-based). Non-positive
   observations sort below every bucketed one and are estimated as 0; the
   extreme bucketed ranks are the tracked exact min/max, so quantile 0
   and 1 are exact like Sample.percentile's. bfc-lint: control-plane *)
let order_stat t rank =
  if rank < t.n_other then 0.0
  else if rank = t.n_other then t.min_v
  else if rank = t.n_other + t.n_pos - 1 then t.max_v
  else begin
    let target = rank - t.n_other in
    let acc = ref 0 and i = ref 0 and found = ref (-1) in
    let len = Array.length t.counts in
    while !found < 0 && !i < len do
      acc := !acc + t.counts.(!i);
      if !acc > target then found := t.offset + !i;
      incr i
    done;
    bucket_estimate t !found
  end

(* bfc-lint: control-plane *)
let quantile t q =
  if not (q >= 0.0 && q <= 1.0) then invalid_arg "Sketch.quantile: q out of range";
  let total = t.n_pos + t.n_other in
  if total = 0 then invalid_arg "Sketch.quantile: empty sketch";
  if total = 1 then order_stat t 0
  else begin
    (* same convention as Stats.Sample.percentile: rank = q * (n-1), linear
       interpolation between the two adjacent order statistics. Each order
       statistic is estimated within alpha relative error, and a convex
       combination of positive values preserves that bound, so the estimate
       stays within alpha of the exact interpolated percentile. *)
    let rank = q *. float_of_int (total - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (total - 1) in
    let frac = rank -. float_of_int lo in
    if frac = 0.0 then order_stat t lo
    else begin
      let a = order_stat t lo and b = order_stat t hi in
      a +. (frac *. (b -. a))
    end
  end

(* bfc-lint: control-plane *)
let percentile t p =
  if not (p >= 0.0 && p <= 100.0) then invalid_arg "Sketch.percentile: p out of range";
  quantile t (p /. 100.0)

(* Mean estimate from bucket midpoints, accumulated in ascending bucket
   order (canonical: independent of add interleaving and merge order).
   Non-positive observations contribute 0. bfc-lint: control-plane *)
let mean t =
  let total = t.n_pos + t.n_other in
  if total = 0 then nan
  else begin
    let acc = ref 0.0 in
    Array.iteri
      (fun i c ->
        if c > 0 then acc := !acc +. (float_of_int c *. bucket_estimate t (t.offset + i)))
      t.counts;
    !acc /. float_of_int total
  end

let bucket_count t = Array.fold_left (fun a c -> if c > 0 then a + 1 else a) 0 t.counts

(* Rough resident size in words: the counts window plus the record. *)
let mem_words t = Array.length t.counts + 12

(* bfc-lint: control-plane *)
let merge ~into src =
  if into.log2k <> src.log2k then invalid_arg "Sketch.merge: mismatched resolution";
  let len = Array.length src.counts in
  let first = ref 0 in
  while !first < len && src.counts.(!first) = 0 do incr first done;
  if !first < len then begin
    let last = ref (len - 1) in
    while src.counts.(!last) = 0 do decr last done;
    let ensure idx =
      let rel = idx - into.offset in
      if rel < 0 || rel >= Array.length into.counts then grow into idx
    in
    ensure (src.offset + !first);
    ensure (src.offset + !last);
    for i = !first to !last do
      let c = src.counts.(i) in
      if c > 0 then begin
        let rel = src.offset + i - into.offset in
        into.counts.(rel) <- into.counts.(rel) + c
      end
    done
  end;
  into.n_pos <- into.n_pos + src.n_pos;
  into.n_other <- into.n_other + src.n_other;
  if src.min_v < into.min_v then into.min_v <- src.min_v;
  if src.max_v > into.max_v then into.max_v <- src.max_v

(* Canonical binary encoding: the stored window is trimmed to its nonzero
   span, so two sketches with identical contents but different growth
   histories (e.g. merged in different orders) encode byte-identically.
   bfc-lint: control-plane *)
let encode t =
  let len = Array.length t.counts in
  let first = ref 0 in
  while !first < len && t.counts.(!first) = 0 do incr first done;
  let last = ref (len - 1) in
  while !last >= !first && t.counts.(!last) = 0 do decr last done;
  let nb = if !first > !last then 0 else !last - !first + 1 in
  let buf = Buffer.create (64 + (8 * nb)) in
  Buffer.add_string buf "BFCSK1";
  Buffer.add_uint8 buf t.log2k;
  Buffer.add_int64_le buf (Int64.of_int (if nb = 0 then 0 else t.offset + !first));
  Buffer.add_int32_le buf (Int32.of_int nb);
  for i = !first to !first + nb - 1 do
    Buffer.add_int64_le buf (Int64.of_int t.counts.(i))
  done;
  Buffer.add_int64_le buf (Int64.of_int t.n_pos);
  Buffer.add_int64_le buf (Int64.of_int t.n_other);
  Buffer.add_int64_le buf (Int64.bits_of_float t.min_v);
  Buffer.add_int64_le buf (Int64.bits_of_float t.max_v);
  Buffer.contents buf

(* bfc-lint: control-plane *)
let decode s =
  let b = Bytes.of_string s in
  let blen = Bytes.length b in
  if blen < 19 || Bytes.sub_string b 0 6 <> "BFCSK1" then invalid_arg "Sketch.decode: bad magic";
  let log2k = Bytes.get_uint8 b 6 in
  if log2k > 20 then invalid_arg "Sketch.decode: bad resolution";
  let offset = Int64.to_int (Bytes.get_int64_le b 7) in
  let nb = Int32.to_int (Bytes.get_int32_le b 15) in
  if nb < 0 || blen <> 19 + (8 * nb) + 32 then invalid_arg "Sketch.decode: truncated";
  let counts = Array.init nb (fun i -> Int64.to_int (Bytes.get_int64_le b (19 + (8 * i)))) in
  let p = 19 + (8 * nb) in
  {
    log2k;
    shift = 52 - log2k;
    offset;
    counts;
    n_pos = Int64.to_int (Bytes.get_int64_le b p);
    n_other = Int64.to_int (Bytes.get_int64_le b (p + 8));
    min_v = Int64.float_of_bits (Bytes.get_int64_le b (p + 16));
    max_v = Int64.float_of_bits (Bytes.get_int64_le b (p + 24));
  }


