(* Standalone entry point for the bfc-lint static-analysis pass.

   bfc_lint [--json] [--suppressed] [--rules] [paths...]   (default path: lib) *)

let () =
  let json = ref false in
  let show_suppressed = ref false in
  let list_rules = ref false in
  let paths = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " Emit the report as JSON");
      ("--suppressed", Arg.Set show_suppressed, " Also print suppressed findings");
      ("--rules", Arg.Set list_rules, " List every rule and exit");
    ]
  in
  Arg.parse spec
    (fun p -> paths := p :: !paths)
    "bfc_lint [options] [paths]\nDataplane-feasibility, determinism and robustness checks.";
  if !list_rules then begin
    print_string (Bfclint.Driver.render_rules ());
    exit 0
  end;
  let paths = match List.rev !paths with [] -> [ "lib" ] | ps -> ps in
  let report = Bfclint.Driver.lint_paths paths in
  print_string
    (if !json then Bfclint.Driver.render_json report
     else Bfclint.Driver.render_human ~show_suppressed:!show_suppressed report);
  exit (Bfclint.Driver.exit_code report)
