(* Command-line front end for the BFC reproduction.

   bfc_sim list                         -- list experiment targets
   bfc_sim run fig9 fig13 --profile quick
   bfc_sim sweep --scheme bfc --load 0.6 --dist fb_hadoop
                                        -- one ad-hoc Clos run *)

open Cmdliner
module Experiments = Bfc_sim.Experiments
module Exp_common = Bfc_sim.Exp_common
module Scheme = Bfc_sim.Scheme
module Runner = Bfc_sim.Runner
module Metrics = Bfc_sim.Metrics
module Dist = Bfc_workload.Dist

let profile_conv =
  Arg.conv
    ( (fun s -> try Ok (Exp_common.profile_of_string s) with Invalid_argument m -> Error (`Msg m)),
      fun fmt p ->
        Format.pp_print_string fmt
          (match p with Exp_common.Smoke -> "smoke" | Quick -> "quick" | Paper -> "paper") )

let profile_arg =
  Arg.(value
      & opt profile_conv Exp_common.Quick
      & info [ "profile" ] ~docv:"PROFILE" ~doc:"Scale: smoke, quick or paper.")

let shards_arg =
  Arg.(value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Partition each simulation across $(docv) domains (conservative PDES, pod-wise \
             Clos partition). Results are byte-identical to $(docv)=1; composes with --jobs \
             (each sweep point gets its own shard set).")

let set_shards n =
  if n < 1 then begin
    Printf.eprintf "bfc_sim: --shards must be >= 1 (got %d)\n" n;
    exit 2
  end;
  Bfc_sim.Pdes.set_default_shards n

(* Streaming-observability flags, shared by run and sweep. *)
let streaming_flag =
  Arg.(value & flag
      & info [ "streaming" ]
          ~doc:
            "Bounded-memory observability: FCT stats go through mergeable quantile sketches \
             instead of exact per-flow samples (results identical at --shards N for any N).")

let flowlog_arg =
  Arg.(value & opt (some string) None
      & info [ "flowlog" ] ~docv:"FILE"
          ~doc:
            "Write completed flows as a binary flow trace to $(docv) (chunked, \
             constant-memory; replay with `bfc_sim flowlog`). Implies --streaming.")

let alpha_arg =
  Arg.(value & opt float 0.01
      & info [ "alpha" ] ~docv:"A"
          ~doc:"Relative-error bound of the streaming quantile sketches (default 1%).")

let progress_flag =
  Arg.(value & flag
      & info [ "progress" ]
          ~doc:"Print a live one-line progress report to stderr every sim-millisecond.")

let set_streaming_cli streaming flowlog alpha progress =
  if not (alpha > 0.0 && alpha < 0.5) then begin
    Printf.eprintf "bfc_sim: --alpha must be in (0, 0.5) (got %g)\n" alpha;
    exit 2
  end;
  Bfc_sim.Exp_common.set_streaming ~alpha ?flowlog ~progress
    (streaming || flowlog <> None || progress)

let list_cmd =
  let run () =
    List.iter
      (fun t -> Printf.printf "%-10s %s\n" t.Experiments.t_name t.Experiments.t_what)
      Experiments.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List experiment targets") Term.(const run $ const ())

let run_cmd =
  let targets = Arg.(value & pos_all string [] & info [] ~docv:"TARGET") in
  let run profile shards streaming flowlog alpha progress targets =
    set_shards shards;
    set_streaming_cli streaming flowlog alpha progress;
    let chosen =
      match targets with
      | [] -> Experiments.all
      | names ->
        List.map
          (fun n ->
            match Experiments.find n with
            | Some t -> t
            | None -> failwith (Printf.sprintf "unknown target %s (see `bfc_sim list`)" n))
          names
    in
    List.iter (Experiments.run_and_print profile) chosen
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run experiment targets (all if none given)")
    Term.(const run $ profile_arg $ shards_arg $ streaming_flag $ flowlog_arg $ alpha_arg
          $ progress_flag $ targets)

let scheme_conv =
  let parse = function
    | "bfc" -> Ok Scheme.bfc
    | "bfc128" -> Ok (Scheme.bfc_q 128)
    | "bfc-srf" -> Ok Scheme.bfc_srf
    | "bfc-credit" -> Ok Scheme.bfc_credit
    | "bfc-cc" -> Ok (Scheme.Bfc { Scheme.bfc_default with Scheme.delay_cc = true })
    | "ideal-fq" -> Ok Scheme.Ideal_fq
    | "ideal-srf" -> Ok Scheme.Ideal_srf
    | "dctcp" -> Ok Scheme.dctcp
    | "dctcp-ss" -> Ok (Scheme.Dctcp { slow_start = true })
    | "dcqcn" -> Ok Scheme.dcqcn
    | "hpcc" -> Ok Scheme.hpcc
    | "hpcc-pfc" -> Ok Scheme.hpcc_pfc
    | "swift" -> Ok Scheme.swift
    | "timely" -> Ok Scheme.timely
    | "pfc" -> Ok Scheme.pfc_only
    | "expresspass" -> Ok Scheme.expresspass
    | "homa" -> Ok Scheme.homa
    | "homa-ecmp" -> Ok Scheme.homa_ecmp
    | s -> Error (`Msg (Printf.sprintf "unknown scheme %s" s))
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Scheme.name s))

let dist_conv =
  Arg.conv
    ( (fun s -> try Ok (Dist.by_name s) with Invalid_argument m -> Error (`Msg m)),
      fun fmt d -> Format.pp_print_string fmt (Dist.name d) )

let sweep_cmd =
  let module Time = Bfc_engine.Time in
  let scheme = Arg.(value & opt scheme_conv Scheme.bfc & info [ "scheme" ] ~docv:"SCHEME") in
  let dist = Arg.(value & opt dist_conv Dist.fb_hadoop & info [ "dist" ] ~docv:"DIST") in
  let load = Arg.(value & opt float 0.6 & info [ "load" ] ~docv:"LOAD") in
  let incast = Arg.(value & opt (some int) None & info [ "incast" ] ~docv:"DEGREE") in
  let watchdog =
    Arg.(value & opt float 0.0
        & info [ "watchdog" ] ~docv:"US"
            ~doc:"Pause-watchdog timeout in microseconds on every device; 0 disables it.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ]) in
  let run profile scheme dist load incast watchdog seed shards streaming flowlog alpha progress =
    set_shards shards;
    set_streaming_cli streaming flowlog alpha progress;
    let s =
      {
        (Exp_common.std profile scheme) with
        Exp_common.sp_dist = dist;
        sp_load = load;
        sp_incast =
          Option.map (fun degree -> { Exp_common.default_incast with Exp_common.degree }) incast;
        sp_seed = seed;
        sp_params =
          (fun p ->
            {
              p with
              Runner.pause_watchdog =
                (if watchdog > 0.0 then Some (Time.us watchdog) else None);
            });
      }
    in
    let r = Exp_common.run_std s in
    Printf.printf "scheme=%s dist=%s load=%.2f completed=%d/%d drops=%d\n" (Scheme.name scheme)
      (Dist.name dist) load (Runner.completed r.Exp_common.env) (Runner.injected r.Exp_common.env)
      (Runner.total_drops r.Exp_common.env);
    if watchdog > 0.0 then
      Printf.printf "watchdog_fires=%d\n" (Metrics.watchdog_fires r.Exp_common.env);
    Exp_common.print_table
      {
        Exp_common.title = "FCT slowdown";
        header = [ "bucket"; "n"; "avg"; "p50"; "p95"; "p99" ];
        rows = Exp_common.fct_rows r;
      }
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"One ad-hoc Clos run with chosen scheme/workload/load")
    Term.(const run $ profile_arg $ scheme $ dist $ load $ incast $ watchdog $ seed $ shards_arg
          $ streaming_flag $ flowlog_arg $ alpha_arg $ progress_flag)

let trace_cmd =
  let module Time = Bfc_engine.Time in
  let module Telemetry = Bfc_sim.Telemetry in
  let scheme = Arg.(value & pos 0 scheme_conv Scheme.bfc & info [] ~docv:"SCHEME") in
  let dist = Arg.(value & opt dist_conv Dist.fb_hadoop & info [ "dist" ] ~docv:"DIST") in
  let load = Arg.(value & opt float 0.6 & info [ "load" ] ~docv:"LOAD") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ]) in
  let trace_out =
    Arg.(value & opt string "trace.json"
        & info [ "trace-out" ] ~docv:"FILE"
            ~doc:"Chrome trace-event JSON output (open in ui.perfetto.dev).")
  in
  let series_out =
    Arg.(value & opt (some string) None
        & info [ "series-out" ] ~docv:"FILE" ~doc:"Gauge time-series CSV output.")
  in
  let jsonl_out =
    Arg.(value & opt (some string) None
        & info [ "jsonl-out" ] ~docv:"FILE" ~doc:"Raw trace records as JSON lines.")
  in
  let trace_cap =
    Arg.(value & opt int 0
        & info [ "trace-cap" ] ~docv:"N"
            ~doc:"Trace ring capacity (oldest records overwritten); 0 = unbounded.")
  in
  let series_period =
    Arg.(value & opt float 10.0
        & info [ "series-period" ] ~docv:"US" ~doc:"Gauge sampling period in microseconds.")
  in
  let run profile scheme dist load seed trace_out series_out jsonl_out trace_cap series_period =
    let tel = ref None in
    let s =
      {
        (Exp_common.std profile scheme) with
        Exp_common.sp_dist = dist;
        sp_load = load;
        sp_seed = seed;
        sp_obs =
          (fun env ->
            tel :=
              Some
                (Telemetry.attach
                   ~config:
                     {
                       Telemetry.t_enabled = true;
                       t_trace = true;
                       t_trace_capacity = trace_cap;
                       t_series_period = Some (Time.us series_period);
                     }
                   env));
      }
    in
    let r = Exp_common.run_std s in
    let env = r.Exp_common.env in
    let tel = match !tel with Some t -> t | None -> assert false (* sp_obs always runs *) in
    let with_out path f =
      let oc = open_out path in
      f oc;
      close_out oc
    in
    with_out trace_out (Telemetry.write_trace tel);
    Printf.printf "wrote %s (%d trace records)\n" trace_out
      (match Telemetry.trace tel with
      | Some b -> Bfc_obs.Trace.length b
      | None -> 0);
    (match series_out with
    | None -> ()
    | Some path ->
      with_out path (Telemetry.write_series tel);
      Printf.printf "wrote %s (%d samples)\n" path
        (match Telemetry.series tel with Some s -> Bfc_obs.Series.n_samples s | None -> 0));
    (match jsonl_out with
    | None -> ()
    | Some path -> with_out path (Telemetry.write_jsonl tel));
    Printf.printf "scheme=%s dist=%s load=%.2f completed=%d/%d drops=%d\n" (Scheme.name scheme)
      (Dist.name dist) load (Runner.completed env) (Runner.injected env) (Runner.total_drops env);
    Printf.printf "counters: %s\n" (Telemetry.counters_json tel);
    Printf.printf "engine: %s\n" (Telemetry.engine_profile_json env)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "One Clos run with the telemetry subsystem attached: packet-lifecycle Perfetto trace, \
          gauge time series and engine self-profile")
    Term.(const run $ profile_arg $ scheme $ dist $ load $ seed $ trace_out $ series_out
          $ jsonl_out $ trace_cap $ series_period)

let faults_cmd =
  let module Time = Bfc_engine.Time in
  let module Topology = Bfc_net.Topology in
  let module Flow = Bfc_net.Flow in
  let module Loss = Bfc_fault.Loss in
  let module Injector = Bfc_fault.Injector in
  let module Auditor = Bfc_fault.Auditor in
  let scheme = Arg.(value & opt scheme_conv Scheme.bfc & info [ "scheme" ] ~docv:"SCHEME") in
  let senders = Arg.(value & opt int 32 & info [ "senders" ] ~docv:"N") in
  let size = Arg.(value & opt int 64_000 & info [ "size" ] ~docv:"BYTES") in
  let resume_loss =
    Arg.(value & opt float 0.0
        & info [ "resume-loss" ] ~docv:"P" ~doc:"Drop each Resume frame with probability $(docv).")
  in
  let ctrl_loss =
    Arg.(value & opt float 0.0
        & info [ "ctrl-loss" ] ~docv:"P"
            ~doc:"Drop each control frame (Pause/Resume/bitmap/PFC) with probability $(docv).")
  in
  let data_loss =
    Arg.(value & opt float 0.0
        & info [ "data-loss" ] ~docv:"P"
            ~doc:"Corrupt each data packet with probability $(docv) (lost at the receiver).")
  in
  let watchdog =
    Arg.(value & opt float 50.0
        & info [ "watchdog" ] ~docv:"US"
            ~doc:"Pause-watchdog timeout in microseconds; 0 disables it.")
  in
  let flaps =
    Arg.(value & opt int 0
        & info [ "flaps" ] ~docv:"N" ~doc:"Flap the bottleneck link $(docv) times (10us down/100us period).")
  in
  let reboot_at =
    Arg.(value & opt (some float) None
        & info [ "reboot-at" ] ~docv:"US" ~doc:"Crash and reboot the switch at $(docv) microseconds.")
  in
  let no_audit = Arg.(value & flag & info [ "no-audit" ] ~doc:"Skip the invariant auditor.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ]) in
  let run scheme senders size resume_loss ctrl_loss data_loss watchdog flaps reboot_at no_audit seed
      =
    List.iter
      (fun (flag, p) ->
        if not (p >= 0.0 && p <= 1.0) then begin
          Printf.eprintf "bfc_sim: %s must be a probability in [0, 1] (got %g)\n" flag p;
          exit 2
        end)
      [ ("--resume-loss", resume_loss); ("--ctrl-loss", ctrl_loss); ("--data-loss", data_loss) ];
    let sim = Bfc_engine.Sim.create () in
    let st = Topology.star sim ~senders ~gbps:100.0 ~prop:(Time.us 1.0) in
    let params =
      {
        Runner.default_params with
        Runner.pause_watchdog = (if watchdog > 0.0 then Some (Time.us watchdog) else None);
        seed;
      }
    in
    let env = Runner.setup ~topo:st.Topology.s ~scheme ~params in
    let inj = Injector.attach env in
    let loss = Loss.create ~seed in
    if resume_loss > 0.0 then Loss.add_prob loss ~p:resume_loss Loss.resumes;
    if ctrl_loss > 0.0 then Loss.add_prob loss ~p:ctrl_loss Loss.ctrl;
    if data_loss > 0.0 then Loss.add_prob loss ~corrupt:true ~p:data_loss Loss.data;
    Injector.set_loss_everywhere inj loss;
    let lossy = resume_loss > 0.0 || ctrl_loss > 0.0 || flaps > 0 || reboot_at <> None in
    let aud =
      if no_audit then None
      else
        Some
          (Auditor.attach
             ~config:
               {
                 Auditor.default_config with
                 Auditor.check_pairing = not lossy;
                 fail_fast = false;
               }
             env)
    in
    if flaps > 0 then
      Injector.flap inj ~gid:st.Topology.st_bottleneck_gid ~start:(Time.us 30.0)
        ~down_for:(Time.us 10.0) ~period:(Time.us 100.0) ~count:flaps;
    (match reboot_at with
    | None -> ()
    | Some us ->
      ignore
        (Bfc_engine.Sim.at sim (Time.us us) (fun () ->
             ignore
               (Injector.reboot_switch inj ~node:st.Topology.st_switch ~down_for:(Time.us 20.0) ()))));
    let flows =
      List.init senders (fun i ->
          Flow.make ~id:i ~src:st.Topology.st_senders.(i) ~dst:st.Topology.st_receiver ~size
            ~arrival:(Time.us (0.1 *. float_of_int i))
            ~is_incast:true ())
    in
    Runner.inject env flows;
    Runner.run env ~until:(Time.ms 1.0);
    Runner.drain env ~budget:(Time.ms 30.0);
    Printf.printf "scheme=%s completed=%d/%d drops=%d faults=%d (%d corrupted) watchdog=%d reboots=%d\n"
      (Scheme.name scheme) (Runner.completed env) (Runner.injected env) (Runner.total_drops env)
      (Injector.faults_injected inj) (Loss.corrupted loss) (Metrics.watchdog_fires env)
      (Metrics.reboots env);
    match aud with
    | None -> ()
    | Some aud ->
      Auditor.check aud;
      Printf.printf "audit: %d sweeps, %d violations\n" (Auditor.checks_run aud)
        (Auditor.violation_count aud);
      List.iter (fun v -> Printf.printf "  ! %s\n" (Auditor.to_string v)) (Auditor.violations aud)
  in
  Cmd.v
    (Cmd.info "faults" ~doc:"Incast under injected faults with the invariant auditor attached")
    Term.(const run $ scheme $ senders $ size $ resume_loss $ ctrl_loss $ data_loss $ watchdog
          $ flaps $ reboot_at $ no_audit $ seed)

let stress_cmd =
  let module Time = Bfc_engine.Time in
  let module Stress_exp = Bfc_stress.Stress_exp in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED") in
  let jobs =
    Arg.(value & opt int 1
        & info [ "jobs" ] ~docv:"N"
            ~doc:"Sweep cells over $(docv) domains; the table is byte-identical for any value.")
  in
  let watchdog =
    Arg.(value & opt float 50.0
        & info [ "watchdog" ] ~docv:"US"
            ~doc:
              "Pause-watchdog timeout in microseconds on every device in the Clos leg; 0 \
               disables it. The watchdog is what un-wedges peers of a crashed switch whose \
               Resume frames died with it (see README). The ring leg never arms one.")
  in
  let summary_out =
    Arg.(value & opt (some string) None
        & info [ "summary-out" ] ~docv:"FILE"
            ~doc:
              "Also write the matrix in canonical pipe-separated form to $(docv) — the replay \
               fixture format: same seed, same file bytes.")
  in
  let csv_dir =
    Arg.(value & opt (some string) None
        & info [ "csv-dir" ] ~docv:"DIR" ~doc:"Write each table as CSV into $(docv).")
  in
  let run profile seed jobs watchdog summary_out csv_dir =
    let tables = ref [] in
    let target = Stress_exp.target ~seed ~watchdog:(Time.us watchdog) () in
    let target =
      {
        target with
        Experiments.t_run =
          (fun p ->
            let ts = target.Experiments.t_run p in
            tables := ts;
            ts);
      }
    in
    Experiments.run_parallel ?csv_dir ~jobs profile target;
    match summary_out with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      List.iter
        (fun (t : Exp_common.table) ->
          output_string oc (t.Exp_common.title ^ "\n");
          List.iter
            (fun row -> output_string oc (String.concat "|" row ^ "\n"))
            (t.Exp_common.header :: t.Exp_common.rows))
        !tables;
      close_out oc;
      Printf.printf "wrote %s\n" path
  in
  Cmd.v
    (Cmd.info "stress"
       ~doc:
         "Adversity matrix: scheme x fault scenario on the Clos fabric plus the crafted \
          cyclic-buffer-dependency ring, with pause-storm / runtime-deadlock / victim-flow \
          detectors attached")
    Term.(const run $ profile_arg $ seed $ jobs $ watchdog $ summary_out $ csv_dir)

let stream_cmd =
  let flows =
    Arg.(value & opt int 2_000_000
        & info [ "flows" ] ~docv:"N" ~doc:"Number of single-MTU flows to push through the fabric.")
  in
  let exact =
    Arg.(value & flag
        & info [ "exact" ]
            ~doc:
              "Retain every flow record and exact slowdown sample instead of streaming \
               (the memory baseline the BENCH gate compares against).")
  in
  let scheme = Arg.(value & opt scheme_conv Scheme.bfc & info [ "scheme" ] ~docv:"SCHEME") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ]) in
  let run flows exact scheme seed flowlog alpha progress =
    if flows < 1 then begin
      Printf.eprintf "bfc_sim: --flows must be >= 1 (got %d)\n" flows;
      exit 2
    end;
    if not (alpha > 0.0 && alpha < 0.5) then begin
      Printf.eprintf "bfc_sim: --alpha must be in (0, 0.5) (got %g)\n" alpha;
      exit 2
    end;
    let r =
      Exp_common.run_stream ~scheme ~seed ~alpha ?flowlog ~progress ~streaming:(not exact) ~flows
        ()
    in
    let peak_bytes = float_of_int r.Exp_common.sr_peak_heap_words *. 8.0 in
    Printf.printf
      "mode=%s flows=%d/%d events=%d elapsed=%.2fs peak_heap=%.1fMB flows_per_gb=%.0f\n"
      (if r.Exp_common.sr_streaming then "streaming" else "exact")
      r.Exp_common.sr_completed r.Exp_common.sr_injected r.Exp_common.sr_events
      r.Exp_common.sr_elapsed_s (peak_bytes /. 1e6)
      (float_of_int r.Exp_common.sr_completed /. (peak_bytes /. 1e9));
    let row (s : Metrics.fct_stats) =
      [
        s.Metrics.bucket;
        string_of_int s.Metrics.count;
        Exp_common.cell s.Metrics.avg;
        Exp_common.cell s.Metrics.p50;
        Exp_common.cell s.Metrics.p95;
        Exp_common.cell s.Metrics.p99;
      ]
    in
    Exp_common.print_table
      {
        Exp_common.title = "FCT slowdown";
        header = [ "bucket"; "n"; "avg"; "p50"; "p95"; "p99" ];
        rows = row r.Exp_common.sr_overall :: List.map row r.Exp_common.sr_table;
      }
  in
  Cmd.v
    (Cmd.info "stream"
       ~doc:
         "Memory-scale run: millions of single-MTU flows through a Quick Clos with \
          sliding-window arrival generation, sketch-backed FCT stats and per-flow transport \
          state reclaimed after completion — resident memory tracks flows in flight, not flows \
          ever run")
    Term.(const run $ flows $ exact $ scheme $ seed $ flowlog_arg $ alpha_arg $ progress_flag)

let flowlog_cmd =
  let module Flowlog = Bfc_obs.Flowlog in
  let module Sketch = Bfc_obs.Sketch in
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let run path =
    let sk = Sketch.create ~alpha:0.01 () in
    let n = ref 0 and incast = ref 0 and bytes = ref 0 in
    let t_lo = ref infinity and t_hi = ref neg_infinity in
    let truncated =
      Flowlog.iter_file path ~f:(fun r ->
          incr n;
          if r.Flowlog.incast then incr incast;
          bytes := !bytes + r.Flowlog.size;
          if r.Flowlog.arrival < !t_lo then t_lo := r.Flowlog.arrival;
          if r.Flowlog.arrival > !t_hi then t_hi := r.Flowlog.arrival;
          if r.Flowlog.ideal > 0.0 then Sketch.add sk (r.Flowlog.fct /. r.Flowlog.ideal))
    in
    Printf.printf "flowlog %s: records=%d incast=%d bytes=%d truncated=%b\n" path !n !incast !bytes
      truncated;
    if !n > 0 then
      Printf.printf "arrivals: %.6fs .. %.6fs\n" !t_lo !t_hi;
    if not (Sketch.is_empty sk) then
      Printf.printf "slowdown: mean=%.3f p50=%.3f p95=%.3f p99=%.3f\n" (Sketch.mean sk)
        (Sketch.percentile sk 50.0) (Sketch.percentile sk 95.0) (Sketch.percentile sk 99.0);
    if truncated then Stdlib.exit 3
  in
  Cmd.v
    (Cmd.info "flowlog"
       ~doc:
         "Replay a binary flow trace incrementally (O(chunk) memory however large the file) and \
          summarise it; exits 3 if the file ends mid-chunk")
    Term.(const run $ path)

let ir_cmd =
  let validate =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:
            "Check every builtin pipeline against the hardware budget and require each \
             committed infeasible fixture to be rejected with at least one error; exit 1 on \
             any failure.")
  in
  let dump =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump" ] ~docv:"NAME" ~doc:"Print the named pipeline's stages, tables and actions.")
  in
  let diags =
    Arg.(
      value
      & opt (some string) None
      & info [ "diags" ] ~docv:"NAME"
          ~doc:"Print the named pipeline's validator diagnostics (golden-fixture format).")
  in
  let run validate dump diags =
    let builtins = Bfc_ir.Bfc_pipeline.builtins () in
    let infeasible = Bfc_ir.Bfc_pipeline.infeasible () in
    let find name =
      match List.assoc_opt name builtins with
      | Some p -> Some p
      | None -> List.assoc_opt name infeasible
    in
    let unknown name =
      Printf.eprintf "unknown pipeline %s (try: %s)\n" name
        (String.concat ", " (List.map fst (builtins @ infeasible)));
      Stdlib.exit 2
    in
    match (dump, diags) with
    | Some name, _ -> (
      match find name with Some p -> print_string (Bfc_ir.Ir.dump p) | None -> unknown name)
    | None, Some name -> (
      match find name with
      | Some p ->
        List.iter (fun d -> print_endline (Bfc_ir.Validate.to_human d)) (Bfc_ir.Validate.check p)
      | None -> unknown name)
    | None, None ->
      if validate then begin
        let failed = ref false in
        List.iter
          (fun (name, p) ->
            let ds = Bfc_ir.Validate.check p in
            if Bfc_ir.Validate.has_errors ds then begin
              failed := true;
              Printf.printf "FAIL %-14s feasible pipeline rejected:\n" name;
              List.iter
                (fun d -> print_endline ("  " ^ Bfc_ir.Validate.to_human d))
                (Bfc_ir.Validate.errors ds)
            end
            else Printf.printf "ok   %-14s valid (%d stages)\n" name (List.length p.Bfc_ir.Ir.p_stages))
          builtins;
        List.iter
          (fun (name, p) ->
            match Bfc_ir.Validate.check p with
            | d :: _ ->
              Printf.printf "ok   %-14s rejected as expected (%s)\n" name d.Bfc_ir.Validate.code
            | [] ->
              failed := true;
              Printf.printf "FAIL %-14s infeasible fixture passed validation\n" name)
          infeasible;
        if !failed then Stdlib.exit 1
      end
      else
        List.iter (fun (_, p) -> print_string (Bfc_ir.Validate.report p ^ "\n")) builtins
  in
  Cmd.v
    (Cmd.info "ir"
       ~doc:
         "Match-action pipeline IR: list the builtin dataplane programs with their stage/SRAM \
          budgets, validate them (and the committed infeasible fixtures) against the hardware \
          model, or dump one as text")
    Term.(const run $ validate $ dump $ diags)

let lint_cmd =
  let paths =
    Arg.(value & pos_all string [] & info [] ~docv:"PATH" ~doc:"Files or directories to lint.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.") in
  let show_suppressed =
    Arg.(value & flag & info [ "suppressed" ] ~doc:"Also print suppressed findings.")
  in
  let rules = Arg.(value & flag & info [ "rules" ] ~doc:"List every rule and exit.") in
  let run paths json show_suppressed rules =
    if rules then print_string (Bfclint.Driver.render_rules ())
    else begin
      let paths = match paths with [] -> [ "lib" ] | ps -> ps in
      let report = Bfclint.Driver.lint_paths paths in
      print_string
        (if json then Bfclint.Driver.render_json report
         else Bfclint.Driver.render_human ~show_suppressed report);
      Stdlib.exit (Bfclint.Driver.exit_code report)
    end
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static dataplane-feasibility, determinism and robustness checks over the sources \
          (compile-time companion to the runtime fault auditor)")
    Term.(const run $ paths $ json $ show_suppressed $ rules)

let () =
  let doc = "Backpressure Flow Control (NSDI 2022) reproduction" in
  let info = Cmd.info "bfc_sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; sweep_cmd; trace_cmd; faults_cmd; stress_cmd; stream_cmd;
            flowlog_cmd; ir_cmd; lint_cmd ]))
