(* Final test battery: properties of the newest components (Swift, Timely,
   credit-gated NIC) and a few remaining edge cases. *)

module Time = Bfc_engine.Time
module Sim = Bfc_engine.Sim
module Flow = Bfc_net.Flow
module Packet = Bfc_net.Packet
module Topology = Bfc_net.Topology
module Nic = Bfc_transport.Nic
module Swift = Bfc_transport.Swift
module Timely = Bfc_transport.Timely
module Active_flows = Bfc_core.Active_flows
module Dist = Bfc_workload.Dist

let check = Alcotest.check

(* ----------------------------- Properties --------------------------- *)

let prop_swift_window_floor =
  QCheck.Test.make ~name:"swift window never below one MTU" ~count:100
    QCheck.(list (int_range 1_000 1_000_000))
    (fun rtts ->
      let sw = Swift.create ~mtu:1000 ~bdp:100_000 ~base_rtt:8_000 ~target_mult:1.5 ~beta:0.8 in
      let now = ref 0 in
      List.iter
        (fun rtt ->
          now := !now + 2_000;
          Swift.on_ack sw ~rtt ~now:!now)
        rtts;
      Swift.window sw >= 1000)

let prop_timely_rate_bounded =
  QCheck.Test.make ~name:"timely rate stays within [line/1000, line]" ~count:100
    QCheck.(list (int_range 1_000 1_000_000))
    (fun rtts ->
      let tm = Timely.create ~line_gbps:100.0 ~base_rtt:8_000 ~t_low:10_000 ~t_high:16_000 in
      List.iter (fun rtt -> Timely.on_ack tm ~rtt) rtts;
      let r = Timely.rate tm in
      r >= 12.5 /. 1000.0 -. 1e-9 && r <= 12.5 +. 1e-9)

let prop_active_flows_quantile_consistent =
  QCheck.Test.make ~name:"cdf(quantile(p)) >= p" ~count:100
    QCheck.(pair (float_range 0.05 0.9) (float_range 0.01 0.99))
    (fun (rho, p) ->
      let n = Active_flows.quantile ~rho ~p in
      Active_flows.cdf ~rho n >= p -. 1e-9)

let prop_byte_cdf_monotone =
  QCheck.Test.make ~name:"byte cdf is monotone in size" ~count:100
    QCheck.(pair (float_range 100.0 1e7) (float_range 100.0 1e7))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Dist.byte_cdf Dist.google lo <= Dist.byte_cdf Dist.google hi +. 1e-9)

let prop_ecmp_in_candidates =
  QCheck.Test.make ~name:"ecmp choice is always a valid candidate" ~count:50
    QCheck.(int_range 0 100_000)
    (fun id ->
      let sim = Sim.create () in
      let cl = Topology.clos sim ~spines:3 ~tors:3 ~hosts_per_tor:2 ~gbps:100.0 ~prop:1000 in
      let t = cl.Topology.t in
      let hosts = cl.Topology.cl_hosts in
      let f = Flow.make ~id ~src:hosts.(0) ~dst:hosts.(5) ~size:1 ~arrival:0 () in
      let tor = cl.Topology.tors.(0) in
      let choice = Topology.ecmp_port t ~node:tor ~flow:f ~dst:f.Flow.dst in
      Array.mem choice (Topology.candidates t ~node:tor ~dst:f.Flow.dst))

(* -------------------------- Credit-gated NIC ------------------------ *)

let mk_nic_credit () =
  let sim = Sim.create () in
  let b = Topology.Builder.create sim in
  let h = Topology.Builder.add_host b ~name:"h" in
  let z = Topology.Builder.add_host b ~name:"z" in
  Topology.Builder.link b h z ~gbps:100.0 ~prop:(Time.us 1.0);
  let t = Topology.Builder.finish b in
  let received = ref [] in
  (Topology.node t z).Bfc_net.Node.handler <- (fun ~in_port:_ pkt -> received := pkt :: !received);
  (Topology.node t h).Bfc_net.Node.handler <- (fun ~in_port:_ _ -> ());
  let nic =
    Nic.create ~sim ~port:(Topology.ports t h).(0) ~n_queues:8 ~policy:Bfc_switch.Sched.Drr
      ~respect_pause:true ~credit:2_200 ()
  in
  (sim, nic, received)

let data_pkt flow_id =
  let f = Flow.make ~id:flow_id ~src:0 ~dst:1 ~size:100_000 ~arrival:0 () in
  Packet.data ~flow:f ~seq:0 ~payload:1000 ()

let test_nic_credit_gates_data () =
  let sim, nic, received = mk_nic_credit () in
  let q = Nic.alloc_queue nic in
  (* 2200 B of credit covers two 1048 B packets; the third must wait *)
  for _ = 1 to 4 do
    Nic.submit nic ~queue:q (data_pkt 1)
  done;
  ignore (Sim.run sim ~until:(Time.us 200.0));
  check Alcotest.int "two sent on initial credit" 2 (List.length !received);
  (* return one credit *)
  let credit = Packet.make Packet.Hop_credit ~src:(-1) ~dst:(-1) ~size:64 () in
  credit.Packet.ctrl_a <- q;
  credit.Packet.ctrl_b <- 1048;
  Nic.on_ctrl nic credit;
  ignore (Sim.run sim ~until:(Time.us 400.0));
  check Alcotest.int "third released by the credit" 3 (List.length !received)

let test_nic_credit_exempts_ctrl_queue () =
  let sim, nic, received = mk_nic_credit () in
  (* queue 0 (acks) is never credit-gated *)
  for _ = 1 to 5 do
    Nic.submit_ctrl nic (Packet.make Packet.Ack ~src:0 ~dst:1 ~size:64 ())
  done;
  ignore (Sim.run_until_idle sim);
  check Alcotest.int "all acks flow" 5 (List.length !received)

(* ------------------------------ Edge cases -------------------------- *)

let test_topology_invalid_dst () =
  let sim = Sim.create () in
  let cl = Topology.clos sim ~spines:2 ~tors:2 ~hosts_per_tor:2 ~gbps:100.0 ~prop:1000 in
  Alcotest.(check bool) "candidates to a switch raises" true
    (try
       ignore (Topology.candidates cl.Topology.t ~node:cl.Topology.cl_hosts.(0) ~dst:cl.Topology.tors.(0));
       false
     with Invalid_argument _ -> true)

let test_sim_cancel_after_fire_is_noop () =
  let sim = Sim.create () in
  let n = ref 0 in
  let h = Sim.at sim 5 (fun () -> incr n) in
  ignore (Sim.run_until_idle sim);
  Sim.cancel h (* already fired: must not blow up or unfire *);
  check Alcotest.int "fired exactly once" 1 !n

let test_flow_fct_incomplete_raises () =
  let f = Flow.make ~id:1 ~src:0 ~dst:1 ~size:10 ~arrival:0 () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Flow.fct f);
       false
     with Invalid_argument _ -> true)

let test_model_invalid_args () =
  Alcotest.(check bool) "x <= 1 rejected" true
    (try
       ignore (Bfc_core.Model.ef ~x:1.0 ~th_ratio:1.0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative th rejected" true
    (try
       ignore (Bfc_core.Model.ef ~x:2.0 ~th_ratio:(-1.0));
       false
     with Invalid_argument _ -> true)

let test_active_flows_invalid_rho () =
  Alcotest.(check bool) "rho >= 1 rejected" true
    (try
       ignore (Active_flows.mean ~rho:1.0);
       false
     with Invalid_argument _ -> true)

(* ------------------- Every bench target, end to end ----------------- *)

let test_every_experiment_target_runs () =
  (* the whole registry at smoke scale: the bench harness must never crash
     and every produced table must be well-formed *)
  List.iter
    (fun t ->
      let tables = t.Bfc_sim.Experiments.t_run Bfc_sim.Exp_common.Smoke in
      Alcotest.(check bool)
        (t.Bfc_sim.Experiments.t_name ^ " produces tables")
        true (tables <> []);
      List.iter
        (fun tbl ->
          let w = List.length tbl.Bfc_sim.Exp_common.header in
          Alcotest.(check bool)
            (t.Bfc_sim.Experiments.t_name ^ " rows match header width")
            true
            (List.for_all (fun r -> List.length r = w) tbl.Bfc_sim.Exp_common.rows))
        tables)
    Bfc_sim.Experiments.all

let suite =
  [
    ("every bench target runs (smoke)", `Slow, test_every_experiment_target_runs);
    ("nic credit gates data", `Quick, test_nic_credit_gates_data);
    ("nic credit exempts ctrl", `Quick, test_nic_credit_exempts_ctrl_queue);
    ("topology invalid dst", `Quick, test_topology_invalid_dst);
    ("sim cancel after fire", `Quick, test_sim_cancel_after_fire_is_noop);
    ("flow fct incomplete", `Quick, test_flow_fct_incomplete_raises);
    ("model invalid args", `Quick, test_model_invalid_args);
    ("active flows invalid rho", `Quick, test_active_flows_invalid_rho);
    QCheck_alcotest.to_alcotest prop_swift_window_floor;
    QCheck_alcotest.to_alcotest prop_timely_rate_bounded;
    QCheck_alcotest.to_alcotest prop_active_flows_quantile_consistent;
    QCheck_alcotest.to_alcotest prop_byte_cdf_monotone;
    QCheck_alcotest.to_alcotest prop_ecmp_in_candidates;
  ]
