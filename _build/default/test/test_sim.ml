(* Integration tests: full scheme runs on small topologies, invariants
   (completion, conservation, no-drop for BFC, determinism), and metrics. *)

module Time = Bfc_engine.Time
module Sim = Bfc_engine.Sim
module Flow = Bfc_net.Flow
module Topology = Bfc_net.Topology
module Switch = Bfc_switch.Switch
module Scheme = Bfc_sim.Scheme
module Runner = Bfc_sim.Runner
module Metrics = Bfc_sim.Metrics
module Exp_common = Bfc_sim.Exp_common
module Traffic = Bfc_workload.Traffic
module Dist = Bfc_workload.Dist
module Arrivals = Bfc_workload.Arrivals

let check = Alcotest.check

let smoke scheme ?(seed = 1) ?(incast = None) ?(load = 0.6) () =
  Exp_common.run_std
    {
      (Exp_common.std Exp_common.Smoke scheme) with
      Exp_common.sp_seed = seed;
      sp_incast = incast;
      sp_load = load;
      sp_dist = Dist.google;
    }

let test_all_schemes_complete () =
  List.iter
    (fun scheme ->
      let r = smoke scheme () in
      let name = Scheme.name scheme in
      check Alcotest.int
        (name ^ " completes everything")
        (Runner.injected r.Exp_common.env)
        (Runner.completed r.Exp_common.env))
    [
      Scheme.bfc;
      Scheme.bfc_srf;
      Scheme.Ideal_fq;
      Scheme.dctcp;
      Scheme.dcqcn;
      Scheme.hpcc;
      Scheme.hpcc_pfc;
      Scheme.expresspass;
      Scheme.homa;
      Scheme.swift;
      Scheme.timely;
      Scheme.pfc_only;
      Scheme.bfc_credit;
    ]

let test_bfc_no_drops () =
  let r = smoke Scheme.bfc () in
  check Alcotest.int "BFC drops nothing" 0 (Runner.total_drops r.Exp_common.env)

let test_bfc_no_drops_under_incast () =
  let r = smoke Scheme.bfc ~incast:(Some { Exp_common.degree = 6; agg_frac_of_paper = 0.5 }) () in
  check Alcotest.int "BFC absorbs a small incast without loss" 0
    (Runner.total_drops r.Exp_common.env)

let test_delivered_bytes_match_sizes () =
  let r = smoke Scheme.bfc () in
  List.iter
    (fun f ->
      if Flow.complete f then
        check Alcotest.int "delivered = size" f.Flow.size f.Flow.delivered)
    r.Exp_common.flows

let test_slowdown_at_least_one () =
  let r = smoke Scheme.bfc () in
  List.iter
    (fun f ->
      if Flow.complete f then begin
        let s = Runner.slowdown r.Exp_common.env f in
        Alcotest.(check bool)
          (Printf.sprintf "slowdown >= ~1 (flow %d: %.3f)" f.Flow.id s)
          true (s > 0.95)
      end)
    r.Exp_common.flows

let test_deterministic_same_seed () =
  let fct_list r =
    List.filter_map
      (fun f -> if Flow.complete f then Some (f.Flow.id, Flow.fct f) else None)
      r.Exp_common.flows
  in
  let a = smoke Scheme.bfc ~seed:5 () and b = smoke Scheme.bfc ~seed:5 () in
  check
    Alcotest.(list (pair int int))
    "same seed, same FCTs" (fct_list a) (fct_list b)

let test_different_seed_differs () =
  let a = smoke Scheme.bfc ~seed:5 () and b = smoke Scheme.bfc ~seed:6 () in
  let total r =
    List.fold_left
      (fun acc f -> if Flow.complete f then acc + Flow.fct f else acc)
      0 r.Exp_common.flows
  in
  Alcotest.(check bool) "different seeds give different runs" true (total a <> total b)

let test_bfc_close_to_ideal () =
  let bfc = smoke Scheme.bfc () and ideal = smoke Scheme.Ideal_fq () in
  let p99 r = Metrics.short_p99 r.Exp_common.env r.Exp_common.flows in
  let b = p99 bfc and i = p99 ideal in
  Alcotest.(check bool)
    (Printf.sprintf "BFC short p99 within 2.5x of Ideal-FQ (%.2f vs %.2f)" b i)
    true
    (b < 2.5 *. i +. 0.5)

let test_dctcp_worse_than_bfc_at_tail () =
  let bfc = smoke Scheme.bfc () and dctcp = smoke Scheme.dctcp () in
  let p99 r = Metrics.short_p99 r.Exp_common.env r.Exp_common.flows in
  Alcotest.(check bool)
    (Printf.sprintf "paper's headline direction (bfc %.2f vs dctcp %.2f)" (p99 bfc) (p99 dctcp))
    true
    (p99 bfc < p99 dctcp)

let test_bfc_buffer_below_dctcp () =
  let inc = Some { Exp_common.degree = 6; agg_frac_of_paper = 1.0 } in
  let bfc = smoke Scheme.bfc ~incast:inc () and dctcp = smoke Scheme.dctcp ~incast:inc () in
  Alcotest.(check bool) "BFC keeps buffers smaller under incast" true
    (Exp_common.buffer_p99 bfc <= Exp_common.buffer_p99 dctcp)

let test_pauses_happen_and_drain () =
  let r =
    smoke Scheme.bfc ~load:0.8 ~incast:(Some { Exp_common.degree = 6; agg_frac_of_paper = 1.0 }) ()
  in
  let pauses, resumes =
    Array.fold_left
      (fun (p, rs) dp ->
        let st = Bfc_core.Dataplane.stats dp in
        (p + st.Bfc_core.Dataplane.pauses_sent, rs + st.Bfc_core.Dataplane.resumes_sent))
      (0, 0)
      (Runner.dataplanes r.Exp_common.env)
  in
  Alcotest.(check bool) "backpressure exercised" true (pauses > 0);
  check Alcotest.int "every pause matched by a resume" pauses resumes;
  Array.iter
    (fun dp ->
      check Alcotest.int "pause counters empty at the end" 0
        (Bfc_core.Pause_counter.total (Bfc_core.Dataplane.pause_counters dp)))
    (Runner.dataplanes r.Exp_common.env)

let test_gbn_recovers_from_drops () =
  (* DCTCP with a pathologically small buffer: drops happen, flows still
     complete thanks to NACK/RTO recovery *)
  let r =
    Exp_common.run_std
      {
        (Exp_common.std Exp_common.Smoke Scheme.dctcp) with
        Exp_common.sp_dist = Dist.google;
        sp_params =
          (fun p -> { p with Runner.buffer_bytes = 150_000; pfc_frac = 2.0 (* disable PFC *) });
      }
  in
  Alcotest.(check bool) "drops occurred" true (Runner.total_drops r.Exp_common.env > 0);
  check Alcotest.int "all flows still complete"
    (Runner.injected r.Exp_common.env)
    (Runner.completed r.Exp_common.env)

let test_pfc_prevents_drops () =
  (* same tiny buffer with PFC enabled: pauses instead of losses *)
  let r =
    Exp_common.run_std
      {
        (Exp_common.std Exp_common.Smoke Scheme.dctcp) with
        Exp_common.sp_dist = Dist.google;
        sp_params = (fun p -> { p with Runner.buffer_bytes = 600_000 });
      }
  in
  Alcotest.(check bool) "PFC kicked in" true (Runner.pfc_pause_fraction r.Exp_common.env > 0.0);
  check Alcotest.int "no drops with PFC" 0 (Runner.total_drops r.Exp_common.env)

let test_hpcc_pfc_perfect_rtx () =
  let r =
    Exp_common.run_std
      {
        (Exp_common.std Exp_common.Smoke Scheme.hpcc_pfc) with
        Exp_common.sp_dist = Dist.google;
        sp_incast = Some { Exp_common.degree = 6; agg_frac_of_paper = 1.0 };
        sp_params = (fun p -> { p with Runner.buffer_bytes = 400_000 });
      }
  in
  check Alcotest.int "completes despite drops"
    (Runner.injected r.Exp_common.env)
    (Runner.completed r.Exp_common.env)

let test_metrics_buckets () =
  let r = smoke Scheme.bfc () in
  let table = Metrics.fct_table r.Exp_common.env r.Exp_common.flows in
  check Alcotest.int "all buckets present" (List.length Metrics.size_buckets) (List.length table);
  let total = List.fold_left (fun acc s -> acc + s.Metrics.count) 0 table in
  let non_incast = List.length (List.filter (fun f -> not f.Flow.is_incast) r.Exp_common.flows) in
  Alcotest.(check bool) "bucket counts cover completed flows" true (total <= non_incast);
  List.iter
    (fun s ->
      if s.Metrics.count > 0 then begin
        Alcotest.(check bool) "p99 >= p50" true (s.Metrics.p99 >= s.Metrics.p50);
        Alcotest.(check bool) "avg positive" true (s.Metrics.avg > 0.0)
      end)
    table

let test_utilization_probe () =
  let sim = Sim.create () in
  let st = Topology.star sim ~senders:2 ~gbps:100.0 ~prop:(Time.us 1.0) in
  let env = Runner.setup ~topo:st.Topology.s ~scheme:Scheme.bfc ~params:Runner.default_params in
  let ids = ref 0 in
  let flows =
    Traffic.long_lived ~pairs:[| (st.Topology.st_senders.(0), st.Topology.st_receiver) |] ~ids ()
  in
  let probe = Metrics.utilization_probe env ~gid:st.Topology.st_bottleneck_gid in
  Runner.inject env flows;
  Runner.run env ~until:(Time.ms 1.0);
  let u = Metrics.utilization probe in
  Alcotest.(check bool)
    (Printf.sprintf "single line-rate flow saturates the link (%.2f)" u)
    true (u > 0.9)

let test_watch_buffers_samples () =
  let r = smoke Scheme.bfc () in
  Alcotest.(check bool) "buffer samples collected" true
    (Bfc_util.Stats.Sample.count r.Exp_common.buffers > 10)

let test_runner_host_errors () =
  let sim = Sim.create () in
  let st = Topology.star sim ~senders:2 ~gbps:100.0 ~prop:(Time.us 1.0) in
  let env = Runner.setup ~topo:st.Topology.s ~scheme:Scheme.bfc ~params:Runner.default_params in
  Alcotest.(check bool) "asking for a switch as host raises" true
    (try
       ignore (Runner.host env st.Topology.st_switch);
       false
     with Invalid_argument _ -> true)

let test_classes_partition () =
  (* multi-class run completes and classes see traffic *)
  let r =
    Exp_common.run_std
      {
        (Exp_common.std Exp_common.Smoke
           (Scheme.Bfc { Scheme.bfc_default with Scheme.classes = 4 }))
        with
        Exp_common.sp_classes = 4;
        sp_dist = Dist.google;
      }
  in
  check Alcotest.int "completes" (Runner.injected r.Exp_common.env)
    (Runner.completed r.Exp_common.env);
  for c = 0 to 3 do
    let n = List.length (List.filter (fun f -> f.Flow.prio_class = c) r.Exp_common.flows) in
    Alcotest.(check bool) (Printf.sprintf "class %d nonempty" c) true (n > 0)
  done

let test_deadlock_filter_run () =
  (* running with the App B elision filter must not break anything on Clos *)
  let r =
    Exp_common.run_std
      {
        (Exp_common.std Exp_common.Smoke Scheme.bfc) with
        Exp_common.sp_dist = Dist.google;
        sp_params = (fun p -> { p with Runner.deadlock_filter = true });
      }
  in
  check Alcotest.int "completes with filter" (Runner.injected r.Exp_common.env)
    (Runner.completed r.Exp_common.env)

let test_cross_dc_setup () =
  let sim = Sim.create () in
  let x =
    Topology.cross_dc sim ~spines:2 ~tors:2 ~hosts_per_tor:2 ~gbps:100.0 ~prop:(Time.us 1.0)
      ~wan_gbps:200.0 ~wan_prop:(Time.us 50.0)
  in
  let env = Runner.setup ~topo:x.Topology.x ~scheme:Scheme.bfc ~params:Runner.default_params in
  let ids = ref 0 in
  let h1 = x.Topology.dc1.Topology.xc_hosts and h2 = x.Topology.dc2.Topology.xc_hosts in
  let flows =
    Traffic.long_lived ~pairs:[| (h1.(0), h2.(0)) |] ~size:2_000_000 ~ids ()
    @ [ Flow.make ~id:!ids ~src:h1.(1) ~dst:h1.(2) ~size:10_000 ~arrival:(Time.us 10.0) () ]
  in
  Runner.inject env flows;
  Runner.run env ~until:(Time.ms 3.0);
  Runner.drain env ~budget:(Time.ms 10.0);
  let intra = List.nth flows 1 in
  Alcotest.(check bool) "intra-DC flow completes quickly despite WAN flow" true
    (Flow.complete intra);
  check Alcotest.int "no drops" 0 (Runner.total_drops env)

let suite =
  [
    ("all schemes complete", `Slow, test_all_schemes_complete);
    ("bfc no drops", `Quick, test_bfc_no_drops);
    ("bfc no drops under incast", `Quick, test_bfc_no_drops_under_incast);
    ("delivered bytes match", `Quick, test_delivered_bytes_match_sizes);
    ("slowdown >= 1", `Quick, test_slowdown_at_least_one);
    ("deterministic", `Quick, test_deterministic_same_seed);
    ("seed sensitivity", `Quick, test_different_seed_differs);
    ("bfc close to ideal", `Quick, test_bfc_close_to_ideal);
    ("bfc beats dctcp tail", `Quick, test_dctcp_worse_than_bfc_at_tail);
    ("bfc buffer below dctcp", `Quick, test_bfc_buffer_below_dctcp);
    ("pauses happen and drain", `Quick, test_pauses_happen_and_drain);
    ("gbn recovers from drops", `Quick, test_gbn_recovers_from_drops);
    ("pfc prevents drops", `Quick, test_pfc_prevents_drops);
    ("hpcc-pfc perfect rtx", `Quick, test_hpcc_pfc_perfect_rtx);
    ("metrics buckets", `Quick, test_metrics_buckets);
    ("utilization probe", `Quick, test_utilization_probe);
    ("watch buffers", `Quick, test_watch_buffers_samples);
    ("runner host errors", `Quick, test_runner_host_errors);
    ("classes partition", `Quick, test_classes_partition);
    ("deadlock filter run", `Quick, test_deadlock_filter_run);
    ("cross-dc setup", `Quick, test_cross_dc_setup);
  ]
