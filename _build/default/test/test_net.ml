(* Tests for the network substrate: flows, packets, topology, routing. *)

module Time = Bfc_engine.Time
module Sim = Bfc_engine.Sim
module Flow = Bfc_net.Flow
module Packet = Bfc_net.Packet
module Node = Bfc_net.Node
module Port = Bfc_net.Port
module Topology = Bfc_net.Topology

let check = Alcotest.check

(* ------------------------------- Flow ------------------------------ *)

let test_flow_lifecycle () =
  let f = Flow.make ~id:1 ~src:0 ~dst:1 ~size:1000 ~arrival:50 () in
  Alcotest.(check bool) "not complete" false (Flow.complete f);
  f.Flow.finish <- 150;
  Alcotest.(check bool) "complete" true (Flow.complete f);
  check Alcotest.int "fct" 100 (Flow.fct f)

let test_flow_invalid_size () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Flow.make ~id:1 ~src:0 ~dst:1 ~size:0 ~arrival:0 ());
       false
     with Invalid_argument _ -> true)

let test_flow_hash_spread () =
  (* distinct ids should rarely collide in 30-bit space *)
  let seen = Hashtbl.create 64 in
  let collisions = ref 0 in
  for id = 0 to 9_999 do
    let f = Flow.make ~id ~src:0 ~dst:1 ~size:1 ~arrival:0 () in
    let h = Flow.hash f in
    if Hashtbl.mem seen h then incr collisions else Hashtbl.add seen h ()
  done;
  Alcotest.(check bool) "few collisions" true (!collisions < 3)

(* ------------------------------ Packet ----------------------------- *)

let test_packet_data () =
  let f = Flow.make ~id:9 ~src:3 ~dst:7 ~size:5000 ~arrival:0 ~prio_class:2 () in
  let p = Packet.data ~flow:f ~seq:1000 ~payload:1000 () in
  check Alcotest.int "wire size" (1000 + Packet.header_bytes) p.Packet.size;
  check Alcotest.int "src" 3 p.Packet.src;
  check Alcotest.int "dst" 7 p.Packet.dst;
  check Alcotest.int "prio from class" 2 p.Packet.prio;
  check Alcotest.int "flow id" 9 (Packet.flow_id p);
  Alcotest.(check bool) "data not control" false (Packet.is_control p)

let test_packet_uids_unique () =
  let f = Flow.make ~id:1 ~src:0 ~dst:1 ~size:10 ~arrival:0 () in
  let a = Packet.data ~flow:f ~seq:0 ~payload:10 () in
  let b = Packet.data ~flow:f ~seq:0 ~payload:10 () in
  Alcotest.(check bool) "uids differ" true (a.Packet.uid <> b.Packet.uid)

let test_packet_control_kinds () =
  let p = Packet.make Packet.Pause ~src:0 ~dst:1 ~size:64 () in
  Alcotest.(check bool) "pause is control" true (Packet.is_control p);
  check Alcotest.int "no flow" (-1) (Packet.flow_id p)

(* ----------------------------- Topology ---------------------------- *)

let mk_clos () =
  let sim = Sim.create () in
  (sim, Topology.clos sim ~spines:2 ~tors:3 ~hosts_per_tor:4 ~gbps:100.0 ~prop:(Time.us 1.0))

let test_clos_shape () =
  let _, cl = mk_clos () in
  let t = cl.Topology.t in
  check Alcotest.int "hosts" 12 (Array.length (Topology.hosts t));
  check Alcotest.int "tor ports" 6 (Array.length (Topology.ports t cl.Topology.tors.(0)));
  check Alcotest.int "spine ports" 3 (Array.length (Topology.ports t cl.Topology.spines.(0)));
  check Alcotest.int "host ports" 1 (Array.length (Topology.ports t cl.Topology.cl_hosts.(0)))

let test_clos_routing_candidates () =
  let _, cl = mk_clos () in
  let t = cl.Topology.t in
  let h0 = cl.Topology.cl_hosts.(0) and h_far = cl.Topology.cl_hosts.(11) in
  let h_near = cl.Topology.cl_hosts.(1) in
  let tor0 = cl.Topology.tors.(0) in
  (* same-rack destination: one down port, no ECMP *)
  check Alcotest.int "intra-rack single path" 1
    (Array.length (Topology.candidates t ~node:tor0 ~dst:h_near));
  (* cross-rack: ECMP across both spines *)
  check Alcotest.int "cross-rack ecmp width" 2
    (Array.length (Topology.candidates t ~node:tor0 ~dst:h_far));
  (* host has exactly one way out *)
  check Alcotest.int "host uplink" 1 (Array.length (Topology.candidates t ~node:h0 ~dst:h_far))

let test_path_walks_to_destination () =
  let _, cl = mk_clos () in
  let t = cl.Topology.t in
  let src = cl.Topology.cl_hosts.(0) and dst = cl.Topology.cl_hosts.(11) in
  let path = Topology.path t ~src ~dst in
  check Alcotest.int "4 hops across the fabric" 4 (List.length path);
  let last = List.nth path 3 in
  check Alcotest.int "lands at dst" dst (Port.peer last).Node.id

let test_ecmp_consistent () =
  let _, cl = mk_clos () in
  let t = cl.Topology.t in
  let f = Flow.make ~id:77 ~src:cl.Topology.cl_hosts.(0) ~dst:cl.Topology.cl_hosts.(11) ~size:1 ~arrival:0 () in
  let tor = cl.Topology.tors.(0) in
  let a = Topology.ecmp_port t ~node:tor ~flow:f ~dst:f.Flow.dst in
  let b = Topology.ecmp_port t ~node:tor ~flow:f ~dst:f.Flow.dst in
  check Alcotest.int "same flow same port" a b

let test_ecmp_spreads () =
  let _, cl = mk_clos () in
  let t = cl.Topology.t in
  let tor = cl.Topology.tors.(0) in
  let dst = cl.Topology.cl_hosts.(11) in
  let counts = Hashtbl.create 4 in
  for id = 0 to 199 do
    let f = Flow.make ~id ~src:cl.Topology.cl_hosts.(0) ~dst ~size:1 ~arrival:0 () in
    let p = Topology.ecmp_port t ~node:tor ~flow:f ~dst in
    Hashtbl.replace counts p (1 + Option.value ~default:0 (Hashtbl.find_opt counts p))
  done;
  check Alcotest.int "uses both spines" 2 (Hashtbl.length counts)

let test_ideal_fct_single_packet () =
  let sim = Sim.create () in
  let st = Topology.star sim ~senders:2 ~gbps:100.0 ~prop:(Time.us 1.0) in
  let t = st.Topology.s in
  let src = st.Topology.st_senders.(0) and dst = st.Topology.st_receiver in
  (* 1000B flow: wire = 1048B; two hops at 100G: 2 x ser(1048B=83.84->84ns)
     + 2 x 1000ns prop *)
  let fct = Topology.ideal_fct t ~src ~dst ~size:1000 ~mtu:1000 () in
  check Alcotest.int "two-hop single-packet fct" (2 * (84 + 1000)) fct

let test_ideal_fct_monotone_in_size () =
  let sim = Sim.create () in
  let st = Topology.star sim ~senders:2 ~gbps:100.0 ~prop:(Time.us 1.0) in
  let t = st.Topology.s in
  let src = st.Topology.st_senders.(0) and dst = st.Topology.st_receiver in
  let f s = Topology.ideal_fct t ~src ~dst ~size:s ~mtu:1000 () in
  Alcotest.(check bool) "monotone" true (f 1000 < f 10_000 && f 10_000 < f 100_000)

let test_base_rtt () =
  let _, cl = mk_clos () in
  let t = cl.Topology.t in
  let rtt =
    Topology.base_rtt t ~src:cl.Topology.cl_hosts.(0) ~dst:cl.Topology.cl_hosts.(11)
  in
  (* 8 one-way hops of 1us plus serialization of tiny headers: ~8us *)
  Alcotest.(check bool)
    (Printf.sprintf "rtt ~8us (got %dns)" rtt)
    true
    (rtt > 8_000 && rtt < 8_500)

let test_dumbbell_bottleneck_gid () =
  let sim = Sim.create () in
  let db = Topology.dumbbell sim ~senders:3 ~gbps:40.0 ~prop:(Time.us 2.0) in
  let p = Topology.port_by_gid db.Topology.d db.Topology.bottleneck_gid in
  check Alcotest.int "bottleneck points at right switch" db.Topology.d_right (Port.peer p).Node.id

let test_testbed_shape () =
  let sim = Sim.create () in
  let tb = Topology.testbed sim ~g1:2 ~g2:3 ~g3:4 ~gbps:100.0 ~prop:(Time.us 1.0) in
  let t = tb.Topology.tb in
  check Alcotest.int "hosts" (2 + 3 + 4 + 2) (Array.length (Topology.hosts t));
  (* group 1 routes to recv1 via sw1 then sw2 *)
  let path = Topology.path t ~src:tb.Topology.group1.(0) ~dst:tb.Topology.recv1 in
  check Alcotest.int "3 hops" 3 (List.length path)

let test_cross_dc_shape () =
  let sim = Sim.create () in
  let x =
    Topology.cross_dc sim ~spines:2 ~tors:2 ~hosts_per_tor:2 ~gbps:100.0 ~prop:(Time.us 1.0)
      ~wan_gbps:200.0 ~wan_prop:(Time.us 200.0)
  in
  let h1 = x.Topology.dc1.Topology.xc_hosts.(0) in
  let h2 = x.Topology.dc2.Topology.xc_hosts.(0) in
  let rtt = Topology.base_rtt x.Topology.x ~src:h1 ~dst:h2 in
  Alcotest.(check bool) "cross-dc rtt dominated by WAN (>400us)" true (rtt > 400_000);
  let p = Topology.port_by_gid x.Topology.x x.Topology.interconnect_gid in
  Alcotest.(check (float 0.01)) "wan speed" 200.0 (Port.gbps p)

let test_port_transmission () =
  let sim = Sim.create () in
  let b = Topology.Builder.create sim in
  let a = Topology.Builder.add_host b ~name:"a" in
  let z = Topology.Builder.add_host b ~name:"z" in
  Topology.Builder.link b a z ~gbps:100.0 ~prop:(Time.us 1.0);
  let t = Topology.Builder.finish b in
  let got = ref None in
  (Topology.node t z).Node.handler <- (fun ~in_port:_ pkt -> got := Some pkt.Packet.uid);
  let f = Flow.make ~id:1 ~src:a ~dst:z ~size:1000 ~arrival:0 () in
  let pkt = Packet.data ~flow:f ~seq:0 ~payload:1000 () in
  let port = (Topology.ports t a).(0) in
  Port.send port pkt;
  Alcotest.(check bool) "busy during ser" true (Port.busy port);
  ignore (Sim.run sim ~until:(Time.us 0.5));
  Alcotest.(check bool) "not yet delivered (prop)" true (!got = None);
  ignore (Sim.run sim ~until:(Time.us 2.0));
  check Alcotest.(option int) "delivered" (Some pkt.Packet.uid) !got;
  Alcotest.(check bool) "idle after ser" false (Port.busy port);
  check Alcotest.int "tx bytes counted" pkt.Packet.size (Port.tx_bytes port)

let test_port_ctrl_bypass () =
  let sim = Sim.create () in
  let b = Topology.Builder.create sim in
  let a = Topology.Builder.add_host b ~name:"a" in
  let z = Topology.Builder.add_host b ~name:"z" in
  Topology.Builder.link b a z ~gbps:100.0 ~prop:(Time.us 1.0);
  let t = Topology.Builder.finish b in
  let at = ref (-1) in
  (Topology.node t z).Node.handler <- (fun ~in_port:_ _ -> at := Sim.now sim);
  let pkt = Packet.make Packet.Pause ~src:a ~dst:z ~size:64 () in
  Port.send_ctrl (Topology.ports t a).(0) pkt;
  ignore (Sim.run_until_idle sim);
  check Alcotest.int "ctrl arrives after exactly prop" (Time.us 1.0) !at

let prop_routing_reaches_any_pair =
  QCheck.Test.make ~name:"clos paths always reach the destination" ~count:60
    QCheck.(triple (int_range 2 4) (int_range 2 4) (int_range 2 5))
    (fun (spines, tors, hpt) ->
      let sim = Sim.create () in
      let cl = Topology.clos sim ~spines ~tors ~hosts_per_tor:hpt ~gbps:100.0 ~prop:1000 in
      let hosts = cl.Topology.cl_hosts in
      let ok = ref true in
      Array.iter
        (fun src ->
          Array.iter
            (fun dst ->
              if src <> dst then begin
                let p = Topology.path cl.Topology.t ~src ~dst in
                let len = List.length p in
                if len <> 2 && len <> 4 then ok := false
              end)
            hosts)
        hosts;
      !ok)

let suite =
  [
    ("flow lifecycle", `Quick, test_flow_lifecycle);
    ("flow invalid size", `Quick, test_flow_invalid_size);
    ("flow hash spread", `Quick, test_flow_hash_spread);
    ("packet data", `Quick, test_packet_data);
    ("packet uids", `Quick, test_packet_uids_unique);
    ("packet control kinds", `Quick, test_packet_control_kinds);
    ("clos shape", `Quick, test_clos_shape);
    ("clos routing candidates", `Quick, test_clos_routing_candidates);
    ("path reaches destination", `Quick, test_path_walks_to_destination);
    ("ecmp consistent", `Quick, test_ecmp_consistent);
    ("ecmp spreads", `Quick, test_ecmp_spreads);
    ("ideal fct single packet", `Quick, test_ideal_fct_single_packet);
    ("ideal fct monotone", `Quick, test_ideal_fct_monotone_in_size);
    ("base rtt", `Quick, test_base_rtt);
    ("dumbbell bottleneck", `Quick, test_dumbbell_bottleneck_gid);
    ("testbed shape", `Quick, test_testbed_shape);
    ("cross-dc shape", `Quick, test_cross_dc_shape);
    ("port transmission", `Quick, test_port_transmission);
    ("port ctrl bypass", `Quick, test_port_ctrl_bypass);
    QCheck_alcotest.to_alcotest prop_routing_reaches_any_pair;
  ]
