(* Tests for the discrete-event engine. *)

module Time = Bfc_engine.Time
module Sim = Bfc_engine.Sim

let check = Alcotest.check

(* ------------------------------- Time ------------------------------ *)

let test_time_units () =
  check Alcotest.int "us" 1_000 (Time.us 1.0);
  check Alcotest.int "ms" 1_000_000 (Time.ms 1.0);
  check Alcotest.int "s" 1_000_000_000 (Time.s 1.0);
  Alcotest.(check (float 1e-9)) "to_us" 2.5 (Time.to_us 2_500);
  Alcotest.(check (float 1e-9)) "to_ms" 0.001 (Time.to_ms 1_000)

let test_tx_time () =
  (* 1000 B at 100 Gbps = 8000 bits / 100 bits-per-ns = 80 ns *)
  check Alcotest.int "100G mtu" 80 (Time.tx_time ~gbps:100.0 ~bytes:1000);
  check Alcotest.int "10G mtu" 800 (Time.tx_time ~gbps:10.0 ~bytes:1000);
  check Alcotest.int "min 1ns" 1 (Time.tx_time ~gbps:100.0 ~bytes:1)

(* ------------------------------- Sim ------------------------------- *)

let test_sim_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.at sim 30 (fun () -> log := 30 :: !log));
  ignore (Sim.at sim 10 (fun () -> log := 10 :: !log));
  ignore (Sim.at sim 20 (fun () -> log := 20 :: !log));
  ignore (Sim.run_until_idle sim);
  check Alcotest.(list int) "time order" [ 10; 20; 30 ] (List.rev !log);
  check Alcotest.int "clock at last event" 30 (Sim.now sim)

let test_sim_fifo_same_time () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.at sim 5 (fun () -> log := "a" :: !log));
  ignore (Sim.at sim 5 (fun () -> log := "b" :: !log));
  ignore (Sim.at sim 5 (fun () -> log := "c" :: !log));
  ignore (Sim.run_until_idle sim);
  check Alcotest.(list string) "fifo" [ "a"; "b"; "c" ] (List.rev !log)

let test_sim_after_relative () =
  let sim = Sim.create () in
  let seen = ref (-1) in
  ignore
    (Sim.at sim 100 (fun () -> ignore (Sim.after sim 50 (fun () -> seen := Sim.now sim))));
  ignore (Sim.run_until_idle sim);
  check Alcotest.int "relative delay lands at 150" 150 !seen

let test_sim_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let h = Sim.at sim 10 (fun () -> fired := true) in
  Alcotest.(check bool) "pending before" true (Sim.pending h);
  Sim.cancel h;
  Alcotest.(check bool) "not pending after" false (Sim.pending h);
  ignore (Sim.run_until_idle sim);
  Alcotest.(check bool) "cancelled event did not fire" false !fired

let test_sim_run_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Sim.at sim (i * 10) (fun () -> incr count))
  done;
  ignore (Sim.run sim ~until:55);
  check Alcotest.int "only first five" 5 !count;
  check Alcotest.int "clock parked at until" 55 (Sim.now sim);
  ignore (Sim.run sim ~until:1000);
  check Alcotest.int "rest execute" 10 !count

let test_sim_past_scheduling_rejected () =
  let sim = Sim.create () in
  ignore (Sim.at sim 100 (fun () -> ()));
  ignore (Sim.run_until_idle sim);
  Alcotest.(check bool) "raises" true
    (try
       ignore (Sim.at sim 50 ignore);
       false
     with Invalid_argument _ -> true)

let test_sim_ticker () =
  let sim = Sim.create () in
  let n = ref 0 in
  let tick = Sim.every sim ~period:10 (fun () -> incr n) in
  ignore (Sim.run sim ~until:55);
  check Alcotest.int "5 ticks by 55" 5 !n;
  Sim.stop_ticker tick;
  ignore (Sim.run sim ~until:200);
  check Alcotest.int "stopped" 5 !n

let test_sim_nested_events () =
  (* events scheduling events at the same instant run in FIFO order *)
  let sim = Sim.create () in
  let log = ref [] in
  ignore
    (Sim.at sim 10 (fun () ->
         log := "outer" :: !log;
         ignore (Sim.after sim 0 (fun () -> log := "inner" :: !log))));
  ignore (Sim.at sim 10 (fun () -> log := "second" :: !log));
  ignore (Sim.run_until_idle sim);
  check Alcotest.(list string) "ordering" [ "outer"; "second"; "inner" ] (List.rev !log)

let prop_sim_executes_in_order =
  QCheck.Test.make ~name:"random schedules execute in nondecreasing time" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 100) (int_range 0 10_000))
    (fun times ->
      let sim = Sim.create () in
      let seen = ref [] in
      List.iter (fun t -> ignore (Sim.at sim t (fun () -> seen := Sim.now sim :: !seen))) times;
      ignore (Sim.run_until_idle sim);
      let s = List.rev !seen in
      List.sort compare s = s && List.length s = List.length times)

let suite =
  [
    ("time units", `Quick, test_time_units);
    ("tx time", `Quick, test_tx_time);
    ("sim ordering", `Quick, test_sim_ordering);
    ("sim fifo same time", `Quick, test_sim_fifo_same_time);
    ("sim after", `Quick, test_sim_after_relative);
    ("sim cancel", `Quick, test_sim_cancel);
    ("sim run until", `Quick, test_sim_run_until);
    ("sim rejects past", `Quick, test_sim_past_scheduling_rejected);
    ("sim ticker", `Quick, test_sim_ticker);
    ("sim nested events", `Quick, test_sim_nested_events);
    QCheck_alcotest.to_alcotest prop_sim_executes_in_order;
  ]
