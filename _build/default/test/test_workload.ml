(* Tests for workloads: distributions, arrival processes, traffic and
   incast generation. *)

module Time = Bfc_engine.Time
module Flow = Bfc_net.Flow
module Dist = Bfc_workload.Dist
module Arrivals = Bfc_workload.Arrivals
module Traffic = Bfc_workload.Traffic
module Rng = Bfc_util.Rng

let check = Alcotest.check

(* ------------------------------- Dist ------------------------------ *)

let test_dist_sample_bounds () =
  let rng = Rng.create 1 in
  List.iter
    (fun d ->
      for _ = 1 to 5_000 do
        let s = Dist.sample d rng in
        Alcotest.(check bool) (Dist.name d ^ " sample positive") true (s >= 1)
      done)
    [ Dist.google; Dist.fb_hadoop; Dist.websearch ]

let test_dist_sample_mean_matches () =
  let rng = Rng.create 2 in
  List.iter
    (fun d ->
      let n = 200_000 in
      let acc = ref 0.0 in
      for _ = 1 to n do
        acc := !acc +. float_of_int (Dist.sample d rng)
      done;
      let emp = !acc /. float_of_int n in
      let anal = Dist.mean d in
      let err = Float.abs (emp -. anal) /. anal in
      Alcotest.(check bool)
        (Printf.sprintf "%s mean %.0f ~ %.0f" (Dist.name d) emp anal)
        true (err < 0.08))
    [ Dist.google; Dist.fb_hadoop ]

let test_dist_cdf_monotone () =
  List.iter
    (fun d ->
      let prev = ref (-1.0) in
      List.iter
        (fun s ->
          let c = Dist.cdf d s in
          Alcotest.(check bool) "monotone" true (c >= !prev);
          Alcotest.(check bool) "in [0,1]" true (c >= 0.0 && c <= 1.0);
          prev := c)
        [ 10.0; 100.0; 1e3; 1e4; 1e5; 1e6; 1e7; 1e8 ])
    [ Dist.google; Dist.fb_hadoop; Dist.websearch ]

let test_dist_byte_cdf_anchors () =
  (* the Fig 2 anchors that drove the encoding *)
  let g = Dist.byte_cdf Dist.google 100_000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "google ~half of bytes < 100KB (%.2f)" g)
    true
    (g > 0.35 && g < 0.6);
  let fb = Dist.byte_cdf Dist.fb_hadoop 1e6 in
  Alcotest.(check bool) "fb ~60% of bytes < 1MB" true (fb > 0.45 && fb < 0.75);
  let ws = Dist.byte_cdf Dist.websearch 1e6 in
  Alcotest.(check bool) "websearch is byte-heaviest" true (ws < fb && ws < g)

let test_dist_fixed () =
  let rng = Rng.create 3 in
  let d = Dist.fixed 777 in
  check Alcotest.int "always same" 777 (Dist.sample d rng);
  Alcotest.(check (float 1e-9)) "mean" 777.0 (Dist.mean d)

let test_dist_by_name () =
  check Alcotest.string "google" "google" (Dist.name (Dist.by_name "google"));
  Alcotest.(check bool) "unknown raises" true
    (try
       ignore (Dist.by_name "nope");
       false
     with Invalid_argument _ -> true)

let test_dist_malformed () =
  Alcotest.(check bool) "non-monotone rejected" true
    (try
       ignore (Dist.of_points ~name:"bad" ~min_size:10 [ (100.0, 0.5); (50.0, 1.0) ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "cdf must end at 1" true
    (try
       ignore (Dist.of_points ~name:"bad" ~min_size:10 [ (100.0, 0.5) ]);
       false
     with Invalid_argument _ -> true)

let prop_dist_sample_within_support =
  QCheck.Test.make ~name:"samples stay within the distribution support" ~count:100
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let s = Dist.sample Dist.google rng in
      s >= 1 && s <= 3_000_000)

(* ----------------------------- Arrivals ---------------------------- *)

let test_arrival_means () =
  let rng = Rng.create 4 in
  List.iter
    (fun a ->
      let n = 100_000 in
      let acc = ref 0.0 in
      for _ = 1 to n do
        acc := !acc +. Arrivals.gap a rng ~mean:50.0
      done;
      let emp = !acc /. float_of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "%s mean ~50 (%.1f)" (Arrivals.to_string a) emp)
        true
        (Float.abs (emp -. 50.0) /. 50.0 < 0.1))
    [ Arrivals.Poisson; Arrivals.Lognormal 1.0 ]

let test_lognormal_burstier_than_poisson () =
  let rng = Rng.create 5 in
  let var a =
    let n = 100_000 in
    let xs = Array.init n (fun _ -> Arrivals.gap a rng ~mean:10.0) in
    let mean = Array.fold_left ( +. ) 0.0 xs /. float_of_int n in
    Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs /. float_of_int n
  in
  Alcotest.(check bool) "sigma=2 lognormal has much higher variance" true
    (var (Arrivals.Lognormal 2.0) > 3.0 *. var Arrivals.Poisson)

(* ------------------------------ Traffic ---------------------------- *)

let spec ?(load = 0.5) ?(duration = Time.ms 1.0) ?(matrix = Traffic.Uniform) () =
  {
    Traffic.hosts = Array.init 8 (fun i -> i);
    dist = Dist.fixed 10_000;
    arrivals = Arrivals.Poisson;
    load;
    ref_capacity_gbps = 100.0;
    core_fraction = 1.0;
    matrix;
    duration;
    seed = 9;
    prio_classes = 1;
  }

let test_traffic_sorted_and_valid () =
  let ids = ref 0 in
  let flows = Traffic.generate (spec ()) ~ids in
  Alcotest.(check bool) "nonempty" true (flows <> []);
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Flow.arrival <= b.Flow.arrival && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (sorted flows);
  List.iter
    (fun f ->
      Alcotest.(check bool) "src <> dst" true (f.Flow.src <> f.Flow.dst);
      Alcotest.(check bool) "hosts in range" true (f.Flow.src < 8 && f.Flow.dst < 8))
    flows;
  (* unique ids *)
  let tbl = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace tbl f.Flow.id ()) flows;
  check Alcotest.int "ids unique" (List.length flows) (Hashtbl.length tbl)

let test_traffic_load_calibration () =
  let ids = ref 0 in
  let duration = Time.ms 20.0 in
  let flows = Traffic.generate (spec ~load:0.5 ~duration ()) ~ids in
  let bytes = List.fold_left (fun acc f -> acc + f.Flow.size) 0 flows in
  (* expected: 0.5 x 12.5 GB/s x 20 ms = 125 MB *)
  let expected = 0.5 *. 12.5 *. Time.to_s duration *. 1e9 in
  let err = Float.abs (float_of_int bytes -. expected) /. expected in
  Alcotest.(check bool) (Printf.sprintf "offered load within 15%% (err %.2f)" err) true (err < 0.15)

let test_traffic_to_one () =
  let ids = ref 0 in
  let flows = Traffic.generate (spec ~matrix:(Traffic.To_one 3) ()) ~ids in
  List.iter (fun f -> check Alcotest.int "all to 3" 3 f.Flow.dst) flows

let test_traffic_rack_local () =
  let rack_of h = h / 4 in
  let ids = ref 0 in
  let flows =
    Traffic.generate (spec ~matrix:(Traffic.Rack_local { local_frac = 1.0; rack_of }) ()) ~ids
  in
  List.iter
    (fun f -> check Alcotest.int "same rack" (rack_of f.Flow.src) (rack_of f.Flow.dst))
    flows

let test_incast_generation () =
  let ids = ref 0 in
  let inc =
    Traffic.generate_incast
      {
        Traffic.i_hosts = Array.init 16 (fun i -> i);
        degree = 5;
        agg_size = 50_000;
        period = Time.us 100.0;
        i_duration = Time.us 550.0;
        i_seed = 3;
      }
      ~ids
  in
  check Alcotest.int "5 events x 5 senders" 25 (List.length inc);
  List.iter
    (fun f ->
      Alcotest.(check bool) "marked incast" true f.Flow.is_incast;
      check Alcotest.int "per-sender share" 10_000 f.Flow.size)
    inc;
  (* each event: distinct senders, none equal to dst *)
  let by_time = Hashtbl.create 8 in
  List.iter
    (fun f ->
      let l = Option.value ~default:[] (Hashtbl.find_opt by_time f.Flow.arrival) in
      Hashtbl.replace by_time f.Flow.arrival (f :: l))
    inc;
  Hashtbl.iter
    (fun _ fs ->
      let dsts = List.sort_uniq compare (List.map (fun f -> f.Flow.dst) fs) in
      check Alcotest.int "single dst per event" 1 (List.length dsts);
      let srcs = List.sort_uniq compare (List.map (fun f -> f.Flow.src) fs) in
      check Alcotest.int "distinct senders" 5 (List.length srcs);
      List.iter (fun f -> Alcotest.(check bool) "src<>dst" true (f.Flow.src <> f.Flow.dst)) fs)
    by_time

let test_incast_degree_beyond_hosts () =
  let ids = ref 0 in
  let inc =
    Traffic.generate_incast
      {
        Traffic.i_hosts = Array.init 4 (fun i -> i);
        degree = 10;
        agg_size = 10_000;
        period = Time.us 50.0;
        i_duration = Time.us 60.0;
        i_seed = 4;
      }
      ~ids
  in
  check Alcotest.int "10 flows though only 4 hosts" 10 (List.length inc)

let test_period_for_load () =
  (* 20MB at 5% of 6.4Tb/s: 20e6 / (0.05 x 800e9/8 bytes-per-s) = 500us *)
  check Alcotest.int "paper numbers" (Time.us 500.0)
    (Traffic.period_for_load ~agg_size:20_000_000 ~frac:0.05 ~ref_capacity_gbps:6400.0)

let test_long_lived_and_merge () =
  let ids = ref 0 in
  let a = Traffic.long_lived ~pairs:[| (0, 1); (2, 3) |] ~size:5000 ~ids () in
  check Alcotest.int "two flows" 2 (List.length a);
  let b =
    [ Flow.make ~id:100 ~src:4 ~dst:5 ~size:1 ~arrival:(Time.us 5.0) () ]
  in
  let merged = Traffic.merge [ b; a ] in
  check Alcotest.int "merged sorted by arrival" 0 (List.hd merged).Flow.arrival

let suite =
  [
    ("dist sample bounds", `Quick, test_dist_sample_bounds);
    ("dist sample mean", `Slow, test_dist_sample_mean_matches);
    ("dist cdf monotone", `Quick, test_dist_cdf_monotone);
    ("dist byte-cdf anchors", `Quick, test_dist_byte_cdf_anchors);
    ("dist fixed", `Quick, test_dist_fixed);
    ("dist by name", `Quick, test_dist_by_name);
    ("dist malformed", `Quick, test_dist_malformed);
    ("arrival means", `Quick, test_arrival_means);
    ("lognormal burstier", `Quick, test_lognormal_burstier_than_poisson);
    ("traffic sorted and valid", `Quick, test_traffic_sorted_and_valid);
    ("traffic load calibration", `Quick, test_traffic_load_calibration);
    ("traffic to-one", `Quick, test_traffic_to_one);
    ("traffic rack-local", `Quick, test_traffic_rack_local);
    ("incast generation", `Quick, test_incast_generation);
    ("incast degree beyond hosts", `Quick, test_incast_degree_beyond_hosts);
    ("incast period for load", `Quick, test_period_for_load);
    ("long lived and merge", `Quick, test_long_lived_and_merge);
    QCheck_alcotest.to_alcotest prop_dist_sample_within_support;
  ]
