(* Tests for the Sec-5 extensions: the credit-based lossless dataplane and
   wire fault injection / idempotent pause state. *)

module Time = Bfc_engine.Time
module Sim = Bfc_engine.Sim
module Flow = Bfc_net.Flow
module Packet = Bfc_net.Packet
module Port = Bfc_net.Port
module Topology = Bfc_net.Topology
module Balance = Bfc_core.Credit_dataplane.Balance
module Credit_dataplane = Bfc_core.Credit_dataplane
module Scheme = Bfc_sim.Scheme
module Runner = Bfc_sim.Runner
module Exp_common = Bfc_sim.Exp_common
module Dist = Bfc_workload.Dist

let check = Alcotest.check

(* ------------------------------ Balance ---------------------------- *)

let test_balance_consume_replenish () =
  let b = Balance.create ~queues:4 ~initial:3000 in
  check Alcotest.int "initial" 3000 (Balance.get b ~queue:2);
  (* 3000 - 1048 = 1952 >= 1048: still enough for the next head *)
  Alcotest.(check bool) "not blocked" false (Balance.consume b ~queue:2 ~bytes:1048 ~next:1048);
  (* 1952 - 1048 = 904 < 1048: blocked *)
  Alcotest.(check bool) "second blocks" true (Balance.consume b ~queue:2 ~bytes:1048 ~next:1048);
  Alcotest.(check bool) "replenish unblocks" true
    (Balance.replenish b ~queue:2 ~bytes:1048 ~next:1048);
  check Alcotest.int "exact accounting" (3000 - (2 * 1048) + 1048) (Balance.get b ~queue:2)

let test_balance_empty_queue_never_blocks () =
  let b = Balance.create ~queues:1 ~initial:100 in
  Alcotest.(check bool) "next=0 means nothing to block" false
    (Balance.consume b ~queue:0 ~bytes:100 ~next:0)

let prop_balance_conserved =
  QCheck.Test.make ~name:"credit balance equals initial - consumed + replenished" ~count:200
    QCheck.(list (pair bool (int_range 1 2000)))
    (fun ops ->
      let b = Balance.create ~queues:1 ~initial:10_000 in
      let expected = ref 10_000 in
      List.iter
        (fun (consume, bytes) ->
          if consume then begin
            ignore (Balance.consume b ~queue:0 ~bytes ~next:1000);
            expected := !expected - bytes
          end
          else begin
            ignore (Balance.replenish b ~queue:0 ~bytes ~next:1000);
            expected := !expected + bytes
          end)
        ops;
      Balance.get b ~queue:0 = !expected)

(* ------------------------- Credit dataplane ------------------------ *)

let smoke scheme =
  Exp_common.run_std
    { (Exp_common.std Exp_common.Smoke scheme) with Exp_common.sp_dist = Dist.google }

let test_credit_scheme_completes_losslessly () =
  let r = smoke Scheme.bfc_credit in
  check Alcotest.int "all complete" (Runner.injected r.Exp_common.env)
    (Runner.completed r.Exp_common.env);
  check Alcotest.int "zero drops" 0 (Runner.total_drops r.Exp_common.env)

let test_credit_matches_bfc_quality () =
  let c = smoke Scheme.bfc_credit and b = smoke Scheme.bfc in
  let p99 r = Bfc_sim.Metrics.short_p99 r.Exp_common.env r.Exp_common.flows in
  Alcotest.(check bool)
    (Printf.sprintf "credit variant keeps BFC-grade tails (%.2f vs %.2f)" (p99 c) (p99 b))
    true
    (p99 c < 2.0 *. p99 b +. 0.5)

let test_credit_under_extreme_incast () =
  let r =
    Exp_common.run_std
      {
        (Exp_common.std Exp_common.Smoke Scheme.bfc_credit) with
        Exp_common.sp_dist = Dist.google;
        sp_incast = Some { Exp_common.degree = 30; agg_frac_of_paper = 1.0 };
      }
  in
  check Alcotest.int "lossless under incast" 0 (Runner.total_drops r.Exp_common.env);
  check Alcotest.int "all complete" (Runner.injected r.Exp_common.env)
    (Runner.completed r.Exp_common.env)

let test_credit_bounded_occupancy () =
  (* peak buffer occupancy can never exceed what the credits allow *)
  let r =
    Exp_common.run_std
      {
        (Exp_common.std Exp_common.Smoke Scheme.bfc_credit) with
        Exp_common.sp_dist = Dist.google;
        sp_incast = Some { Exp_common.degree = 20; agg_frac_of_paper = 1.0 };
      }
  in
  (* the theoretical reservation: ports x upstream queues x 25 KB, per the
     biggest switch in the smoke Clos (2x2x4: ToR has 4+2=6 ports) *)
  let bound = 6 * 130 * 25_000 in
  Alcotest.(check bool) "occupancy below the credit reservation" true
    (int_of_float (Bfc_util.Stats.Sample.max r.Exp_common.buffers) < bound)

(* ------------------------- Fault injection ------------------------- *)

let test_port_fault_drops () =
  let sim = Sim.create () in
  let b = Topology.Builder.create sim in
  let a = Topology.Builder.add_host b ~name:"a" in
  let z = Topology.Builder.add_host b ~name:"z" in
  Topology.Builder.link b a z ~gbps:100.0 ~prop:(Time.us 1.0);
  let t = Topology.Builder.finish b in
  let got = ref 0 in
  (Topology.node t z).Bfc_net.Node.handler <- (fun ~in_port:_ _ -> incr got);
  let port = (Topology.ports t a).(0) in
  Port.set_fault port (fun pkt -> pkt.Packet.kind = Packet.Pause);
  let pause = Packet.make Packet.Pause ~src:a ~dst:z ~size:64 () in
  Port.send_ctrl port pause;
  Port.send_ctrl port (Packet.make Packet.Resume ~src:a ~dst:z ~size:64 ());
  ignore (Sim.run_until_idle sim);
  check Alcotest.int "only the resume arrived" 1 !got;
  check Alcotest.int "fault counted" 1 (Port.faults_injected port)

let test_lost_resume_strands_without_refresh () =
  (* deliberately drop all Resume packets: some queue stays paused and some
     flows never finish; enabling the bitmap refresh fixes it *)
  let run ~bitmap =
    let scheme =
      Scheme.Bfc
        {
          Scheme.bfc_default with
          Scheme.bitmap_period = (if bitmap then Some (Time.us 10.0) else None);
        }
    in
    let sim = Sim.create () in
    let cl = Topology.clos sim ~spines:2 ~tors:2 ~hosts_per_tor:4 ~gbps:100.0 ~prop:(Time.us 1.0) in
    let env = Runner.setup ~topo:cl.Topology.t ~scheme ~params:Runner.default_params in
    (* drop ~half the Resume packets deterministically *)
    let flip = ref false in
    for g = 0 to Topology.total_ports cl.Topology.t - 1 do
      Port.set_fault
        (Topology.port_by_gid cl.Topology.t g)
        (fun pkt ->
          if pkt.Packet.kind = Packet.Resume then begin
            flip := not !flip;
            !flip
          end
          else false)
    done;
    let ids = ref 0 in
    let dur = Time.us 400.0 in
    let flows =
      Bfc_workload.Traffic.generate
        {
          Bfc_workload.Traffic.hosts = cl.Topology.cl_hosts;
          dist = Dist.google;
          arrivals = Bfc_workload.Arrivals.lognormal_default;
          load = 0.7;
          ref_capacity_gbps = 400.0;
          core_fraction = 0.6;
          matrix = Bfc_workload.Traffic.Uniform;
          duration = dur;
          seed = 4;
          prio_classes = 1;
        }
        ~ids
    in
    Runner.inject env flows;
    Runner.run env ~until:dur;
    Runner.drain env ~budget:(Time.ms 4.0);
    (Runner.completed env, Runner.injected env)
  in
  let done_no, all_no = run ~bitmap:false in
  let done_yes, all_yes = run ~bitmap:true in
  Alcotest.(check bool)
    (Printf.sprintf "stranded flows without refresh (%d/%d)" done_no all_no)
    true (done_no < all_no);
  check Alcotest.int "bitmap refresh recovers everything" all_yes done_yes

(* ------------------------- Live deadlock --------------------------- *)

let test_ring_deadlock_and_prevention () =
  let run ~filter =
    let sim = Sim.create () in
    let b = Topology.Builder.create sim in
    let n = 5 in
    let sws =
      Array.init n (fun i -> Topology.Builder.add_switch b ~name:(Printf.sprintf "s%d" i))
    in
    let hosts =
      Array.map
        (fun sw ->
          let h = Topology.Builder.add_host b ~name:(Printf.sprintf "h%d" sw) in
          Topology.Builder.link b h sw ~gbps:100.0 ~prop:(Time.us 1.0);
          h)
        sws
    in
    for i = 0 to n - 1 do
      Topology.Builder.link b sws.(i) sws.((i + 1) mod n) ~gbps:100.0 ~prop:(Time.us 1.0)
    done;
    let topo = Topology.Builder.finish b in
    (* single shared data queue per port: the regime where cyclic buffer
       dependencies wedge for real *)
    let scheme = Scheme.Bfc { Scheme.bfc_default with Scheme.queues = 2 } in
    let env =
      Runner.setup ~topo ~scheme ~params:{ Runner.default_params with deadlock_filter = filter }
    in
    let ids = ref 0 in
    let flows =
      List.concat_map
        (fun i ->
          List.map
            (fun hop ->
              let id = !ids in
              incr ids;
              Flow.make ~id ~src:hosts.(i) ~dst:hosts.((i + hop) mod n) ~size:2_000_000
                ~arrival:0 ())
            [ 1; 2 ])
        (List.init n (fun i -> i))
    in
    Runner.inject env flows;
    Runner.run env ~until:(Time.ms 2.0);
    Runner.drain env ~budget:(Time.ms 20.0);
    (Runner.completed env, Runner.injected env)
  in
  let done_raw, all_raw = run ~filter:false in
  let done_filtered, all_filtered = run ~filter:true in
  Alcotest.(check bool)
    (Printf.sprintf "cyclic ring deadlocks without prevention (%d/%d)" done_raw all_raw)
    true (done_raw < all_raw);
  check Alcotest.int "App B elision prevents the deadlock" all_filtered done_filtered

let suite =
  [
    ("ring deadlock + prevention", `Quick, test_ring_deadlock_and_prevention);
    ("balance consume/replenish", `Quick, test_balance_consume_replenish);
    ("balance empty queue", `Quick, test_balance_empty_queue_never_blocks);
    ("credit scheme lossless", `Quick, test_credit_scheme_completes_losslessly);
    ("credit matches bfc quality", `Quick, test_credit_matches_bfc_quality);
    ("credit extreme incast", `Quick, test_credit_under_extreme_incast);
    ("credit bounded occupancy", `Quick, test_credit_bounded_occupancy);
    ("port fault injection", `Quick, test_port_fault_drops);
    ("lost resume strands; bitmap recovers", `Quick, test_lost_resume_strands_without_refresh);
    QCheck_alcotest.to_alcotest prop_balance_conserved;
  ]
