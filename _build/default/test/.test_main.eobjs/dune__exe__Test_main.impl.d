test/test_main.ml: Alcotest Test_bfc Test_credit Test_engine Test_extra Test_final Test_more Test_net Test_sim Test_switch Test_transport Test_util Test_workload
