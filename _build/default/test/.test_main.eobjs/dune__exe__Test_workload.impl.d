test/test_workload.ml: Alcotest Array Bfc_engine Bfc_net Bfc_util Bfc_workload Float Hashtbl List Option Printf QCheck QCheck_alcotest
