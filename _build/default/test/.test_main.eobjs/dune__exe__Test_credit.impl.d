test/test_credit.ml: Alcotest Array Bfc_core Bfc_engine Bfc_net Bfc_sim Bfc_util Bfc_workload List Printf QCheck QCheck_alcotest
