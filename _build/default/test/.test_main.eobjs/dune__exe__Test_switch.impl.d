test/test_switch.ml: Alcotest Array Bfc_engine Bfc_net Bfc_switch List Option Printf
