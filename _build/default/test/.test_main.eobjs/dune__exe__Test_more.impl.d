test/test_more.ml: Alcotest Array Bfc_core Bfc_engine Bfc_net Bfc_sim Bfc_switch Bfc_transport Bfc_workload Float List Printf QCheck QCheck_alcotest String
