test/test_net.ml: Alcotest Array Bfc_engine Bfc_net Hashtbl List Option Printf QCheck QCheck_alcotest
