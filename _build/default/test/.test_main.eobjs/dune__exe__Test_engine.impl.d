test/test_engine.ml: Alcotest Bfc_engine Gen List QCheck QCheck_alcotest
