test/test_util.ml: Alcotest Array Bfc_util Float Gen Hashtbl List Printf QCheck QCheck_alcotest String
