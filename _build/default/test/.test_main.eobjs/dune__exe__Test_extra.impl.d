test/test_extra.ml: Alcotest Array Bfc_core Bfc_engine Bfc_net Bfc_sim Bfc_switch Bfc_transport Bfc_util Bfc_workload Filename Format Hashtbl List Printf String Sys
