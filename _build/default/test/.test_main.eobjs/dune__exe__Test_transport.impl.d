test/test_transport.ml: Alcotest Array Bfc_core Bfc_engine Bfc_net Bfc_switch Bfc_transport Bfc_workload List Printf
