test/test_final.ml: Alcotest Array Bfc_core Bfc_engine Bfc_net Bfc_sim Bfc_switch Bfc_transport Bfc_workload Float List QCheck QCheck_alcotest
