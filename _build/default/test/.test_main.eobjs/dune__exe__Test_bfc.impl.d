test/test_bfc.ml: Alcotest Array Bfc_core Bfc_engine Bfc_net Bfc_switch Bfc_util Float Format Hashtbl List Printf QCheck QCheck_alcotest
