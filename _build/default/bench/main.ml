(* The benchmark harness: regenerates every table and figure of the paper
   (see DESIGN.md's per-experiment index) and runs Bechamel microbenchmarks
   of BFC's per-packet dataplane operations.

   Usage:
     dune exec bench/main.exe                 -- all targets, quick profile
     dune exec bench/main.exe -- fig9 fig13   -- selected targets
     dune exec bench/main.exe -- --profile paper fig11
     dune exec bench/main.exe -- --micro      -- only the microbenchmarks *)

module Experiments = Bfc_sim.Experiments
module Exp_common = Bfc_sim.Exp_common

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: the constant-time per-packet operations the
   paper argues fit a switch pipeline (§3.3). *)

let micro_tests () =
  let open Bechamel in
  let ft = Bfc_core.Flow_table.create ~egresses:32 ~queues_per_port:32 ~mult:100 in
  let pc = Bfc_core.Pause_counter.create ~ingresses:32 ~max_upstream_q:128 in
  let rng = Bfc_util.Rng.create 99 in
  let dqa = Bfc_core.Dqa.create ~egresses:32 ~queues:31 ~policy:Bfc_core.Dqa.Dynamic ~rng in
  let counter = ref 0 in
  let t_ft =
    Test.make ~name:"flow_table lookup+update"
      (Staged.stage (fun () ->
           incr counter;
           let e = Bfc_core.Flow_table.entry ft ~egress:(!counter land 31) ~fid_hash:!counter in
           e.Bfc_core.Flow_table.size <- e.Bfc_core.Flow_table.size + 1;
           e.Bfc_core.Flow_table.size <- e.Bfc_core.Flow_table.size - 1))
  in
  let t_pc =
    Test.make ~name:"pause_counter incr+decr"
      (Staged.stage (fun () ->
           incr counter;
           let ingress = !counter land 31 and upstream_q = !counter land 127 in
           ignore (Bfc_core.Pause_counter.incr pc ~ingress ~upstream_q);
           ignore (Bfc_core.Pause_counter.decr pc ~ingress ~upstream_q)))
  in
  let t_dqa =
    Test.make ~name:"dqa assign+release"
      (Staged.stage (fun () ->
           incr counter;
           let egress = !counter land 31 in
           let q = Bfc_core.Dqa.assign dqa ~egress ~fid_hash:!counter in
           Bfc_core.Dqa.mark_occupied dqa ~egress ~queue:q;
           Bfc_core.Dqa.mark_empty dqa ~egress ~queue:q))
  in
  let t_th =
    Test.make ~name:"threshold compute"
      (Staged.stage (fun () ->
           incr counter;
           ignore
             (Bfc_core.Threshold.bytes ~hrtt:2000 ~gbps:100.0
                ~n_active:(1 + (!counter land 31))
                ~factor:1.0)))
  in
  [ t_ft; t_pc; t_dqa; t_th ]

let run_micro () =
  let open Bechamel in
  print_endline "\n################ microbenchmarks: BFC per-packet dataplane ops";
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
    let raw = Benchmark.all cfg [ instance ] test in
    let results =
      Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) instance
        raw
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "  %-36s %8.1f ns/op\n%!" name est
        | _ -> Printf.printf "  %-36s (no estimate)\n%!" name)
      results
  in
  List.iter (fun t -> benchmark (Bechamel.Test.make_grouped ~name:"bfc" [ t ])) (micro_tests ())

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let profile = ref Exp_common.Quick in
  let targets = ref [] in
  let micro_only = ref false in
  let csv_dir = ref None in
  let rec parse = function
    | [] -> ()
    | "--profile" :: p :: rest ->
      profile := Exp_common.profile_of_string p;
      parse rest
    | "--csv" :: dir :: rest ->
      csv_dir := Some dir;
      parse rest
    | "--micro" :: rest ->
      micro_only := true;
      parse rest
    | "--list" :: _ ->
      List.iter print_endline (Experiments.names ());
      exit 0
    | name :: rest ->
      targets := name :: !targets;
      parse rest
  in
  parse args;
  if !micro_only then run_micro ()
  else begin
    let chosen =
      match List.rev !targets with
      | [] -> Experiments.all
      | names ->
        List.map
          (fun n ->
            match Experiments.find n with
            | Some t -> t
            | None ->
              Printf.eprintf "unknown target %s (use --list)\n" n;
              exit 1)
          names
    in
    let t0 = Unix.gettimeofday () in
    List.iter (Experiments.run_and_print ?csv_dir:!csv_dir !profile) chosen;
    if List.length chosen > 1 then run_micro ();
    Printf.printf "\nall done in %.1fs\n" (Unix.gettimeofday () -. t0)
  end
