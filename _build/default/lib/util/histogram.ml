type t = { edges : float array; counts : int array; mutable total : int }

let create ~lo ~hi ~bins =
  if lo <= 0.0 || hi <= lo || bins <= 0 then invalid_arg "Histogram.create";
  let edges =
    Array.init (bins + 1) (fun i ->
        let frac = float_of_int i /. float_of_int bins in
        lo *. exp (frac *. log (hi /. lo)))
  in
  { edges; counts = Array.make bins 0; total = 0 }

let bins t = Array.length t.counts

let bin_of t v =
  let n = bins t in
  if v <= t.edges.(0) then 0
  else if v >= t.edges.(n) then n - 1
  else begin
    (* binary search for the bin whose [edge_i, edge_{i+1}) contains v *)
    let lo = ref 0 and hi = ref n in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if v >= t.edges.(mid) then lo := mid else hi := mid
    done;
    !lo
  end

let add t v =
  t.counts.(bin_of t v) <- t.counts.(bin_of t v) + 1;
  t.total <- t.total + 1

let count t = t.total

let edges t = Array.copy t.edges

let counts t = Array.copy t.counts

let cumulative t =
  let n = bins t in
  let out = Array.make n 0.0 in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := !acc + t.counts.(i);
    out.(i) <- (if t.total = 0 then 0.0 else float_of_int !acc /. float_of_int t.total)
  done;
  out
