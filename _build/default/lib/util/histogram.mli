(** Log-spaced histogram used to bucket flow sizes and latencies. *)

type t

(** [create ~lo ~hi ~bins] builds logarithmically spaced bin edges from [lo]
    to [hi] (both > 0). Values outside the range clamp to the end bins. *)
val create : lo:float -> hi:float -> bins:int -> t

val add : t -> float -> unit

val count : t -> int

(** [bin_of t v] is the index of the bin [v] falls into. *)
val bin_of : t -> float -> int

(** [edges t] is the array of [bins+1] bin edges. *)
val edges : t -> float array

(** [counts t] is the per-bin count array (length [bins]). *)
val counts : t -> int array

(** Fraction of mass at or below each bin upper edge. *)
val cumulative : t -> float array
