(** Fixed-size bitmap.

    BFC keeps a bitmap of empty queues per egress port to find a free queue
    in constant time; this module is that bitmap. *)

type t

(** [create n] makes a bitset over [0, n), all bits clear. *)
val create : int -> t

val length : t -> int

val set : t -> int -> unit

val clear : t -> int -> unit

val mem : t -> int -> bool

(** Number of set bits. *)
val cardinal : t -> int

(** [first_set t ~from] is the index of the first set bit at or after
    [from], wrapping around; [None] if the set is empty. The rotating
    starting point mirrors Tofino2's per-pipeline rotation that avoids all
    pipelines picking the same empty queue. *)
val first_set : t -> from:int -> int option

(** All set indices, ascending. *)
val to_list : t -> int list

val fill : t -> unit

val reset : t -> unit
