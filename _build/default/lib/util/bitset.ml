type t = { words : int array; n : int; mutable count : int }

let word_bits = 62 (* keep clear of the sign bit for simplicity *)

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { words = Array.make (((n + word_bits - 1) / word_bits) + 1) 0; n; count = 0 }

let length t = t.n

let check t i = if i < 0 || i >= t.n then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  t.words.(i / word_bits) land (1 lsl (i mod word_bits)) <> 0

let set t i =
  check t i;
  if not (mem t i) then begin
    t.words.(i / word_bits) <- t.words.(i / word_bits) lor (1 lsl (i mod word_bits));
    t.count <- t.count + 1
  end

let clear t i =
  check t i;
  if mem t i then begin
    t.words.(i / word_bits) <- t.words.(i / word_bits) land lnot (1 lsl (i mod word_bits));
    t.count <- t.count - 1
  end

let cardinal t = t.count

let first_set t ~from =
  if t.count = 0 then None
  else begin
    let n = t.n in
    let from = if n = 0 then 0 else ((from mod n) + n) mod n in
    let rec loop i remaining =
      if remaining = 0 then None
      else begin
        let i = if i >= n then 0 else i in
        if mem t i then Some i else loop (i + 1) (remaining - 1)
      end
    in
    loop from n
  end

let to_list t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if mem t i then acc := i :: !acc
  done;
  !acc

let fill t =
  for i = 0 to t.n - 1 do
    set t i
  done

let reset t =
  Array.fill t.words 0 (Array.length t.words) 0;
  t.count <- 0
