(** Binary min-heap with integer priorities and stable ordering.

    The event queue of the simulator sits on top of this heap; ties on the
    priority are broken by insertion order so that simulations are
    deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

(** [push t ~priority v] inserts [v]. Amortized O(log n). *)
val push : 'a t -> priority:int -> 'a -> unit

(** [pop t] removes and returns the minimum-priority element (FIFO among
    equal priorities). *)
val pop : 'a t -> (int * 'a) option

(** [peek t] returns the minimum without removing it. *)
val peek : 'a t -> (int * 'a) option

(** [min_priority t] is the priority of the minimum element. *)
val min_priority : 'a t -> int option

val clear : 'a t -> unit
