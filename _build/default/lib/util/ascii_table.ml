let float_cell v =
  if Float.is_nan v then "-"
  else if v = 0.0 then "0"
  else begin
    let a = Float.abs v in
    if a >= 1e7 || a < 1e-3 then Printf.sprintf "%.2e" v
    else if a >= 100.0 then Printf.sprintf "%.1f" v
    else if a >= 1.0 then Printf.sprintf "%.2f" v
    else Printf.sprintf "%.4f" v
  end

let render ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let widths = Array.make cols 0 in
  List.iter
    (fun row -> List.iteri (fun i cell -> if String.length cell > widths.(i) then widths.(i) <- String.length cell) row)
    all;
  let buf = Buffer.create 1024 in
  let emit row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        if i < cols - 1 then Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit header;
  let rule = List.init (List.length header) (fun i -> String.make widths.(i) '-') in
  emit rule;
  List.iter emit rows;
  Buffer.contents buf

let print ~title ~header rows =
  Printf.printf "\n== %s ==\n%s%!" title (render ~header rows)
