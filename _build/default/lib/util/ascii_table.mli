(** Minimal fixed-width table rendering for bench/experiment output. *)

(** [render ~header rows] lays out all cells left-aligned, padding columns to
    the widest cell, with a rule under the header. *)
val render : header:string list -> string list list -> string

(** [print ~title ~header rows] renders with a title line to stdout. *)
val print : title:string -> header:string list -> string list list -> unit

(** Format a float compactly ("12.3", "0.0012", "1.2e+09"). *)
val float_cell : float -> string
