lib/util/bitset.mli:
