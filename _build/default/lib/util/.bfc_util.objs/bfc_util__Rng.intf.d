lib/util/rng.mli:
