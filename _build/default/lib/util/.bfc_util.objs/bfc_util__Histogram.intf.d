lib/util/histogram.mli:
