lib/util/stats.mli:
