lib/util/heap.mli:
