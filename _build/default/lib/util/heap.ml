type 'a entry = { priority : int; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let length t = t.size

let is_empty t = t.size = 0

let less a b = a.priority < b.priority || (a.priority = b.priority && a.seq < b.seq)

let grow t e =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let nd = Array.make ncap e in
    Array.blit t.data 0 nd 0 t.size;
    t.data <- nd
  end

let push t ~priority value =
  let e = { priority; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  grow t e;
  (* Sift up. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let d = t.data in
  d.(!i) <- e;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less e d.(parent) then begin
      d.(!i) <- d.(parent);
      d.(parent) <- e;
      i := parent
    end
    else continue := false
  done

let sift_down t =
  let d = t.data in
  let n = t.size in
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < n && less d.(l) d.(!smallest) then smallest := l;
    if r < n && less d.(r) d.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = d.(!i) in
      d.(!i) <- d.(!smallest);
      d.(!smallest) <- tmp;
      i := !smallest
    end
    else continue := false
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t
    end;
    Some (top.priority, top.value)
  end

let peek t = if t.size = 0 then None else Some (t.data.(0).priority, t.data.(0).value)

let min_priority t = if t.size = 0 then None else Some t.data.(0).priority

let clear t =
  t.size <- 0;
  t.data <- [||]
