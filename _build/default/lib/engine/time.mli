(** Simulation time in integer nanoseconds.

    All simulator arithmetic is done in whole nanoseconds so that runs are
    bit-for-bit reproducible; helpers convert to and from human units. *)

type t = int

val zero : t

val ns : int -> t

val us : float -> t

val ms : float -> t

val s : float -> t

val to_us : t -> float

val to_ms : t -> float

val to_s : t -> float

(** [tx_time ~bits_per_ns ~bytes] is the serialization time of [bytes] on a
    link of the given rate, rounded up to at least 1 ns. *)
val tx_time : gbps:float -> bytes:int -> t

(** Pretty-printer: "12.345us", "3.2ms"... *)
val pp : Format.formatter -> t -> unit
