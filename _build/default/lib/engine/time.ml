type t = int

let zero = 0

let ns x = x

let us x = int_of_float (Float.round (x *. 1e3))

let ms x = int_of_float (Float.round (x *. 1e6))

let s x = int_of_float (Float.round (x *. 1e9))

let to_us t = float_of_int t /. 1e3

let to_ms t = float_of_int t /. 1e6

let to_s t = float_of_int t /. 1e9

let tx_time ~gbps ~bytes =
  (* gbps Gbit/s = gbps bits/ns; time = bytes*8 / gbps ns, rounded up. *)
  let bits = float_of_int (bytes * 8) in
  max 1 (int_of_float (Float.ceil (bits /. gbps)))

let pp fmt t =
  if t < 1_000 then Format.fprintf fmt "%dns" t
  else if t < 1_000_000 then Format.fprintf fmt "%.3fus" (to_us t)
  else if t < 1_000_000_000 then Format.fprintf fmt "%.3fms" (to_ms t)
  else Format.fprintf fmt "%.3fs" (to_s t)
