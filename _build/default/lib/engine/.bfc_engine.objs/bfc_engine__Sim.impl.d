lib/engine/sim.ml: Bfc_util Printf Time
