let check ~x ~th_ratio =
  if not (x > 1.0) then invalid_arg "Model: x must exceed 1";
  if th_ratio < 0.0 then invalid_arg "Model: th_ratio must be non-negative"

let phase_durations ~x ~th_ratio =
  check ~x ~th_ratio;
  (* Time in HRTT units; rates in units of mu_f. *)
  let t_p1 = (th_ratio /. (x -. 1.0)) +. 1.0 in
  let t_p2 = th_ratio +. (x -. 1.0) in
  let t_p3 = 1.0 in
  (t_p1, t_p2, t_p3)

let ef ~x ~th_ratio =
  check ~x ~th_ratio;
  (x -. 1.0) /. ((th_ratio *. x) +. (x *. x) -. 1.0)

let worst_x ~th_ratio =
  if th_ratio < 0.0 then invalid_arg "Model.worst_x";
  sqrt th_ratio +. 1.0

let max_ef ~th_ratio =
  let s = sqrt th_ratio +. 1.0 in
  1.0 /. ((s *. s) +. 1.0)

let peak_queue ~x ~th_ratio =
  check ~x ~th_ratio;
  th_ratio +. (x -. 1.0)
