let check rho = if rho < 0.0 || rho >= 1.0 then invalid_arg "Active_flows: need 0 <= rho < 1"

let mean ~rho =
  check rho;
  rho /. (1.0 -. rho)

let pmf ~rho n =
  check rho;
  if n < 0 then 0.0 else (1.0 -. rho) *. (rho ** float_of_int n)

let cdf ~rho n =
  check rho;
  if n < 0 then 0.0 else 1.0 -. (rho ** float_of_int (n + 1))

let quantile ~rho ~p =
  check rho;
  if p <= 0.0 || p >= 1.0 then invalid_arg "Active_flows.quantile";
  if rho = 0.0 then 0
  else begin
    (* smallest n with 1 - rho^(n+1) >= p  <=>  n >= log(1-p)/log(rho) - 1 *)
    let n = Float.ceil ((log (1.0 -. p) /. log rho) -. 1.0) in
    max 0 (int_of_float n)
  end
