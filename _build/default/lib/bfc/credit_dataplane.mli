(** Credit-based (lossless) BFC — the §5 extension the paper leaves to
    future work ("Using credits [11,41] could address this at the cost of
    added complexity").

    Queue assignment is BFC's (flow table + dynamic queue assignment), but
    instead of reactive pause/resume, transmission is gated by hop-by-hop
    credits in the style of Kung & Morris: every egress queue holds a byte
    balance for its downstream link; the downstream returns a credit as
    each packet departs its own buffer. A packet is transmitted only when
    the balance covers it, so — provided the downstream reserves
    [credit_bytes] of buffer per ⟨ingress, upstream queue⟩ — no packet
    ever arrives to a full buffer: losslessness by construction, at the
    documented cost of large reserved buffers (this is exactly why the
    paper's main design avoids credits; see §2.3 "ATM schemes require
    per-connection state and large buffers").

    Host-facing egresses are uncredited (receiver NICs always drain). *)

type config = {
  assignment : Dqa.policy;
  table_mult : int;
  sticky_hrtt_mult : float;
  credit_bytes : int;
      (** initial balance per queue; one 1-hop BDP sustains line rate *)
  max_upstream_q : int;
  seed : int;
}

val default_config : config

type t

val attach : Bfc_switch.Switch.t -> config -> t

val switch : t -> Bfc_switch.Switch.t

(** Current sending balance of an egress queue (bytes). *)
val balance : t -> egress:int -> queue:int -> int

(** Buffer bytes this switch must reserve to honour the credits it grants:
    ingress-ports x max_upstream_q x credit_bytes. *)
val required_buffer : t -> int

(** Credits granted (messages sent upstream) — diagnostics. *)
val credits_sent : t -> int

(** The NIC-side balance handler: shared logic for gating a sender queue
    on Hop_credit arrivals. Exposed for {!Bfc_transport.Nic}. *)
module Balance : sig
  type b

  (** [create ~queues ~initial] — per-queue balances. *)
  val create : queues:int -> initial:int -> b

  (** Packet of [bytes] departed queue [queue]: consume credit; returns
      whether the queue should now be blocked ([true] = insufficient for
      [next] bytes, where [next] = head-of-queue size or 0 if empty). *)
  val consume : b -> queue:int -> bytes:int -> next:int -> bool

  (** Credit returned. Returns whether the queue may be unblocked for a
      head packet of [next] bytes. *)
  val replenish : b -> queue:int -> bytes:int -> next:int -> bool

  val get : b -> queue:int -> int
end
