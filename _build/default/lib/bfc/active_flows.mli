(** Active-flow theory (§2.3): for an M/G/1-PS queue at load rho < 1, the
    number of active flows is geometric with mean rho/(1-rho), independent
    of link speed and flow size distribution. *)

(** Expected number of active flows: rho / (1 - rho). *)
val mean : rho:float -> float

(** P(N = n) = (1 - rho) rho^n. *)
val pmf : rho:float -> int -> float

(** P(N <= n). *)
val cdf : rho:float -> int -> float

(** Smallest n with P(N <= n) >= p. *)
val quantile : rho:float -> p:float -> int
