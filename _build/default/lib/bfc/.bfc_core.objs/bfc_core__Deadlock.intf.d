lib/bfc/deadlock.mli: Bfc_net
