lib/bfc/pause_counter.mli:
