lib/bfc/dataplane.mli: Bfc_engine Bfc_net Bfc_switch Dqa Flow_table Pause_counter
