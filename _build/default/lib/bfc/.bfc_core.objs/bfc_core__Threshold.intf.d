lib/bfc/threshold.mli: Bfc_engine
