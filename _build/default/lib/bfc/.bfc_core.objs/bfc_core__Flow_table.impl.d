lib/bfc/flow_table.ml: Array Bfc_engine
