lib/bfc/pause_counter.ml: Array Printf
