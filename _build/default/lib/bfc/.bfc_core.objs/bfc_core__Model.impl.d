lib/bfc/model.ml:
