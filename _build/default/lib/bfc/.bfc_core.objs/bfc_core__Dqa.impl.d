lib/bfc/dqa.ml: Array Bfc_util
