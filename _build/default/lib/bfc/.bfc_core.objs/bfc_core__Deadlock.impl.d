lib/bfc/deadlock.ml: Array Bfc_net Hashtbl List Option
