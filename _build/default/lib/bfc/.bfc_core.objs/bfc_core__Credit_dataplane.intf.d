lib/bfc/credit_dataplane.mli: Bfc_switch Dqa
