lib/bfc/model.mli:
