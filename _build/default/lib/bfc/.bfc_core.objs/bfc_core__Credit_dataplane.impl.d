lib/bfc/credit_dataplane.ml: Array Bfc_engine Bfc_net Bfc_switch Bfc_util Dqa Flow_table
