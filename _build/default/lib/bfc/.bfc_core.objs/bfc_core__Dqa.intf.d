lib/bfc/dqa.mli: Bfc_util
