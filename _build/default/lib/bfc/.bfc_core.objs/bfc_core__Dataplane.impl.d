lib/bfc/dataplane.ml: Array Bfc_engine Bfc_net Bfc_switch Bfc_util Dqa Flow_table Pause_counter Threshold
