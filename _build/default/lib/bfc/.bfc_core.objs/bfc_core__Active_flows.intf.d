lib/bfc/active_flows.mli:
