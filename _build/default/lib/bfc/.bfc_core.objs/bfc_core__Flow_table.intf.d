lib/bfc/flow_table.mli: Bfc_engine
