lib/bfc/active_flows.ml: Float
