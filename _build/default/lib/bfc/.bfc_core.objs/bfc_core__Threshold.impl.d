lib/bfc/threshold.ml: Array
