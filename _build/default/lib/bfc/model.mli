(** The analytic model of the pause threshold's impact (App. C).

    A long flow bottlenecked at a switch with enqueue/dequeue rate ratio
    [x > 1] cycles through three phases (build-up, drain, empty-for-an-
    HRTT); [ef] is the steady-state fraction of time the flow has no
    packets at the bottleneck. Th is expressed relative to the one-hop BDP
    at the drain rate: [th_ratio] = Th / (HRTT . mu_f); the paper's setting
    is [th_ratio = 1]. *)

(** [ef ~x ~th_ratio] = (x - 1) / (th_ratio . x + x^2 - 1).
    Raises [Invalid_argument] unless [x > 1] and [th_ratio >= 0]. *)
val ef : x:float -> th_ratio:float -> float

(** Phase durations in units of HRTT (for a unit-rate flow):
    (t_p1, t_p2, t_p3) of App. C equations (1)-(3). *)
val phase_durations : x:float -> th_ratio:float -> float * float * float

(** The x that maximises [ef] for a given threshold: sqrt(th_ratio) + 1. *)
val worst_x : th_ratio:float -> float

(** [max_ef ~th_ratio] = 1 / ((sqrt th_ratio + 1)^2 + 1) — equation (5);
    0.2 at th_ratio = 1 (the "at most 20% of the time" claim). *)
val max_ef : th_ratio:float -> float

(** Peak queue occupancy (in HRTT.mu_f units): th_ratio + (x - 1). *)
val peak_queue : x:float -> th_ratio:float -> float
