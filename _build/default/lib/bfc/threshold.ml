let bytes ~hrtt ~gbps ~n_active ~factor =
  let n = max 1 n_active in
  (* gbps Gbit/s = gbps/8 bytes per ns *)
  let bdp = float_of_int hrtt *. gbps /. 8.0 in
  int_of_float (factor *. bdp /. float_of_int n)

type table = { values : int array; max_active : int }

let table ~hrtt ~gbps ~max_active ~factor =
  if max_active <= 0 then invalid_arg "Threshold.table";
  {
    values = Array.init (max_active + 1) (fun n -> bytes ~hrtt ~gbps ~n_active:(max 1 n) ~factor);
    max_active;
  }

let lookup t ~n_active =
  let n = if n_active < 1 then 1 else if n_active > t.max_active then t.max_active else n_active in
  t.values.(n)
