(** The pause threshold Th (§3.3.2): one-hop BDP at the queue's drain rate.

    Th = HRTT x (µ / N_active), with µ the egress port capacity and
    N_active the number of active (non-empty, unpaused) queues at that
    egress. In hardware this is a pre-configured match-action table keyed
    by ⟨N_active, µ⟩; here we expose both the direct computation and a
    quantized table to mirror the hardware. *)

(** [bytes ~hrtt ~gbps ~n_active ~factor] — threshold in bytes.
    [factor] scales Th (1.0 = the paper's setting). *)
val bytes : hrtt:Bfc_engine.Time.t -> gbps:float -> n_active:int -> factor:float -> int

(** A precomputed table over N_active in [1, max_active] (clamping above),
    as the hardware match-action table would hold. *)
type table

val table : hrtt:Bfc_engine.Time.t -> gbps:float -> max_active:int -> factor:float -> table

val lookup : table -> n_active:int -> int
