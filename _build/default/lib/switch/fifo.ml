type t = {
  idx : int;
  cls : int;
  q : Bfc_net.Packet.t Queue.t;
  mutable bytes : int;
  mutable paused : bool;
  mutable deficit : int;
  mutable in_ring : bool;
}

let create ~idx ~cls =
  { idx; cls; q = Queue.create (); bytes = 0; paused = false; deficit = 0; in_ring = false }

let is_empty t = Queue.is_empty t.q

let length t = Queue.length t.q

let push t pkt =
  Queue.add pkt t.q;
  t.bytes <- t.bytes + pkt.Bfc_net.Packet.size

let pop t =
  let pkt = Queue.pop t.q in
  t.bytes <- t.bytes - pkt.Bfc_net.Packet.size;
  pkt

let peek t = Queue.peek_opt t.q

let head_remaining t =
  match Queue.peek_opt t.q with None -> max_int | Some p -> p.Bfc_net.Packet.remaining
