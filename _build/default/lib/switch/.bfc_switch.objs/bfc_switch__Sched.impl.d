lib/switch/sched.ml: Array Bfc_net Fifo Queue
