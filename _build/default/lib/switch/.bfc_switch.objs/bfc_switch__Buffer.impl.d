lib/switch/buffer.ml: Array
