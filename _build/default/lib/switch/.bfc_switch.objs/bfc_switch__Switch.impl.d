lib/switch/switch.ml: Array Bfc_engine Bfc_net Bfc_util Buffer Fifo Hashtbl Sched
