lib/switch/switch.mli: Bfc_engine Bfc_net Buffer Fifo Sched
