lib/switch/fifo.mli: Bfc_net Queue
