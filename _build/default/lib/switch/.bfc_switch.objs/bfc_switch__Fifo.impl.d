lib/switch/fifo.ml: Bfc_net Queue
