lib/switch/sched.mli: Bfc_net Fifo
