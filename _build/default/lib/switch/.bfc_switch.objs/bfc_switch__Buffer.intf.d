lib/switch/buffer.mli:
