(** TIMELY (Mittal et al., SIGCOMM 2015) — simplified sender state.

    Rate-based control on the RTT *gradient*: below [t_low] increase
    additively; above [t_high] decrease multiplicatively; in between,
    increase when the smoothed gradient is non-positive and decrease
    proportionally to it otherwise. *)

type t

val create :
  line_gbps:float ->
  base_rtt:Bfc_engine.Time.t ->
  t_low:Bfc_engine.Time.t ->
  t_high:Bfc_engine.Time.t ->
  t

val on_ack : t -> rtt:Bfc_engine.Time.t -> unit

(** Current sending rate, bytes per ns. *)
val rate : t -> float
