type t = {
  line : float; (* bytes/ns *)
  base_rtt : Bfc_engine.Time.t;
  t_low : Bfc_engine.Time.t;
  t_high : Bfc_engine.Time.t;
  delta : float; (* additive step, bytes/ns *)
  beta : float;
  alpha : float; (* gradient EWMA gain *)
  mutable r : float;
  mutable prev_rtt : Bfc_engine.Time.t;
  mutable grad : float;
  mutable hai : int; (* consecutive gradient increases => hyperactive step *)
}

let create ~line_gbps ~base_rtt ~t_low ~t_high =
  let line = line_gbps /. 8.0 in
  {
    line;
    base_rtt;
    t_low;
    t_high;
    delta = line /. 100.0;
    beta = 0.8;
    alpha = 0.875;
    r = line;
    prev_rtt = base_rtt;
    grad = 0.0;
    hai = 0;
  }

let clamp t = t.r <- Float.min t.line (Float.max (t.line /. 1000.0) t.r)

let on_ack t ~rtt =
  if rtt > 0 then begin
    let diff = float_of_int (rtt - t.prev_rtt) in
    t.prev_rtt <- rtt;
    let norm = diff /. float_of_int t.base_rtt in
    t.grad <- (t.alpha *. t.grad) +. ((1.0 -. t.alpha) *. norm);
    if rtt < t.t_low then begin
      t.hai <- 0;
      t.r <- t.r +. t.delta
    end
    else if rtt > t.t_high then begin
      t.hai <- 0;
      t.r <- t.r *. (1.0 -. (t.beta *. (1.0 -. (float_of_int t.t_high /. float_of_int rtt))))
    end
    else if t.grad <= 0.0 then begin
      t.hai <- t.hai + 1;
      let n = if t.hai >= 5 then 5.0 else 1.0 in
      t.r <- t.r +. (n *. t.delta)
    end
    else begin
      t.hai <- 0;
      t.r <- t.r *. (1.0 -. (t.beta *. Float.min 1.0 t.grad))
    end;
    clamp t
  end

let rate t = t.r
