(** DCQCN sender state (Zhu et al., SIGCOMM 2015).

    Rate-based: the receiver emits CNPs (at most one per [cnp_interval]) on
    ECN-marked arrivals; the sender cuts Rc multiplicatively by alpha/2 and
    recovers through fast-recovery / additive / hyper increase stages driven
    by a timer and a byte counter. Timers run on the simulation clock; call
    [stop] when the flow completes. *)

type params = {
  rai_gbps : float; (** additive increase step (paper: 40 Mb/s) *)
  g : float; (** alpha EWMA gain (1/256) *)
  alpha_timer : Bfc_engine.Time.t; (** 55 us *)
  increase_timer : Bfc_engine.Time.t; (** 55 us *)
  byte_counter : int; (** 10 MB *)
  fast_recovery_stages : int; (** F = 5 *)
  cnp_interval : Bfc_engine.Time.t; (** 50 us, receiver side *)
}

val default_params : params

type t

(** [create sim ~params ~line_gbps ~on_rate_change] — starts at line rate.
    [on_rate_change] lets the pacer resynchronize. *)
val create :
  Bfc_engine.Sim.t -> params:params -> line_gbps:float -> on_rate_change:(unit -> unit) -> t

(** Receiver congestion notification arrived. *)
val on_cnp : t -> unit

(** Account transmitted bytes (drives the byte counter). *)
val on_sent : t -> bytes:int -> unit

(** Current sending rate, bytes per ns. *)
val rate : t -> float

(** Cancel timers (flow finished). *)
val stop : t -> unit

val alpha : t -> float
