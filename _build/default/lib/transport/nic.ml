module Packet = Bfc_net.Packet
module Port = Bfc_net.Port
module Fifo = Bfc_switch.Fifo
module Sched = Bfc_switch.Sched

module Balance = Bfc_core.Credit_dataplane.Balance

type t = {
  sim : Bfc_engine.Sim.t;
  port : Port.t;
  queues : Fifo.t array;
  sched : Sched.t;
  respect_pause : bool;
  mutable pfc_paused : bool;
  occupants : int array;
  mutable rr : int;
  mutable on_dequeue : int -> unit;
  mutable backlog : int;
  credit : Balance.b option; (* lossless-BFC variant: gate data queues *)
}

let rec create ~sim ~port ~n_queues ~policy ~respect_pause ?credit () =
  if n_queues < 2 then invalid_arg "Nic.create: need >= 2 queues";
  let queues = Array.init n_queues (fun idx -> Fifo.create ~idx ~cls:0) in
  let quantum = 1100 + Packet.header_bytes in
  let t =
    {
      sim;
      port;
      queues;
      sched = Sched.create policy ~queues ~classes:1 ~quantum;
      respect_pause;
      pfc_paused = false;
      occupants = Array.make n_queues 0;
      rr = 1;
      on_dequeue = ignore;
      backlog = 0;
      credit = Option.map (fun initial -> Balance.create ~queues:n_queues ~initial) credit;
    }
  in
  Port.set_on_idle port (fun () -> try_send t);
  t

and try_send t =
  if (not (Port.busy t.port)) && not t.pfc_paused then begin
    match Sched.next t.sched with
    | None -> ()
    | Some (q, pkt) ->
      t.backlog <- t.backlog - pkt.Packet.size;
      if pkt.Packet.kind = Packet.Data then begin
        pkt.Packet.upstream_q <- q.Fifo.idx;
        match t.credit with
        | Some b when q.Fifo.idx > 0 ->
          let next = match Fifo.peek q with None -> 0 | Some p -> p.Packet.size in
          if Balance.consume b ~queue:q.Fifo.idx ~bytes:pkt.Packet.size ~next then
            Sched.set_paused t.sched q true
        | _ -> ()
      end;
      pkt.Packet.sent_at <- Bfc_engine.Sim.now t.sim;
      Port.send t.port pkt;
      t.on_dequeue q.Fifo.idx
  end

let n_queues t = Array.length t.queues

let alloc_queue t =
  let n = Array.length t.queues in
  (* first unoccupied data queue starting from the rotation point *)
  let rec scan i remaining =
    if remaining = 0 then None
    else begin
      let i = if i >= n then 1 else i in
      if t.occupants.(i) = 0 then Some i else scan (i + 1) (remaining - 1)
    end
  in
  let q =
    match scan t.rr (n - 1) with
    | Some q -> q
    | None ->
      (* all occupied: share round-robin *)
      let q = 1 + ((t.rr - 1) mod (n - 1)) in
      q
  in
  t.rr <- (if q + 1 >= n then 1 else q + 1);
  t.occupants.(q) <- t.occupants.(q) + 1;
  q

let release_queue t q = if q >= 1 && q < Array.length t.queues then t.occupants.(q) <- max 0 (t.occupants.(q) - 1)

let submit t ~queue pkt =
  let q = t.queues.(queue) in
  Sched.push t.sched q pkt;
  t.backlog <- t.backlog + pkt.Packet.size;
  (* credit gating: a starved queue stays paused until replenished *)
  (match t.credit with
  | Some b when queue > 0 && pkt.Packet.kind = Packet.Data ->
    let next = match Fifo.peek q with None -> 0 | Some p -> p.Packet.size in
    if next > 0 && Balance.get b ~queue < next then Sched.set_paused t.sched q true
  | _ -> ());
  try_send t

let submit_ctrl t pkt = submit t ~queue:0 pkt

let queue_bytes t ~queue = t.queues.(queue).Fifo.bytes

let queue_paused t ~queue = t.queues.(queue).Fifo.paused

let backlog t = t.backlog

let set_on_dequeue t f = t.on_dequeue <- f

let on_ctrl t pkt =
  match pkt.Packet.kind with
  | Packet.Pfc ->
    let pause = pkt.Packet.ctrl_b = 1 in
    if t.pfc_paused && not pause then begin
      t.pfc_paused <- false;
      try_send t
    end
    else if pause then t.pfc_paused <- true
  | Packet.Pause | Packet.Resume | Packet.Pause_bitmap ->
    if t.respect_pause then
      Bfc_core.Dataplane.apply_ctrl
        ~set_paused:(fun ~queue paused ->
          Sched.set_paused t.sched t.queues.(queue) paused;
          if not paused then try_send t)
        ~n_queues:(Array.length t.queues) pkt
  | Packet.Hop_credit -> (
    match t.credit with
    | Some b ->
      let queue = pkt.Packet.ctrl_a in
      if queue > 0 && queue < Array.length t.queues then begin
        let q = t.queues.(queue) in
        let next = match Fifo.peek q with None -> 0 | Some p -> p.Packet.size in
        if Balance.replenish b ~queue ~bytes:pkt.Packet.ctrl_b ~next then begin
          Sched.set_paused t.sched q false;
          try_send t
        end
      end
    | None -> ())
  | _ -> ()
