module Sim = Bfc_engine.Sim

type params = {
  rai_gbps : float;
  g : float;
  alpha_timer : Bfc_engine.Time.t;
  increase_timer : Bfc_engine.Time.t;
  byte_counter : int;
  fast_recovery_stages : int;
  cnp_interval : Bfc_engine.Time.t;
}

let default_params =
  {
    rai_gbps = 0.04;
    g = 1.0 /. 256.0;
    alpha_timer = 55_000;
    increase_timer = 55_000;
    byte_counter = 10_000_000;
    fast_recovery_stages = 5;
    cnp_interval = 50_000;
  }

type t = {
  sim : Sim.t;
  p : params;
  line : float; (* bytes per ns *)
  on_rate_change : unit -> unit;
  mutable rc : float; (* current rate, bytes/ns *)
  mutable rt : float; (* target rate *)
  mutable alpha : float;
  mutable timer_stage : int;
  mutable byte_stage : int;
  mutable bytes_since : int;
  mutable cnp_seen_since_alpha : bool;
  mutable alpha_tick : Sim.ticker option;
  mutable incr_tick : Sim.ticker option;
  mutable stopped : bool;
}

let bytes_per_ns gbps = gbps /. 8.0

let rate t = t.rc

let alpha t = t.alpha

let stage t = max t.timer_stage t.byte_stage

let increase t =
  let st = stage t in
  if st < t.p.fast_recovery_stages then
    (* fast recovery: converge to target *)
    t.rc <- (t.rt +. t.rc) /. 2.0
  else if st < 2 * t.p.fast_recovery_stages then begin
    (* additive increase *)
    t.rt <- Float.min t.line (t.rt +. bytes_per_ns t.p.rai_gbps);
    t.rc <- (t.rt +. t.rc) /. 2.0
  end
  else begin
    (* hyper increase *)
    t.rt <- Float.min t.line (t.rt +. (5.0 *. bytes_per_ns t.p.rai_gbps));
    t.rc <- (t.rt +. t.rc) /. 2.0
  end;
  if t.rc > t.line then t.rc <- t.line;
  t.on_rate_change ()

let create sim ~params ~line_gbps ~on_rate_change =
  let line = bytes_per_ns line_gbps in
  let t =
    {
      sim;
      p = params;
      line;
      on_rate_change;
      rc = line;
      rt = line;
      alpha = 1.0;
      timer_stage = 0;
      byte_stage = 0;
      bytes_since = 0;
      cnp_seen_since_alpha = false;
      alpha_tick = None;
      incr_tick = None;
      stopped = false;
    }
  in
  t.alpha_tick <-
    Some
      (Sim.every sim ~period:params.alpha_timer (fun () ->
           if not t.cnp_seen_since_alpha then t.alpha <- (1.0 -. params.g) *. t.alpha;
           t.cnp_seen_since_alpha <- false));
  t.incr_tick <-
    Some
      (Sim.every sim ~period:params.increase_timer (fun () ->
           t.timer_stage <- t.timer_stage + 1;
           increase t));
  t

let on_cnp t =
  t.alpha <- ((1.0 -. t.p.g) *. t.alpha) +. t.p.g;
  t.cnp_seen_since_alpha <- true;
  t.rt <- t.rc;
  t.rc <- Float.max (t.line /. 1000.0) (t.rc *. (1.0 -. (t.alpha /. 2.0)));
  t.timer_stage <- 0;
  t.byte_stage <- 0;
  t.bytes_since <- 0;
  t.on_rate_change ()

let on_sent t ~bytes =
  t.bytes_since <- t.bytes_since + bytes;
  if t.bytes_since >= t.p.byte_counter then begin
    t.bytes_since <- 0;
    t.byte_stage <- t.byte_stage + 1;
    increase t
  end

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Option.iter Sim.stop_ticker t.alpha_tick;
    Option.iter Sim.stop_ticker t.incr_tick
  end
