type t = {
  mtu : int;
  target : float; (* ns *)
  beta : float;
  mutable w : float; (* bytes *)
  mutable last_decrease : Bfc_engine.Time.t;
  mutable last_rtt : Bfc_engine.Time.t;
}

let create ~mtu ~bdp ~base_rtt ~target_mult ~beta =
  {
    mtu;
    target = target_mult *. float_of_int base_rtt;
    beta;
    w = float_of_int bdp;
    last_decrease = min_int / 2;
    last_rtt = base_rtt;
  }

let on_ack t ~rtt ~now =
  if rtt > 0 then begin
    let r = float_of_int rtt in
    if r <= t.target then
      (* additive increase: one MTU per RTT, spread over the window's acks *)
      t.w <- t.w +. (float_of_int t.mtu *. float_of_int t.mtu /. t.w)
    else if now - t.last_decrease > rtt then begin
      (* multiplicative decrease proportional to overshoot, once per RTT *)
      let cut = 1.0 -. (t.beta *. (r -. t.target) /. r) in
      t.w <- t.w *. Float.max 0.3 cut;
      t.last_decrease <- now
    end;
    if t.w < float_of_int t.mtu then t.w <- float_of_int t.mtu;
    t.last_rtt <- rtt
  end

let window t = int_of_float t.w
