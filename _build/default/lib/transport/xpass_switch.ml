module Packet = Bfc_net.Packet
module Switch = Bfc_switch.Switch
module Sim = Bfc_engine.Sim

let credit_cap = 16

let attach sw ~mtu_wire =
  let cfg = Switch.config sw in
  let credit_q = cfg.Switch.queues_per_port - 1 in
  let sim = Switch.sim sw in
  let n = Switch.n_ports sw in
  let next_ok = Array.make n 0 in
  let hk = Switch.hooks sw in
  hk.Switch.classify <-
    (fun _ ~in_port:_ ~egress:_ pkt ->
      match pkt.Packet.kind with
      | Packet.Credit -> credit_q
      | _ -> min pkt.Packet.prio (credit_q - 1));
  hk.Switch.admit <-
    (fun sw ~egress ~queue pkt ->
      match pkt.Packet.kind with
      | Packet.Credit ->
        let q = Switch.queue sw ~egress ~queue in
        Bfc_switch.Fifo.length q < credit_cap
      | _ -> true);
  (* A resume is stale if a later transmission slot was armed after it was
     scheduled; only the freshest resume may unpause. *)
  let resume_at sw egress time =
    ignore
      (Sim.at sim time (fun () ->
           if Sim.now sim >= next_ok.(egress) then
             Switch.set_queue_paused sw ~egress ~queue:credit_q false))
  in
  hk.Switch.on_enqueue <-
    (fun sw ~in_port:_ ~egress ~queue pkt ->
      (* Enforce the shaping gap: if the credit queue must wait, pause it
         until its next transmission slot. *)
      if pkt.Packet.kind = Packet.Credit && queue = credit_q then begin
        let now = Sim.now sim in
        if now < next_ok.(egress) then begin
          Switch.set_queue_paused sw ~egress ~queue:credit_q true;
          resume_at sw egress next_ok.(egress)
        end
      end);
  hk.Switch.on_dequeue <-
    (fun sw ~egress ~queue pkt ->
      if pkt.Packet.kind = Packet.Credit && queue = credit_q then begin
        let port = Switch.port sw egress in
        let interval =
          Bfc_engine.Time.tx_time ~gbps:(Bfc_net.Port.gbps port) ~bytes:mtu_wire
        in
        next_ok.(egress) <- Sim.now sim + interval;
        Switch.set_queue_paused sw ~egress ~queue:credit_q true;
        resume_at sw egress next_ok.(egress)
      end)
