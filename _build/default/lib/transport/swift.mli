(** Swift (Kumar et al., SIGCOMM 2020) — simplified sender state.

    Delay-based, window-controlled: per ACK, compare the RTT sample to a
    target delay (base RTT plus a per-hop allowance); additively increase
    below target, multiplicatively decrease (at most once per RTT) above
    it. One of the "deployed algorithms" the paper's §2 motivates against. *)

type t

val create :
  mtu:int -> bdp:int -> base_rtt:Bfc_engine.Time.t -> target_mult:float -> beta:float -> t

val on_ack : t -> rtt:Bfc_engine.Time.t -> now:Bfc_engine.Time.t -> unit

val window : t -> int
