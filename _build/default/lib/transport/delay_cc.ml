type t = {
  mtu : int;
  target : float; (* ns *)
  mutable w : float; (* bytes *)
}

let create ~mtu ~bdp ~base_rtt ~target_mult =
  { mtu; target = target_mult *. float_of_int base_rtt; w = float_of_int bdp }

let on_ack t ~rtt =
  if rtt > 0 then begin
    let r = float_of_int rtt in
    (* w +/- (|target - rtt| / rtt) packets per ack *)
    t.w <- t.w +. (float_of_int t.mtu *. (t.target -. r) /. r);
    if t.w < float_of_int t.mtu then t.w <- float_of_int t.mtu
  end

let window t = int_of_float t.w
