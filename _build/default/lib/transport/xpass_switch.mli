(** ExpressPass switch behaviour: per-egress credit-queue rate limiting.

    Credits are queued separately, capped at [credit_cap] packets (drops
    beyond, which is the congestion signal), and drained at one credit per
    data-MTU serialization time — so the data the credits trigger can never
    exceed the link rate (the paper's "credits are rate-limited at the
    switches to avoid congestion"). *)

val credit_cap : int

(** [attach sw ~mtu_wire] installs the hooks (composes with the default
    FIFO data path). *)
val attach : Bfc_switch.Switch.t -> mtu_wire:int -> unit
