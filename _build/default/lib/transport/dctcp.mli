(** DCTCP sender state (Alizadeh et al., SIGCOMM 2010).

    Window-based; the receiver echoes ECN marks per packet and the sender
    maintains the EWMA marked fraction alpha, cutting by alpha/2 once per
    window. Per §6.2.1 flows start at line rate (window = 1 BDP); the
    slow-start variant of App. A.6 starts at 10 packets and doubles. *)

type t

val create : mtu:int -> bdp:int -> slow_start:bool -> g:float -> t

(** [on_ack t ~acked ~marked ~snd_una ~snd_nxt] — [acked] bytes newly
    cumulatively acknowledged; [marked] is the ECN echo. *)
val on_ack : t -> acked:int -> marked:bool -> snd_una:int -> snd_nxt:int -> unit

(** On retransmission timeout: collapse the window. *)
val on_timeout : t -> unit

(** Current window in bytes (>= 1 MTU). *)
val window : t -> int

(** Current alpha (for tests). *)
val alpha : t -> float
