(** Homa (Montazeri et al., SIGCOMM 2018), reimplemented for App. A.2.

    Receiver-driven: the first [rtt_bytes] of a message are unscheduled,
    sent at line rate at a priority chosen from the workload's flow-size
    distribution (smaller messages get higher priority, cutoffs equalizing
    unscheduled bytes per level); the rest is scheduled by receiver grants
    with SRPT order and an overcommitment degree equal to the number of
    scheduled priorities. Switches serve strict priority queues; packet
    spraying is optional (Homa assumes it; Homa-ECMP is the ablation). *)

type params = {
  total_prios : int; (** physical priority levels (queues per port) *)
  unsched_prios : int;
  overcommit : int; (** concurrently granted messages per receiver *)
  rtt_bytes : int;
  spray : bool;
  cutoffs : int array;
      (** flow-size boundaries between unscheduled priorities (ascending,
          length unsched_prios - 1) *)
}

(** Derive parameters from the workload (cutoffs by equal unscheduled-byte
    mass, split of priority levels by unscheduled/scheduled byte ratio). *)
val params_for :
  dist:Bfc_workload.Dist.t -> total_prios:int -> rtt_bytes:int -> spray:bool -> params

(** Priority level for a message's unscheduled bytes (0 = highest). *)
val unsched_prio : params -> size:int -> int

type grant = { g_flow : Bfc_net.Flow.t; g_offset : int; g_prio : int }

module Receiver : sig
  (** Per-receiving-host grant scheduler. *)
  type t

  val create : params -> t

  (** Data for [flow] arrived ([covered] = bytes received so far). Returns
      the grants to emit now (possibly for other messages). *)
  val on_data : t -> flow:Bfc_net.Flow.t -> covered:int -> grant list

  (** Number of messages currently being scheduled (diagnostics). *)
  val active : t -> int
end
