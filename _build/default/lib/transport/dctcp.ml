type t = {
  mtu : int;
  bdp : int;
  g : float;
  mutable w : float;
  mutable alpha : float;
  mutable acked_bytes : int;
  mutable marked_bytes : int;
  mutable window_end : int; (* alpha update when snd_una passes this seq *)
  mutable ss : bool;
}

let create ~mtu ~bdp ~slow_start ~g =
  {
    mtu;
    bdp;
    g;
    w = (if slow_start then float_of_int (10 * mtu) else float_of_int bdp);
    alpha = 0.0;
    acked_bytes = 0;
    marked_bytes = 0;
    window_end = 0;
    ss = slow_start;
  }

let clamp t = if t.w < float_of_int t.mtu then t.w <- float_of_int t.mtu

let on_ack t ~acked ~marked ~snd_una ~snd_nxt =
  if acked > 0 then begin
    t.acked_bytes <- t.acked_bytes + acked;
    if marked then t.marked_bytes <- t.marked_bytes + acked;
    if t.ss then begin
      if marked then t.ss <- false else t.w <- t.w +. float_of_int acked
    end
    else
      (* additive increase: one MTU per window *)
      t.w <- t.w +. (float_of_int t.mtu *. float_of_int acked /. t.w);
    if snd_una >= t.window_end then begin
      (* one window's worth of feedback gathered *)
      let f =
        if t.acked_bytes = 0 then 0.0
        else float_of_int t.marked_bytes /. float_of_int t.acked_bytes
      in
      t.alpha <- ((1.0 -. t.g) *. t.alpha) +. (t.g *. f);
      if t.marked_bytes > 0 then t.w <- t.w *. (1.0 -. (t.alpha /. 2.0));
      t.acked_bytes <- 0;
      t.marked_bytes <- 0;
      t.window_end <- snd_nxt
    end;
    clamp t
  end

let on_timeout t =
  t.ss <- false;
  t.w <- float_of_int t.mtu

let window t = int_of_float t.w

let alpha t = t.alpha
