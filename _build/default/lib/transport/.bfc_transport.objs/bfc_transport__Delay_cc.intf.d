lib/transport/delay_cc.mli: Bfc_engine
