lib/transport/dcqcn.ml: Bfc_engine Float Option
