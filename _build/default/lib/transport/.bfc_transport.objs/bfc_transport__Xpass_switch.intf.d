lib/transport/xpass_switch.mli: Bfc_switch
