lib/transport/dctcp.ml:
