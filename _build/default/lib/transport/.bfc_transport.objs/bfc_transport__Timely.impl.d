lib/transport/timely.ml: Bfc_engine Float
