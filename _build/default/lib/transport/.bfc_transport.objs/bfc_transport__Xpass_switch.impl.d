lib/transport/xpass_switch.ml: Array Bfc_engine Bfc_net Bfc_switch
