lib/transport/nic.mli: Bfc_engine Bfc_net Bfc_switch
