lib/transport/host.mli: Bfc_engine Bfc_net Bfc_switch Dcqcn Homa Nic
