lib/transport/swift.mli: Bfc_engine
