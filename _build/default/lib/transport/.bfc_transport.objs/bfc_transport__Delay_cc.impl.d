lib/transport/delay_cc.ml:
