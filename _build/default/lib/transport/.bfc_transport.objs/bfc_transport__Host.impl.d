lib/transport/host.ml: Array Bfc_engine Bfc_net Bfc_switch Bfc_util Dcqcn Dctcp Delay_cc Float Hashtbl Homa Hpcc List Nic Swift Timely
