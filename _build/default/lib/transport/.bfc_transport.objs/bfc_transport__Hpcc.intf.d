lib/transport/hpcc.mli: Bfc_engine Bfc_net
