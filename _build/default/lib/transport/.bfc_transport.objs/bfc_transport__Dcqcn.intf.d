lib/transport/dcqcn.mli: Bfc_engine
