lib/transport/swift.ml: Bfc_engine Float
