lib/transport/homa.mli: Bfc_net Bfc_workload
