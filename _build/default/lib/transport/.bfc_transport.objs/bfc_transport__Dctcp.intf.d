lib/transport/dctcp.mli:
