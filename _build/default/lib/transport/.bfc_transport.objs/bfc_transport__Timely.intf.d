lib/transport/timely.mli: Bfc_engine
