lib/transport/hpcc.ml: Bfc_engine Bfc_net Hashtbl List
