lib/transport/nic.ml: Array Bfc_core Bfc_engine Bfc_net Bfc_switch Option
