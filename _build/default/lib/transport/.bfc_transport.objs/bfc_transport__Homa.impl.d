lib/transport/homa.ml: Array Bfc_net Bfc_util Bfc_workload Float Hashtbl List
