(** The simple delay-based end-to-end control of App. A.1 (Algorithm 1),
    used by the BFC+CC variant.

    The window starts at one BDP and is nudged per ACK so that, over an
    RTT, w -> w x (RTT_target / RTT); the target is a deliberately loose
    2.5 x base RTT since BFC itself handles queueing and fairness. *)

type t

val create : mtu:int -> bdp:int -> base_rtt:Bfc_engine.Time.t -> target_mult:float -> t

(** [on_ack t ~rtt] — one acknowledgement carrying an RTT sample. *)
val on_ack : t -> rtt:Bfc_engine.Time.t -> unit

val window : t -> int
