(* Principal simulation results (§6.2.2-§6.4): Fig. 9-14 and the incast
   flow FCTs of App. A.12 (Fig. 29). *)

module Time = Bfc_engine.Time
module Dist = Bfc_workload.Dist
module Sample = Bfc_util.Stats.Sample
open Exp_common

let main_schemes =
  [
    Scheme.bfc;
    Scheme.hpcc;
    Scheme.hpcc_pfc;
    Scheme.dcqcn;
    Scheme.dctcp;
    Scheme.expresspass;
    Scheme.Ideal_fq;
  ]

let quick_schemes profile =
  match profile with
  | Smoke -> [ Scheme.bfc; Scheme.dctcp ]
  | Quick | Paper -> main_schemes

(* One Fig-9/10/11-style panel: per-scheme FCT buckets + buffer + pfc. *)
let panel ~title ~profile ~dist ~load ~incast ~track_active =
  let fct_rows_all = ref [] in
  let summary = ref [] in
  let active_tbl = ref [] in
  List.iter
    (fun scheme ->
      let s =
        {
          (std profile scheme) with
          sp_dist = dist;
          sp_load = load;
          sp_incast = incast;
          sp_track_active = track_active;
        }
      in
      let r = run_std s in
      let name = Scheme.name scheme in
      fct_rows_all :=
        !fct_rows_all @ List.map (fun row -> name :: row) (fct_rows r);
      summary :=
        [
          name;
          cell (buffer_p99 r /. 1e6);
          string_of_int (Runner.total_drops r.env);
          cell (Runner.pfc_pause_fraction r.env *. 100.0);
          Printf.sprintf "%d/%d" (Runner.completed r.env) (Runner.injected r.env);
        ]
        :: !summary;
      (match r.active with
      | Some a when not (Sample.is_empty a) ->
        active_tbl :=
          [
            name;
            cell (Sample.mean a);
            cell (Sample.percentile a 90.0);
            cell (Sample.percentile a 99.0);
            cell (Sample.max a);
          ]
          :: !active_tbl
      | _ -> ());
      (* incast flows separately (App A.12 / Fig 29 uses the Fig 9 setup) *)
      match incast with
      | None -> ()
      | Some _ ->
        let stats = Metrics.fct_table r.env ~incast:true ~since:r.measure_from r.flows in
        List.iter
          (fun (st : Metrics.fct_stats) ->
            if st.Metrics.count > 0 then
              fct_rows_all :=
                !fct_rows_all
                @ [
                    [
                      name ^ " [incast]";
                      st.Metrics.bucket;
                      string_of_int st.Metrics.count;
                      cell st.Metrics.avg;
                      cell st.Metrics.p50;
                      cell st.Metrics.p95;
                      cell st.Metrics.p99;
                    ];
                  ])
          stats)
    (quick_schemes profile);
  let tables =
    [
      {
        title;
        header = [ "scheme"; "bucket"; "n"; "avg"; "p50"; "p95"; "p99" ];
        rows = !fct_rows_all;
      };
      {
        title = title ^ " — buffer occupancy & health";
        header = [ "scheme"; "p99 buffer(MB)"; "drops"; "pfc pause(%)"; "completed" ];
        rows = List.rev !summary;
      };
    ]
  in
  if !active_tbl = [] then tables
  else
    tables
    @ [
        {
          title = title ^ " — active flows per port";
          header = [ "scheme"; "mean"; "p90"; "p99"; "max" ];
          rows = List.rev !active_tbl;
        };
      ]

let fig9 profile =
  panel ~title:"Fig 9: Google, 55% load + 5% 100:1 incast — FCT slowdown" ~profile
    ~dist:Dist.google ~load:0.6 ~incast:(Some default_incast) ~track_active:false

let fig10 profile =
  panel ~title:"Fig 10: Google, 60% load, no incast — FCT slowdown" ~profile ~dist:Dist.google
    ~load:0.6 ~incast:None ~track_active:true

let fig11 profile =
  panel
    ~title:"Fig 11a: Facebook, 55% + 5% 100:1 incast — FCT slowdown" ~profile
    ~dist:Dist.fb_hadoop ~load:0.6 ~incast:(Some default_incast) ~track_active:false
  @ panel ~title:"Fig 11b: Facebook, 60% load, no incast — FCT slowdown" ~profile
      ~dist:Dist.fb_hadoop ~load:0.6 ~incast:None ~track_active:false

(* ------------------------------------------------------------------ *)
(* Fig. 12: load sweep.                                                 *)

let fig12 profile =
  let loads = match profile with Smoke -> [ 0.6 ] | _ -> [ 0.5; 0.6; 0.7; 0.8; 0.9; 0.95 ] in
  let schemes =
    match profile with
    | Smoke -> [ Scheme.bfc ]
    | _ -> [ Scheme.bfc; Scheme.bfc_q 128; Scheme.hpcc; Scheme.hpcc_pfc; Scheme.dctcp ]
  in
  let rows = ref [] in
  List.iter
    (fun scheme ->
      List.iter
        (fun load ->
          (* HPCC becomes unstable above 70% load (paper) *)
          let skip = match scheme with Scheme.Hpcc _ -> load > 0.71 | _ -> false in
          if not skip then begin
            (* queue exhaustion at high load takes ~1/(1-rho) to develop *)
            let mult = if load >= 0.9 then 3.0 else 1.0 in
            let s = { (std profile scheme) with sp_load = load; sp_dur_mult = mult } in
            let r = run_std s in
            rows :=
              [
                Scheme.name scheme;
                cell load;
                cell (Metrics.long_avg r.env ~since:r.measure_from r.flows);
                cell (Metrics.short_p99 r.env ~since:r.measure_from r.flows);
                Printf.sprintf "%d/%d" (Runner.completed r.env) (Runner.injected r.env);
              ]
              :: !rows
          end)
        loads)
    schemes;
  [
    {
      title = "Fig 12: FB, no incast — long-flow avg & short-flow p99 slowdown vs load";
      header = [ "scheme"; "load"; "long avg"; "short p99"; "completed" ];
      rows = List.rev !rows;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Fig. 13: incast degree sweep.                                        *)

let fig13 profile =
  let degrees =
    match profile with
    | Smoke -> [ 20 ]
    | Quick -> [ 10; 50; 100; 400; 800 ]
    | Paper -> [ 10; 50; 100; 200; 500; 1000; 2000 ]
  in
  let schemes =
    match profile with
    | Smoke -> [ Scheme.bfc ]
    | _ -> [ Scheme.bfc; Scheme.bfc_q 128; Scheme.hpcc_pfc; Scheme.dctcp ]
  in
  let rows = ref [] in
  List.iter
    (fun scheme ->
      List.iter
        (fun degree ->
          let s =
            {
              (std profile scheme) with
              sp_incast = Some { default_incast with degree };
            }
          in
          let r = run_std s in
          rows :=
            [
              Scheme.name scheme;
              string_of_int degree;
              cell (Metrics.long_avg r.env ~since:r.measure_from r.flows);
              cell (Metrics.short_p99 r.env ~since:r.measure_from r.flows);
              string_of_int (Runner.total_drops r.env);
            ]
            :: !rows)
        degrees)
    schemes;
  [
    {
      title = "Fig 13: FB, 55% + 5% incast — slowdown vs incast degree";
      header = [ "scheme"; "degree"; "long avg"; "short p99"; "drops" ];
      rows = List.rev !rows;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Fig. 14: decomposing BFC — HPCC-PFC with SFQ / DQA.                  *)

let fig14 profile =
  let schemes =
    [
      Scheme.hpcc_pfc;
      Scheme.Hpcc_pfc { sfq = true; dqa = false };
      Scheme.Hpcc_pfc { sfq = false; dqa = true };
      Scheme.bfc;
      Scheme.Ideal_fq;
    ]
  in
  let rows = ref [] and summary = ref [] in
  List.iter
    (fun scheme ->
      let s =
        {
          (std profile scheme) with
          sp_dist = Dist.fb_hadoop;
          sp_incast = Some default_incast;
        }
      in
      let r = run_std s in
      let name = Scheme.name scheme in
      rows := !rows @ List.map (fun row -> name :: row) (fct_rows r);
      summary :=
        [ name; cell (buffer_p99 r /. 1e6); string_of_int (Runner.total_drops r.env) ]
        :: !summary)
    schemes;
  [
    {
      title = "Fig 14: HPCC-PFC variants vs BFC (FB + incast) — FCT slowdown";
      header = [ "scheme"; "bucket"; "n"; "avg"; "p50"; "p95"; "p99" ];
      rows = !rows;
    };
    {
      title = "Fig 14b: buffer occupancy";
      header = [ "scheme"; "p99 buffer(MB)"; "drops" ];
      rows = List.rev !summary;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Fig. 29 (App. A.12): incast flow slowdowns, Fig. 9 setup.            *)

let fig29 profile =
  let schemes =
    match profile with
    | Smoke -> [ Scheme.bfc ]
    | _ -> [ Scheme.bfc; Scheme.hpcc; Scheme.hpcc_pfc; Scheme.dctcp; Scheme.Ideal_fq ]
  in
  let rows =
    List.map
      (fun scheme ->
        let s =
          {
            (std profile scheme) with
            sp_dist = Dist.google;
            sp_incast = Some default_incast;
          }
        in
        let r = run_std s in
        let sample = Sample.create () in
        List.iter
          (fun f ->
            if Bfc_net.Flow.complete f && f.Bfc_net.Flow.is_incast then
              Sample.add sample (Runner.slowdown r.env f))
          r.flows;
        let v p = if Sample.is_empty sample then nan else Sample.percentile sample p in
        [
          Scheme.name scheme;
          string_of_int (Sample.count sample);
          cell (Sample.mean sample);
          cell (v 50.0);
          cell (v 95.0);
          cell (v 99.0);
        ])
      schemes
  in
  [
    {
      title = "Fig 29 (App A.12): incast flow FCT slowdown (Google + 5% 100:1 incast)";
      header = [ "scheme"; "n"; "avg"; "p50"; "p95"; "p99" ];
      rows;
    };
  ]
