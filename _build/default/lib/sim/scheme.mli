(** The congestion-control / flow-control schemes under evaluation
    (§6.2.1 Comparisons), each mapping to a switch configuration, an
    optional switch dataplane program, and a host configuration. *)

type bfc_opts = {
  queues : int; (** physical queues per port (32 or 128) *)
  assignment : Bfc_core.Dqa.policy;
  window_cap : float option; (** inflight cap in BDP units; None = pure BFC *)
  delay_cc : bool; (** BFC+CC (App. A.1) *)
  incast_label : bool; (** App. A.7 *)
  sampling : float; (** App. A.8; 1.0 = every packet bookkept *)
  table_mult : int; (** flow table slots per port / queues *)
  th_factor : float;
  fixed_th : int option;
  nic_respect_pause : bool; (** false = BFC−NIC (App. A.8) *)
  srf : bool; (** BFC-SRF (App. A.2) *)
  classes : int; (** traffic classes (App. A.3) *)
  bitmap_period : Bfc_engine.Time.t option;
      (** periodic idempotent pause-bitmap refresh (§3.3.2), for resilience
          to lost pause/resume packets *)
  sticky_hrtt_mult : float; (** sticky reassignment threshold (paper: 2 HRTT) *)
}

val bfc_default : bfc_opts

type t =
  | Bfc of bfc_opts
  | Bfc_credit of { queues : int; credit_bytes : int }
      (** the lossless hop-by-hop credit variant of §5 (future work) *)
  | Ideal_fq  (** unbounded queues & buffers, FQ, 1-BDP window cap *)
  | Ideal_srf  (** same with SRF scheduling *)
  | Dctcp of { slow_start : bool }
  | Dcqcn
  | Hpcc of { eta : float; max_stage : int }
  | Hpcc_pfc of { sfq : bool; dqa : bool }
      (** HPCC with perfect retransmission instead of PFC; optional
          stochastic / dynamic queue assignment (Fig. 14) *)
  | Swift of { target_mult : float; beta : float }
  | Timely
  | Pfc_only
      (** the §2.2 strawman: hop-by-hop PFC with FIFO queues and no
          end-to-end control beyond a 1-BDP inflight cap *)
  | Expresspass of { target_loss : float; w_init : float; w_max : float }
  | Homa of { spray : bool }

val name : t -> string

val bfc : t (** BFC with the paper's defaults (32 queues) *)

val bfc_q : int -> t

val bfc_srf : t

val bfc_credit : t

val dctcp : t

val dcqcn : t

val hpcc : t

val hpcc_pfc : t

val expresspass : t

val swift : t

val timely : t

val pfc_only : t

val homa : t

val homa_ecmp : t

(** Does this scheme use per-class ECN marking? (for switch config) *)
val uses_ecn : t -> bool
