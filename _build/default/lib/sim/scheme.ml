type bfc_opts = {
  queues : int;
  assignment : Bfc_core.Dqa.policy;
  window_cap : float option;
  delay_cc : bool;
  incast_label : bool;
  sampling : float;
  table_mult : int;
  th_factor : float;
  fixed_th : int option;
  nic_respect_pause : bool;
  srf : bool;
  classes : int;
  bitmap_period : Bfc_engine.Time.t option;
  sticky_hrtt_mult : float;
}

let bfc_default =
  {
    queues = 32;
    assignment = Bfc_core.Dqa.Dynamic;
    window_cap = None;
    delay_cc = false;
    incast_label = false;
    sampling = 1.0;
    table_mult = 100;
    th_factor = 1.0;
    fixed_th = None;
    nic_respect_pause = true;
    srf = false;
    classes = 1;
    bitmap_period = None;
    sticky_hrtt_mult = 2.0;
  }

type t =
  | Bfc of bfc_opts
  | Bfc_credit of { queues : int; credit_bytes : int }
  | Ideal_fq
  | Ideal_srf
  | Dctcp of { slow_start : bool }
  | Dcqcn
  | Hpcc of { eta : float; max_stage : int }
  | Hpcc_pfc of { sfq : bool; dqa : bool }
  | Swift of { target_mult : float; beta : float }
  | Timely
  | Pfc_only
  | Expresspass of { target_loss : float; w_init : float; w_max : float }
  | Homa of { spray : bool }

let bfc = Bfc bfc_default

let bfc_q n = Bfc { bfc_default with queues = n }

let bfc_srf = Bfc { bfc_default with srf = true }

let bfc_credit = Bfc_credit { queues = 32; credit_bytes = 25_000 }

let dctcp = Dctcp { slow_start = false }

let dcqcn = Dcqcn

let hpcc = Hpcc { eta = 0.95; max_stage = 5 }

let hpcc_pfc = Hpcc_pfc { sfq = false; dqa = false }

let expresspass = Expresspass { target_loss = 0.1; w_init = 0.0625; w_max = 0.5 }

let swift = Swift { target_mult = 1.5; beta = 0.8 }

let timely = Timely

let pfc_only = Pfc_only

let homa = Homa { spray = true }

let homa_ecmp = Homa { spray = false }

let name = function
  | Bfc o ->
    let base = if o.srf then "BFC-SRF" else "BFC" in
    let tags =
      List.filter_map
        (fun x -> x)
        [
          (if o.queues <> 32 then Some (string_of_int o.queues) else None);
          (match o.assignment with
          | Bfc_core.Dqa.Dynamic -> None
          | Bfc_core.Dqa.Stochastic -> Some "stochastic"
          | Bfc_core.Dqa.Single -> Some "single");
          (if o.delay_cc then Some "CC" else None);
          (if o.incast_label then Some "incastlabel" else None);
          (if o.sampling < 1.0 then Some "sampling" else None);
          (if not o.nic_respect_pause then Some "noNIC" else None);
          (if o.window_cap <> None then Some "cap" else None);
        ]
    in
    if tags = [] then base else base ^ " (" ^ String.concat "," tags ^ ")"
  | Bfc_credit _ -> "BFC-credit"
  | Ideal_fq -> "Ideal-FQ"
  | Ideal_srf -> "Ideal-SRF"
  | Dctcp { slow_start } -> if slow_start then "DCTCP+SS" else "DCTCP"
  | Dcqcn -> "DCQCN"
  | Hpcc _ -> "HPCC"
  | Hpcc_pfc { sfq; dqa } ->
    if sfq then "HPCC-PFC+SFQ" else if dqa then "HPCC-PFC+DQA" else "HPCC-PFC"
  | Swift _ -> "Swift"
  | Timely -> "Timely"
  | Pfc_only -> "PFC-only"
  | Expresspass _ -> "ExpressPass"
  | Homa { spray } -> if spray then "Homa" else "Homa-ECMP"

let uses_ecn = function
  | Dctcp _ | Dcqcn -> true
  | Bfc _ | Bfc_credit _ | Ideal_fq | Ideal_srf | Hpcc _ | Hpcc_pfc _ | Swift _ | Timely
  | Pfc_only | Expresspass _ | Homa _ ->
    false
