lib/sim/metrics.mli: Bfc_engine Bfc_net Bfc_util Runner
