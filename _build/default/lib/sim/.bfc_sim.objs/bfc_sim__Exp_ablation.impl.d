lib/sim/exp_ablation.ml: Array Bfc_core Bfc_engine Bfc_workload Exp_common List Metrics Printf Runner Scheme
