lib/sim/experiments.mli: Exp_common
