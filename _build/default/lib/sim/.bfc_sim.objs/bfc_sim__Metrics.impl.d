lib/sim/metrics.ml: Array Bfc_engine Bfc_net Bfc_switch Bfc_util List Runner
