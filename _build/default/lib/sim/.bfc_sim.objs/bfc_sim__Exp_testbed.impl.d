lib/sim/exp_testbed.ml: Array Bfc_core Bfc_engine Bfc_net Bfc_switch Bfc_util Bfc_workload Exp_common List Metrics Runner Scheme
