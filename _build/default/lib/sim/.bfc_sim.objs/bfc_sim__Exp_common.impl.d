lib/sim/exp_common.ml: Array Bfc_engine Bfc_net Bfc_util Bfc_workload List Metrics Printf Runner Scheme String
