lib/sim/runner.mli: Bfc_core Bfc_engine Bfc_net Bfc_switch Bfc_transport Bfc_workload Scheme
