lib/sim/exp_appendix.ml: Array Bfc_core Bfc_engine Bfc_net Bfc_switch Bfc_util Bfc_workload Exp_common List Metrics Printf Runner Scheme
