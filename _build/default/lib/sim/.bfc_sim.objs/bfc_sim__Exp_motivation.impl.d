lib/sim/exp_motivation.ml: Array Bfc_core Bfc_engine Bfc_net Bfc_switch Bfc_util Bfc_workload Exp_common Float Hashtbl List Printf Runner Scheme
