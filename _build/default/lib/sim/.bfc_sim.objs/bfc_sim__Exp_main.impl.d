lib/sim/exp_main.ml: Bfc_engine Bfc_net Bfc_util Bfc_workload Exp_common List Metrics Printf Runner Scheme
