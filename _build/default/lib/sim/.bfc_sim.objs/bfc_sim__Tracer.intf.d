lib/sim/tracer.mli: Bfc_engine Runner
