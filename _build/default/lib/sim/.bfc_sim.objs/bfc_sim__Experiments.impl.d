lib/sim/experiments.ml: Exp_ablation Exp_appendix Exp_common Exp_homa Exp_main Exp_motivation Exp_testbed Filename List Printf Sys Unix
