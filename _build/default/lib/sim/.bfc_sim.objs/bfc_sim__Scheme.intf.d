lib/sim/scheme.mli: Bfc_core Bfc_engine
