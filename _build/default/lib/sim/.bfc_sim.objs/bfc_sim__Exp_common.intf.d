lib/sim/exp_common.mli: Bfc_engine Bfc_net Bfc_util Bfc_workload Runner Scheme
