lib/sim/tracer.ml: Array Bfc_engine Bfc_net Bfc_switch Buffer Hashtbl List Option Printf Runner
