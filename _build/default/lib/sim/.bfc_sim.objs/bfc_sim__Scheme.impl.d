lib/sim/scheme.ml: Bfc_core Bfc_engine List String
