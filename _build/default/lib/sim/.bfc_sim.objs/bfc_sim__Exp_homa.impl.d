lib/sim/exp_homa.ml: Array Bfc_engine Bfc_net Bfc_switch Bfc_transport Bfc_util Bfc_workload Exp_common List Metrics Printf Runner Scheme
