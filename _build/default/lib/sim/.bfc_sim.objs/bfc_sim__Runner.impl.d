lib/sim/runner.ml: Array Bfc_core Bfc_engine Bfc_net Bfc_switch Bfc_transport Bfc_util Bfc_workload Hashtbl List Option Printf Scheme
