type link_spec = { la : int; lz : int; l_gbps : float; l_prop : Bfc_engine.Time.t }

type t = {
  sim : Bfc_engine.Sim.t;
  nodes : Node.t array;
  ports : Port.t array array;
  hosts : int array;
  host_index : int array; (* node id -> dense host index, -1 for non-hosts *)
  routes : int array array array; (* routes.(node).(host_index) = local egress port candidates *)
  all_ports : Port.t array; (* by gid *)
}

module Builder = struct
  type b = {
    bsim : Bfc_engine.Sim.t;
    mutable bnodes : (Node.kind * string) list; (* reversed *)
    mutable count : int;
    mutable links : link_spec list;
  }

  let create bsim = { bsim; bnodes = []; count = 0; links = [] }

  let add b kind ~name =
    let id = b.count in
    b.count <- b.count + 1;
    b.bnodes <- (kind, name) :: b.bnodes;
    id

  let add_host b ~name = add b Node.Host ~name

  let add_switch b ~name = add b Node.Switch ~name

  let link b la lz ~gbps ~prop =
    if la = lz then invalid_arg "Topology.link: self loop";
    b.links <- { la; lz; l_gbps = gbps; l_prop = prop } :: b.links

  let finish b =
    let n = b.count in
    let specs = Array.of_list (List.rev b.bnodes) in
    let nodes =
      Array.init n (fun id ->
          let kind, name = specs.(id) in
          Node.make ~id ~kind ~name)
    in
    let links = List.rev b.links in
    (* Count ports per node. *)
    let nports = Array.make n 0 in
    List.iter
      (fun l ->
        nports.(l.la) <- nports.(l.la) + 1;
        nports.(l.lz) <- nports.(l.lz) + 1)
      links;
    let ports = Array.map (fun () -> [||]) (Array.make n ()) in
    let filled = Array.make n 0 in
    (* First pass: assign local indices on both sides. *)
    let sides =
      List.map
        (fun l ->
          let pa = filled.(l.la) in
          filled.(l.la) <- pa + 1;
          let pz = filled.(l.lz) in
          filled.(l.lz) <- pz + 1;
          (l, pa, pz))
        links
    in
    let gid = ref 0 in
    let all = ref [] in
    let pending : (int * int * Port.t) list ref = ref [] in
    List.iter
      (fun (l, pa, pz) ->
        let mk ~owner ~local ~peer ~peer_port ~gbps ~prop =
          let p = Port.create ~sim:b.bsim ~gid:!gid ~gbps ~prop ~peer:nodes.(peer) ~peer_port in
          incr gid;
          all := p :: !all;
          pending := (owner, local, p) :: !pending
        in
        mk ~owner:l.la ~local:pa ~peer:l.lz ~peer_port:pz ~gbps:l.l_gbps ~prop:l.l_prop;
        mk ~owner:l.lz ~local:pz ~peer:l.la ~peer_port:pa ~gbps:l.l_gbps ~prop:l.l_prop)
      sides;
    List.iter
      (fun (owner, local, p) ->
        if Array.length ports.(owner) = 0 then
          ports.(owner) <- Array.make nports.(owner) p;
        ports.(owner).(local) <- p)
      !pending;
    let all_ports = Array.of_list (List.rev !all) in
    let hosts =
      Array.of_seq
        (Seq.filter_map
           (fun nd -> if nd.Node.kind = Node.Host then Some nd.Node.id else None)
           (Array.to_seq nodes))
    in
    let host_index = Array.make n (-1) in
    Array.iteri (fun i h -> host_index.(h) <- i) hosts;
    (* BFS from each host over the undirected graph to get hop distances,
       then ECMP candidates = ports to neighbours strictly closer to dst. *)
    let neighbours =
      Array.mapi
        (fun _i parr ->
          Array.map (fun p -> (Port.peer p).Node.id) parr)
        ports
    in
    let routes = Array.init n (fun _ -> Array.make (Array.length hosts) [||]) in
    Array.iteri
      (fun hidx dst ->
        let dist = Array.make n max_int in
        dist.(dst) <- 0;
        let q = Queue.create () in
        Queue.add dst q;
        while not (Queue.is_empty q) do
          let u = Queue.pop q in
          Array.iter
            (fun v ->
              if dist.(v) = max_int then begin
                dist.(v) <- dist.(u) + 1;
                Queue.add v q
              end)
            neighbours.(u)
        done;
        for node = 0 to n - 1 do
          if node <> dst && dist.(node) < max_int then begin
            let cands = ref [] in
            let parr = ports.(node) in
            for li = Array.length parr - 1 downto 0 do
              let peer = (Port.peer parr.(li)).Node.id in
              if dist.(peer) = dist.(node) - 1 then cands := li :: !cands
            done;
            routes.(node).(hidx) <- Array.of_list !cands
          end
        done)
      hosts;
    { sim = b.bsim; nodes; ports; hosts; host_index; routes; all_ports }
end

let sim t = t.sim

let nodes t = t.nodes

let node t i = t.nodes.(i)

let hosts t = t.hosts

let ports t i = t.ports.(i)

let port t i j = t.ports.(i).(j)

let total_ports t = Array.length t.all_ports

let port_by_gid t g = t.all_ports.(g)

let candidates t ~node ~dst =
  let hidx = t.host_index.(dst) in
  if hidx < 0 then invalid_arg "Topology.candidates: dst is not a host";
  t.routes.(node).(hidx)

let mix a b =
  (* cheap 2-int hash, deterministic *)
  let z = Int64.add (Int64.of_int ((a * 0x1F1F1F1F) lxor b)) 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.logxor z (Int64.shift_right_logical z 27) in
  Int64.to_int (Int64.logand z 0x3FFFFFFFL)

let ecmp_port t ~node ~flow ~dst =
  let cands = candidates t ~node ~dst in
  match Array.length cands with
  | 0 -> invalid_arg "Topology.ecmp_port: no route"
  | 1 -> cands.(0)
  | n -> cands.(mix flow.Flow.id node mod n)

let spray_port t ~node ~rng ~dst =
  let cands = candidates t ~node ~dst in
  match Array.length cands with
  | 0 -> invalid_arg "Topology.spray_port: no route"
  | 1 -> cands.(0)
  | n -> cands.(Bfc_util.Rng.int rng n)

let path t ~src ~dst =
  let rec walk node acc =
    if node = dst then List.rev acc
    else begin
      let cands = candidates t ~node ~dst in
      let p = t.ports.(node).(cands.(0)) in
      walk (Port.peer p).Node.id (p :: acc)
    end
  in
  walk src []

let ideal_fct t ~src ~dst ~size ~mtu ?(extra_header = 0) () =
  let ports_on_path = path t ~src ~dst in
  let hdr = Packet.header_bytes + extra_header in
  let n_full = size / mtu in
  let rem = size mod mtu in
  let wire = (n_full * (mtu + hdr)) + (if rem > 0 then rem + hdr else 0) in
  let mtu_wire = mtu + hdr in
  let min_gbps =
    List.fold_left (fun acc p -> Float.min acc (Port.gbps p)) infinity ports_on_path
  in
  let props = List.fold_left (fun acc p -> acc + Port.prop p) 0 ports_on_path in
  (* Pipeline fill: one MTU serialized per hop, then the rest drains at the
     bottleneck rate. *)
  let fill =
    List.fold_left
      (fun acc p -> acc + Bfc_engine.Time.tx_time ~gbps:(Port.gbps p) ~bytes:(min wire mtu_wire))
      0 ports_on_path
  in
  let drain =
    if wire <= mtu_wire then 0
    else Bfc_engine.Time.tx_time ~gbps:min_gbps ~bytes:(wire - mtu_wire)
  in
  props + fill + drain

let base_rtt t ~src ~dst =
  let fwd = path t ~src ~dst and back = path t ~src:dst ~dst:src in
  let leg pl bytes =
    List.fold_left
      (fun acc p -> acc + Port.prop p + Bfc_engine.Time.tx_time ~gbps:(Port.gbps p) ~bytes)
      0 pl
  in
  leg fwd Packet.header_bytes + leg back Packet.ack_bytes

(* ------------------------------------------------------------------ *)
(* Canned topologies                                                    *)

type clos = {
  t : t;
  cl_hosts : int array;
  tors : int array;
  spines : int array;
  rack_of : int -> int;
}

let clos sim ~spines ~tors ~hosts_per_tor ~gbps ~prop =
  let b = Builder.create sim in
  let spine_ids = Array.init spines (fun i -> Builder.add_switch b ~name:(Printf.sprintf "spine%d" i)) in
  let tor_ids = Array.init tors (fun i -> Builder.add_switch b ~name:(Printf.sprintf "tor%d" i)) in
  let host_ids =
    Array.init (tors * hosts_per_tor) (fun i -> Builder.add_host b ~name:(Printf.sprintf "h%d" i))
  in
  Array.iteri
    (fun ti tor ->
      Array.iter (fun sp -> Builder.link b tor sp ~gbps ~prop) spine_ids;
      for k = 0 to hosts_per_tor - 1 do
        Builder.link b host_ids.((ti * hosts_per_tor) + k) tor ~gbps ~prop
      done)
    tor_ids;
  let t = Builder.finish b in
  let first_host = host_ids.(0) in
  let rack_of h = (h - first_host) / hosts_per_tor in
  { t; cl_hosts = host_ids; tors = tor_ids; spines = spine_ids; rack_of }

type dumbbell = {
  d : t;
  senders : int array;
  receiver : int;
  d_left : int;
  d_right : int;
  bottleneck_gid : int;
}

let dumbbell sim ~senders ~gbps ~prop =
  let b = Builder.create sim in
  let left = Builder.add_switch b ~name:"swL" in
  let right = Builder.add_switch b ~name:"swR" in
  let snd = Array.init senders (fun i -> Builder.add_host b ~name:(Printf.sprintf "s%d" i)) in
  let recv = Builder.add_host b ~name:"recv" in
  Array.iter (fun s -> Builder.link b s left ~gbps ~prop) snd;
  Builder.link b left right ~gbps ~prop;
  Builder.link b right recv ~gbps ~prop;
  let t = Builder.finish b in
  (* The bottleneck egress is left's port towards right: it's the port of
     [left] whose peer is [right]. *)
  let gid = ref (-1) in
  Array.iter
    (fun p -> if (Port.peer p).Node.id = right then gid := Port.gid p)
    (ports t left);
  { d = t; senders = snd; receiver = recv; d_left = left; d_right = right; bottleneck_gid = !gid }

type star = {
  s : t;
  st_senders : int array;
  st_receiver : int;
  st_switch : int;
  st_bottleneck_gid : int;
}

let star sim ~senders ~gbps ~prop =
  let b = Builder.create sim in
  let sw = Builder.add_switch b ~name:"sw" in
  let snd = Array.init senders (fun i -> Builder.add_host b ~name:(Printf.sprintf "s%d" i)) in
  let recv = Builder.add_host b ~name:"recv" in
  Array.iter (fun s -> Builder.link b s sw ~gbps ~prop) snd;
  Builder.link b sw recv ~gbps ~prop;
  let t = Builder.finish b in
  let gid = ref (-1) in
  Array.iter (fun p -> if (Port.peer p).Node.id = recv then gid := Port.gid p) (ports t sw);
  { s = t; st_senders = snd; st_receiver = recv; st_switch = sw; st_bottleneck_gid = !gid }

type testbed = {
  tb : t;
  group1 : int array;
  group2 : int array;
  group3 : int array;
  recv1 : int;
  recv2 : int;
  sw1 : int;
  sw2 : int;
  sw3 : int;
}

let testbed sim ~g1 ~g2 ~g3 ~gbps ~prop =
  let b = Builder.create sim in
  let sw1 = Builder.add_switch b ~name:"sw1" in
  let sw2 = Builder.add_switch b ~name:"sw2" in
  let sw3 = Builder.add_switch b ~name:"sw3" in
  let mk n pfx = Array.init n (fun i -> Builder.add_host b ~name:(Printf.sprintf "%s%d" pfx i)) in
  let group1 = mk g1 "a" and group2 = mk g2 "b" and group3 = mk g3 "c" in
  let recv1 = Builder.add_host b ~name:"r1" in
  let recv2 = Builder.add_host b ~name:"r2" in
  Array.iter (fun h -> Builder.link b h sw1 ~gbps ~prop) group1;
  Array.iter (fun h -> Builder.link b h sw1 ~gbps ~prop) group2;
  Array.iter (fun h -> Builder.link b h sw3 ~gbps ~prop) group3;
  Builder.link b sw1 sw2 ~gbps ~prop;
  Builder.link b sw3 sw2 ~gbps ~prop;
  Builder.link b sw2 recv1 ~gbps ~prop;
  Builder.link b sw2 recv2 ~gbps ~prop;
  let tb = Builder.finish b in
  { tb; group1; group2; group3; recv1; recv2; sw1; sw2; sw3 }

type cross_dc = {
  x : t;
  dc1 : clos_part;
  dc2 : clos_part;
  gw1 : int;
  gw2 : int;
  interconnect_gid : int;
}

and clos_part = { xc_hosts : int array; xc_tors : int array; xc_spines : int array }

let cross_dc sim ~spines ~tors ~hosts_per_tor ~gbps ~prop ~wan_gbps ~wan_prop =
  let b = Builder.create sim in
  let mk_dc tag =
    let sp = Array.init spines (fun i -> Builder.add_switch b ~name:(Printf.sprintf "%s-spine%d" tag i)) in
    let tr = Array.init tors (fun i -> Builder.add_switch b ~name:(Printf.sprintf "%s-tor%d" tag i)) in
    let hs =
      Array.init (tors * hosts_per_tor) (fun i ->
          Builder.add_host b ~name:(Printf.sprintf "%s-h%d" tag i))
    in
    Array.iteri
      (fun ti tor ->
        Array.iter (fun s -> Builder.link b tor s ~gbps ~prop) sp;
        for k = 0 to hosts_per_tor - 1 do
          Builder.link b hs.((ti * hosts_per_tor) + k) tor ~gbps ~prop
        done)
      tr;
    { xc_hosts = hs; xc_tors = tr; xc_spines = sp }
  in
  let dc1 = mk_dc "d1" in
  let gw1 = Builder.add_switch b ~name:"gw1" in
  let dc2 = mk_dc "d2" in
  let gw2 = Builder.add_switch b ~name:"gw2" in
  Array.iter (fun s -> Builder.link b s gw1 ~gbps ~prop) dc1.xc_spines;
  Array.iter (fun s -> Builder.link b s gw2 ~gbps ~prop) dc2.xc_spines;
  Builder.link b gw1 gw2 ~gbps:wan_gbps ~prop:wan_prop;
  let x = Builder.finish b in
  let gid = ref (-1) in
  Array.iter (fun p -> if (Port.peer p).Node.id = gw2 then gid := Port.gid p) (ports x gw1);
  { x; dc1; dc2; gw1; gw2; interconnect_gid = !gid }
