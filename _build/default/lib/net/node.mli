(** A node in the topology graph: a host or a switch.

    The concrete device (switch dataplane, host transport) is attached after
    graph construction by setting [handler]; links deliver packets by
    calling it. *)

type kind = Host | Switch

type t = {
  id : int;
  kind : kind;
  name : string;
  mutable handler : in_port:int -> Packet.t -> unit;
}

val make : id:int -> kind:kind -> name:string -> t

(** [deliver t ~in_port pkt] invokes the attached handler. *)
val deliver : t -> in_port:int -> Packet.t -> unit
