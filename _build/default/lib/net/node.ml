type kind = Host | Switch

type t = {
  id : int;
  kind : kind;
  name : string;
  mutable handler : in_port:int -> Packet.t -> unit;
}

let unattached name ~in_port:_ _ =
  failwith (Printf.sprintf "Node %s: packet delivered before a device was attached" name)

let make ~id ~kind ~name = { id; kind; name; handler = unattached name }

let deliver t ~in_port pkt = t.handler ~in_port pkt
