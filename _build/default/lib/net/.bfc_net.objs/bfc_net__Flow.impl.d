lib/net/flow.ml: Bfc_engine Int64
