lib/net/node.ml: Packet Printf
