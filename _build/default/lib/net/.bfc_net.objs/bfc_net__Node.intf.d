lib/net/node.mli: Packet
