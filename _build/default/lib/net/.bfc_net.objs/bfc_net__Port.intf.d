lib/net/port.mli: Bfc_engine Node Packet
