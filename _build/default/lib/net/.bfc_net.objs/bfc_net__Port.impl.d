lib/net/port.ml: Bfc_engine Node Packet
