lib/net/topology.ml: Array Bfc_engine Bfc_util Float Flow Int64 List Node Packet Port Printf Queue Seq
