lib/net/packet.mli: Bfc_engine Flow
