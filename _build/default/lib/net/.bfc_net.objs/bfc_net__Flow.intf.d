lib/net/flow.mli: Bfc_engine
