lib/net/packet.ml: Bfc_engine Flow
