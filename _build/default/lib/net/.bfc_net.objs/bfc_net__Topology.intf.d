lib/net/topology.mli: Bfc_engine Bfc_util Flow Node Port
