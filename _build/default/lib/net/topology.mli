(** Topology graph: nodes, links, shortest-path ECMP routing.

    Build a graph with [Builder], then [finish] computes, for every node and
    every destination host, the set of shortest-path egress ports (ECMP
    candidates). Concrete devices are attached to nodes afterwards.

    Helpers build the paper's topologies: the oversubscribed 2-level Clos of
    §6.2.1, the 3-"switch" testbed of §6.1, a dumbbell, and the two-data-
    center topology of App. A.9. *)

type t

module Builder : sig
  type b

  val create : Bfc_engine.Sim.t -> b

  val add_host : b -> name:string -> int

  val add_switch : b -> name:string -> int

  (** [link b a z ~gbps ~prop] adds a bidirectional link (two ports). *)
  val link : b -> int -> int -> gbps:float -> prop:Bfc_engine.Time.t -> unit

  val finish : b -> t
end

val sim : t -> Bfc_engine.Sim.t

val nodes : t -> Node.t array

val node : t -> int -> Node.t

(** Node ids of all hosts, in creation order. *)
val hosts : t -> int array

(** Ports of a node (local index order). *)
val ports : t -> int -> Port.t array

val port : t -> int -> int -> Port.t

(** Total number of directed ports (gids are [0, total)). *)
val total_ports : t -> int

(** Port by global id. *)
val port_by_gid : t -> int -> Port.t

(** ECMP candidate egress ports (local indices) at [node] towards host
    [dst]. Empty only if [node = dst]. *)
val candidates : t -> node:int -> dst:int -> int array

(** Consistent ECMP choice: hash of (flow id, node). *)
val ecmp_port : t -> node:int -> flow:Flow.t -> dst:int -> int

(** Per-packet choice for spraying: if [pkt.path_hint >= 0] uses it to pick
    among candidates, else uses uniform [rng]. *)
val spray_port : t -> node:int -> rng:Bfc_util.Rng.t -> dst:int -> int

(** The deterministic first-candidate path from [src] to [dst], as the list
    of ports traversed. *)
val path : t -> src:int -> dst:int -> Port.t list

(** Best-possible FCT of a [size]-byte flow from [src] to [dst] running
    alone: store-and-forward pipeline at line rate. [mtu] is the payload per
    packet; [extra_header] models per-packet protocol overhead. *)
val ideal_fct :
  t -> src:int -> dst:int -> size:int -> mtu:int -> ?extra_header:int -> unit -> Bfc_engine.Time.t

(** Base (unloaded) RTT between two hosts: data path one way + ack path
    back, excluding serialization of the payload itself. *)
val base_rtt : t -> src:int -> dst:int -> Bfc_engine.Time.t

(** {2 Canned topologies} *)

type clos = {
  t : t;
  cl_hosts : int array;
  tors : int array;
  spines : int array;
  rack_of : int -> int; (** host node id -> rack index *)
}

(** [clos sim ~spines ~tors ~hosts_per_tor ~gbps ~prop] — every ToR links to
    every spine; 2:1 oversubscription when [hosts_per_tor = 2 x spines].
    All links share [gbps] and [prop] (the paper: 100 Gbps, 1 us). *)
val clos :
  Bfc_engine.Sim.t ->
  spines:int ->
  tors:int ->
  hosts_per_tor:int ->
  gbps:float ->
  prop:Bfc_engine.Time.t ->
  clos

type dumbbell = {
  d : t;
  senders : int array;
  receiver : int;
  d_left : int; (** left switch node id *)
  d_right : int;
  bottleneck_gid : int; (** global port id of the bottleneck egress *)
}

(** [dumbbell sim ~senders ~gbps ~prop] — n senders -> switch -> switch ->
    1 receiver; the switch-to-switch link is the bottleneck. *)
val dumbbell :
  Bfc_engine.Sim.t -> senders:int -> gbps:float -> prop:Bfc_engine.Time.t -> dumbbell

type star = {
  s : t;
  st_senders : int array;
  st_receiver : int;
  st_switch : int;
  st_bottleneck_gid : int; (** switch -> receiver egress *)
}

(** [star sim ~senders ~gbps ~prop] — n senders and one receiver on a single
    switch; the switch-to-receiver link is the bottleneck (single-link
    microbenchmarks: Table 1, Fig. 3/4). *)
val star : Bfc_engine.Sim.t -> senders:int -> gbps:float -> prop:Bfc_engine.Time.t -> star

type testbed = {
  tb : t;
  group1 : int array; (** sender hosts: S1 -> Sw1 -> Sw2 -> R1 *)
  group2 : int array; (** sender hosts: S2 -> Sw1 -> Sw2 -> R2 *)
  group3 : int array; (** sender hosts: S3 -> Sw3 -> Sw2 -> R2 *)
  recv1 : int;
  recv2 : int;
  sw1 : int;
  sw2 : int;
  sw3 : int;
}

(** The §6.1 Tofino2 loopback testbed: 3 logical switches, 100 Gbps ports. *)
val testbed :
  Bfc_engine.Sim.t ->
  g1:int ->
  g2:int ->
  g3:int ->
  gbps:float ->
  prop:Bfc_engine.Time.t ->
  testbed

type cross_dc = {
  x : t;
  dc1 : clos_part;
  dc2 : clos_part;
  gw1 : int;
  gw2 : int;
  interconnect_gid : int; (** gw1 -> gw2 egress port gid *)
}

and clos_part = { xc_hosts : int array; xc_tors : int array; xc_spines : int array }

(** App. A.9: two Clos data centers joined by a [wan_gbps] link with
    [wan_prop] one-way delay through gateway switches. *)
val cross_dc :
  Bfc_engine.Sim.t ->
  spines:int ->
  tors:int ->
  hosts_per_tor:int ->
  gbps:float ->
  prop:Bfc_engine.Time.t ->
  wan_gbps:float ->
  wan_prop:Bfc_engine.Time.t ->
  cross_dc
