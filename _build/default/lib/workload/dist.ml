type seg = {
  s0 : float;
  s1 : float;
  c0 : float;
  c1 : float;
}

type t = { dname : string; segs : seg array; dmean : float }

let name t = t.dname

let seg_mean s0 s1 = if s1 = s0 then s0 else (s1 -. s0) /. log (s1 /. s0)

let of_points ~name ~min_size pts =
  if min_size < 1 then invalid_arg "Dist.of_points: min_size";
  let rec validate prev_s prev_c = function
    | [] -> ()
    | (s, c) :: rest ->
      if s <= prev_s || c < prev_c || c > 1.0 then invalid_arg "Dist.of_points: malformed points";
      validate s c rest
  in
  validate (float_of_int min_size -. 1.0) 0.0 pts;
  (match List.rev pts with
  | (_, c) :: _ when abs_float (c -. 1.0) < 1e-9 -> ()
  | _ -> invalid_arg "Dist.of_points: cdf must end at 1");
  let xs = Array.of_list (float_of_int min_size :: List.map fst pts) in
  let cs = Array.of_list (0.0 :: List.map snd pts) in
  let segs =
    Array.init (Array.length xs - 1) (fun i ->
        { s0 = xs.(i); s1 = xs.(i + 1); c0 = cs.(i); c1 = cs.(i + 1) })
  in
  let dmean =
    Array.fold_left (fun acc g -> acc +. ((g.c1 -. g.c0) *. seg_mean g.s0 g.s1)) 0.0 segs
  in
  { dname = name; segs; dmean }

let mean t = t.dmean

let sample t rng =
  let u = Bfc_util.Rng.float rng in
  (* find the segment containing u; segments are few, linear scan is fine *)
  let rec find i =
    if i >= Array.length t.segs - 1 then t.segs.(Array.length t.segs - 1)
    else if u < t.segs.(i).c1 then t.segs.(i)
    else find (i + 1)
  in
  let g = find 0 in
  let span = g.c1 -. g.c0 in
  let frac = if span <= 0.0 then 0.0 else (u -. g.c0) /. span in
  let s = g.s0 *. exp (frac *. log (g.s1 /. g.s0)) in
  max 1 (int_of_float (Float.round s))

let cdf t s =
  if s < t.segs.(0).s0 then 0.0
  else begin
    let n = Array.length t.segs in
    let rec go i =
      if i >= n then 1.0
      else begin
        let g = t.segs.(i) in
        if s >= g.s1 then go (i + 1)
        else g.c0 +. ((g.c1 -. g.c0) *. log (s /. g.s0) /. log (g.s1 /. g.s0))
      end
    in
    go 0
  end

let byte_cdf t s =
  let acc = ref 0.0 in
  Array.iter
    (fun g ->
      let p = g.c1 -. g.c0 in
      if s >= g.s1 then acc := !acc +. (p *. seg_mean g.s0 g.s1)
      else if s > g.s0 then begin
        let f = log (s /. g.s0) /. log (g.s1 /. g.s0) in
        acc := !acc +. (p *. f *. seg_mean g.s0 s)
      end)
    t.segs;
  !acc /. t.dmean

let fixed size =
  if size < 1 then invalid_arg "Dist.fixed";
  {
    dname = Printf.sprintf "fixed_%d" size;
    segs = [| { s0 = float_of_int size; s1 = float_of_int size; c0 = 0.0; c1 = 1.0 } |];
    dmean = float_of_int size;
  }

(* Encoded against the Fig. 2 anchors; see DESIGN.md. Byte-weighted CDF at
   100 KB is ~0.47 for Google ("nearly half of all bytes"); FB_Hadoop is
   larger-flow (byte mass centred around 1 MB); WebSearch is dominated by
   multi-MB flows (DCTCP's background traffic). *)

let google =
  of_points ~name:"google" ~min_size:64
    [
      (256., 0.15);
      (1_000., 0.40);
      (3_000., 0.70);
      (10_000., 0.912);
      (30_000., 0.965);
      (100_000., 0.989);
      (300_000., 0.9955);
      (1_000_000., 0.99917);
      (3_000_000., 1.0);
    ]

let fb_hadoop =
  of_points ~name:"fb_hadoop" ~min_size:200
    [
      (1_000., 0.15);
      (10_000., 0.45);
      (100_000., 0.784);
      (300_000., 0.893);
      (1_000_000., 0.975);
      (3_000_000., 0.9977);
      (10_000_000., 1.0);
    ]

let websearch =
  of_points ~name:"websearch" ~min_size:1000
    [
      (6_000., 0.15);
      (13_000., 0.20);
      (19_000., 0.30);
      (33_000., 0.40);
      (53_000., 0.53);
      (133_000., 0.60);
      (667_000., 0.70);
      (1_467_000., 0.80);
      (2_667_000., 0.90);
      (4_667_000., 0.97);
      (20_000_000., 1.0);
    ]

let by_name = function
  | "google" -> google
  | "fb_hadoop" -> fb_hadoop
  | "websearch" -> websearch
  | s -> invalid_arg (Printf.sprintf "Dist.by_name: unknown workload %S" s)
