module Flow = Bfc_net.Flow
module Rng = Bfc_util.Rng

type matrix =
  | Uniform
  | Rack_local of { local_frac : float; rack_of : int -> int }
  | To_one of int
  | Pairs of (int * int) array

type spec = {
  hosts : int array;
  dist : Dist.t;
  arrivals : Arrivals.t;
  load : float;
  ref_capacity_gbps : float;
  core_fraction : float;
  matrix : matrix;
  duration : Bfc_engine.Time.t;
  seed : int;
  prio_classes : int;
}

let arrival_rate spec =
  if spec.load <= 0.0 then invalid_arg "Traffic.arrival_rate: load";
  let bytes_per_ns = spec.ref_capacity_gbps /. 8.0 in
  let offered = spec.load *. bytes_per_ns /. spec.core_fraction in
  offered /. Dist.mean spec.dist

let pick_pair spec rng =
  let hosts = spec.hosts in
  let n = Array.length hosts in
  match spec.matrix with
  | Uniform ->
    let src = hosts.(Rng.int rng n) in
    let rec dst () =
      let d = hosts.(Rng.int rng n) in
      if d = src then dst () else d
    in
    (src, dst ())
  | Rack_local { local_frac; rack_of } ->
    let src = hosts.(Rng.int rng n) in
    let want_local = Rng.float rng < local_frac in
    let rec dst tries =
      let d = hosts.(Rng.int rng n) in
      if d = src then dst tries
      else if tries > 64 then d
      else if (rack_of d = rack_of src) = want_local then d
      else dst (tries + 1)
    in
    (src, dst 0)
  | To_one recv ->
    let rec src () =
      let s = hosts.(Rng.int rng n) in
      if s = recv then src () else s
    in
    (src (), recv)
  | Pairs pairs -> pairs.(Rng.int rng (Array.length pairs))

let generate spec ~ids =
  let rng = Rng.create spec.seed in
  let mean_gap = 1.0 /. arrival_rate spec in
  let acc = ref [] in
  let t = ref (Arrivals.gap spec.arrivals rng ~mean:mean_gap) in
  while int_of_float !t < spec.duration do
    let src, dst = pick_pair spec rng in
    let size = Dist.sample spec.dist rng in
    let prio_class = if spec.prio_classes <= 1 then 0 else Rng.int rng spec.prio_classes in
    let id = !ids in
    incr ids;
    acc := Flow.make ~id ~src ~dst ~size ~arrival:(int_of_float !t) ~prio_class () :: !acc;
    t := !t +. Arrivals.gap spec.arrivals rng ~mean:mean_gap
  done;
  List.rev !acc

type incast_spec = {
  i_hosts : int array;
  degree : int;
  agg_size : int;
  period : Bfc_engine.Time.t;
  i_duration : Bfc_engine.Time.t;
  i_seed : int;
}

let period_for_load ~agg_size ~frac ~ref_capacity_gbps =
  let bytes_per_ns = frac *. ref_capacity_gbps /. 8.0 in
  max 1 (int_of_float (float_of_int agg_size /. bytes_per_ns))

let generate_incast spec ~ids =
  let rng = Rng.create spec.i_seed in
  let hosts = spec.i_hosts in
  let n = Array.length hosts in
  if n < 2 then invalid_arg "Traffic.generate_incast: need at least 2 hosts";
  let per_sender = max 1 (spec.agg_size / spec.degree) in
  let acc = ref [] in
  let t = ref spec.period in
  while !t < spec.i_duration do
    let dst = hosts.(Rng.int rng n) in
    (* [degree] senders excluding dst; when the degree exceeds the host
       count (the paper sweeps to 2000-to-1 on 128 servers), hosts source
       several of the incast flows each. *)
    let distinct = spec.degree < n in
    let chosen = Hashtbl.create (min spec.degree n) in
    let made = ref 0 in
    while !made < spec.degree do
      let s = hosts.(Rng.int rng n) in
      if s <> dst && ((not distinct) || not (Hashtbl.mem chosen s)) then begin
        if distinct then Hashtbl.add chosen s ();
        let id = !ids in
        incr ids;
        acc := Flow.make ~id ~src:s ~dst ~size:per_sender ~arrival:!t ~is_incast:true () :: !acc;
        incr made
      end
    done;
    t := !t + spec.period
  done;
  List.rev !acc

let long_lived ~pairs ?(size = 1 lsl 40) ?(start = 0) ~ids () =
  Array.to_list
    (Array.map
       (fun (src, dst) ->
         let id = !ids in
         incr ids;
         Flow.make ~id ~src ~dst ~size ~arrival:start ())
       pairs)

let merge lists =
  let all = List.concat lists in
  List.sort (fun a b -> compare a.Flow.arrival b.Flow.arrival) all
