(** Flow inter-arrival processes. The paper uses open-loop arrivals with
    bursty log-normal gaps (sigma = 2) by default, Poisson for the queueing-
    theory cross-checks. *)

type t =
  | Poisson
  | Lognormal of float (** sigma; the paper uses 2.0 *)

(** [gap t rng ~mean] — next inter-arrival gap, in the unit of [mean]. *)
val gap : t -> Bfc_util.Rng.t -> mean:float -> float

val lognormal_default : t

val to_string : t -> string
