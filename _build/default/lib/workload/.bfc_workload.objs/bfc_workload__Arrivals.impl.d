lib/workload/arrivals.ml: Bfc_util Printf
