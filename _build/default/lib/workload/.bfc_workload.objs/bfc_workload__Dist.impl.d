lib/workload/dist.ml: Array Bfc_util Float List Printf
