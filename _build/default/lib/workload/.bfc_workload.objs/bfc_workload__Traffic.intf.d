lib/workload/traffic.mli: Arrivals Bfc_engine Bfc_net Dist
