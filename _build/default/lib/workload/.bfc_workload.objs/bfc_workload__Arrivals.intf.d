lib/workload/arrivals.mli: Bfc_util
