lib/workload/dist.mli: Bfc_util
