lib/workload/traffic.ml: Array Arrivals Bfc_engine Bfc_net Bfc_util Dist Hashtbl List
