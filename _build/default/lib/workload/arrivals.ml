type t = Poisson | Lognormal of float

let gap t rng ~mean =
  match t with
  | Poisson -> Bfc_util.Rng.exponential rng ~mean
  | Lognormal sigma -> Bfc_util.Rng.lognormal_mean rng ~mean ~sigma

let lognormal_default = Lognormal 2.0

let to_string = function
  | Poisson -> "poisson"
  | Lognormal s -> Printf.sprintf "lognormal(sigma=%g)" s
