(** Flow-size distributions.

    Empirical CDFs are piecewise log-linear in flow size. The three industry
    workloads of Fig. 2 are encoded from their published anchor points
    (see DESIGN.md for the substitution note):

    - [google]: aggregated Google all-application RPCs — mostly tiny flows,
      with roughly half of all *bytes* from flows under 100 KB;
    - [fb_hadoop]: Facebook Hadoop — larger flows, byte mass centred around
      a few hundred KB to a few MB;
    - [websearch]: the DCTCP web-search workload — byte mass dominated by
      multi-MB flows. *)

type t

(** [of_points ~name ~min_size pts] with [pts] a list of (size, cdf) pairs,
    strictly increasing in both coordinates, ending at cdf = 1.0. Sizes
    between points are log-interpolated; the first segment starts at
    [min_size]. *)
val of_points : name:string -> min_size:int -> (float * float) list -> t

val name : t -> string

(** Sample a flow size (bytes, >= 1). *)
val sample : t -> Bfc_util.Rng.t -> int

(** Expected flow size in bytes. *)
val mean : t -> float

(** Fraction of flows with size <= s. *)
val cdf : t -> float -> float

(** Fraction of *bytes* belonging to flows of size <= s (Fig. 2's y-axis). *)
val byte_cdf : t -> float -> float

(** Degenerate distribution (all flows the same size). *)
val fixed : int -> t

val google : t

val fb_hadoop : t

val websearch : t

(** "google" | "fb_hadoop" | "websearch". *)
val by_name : string -> t
