(* Lossless fabric: the credit-based BFC variant of §5 under an incast that
   makes pause/resume BFC sweat.

   Both variants share BFC's queue assignment; the credit variant replaces
   reactive pausing with hop-by-hop credits, so no packet is ever sent
   toward a buffer that cannot hold it — zero loss by construction, at the
   cost of reserving credit-worth of buffer per queue.

   Run with: dune exec examples/lossless_fabric.exe *)

module Time = Bfc_engine.Time
module Scheme = Bfc_sim.Scheme
module Runner = Bfc_sim.Runner
module Metrics = Bfc_sim.Metrics
module Exp_common = Bfc_sim.Exp_common
module Sample = Bfc_util.Stats.Sample

let run_one scheme =
  let r =
    Exp_common.run_std
      {
        (Exp_common.std Exp_common.Quick scheme) with
        Exp_common.sp_dist = Bfc_workload.Dist.fb_hadoop;
        sp_incast = Some { Exp_common.degree = 400; agg_frac_of_paper = 1.0 };
      }
  in
  Printf.printf "%-22s drops %4d   peak buffer %6.2f MB   short p99 %6.2f   completed %d/%d\n"
    (Scheme.name scheme)
    (Runner.total_drops r.Exp_common.env)
    (Sample.max r.Exp_common.buffers /. 1e6)
    (Metrics.short_p99 r.Exp_common.env r.Exp_common.flows)
    (Runner.completed r.Exp_common.env)
    (Runner.injected r.Exp_common.env)

let () =
  Printf.printf "400:1 incast on the quick Clos, FB workload (55%% + 5%% incast):\n\n";
  List.iter run_one [ Bfc_sim.Scheme.bfc; Bfc_sim.Scheme.bfc_credit ];
  Printf.printf
    "\nThe credit variant buys guaranteed losslessness with reserved buffer\n\
     (ports x queues x 1-hop BDP) — the trade the paper's Sec 5 describes.\n"
