(* A realistic datacenter scenario: the paper's oversubscribed Clos fabric
   (scaled down 2x) carrying the Google RPC workload at 60% core load,
   comparing BFC against DCTCP and Ideal-FQ on per-size-bucket FCT
   slowdowns.

   Run with: dune exec examples/clos_fabric.exe *)

module Time = Bfc_engine.Time
module Sim = Bfc_engine.Sim
module Topology = Bfc_net.Topology
module Dist = Bfc_workload.Dist
module Traffic = Bfc_workload.Traffic
module Arrivals = Bfc_workload.Arrivals
module Scheme = Bfc_sim.Scheme
module Runner = Bfc_sim.Runner
module Metrics = Bfc_sim.Metrics

let run_one scheme =
  let sim = Sim.create () in
  let spines = 4 and tors = 4 and hosts_per_tor = 8 in
  let cl = Topology.clos sim ~spines ~tors ~hosts_per_tor ~gbps:100.0 ~prop:(Time.us 1.0) in
  let env = Runner.setup ~topo:cl.Topology.t ~scheme ~params:Runner.default_params in
  let n_hosts = Array.length cl.Topology.cl_hosts in
  let duration = Time.ms 1.0 in
  let spec =
    {
      Traffic.hosts = cl.Topology.cl_hosts;
      dist = Dist.google;
      arrivals = Arrivals.lognormal_default;
      load = 0.6;
      ref_capacity_gbps = float_of_int (spines * tors) *. 100.0;
      core_fraction = 1.0 -. (float_of_int (hosts_per_tor - 1) /. float_of_int (n_hosts - 1));
      matrix = Traffic.Uniform;
      duration;
      seed = 1;
      prio_classes = 1;
    }
  in
  let ids = ref 0 in
  let flows = Traffic.generate spec ~ids in
  Runner.inject env flows;
  let t0 = Unix.gettimeofday () in
  Runner.run env ~until:duration;
  Runner.drain env ~budget:(Time.ms 20.0);
  let wall = Unix.gettimeofday () -. t0 in
  Printf.printf "\n=== %s: %d flows, %d completed, drops %d (wall %.1fs)\n" (Scheme.name scheme)
    (Runner.injected env) (Runner.completed env) (Runner.total_drops env) wall;
  List.iter
    (fun s ->
      if s.Metrics.count > 0 then
        Printf.printf "  %-9s n=%5d  avg %6.2f  p99 %7.2f\n" s.Metrics.bucket s.Metrics.count
          s.Metrics.avg s.Metrics.p99)
    (Metrics.fct_table env flows)

let () =
  run_one Bfc_sim.Scheme.bfc;
  run_one Bfc_sim.Scheme.dctcp;
  run_one Bfc_sim.Scheme.Ideal_fq
