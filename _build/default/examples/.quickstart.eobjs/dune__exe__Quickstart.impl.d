examples/quickstart.ml: Array Bfc_core Bfc_engine Bfc_net Bfc_sim List Printf
