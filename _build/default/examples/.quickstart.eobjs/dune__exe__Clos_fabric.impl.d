examples/clos_fabric.ml: Array Bfc_engine Bfc_net Bfc_sim Bfc_workload List Printf Unix
