examples/lossless_fabric.mli:
