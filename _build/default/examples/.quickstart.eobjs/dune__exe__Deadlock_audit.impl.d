examples/deadlock_audit.ml: Array Bfc_core Bfc_engine Bfc_net List Printf String
