examples/deadlock_audit.mli:
