examples/incast_storm.ml: Array Bfc_engine Bfc_net Bfc_sim Bfc_util Bfc_workload List Printf
