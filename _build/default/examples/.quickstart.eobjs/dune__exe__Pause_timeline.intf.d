examples/pause_timeline.mli:
