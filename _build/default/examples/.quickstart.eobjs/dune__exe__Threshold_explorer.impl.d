examples/threshold_explorer.ml: Array Bfc_core Bfc_engine Bfc_net Bfc_sim Bfc_switch Bfc_util Bfc_workload List Printf
