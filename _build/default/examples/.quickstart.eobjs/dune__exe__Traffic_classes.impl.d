examples/traffic_classes.ml: Bfc_net Bfc_sim Bfc_workload List Printf
