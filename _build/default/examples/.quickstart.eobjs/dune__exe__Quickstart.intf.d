examples/quickstart.mli:
