examples/incast_storm.mli:
