examples/lossless_fabric.ml: Bfc_engine Bfc_sim Bfc_util Bfc_workload List Printf
