examples/clos_fabric.mli:
