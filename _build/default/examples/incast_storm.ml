(* Incast storm: the scenario the paper uses to stress flow control.

   64 senders simultaneously fire at one receiver (a 64:1 incast, 5 MB
   aggregate) while a victim flow crosses the same last-hop switch to a
   *different* receiver. We compare BFC and DCTCP: BFC isolates the victim
   in its own queue and pauses only the incast senders; DCTCP fills the
   shared buffer and the victim's packets sit behind the storm.

   Run with: dune exec examples/incast_storm.exe *)

module Time = Bfc_engine.Time
module Sim = Bfc_engine.Sim
module Topology = Bfc_net.Topology
module Flow = Bfc_net.Flow
module Traffic = Bfc_workload.Traffic
module Scheme = Bfc_sim.Scheme
module Runner = Bfc_sim.Runner
module Metrics = Bfc_sim.Metrics
module Sample = Bfc_util.Stats.Sample

let run_one scheme =
  let sim = Sim.create () in
  let cl = Topology.clos sim ~spines:4 ~tors:4 ~hosts_per_tor:8 ~gbps:100.0 ~prop:(Time.us 1.0) in
  let env = Runner.setup ~topo:cl.Topology.t ~scheme ~params:Runner.default_params in
  let hosts = cl.Topology.cl_hosts in
  let victim_dst = hosts.(1) (* same rack as the incast target *) in
  let ids = ref 0 in
  let incast =
    Traffic.generate_incast
      {
        Traffic.i_hosts = hosts;
        degree = 24;
        agg_size = 5_000_000;
        period = Time.us 100.0;
        i_duration = Time.us 150.0;
        i_seed = 7;
      }
      ~ids
  in
  (* rewrite the incast destination to host 0 for a controlled scenario *)
  let incast =
    List.map
      (fun f -> Flow.make ~id:f.Flow.id ~src:f.Flow.src ~dst:hosts.(0) ~size:f.Flow.size
           ~arrival:f.Flow.arrival ~is_incast:true ())
      (List.filter (fun f -> f.Flow.src <> hosts.(0)) incast)
  in
  let victims =
    List.init 20 (fun i ->
        let id = 10_000 + i in
        Flow.make ~id ~src:hosts.(16 + (i mod 16)) ~dst:victim_dst ~size:2_000
          ~arrival:(Time.us (90.0 +. float_of_int i)) ())
  in
  let buffers = Metrics.watch_buffers env ~period:(Time.us 2.0) in
  Runner.inject env (Traffic.merge [ incast; victims ]);
  Runner.run env ~until:(Time.ms 1.0);
  Runner.drain env ~budget:(Time.ms 20.0);
  let vic = Sample.create () and inc = Sample.create () in
  List.iter (fun f -> if Flow.complete f then Sample.add vic (Runner.slowdown env f)) victims;
  List.iter (fun f -> if Flow.complete f then Sample.add inc (Runner.slowdown env f)) incast;
  Printf.printf "%-12s victim p99 slowdown %6.1f   incast p99 %6.1f   peak buffer %5.2f MB   drops %d\n"
    (Scheme.name scheme)
    (Sample.percentile vic 99.0)
    (Sample.percentile inc 99.0)
    (Sample.max buffers /. 1e6)
    (Runner.total_drops env)

let () =
  Printf.printf "24:1 incast storm vs a 2KB victim flow on the same last-hop switch\n\n";
  List.iter run_one [ Bfc_sim.Scheme.bfc; Bfc_sim.Scheme.dctcp; Bfc_sim.Scheme.hpcc ]
