(* Threshold explorer: how the pause threshold Th trades buffering against
   utilization, in the App. C analytic model AND in simulation side by
   side (the Fig. 7 / Fig. 30 story).

   Run with: dune exec examples/threshold_explorer.exe *)

module Time = Bfc_engine.Time
module Sim = Bfc_engine.Sim
module Topology = Bfc_net.Topology
module Traffic = Bfc_workload.Traffic
module Model = Bfc_core.Model
module Scheme = Bfc_sim.Scheme
module Runner = Bfc_sim.Runner
module Metrics = Bfc_sim.Metrics
module Sample = Bfc_util.Stats.Sample
module Switch = Bfc_switch.Switch

(* One simulated point: two long flows at a 100G bottleneck, fixed Th. *)
let simulate th_ratio =
  let sim = Sim.create () in
  let tb = Topology.testbed sim ~g1:1 ~g2:1 ~g3:1 ~gbps:100.0 ~prop:(Time.us 1.0) in
  let hop_bdp = 25_000 (* 2us HRTT x 12.5 B/ns *) in
  let fixed_th = int_of_float (th_ratio *. float_of_int hop_bdp) in
  let scheme = Scheme.Bfc { Scheme.bfc_default with Scheme.queues = 16; fixed_th = Some fixed_th } in
  let env = Runner.setup ~topo:tb.Topology.tb ~scheme ~params:Runner.default_params in
  let ids = ref 0 in
  let flows =
    Traffic.long_lived
      ~pairs:
        [|
          (tb.Topology.group2.(0), tb.Topology.recv2); (tb.Topology.group3.(0), tb.Topology.recv2);
        |]
      ~ids ()
  in
  (* bottleneck: sw2's egress towards recv2 *)
  let egress = ref (-1) in
  Array.iteri
    (fun i p -> if (Bfc_net.Port.peer p).Bfc_net.Node.id = tb.Topology.recv2 then egress := i)
    (Topology.ports tb.Topology.tb tb.Topology.sw2);
  let sw2 =
    Array.to_list (Runner.switches env)
    |> List.find (fun s -> Switch.node_id s = tb.Topology.sw2)
  in
  let qlen = Sample.create () in
  ignore
    (Sim.every sim ~period:(Time.ns 500) (fun () ->
         Sample.add qlen (float_of_int (Switch.egress_bytes sw2 ~egress:!egress))));
  let probe =
    Metrics.utilization_probe env
      ~gid:(Bfc_net.Port.gid (Topology.port tb.Topology.tb tb.Topology.sw2 !egress))
  in
  Runner.inject env flows;
  Runner.run env ~until:(Time.ms 2.0);
  (Sample.mean qlen /. 1000.0, (1.0 -. Metrics.utilization probe) *. 100.0)

let () =
  Printf.printf
    "Th/BDP | model: worst-case idle%%  peak queue | sim (2 flows): avg queue KB  idle%%\n";
  Printf.printf "-------+------------------------------------+---------------------------------\n";
  List.iter
    (fun th ->
      let model_idle = Model.max_ef ~th_ratio:th *. 100.0 in
      let peak = Model.peak_queue ~x:(Model.worst_x ~th_ratio:th) ~th_ratio:th in
      let q_kb, idle = simulate th in
      Printf.printf "%5.2f  |        %5.1f%%          %5.2f BDP    |       %7.1f        %5.1f%%\n"
        th model_idle peak q_kb idle)
    [ 0.25; 0.5; 1.0; 2.0; 4.0 ];
  Printf.printf
    "\nThe paper's setting Th = 1 BDP bounds worst-case idleness at 20%% (App. C);\n\
     with two competing flows the simulated link does much better, as §6.1 observes.\n"
