(* Traffic classes (App. A.3): queues statically partitioned among four
   priority classes, dynamic queue assignment within each class, strict
   priority between classes.

   Run with: dune exec examples/traffic_classes.exe *)

module Flow = Bfc_net.Flow
module Scheme = Bfc_sim.Scheme
module Runner = Bfc_sim.Runner
module Metrics = Bfc_sim.Metrics
module Exp_common = Bfc_sim.Exp_common

let () =
  let classes = 4 in
  let scheme = Scheme.Bfc { Scheme.bfc_default with Scheme.classes } in
  let r =
    Exp_common.run_std
      {
        (Exp_common.std Exp_common.Quick scheme) with
        Exp_common.sp_dist = Bfc_workload.Dist.fb_hadoop;
        sp_classes = classes;
      }
  in
  Printf.printf
    "BFC with 4 priority classes (8 queues each), FB at 60%% (15%% per class)\n\n";
  Printf.printf "class  flows  short p99  overall avg  overall p99\n";
  for c = 0 to classes - 1 do
    let sub = List.filter (fun f -> f.Flow.prio_class = c) r.Exp_common.flows in
    let stats = Metrics.fct_overall r.Exp_common.env sub in
    Printf.printf "  %d    %5d  %9.2f  %11.2f  %11.2f\n" c stats.Metrics.count
      (Metrics.short_p99 r.Exp_common.env sub)
      stats.Metrics.avg stats.Metrics.p99
  done;
  Printf.printf
    "\nHigher classes (lower index) keep tighter tails; the lowest class still\n\
     completes everything — work conservation matters more than queue count\n\
     for background traffic (App. A.3).\n"
