(* Quickstart: two senders share a bottleneck link under BFC.

   Builds a tiny dumbbell topology, attaches the BFC dataplane, runs two
   competing flows plus a burst of short flows, and prints what happened:
   flow completion times, pause/resume counts, and peak buffering.

   Run with: dune exec examples/quickstart.exe *)

module Time = Bfc_engine.Time
module Sim = Bfc_engine.Sim
module Topology = Bfc_net.Topology
module Flow = Bfc_net.Flow
module Scheme = Bfc_sim.Scheme
module Runner = Bfc_sim.Runner

let () =
  let sim = Sim.create () in
  let db = Topology.dumbbell sim ~senders:4 ~gbps:100.0 ~prop:(Time.us 1.0) in
  let env =
    Runner.setup ~topo:db.Topology.d ~scheme:Scheme.bfc ~params:Runner.default_params
  in
  (* Two long flows from distinct senders, plus short flows that arrive
     while the link is busy. *)
  let ids = ref 0 in
  let mk ~src ~size ~at =
    let id = !ids in
    incr ids;
    Flow.make ~id ~src ~dst:db.Topology.receiver ~size ~arrival:at ()
  in
  let flows =
    [
      mk ~src:db.Topology.senders.(0) ~size:2_000_000 ~at:0;
      mk ~src:db.Topology.senders.(1) ~size:2_000_000 ~at:0;
      mk ~src:db.Topology.senders.(2) ~size:20_000 ~at:(Time.us 50.0);
      mk ~src:db.Topology.senders.(3) ~size:20_000 ~at:(Time.us 60.0);
    ]
  in
  Runner.inject env flows;
  Runner.run env ~until:(Time.ms 2.0);
  Runner.drain env ~budget:(Time.ms 5.0);
  Printf.printf "BFC quickstart on a 4-sender dumbbell (100 Gbps, 1 us links)\n\n";
  List.iter
    (fun f ->
      if Flow.complete f then
        Printf.printf "flow %d  size %8d B  fct %8.1f us  slowdown %.2fx\n" f.Flow.id
          f.Flow.size
          (Time.to_us (Flow.fct f))
          (Runner.slowdown env f)
      else Printf.printf "flow %d did not complete!\n" f.Flow.id)
    flows;
  let pauses =
    Array.fold_left
      (fun acc dp -> acc + (Bfc_core.Dataplane.stats dp).Bfc_core.Dataplane.pauses_sent)
      0 (Runner.dataplanes env)
  in
  Printf.printf "\npauses sent: %d, drops: %d, completed %d/%d\n" pauses
    (Runner.total_drops env) (Runner.completed env) (Runner.injected env)
