(* Command-line front end for the BFC reproduction.

   bfc_sim list                         -- list experiment targets
   bfc_sim run fig9 fig13 --profile quick
   bfc_sim sweep --scheme bfc --load 0.6 --dist fb_hadoop
                                        -- one ad-hoc Clos run *)

open Cmdliner
module Experiments = Bfc_sim.Experiments
module Exp_common = Bfc_sim.Exp_common
module Scheme = Bfc_sim.Scheme
module Runner = Bfc_sim.Runner
module Metrics = Bfc_sim.Metrics
module Dist = Bfc_workload.Dist

let profile_conv =
  Arg.conv
    ( (fun s -> try Ok (Exp_common.profile_of_string s) with Invalid_argument m -> Error (`Msg m)),
      fun fmt p ->
        Format.pp_print_string fmt
          (match p with Exp_common.Smoke -> "smoke" | Quick -> "quick" | Paper -> "paper") )

let profile_arg =
  Arg.(value
      & opt profile_conv Exp_common.Quick
      & info [ "profile" ] ~docv:"PROFILE" ~doc:"Scale: smoke, quick or paper.")

let list_cmd =
  let run () =
    List.iter
      (fun t -> Printf.printf "%-10s %s\n" t.Experiments.t_name t.Experiments.t_what)
      Experiments.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List experiment targets") Term.(const run $ const ())

let run_cmd =
  let targets = Arg.(value & pos_all string [] & info [] ~docv:"TARGET") in
  let run profile targets =
    let chosen =
      match targets with
      | [] -> Experiments.all
      | names ->
        List.map
          (fun n ->
            match Experiments.find n with
            | Some t -> t
            | None -> failwith (Printf.sprintf "unknown target %s (see `bfc_sim list`)" n))
          names
    in
    List.iter (Experiments.run_and_print profile) chosen
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run experiment targets (all if none given)")
    Term.(const run $ profile_arg $ targets)

let scheme_conv =
  let parse = function
    | "bfc" -> Ok Scheme.bfc
    | "bfc128" -> Ok (Scheme.bfc_q 128)
    | "bfc-srf" -> Ok Scheme.bfc_srf
    | "bfc-credit" -> Ok Scheme.bfc_credit
    | "bfc-cc" -> Ok (Scheme.Bfc { Scheme.bfc_default with Scheme.delay_cc = true })
    | "ideal-fq" -> Ok Scheme.Ideal_fq
    | "ideal-srf" -> Ok Scheme.Ideal_srf
    | "dctcp" -> Ok Scheme.dctcp
    | "dctcp-ss" -> Ok (Scheme.Dctcp { slow_start = true })
    | "dcqcn" -> Ok Scheme.dcqcn
    | "hpcc" -> Ok Scheme.hpcc
    | "hpcc-pfc" -> Ok Scheme.hpcc_pfc
    | "swift" -> Ok Scheme.swift
    | "timely" -> Ok Scheme.timely
    | "pfc" -> Ok Scheme.pfc_only
    | "expresspass" -> Ok Scheme.expresspass
    | "homa" -> Ok Scheme.homa
    | "homa-ecmp" -> Ok Scheme.homa_ecmp
    | s -> Error (`Msg (Printf.sprintf "unknown scheme %s" s))
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Scheme.name s))

let dist_conv =
  Arg.conv
    ( (fun s -> try Ok (Dist.by_name s) with Invalid_argument m -> Error (`Msg m)),
      fun fmt d -> Format.pp_print_string fmt (Dist.name d) )

let sweep_cmd =
  let scheme = Arg.(value & opt scheme_conv Scheme.bfc & info [ "scheme" ] ~docv:"SCHEME") in
  let dist = Arg.(value & opt dist_conv Dist.fb_hadoop & info [ "dist" ] ~docv:"DIST") in
  let load = Arg.(value & opt float 0.6 & info [ "load" ] ~docv:"LOAD") in
  let incast = Arg.(value & opt (some int) None & info [ "incast" ] ~docv:"DEGREE") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ]) in
  let run profile scheme dist load incast seed =
    let s =
      {
        (Exp_common.std profile scheme) with
        Exp_common.sp_dist = dist;
        sp_load = load;
        sp_incast =
          Option.map (fun degree -> { Exp_common.default_incast with Exp_common.degree }) incast;
        sp_seed = seed;
      }
    in
    let r = Exp_common.run_std s in
    Printf.printf "scheme=%s dist=%s load=%.2f completed=%d/%d drops=%d\n" (Scheme.name scheme)
      (Dist.name dist) load (Runner.completed r.Exp_common.env) (Runner.injected r.Exp_common.env)
      (Runner.total_drops r.Exp_common.env);
    Exp_common.print_table
      {
        Exp_common.title = "FCT slowdown";
        header = [ "bucket"; "n"; "avg"; "p50"; "p95"; "p99" ];
        rows = Exp_common.fct_rows r;
      }
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"One ad-hoc Clos run with chosen scheme/workload/load")
    Term.(const run $ profile_arg $ scheme $ dist $ load $ incast $ seed)

let () =
  let doc = "Backpressure Flow Control (NSDI 2022) reproduction" in
  let info = Cmd.info "bfc_sim" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; sweep_cmd ]))
